package main

import (
	"strings"
	"testing"

	"sysscale"
)

// TestFindWorkloadCaseInsensitive: every suite must match regardless
// of the caller's casing. The -workload lookup now delegates to
// sysscale.BuiltinWorkload (the same resolver spec files use), so this
// pins the CLI-visible contract against that shared path. The battery
// suite used to compare the stored name (mixed case allowed) against
// the lowercased query and so could never match names the graphics
// path would have accepted.
func TestFindWorkloadCaseInsensitive(t *testing.T) {
	// Include the mixed-case canonical SPEC names: both their exact
	// form and any casing of them must resolve.
	names := []string{"473.astar", "470.lbm", "436.cactusADM", "447.dealII", "459.GemsFDTD"}
	for _, w := range sysscale.GraphicsSuite() {
		names = append(names, w.Name)
	}
	for _, w := range sysscale.BatterySuite() {
		names = append(names, w.Name)
	}
	names = append(names, "stream")
	mixedCase := func(s string) string {
		var sb strings.Builder
		for i, r := range s {
			if i%2 == 0 {
				sb.WriteString(strings.ToUpper(string(r)))
			} else {
				sb.WriteRune(r)
			}
		}
		return sb.String()
	}
	for _, name := range names {
		for _, variant := range []string{name, strings.ToUpper(name), mixedCase(name)} {
			w, err := sysscale.BuiltinWorkload(variant)
			if err != nil {
				t.Errorf("BuiltinWorkload(%q): %v", variant, err)
				continue
			}
			if !strings.EqualFold(w.Name, name) && name != "stream" {
				t.Errorf("BuiltinWorkload(%q) returned %q", variant, w.Name)
			}
		}
	}
	if _, err := sysscale.BuiltinWorkload("no-such-workload"); err == nil {
		t.Error("unknown workload did not error")
	}
}

// TestVerboseOutput checks the -verbose detail block the doc comment
// advertises: per-rail averages, transition statistics and
// operating-point residency.
func TestVerboseOutput(t *testing.T) {
	w, err := sysscale.BuiltinWorkload("stream")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = sysscale.NewSysScale()
	cfg.Duration = 100 * sysscale.Millisecond
	res, err := sysscale.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	printVerbose(&sb, cfg, res)
	out := sb.String()
	for _, want := range []string{"rail averages:", "V_SA", "V_CORE", "transitions:", "residency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose output missing %q:\n%s", want, out)
		}
	}
	for _, op := range cfg.Ladder {
		if !strings.Contains(out, op.Name) {
			t.Errorf("verbose output missing ladder point %q:\n%s", op.Name, out)
		}
	}
}
