// Command sysscale runs one workload under one governor on the
// simulated platform and prints the full result.
//
// Usage:
//
//	sysscale -workload 470.lbm -policy sysscale [-tdp 4.5] [-duration 4s]
//	         [-compare] [-verbose] [-cache-dir dir/] [-job-timeout 30s] [-retries 2]
//	sysscale -spec job.json [-compare] [-verbose] [-cache-dir dir/]
//
// -workload accepts any built-in name (SPEC CPU2006, the 3DMark,
// battery-life and productivity suites, "stream"), matched
// case-insensitively; -list enumerates them. -policy selects baseline,
// sysscale, memscale[-redist], coscale[-redist], static-low.
//
// -spec loads the whole job — platform, workload, policy, run
// parameters — from a serialized job-spec file instead (see the
// "Job specs" section of the README); the individual -workload,
// -policy, -tdp and -duration flags then do not apply. -compare also
// runs the baseline and prints the deltas. -verbose adds per-rail
// average power, DVFS transition statistics and operating-point
// residency.
//
// -cache-dir routes the run through the persistent on-disk result
// cache (see the README's "Persistent result cache"): a repeated
// invocation with the same job prints the same result without
// simulating, and a final "cache:" line reports the disk traffic (with
// a warning when the tier's circuit breaker is open).
//
// -job-timeout bounds the run's wall time — an over-budget run fails
// with a timeout error instead of hanging the invocation — and
// -retries re-attempts transient-classed failures (see the README's
// "Robustness" section for the error taxonomy).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sysscale"
	"sysscale/internal/cliutil"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

func main() {
	var (
		specFile = flag.String("spec", "", "load the full job from a job-spec JSON file")
		wlName   = flag.String("workload", "473.astar", "workload name (-list to enumerate)")
		wlFile   = flag.String("workload-file", "", "load the workload from a tracegen-style JSON file instead")
		polName  = flag.String("policy", "sysscale", "baseline | sysscale | memscale | memscale-redist | coscale | coscale-redist | static-low")
		tdp      = flag.Float64("tdp", 4.5, "package TDP in watts")
		duration = flag.Duration("duration", 4*time.Second, "simulated duration")
		compare  = flag.Bool("compare", false, "also run the baseline and print deltas")
		verbose  = flag.Bool("verbose", false, "print per-rail power, transition and residency detail")
		cacheDir = flag.String("cache-dir", "", "persistent on-disk result cache directory (shared across runs)")
		jobTO    = flag.Duration("job-timeout", 0, "per-run wall-time budget (0 = unbounded); an over-budget run fails instead of hanging")
		retries  = flag.Int("retries", 0, "extra attempts for transient-classed failures (I/O faults; not config errors)")
		statsOut = flag.Bool("stats-json", false, "print one machine-readable \"stats: {...}\" engine-counter line after the run")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range sysscale.BuiltinWorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	var cfg sysscale.Config
	if *specFile != "" {
		var err error
		cfg, err = loadSpecFile(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		var w sysscale.Workload
		var err error
		if *wlFile != "" {
			w, err = loadWorkloadFile(*wlFile)
		} else {
			w, err = sysscale.BuiltinWorkload(*wlName)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pol, err := findPolicy(*polName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		cfg = sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = pol
		cfg.TDP = sysscale.Watt(*tdp)
		cfg.Duration = sysscale.Time(duration.Nanoseconds())
	}

	// Ctrl-C cancels the run context; the simulation unwinds within
	// one policy epoch and the command exits with the cancellation.
	ctx, stop := cliutil.InterruptContext(context.Background())
	defer stop()

	// With -cache-dir the run goes through an engine carrying the
	// persistent result tier: a repeated invocation with the same job
	// is served from disk instead of simulating. -stats-json also needs
	// the engine — it is the thing that counts.
	run := sysscale.RunContext
	var eng *sysscale.Engine
	if *cacheDir != "" || *jobTO > 0 || *retries > 0 || *statsOut {
		opts := []sysscale.EngineOption{
			sysscale.WithJobTimeout(*jobTO),
			sysscale.WithRetry(*retries, 100*time.Millisecond),
		}
		if *cacheDir != "" {
			opts = append(opts, sysscale.WithDiskCache(*cacheDir))
		}
		eng = sysscale.NewEngine(opts...)
		if err := eng.DiskCacheError(); err != nil {
			fmt.Fprintf(os.Stderr, "cache-dir: %v\n", err)
			os.Exit(1)
		}
		run = eng.RunContext
	}

	res, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, context.Canceled) {
			os.Exit(cliutil.ExitInterrupt)
		}
		os.Exit(1)
	}
	fmt.Println(res)
	if *verbose {
		printVerbose(os.Stdout, cfg, res)
	}

	if *compare && cfg.Policy.Name() != sysscale.NewBaseline().Name() {
		cfg.Policy = sysscale.NewBaseline()
		base, err := run(ctx, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if errors.Is(err, context.Canceled) {
				os.Exit(cliutil.ExitInterrupt)
			}
			os.Exit(1)
		}
		fmt.Printf("vs baseline: perf %+.1f%%, avg power %+.1f%%, EDP %+.1f%%\n",
			100*sysscale.PerfImprovement(res, base),
			100*(float64(res.AvgPower/base.AvgPower)-1),
			100*sysscale.EDPImprovement(res, base))
	}
	if eng != nil && *cacheDir != "" {
		st := eng.CacheStats()
		fmt.Printf("cache: %d disk hits, %d disk misses, %d disk errors, %d bytes on disk\n",
			st.DiskHits, st.DiskMisses, st.DiskErrors, st.DiskBytes)
		if st.DiskDegraded {
			fmt.Fprintln(os.Stderr, "cache: disk tier DEGRADED (circuit breaker open; runs are not being persisted)")
		}
	}
	if *statsOut {
		// One machine-readable line, same shape as sweepd's /v1/stats
		// engine block, so scripts parse one format everywhere.
		b, err := json.Marshal(eng.CacheStats())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("stats: %s\n", b)
	}
}

// printVerbose renders the -verbose detail block: per-rail average
// power, DVFS transition statistics and operating-point residency.
func printVerbose(w io.Writer, cfg sysscale.Config, res sysscale.Result) {
	fmt.Fprintf(w, "rail averages:")
	for i := 0; i < vf.NumRails; i++ {
		fmt.Fprintf(w, " %v %.3fW", vf.RailID(i), res.RailAvg[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "transitions: %d (total %v, max %v)\n",
		res.Transitions, res.TransitionTime, res.MaxTransition)
	fmt.Fprintf(w, "residency:")
	for i, f := range res.PointResidency {
		name := fmt.Sprintf("point%d", i)
		if i < len(cfg.Ladder) && cfg.Ladder[i].Name != "" {
			name = cfg.Ladder[i].Name
		}
		fmt.Fprintf(w, " %s %.1f%%", name, 100*f)
	}
	fmt.Fprintln(w)
}

func loadWorkloadFile(path string) (sysscale.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return sysscale.Workload{}, err
	}
	defer f.Close()
	return workload.ReadJSON(f)
}

// loadSpecFile reads a serialized job spec and resolves it to a
// runnable config; a spec that decodes is fully validated.
func loadSpecFile(path string) (sysscale.Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return sysscale.Config{}, err
	}
	defer f.Close()
	job, err := sysscale.ReadJobSpec(f)
	if err != nil {
		return sysscale.Config{}, fmt.Errorf("%s: %w", path, err)
	}
	cfg, err := sysscale.DecodeSpec(job)
	if err != nil {
		return sysscale.Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

func findPolicy(name string) (sysscale.Policy, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return sysscale.NewBaseline(), nil
	case "sysscale":
		return sysscale.NewSysScale(), nil
	case "memscale":
		return sysscale.NewMemScale(false), nil
	case "memscale-redist":
		return sysscale.NewMemScale(true), nil
	case "coscale":
		return sysscale.NewCoScale(false), nil
	case "coscale-redist":
		return sysscale.NewCoScale(true), nil
	case "static-low":
		return sysscale.NewStaticPoint(1, true), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
