// Command benchgate is the benchmark-regression gate: it parses
// `go test -bench` output and compares ns/op and allocs/op against a
// committed baseline snapshot, failing when a gated benchmark
// regresses beyond the tolerance.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | go run ./cmd/benchgate -baseline BENCH_baseline.json
//	go test -run '^$' -bench ... -benchmem ./... | go run ./cmd/benchgate -baseline BENCH_baseline.json -update
//
// The baseline records one entry per benchmark (ns/op + allocs/op)
// plus a trajectory of historical measurements. -update rewrites the
// current entries (appending the previous ones to the trajectory);
// without it, any gated benchmark whose measured ns/op exceeds
// baseline × (1 + tolerance) fails the gate with exit status 1.
// Benchmarks present in the input but not in the baseline are
// reported and pass (the gate only guards known trajectories);
// baseline entries missing from the input are skipped, so the gate
// can run on a benchmark subset.
//
// Absolute ns/op only compares within one machine class. For CI —
// where the runner is not the machine that recorded the baseline —
// -calibrate names a calibration benchmark measured in the same run
// (a stable, optimization-free code path); every measured ns/op is
// scaled by baselineCal/measuredCal before comparison, so the gate
// tests the machine-relative ratio rather than raw nanoseconds.
//
// allocs/op is gated independently (-alloc-tolerance): allocation
// counts are machine-independent — the same binary allocates the same
// on every machine — so they are compared raw, never calibrated,
// making the alloc gate the one check that is exact even on shared CI
// runners. A gated benchmark fails when its measured allocs/op exceed
// baseline × (1 + alloc-tolerance) + 1; the +1 absorbs sync.Pool
// cold-start jitter on near-zero counts while staying negligible at
// realistic ones. Benchmarks whose input carries no allocs/op field
// (run without -benchmem) skip the alloc gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded performance. AllocsPerOp is -1
// when the run carried no allocation data (no -benchmem), which
// disables the alloc gate for that entry.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed snapshot the gate compares against.
type Baseline struct {
	// Note documents how the numbers were taken (machine, benchtime).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (without the -GOMAXPROCS suffix)
	// to its gated numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Trajectory preserves earlier snapshots, newest last, so the
	// performance history of the hot paths stays in the repository.
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
}

// TrajectoryPoint is one historical snapshot.
type TrajectoryPoint struct {
	Label      string           `json:"label"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkTickLoopSteadyState-8   20496   118640 ns/op   7210 B/op   97 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

func parseBench(lines *bufio.Scanner) map[string]Entry {
	out := make(map[string]Entry)
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := Entry{NsPerOp: ns, AllocsPerOp: -1}
		if a := allocsField.FindStringSubmatch(m[3]); a != nil {
			e.AllocsPerOp, _ = strconv.ParseFloat(a[1], 64)
		}
		// Repeated benchmarks (several packages, -count>1): keep the
		// fastest run, the standard noise-robust choice.
		if prev, ok := out[m[1]]; !ok || ns < prev.NsPerOp {
			out[m[1]] = e
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline snapshot path")
	update := flag.Bool("update", false, "rewrite the baseline from the measured numbers")
	label := flag.String("label", "", "trajectory label used with -update (e.g. \"PR 5\")")
	tolerance := flag.Float64("tolerance", 0.25, "allowed ns/op regression fraction before the gate fails")
	allocTolerance := flag.Float64("alloc-tolerance", 0.05, "allowed allocs/op regression fraction (never calibrated; +1 absolute slack)")
	calibrate := flag.String("calibrate", "", "benchmark used to normalize for machine speed (must be in the baseline and the input)")
	flag.Parse()

	measured := parseBench(bufio.NewScanner(os.Stdin))
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(1)
	}

	var base Baseline
	raw, err := os.ReadFile(*baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
	case os.IsNotExist(err) && *update:
		// First snapshot.
	default:
		fmt.Fprintf(os.Stderr, "benchgate: read %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	if *update {
		if base.Benchmarks != nil {
			base.Trajectory = append(base.Trajectory, TrajectoryPoint{Label: base.Note, Benchmarks: base.Benchmarks})
		}
		base.Benchmarks = measured
		if *label != "" {
			base.Note = *label
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: baseline %s updated with %d benchmarks\n", *baselinePath, len(measured))
		return
	}

	// Machine-speed normalization: scale every measurement by how much
	// slower/faster this machine ran the calibration benchmark than the
	// machine that recorded the baseline.
	scale := 1.0
	if *calibrate != "" {
		calGot, okGot := measured[*calibrate]
		calWant, okWant := base.Benchmarks[*calibrate]
		if !okGot || !okWant || calGot.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: calibration benchmark %s missing from input or baseline\n", *calibrate)
			os.Exit(1)
		}
		scale = calWant.NsPerOp / calGot.NsPerOp
		fmt.Printf("  calibrated by %s: this machine is %.2fx the baseline machine\n", *calibrate, 1/scale)
	}

	names := make([]string, 0, len(measured))
	for n := range measured {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		got := measured[name]
		want, gated := base.Benchmarks[name]
		if !gated {
			fmt.Printf("  %-40s %12.0f ns/op  (ungated: not in baseline)\n", name, got.NsPerOp)
			continue
		}
		ratio := got.NsPerOp * scale / want.NsPerOp
		status := "ok"
		if ratio > 1+*tolerance {
			status = "ns REGRESSION"
			failed = true
		}
		// Alloc counts are deterministic and machine-independent: gate
		// them raw (no calibration), whenever both sides measured them.
		if got.AllocsPerOp >= 0 && want.AllocsPerOp >= 0 &&
			got.AllocsPerOp > want.AllocsPerOp*(1+*allocTolerance)+1 {
			status = "allocs REGRESSION"
			failed = true
		}
		fmt.Printf("  %-40s %12.0f ns/op  baseline %12.0f  (%+.1f%%, allocs %.0f vs %.0f) %s\n",
			name, got.NsPerOp, want.NsPerOp, 100*(ratio-1), got.AllocsPerOp, want.AllocsPerOp, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond ns tolerance %.0f%% / alloc tolerance %.0f%% against %s\n",
			100**tolerance, 100**allocTolerance, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}
