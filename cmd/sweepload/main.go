// Command sweepload drives concurrent load at a sweepd server and
// reports latency quantiles and error rates. It is the harness that
// finds a deployment's knee — raise -clients until 503s appear — and
// the CI smoke driver that proves the service streams correct,
// complete, reproducible results under concurrency.
//
// Usage:
//
//	sweepload [-addr http://127.0.0.1:8080] \
//	          [-specs dir | -gen N -seed S -policies list] \
//	          [-clients N] [-sweeps N] [-batch N] [-rate R] \
//	          [-timeout d] [-out file] [-stats]
//
// The job corpus comes either from a directory of spec JSON files
// (-specs, sorted by name so the corpus order is stable) or from the
// workload generator (-gen N synthesizes N workloads from -seed,
// paired round-robin with the -policies list). Request i submits
// chunk i mod numChunks of the corpus (-batch specs per sweep; 0 =
// whole corpus per sweep), so the request→spec mapping is
// deterministic and responses can be verified offline.
//
// -out collects every streamed line and writes them to a file,
// per-request in submission order, each request's lines sorted by job
// index with the Done marker last — a canonical form that is
// byte-identical across runs against a warm cache (the CI smoke diffs
// two passes). -stats fetches /v1/stats afterwards and prints one
// "stats: {...}" machine-readable line.
//
// Exit status: 0 for a clean run, 1 if any sweep failed (HTTP error,
// in-band job error, truncated or canceled stream), 130 on interrupt.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sysscale"
	"sysscale/internal/cliutil"
	"sysscale/internal/sweepd/loadgen"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "sweepd base URL")
		specsDir = flag.String("specs", "", "directory of job spec JSON files (sorted by name)")
		gen      = flag.Int("gen", 0, "synthesize N workloads instead of reading -specs")
		seed     = flag.Uint64("seed", 1, "generator seed for -gen")
		policies = flag.String("policies", "sysscale", "comma-separated policies for -gen: baseline, sysscale, memscale[-redist], coscale[-redist]")
		durMS    = flag.Int("duration", 200, "simulated milliseconds per generated job")
		clients  = flag.Int("clients", 8, "concurrent clients")
		sweeps   = flag.Int("sweeps", 0, "total sweep requests (0 = max(clients, chunks))")
		batch    = flag.Int("batch", 0, "specs per sweep (0 = whole corpus per sweep)")
		rate     = flag.Float64("rate", 0, "aggregate launch rate in sweeps/s (0 = unpaced)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request budget")
		retries  = flag.Int("retries", 8, "max 503 retries per request")
		out      = flag.String("out", "", "write collected stream lines (canonical order) to this file")
		stats    = flag.Bool("stats", false, "fetch /v1/stats afterwards and print one machine-readable line")
	)
	flag.Parse()

	specs, err := corpus(*specsDir, *gen, *seed, *policies, *durMS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepload: %v\n", err)
		return 1
	}
	fmt.Printf("sweepload: %d specs against %s (%d clients)\n", len(specs), *addr, *clients)

	ctx, stop := cliutil.InterruptContext(context.Background())
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:      strings.TrimRight(*addr, "/"),
		Specs:        specs,
		Clients:      *clients,
		Sweeps:       *sweeps,
		JobsPerSweep: *batch,
		Rate:         *rate,
		Timeout:      *timeout,
		MaxRetries:   *retries,
		Collect:      *out != "",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepload: %v\n", err)
		return 1
	}
	fmt.Println(rep)

	if *out != "" {
		if err := writeCanonical(*out, rep.Outcomes); err != nil {
			fmt.Fprintf(os.Stderr, "sweepload: %v\n", err)
			return 1
		}
	}
	if *stats {
		if err := printStats(ctx, strings.TrimRight(*addr, "/")); err != nil {
			fmt.Fprintf(os.Stderr, "sweepload: stats: %v\n", err)
			return 1
		}
	}
	if errors.Is(ctx.Err(), context.Canceled) {
		return cliutil.ExitInterrupt
	}
	if rep.Failures() > 0 {
		fmt.Fprintf(os.Stderr, "sweepload: %d failed sweeps/jobs\n", rep.Failures())
		return 1
	}
	return 0
}

// corpus builds the spec list: from a directory of JSON files, or from
// the workload generator crossed round-robin with the policy list.
func corpus(dir string, gen int, seed uint64, policyList string, durMS int) ([]sysscale.JobSpec, error) {
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no *.json specs in %s", dir)
		}
		sort.Strings(paths)
		specs := make([]sysscale.JobSpec, 0, len(paths))
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				return nil, err
			}
			js, err := sysscale.ReadJobSpec(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			specs = append(specs, js)
		}
		return specs, nil
	}
	if gen <= 0 {
		return nil, fmt.Errorf("need -specs dir or -gen N")
	}
	var pols []sysscale.Policy
	for _, name := range strings.Split(policyList, ",") {
		p, err := policyByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		pols = append(pols, p)
	}
	workloads := sysscale.GenerateWorkloads(sysscale.DefaultGenConfig(seed), gen)
	specs := make([]sysscale.JobSpec, 0, gen)
	for i, w := range workloads {
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = pols[i%len(pols)]
		cfg.Duration = sysscale.Time(durMS) * sysscale.Millisecond
		js, err := sysscale.EncodeSpec(cfg)
		if err != nil {
			return nil, fmt.Errorf("encode generated job %d: %w", i, err)
		}
		specs = append(specs, js)
	}
	return specs, nil
}

func policyByName(name string) (sysscale.Policy, error) {
	switch name {
	case "baseline":
		return sysscale.NewBaseline(), nil
	case "sysscale":
		return sysscale.NewSysScale(), nil
	case "memscale":
		return sysscale.NewMemScale(false), nil
	case "memscale-redist":
		return sysscale.NewMemScale(true), nil
	case "coscale":
		return sysscale.NewCoScale(false), nil
	case "coscale-redist":
		return sysscale.NewCoScale(true), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// writeCanonical dumps collected stream lines in a run-independent
// order: requests in submission order, each request's lines sorted by
// job index with the Done marker last. Two runs over the same corpus
// and a warm cache produce byte-identical files.
func writeCanonical(path string, outcomes [][]loadgen.Line) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, lines := range outcomes {
		sorted := append([]loadgen.Line(nil), lines...)
		sort.SliceStable(sorted, func(i, j int) bool {
			di, dj := sorted[i].Done != nil, sorted[j].Done != nil
			if di != dj {
				return dj // Done sorts last
			}
			return sorted[i].Index < sorted[j].Index
		})
		for _, ln := range sorted {
			f.Write(ln.Raw)
			f.Write([]byte("\n"))
		}
	}
	return f.Close()
}

// printStats fetches /v1/stats and prints it as one "stats: {...}"
// line for scripts (the CI smoke greps cache counters out of it).
func printStats(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	var compact json.RawMessage
	if err := json.Unmarshal(b, &compact); err != nil {
		return fmt.Errorf("bad stats body: %w", err)
	}
	fmt.Printf("stats: %s\n", strings.TrimSpace(string(compact)))
	return nil
}
