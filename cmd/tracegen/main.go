// Command tracegen emits workload demand traces as JSON: either the
// phase definitions themselves or a sampled bandwidth-over-time series
// (the data behind Figs. 2(c) and 3(a)).
//
// Usage:
//
//	tracegen -workload 470.lbm            # phase definitions
//	tracegen -workload 473.astar -series  # sampled GB/s series
//	tracegen -synthetic 50 -class cpu-st  # synthetic sweep workloads
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"flag"

	"sysscale"
	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

func main() {
	var (
		wlName    = flag.String("workload", "", "workload to dump")
		series    = flag.Bool("series", false, "emit a sampled bandwidth series instead of phases")
		stepMS    = flag.Int("step", 100, "series sample step in milliseconds")
		synthetic = flag.Int("synthetic", 0, "emit N synthetic workloads instead")
		class     = flag.String("class", "cpu-st", "synthetic class: cpu-st | cpu-mt | graphics")
		seed      = flag.Uint64("seed", 1, "synthetic generator seed")
	)
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *synthetic > 0 {
		var cl workload.Class
		switch strings.ToLower(*class) {
		case "cpu-st":
			cl = workload.CPUSingleThread
		case "cpu-mt":
			cl = workload.CPUMultiThread
		case "graphics":
			cl = workload.Graphics
		default:
			fmt.Fprintf(os.Stderr, "unknown class %q\n", *class)
			os.Exit(1)
		}
		ws := workload.Synthetic(workload.SyntheticSpec{Class: cl, Count: *synthetic, Seed: *seed})
		if err := enc.Encode(ws); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *wlName == "" {
		fmt.Fprintln(os.Stderr, "need -workload or -synthetic")
		os.Exit(1)
	}
	w, err := find(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *series {
		step := sim.Time(*stepMS) * sim.Millisecond
		samples := w.BWOverTime(step)
		type point struct {
			TimeMS float64 `json:"time_ms"`
			GBps   float64 `json:"gbps"`
		}
		out := make([]point, len(samples))
		for i, s := range samples {
			out[i] = point{TimeMS: float64(i * *stepMS), GBps: s / 1e9}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := enc.Encode(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func find(name string) (sysscale.Workload, error) {
	if w, err := sysscale.SPEC(name); err == nil {
		return w, nil
	}
	lower := strings.ToLower(name)
	for _, w := range append(sysscale.GraphicsSuite(), sysscale.BatterySuite()...) {
		if strings.ToLower(w.Name) == lower {
			return w, nil
		}
	}
	if lower == "stream" {
		return sysscale.Stream(), nil
	}
	return sysscale.Workload{}, fmt.Errorf("unknown workload %q", name)
}
