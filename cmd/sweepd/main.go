// Command sweepd serves the simulation engine over HTTP: submit a job
// spec and get its result, submit a sweep and stream results back as
// NDJSON, cancel mid-flight, and read the cache/robustness counters —
// the what-if capacity/energy-planning API shape of ROADMAP item 1.
//
// Usage:
//
//	sweepd [-addr 127.0.0.1:8080] [-parallel N] [-cache-dir dir/]
//	       [-max-sweeps N] [-max-specs N] [-max-body bytes]
//	       [-job-timeout 60s] [-retries N] [-drain 15s]
//
// API (see internal/sweepd for the full contract):
//
//	POST   /v1/jobs         one job spec → its result (synchronous)
//	POST   /v1/sweeps       JSON array of specs → NDJSON result stream
//	DELETE /v1/sweeps/{id}  cancel (id from the Sweep-Id response header)
//	GET    /v1/stats        engine + server counters as JSON
//	GET    /healthz         readiness probe
//
// Admission control: at most -max-sweeps requests execute at once
// (beyond that the server answers 503 with Retry-After instead of
// queueing), a sweep carries at most -max-specs specs, request bodies
// are capped at -max-body bytes, and each job's wall time is bounded
// by -job-timeout. -cache-dir layers the shared persistent result
// cache under the in-memory tier, so a fleet of sweepd processes
// pointed at one directory computes each distinct config once.
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight
// sweeps for up to -drain, then force-closes and exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"sysscale"
	"sysscale/internal/cliutil"
	"sysscale/internal/sweepd"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		parallel  = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache-dir", "", "persistent on-disk result cache directory (shared across the fleet)")
		cacheSize = flag.Int("cache-size", 0, "in-memory result cache entries (0 = default)")
		maxSweeps = flag.Int("max-sweeps", 0, "max concurrently admitted requests; beyond it the server answers 503 (0 = 2×GOMAXPROCS)")
		maxSpecs  = flag.Int("max-specs", sweepd.DefaultMaxSpecsPerSweep, "max specs per sweep")
		maxBody   = flag.Int64("max-body", sweepd.DefaultMaxBodyBytes, "max request body bytes")
		jobTO     = flag.Duration("job-timeout", 60*time.Second, "per-job wall-time budget (0 = unbounded)")
		retries   = flag.Int("retries", 0, "extra attempts for transient-classed job failures")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight sweeps")
	)
	flag.Parse()

	opts := []sysscale.EngineOption{
		sysscale.WithParallelism(*parallel),
		sysscale.WithCacheSize(*cacheSize),
		sysscale.WithJobTimeout(*jobTO),
		sysscale.WithRetry(*retries, 100*time.Millisecond),
	}
	if *cacheDir != "" {
		opts = append(opts, sysscale.WithDiskCache(*cacheDir))
	}
	eng := sysscale.NewEngine(opts...)
	if err := eng.DiskCacheError(); err != nil {
		fmt.Fprintf(os.Stderr, "cache-dir: %v\n", err)
		return 1
	}

	handler := sweepd.New(sweepd.Config{
		Engine:              eng,
		MaxConcurrentSweeps: *maxSweeps,
		MaxSpecsPerSweep:    *maxSpecs,
		MaxBodyBytes:        *maxBody,
	})

	ctx, stop := cliutil.InterruptContext(context.Background())
	defer stop()

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Streaming responses forbid a blanket WriteTimeout; reads are
		// bounded instead (bodies are capped, decoding is quick).
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("sweepd: serving on http://%s (parallelism %d, max %d concurrent requests)\n",
		*addr, eng.Parallelism(), defaultMaxSweeps(*maxSweeps))

	select {
	case err := <-errc:
		// ListenAndServe never returns nil; reaching here without a
		// signal means the listener died.
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight sweeps stream to completion
	// within the budget, then cut the survivors (their per-request
	// contexts cancel and the engine unwinds within one policy epoch).
	fmt.Fprintln(os.Stderr, "sweepd: interrupt; draining in-flight sweeps")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: drain budget exceeded, force-closing: %v\n", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
	}
	return cliutil.ExitInterrupt
}

// defaultMaxSweeps reports the effective admission bound for the
// startup banner.
func defaultMaxSweeps(flagged int) int {
	if flagged > 0 {
		return flagged
	}
	return sweepd.DefaultMaxConcurrentSweeps()
}
