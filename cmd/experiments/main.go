// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name] [-fig6n N] [-parallel N] [-cache-dir dir/]
//	experiments -montecarlo [-seed S] [-n N] [-parallel N]
//	experiments -specs dir/ [-parallel N] [-cache-dir dir/]
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof [...]
//
// -cpuprofile and -memprofile write pprof profiles of whatever
// selection runs, so hot-path regressions can be diagnosed with
// `go tool pprof` without editing code.
//
// With no flags it runs the full set in paper order. -run selects one
// experiment by name (table1, table2, fig2, fig3, fig4, fig5, fig6,
// fig7, fig8, fig9, fig10, sensitivity, cost, ablations, calibrate,
// montecarlo). -parallel bounds the simulation worker pool (0, the
// default, uses GOMAXPROCS; 1 forces sequential execution).
//
// -montecarlo runs the stochastic robustness sweep instead of the
// paper set: -n workloads generated from -seed (see
// internal/workload/gen), each simulated under the baseline and the
// three closed-loop policies, reported as per-policy outcome
// distributions. The sweep is bit-identical for a given (seed, n) at
// any -parallel level.
//
// -specs runs every job-spec file (*.json, sorted by name) in a
// directory as one engine batch instead of the paper set, printing
// each file's fingerprint and result. Identical specs — and repeats of
// a spec already run this invocation — are simulated once and served
// from the engine's result cache.
//
// -cache-dir layers the persistent on-disk result tier under the
// engine's in-memory cache: results are keyed by the canonical spec
// fingerprint and survive process restarts, so repeating a sweep (or
// sharing the directory between machines) serves it from disk instead
// of re-simulating. Corrupt entries degrade to counted misses. A final
// "cache:" line reports both tiers, with a stderr warning when the
// tier's circuit breaker is open (results not persisting).
//
// -job-timeout bounds each job's wall time — an over-budget job fails
// with a timeout error instead of hanging the sweep — and -retries
// re-attempts transient-classed failures (see the README's
// "Robustness" section).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"sysscale"
	"sysscale/internal/cliutil"
	"sysscale/internal/experiments"
)

func main() { os.Exit(run()) }

// run carries main's body so the profile-writing defers fire even on
// experiment failure (os.Exit would skip them).
func run() int {
	runName := flag.String("run", "", "run a single experiment by name")
	fig6n := flag.Int("fig6n", 0, "workloads per Fig. 6 panel (0 = paper scale, 180)")
	parallel := flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS, 1 = sequential)")
	montecarlo := flag.Bool("montecarlo", false, "run the Monte Carlo robustness sweep")
	seed := flag.Uint64("seed", 1, "Monte Carlo workload-generator seed")
	mcN := flag.Int("n", 100, "Monte Carlo generated workload count")
	specsDir := flag.String("specs", "", "run every job-spec JSON file in this directory instead")
	cacheDir := flag.String("cache-dir", "", "persistent on-disk result cache directory (shared across runs)")
	jobTO := flag.Duration("job-timeout", 0, "per-job wall-time budget (0 = unbounded); over-budget jobs fail instead of hanging the sweep")
	retries := flag.Int("retries", 0, "extra attempts for transient-classed job failures (I/O faults; not config errors)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	statsOut := flag.Bool("stats-json", false, "print one machine-readable \"stats: {...}\" engine-counter line after the run")
	flag.Parse()
	if *parallel != 0 {
		experiments.SetParallelism(*parallel)
	}
	if *jobTO > 0 || *retries > 0 {
		experiments.SetHardening(*jobTO, *retries)
	}
	if *cacheDir != "" && *specsDir == "" {
		if err := experiments.SetDiskCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "cache-dir: %v\n", err)
			return 1
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile is accurate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *montecarlo {
		*runName = "montecarlo"
	}

	// Ctrl-C cancels the run context: in-flight sweeps unwind within
	// one policy epoch, pooled platforms are returned, and the command
	// exits after reporting the cancellation.
	ctx, stop := cliutil.InterruptContext(context.Background())
	defer stop()

	if *specsDir != "" {
		return runSpecs(ctx, *specsDir, *parallel, *cacheDir, *jobTO, *retries, *statsOut)
	}

	mcFn := func(ctx context.Context) (fmt.Stringer, error) {
		opt := experiments.DefaultMonteCarloOptions()
		opt.Seed = *seed
		opt.N = *mcN
		return experiments.MonteCarlo(ctx, opt)
	}

	type exp struct {
		name string
		fn   func(ctx context.Context) (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Table1(), nil }},
		{"table2", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Table2(), nil }},
		{"fig2", func(ctx context.Context) (fmt.Stringer, error) {
			a, err := experiments.Fig2a(ctx)
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig2b()
			if err != nil {
				return nil, err
			}
			c, err := experiments.Fig2c()
			if err != nil {
				return nil, err
			}
			return multi{a, b, c}, nil
		}},
		{"fig3", func(ctx context.Context) (fmt.Stringer, error) {
			a, err := experiments.Fig3a()
			if err != nil {
				return nil, err
			}
			return multi{a, experiments.Fig3b()}, nil
		}},
		{"fig4", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig4(ctx) }},
		{"fig5", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig5Latency() }},
		{"fig6", func(ctx context.Context) (fmt.Stringer, error) {
			opt := experiments.DefaultFig6Options()
			if *fig6n > 0 {
				opt.PerPanel = *fig6n
			}
			return experiments.Fig6(ctx, opt)
		}},
		{"fig7", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig7(ctx) }},
		{"fig8", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig8(ctx) }},
		{"fig9", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig9(ctx) }},
		{"fig10", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Fig10(ctx) }},
		{"sensitivity", func(ctx context.Context) (fmt.Stringer, error) { return experiments.DRAMSensitivity(ctx) }},
		{"multipoint", func(ctx context.Context) (fmt.Stringer, error) { return experiments.MultiPoint(ctx) }},
		{"cost", func(ctx context.Context) (fmt.Stringer, error) { return experiments.ImplementationCost() }},
		{"ablations", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Ablations(ctx) }},
		{"calibrate", func(ctx context.Context) (fmt.Stringer, error) { return experiments.Calibrate(ctx, 0, 7) }},
		{"montecarlo", mcFn},
	}

	for _, e := range all {
		if *runName != "" && e.name != *runName {
			continue
		}
		if e.name == "montecarlo" && *runName == "" {
			// The stochastic sweep is opt-in: the default invocation
			// reproduces the paper set only.
			continue
		}
		start := time.Now()
		out, err := e.fn(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted: partial sweeps discarded")
				return cliutil.ExitInterrupt
			}
			return 1
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
	if *cacheDir != "" {
		printCacheStats(experiments.Engine().CacheStats())
	}
	if *statsOut {
		printStatsJSON(experiments.Engine().CacheStats())
	}
	return 0
}

// printStatsJSON emits the -stats-json line: the full engine counter
// snapshot in the same JSON shape as sweepd's /v1/stats engine block,
// so scripts parse one format everywhere.
func printStatsJSON(st sysscale.EngineStats) {
	b, err := json.Marshal(st)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("stats: %s\n", b)
}

// printCacheStats reports the two result tiers after a -cache-dir run;
// the CI disk-cache smoke greps this line for cross-process reuse. A
// degraded disk tier (circuit breaker open) is reported on stderr so
// "the sweep ran but nothing persisted" is never silent.
func printCacheStats(st sysscale.EngineStats) {
	fmt.Printf("cache: %d memory hits, %d disk hits, %d disk misses, %d disk errors, %d bytes on disk\n",
		st.Hits, st.DiskHits, st.DiskMisses, st.DiskErrors, st.DiskBytes)
	if st.DiskDegraded {
		fmt.Fprintln(os.Stderr, "cache: disk tier DEGRADED (circuit breaker open; results are not being persisted)")
	}
}

// runSpecs runs every *.json job spec in dir as one engine batch and
// prints each file's fingerprint and result in file order. With a
// cache dir, results persist across invocations: a repeated run is
// served from disk without simulating.
func runSpecs(ctx context.Context, dir string, parallel int, cacheDir string, jobTO time.Duration, retries int, statsOut bool) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "specs: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "specs: no *.json files in %s\n", dir)
		return 1
	}
	sort.Strings(paths)

	jobs := make([]sysscale.Job, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specs: %v\n", err)
			return 1
		}
		js, err := sysscale.ReadJobSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "specs: %s: %v\n", p, err)
			return 1
		}
		if jobs[i], err = sysscale.JobFromSpec(js); err != nil {
			fmt.Fprintf(os.Stderr, "specs: %s: %v\n", p, err)
			return 1
		}
		// A spec that decodes but cannot be fingerprinted (an
		// unregistered policy, say) still runs — but uncached, which at
		// sweep volumes is a problem worth hearing about, not a line to
		// silently omit.
		if fp, err := sysscale.SpecFingerprint(js); err != nil {
			fmt.Fprintf(os.Stderr, "specs: %s: fingerprint: %v (job will run uncached)\n", p, err)
		} else {
			fmt.Printf("%s  %x\n", p, fp[:8])
		}
	}

	opts := []sysscale.EngineOption{
		sysscale.WithParallelism(parallel),
		sysscale.WithJobTimeout(jobTO),
		sysscale.WithRetry(retries, 100*time.Millisecond),
	}
	if cacheDir != "" {
		opts = append(opts, sysscale.WithDiskCache(cacheDir))
	}
	eng := sysscale.NewEngine(opts...)
	if err := eng.DiskCacheError(); err != nil {
		fmt.Fprintf(os.Stderr, "cache-dir: %v\n", err)
		return 1
	}
	start := time.Now()
	results, err := eng.RunBatchContext(ctx, jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specs: %v\n", err)
		if errors.Is(err, context.Canceled) {
			return cliutil.ExitInterrupt
		}
		return 1
	}
	fmt.Printf("==== specs: %d jobs (%.1fs) ====\n", len(jobs), time.Since(start).Seconds())
	for i, res := range results {
		fmt.Printf("%s:\n%s\n", paths[i], res)
	}
	if cacheDir != "" {
		printCacheStats(eng.CacheStats())
	}
	if statsOut {
		printStatsJSON(eng.CacheStats())
	}
	return 0
}

// multi renders several results in sequence.
type multi []fmt.Stringer

func (m multi) String() string {
	s := ""
	for _, x := range m {
		s += x.String() + "\n"
	}
	return s
}
