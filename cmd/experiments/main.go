// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name] [-fig6n N] [-parallel N]
//
// With no flags it runs the full set in paper order. -run selects one
// experiment by name (table1, table2, fig2, fig3, fig4, fig5, fig6,
// fig7, fig8, fig9, fig10, sensitivity, cost, ablations, calibrate).
// -parallel bounds the simulation worker pool (0, the default, uses
// GOMAXPROCS; 1 forces sequential execution).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sysscale/internal/experiments"
)

func main() {
	runName := flag.String("run", "", "run a single experiment by name")
	fig6n := flag.Int("fig6n", 0, "workloads per Fig. 6 panel (0 = paper scale, 180)")
	parallel := flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if *parallel != 0 {
		experiments.SetParallelism(*parallel)
	}

	type exp struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(), nil }},
		{"table2", func() (fmt.Stringer, error) { return experiments.Table2(), nil }},
		{"fig2", func() (fmt.Stringer, error) {
			a, err := experiments.Fig2a()
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig2b()
			if err != nil {
				return nil, err
			}
			c, err := experiments.Fig2c()
			if err != nil {
				return nil, err
			}
			return multi{a, b, c}, nil
		}},
		{"fig3", func() (fmt.Stringer, error) {
			a, err := experiments.Fig3a()
			if err != nil {
				return nil, err
			}
			return multi{a, experiments.Fig3b()}, nil
		}},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Fig4() }},
		{"fig5", func() (fmt.Stringer, error) { return experiments.Fig5Latency() }},
		{"fig6", func() (fmt.Stringer, error) {
			opt := experiments.DefaultFig6Options()
			if *fig6n > 0 {
				opt.PerPanel = *fig6n
			}
			return experiments.Fig6(opt)
		}},
		{"fig7", func() (fmt.Stringer, error) { return experiments.Fig7() }},
		{"fig8", func() (fmt.Stringer, error) { return experiments.Fig8() }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Fig9() }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.Fig10() }},
		{"sensitivity", func() (fmt.Stringer, error) { return experiments.DRAMSensitivity() }},
		{"multipoint", func() (fmt.Stringer, error) { return experiments.MultiPoint() }},
		{"cost", func() (fmt.Stringer, error) { return experiments.ImplementationCost() }},
		{"ablations", func() (fmt.Stringer, error) { return experiments.Ablations() }},
		{"calibrate", func() (fmt.Stringer, error) { return experiments.Calibrate(0, 7) }},
	}

	for _, e := range all {
		if *runName != "" && e.name != *runName {
			continue
		}
		start := time.Now()
		out, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
}

// multi renders several results in sequence.
type multi []fmt.Stringer

func (m multi) String() string {
	s := ""
	for _, x := range m {
		s += x.String() + "\n"
	}
	return s
}
