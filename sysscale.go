// Package sysscale is a full-system reproduction of "SysScale:
// Exploiting Multi-domain Dynamic Voltage and Frequency Scaling for
// Energy Efficient Mobile Processors" (Haj-Yahya et al., ISCA 2020).
//
// The package exposes the public surface of the library: the simulated
// Skylake-class mobile SoC (compute, IO and memory domains with the
// voltage-regulator topology of the paper's Fig. 1), the SysScale
// governor and the baselines it is compared against (MemScale,
// CoScale and their -Redist projections), the evaluation workloads
// (SPEC CPU2006 profiles, 3DMark, battery-life set), and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	w, _ := sysscale.SPEC("416.gamess")
//	cfg := sysscale.DefaultConfig()
//	cfg.Workload = w
//	cfg.Policy = sysscale.NewSysScale()
//	res, err := sysscale.Run(cfg)
//
// Compare against the worst-case-provisioned baseline by running the
// same configuration with sysscale.NewBaseline() and using
// PerfImprovement / PowerReduction on the two results.
//
// Suite sweeps go through RunBatch, which fans the independent
// simulations out over a worker pool (bounded by GOMAXPROCS by
// default) and returns results in input order. One Policy value can
// back every config — the engine clones it per job:
//
//	sys := sysscale.NewSysScale()
//	var cfgs []sysscale.Config
//	for _, w := range sysscale.SPECSuite() {
//		cfg := sysscale.DefaultConfig()
//		cfg.Workload = w
//		cfg.Policy = sys
//		cfgs = append(cfgs, cfg)
//	}
//	results, err := sysscale.RunBatch(cfgs) // results[i] ↔ cfgs[i]
//
// For explicit control over parallelism and memoization, construct an
// engine: sysscale.NewEngine(sysscale.WithParallelism(4)).RunBatch(...).
// Repeated configurations (baselines shared across comparisons) are
// simulated once and served from the engine's result cache afterwards.
//
// The Run API v2 surface adds cancellation, streaming and sweep
// composition on top: RunContext/RunBatchContext thread a
// context.Context into the simulation loop (a cancelled run unwinds
// within one policy epoch), Stream delivers per-job results as they
// complete so unbounded sweeps run in O(parallelism) memory, NewSweep
// builds policy × workload cross-products with comparison matrices,
// and failures carry types — *JobError, ErrInvalidConfig,
// context.Canceled — instead of strings. The quick-start snippets
// above, and one example per pillar, are compiled and run as Example
// functions under examples/.
//
// Inside a run, the simulator memoizes the per-tick fixpoint
// evaluation while the platform programming is unchanged between PMU
// decisions (the steady-state fast path), and batches runs of
// identical ticks into closed-form spans bounded by policy epochs and
// phase edges, so a run costs O(phases + decisions) rather than
// O(duration/SampleInterval). Results are bit-identical with the memo
// on or off; span batching agrees with the per-tick walk to ≤1e-9
// relative across the shipped suites (the paths differ only in
// floating-point summation order). Config.DisableTickMemo and
// Config.DisableSpanBatching force the slow paths for A/B
// verification and benchmarking. The engine additionally recycles
// assembled platforms across batch jobs through a sync.Pool, which is
// invisible to callers (a reset platform is bit-identical to a fresh
// one).
package sysscale

import (
	"context"
	"crypto/sha256"
	"io"
	"time"

	"sysscale/internal/core"
	"sysscale/internal/dram"
	"sysscale/internal/engine"
	"sysscale/internal/ioengine"
	"sysscale/internal/policy"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/spec"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
	"sysscale/internal/workload/gen"
)

// Core simulation types.
type (
	// Config describes one simulation run: platform, workload, policy.
	Config = soc.Config
	// Result is a run's outcome: performance, power, energy, EDP and
	// DVFS telemetry.
	Result = soc.Result
	// Policy is a power-management governor.
	Policy = soc.Policy
	// PolicyContext is what a governor observes each interval.
	PolicyContext = soc.PolicyContext
	// PolicyDecision is a governor's output.
	PolicyDecision = soc.PolicyDecision
)

// Workload types.
type (
	// Workload is a named sequence of execution phases.
	Workload = workload.Workload
	// Phase is one phase's CPI-stack decomposition and demands.
	Phase = workload.Phase
	// WorkloadClass labels evaluation categories.
	WorkloadClass = workload.Class
)

// Platform types.
type (
	// OperatingPoint is one joint IO+memory DVFS point.
	OperatingPoint = vf.OperatingPoint
	// Hz is a frequency.
	Hz = vf.Hz
	// Watt is a power.
	Watt = power.Watt
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Thresholds are SysScale's calibrated decision thresholds.
	Thresholds = core.Thresholds
	// DisplayCSR is the IO peripheral configuration register file.
	DisplayCSR = ioengine.CSR
)

// Frequency and time units.
const (
	GHz = vf.GHz
	MHz = vf.MHz

	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DRAM technologies.
const (
	LPDDR3 = dram.LPDDR3
	DDR4   = dram.DDR4
)

// Workload classes.
const (
	CPUSingleThread = workload.CPUSingleThread
	CPUMultiThread  = workload.CPUMultiThread
	Graphics        = workload.Graphics
	Battery         = workload.Battery
)

// DefaultConfig returns the paper's Table 2 platform: 4.5W TDP,
// 2-core Skylake-class SoC, dual-channel LPDDR3-1600, one HD panel,
// 30ms evaluation interval.
func DefaultConfig() Config { return soc.DefaultConfig() }

// Run simulates one workload under one policy.
func Run(cfg Config) (Result, error) { return soc.Run(cfg) }

// RunContext is Run with cancellation: the simulation checks ctx at
// every policy-evaluation boundary and unwinds within one policy epoch
// of wall-progress once ctx is done, returning ctx.Err().
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	return soc.RunContext(ctx, cfg)
}

// MustRun is Run that panics on error.
func MustRun(cfg Config) Result { return soc.MustRun(cfg) }

// ErrInvalidConfig is wrapped by every configuration-validation
// failure: errors.Is(err, ErrInvalidConfig) separates "this config can
// never run" from runtime failures such as cancellation.
var ErrInvalidConfig = soc.ErrInvalidConfig

// Batch execution types.
type (
	// Engine is the concurrent run service: a bounded worker pool with
	// a memoizing result cache. Construct with NewEngine.
	Engine = engine.Engine
	// Job is one unit of Engine batch work.
	Job = engine.Job
	// JobResult is one job's streamed outcome: input index plus Result
	// or error, delivered by Stream as each simulation completes.
	JobResult = engine.JobResult
	// JobError reports which batch job failed and why; errors.As
	// recovers it from any batch-path error, and its chain exposes
	// ErrInvalidConfig and context cancellation to errors.Is.
	JobError = engine.JobError
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// EngineStats is the snapshot returned by Engine.CacheStats.
	EngineStats = engine.Stats
	// Sweep declaratively builds a policy × workload cross-product and
	// runs it as one engine batch. Construct with NewSweep.
	Sweep = engine.Sweep
	// ResultSet is a completed Sweep: the result matrix plus the
	// comparison helpers (PerfImprovement, PowerReduction,
	// EDPImprovement) keyed by policy and workload.
	ResultSet = engine.ResultSet
	// Comparison is a ResultSet comparison matrix.
	Comparison = engine.Comparison
)

// NewEngine returns a run engine with the given options.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithParallelism bounds the engine's in-flight simulations (n <= 0
// selects GOMAXPROCS, the default).
func WithParallelism(n int) EngineOption { return engine.WithParallelism(n) }

// WithCache enables or disables the engine's result memoization
// (enabled by default). The cross-job span cache is governed
// separately — per run, with Config.DisableSpanCache — because it
// accelerates simulations rather than skipping them.
func WithCache(enabled bool) EngineOption { return engine.WithCache(enabled) }

// WithCacheSize bounds the engine's result cache to n entries, evicted
// least-recently-used (n <= 0 selects DefaultCacheSize).
func WithCacheSize(n int) EngineOption { return engine.WithCacheSize(n) }

// WithDiskCache layers a persistent, content-addressed on-disk result
// tier under the engine's in-memory LRU, rooted at dir. Entries are
// keyed by the canonical spec fingerprint (SpecFingerprint), so
// results persist across process restarts and may be shared between
// machines; entries are written atomically and checksummed, and a
// corrupt entry reads as a miss (pruned and counted in
// EngineStats.DiskErrors) — never a wrong result. The tier is
// size-bounded, oldest entries reclaimed first. If the store cannot be
// opened the engine runs without it; check Engine.DiskCacheError after
// NewEngine when the directory comes from user input.
func WithDiskCache(dir string) EngineOption { return engine.WithDiskCache(dir) }

// WithJobTimeout bounds every job's simulation wall time (overridable
// per job via Job.Timeout). A job over its deadline unwinds within one
// policy epoch and fails with an ErrJobTimeout-classed *JobError — a
// genuine per-job failure, never confused with batch cancellation.
func WithJobTimeout(d time.Duration) EngineOption { return engine.WithJobTimeout(d) }

// WithRetry re-runs transient-classed job failures up to n extra
// attempts with exponential backoff starting at backoff. Config
// errors, panics, cancellation, and (by default) timeouts are never
// retried; WithRetryTimeouts opts timeouts in.
func WithRetry(n int, backoff time.Duration) EngineOption { return engine.WithRetry(n, backoff) }

// WithRetryTimeouts opts ErrJobTimeout failures into WithRetry's
// classification (off by default: the simulator is deterministic, so a
// timeout usually recurs unless it came from environmental load).
func WithRetryTimeouts(enabled bool) EngineOption { return engine.WithRetryTimeouts(enabled) }

// PanicError is a worker panic captured by the engine's panic
// isolation: the job that panicked fails with this error (wrapped in
// its *JobError) while the batch, the process, and every other job
// survive. Retrieve with errors.As.
type PanicError = engine.PanicError

// ErrJobTimeout classes a job that exceeded its own deadline
// (WithJobTimeout / Job.Timeout); test with errors.Is.
var ErrJobTimeout = engine.ErrJobTimeout

// ErrDiskDegraded reports the disk tier's circuit breaker standing
// open (consecutive I/O failures tripped it; the tier is skipped until
// a probe succeeds). Returned by Engine.DiskCacheError while degraded
// and reflected by EngineStats.DiskDegraded.
var ErrDiskDegraded = engine.ErrDiskDegraded

// DefaultCacheSize is the result cache's default entry bound.
const DefaultCacheSize = engine.DefaultCacheSize

// defaultEngine backs the package-level batch entry points (RunBatch,
// RunBatchContext, Stream), so batch results are memoized
// process-wide.
var defaultEngine = engine.New()

// DefaultEngine returns the process-wide engine behind RunBatch,
// RunBatchContext and Stream, for cache statistics and direct batch
// submission. Its caches are bounded (DefaultCacheSize results,
// LRU-evicted, plus the span cache's own bound), so unbounded sweeps
// through the package-level entry points cycle cache memory instead
// of growing it.
func DefaultEngine() *Engine { return defaultEngine }

// ClearCache drops every result and span delta memoized by the
// default engine. The caches are bounded, so this is about reclaiming
// memory promptly, not about preventing growth.
func ClearCache() { defaultEngine.ClearCache() }

// CacheStats snapshots the default engine's cache counters: result
// hits/misses/evictions and the cross-job span cache's traffic.
func CacheStats() EngineStats { return defaultEngine.CacheStats() }

// RunBatch simulates the configurations concurrently with bounded
// parallelism and returns their results in input order. The batch is
// deterministic: whatever the worker count, the results are identical
// to running each config sequentially through Run. Policies are cloned
// per job, so configs may share one Policy value. On the first failure
// RunBatch stops scheduling work and returns a *JobError identifying
// the failed job.
//
// The shared engine memoizes results in a bounded LRU (see
// DefaultEngine), so repeated baselines across figures simulate once.
func RunBatch(cfgs []Config) ([]Result, error) {
	return RunBatchContext(context.Background(), cfgs)
}

// RunBatchContext is RunBatch with cancellation: once ctx is done the
// engine stops scheduling jobs, in-flight simulations unwind within
// one policy epoch, every pooled platform is returned, and the call
// reports ctx.Err().
func RunBatchContext(ctx context.Context, cfgs []Config) ([]Result, error) {
	return defaultEngine.RunBatchContext(ctx, jobsFor(cfgs))
}

// StreamBatch simulates the configurations through the default engine
// and delivers one JobResult per config as each completes (completion
// order; JobResult.Index maps back to cfgs). Unlike RunBatch, results
// are not accumulated: an unbounded sweep runs in O(parallelism)
// result memory — modulo the default engine's cache; see
// DefaultEngine — and per-job failures arrive as JobResult.Err
// without stopping the stream. The consumer must drain the channel to
// its close or cancel ctx; abandoning the channel with a live ctx
// leaks the stream's workers (see Engine.Stream for the full
// contract). (The name avoids Stream, which is the STREAM
// microbenchmark workload.)
func StreamBatch(ctx context.Context, cfgs []Config) <-chan JobResult {
	return defaultEngine.Stream(ctx, jobsFor(cfgs))
}

// RunBatchPartial simulates the configurations through the default
// engine and returns one JobResult per config, in input order, never
// failing the batch: each entry independently carries its Result or
// its *JobError (invalid config, panic, timeout). This is the sweep-
// service shape — one bad job must not void the sweep — where
// RunBatch's fail-fast contract is for callers who treat any failure
// as fatal.
func RunBatchPartial(ctx context.Context, cfgs []Config) []JobResult {
	return defaultEngine.RunBatchPartial(ctx, jobsFor(cfgs))
}

func jobsFor(cfgs []Config) []Job {
	jobs := make([]Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = Job{Config: c}
	}
	return jobs
}

// NewSweep starts a policy × workload cross-product builder:
//
//	rs, err := sysscale.NewSweep().
//		Policies(sysscale.NewBaseline(), sysscale.NewSysScale()).
//		Workloads(sysscale.SPECSuite()...).
//		RunContext(ctx, sysscale.DefaultEngine())
//	gain := rs.PerfImprovement(0) // matrix vs the baseline column
func NewSweep() *Sweep { return engine.NewSweep() }

// NewBaseline returns the evaluation baseline: IO and memory domains
// pinned at the highest operating point with worst-case reservations.
func NewBaseline() Policy { return policy.NewBaseline() }

// NewSysScale returns the SysScale governor with the default
// calibration.
func NewSysScale() Policy { return policy.NewSysScaleDefault() }

// NewSysScaleWithThresholds returns SysScale with custom thresholds.
func NewSysScaleWithThresholds(t Thresholds) Policy { return policy.NewSysScale(t) }

// DefaultThresholds returns the baked default calibration.
func DefaultThresholds() Thresholds { return policy.DefaultThresholds() }

// NewMemScale returns the MemScale [16] reimplementation; redistribute
// selects the -Redist variant of §6.
func NewMemScale(redistribute bool) Policy {
	if redistribute {
		return policy.NewMemScaleRedist()
	}
	return policy.NewMemScale()
}

// NewCoScale returns the CoScale [14] reimplementation; redistribute
// selects the -Redist variant of §6.
func NewCoScale(redistribute bool) Policy {
	if redistribute {
		return policy.NewCoScaleRedist()
	}
	return policy.NewCoScale()
}

// NewStaticPoint pins the IO+memory domains at ladder index (0 = high);
// redistribute resizes the compute budget to match.
func NewStaticPoint(index int, redistribute bool) Policy {
	return policy.NewStaticPoint(index, redistribute)
}

// SPEC returns one SPEC CPU2006 workload by name (e.g. "470.lbm").
func SPEC(name string) (Workload, error) { return workload.SPEC(name) }

// SPECNames lists the modeled SPEC CPU2006 benchmarks.
func SPECNames() []string { return workload.SPECNames() }

// SPECSuite returns all 29 single-threaded SPEC CPU2006 workloads.
func SPECSuite() []Workload { return workload.SPECSuite() }

// SPECSuiteMT returns the multi-threaded (rate) variants.
func SPECSuiteMT() []Workload { return workload.SPECSuiteMT() }

// GraphicsSuite returns the three 3DMark workloads.
func GraphicsSuite() []Workload { return workload.GraphicsSuite() }

// BatterySuite returns the four battery-life workloads.
func BatterySuite() []Workload { return workload.BatterySuite() }

// Stream returns the peak-bandwidth microbenchmark of §3/Fig. 4.
func Stream() Workload { return workload.Stream() }

// Stochastic workload generation (internal/workload/gen): seed-driven
// Markov-model scenario synthesis, mutation-derived scenario families,
// and the persistable JSON trace format. Identical GenConfigs produce
// byte-identical workloads across runs and parallelism levels.
type (
	// GenConfig parameterizes the stochastic workload generator.
	GenConfig = gen.Config
	// GenClass is a generator workload class (the Markov state space).
	GenClass = gen.Class
	// GenMatrix is the Markov phase-transition matrix.
	GenMatrix = gen.Matrix
	// Mutator derives perturbed workloads from existing ones.
	Mutator = gen.Mutator
	// WorkloadTrace is a persistable generated scenario set with
	// replayable generator provenance.
	WorkloadTrace = gen.Trace
)

// DefaultGenConfig returns the default generator parameters for a seed.
func DefaultGenConfig(seed uint64) GenConfig { return gen.DefaultConfig(seed) }

// GenerateWorkload emits one workload from the configuration.
func GenerateWorkload(cfg GenConfig) Workload { return gen.Generate(cfg) }

// GenerateWorkloads emits n workloads from one configuration.
func GenerateWorkloads(cfg GenConfig, n int) []Workload { return gen.GenerateN(cfg, n) }

// MutateWorkloads derives n mutated variants of base (a scenario
// family) by applying the mutators with per-variant forked RNGs.
func MutateWorkloads(base Workload, seed uint64, n int, ms ...Mutator) []Workload {
	return gen.Family(base, seed, n, ms...)
}

// The composable workload mutators. Each keeps Validate-clean
// workloads Validate-clean, so chains apply to any workload.
func SplitPhases(prob float64) Mutator            { return gen.SplitPhases(prob) }
func JitterDurations(frac float64) Mutator        { return gen.JitterDurations(frac) }
func ScaleBW(lo, hi float64) Mutator              { return gen.ScaleBW(lo, hi) }
func InjectIdle(prob float64, dwell Time) Mutator { return gen.InjectIdle(prob, dwell) }
func ChainMutators(ms ...Mutator) Mutator         { return gen.Chain(ms...) }

// NewWorkloadTrace records n generated workloads with provenance.
func NewWorkloadTrace(cfg GenConfig, n int) WorkloadTrace { return gen.NewTrace(cfg, n) }

// WriteWorkloadTrace / ReadWorkloadTrace persist traces as JSON.
func WriteWorkloadTrace(w io.Writer, t WorkloadTrace) error { return gen.WriteTrace(w, t) }
func ReadWorkloadTrace(r io.Reader) (WorkloadTrace, error)  { return gen.ReadTrace(r) }

// Job specs (internal/spec): the versioned JSON document that
// round-trips every runnable Config — platform, workload (built-in
// name, inline phases, or a tracegen trace entry), policy (registry
// name + typed params + ablation wrappers), run parameters and A/B
// knobs. DecodeSpec validates like Run does, so a spec that decodes is
// a spec that runs; SpecFingerprint over the canonical encoding is the
// engine's cache identity, stable across processes.
type (
	// JobSpec is one serializable simulation job.
	JobSpec = spec.Job
	// PlatformSpec is a JobSpec's platform section.
	PlatformSpec = spec.Platform
	// PointSpec is one serialized IO+memory operating point.
	PointSpec = spec.Point
	// CSRSpec is the serialized display/camera configuration.
	CSRSpec = spec.CSR
	// PanelSpec is one serialized display head.
	PanelSpec = spec.PanelCfg
	// WorkloadSpec selects a JobSpec's workload (exactly one form).
	WorkloadSpec = spec.WorkloadRef
	// TraceSpec embeds a tracegen trace and picks one workload from it.
	TraceSpec = spec.TraceRef
	// PolicySpec selects a registered policy family by name.
	PolicySpec = spec.Policy
	// RunSpec carries the serialized run parameters (nanoseconds).
	RunSpec = spec.Run
	// KnobsSpec carries the serialized A/B verification knobs.
	KnobsSpec = spec.Knobs
)

// SpecVersion is the job-spec wire-format version this build reads and
// writes; DecodeSpec rejects any other version.
const SpecVersion = spec.Version

// EncodeSpec serializes a runnable Config to its normalized spec:
// workload inlined, every field explicit, policy parameters fully
// populated. It fails for policy types not known to the registry.
func EncodeSpec(cfg Config) (JobSpec, error) { return spec.Encode(cfg) }

// DecodeSpec resolves a job spec to a runnable Config, validating it
// the way Run would (errors wrap ErrInvalidConfig where applicable).
func DecodeSpec(job JobSpec) (Config, error) { return spec.Decode(job) }

// ReadJobSpec / WriteJobSpec persist job specs as JSON. ReadJobSpec
// rejects unknown fields; WriteJobSpec emits an indented, readable
// rendering (not the canonical encoding — see CanonicalSpec).
func ReadJobSpec(r io.Reader) (JobSpec, error)    { return spec.ReadJob(r) }
func WriteJobSpec(w io.Writer, job JobSpec) error { return spec.WriteJob(w, job) }

// ReadJobSpecs reads a JSON array of job specs — the sweep wire form
// accepted by sweepd's POST /v1/sweeps. Like ReadJobSpec it rejects
// unknown fields, trailing data, and documents over MaxSpecBytes.
func ReadJobSpecs(r io.Reader) ([]JobSpec, error) { return spec.ReadJobs(r) }

// MaxSpecBytes is the input-size bound ReadJobSpec and ReadJobSpecs
// enforce; larger documents fail with a size error instead of being
// slurped into memory.
const MaxSpecBytes = spec.MaxDocBytes

// CanonicalSpec returns the job's canonical bytes: the JSON of its
// normalized form with keys sorted and whitespace removed. Two specs
// describing the same simulation (a built-in named vs the same
// workload inlined) canonicalize identically.
func CanonicalSpec(job JobSpec) ([]byte, error) { return spec.Canonical(job) }

// SpecFingerprint returns sha256 of the canonical spec bytes — the
// engine's cache key for the decoded job, reproducible by any process
// that can normalize, sort and compact the same JSON.
func SpecFingerprint(job JobSpec) ([sha256.Size]byte, error) { return spec.Fingerprint(job) }

// JobFromSpec decodes a spec into an engine Job (DecodeSpec + wrap),
// for batch submission through Engine.RunBatch or Stream.
func JobFromSpec(job JobSpec) (Job, error) { return engine.FromSpec(job) }

// Policy registry types: how policy families serialize in job specs.
type (
	// PolicyCodec decodes/encodes one policy family's typed parameters.
	PolicyCodec = policy.Codec
	// PolicyWrapper builds one ablation wrapper by name.
	PolicyWrapper = policy.Wrapper
)

// RegisterPolicy adds a policy family to the spec registry under name.
// Registration is what gives a policy type a serialized identity —
// and an engine cache key; unregistered policy types still run but
// never cache. Duplicate names or duplicate concrete types are
// rejected, so two packages cannot silently alias one identity.
func RegisterPolicy(name string, c PolicyCodec) error { return policy.Register(name, c) }

// RegisterPolicyWrapper adds an ablation wrapper to the registry.
func RegisterPolicyWrapper(name string, w PolicyWrapper) error {
	return policy.RegisterWrapper(name, w)
}

// PolicyNames lists the registered policy family names, sorted.
func PolicyNames() []string { return policy.Names() }

// BuiltinWorkload resolves a shipped workload by name (matched
// case-insensitively across every suite) — the lookup behind spec
// files' {"workload":{"builtin":...}} and the CLIs' -workload flags.
func BuiltinWorkload(name string) (Workload, error) { return workload.Builtin(name) }

// BuiltinWorkloadNames lists every name BuiltinWorkload accepts.
func BuiltinWorkloadNames() []string { return workload.BuiltinNames() }

// HighPoint and LowPoint return the paper's two shipped operating
// points (Table 1).
func HighPoint() OperatingPoint { return vf.HighPoint() }
func LowPoint() OperatingPoint  { return vf.LowPoint() }

// TwoPointLadder returns the shipped two-point ladder.
func TwoPointLadder() []OperatingPoint { return vf.TwoPointLadder() }

// LadderLPDDR3 returns the three-point LPDDR3 ladder (§7.4).
func LadderLPDDR3() []OperatingPoint { return vf.LadderLPDDR3() }

// PerfImprovement returns r's performance improvement over base.
func PerfImprovement(r, base Result) float64 { return soc.PerfImprovement(r, base) }

// PowerReduction returns r's average-power reduction versus base.
func PowerReduction(r, base Result) float64 { return soc.PowerReduction(r, base) }

// EDPImprovement returns r's energy-delay-product improvement versus
// base (positive = more efficient).
func EDPImprovement(r, base Result) float64 { return soc.EDPImprovement(r, base) }
