package sysscale_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"sysscale"
)

// The public-API tests exercise the facade exactly as a downstream user
// would: build a config, run policies, compare results.

func TestQuickstartFlow(t *testing.T) {
	w, err := sysscale.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = sysscale.Second

	cfg.Policy = sysscale.NewBaseline()
	base, err := sysscale.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = sysscale.NewSysScale()
	sys, err := sysscale.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gain := sysscale.PerfImprovement(sys, base); gain < 0.10 {
		t.Fatalf("SysScale gain on gamess = %.3f, want >0.10", gain)
	}
}

func TestAllPoliciesRun(t *testing.T) {
	w, err := sysscale.SPEC("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	policies := []sysscale.Policy{
		sysscale.NewBaseline(),
		sysscale.NewSysScale(),
		sysscale.NewSysScaleWithThresholds(sysscale.DefaultThresholds()),
		sysscale.NewMemScale(false),
		sysscale.NewMemScale(true),
		sysscale.NewCoScale(false),
		sysscale.NewCoScale(true),
		sysscale.NewStaticPoint(1, true),
	}
	for _, p := range policies {
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = p
		cfg.Duration = 300 * sysscale.Millisecond
		res, err := sysscale.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Score <= 0 {
			t.Fatalf("%s: zero score", p.Name())
		}
	}
}

func TestSuitesExposed(t *testing.T) {
	if len(sysscale.SPECSuite()) != 29 || len(sysscale.SPECNames()) != 29 {
		t.Fatal("SPEC suite incomplete")
	}
	if len(sysscale.SPECSuiteMT()) != 29 {
		t.Fatal("SPEC MT suite incomplete")
	}
	if len(sysscale.GraphicsSuite()) != 3 {
		t.Fatal("graphics suite incomplete")
	}
	if len(sysscale.BatterySuite()) != 4 {
		t.Fatal("battery suite incomplete")
	}
	if sysscale.Stream().Name == "" {
		t.Fatal("stream workload missing")
	}
}

func TestOperatingPointsExposed(t *testing.T) {
	if sysscale.HighPoint().DDR != 1.6*sysscale.GHz {
		t.Fatal("high point wrong")
	}
	if sysscale.LowPoint().DDR != 1.06*sysscale.GHz {
		t.Fatal("low point wrong")
	}
	if len(sysscale.TwoPointLadder()) != 2 || len(sysscale.LadderLPDDR3()) != 3 {
		t.Fatal("ladders wrong")
	}
}

func TestBatteryThroughPublicAPI(t *testing.T) {
	cfg := sysscale.DefaultConfig()
	cfg.Workload = sysscale.BatterySuite()[3] // video playback
	cfg.Duration = sysscale.Second
	cfg.Policy = sysscale.NewBaseline()
	base := sysscale.MustRun(cfg)
	cfg.Policy = sysscale.NewSysScale()
	sys := sysscale.MustRun(cfg)
	if !sys.PerfMet {
		t.Fatal("fixed demand missed")
	}
	if sysscale.PowerReduction(sys, base) < 0.05 {
		t.Fatal("battery saving too small through the public API")
	}
}

// TestRunBatchMatchesRun verifies the concurrent batch facade returns
// input-ordered results identical to sequential Run calls, with one
// shared policy value across all configs.
func TestRunBatchMatchesRun(t *testing.T) {
	sys := sysscale.NewSysScale()
	var cfgs []sysscale.Config
	for _, name := range []string{"416.gamess", "470.lbm", "473.astar"} {
		w, err := sysscale.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = sys
		cfg.Duration = 300 * sysscale.Millisecond
		cfgs = append(cfgs, cfg)
	}
	batch, err := sysscale.RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		seq, err := sysscale.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], seq) {
			t.Errorf("batch result %d (%s) differs from sequential Run", i, cfg.Workload.Name)
		}
	}

	eng := sysscale.NewEngine(sysscale.WithParallelism(2))
	again, err := eng.RunBatch([]sysscale.Job{{Config: cfgs[0]}, {Config: cfgs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again[0], again[1]) {
		t.Fatal("duplicate configs disagree")
	}
}

// TestCustomPolicy verifies the Policy interface is implementable from
// outside the module internals.
type alwaysLow struct{}

func (alwaysLow) Name() string           { return "always-low" }
func (alwaysLow) Reset()                 {}
func (alwaysLow) Clone() sysscale.Policy { return alwaysLow{} }
func (alwaysLow) Decide(ctx sysscale.PolicyContext) sysscale.PolicyDecision {
	target := ctx.Ladder[len(ctx.Ladder)-1]
	return sysscale.PolicyDecision{
		Target:       target,
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(target),
		MemBudget:    ctx.WorstMem(target),
	}
}

func TestCustomPolicy(t *testing.T) {
	w, _ := sysscale.SPEC("416.gamess")
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = alwaysLow{}
	cfg.Duration = 300 * sysscale.Millisecond
	res, err := sysscale.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointResidency[1] < 0.9 {
		t.Fatalf("custom policy not honored: low residency %.2f", res.PointResidency[1])
	}
}

// TestGeneratorThroughPublicAPI drives the stochastic workload
// generator, the mutators and the trace format exactly as a downstream
// user would: generate a population, derive a family, persist it, read
// it back, replay it, and simulate a generated workload.
func TestGeneratorThroughPublicAPI(t *testing.T) {
	cfg := sysscale.DefaultGenConfig(77)
	ws := sysscale.GenerateWorkloads(cfg, 5)
	if len(ws) != 5 {
		t.Fatalf("got %d workloads", len(ws))
	}
	if !reflect.DeepEqual(ws, sysscale.GenerateWorkloads(cfg, 5)) {
		t.Fatal("generation not deterministic through the public API")
	}

	fam := sysscale.MutateWorkloads(ws[0], 3, 4,
		sysscale.SplitPhases(0.5),
		sysscale.JitterDurations(0.2),
		sysscale.ScaleBW(0.8, 1.4),
		sysscale.InjectIdle(0.3, 50*sysscale.Millisecond),
	)
	if len(fam) != 4 {
		t.Fatalf("family size %d", len(fam))
	}
	for _, v := range fam {
		if err := v.Validate(); err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
	}

	var buf bytes.Buffer
	if err := sysscale.WriteWorkloadTrace(&buf, sysscale.NewWorkloadTrace(cfg, 3)); err != nil {
		t.Fatal(err)
	}
	tr, err := sysscale.ReadWorkloadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, ws[:3]) {
		t.Fatal("trace replay differs from direct generation")
	}

	run := sysscale.DefaultConfig()
	run.Workload = ws[0]
	run.Policy = sysscale.NewSysScale()
	run.Duration = ws[0].TotalDuration()
	res, err := sysscale.Run(run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("generated workload scored %v", res.Score)
	}
}

// TestRunAPIv2Surface exercises the v2 entry points end to end through
// the facade: context cancellation, streaming, the sweep builder, the
// default-engine cache controls, and the typed error taxonomy.
func TestRunAPIv2Surface(t *testing.T) {
	w, err := sysscale.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = sysscale.NewSysScale()
	cfg.Duration = 300 * sysscale.Millisecond

	// RunContext with a live context matches Run bit-for-bit; with a
	// dead context it reports context.Canceled.
	want, err := sysscale.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sysscale.RunContext(context.Background(), cfg)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("RunContext diverged from Run (err %v)", err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sysscale.RunContext(dead, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext returned %v", err)
	}
	if _, err := sysscale.RunBatchContext(dead, []sysscale.Config{cfg}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunBatchContext returned %v", err)
	}

	// StreamBatch delivers every config exactly once with batch-equal
	// results.
	cfgs := []sysscale.Config{cfg, cfg, cfg}
	seen := 0
	for jr := range sysscale.StreamBatch(context.Background(), cfgs) {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", jr.Index, jr.Err)
		}
		if !reflect.DeepEqual(jr.Result, want) {
			t.Fatalf("job %d streamed a different result", jr.Index)
		}
		seen++
	}
	if seen != len(cfgs) {
		t.Fatalf("stream delivered %d of %d jobs", seen, len(cfgs))
	}

	// The default engine is observable and drainable.
	if sysscale.DefaultEngine() == nil {
		t.Fatal("DefaultEngine is nil")
	}
	if s := sysscale.CacheStats(); s.Entries == 0 {
		t.Fatalf("cache empty after batches: %+v", s)
	}
	sysscale.ClearCache()
	if s := sysscale.CacheStats(); s.Entries != 0 {
		t.Fatalf("ClearCache left %d entries", s.Entries)
	}

	// Sweep builder + comparison matrix.
	rs, err := sysscale.NewSweep().
		Policies(sysscale.NewBaseline(), sysscale.NewSysScale()).
		Workloads(w).
		Configure(func(c *sysscale.Config) { c.Duration = 300 * sysscale.Millisecond }).
		RunContext(context.Background(), sysscale.DefaultEngine())
	if err != nil {
		t.Fatal(err)
	}
	perf := rs.PerfImprovement(0)
	if v, ok := perf.Value("sysscale", w.Name); !ok || v <= 0 {
		t.Fatalf("sweep perf matrix = (%v, %v), want a positive sysscale gain", v, ok)
	}

	// Typed errors: invalid configs wrap ErrInvalidConfig and identify
	// the job; cancellation is distinguishable.
	bad := cfg
	bad.Duration = -1
	_, err = sysscale.RunBatch([]sysscale.Config{cfg, bad})
	var je *sysscale.JobError
	if !errors.As(err, &je) || je.Index != 1 {
		t.Fatalf("batch error %v does not identify job 1 via *JobError", err)
	}
	if !errors.Is(err, sysscale.ErrInvalidConfig) || errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v misclassified", err)
	}
}

// TestDiskCacheThroughPublicAPI: the persistent result tier end to
// end on the public surface — WithDiskCache, DiskCacheError, and the
// Disk* stats; a fresh engine over the same directory serves the job
// from disk bit-identically.
func TestDiskCacheThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	w, err := sysscale.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = sysscale.NewSysScale()
	cfg.Duration = 300 * sysscale.Millisecond

	first := sysscale.NewEngine(sysscale.WithDiskCache(dir))
	if err := first.DiskCacheError(); err != nil {
		t.Fatal(err)
	}
	want, err := first.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.CacheStats(); st.DiskMisses != 1 || st.DiskBytes <= 0 {
		t.Errorf("first run stats = %+v, want 1 disk miss and persisted bytes", st)
	}

	second := sysscale.NewEngine(sysscale.WithDiskCache(dir))
	got, err := second.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk-served result differs from computed result")
	}
	st := second.CacheStats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("second engine stats = %+v, want 1 disk hit, 0 simulations", st)
	}
}

// TestRobustnessThroughPublicAPI: the fault-hardening surface —
// RunBatchPartial keeps good results when a sibling job fails,
// WithJobTimeout turns an over-budget run into an ErrJobTimeout-classed
// *JobError (distinct from cancellation collateral), and the exported
// error types are the ones the engine actually produces.
func TestRobustnessThroughPublicAPI(t *testing.T) {
	w, err := sysscale.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	good := sysscale.DefaultConfig()
	good.Workload = w
	good.Policy = sysscale.NewSysScale()
	good.Duration = 300 * sysscale.Millisecond

	bad := good
	bad.Duration = -1

	// RunBatchPartial returns every job: index 1 fails with a typed
	// *JobError wrapping ErrInvalidConfig, indexes 0 and 2 succeed and
	// match a clean run bit for bit.
	want, err := sysscale.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	out := sysscale.RunBatchPartial(context.Background(), []sysscale.Config{good, bad, good})
	if len(out) != 3 {
		t.Fatalf("RunBatchPartial returned %d results, want 3", len(out))
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || !reflect.DeepEqual(out[i].Result, want) {
			t.Fatalf("job %d = (%v, err %v), want the clean result", i, out[i].Result, out[i].Err)
		}
	}
	var je *sysscale.JobError
	if !errors.As(out[1].Err, &je) || je.Index != 1 || !errors.Is(out[1].Err, sysscale.ErrInvalidConfig) {
		t.Fatalf("bad job error = %v, want *JobError{Index: 1} wrapping ErrInvalidConfig", out[1].Err)
	}

	// A per-job deadline too small for any simulation fails with
	// ErrJobTimeout — and never masquerades as context cancellation, so
	// batch collateral filters cannot swallow it.
	hard := sysscale.NewEngine(sysscale.WithJobTimeout(time.Nanosecond))
	if _, err := hard.Run(good); !errors.Is(err, sysscale.ErrJobTimeout) {
		t.Fatalf("nanosecond-budget run returned %v, want ErrJobTimeout", err)
	} else if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		t.Fatalf("ErrJobTimeout %v must not match the context sentinels", err)
	}

	// A generous deadline plus retries leaves a healthy run untouched.
	soft := sysscale.NewEngine(
		sysscale.WithJobTimeout(time.Minute),
		sysscale.WithRetry(2, 0),
		sysscale.WithRetryTimeouts(true),
	)
	got, err := soft.Run(good)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("hardened engine diverged from clean run (err %v)", err)
	}

	// The exported robustness types are usable as advertised.
	var pe *sysscale.PanicError
	if errors.As(out[1].Err, &pe) {
		t.Fatalf("config error misclassified as PanicError: %v", pe)
	}
	if sysscale.ErrDiskDegraded.Error() == "" {
		t.Fatal("ErrDiskDegraded has no message")
	}
}
