// Package examples compiles and runs the public-API quick-start
// snippets from the sysscale package documentation as Example
// functions, so the documented contract is build- and
// output-verified on every test run (the README and doc.go snippets
// can never silently rot). Each example prints derived, perfectly
// deterministic facts — comparisons and counts, not raw floats — so
// the expected output is stable across architectures.
package examples

import (
	"context"
	"errors"
	"fmt"
	"log"

	"sysscale"
)

// Example_quickstart is the doc.go quick start: one SPEC workload
// under the worst-case baseline and under SysScale, compared with the
// package helpers.
func Example_quickstart() {
	w, err := sysscale.SPEC("416.gamess")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = sysscale.Second

	cfg.Policy = sysscale.NewBaseline()
	base, err := sysscale.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Policy = sysscale.NewSysScale()
	sys, err := sysscale.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sysscale faster:", sysscale.PerfImprovement(sys, base) > 0)
	fmt.Println("sysscale leaves the top point:", sys.PointResidency[0] < 1)
	// Output:
	// sysscale faster: true
	// sysscale leaves the top point: true
}

// Example_runBatch is the doc.go batch snippet: one Policy value backs
// every config (the engine clones it per job) and results come back in
// input order.
func Example_runBatch() {
	sys := sysscale.NewSysScale()
	var cfgs []sysscale.Config
	for _, w := range sysscale.GraphicsSuite() {
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = sys
		cfgs = append(cfgs, cfg)
	}
	results, err := sysscale.RunBatch(cfgs) // results[i] ↔ cfgs[i]
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("results:", len(results))
	fmt.Println("in input order:", results[0].Workload == cfgs[0].Workload.Name)
	// Output:
	// results: 3
	// in input order: true
}

// Example_sweep builds a policy × workload cross-product with the
// Sweep builder and reads the comparison matrix the evaluation figures
// are made of.
func Example_sweep() {
	rs, err := sysscale.NewSweep().
		Policies(sysscale.NewBaseline(), sysscale.NewSysScale()).
		Workloads(sysscale.BatterySuite()...).
		RunContext(context.Background(), sysscale.DefaultEngine())
	if err != nil {
		log.Fatal(err)
	}
	power := rs.PowerReduction(0) // matrix vs the baseline column
	saves := 0
	for wi := range rs.Workloads {
		if power.Values[1][wi] > 0 {
			saves++
		}
	}
	fmt.Printf("sysscale saves power on %d/%d battery workloads\n", saves, len(rs.Workloads))
	// Output:
	// sysscale saves power on 4/4 battery workloads
}

// Example_stream consumes a sweep as it completes: one JobResult per
// config, tagged with its input index, in O(parallelism) memory.
func Example_stream() {
	sys := sysscale.NewSysScale()
	var cfgs []sysscale.Config
	for _, w := range sysscale.GraphicsSuite() {
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = sys
		cfgs = append(cfgs, cfg)
	}
	delivered := make([]bool, len(cfgs))
	for jr := range sysscale.StreamBatch(context.Background(), cfgs) {
		if jr.Err != nil {
			log.Fatal(jr.Err)
		}
		delivered[jr.Index] = true
	}
	fmt.Println("all delivered:", delivered[0] && delivered[1] && delivered[2])
	// Output:
	// all delivered: true
}

// Example_cancellation shows the context contract: a cancelled run
// unwinds within one policy epoch and reports context.Canceled, and
// invalid configurations are typed errors, not strings.
func Example_cancellation() {
	w, err := sysscale.SPEC("470.lbm")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = sysscale.NewSysScale()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // e.g. Ctrl-C via signal.NotifyContext
	_, err = sysscale.RunContext(ctx, cfg)
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))

	bad := cfg
	bad.Duration = -1
	_, err = sysscale.RunBatch([]sysscale.Config{cfg, bad})
	var je *sysscale.JobError
	fmt.Println("invalid config:", errors.Is(err, sysscale.ErrInvalidConfig))
	fmt.Println("failed job index:", func() int { errors.As(err, &je); return je.Index }())
	// Output:
	// cancelled: true
	// invalid config: true
	// failed job index: 1
}
