// TDP sweep: reproduce the Fig. 10 sensitivity study on a subset of
// SPEC CPU2006. The tighter the thermal budget, the more a watt freed
// from the IO and memory domains is worth to the cores — at 3.5W
// SysScale's average gain roughly doubles versus 4.5W, while at 15W
// power is ample and redistribution buys almost nothing.
package main

import (
	"fmt"
	"log"

	"sysscale"
)

func main() {
	workloads := []string{"416.gamess", "445.gobmk", "403.gcc", "482.sphinx3", "470.lbm"}
	tdps := []sysscale.Watt{3.5, 4.5, 7, 15}

	fmt.Printf("%-14s", "benchmark")
	for _, t := range tdps {
		fmt.Printf("  %6.1fW", float64(t))
	}
	fmt.Println()

	for _, name := range workloads {
		w, err := sysscale.SPEC(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", name)
		for _, tdp := range tdps {
			cfg := sysscale.DefaultConfig()
			cfg.Workload = w
			cfg.TDP = tdp
			cfg.Duration = 3 * sysscale.Second

			cfg.Policy = sysscale.NewBaseline()
			base, err := sysscale.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Policy = sysscale.NewSysScale()
			sys, err := sysscale.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %+5.1f%%", 100*sysscale.PerfImprovement(sys, base))
		}
		fmt.Println()
	}
	fmt.Println("\nPaper (Fig. 10): 3.5W up to 33% (avg 19.1%); gains shrink as TDP grows.")
}
