// Battery life: reproduce the §7.3 scenario — fixed-performance mobile
// workloads (web browsing, light gaming, video conferencing, video
// playback) on a single-HD-panel laptop. SysScale cannot make a 60fps
// video faster, so the win is average power: the IO and memory domains
// drop to the low operating point whenever DRAM is active, and the
// package spends less energy per frame while still meeting every
// deadline (PerfMet).
package main

import (
	"fmt"
	"log"

	"sysscale"
)

func main() {
	fmt.Println("workload          baseline      SysScale     saving  demand met")
	fmt.Println("---------------   -----------   ----------   ------  ----------")
	for _, w := range sysscale.BatterySuite() {
		cfg := sysscale.DefaultConfig()
		cfg.Workload = w
		cfg.Duration = 6 * sysscale.Second

		cfg.Policy = sysscale.NewBaseline()
		base, err := sysscale.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Policy = sysscale.NewSysScale()
		sys, err := sysscale.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %8.3f W   %8.3f W   %5.1f%%  %v\n",
			w.Name, float64(base.AvgPower), float64(sys.AvgPower),
			100*sysscale.PowerReduction(sys, base), sys.PerfMet)
	}
	fmt.Println()
	fmt.Println("Paper (Fig. 9): web 6.4%, gaming 9.5%, video-conf 7.6%, playback 10.7%.")
	fmt.Println("Savings only accrue while DRAM is active (C0/C2); in deep package")
	fmt.Println("C-states DRAM is already in self-refresh and there is nothing to scale.")
}
