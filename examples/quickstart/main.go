// Quickstart: run one SPEC CPU2006 workload under the worst-case
// baseline and under SysScale on the paper's 4.5W platform, and report
// the performance improvement from multi-domain DVFS with power-budget
// redistribution.
package main

import (
	"fmt"
	"log"

	"sysscale"
)

func main() {
	w, err := sysscale.SPEC("473.astar")
	if err != nil {
		log.Fatal(err)
	}

	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 9 * sysscale.Second // two loops of astar's phases

	cfg.Policy = sysscale.NewBaseline()
	base, err := sysscale.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Policy = sysscale.NewSysScale()
	sys, err := sysscale.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== baseline (worst-case IO/memory provisioning) ===")
	fmt.Println(base)
	fmt.Println("=== SysScale ===")
	fmt.Println(sys)
	fmt.Printf("performance improvement: %+.1f%%  (astar's phased demand lets SysScale\n", 100*sysscale.PerfImprovement(sys, base))
	fmt.Printf("drop to the low point during calm phases and boost the cores)\n")
	fmt.Printf("EDP improvement: %+.1f%%\n", 100*sysscale.EDPImprovement(sys, base))
}
