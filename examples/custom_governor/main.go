// Custom governor: the Policy interface accepts user-defined
// power-management algorithms. This example implements a naive
// bandwidth-utilization governor (drop to the low point whenever
// measured traffic is under a fixed fraction of peak — no latency
// conditions, no static CSR table, no per-frequency MRC reload) and
// compares it against SysScale on a latency-sensitive workload, where
// the missing LLC_STALLS condition makes the naive governor lose
// performance SysScale preserves.
package main

import (
	"fmt"
	"log"

	"sysscale"
)

// utilGovernor drops to the low point purely on bandwidth utilization.
type utilGovernor struct {
	target float64
}

func (g *utilGovernor) Name() string { return "naive-util" }
func (g *utilGovernor) Reset()       {}
func (g *utilGovernor) Clone() sysscale.Policy {
	c := *g
	return &c
}

func (g *utilGovernor) Decide(ctx sysscale.PolicyContext) sysscale.PolicyDecision {
	top := ctx.Ladder[0]
	low := ctx.Ladder[len(ctx.Ladder)-1]
	// MemReadBytes/MemWriteBytes are counter indices 5 and 6; the
	// utilization is taken against the top point's usable bandwidth.
	bw := ctx.Counters[5] + ctx.Counters[6]
	peak := 25.6e9 * 0.85
	target := top
	if !ctx.Warmup && bw < g.target*peak {
		target = low
	}
	return sysscale.PolicyDecision{
		Target:       target,
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(target),
		MemBudget:    ctx.WorstMem(target),
	}
}

func main() {
	// omnetpp: modest bandwidth but heavily latency bound — the
	// workload class that punishes utilization-only governors.
	w, err := sysscale.SPEC("471.omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sysscale.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 4 * sysscale.Second

	run := func(p sysscale.Policy) sysscale.Result {
		c := cfg
		c.Policy = p
		r, err := sysscale.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(sysscale.NewBaseline())
	naive := run(&utilGovernor{target: 0.40})
	sys := run(sysscale.NewSysScale())

	fmt.Printf("baseline:   score %.4f, %.3fW\n", base.Score, float64(base.AvgPower))
	fmt.Printf("naive-util: score %.4f (%+.1f%%), %.3fW\n", naive.Score,
		100*sysscale.PerfImprovement(naive, base), float64(naive.AvgPower))
	fmt.Printf("sysscale:   score %.4f (%+.1f%%), %.3fW\n", sys.Score,
		100*sysscale.PerfImprovement(sys, base), float64(sys.AvgPower))
	fmt.Println("\nThe naive governor sees omnetpp's low bandwidth and drops the memory")
	fmt.Println("domain, paying the latency penalty; SysScale's LLC_STALLS condition")
	fmt.Println("keeps the high point because the workload is latency bound (§4.2).")
}
