module sysscale

go 1.24
