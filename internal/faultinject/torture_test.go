package faultinject

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"sysscale/internal/diskcache"
	"sysscale/internal/engine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// tortureSize is the torture batch size — the acceptance bar is >= 500
// jobs per parallelism level.
const tortureSize = 600

// torturePlan maps ~2% of jobs to panics, ~2% to aborts, ~1% to
// stalls, deterministically in the seed.
var torturePlan = Plan{Seed: 0xC0FFEE, PanicPerMille: 20, AbortPerMille: 20, StallPerMille: 10}

// tortureWorkloads returns a small mixed suite.
func tortureWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, n := range []string{"416.gamess", "470.lbm", "473.astar"} {
		w, err := workload.SPEC(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return append(ws, workload.GraphicsSuite()[0])
}

// tortureJobs builds the torture batch: tortureSize jobs over a mixed
// workload × policy grid, every config made distinct via Seed (so
// nothing coalesces and stats count exactly), with the plan's fault
// kinds wired in as chaos policy wrappers. Stall jobs carry a per-job
// deadline far below their stall, so they fail with ErrJobTimeout
// deterministically. Returns the jobs and each job's planned kind.
func tortureJobs(t *testing.T) ([]engine.Job, []Kind) {
	t.Helper()
	ws := tortureWorkloads(t)
	pols := []func() soc.Policy{
		func() soc.Policy { return policy.NewBaseline() },
		func() soc.Policy { return policy.NewSysScaleDefault() },
		func() soc.Policy { return policy.NewMemScaleRedist() },
		func() soc.Policy { return policy.NewCoScaleRedist() },
	}
	jobs := make([]engine.Job, 0, tortureSize)
	kinds := make([]Kind, tortureSize)
	for i := 0; i < tortureSize; i++ {
		cfg := soc.DefaultConfig()
		cfg.Workload = ws[i%len(ws)]
		cfg.Policy = pols[i%len(pols)]()
		cfg.Duration = 120 * sim.Millisecond
		cfg.Seed = uint64(i) // distinct fingerprint per job
		job := engine.Job{Config: cfg}
		kinds[i] = torturePlan.Kind(i)
		switch kinds[i] {
		case KindPanic:
			job.Config.Policy = NewChaos(cfg.Policy, ModePanic)
		case KindAbort:
			job.Config.Policy = NewChaos(cfg.Policy, ModeAbort)
		case KindStall:
			ch := NewChaos(cfg.Policy, ModeStall)
			ch.Stall = 150 * time.Millisecond
			job.Config.Policy = ch
			job.Timeout = 30 * time.Millisecond
		}
		jobs = append(jobs, job)
	}
	return jobs, kinds
}

// kindCounts tallies a plan's kinds.
func kindCounts(kinds []Kind) map[Kind]int {
	m := make(map[Kind]int)
	for _, k := range kinds {
		m[k]++
	}
	return m
}

// TestTortureBatch is the acceptance torture run (run under -race): at
// parallelism 1, 4, and 16, a 600-job batch with injected panics,
// aborts, stalls, and disk I/O faults must complete without crashing,
// leave zero Runners checked out, fail exactly the planned jobs with
// exactly the planned error classes, return every clean job's result
// bit-identical to a fault-free baseline, and account Hits / Misses /
// Panics / DiskErrors exactly — at every parallelism level, with the
// identical injected fault set (that is what seed-determinism means).
func TestTortureBatch(t *testing.T) {
	jobs, kinds := tortureJobs(t)
	counts := kindCounts(kinds)
	if clean := counts[KindNone]; clean == 0 || clean == tortureSize {
		t.Fatalf("degenerate plan: %v", counts)
	}
	t.Logf("fault plan over %d jobs: %d panic, %d abort, %d stall",
		tortureSize, counts[KindPanic], counts[KindAbort], counts[KindStall])

	// Fault-free baseline for the clean jobs, computed once.
	base := engine.New(engine.WithParallelism(4))
	want := make([]soc.Result, len(jobs))
	for i, j := range jobs {
		if kinds[i] != KindNone {
			continue
		}
		r, err := base.Run(j.Config)
		if err != nil {
			t.Fatalf("baseline job %d: %v", i, err)
		}
		want[i] = r
	}

	var firstInjected int64 = -1
	for _, par := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			store, err := diskcache.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			faulty := NewStore(store, 0xD15C)
			faulty.FailGets(150) // 15% of keys fail reads
			faulty.FailPuts(150) // 15% of keys fail writes
			e := engine.New(
				engine.WithParallelism(par),
				engine.WithDiskTier(faulty),
				engine.WithDiskBreaker(0, 0), // bare tier: exact per-job error accounting
			)

			results := e.RunBatchPartial(context.Background(), jobs)
			if got := engine.RunnersInFlight(); got != 0 {
				t.Fatalf("runnersInFlight = %d after batch, want 0", got)
			}
			if len(results) != len(jobs) {
				t.Fatalf("%d results for %d jobs", len(results), len(jobs))
			}

			for i, jr := range results {
				if jr.Index != i {
					t.Fatalf("result %d carries index %d", i, jr.Index)
				}
				switch kinds[i] {
				case KindNone:
					if jr.Err != nil {
						t.Errorf("clean job %d failed: %v", i, jr.Err)
						continue
					}
					if !reflect.DeepEqual(jr.Result, want[i]) {
						t.Errorf("clean job %d not bit-identical to fault-free run", i)
					}
				case KindPanic:
					var pe *engine.PanicError
					if !errors.As(jr.Err, &pe) {
						t.Errorf("panic job %d: err %v, want *PanicError", i, jr.Err)
					} else if len(pe.Stack) == 0 {
						t.Errorf("panic job %d: empty stack", i)
					}
				case KindAbort:
					var fe *FaultError
					if !errors.As(jr.Err, &fe) {
						t.Errorf("abort job %d: err %v, want *FaultError", i, jr.Err)
					}
				case KindStall:
					if !errors.Is(jr.Err, engine.ErrJobTimeout) {
						t.Errorf("stall job %d: err %v, want ErrJobTimeout", i, jr.Err)
					}
					if errors.Is(jr.Err, context.DeadlineExceeded) {
						t.Errorf("stall job %d: timeout reads as DeadlineExceeded — collateral filters would eat it", i)
					}
				}
			}

			// Exact accounting. Every clean job is a distinct cacheable
			// config: one simulation (a Miss), one disk lookup (all
			// misses — fresh dir — some injected), one write-through.
			// Chaos jobs are uncacheable and all fail: no cache or disk
			// traffic, no Misses.
			clean := counts[KindNone]
			st := e.CacheStats()
			if st.Misses != clean || st.Hits != 0 {
				t.Errorf("Misses/Hits = %d/%d, want %d/0", st.Misses, st.Hits, clean)
			}
			if st.Panics != counts[KindPanic] {
				t.Errorf("Panics = %d, want %d", st.Panics, counts[KindPanic])
			}
			injected := faulty.InjectedGets() + faulty.InjectedPuts()
			if injected == 0 {
				t.Fatalf("no disk faults fired — torture isn't torturing")
			}
			if st.DiskErrors != int(injected) {
				t.Errorf("DiskErrors = %d, want %d (ground truth)", st.DiskErrors, injected)
			}
			if st.DiskMisses != clean || st.DiskHits != 0 {
				t.Errorf("DiskMisses/DiskHits = %d/%d, want %d/0", st.DiskMisses, st.DiskHits, clean)
			}
			// The injected fault set is scheduling-independent: every
			// parallelism level must fire the identical count.
			if firstInjected < 0 {
				firstInjected = injected
			} else if injected != firstInjected {
				t.Errorf("injected faults = %d at parallelism %d, %d at first level — fault set not deterministic",
					injected, par, firstInjected)
			}
		})
	}
}

// TestBrokenDiskTripsBreaker proves the dying-disk contract: once the
// tier fails DefaultBreakerThreshold-consecutive operations, the
// breaker trips within those N jobs, all further I/O stops, and
// Stats.DiskDegraded plus Engine.DiskCacheError report it. When the
// disk heals, the next probe closes the breaker and traffic resumes.
func TestBrokenDiskTripsBreaker(t *testing.T) {
	store, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewStore(store, 1)
	faulty.SetBroken(true)

	const threshold = 4
	e := engine.New(
		engine.WithParallelism(1), // deterministic op order
		engine.WithDiskTier(faulty),
		engine.WithDiskBreaker(threshold, 50*time.Millisecond),
	)

	ws := tortureWorkloads(t)
	var jobs []engine.Job
	for i := 0; i < 40; i++ {
		cfg := soc.DefaultConfig()
		cfg.Workload = ws[i%len(ws)]
		cfg.Policy = policy.NewBaseline()
		cfg.Duration = 120 * sim.Millisecond
		cfg.Seed = uint64(i)
		jobs = append(jobs, engine.Job{Config: cfg})
	}
	if _, err := e.RunBatch(jobs); err != nil {
		t.Fatalf("degraded-disk batch failed: %v (disk faults must never fail jobs)", err)
	}
	// At parallelism 1 the op sequence is Get,Put per job: exactly
	// `threshold` operations reach the tier before the trip, then zero.
	if got := faulty.Ops(); got != threshold {
		t.Errorf("tier saw %d operations, want exactly %d (trip then silence)", got, threshold)
	}
	if st := e.CacheStats(); !st.DiskDegraded {
		t.Errorf("Stats.DiskDegraded = false on a tripped tier")
	}
	if err := e.DiskCacheError(); !errors.Is(err, engine.ErrDiskDegraded) {
		t.Errorf("DiskCacheError = %v, want ErrDiskDegraded-classed", err)
	}

	// Heal the disk; after the probe interval the next operation is
	// admitted as a probe, succeeds, and closes the breaker.
	faulty.SetBroken(false)
	time.Sleep(80 * time.Millisecond)
	e.ClearCache() // force disk lookups (results are memoized in the LRU)
	if _, err := e.RunBatch(jobs[:10]); err != nil {
		t.Fatalf("post-heal batch failed: %v", err)
	}
	if st := e.CacheStats(); st.DiskDegraded {
		t.Errorf("breaker still open after the disk healed and a probe ran")
	}
	if err := e.DiskCacheError(); err != nil {
		t.Errorf("DiskCacheError = %v after heal, want nil", err)
	}
	if faulty.InnerOps() == 0 {
		t.Errorf("no I/O reached the healed tier")
	}
	if engine.RunnersInFlight() != 0 {
		t.Errorf("runnersInFlight = %d, want 0", engine.RunnersInFlight())
	}
}

// TestRetryTransient: a job whose first two attempts abort with a
// transient fault succeeds on the third attempt under WithRetry(2+),
// with the retries counted.
func TestRetryTransient(t *testing.T) {
	cfg := soc.DefaultConfig()
	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = w
	cfg.Duration = 120 * sim.Millisecond
	clean := policy.NewBaseline()
	want, err := soc.Run(func() soc.Config { c := cfg; c.Policy = clean.Clone(); return c }())
	if err != nil {
		t.Fatal(err)
	}

	ch := NewChaos(policy.NewBaseline(), ModeAbort)
	ch.FailFirst = 2
	cfg.Policy = ch
	e := engine.New(engine.WithRetry(3, 0))
	got, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("job failed despite retries: %v", err)
	}
	if ch.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3 (two failures + one success)", ch.Attempts())
	}
	if st := e.CacheStats(); st.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", st.Retries)
	}
	// The wrapper renames the policy in the result; every numeric field
	// must still be bit-identical to the clean run.
	want.Policy = got.Policy
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retried result differs from a clean run")
	}
}

// TestRetryClassification: panics and invalid configs are never
// retried, whatever the retry budget.
func TestRetryClassification(t *testing.T) {
	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("panic", func(t *testing.T) {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Duration = 120 * sim.Millisecond
		ch := NewChaos(policy.NewBaseline(), ModePanic)
		cfg.Policy = ch
		e := engine.New(engine.WithRetry(5, 0))
		_, err := e.Run(cfg)
		var pe *engine.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
		if ch.Attempts() != 1 {
			t.Errorf("panicking job attempted %d times, want 1 (panics are bugs, not weather)", ch.Attempts())
		}
		if st := e.CacheStats(); st.Retries != 0 || st.Panics != 1 {
			t.Errorf("Retries/Panics = %d/%d, want 0/1", st.Retries, st.Panics)
		}
	})

	t.Run("invalid-config", func(t *testing.T) {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = policy.NewBaseline()
		cfg.Duration = -1 // rejected by Validate
		e := engine.New(engine.WithRetry(5, 0))
		if _, err := e.Run(cfg); !errors.Is(err, soc.ErrInvalidConfig) {
			t.Fatalf("err = %v, want ErrInvalidConfig", err)
		}
		if st := e.CacheStats(); st.Retries != 0 {
			t.Errorf("config error was retried %d times", st.Retries)
		}
	})
}

// TestRetryTimeoutsOptIn: a stall that times out the first attempt is
// retried only under WithRetryTimeouts, and the healthy second attempt
// succeeds.
func TestRetryTimeoutsOptIn(t *testing.T) {
	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*Chaos, engine.Job) {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Duration = 120 * sim.Millisecond
		ch := NewChaos(policy.NewBaseline(), ModeStall)
		ch.Stall = 150 * time.Millisecond
		ch.FailFirst = 1
		cfg.Policy = ch
		return ch, engine.Job{Config: cfg, Timeout: 30 * time.Millisecond}
	}

	ch, job := build()
	e := engine.New(engine.WithRetry(2, 0), engine.WithRetryTimeouts(true))
	rs := e.RunBatchPartial(context.Background(), []engine.Job{job})
	if rs[0].Err != nil {
		t.Fatalf("timed-out job not recovered by retry: %v", rs[0].Err)
	}
	if ch.Attempts() != 2 {
		t.Errorf("attempts = %d, want 2", ch.Attempts())
	}

	ch, job = build()
	e = engine.New(engine.WithRetry(2, 0)) // timeouts NOT opted in
	rs = e.RunBatchPartial(context.Background(), []engine.Job{job})
	if !errors.Is(rs[0].Err, engine.ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", rs[0].Err)
	}
	if ch.Attempts() != 1 {
		t.Errorf("timeout retried without opt-in (%d attempts)", ch.Attempts())
	}
}

// TestTornWriteHealsAsCorruption: a Put whose write tears on disk
// (reported success, truncated entry) must read back as a pruned
// corruption — a counted miss — and the re-simulated result must be
// bit-identical.
func TestTornWriteHealsAsCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewStore(store, 7)
	faulty.ShortWrites(dir, 1000) // tear every write

	cfg := soc.DefaultConfig()
	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = w
	cfg.Policy = policy.NewBaseline()
	cfg.Duration = 120 * sim.Millisecond

	e := engine.New(engine.WithDiskTier(faulty))
	want, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.TornWrites() == 0 {
		t.Fatalf("no torn writes fired")
	}

	// A fresh engine over the same (torn) directory: the read detects
	// the corruption, prunes, degrades to a miss, and re-simulates.
	e2 := engine.New(engine.WithDiskCache(dir))
	got, err := e2.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("result after torn-write recovery differs")
	}
	st := e2.CacheStats()
	if st.DiskErrors != 1 || st.DiskHits != 0 {
		t.Errorf("DiskErrors/DiskHits = %d/%d, want 1/0 (torn entry pruned, not served)", st.DiskErrors, st.DiskHits)
	}
}

// TestPlanDeterminism: the fault map is a pure function of the seed.
func TestPlanDeterminism(t *testing.T) {
	a, b := torturePlan, torturePlan
	for i := 0; i < tortureSize; i++ {
		if a.Kind(i) != b.Kind(i) {
			t.Fatalf("plan not deterministic at %d", i)
		}
	}
	other := Plan{Seed: torturePlan.Seed + 1, PanicPerMille: 20, AbortPerMille: 20, StallPerMille: 10}
	diff := 0
	for i := 0; i < tortureSize; i++ {
		if torturePlan.Kind(i) != other.Kind(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("different seeds produced identical fault maps")
	}
}
