package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"

	"sysscale/internal/soc"
)

// Mode selects what a Chaos policy does when it fires.
type Mode uint8

const (
	// ModePanic panics with a plain value mid-decision — the
	// misbehaving-policy case the engine's panic isolation must
	// contain: recover on the worker, discard the platform, surface a
	// *PanicError on that one job.
	ModePanic Mode = iota + 1
	// ModeAbort panics with soc.RunAbort carrying a transient
	// FaultError — the policy-layer error escape hatch, surfacing as
	// an ordinary (retryable) job failure.
	ModeAbort
	// ModeStall sleeps inside the decision, modelling a wedged or
	// pathologically slow governor; with a per-job deadline set the
	// job fails with engine.ErrJobTimeout at the next epoch check.
	ModeStall
)

// DefaultStall is ModeStall's sleep when Chaos.Stall is zero.
const DefaultStall = 100 * time.Millisecond

// Chaos wraps a soc.Policy and fires one injected fault at a chosen
// decision index. It deliberately does not expose Unwrap and marks
// itself Uncacheable, so the engine never serves a chaotic job from
// any cache tier, never coalesces it onto a sibling, and re-runs it
// fresh on every retry attempt.
//
// Attempt counting is shared across clones: the engine clones the
// configured policy once per execution attempt, and every clone
// increments one shared counter, so FailFirst = n means "the first n
// attempts fail, the rest succeed" — the shape a retry test needs —
// regardless of which goroutine runs which attempt.
type Chaos struct {
	// FireAt is the decision index (0-based) at which the fault
	// fires.
	FireAt int
	// Stall is ModeStall's sleep (DefaultStall when zero).
	Stall time.Duration
	// FailFirst, when positive, arms the fault only for the first
	// FailFirst attempts; 0 arms it for every attempt.
	FailFirst int

	inner     soc.Policy
	mode      Mode
	attempts  *atomic.Int64
	attempt   int64 // 1-based attempt this clone is; 0 on the prototype
	decisions int
}

// NewChaos wraps inner with a fault of the given mode. Configure
// FireAt / Stall / FailFirst on the returned value before submitting
// it to an engine.
func NewChaos(inner soc.Policy, mode Mode) *Chaos {
	return &Chaos{inner: inner, mode: mode, attempts: new(atomic.Int64)}
}

// Name implements soc.Policy.
func (c *Chaos) Name() string { return c.inner.Name() + "+chaos" }

// Uncacheable opts chaotic jobs out of memoization and coalescing
// (engine.Uncacheable, matched structurally).
func (c *Chaos) Uncacheable() {}

// Reset implements soc.Policy.
func (c *Chaos) Reset() {
	c.decisions = 0
	c.inner.Reset()
}

// Clone implements soc.Policy: the clone shares the attempt counter
// and claims the next attempt number.
func (c *Chaos) Clone() soc.Policy {
	cl := *c
	cl.inner = c.inner.Clone()
	cl.decisions = 0
	cl.attempt = c.attempts.Add(1)
	return &cl
}

// Attempts returns how many execution attempts (clones) the engine has
// made so far.
func (c *Chaos) Attempts() int64 { return c.attempts.Load() }

// armed reports whether this attempt's fault is live.
func (c *Chaos) armed() bool {
	return c.FailFirst == 0 || c.attempt <= int64(c.FailFirst)
}

// Decide implements soc.Policy, firing the configured fault at
// decision index FireAt.
func (c *Chaos) Decide(pc soc.PolicyContext) soc.PolicyDecision {
	d := c.inner.Decide(pc)
	n := c.decisions
	c.decisions++
	if n == c.FireAt && c.armed() {
		switch c.mode {
		case ModePanic:
			panic(fmt.Sprintf("faultinject: chaos panic at decision %d (attempt %d)", n, c.attempt))
		case ModeAbort:
			panic(soc.RunAbort{Err: &FaultError{Op: "decide", Kind: "abort"}})
		case ModeStall:
			stall := c.Stall
			if stall <= 0 {
				stall = DefaultStall
			}
			time.Sleep(stall)
		}
	}
	return d
}
