package faultinject

import (
	"encoding/binary"
	"os"
	"sync/atomic"

	"sysscale/internal/diskcache"
	"sysscale/internal/soc"
)

// Store wraps a diskcache.Tier with deterministic fault injection. It
// satisfies diskcache.Tier itself, so it slots under the engine
// (engine.WithDiskTier) or under a breaker exactly like the real
// store. Faults are decided per content-addressed key — a pure
// function of (seed, key, operation) — so the injected fault set is
// identical whatever order or parallelism the sweep runs at.
//
// Three fault modes, all off by default:
//
//   - FailGets/FailPuts(perMille): the operation fails with an
//     ErrIO-classed transient FaultError before reaching the inner
//     tier — an unreadable file, a failed write. The breaker counts
//     these like real I/O failures.
//   - ShortWrites(dir, perMille): the Put "succeeds" but the entry on
//     disk is truncated afterwards — a torn write the atomic-rename
//     protocol could only suffer from hardware lying about durability.
//     The next Get must detect it as corrupt, prune it, and degrade to
//     a miss.
//   - SetBroken(true): every subsequent operation fails — a disk dying
//     mid-sweep, the scenario the circuit breaker exists for.
//
// Counters (Ops, InjectedGets, InjectedPuts, ShortWrites) expose the
// ground truth the torture tests reconcile engine stats against.
type Store struct {
	inner diskcache.Tier
	seed  uint64

	getPerMille   int
	putPerMille   int
	shortPerMille int
	shortDir      string

	broken atomic.Bool

	ops          atomic.Int64
	injectedGets atomic.Int64
	injectedPuts atomic.Int64
	shortWrites  atomic.Int64
}

// NewStore wraps inner with fault injection under seed. Configure the
// fault modes before handing the store to an engine; the setters are
// not synchronized against in-flight operations.
func NewStore(inner diskcache.Tier, seed uint64) *Store {
	return &Store{inner: inner, seed: seed}
}

// FailGets makes perMille/1000 of keys fail their reads.
func (s *Store) FailGets(perMille int) { s.getPerMille = perMille }

// FailPuts makes perMille/1000 of keys fail their writes.
func (s *Store) FailPuts(perMille int) { s.putPerMille = perMille }

// ShortWrites makes perMille/1000 of keys tear their writes: the Put
// reports success but the entry file under dir is truncated to half.
// dir must be the wrapped store's directory (diskcache.EntryPath
// locates the victim).
func (s *Store) ShortWrites(dir string, perMille int) {
	s.shortDir, s.shortPerMille = dir, perMille
}

// SetBroken switches the dying-disk mode: while true, every operation
// fails with an ErrIO-classed fault and nothing reaches the inner
// tier.
func (s *Store) SetBroken(b bool) { s.broken.Store(b) }

// Ops returns how many operations were issued to this tier (including
// faulted ones).
func (s *Store) Ops() int64 { return s.ops.Load() }

// InnerOps returns how many operations passed through to the inner
// tier — the number that actually issued I/O. A tripped breaker above
// this store freezes both counters; InnerOps is the one that proves no
// I/O happened.
func (s *Store) InnerOps() int64 {
	return s.ops.Load() - s.injectedGets.Load() - s.injectedPuts.Load()
}

// InjectedGets and InjectedPuts count faults fired so far; ShortWrites
// counts torn writes performed.
func (s *Store) InjectedGets() int64 { return s.injectedGets.Load() }

// InjectedPuts counts injected write failures.
func (s *Store) InjectedPuts() int64 { return s.injectedPuts.Load() }

// TornWrites counts short writes performed.
func (s *Store) TornWrites() int64 { return s.shortWrites.Load() }

// keyBits folds a cache key into the fault-decision hash input.
func keyBits(key diskcache.Key) uint64 {
	return binary.LittleEndian.Uint64(key[:8])
}

// Get implements diskcache.Tier.
func (s *Store) Get(key diskcache.Key) (soc.Result, bool, error) {
	s.ops.Add(1)
	if s.broken.Load() || coin(s.seed, keyBits(key)^0x6e74, s.getPerMille) {
		s.injectedGets.Add(1)
		return soc.Result{}, false, ioFault("get")
	}
	return s.inner.Get(key)
}

// Put implements diskcache.Tier.
func (s *Store) Put(key diskcache.Key, res soc.Result) error {
	s.ops.Add(1)
	if s.broken.Load() || coin(s.seed, keyBits(key)^0x7075, s.putPerMille) {
		s.injectedPuts.Add(1)
		return ioFault("put")
	}
	err := s.inner.Put(key, res)
	if err == nil && s.shortDir != "" && coin(s.seed, keyBits(key)^0x746f, s.shortPerMille) {
		// Torn write: the caller saw success, the disk kept half the
		// entry. Best-effort — if the truncate fails the entry is
		// simply intact.
		path := diskcache.EntryPath(s.shortDir, key)
		if info, statErr := os.Stat(path); statErr == nil && info.Size() > 1 {
			if os.Truncate(path, info.Size()/2) == nil {
				s.shortWrites.Add(1)
			}
		}
	}
	return err
}

// Stats implements diskcache.Tier: the inner tier's counters plus the
// injected faults, accounted the way the real store would have —
// every injected fault is an error, and injected read failures are
// also misses (the engine re-simulated those jobs).
func (s *Store) Stats() diskcache.Stats {
	st := s.inner.Stats()
	ig, ip := int(s.injectedGets.Load()), int(s.injectedPuts.Load())
	st.Errors += ig + ip
	st.Misses += ig
	return st
}
