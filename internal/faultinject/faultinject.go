// Package faultinject is the engine's deterministic chaos harness: it
// injects disk-tier I/O failures, torn writes, policy panics, policy
// aborts, and stalls into otherwise-ordinary sweeps, reproducibly.
//
// Determinism is the point. Every fault decision is a pure function of
// a seed and a stable identity — the content-addressed cache key for
// store faults, the job index for fault plans, the attempt number for
// first-N failures — never of wall-clock time or scheduling order. The
// same seed therefore injects the same fault set at parallelism 1, 4,
// or 16, which is what lets the torture tests (-race) assert exact
// stats and bit-identical surviving results instead of "roughly this
// many errors".
//
// Three injectors compose with the production types they wrap:
//
//   - Store wraps any diskcache.Tier with per-key read/write failures
//     (ErrIO-classed, so the circuit breaker sees them as real), torn
//     writes that corrupt the entry on disk after a "successful" Put,
//     and a SetBroken switch modelling a disk dying mid-sweep.
//   - Chaos wraps any soc.Policy and fires one fault at a chosen
//     decision index: a raw panic (exercising the engine's panic
//     isolation), a soc.RunAbort carrying a transient FaultError
//     (exercising retry classification), or a stall (exercising
//     per-job deadlines).
//   - Plan assigns fault kinds to job indices, seed-deterministically,
//     so a 600-job torture batch has a reproducible fault map.
package faultinject

import (
	"fmt"

	"sysscale/internal/diskcache"
)

// FaultError is an injected failure. It classifies as transient
// (Transient() true — the engine's retry layer re-runs it when
// WithRetry is configured) and additionally wraps the sentinel of the
// layer it was injected into (diskcache.ErrIO for store faults), so
// the wrapped layer's own consumers — the circuit breaker above all —
// treat it exactly like the real failure it models.
type FaultError struct {
	// Op names the faulted operation ("get", "put", "decide").
	Op string
	// Kind names the fault ("io", "abort").
	Kind string
	// class is the sentinel this fault additionally classes under
	// (nil, or e.g. diskcache.ErrIO).
	class error
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.class != nil {
		return fmt.Sprintf("faultinject: injected %s fault in %s: %v", e.Kind, e.Op, e.class)
	}
	return fmt.Sprintf("faultinject: injected %s fault in %s", e.Kind, e.Op)
}

// Unwrap exposes the modelled layer's sentinel to errors.Is.
func (e *FaultError) Unwrap() error { return e.class }

// Transient reports true: injected faults model environmental
// failures, the class the engine's WithRetry layer re-runs.
func (e *FaultError) Transient() bool { return true }

// ioFault builds the store-fault error for op.
func ioFault(op string) *FaultError {
	return &FaultError{Op: op, Kind: "io", class: diskcache.ErrIO}
}

// splitmix64 is the fault-decision hash: one round of SplitMix64,
// statistically solid for per-key/per-index coin flips and trivially
// reproducible in any language.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coin reports a deterministic perMille-in-1000 decision for identity
// under seed (perMille <= 0 never fires, >= 1000 always fires).
func coin(seed, identity uint64, perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return int(splitmix64(seed^identity)%1000) < perMille
}

// Kind is one job's assigned fault in a Plan.
type Kind uint8

const (
	// KindNone runs the job clean.
	KindNone Kind = iota
	// KindPanic fires a raw policy panic (engine panic isolation).
	KindPanic
	// KindAbort fires a soc.RunAbort carrying a transient FaultError
	// (engine error path + retry classification).
	KindAbort
	// KindStall sleeps inside a policy decision (per-job deadlines).
	KindStall
)

// String implements fmt.Stringer for test diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanic:
		return "panic"
	case KindAbort:
		return "abort"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Plan assigns fault kinds to job indices, deterministically in Seed:
// the same plan maps the same indices to the same kinds whatever the
// engine's parallelism or scheduling, so a torture test knows exactly
// which jobs must fail, how, and which must come back bit-identical to
// a fault-free run. Rates are per-mille and drawn disjointly (a job
// gets at most one kind); their sum must stay <= 1000.
type Plan struct {
	Seed uint64
	// PanicPerMille/AbortPerMille/StallPerMille are the per-job
	// probabilities (in 1/1000) of each fault kind.
	PanicPerMille int
	AbortPerMille int
	StallPerMille int
}

// Kind returns job index i's assigned fault.
func (p Plan) Kind(i int) Kind {
	r := int(splitmix64(p.Seed^(uint64(i)+0x51a7)) % 1000)
	if r < p.PanicPerMille {
		return KindPanic
	}
	r -= p.PanicPerMille
	if r < p.AbortPerMille {
		return KindAbort
	}
	r -= p.AbortPerMille
	if r < p.StallPerMille {
		return KindStall
	}
	return KindNone
}
