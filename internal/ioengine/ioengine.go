// Package ioengine models the IO-domain engines and controllers: the
// display controller, the camera image-signal-processor (ISP), and
// their control-and-status registers (CSRs). The CSRs expose the
// *static configuration* — number of active panels, resolution, refresh
// rate, camera streams — from which SysScale's firmware estimates the
// static bandwidth/latency demand (§4.2: "the bandwidth demand of a
// given peripheral configuration is known and is deterministic").
package ioengine

import (
	"fmt"

	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// Resolution identifies a display panel class.
type Resolution int

// Panel classes evaluated in Fig. 3(b).
const (
	DisplayOff Resolution = iota
	DisplayHD             // 1366x768-class laptop panel
	DisplayFHD
	DisplayQHD
	Display4K // highest supported quality on the platform
)

func (r Resolution) String() string {
	switch r {
	case DisplayOff:
		return "off"
	case DisplayHD:
		return "HD"
	case DisplayFHD:
		return "FHD"
	case DisplayQHD:
		return "QHD"
	case Display4K:
		return "4K"
	default:
		return fmt.Sprintf("Resolution(%d)", int(r))
	}
}

// bandwidthFrac returns the fraction of the dual-channel LPDDR3-1600
// peak (25.6GB/s) one panel of this class consumes, calibrated to
// Fig. 3(b): an HD panel needs ~17% of peak and a single 4K panel ~70%.
func (r Resolution) bandwidthFrac(refreshHz float64) float64 {
	var at60 float64
	switch r {
	case DisplayHD:
		at60 = 0.17
	case DisplayFHD:
		at60 = 0.26
	case DisplayQHD:
		at60 = 0.44
	case Display4K:
		at60 = 0.70
	default:
		return 0
	}
	return at60 * refreshHz / 60
}

// referencePeak is the bandwidth against which panel fractions are
// defined: dual-channel LPDDR3 at DDR 1.6GHz (§3).
const referencePeak = 25.6e9

// Panel is one display head's configuration.
type Panel struct {
	Res       Resolution
	RefreshHz float64
}

// Bandwidth returns the panel's isochronous bandwidth demand (bytes/s).
func (p Panel) Bandwidth() float64 {
	if p.Res == DisplayOff {
		return 0
	}
	hz := p.RefreshHz
	if hz <= 0 {
		hz = 60
	}
	return p.Res.bandwidthFrac(hz) * referencePeak
}

// MaxPanels is the number of display heads the platform exposes
// (modern laptops support up to three panels, §4.2).
const MaxPanels = 3

// CameraMode is the ISP's active streaming mode.
type CameraMode int

// ISP modes.
const (
	CameraOff CameraMode = iota
	Camera720p
	Camera1080p
	Camera4K
)

func (m CameraMode) String() string {
	switch m {
	case CameraOff:
		return "off"
	case Camera720p:
		return "720p"
	case Camera1080p:
		return "1080p"
	case Camera4K:
		return "4K"
	default:
		return fmt.Sprintf("CameraMode(%d)", int(m))
	}
}

// Bandwidth returns the ISP memory bandwidth demand (bytes/s) for the
// mode: sensor write-out plus processing read/write passes.
func (m CameraMode) Bandwidth() float64 {
	switch m {
	case Camera720p:
		return 0.035 * referencePeak
	case Camera1080p:
		return 0.06 * referencePeak
	case Camera4K:
		return 0.16 * referencePeak
	default:
		return 0
	}
}

// CSR is the IO domain's control-and-status register file: the
// software-visible configuration the PMU firmware reads for static
// demand estimation. Configuration changes happen at OS/driver
// time-scale (tens of milliseconds, §4.2).
type CSR struct {
	Panels [MaxPanels]Panel
	Camera CameraMode
}

// ActivePanels returns how many display heads are driving a panel.
func (c CSR) ActivePanels() int {
	n := 0
	for _, p := range c.Panels {
		if p.Res != DisplayOff {
			n++
		}
	}
	return n
}

// DisplayBandwidth returns the aggregate display demand (bytes/s).
func (c CSR) DisplayBandwidth() float64 {
	var sum float64
	for _, p := range c.Panels {
		sum += p.Bandwidth()
	}
	return sum
}

// StaticBandwidth returns the total static (configuration-determined)
// IO memory-bandwidth demand: displays plus camera.
func (c CSR) StaticBandwidth() float64 {
	return c.DisplayBandwidth() + c.Camera.Bandwidth()
}

// Engines models the IO controllers' power behaviour. They sit on the
// V_SA rail with per-engine clocks tied to the interconnect clock on
// this platform.
type Engines struct {
	csr CSR

	cdyn      float64
	leakAtNom float64
	nomVolt   vf.Volt
}

// NewEngines constructs the IO engine block with default coefficients.
func NewEngines() *Engines {
	return &Engines{
		cdyn:      0.15e-9,
		leakAtNom: 0.030,
		nomVolt:   vf.NominalVSA,
	}
}

// CSR returns the current register file.
func (e *Engines) CSR() CSR { return e.csr }

// Configure writes the register file (models an OS/driver update).
func (e *Engines) Configure(csr CSR) { e.csr = csr }

// Power returns the IO engines' draw at the given rail voltage and
// interconnect clock, with activity proportional to the static demand
// they are streaming.
func (e *Engines) Power(v vf.Volt, clock vf.Hz) power.Watt {
	activity := e.csr.StaticBandwidth() / referencePeak
	if activity > 1 {
		activity = 1
	}
	activity = 0.10 + 0.90*activity
	dyn := power.Dynamic(e.cdyn, v, clock, activity)
	leak := power.Leakage(e.leakAtNom, v, e.nomVolt)
	return dyn + leak
}

// SingleHDLaptop returns the CSR of the paper's battery-life setup:
// one HD laptop panel at 60Hz, camera off (§7.3).
func SingleHDLaptop() CSR {
	return CSR{Panels: [MaxPanels]Panel{{Res: DisplayHD, RefreshHz: 60}}}
}
