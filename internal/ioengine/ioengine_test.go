package ioengine

import (
	"math"
	"testing"
)

func TestPanelBandwidthAnchors(t *testing.T) {
	// Fig. 3(b): HD ~17% of 25.6GB/s peak, one 4K panel ~70%.
	hd := Panel{Res: DisplayHD, RefreshHz: 60}.Bandwidth()
	if frac := hd / 25.6e9; math.Abs(frac-0.17) > 0.005 {
		t.Fatalf("HD fraction = %.3f, want 0.17", frac)
	}
	fourK := Panel{Res: Display4K, RefreshHz: 60}.Bandwidth()
	if frac := fourK / 25.6e9; math.Abs(frac-0.70) > 0.005 {
		t.Fatalf("4K fraction = %.3f, want 0.70", frac)
	}
}

func TestRefreshScaling(t *testing.T) {
	hd60 := Panel{Res: DisplayHD, RefreshHz: 60}.Bandwidth()
	hd120 := Panel{Res: DisplayHD, RefreshHz: 120}.Bandwidth()
	if math.Abs(hd120-2*hd60) > 1 {
		t.Fatal("refresh rate scaling broken")
	}
	// Zero refresh defaults to 60Hz.
	hdDefault := Panel{Res: DisplayHD}.Bandwidth()
	if hdDefault != hd60 {
		t.Fatal("default refresh not 60Hz")
	}
}

func TestThreePanelsTripleBandwidth(t *testing.T) {
	// §4.2: three identical panels demand nearly three times one.
	var csr CSR
	csr.Panels[0] = Panel{Res: DisplayHD, RefreshHz: 60}
	one := csr.DisplayBandwidth()
	csr.Panels[1] = csr.Panels[0]
	csr.Panels[2] = csr.Panels[0]
	if got := csr.DisplayBandwidth(); math.Abs(got-3*one) > 1 {
		t.Fatalf("3 panels = %v, want %v", got, 3*one)
	}
	if csr.ActivePanels() != 3 {
		t.Fatal("active panel count wrong")
	}
}

func TestOffPanel(t *testing.T) {
	if (Panel{Res: DisplayOff, RefreshHz: 60}).Bandwidth() != 0 {
		t.Fatal("off panel demands bandwidth")
	}
	var csr CSR
	if csr.ActivePanels() != 0 || csr.StaticBandwidth() != 0 {
		t.Fatal("empty CSR demands bandwidth")
	}
}

func TestCameraModes(t *testing.T) {
	prev := 0.0
	for _, m := range []CameraMode{Camera720p, Camera1080p, Camera4K} {
		bw := m.Bandwidth()
		if bw <= prev {
			t.Fatalf("camera bandwidth not increasing at %v", m)
		}
		prev = bw
	}
	if CameraOff.Bandwidth() != 0 {
		t.Fatal("camera off demands bandwidth")
	}
}

func TestStaticBandwidthSumsDisplayAndCamera(t *testing.T) {
	csr := SingleHDLaptop()
	csr.Camera = Camera1080p
	want := csr.DisplayBandwidth() + Camera1080p.Bandwidth()
	if got := csr.StaticBandwidth(); math.Abs(got-want) > 1 {
		t.Fatalf("static = %v, want %v", got, want)
	}
}

func TestEnginesPower(t *testing.T) {
	e := NewEngines()
	e.Configure(SingleHDLaptop())
	idleCfg := NewEngines()
	pBusy := e.Power(0.95, 0.8e9)
	pIdle := idleCfg.Power(0.95, 0.8e9)
	if pBusy <= pIdle {
		t.Fatal("streaming engines not above idle power")
	}
	pLow := e.Power(0.76, 0.4e9)
	if pLow >= pBusy {
		t.Fatal("lower rail/clock did not reduce engine power")
	}
	if e.CSR() != SingleHDLaptop() {
		t.Fatal("CSR accessor broken")
	}
}

func TestStrings(t *testing.T) {
	if DisplayHD.String() != "HD" || Display4K.String() != "4K" || DisplayOff.String() != "off" {
		t.Fatal("resolution strings wrong")
	}
	if Camera1080p.String() != "1080p" || CameraOff.String() != "off" {
		t.Fatal("camera strings wrong")
	}
}
