// Package sweepd is the sweep service: the simulation engine behind an
// HTTP/JSON API, turning the in-process what-if engine into a
// capacity/energy-planning server a fleet of clients can share.
//
// The API surface is four endpoints:
//
//	POST   /v1/jobs         one job spec in, its result out (synchronous)
//	POST   /v1/sweeps       a JSON array of job specs in; results stream
//	                        back as NDJSON in completion order, one
//	                        StreamLine per job, per-job errors in-band,
//	                        a Done marker last
//	DELETE /v1/sweeps/{id}  cancel a running sweep (id from the
//	                        response's Sweep-Id header); in-flight
//	                        simulations unwind within one policy epoch
//	GET    /v1/stats        engine + server counters as JSON
//	GET    /healthz         readiness probe
//
// The payload is the PR 7 versioned job spec (internal/spec), so a
// job submitted over the wire has the same identity — validation,
// canonical bytes, cache fingerprint — as one run locally: a sweep
// service fleet sharing one disk cache directory (engine.WithDiskCache)
// serves each distinct config once, whoever computed it.
//
// Memory per sweep is O(parallelism): results go straight from
// engine.Stream to the response writer and are never accumulated.
//
// # Admission control
//
// The server degrades loudly instead of queueing unboundedly. A
// semaphore bounds concurrently admitted requests (sweeps and single
// jobs alike); past it the server answers 503 with a Retry-After hint
// rather than holding connections open. Request bodies are bounded
// (http.MaxBytesReader and the spec decoder's own MaxDocBytes), the
// number of specs per sweep is capped, and per-job wall time is
// bounded by the engine's WithJobTimeout. Every rejection is a typed
// JSON error with a stable code (see ErrorInfo), never a hang.
package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sysscale/internal/engine"
	"sysscale/internal/spec"
)

// Defaults for the admission-control knobs (Config).
const (
	// DefaultMaxSpecsPerSweep caps one sweep's spec count: a larger
	// space should be submitted as several sweeps, which bounds both
	// the decoded request footprint and how long one response stream
	// monopolizes a connection.
	DefaultMaxSpecsPerSweep = 4096
	// DefaultMaxBodyBytes caps the request body; it matches the spec
	// decoder's own MaxDocBytes bound.
	DefaultMaxBodyBytes = spec.MaxDocBytes
	// DefaultRetryAfter is the hint sent with 503 responses.
	DefaultRetryAfter = time.Second
)

// DefaultMaxConcurrentSweeps returns the default admission bound:
// twice the engine's worker count, so there is always a decoded sweep
// ready to feed the pool while bounded well short of unbounded
// connection pileup.
func DefaultMaxConcurrentSweeps() int { return 2 * runtime.GOMAXPROCS(0) }

// errCanceledByDelete is the cancel cause recorded when DELETE
// /v1/sweeps/{id} cancels a sweep.
var errCanceledByDelete = errors.New("sweepd: sweep canceled by request")

// Config configures a Server. Engine is the only required field; zero
// values select the defaults above.
type Config struct {
	// Engine executes the jobs. Its options — parallelism, caches,
	// WithJobTimeout, WithRetry — are the service's execution policy;
	// nil constructs a default engine.
	Engine *engine.Engine
	// MaxConcurrentSweeps bounds admitted requests (sweeps and single
	// jobs); <= 0 selects DefaultMaxConcurrentSweeps().
	MaxConcurrentSweeps int
	// MaxSpecsPerSweep caps one sweep's spec count; <= 0 selects
	// DefaultMaxSpecsPerSweep.
	MaxSpecsPerSweep int
	// MaxBodyBytes caps the request body; <= 0 selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// RetryAfter is the 503 Retry-After hint; <= 0 selects
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

// Server is the sweep service's HTTP handler. Construct with New; it
// is safe for concurrent use and implements http.Handler.
type Server struct {
	eng        *engine.Engine
	mux        *http.ServeMux
	sem        chan struct{}
	maxSpecs   int
	maxBody    int64
	retryAfter time.Duration

	mu     sync.Mutex
	sweeps map[string]context.CancelCauseFunc
	nextID int64

	sweepsTotal    atomic.Int64
	sweepsCanceled atomic.Int64
	jobsAccepted   atomic.Int64
	jobErrors      atomic.Int64
	rejected       atomic.Int64
}

// New returns a Server over cfg.Engine with cfg's admission bounds.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = engine.New()
	}
	if cfg.MaxConcurrentSweeps <= 0 {
		cfg.MaxConcurrentSweeps = DefaultMaxConcurrentSweeps()
	}
	if cfg.MaxSpecsPerSweep <= 0 {
		cfg.MaxSpecsPerSweep = DefaultMaxSpecsPerSweep
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{
		eng:        cfg.Engine,
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxConcurrentSweeps),
		maxSpecs:   cfg.MaxSpecsPerSweep,
		maxBody:    cfg.MaxBodyBytes,
		retryAfter: cfg.RetryAfter,
		sweeps:     make(map[string]context.CancelCauseFunc),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the engine the server executes on.
func (s *Server) Engine() *engine.Engine { return s.eng }

// ActiveSweeps reports requests currently holding an admission slot.
func (s *Server) ActiveSweeps() int { return len(s.sem) }

// Stats snapshots the service-level counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		SweepsActive:    s.ActiveSweeps(),
		SweepsTotal:     s.sweepsTotal.Load(),
		SweepsCanceled:  s.sweepsCanceled.Load(),
		JobsAccepted:    s.jobsAccepted.Load(),
		JobErrors:       s.jobErrors.Load(),
		Rejected:        s.rejected.Load(),
		RunnersInFlight: engine.RunnersInFlight(),
	}
}

// admit takes an admission slot, or answers 503 + Retry-After and
// reports false. The release func must be called when the request
// finishes.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.rejected.Add(1)
		secs := int((s.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.writeError(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Sprintf("at capacity (%d concurrent requests); retry after %s", cap(s.sem), s.retryAfter))
		return nil, false
	}
}

// writeError sends a typed JSON error body with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: ErrorInfo{Code: code, Message: msg}})
}

// decodeBodyError maps a spec-decoding failure to its HTTP shape:
// size-bound violations (the server's body cap or the decoder's
// document cap) are 413, everything else is a 400 with the decoder's
// message.
func (s *Server) decodeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || errors.Is(err, spec.ErrDocTooLarge) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body over limit (%d bytes)", s.maxBody))
		return
	}
	s.writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
}

// handleJob runs one spec synchronously: POST /v1/jobs.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	js, err := spec.ReadJob(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.decodeBodyError(w, err)
		return
	}
	job, err := engine.FromSpec(js)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
		return
	}
	s.jobsAccepted.Add(1)

	res, err := s.eng.RunContext(r.Context(), job.Config)
	if err != nil {
		info := errInfoFor(err)
		status := http.StatusInternalServerError
		switch info.Code {
		case "timeout":
			status = http.StatusGatewayTimeout
		case "invalid_config":
			status = http.StatusBadRequest
		case "canceled":
			// The client is gone (or going); there is nobody to answer.
			s.jobErrors.Add(1)
			return
		}
		s.jobErrors.Add(1)
		s.writeError(w, status, info.Code, info.Message)
		return
	}

	resp := JobResponse{Result: res}
	if fp, err := spec.Fingerprint(js); err == nil {
		resp.Fingerprint = fmt.Sprintf("%x", fp)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleSweep streams a batch: POST /v1/sweeps.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	specs, err := spec.ReadJobs(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.decodeBodyError(w, err)
		return
	}
	if len(specs) == 0 {
		s.writeError(w, http.StatusBadRequest, "invalid_spec", "empty sweep: no job specs")
		return
	}
	if len(specs) > s.maxSpecs {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("sweep of %d specs over the %d-spec limit; split it", len(specs), s.maxSpecs))
		return
	}
	jobs := make([]engine.Job, len(specs))
	for i, sp := range specs {
		if jobs[i], err = engine.FromSpec(sp); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid_spec", fmt.Sprintf("spec %d: %v", i, err))
			return
		}
	}
	s.sweepsTotal.Add(1)
	s.jobsAccepted.Add(int64(len(jobs)))

	// The sweep runs on a cancellable child of the request context:
	// DELETE /v1/sweeps/{id} cancels it from another connection, and
	// the client closing this one cancels it implicitly. Either way
	// in-flight simulations unwind within one policy epoch and every
	// pooled platform is returned.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	id := s.registerSweep(cancel)
	defer s.unregisterSweep(id)

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("Sweep-Id", id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Publish the headers (and the sweep id) before the first
		// result is ready, so a client can cancel a sweep it has not
		// yet received anything from.
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	delivered, errCount := 0, 0
	for jr := range s.eng.Stream(ctx, jobs) {
		line := StreamLine{Index: jr.Index}
		if jr.Err != nil {
			line.Error = errInfoFor(jr.Err)
			errCount++
		} else {
			res := jr.Result
			line.Result = &res
		}
		if err := enc.Encode(&line); err != nil {
			// The connection died mid-write. Cancel the sweep — Stream
			// closes its channel once in-flight jobs unwind — and stop
			// delivering.
			cancel(err)
			break
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.jobErrors.Add(int64(errCount))

	done := DoneInfo{Jobs: delivered, Errors: errCount}
	if ctx.Err() != nil {
		done.Canceled = true
		s.sweepsCanceled.Add(1)
	}
	// Best-effort: if the connection is gone this write fails silently,
	// and the absent Done marker is itself the truncation signal.
	enc.Encode(StreamLine{Index: -1, Done: &done})
}

// handleCancel cancels a running sweep: DELETE /v1/sweeps/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	cancel, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no running sweep %q", id))
		return
	}
	cancel(errCanceledByDelete)
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the machine-readable counter snapshot:
// GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StatsResponse{Engine: s.eng.CacheStats(), Server: s.Stats()})
}

// registerSweep assigns a sweep id and records its cancel func for
// DELETE. Ids are monotonic per process; they identify, they do not
// authenticate.
func (s *Server) registerSweep(cancel context.CancelCauseFunc) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := "s" + strconv.FormatInt(s.nextID, 10)
	s.sweeps[id] = cancel
	return id
}

func (s *Server) unregisterSweep(id string) {
	s.mu.Lock()
	delete(s.sweeps, id)
	s.mu.Unlock()
}
