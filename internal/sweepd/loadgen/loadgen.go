// Package loadgen drives concurrent load at a sweepd server and
// measures what comes back: per-sweep latency quantiles, error rates,
// throttling, and (optionally) every streamed line for verification.
// It is both the engine behind cmd/sweepload — the harness that finds
// the service's knee — and the library the HTTP-layer tests use to
// prove the acceptance numbers (hundreds of concurrent clients, zero
// errors, bit-identical results).
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sysscale/internal/spec"
	"sysscale/internal/sweepd"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Specs is the job corpus. It is partitioned into chunks of
	// JobsPerSweep specs (the last chunk may be short); request i
	// submits chunk i % NumChunks, so the request→spec mapping is
	// deterministic and a caller can verify responses offline.
	Specs []spec.Job
	// Clients is the number of concurrent clients (default 1).
	Clients int
	// Sweeps is the total number of sweep requests to issue (default
	// max(Clients, NumChunks) — every chunk at least once).
	Sweeps int
	// JobsPerSweep is the chunk size; <= 0 submits the whole corpus in
	// every sweep.
	JobsPerSweep int
	// Rate is the aggregate request launch rate in sweeps/second; 0
	// launches as fast as the clients turn around.
	Rate float64
	// Timeout bounds one request (connect to last byte); 0 means 120s.
	Timeout time.Duration
	// MaxRetries bounds per-request retries on 503 (honoring
	// Retry-After); 0 means 8. Retries count as Throttled, not errors.
	MaxRetries int
	// Collect retains every parsed line per request in
	// Report.Outcomes — for verification harnesses, not load runs.
	Collect bool
	// Client overrides the HTTP client (tests); nil builds one sized
	// for Clients concurrent connections.
	Client *http.Client
}

// NumChunks reports how many distinct sweep bodies the corpus
// partitions into under JobsPerSweep.
func (c Config) NumChunks() int {
	if c.JobsPerSweep <= 0 || c.JobsPerSweep >= len(c.Specs) {
		return 1
	}
	return (len(c.Specs) + c.JobsPerSweep - 1) / c.JobsPerSweep
}

// Chunk returns the corpus range [start, end) submitted by request i.
func (c Config) Chunk(i int) (start, end int) {
	n := c.NumChunks()
	if n == 1 {
		return 0, len(c.Specs)
	}
	start = (i % n) * c.JobsPerSweep
	end = start + c.JobsPerSweep
	if end > len(c.Specs) {
		end = len(c.Specs)
	}
	return start, end
}

// Line is one parsed NDJSON line, with the raw bytes preserved so
// byte-identity across runs can be asserted without re-encoding.
type Line struct {
	Index  int               `json:"index"`
	Result json.RawMessage   `json:"result,omitempty"`
	Error  *sweepd.ErrorInfo `json:"error,omitempty"`
	Done   *sweepd.DoneInfo  `json:"done,omitempty"`
	Raw    []byte            `json:"-"`
}

// Quantiles summarizes per-sweep latencies in milliseconds.
type Quantiles struct {
	Mean, P50, P90, P99, Max float64
}

// Report is a completed load run.
type Report struct {
	// Sweeps is requests completed (including failed ones); Jobs is
	// result+error lines received.
	Sweeps int
	Jobs   int
	// JobErrors counts in-band per-job error lines; HTTPErrors counts
	// requests that failed at the transport/status level (after
	// retries); Throttled counts 503 retries taken; Incomplete counts
	// streams that ended without a Done marker; Canceled counts Done
	// markers with the canceled flag.
	JobErrors  int
	HTTPErrors int
	Throttled  int
	Incomplete int
	Canceled   int

	Elapsed time.Duration
	Latency Quantiles
	// Outcomes[i] holds request i's lines, in arrival order (Collect).
	Outcomes [][]Line
}

// String renders the one-look summary cmd/sweepload prints.
func (r Report) String() string {
	jobsPerSec := float64(r.Jobs) / r.Elapsed.Seconds()
	return fmt.Sprintf(
		"sweeps %d, jobs %d (%.0f jobs/s), job errors %d, http errors %d, throttled %d, incomplete %d, canceled %d\n"+
			"latency ms: p50 %.1f, p90 %.1f, p99 %.1f, max %.1f (mean %.1f)",
		r.Sweeps, r.Jobs, jobsPerSec, r.JobErrors, r.HTTPErrors, r.Throttled, r.Incomplete, r.Canceled,
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max, r.Latency.Mean)
}

// Failures reports whether the run saw anything other than clean,
// complete sweeps (cmd/sweepload's exit status).
func (r Report) Failures() int {
	return r.JobErrors + r.HTTPErrors + r.Incomplete + r.Canceled
}

// Run executes the load run: Clients workers issue Sweeps requests
// against BaseURL, parse every NDJSON stream, and aggregate. It
// returns an error only for setup problems (empty corpus, bad
// config); request-level failures are counted in the Report.
// Cancelling ctx stops issuing new requests and fails in-flight ones.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if len(cfg.Specs) == 0 {
		return Report{}, fmt.Errorf("loadgen: empty spec corpus")
	}
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: no base URL")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Sweeps <= 0 {
		cfg.Sweeps = max(cfg.Clients, cfg.NumChunks())
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = cfg.Clients
		tr.MaxIdleConnsPerHost = cfg.Clients
		client = &http.Client{Transport: tr}
	}

	// Pre-marshal every distinct chunk once; clients share the bytes.
	bodies := make([][]byte, cfg.NumChunks())
	for ci := range bodies {
		start, end := cfg.Chunk(ci)
		b, err := json.Marshal(cfg.Specs[start:end])
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: marshal chunk %d: %w", ci, err)
		}
		bodies[ci] = b
	}

	// Rate pacing: a shared token stream at cfg.Rate. Unlimited when
	// Rate <= 0 (tokens is nil and the select below never blocks).
	var tokens <-chan time.Time
	if cfg.Rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer t.Stop()
		tokens = t.C
	}

	var (
		rep       Report
		latencies = make([]float64, cfg.Sweeps)
		issued    = make([]bool, cfg.Sweeps)
		outcomes  [][]Line
		jobs      atomic.Int64
		jobErrs   atomic.Int64
		httpErrs  atomic.Int64
		throttled atomic.Int64
		incompl   atomic.Int64
		canceled  atomic.Int64
	)
	if cfg.Collect {
		outcomes = make([][]Line, cfg.Sweeps)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				}
				t0 := time.Now()
				lines, retries, err := oneSweep(ctx, client, cfg, cfg.BaseURL+"/v1/sweeps", bodies[i%len(bodies)])
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
				issued[i] = true
				throttled.Add(int64(retries))
				if cfg.Collect {
					outcomes[i] = lines
				}
				if err != nil {
					httpErrs.Add(1)
					continue
				}
				sawDone := false
				for _, ln := range lines {
					switch {
					case ln.Done != nil:
						sawDone = true
						if ln.Done.Canceled {
							canceled.Add(1)
						}
					case ln.Error != nil:
						jobs.Add(1)
						jobErrs.Add(1)
					default:
						jobs.Add(1)
					}
				}
				if !sawDone {
					incompl.Add(1)
				}
			}
		}()
	}
feed:
	for i := 0; i < cfg.Sweeps; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	rep.Elapsed = time.Since(start)

	var issuedLat []float64
	for i, ok := range issued {
		if ok {
			rep.Sweeps++
			issuedLat = append(issuedLat, latencies[i])
		}
	}
	rep.Jobs = int(jobs.Load())
	rep.JobErrors = int(jobErrs.Load())
	rep.HTTPErrors = int(httpErrs.Load())
	rep.Throttled = int(throttled.Load())
	rep.Incomplete = int(incompl.Load())
	rep.Canceled = int(canceled.Load())
	rep.Latency = quantiles(issuedLat)
	rep.Outcomes = outcomes
	return rep, nil
}

// oneSweep issues one POST /v1/sweeps, retrying on 503 per Retry-After,
// and parses the NDJSON stream to its end. retries reports how many
// 503s were absorbed.
func oneSweep(ctx context.Context, client *http.Client, cfg Config, url string, body []byte) (lines []Line, retries int, err error) {
	for attempt := 0; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
		lines, err = doSweep(rctx, client, url, body)
		cancel()
		if err == nil {
			return lines, retries, nil
		}
		var ra *retryAfterError
		if !errors.As(err, &ra) || attempt >= cfg.MaxRetries || ctx.Err() != nil {
			return lines, retries, err
		}
		retries++
		select {
		case <-time.After(ra.delay):
		case <-ctx.Done():
			return nil, retries, ctx.Err()
		}
	}
}

// retryAfterError marks a 503 worth retrying after the server's hint.
type retryAfterError struct{ delay time.Duration }

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("server overloaded (503), retry after %s", e.delay)
}

// doSweep performs one request attempt and parses the whole stream.
func doSweep(ctx context.Context, client *http.Client, url string, body []byte) ([]Line, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		delay := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		return nil, &retryAfterError{delay: delay}
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}

	var lines []Line
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln Line
		if err := json.Unmarshal(raw, &ln); err != nil {
			return lines, fmt.Errorf("bad stream line: %w", err)
		}
		ln.Raw = append([]byte(nil), raw...)
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return lines, err
	}
	return lines, nil
}

// quantiles computes the latency summary (ms) from raw samples.
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	at := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return Quantiles{
		Mean: sum / float64(len(s)),
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  s[len(s)-1],
	}
}
