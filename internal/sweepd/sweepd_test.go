// HTTP-layer tests for the sweep service: the acceptance suite for the
// streaming contract (bit-identity with in-process runs), cancellation
// through the API (prompt termination, no leaked runners, reproducible
// reruns), and admission control (typed 503/413/400/404, never hangs).
// Run with -race; the whole point of an HTTP layer over the engine is
// that concurrent clients are safe.
package sweepd_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sysscale/internal/engine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/spec"
	"sysscale/internal/sweepd"
	"sysscale/internal/sweepd/loadgen"
	"sysscale/internal/workload"
)

// slowPolicy wraps the baseline governor with a wall-clock sleep per
// decision epoch, making job duration controllable from a spec — the
// lever the cancellation and overload tests need. It registers as the
// "test-slow" family so it round-trips through the wire format like
// any real policy.
type slowPolicy struct {
	inner   soc.Policy
	DelayMS int64
}

type slowParams struct {
	DelayMS int64 `json:"delay_ms"`
}

func (p *slowPolicy) Name() string { return "test-slow" }

func (p *slowPolicy) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	time.Sleep(time.Duration(p.DelayMS) * time.Millisecond)
	return p.inner.Decide(ctx)
}

func (p *slowPolicy) Reset() { p.inner.Reset() }

func (p *slowPolicy) Clone() soc.Policy {
	return &slowPolicy{inner: p.inner.Clone(), DelayMS: p.DelayMS}
}

func init() {
	err := policy.Register("test-slow", policy.Codec{
		Type: reflect.TypeOf(&slowPolicy{}),
		Decode: func(params []byte) (soc.Policy, error) {
			p := slowParams{DelayMS: 1}
			if len(params) > 0 {
				dec := json.NewDecoder(bytes.NewReader(params))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&p); err != nil {
					return nil, err
				}
			}
			return &slowPolicy{inner: policy.NewBaseline(), DelayMS: p.DelayMS}, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			sp, ok := p.(*slowPolicy)
			if !ok {
				return nil, false
			}
			return slowParams{DelayMS: sp.DelayMS}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			sp, ok := p.(*slowPolicy)
			if !ok {
				return b, false
			}
			b = append(b, `{"delay_ms":`...)
			b = strconv.AppendInt(b, sp.DelayMS, 10)
			return append(b, '}'), true
		},
	})
	if err != nil {
		panic(err)
	}
}

// fastSpecs builds n distinct quick jobs (50 simulated ms, mixed
// policies and workloads).
func fastSpecs(t *testing.T, n int) []spec.Job {
	t.Helper()
	suite := workload.SPECSuite()
	specs := make([]spec.Job, 0, n)
	for i := 0; i < n; i++ {
		cfg := soc.DefaultConfig()
		cfg.Workload = suite[i%len(suite)]
		if i%2 == 0 {
			cfg.Policy = policy.NewSysScaleDefault()
		} else {
			cfg.Policy = policy.NewBaseline()
		}
		cfg.Duration = 50 * sim.Millisecond
		cfg.Seed = uint64(i + 1)
		js, err := spec.Encode(cfg)
		if err != nil {
			t.Fatalf("encode spec %d: %v", i, err)
		}
		specs = append(specs, js)
	}
	return specs
}

// slowSpecs builds n distinct jobs whose wall time is ~10×delayMS
// (300 simulated ms at the 30ms epoch = 10 sleeping decisions each).
func slowSpecs(t *testing.T, n int, delayMS int64) []spec.Job {
	t.Helper()
	suite := workload.SPECSuite()
	specs := make([]spec.Job, 0, n)
	for i := 0; i < n; i++ {
		cfg := soc.DefaultConfig()
		cfg.Workload = suite[i%len(suite)]
		cfg.Policy = &slowPolicy{inner: policy.NewBaseline(), DelayMS: delayMS}
		cfg.Duration = 300 * sim.Millisecond
		cfg.Seed = uint64(i + 1)
		js, err := spec.Encode(cfg)
		if err != nil {
			t.Fatalf("encode slow spec %d: %v", i, err)
		}
		specs = append(specs, js)
	}
	return specs
}

// freshResults runs the specs on a brand-new engine in-process — the
// reference the wire results must be bit-identical to.
func freshResults(t *testing.T, specs []spec.Job) []soc.Result {
	t.Helper()
	jobs := make([]engine.Job, len(specs))
	for i, js := range specs {
		j, err := engine.FromSpec(js)
		if err != nil {
			t.Fatalf("FromSpec %d: %v", i, err)
		}
		jobs[i] = j
	}
	res, err := engine.New().RunBatch(jobs)
	if err != nil {
		t.Fatalf("reference RunBatch: %v", err)
	}
	return res
}

func newServer(t *testing.T, cfg sweepd.Config) (*sweepd.Server, *httptest.Server) {
	t.Helper()
	s := sweepd.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postSweep(t *testing.T, url string, specs []spec.Job) *http.Response {
	t.Helper()
	body, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream parses a whole NDJSON response.
func readStream(t *testing.T, body io.Reader) []loadgen.Line {
	t.Helper()
	var lines []loadgen.Line
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln loadgen.Line
		if err := json.Unmarshal(raw, &ln); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		ln.Raw = append([]byte(nil), raw...)
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return lines
}

// waitIdle polls until no pooled runner is executing — the no-leak
// postcondition every cancellation path must restore.
func waitIdle(t *testing.T, whom string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for engine.RunnersInFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d runners still in flight", whom, engine.RunnersInFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// errCode decodes a typed error response body and checks the status.
func errCode(t *testing.T, resp *http.Response, wantStatus int) string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, b)
	}
	var er struct {
		Error sweepd.ErrorInfo `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error body: %v", err)
	}
	return er.Error.Code
}

// TestJobEndpoint: POST /v1/jobs returns the same result the engine
// computes in-process, plus the spec's cache fingerprint.
func TestJobEndpoint(t *testing.T) {
	_, ts := newServer(t, sweepd.Config{})
	specs := fastSpecs(t, 1)
	want := freshResults(t, specs)[0]

	body, _ := json.Marshal(specs[0])
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var jr sweepd.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jr.Result, want) {
		t.Errorf("wire result differs from in-process run")
	}
	fp, err := spec.Fingerprint(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if jr.Fingerprint != fmt.Sprintf("%x", fp) {
		t.Errorf("fingerprint %q, want %x", jr.Fingerprint, fp)
	}
}

// TestSweepStreamBitIdentical: a sweep's NDJSON results, reordered by
// input index, are byte-for-byte the JSON of an in-process RunBatch on
// a fresh engine.
func TestSweepStreamBitIdentical(t *testing.T) {
	_, ts := newServer(t, sweepd.Config{})
	specs := fastSpecs(t, 6)
	want := freshResults(t, specs)

	resp := postSweep(t, ts.URL, specs)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	if resp.Header.Get("Sweep-Id") == "" {
		t.Error("no Sweep-Id header")
	}
	lines := readStream(t, resp.Body)

	last := lines[len(lines)-1]
	if last.Done == nil || last.Index != -1 {
		t.Fatalf("stream did not end with a Done marker: %+v", last)
	}
	if last.Done.Jobs != len(specs) || last.Done.Errors != 0 || last.Done.Canceled {
		t.Fatalf("done marker %+v, want %d clean jobs", *last.Done, len(specs))
	}

	byIndex := make([]json.RawMessage, len(specs))
	for _, ln := range lines[:len(lines)-1] {
		if ln.Error != nil {
			t.Fatalf("in-band error for job %d: %+v", ln.Index, *ln.Error)
		}
		if ln.Index < 0 || ln.Index >= len(specs) || byIndex[ln.Index] != nil {
			t.Fatalf("bad or duplicate index %d", ln.Index)
		}
		byIndex[ln.Index] = ln.Result
	}
	for i, got := range byIndex {
		wantJSON, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJSON) {
			t.Errorf("job %d: streamed result bytes differ from in-process run", i)
		}
	}
}

// TestSweepInBandJobError: a job that fails (here: over its wall-time
// budget) becomes a typed in-band error line; the sweep itself keeps
// streaming and completes with HTTP 200.
func TestSweepInBandJobError(t *testing.T) {
	eng := engine.New(engine.WithParallelism(2), engine.WithJobTimeout(40*time.Millisecond))
	_, ts := newServer(t, sweepd.Config{Engine: eng})

	// One job that cannot finish inside the budget, plus fast ones.
	specs := append(slowSpecs(t, 1, 50), fastSpecs(t, 2)...)
	resp := postSweep(t, ts.URL, specs)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := readStream(t, resp.Body)
	last := lines[len(lines)-1]
	if last.Done == nil {
		t.Fatal("no Done marker")
	}
	if last.Done.Jobs != len(specs) || last.Done.Errors != 1 || last.Done.Canceled {
		t.Fatalf("done marker %+v, want %d jobs with 1 error", *last.Done, len(specs))
	}
	var sawTimeout bool
	for _, ln := range lines[:len(lines)-1] {
		if ln.Error != nil {
			if ln.Index != 0 || ln.Error.Code != "timeout" {
				t.Fatalf("error line %+v, want index 0 code timeout", ln)
			}
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("no in-band timeout error line")
	}
	waitIdle(t, "after in-band error sweep")
}

// TestSweepCancelMidStream is satellite 4: DELETE /v1/sweeps/{id}
// mid-stream terminates the response promptly with a canceled Done
// marker, leaks no runners, and a subsequent identical sweep is
// bit-identical to a fresh in-process run.
func TestSweepCancelMidStream(t *testing.T) {
	eng := engine.New(engine.WithParallelism(2))
	srv, ts := newServer(t, sweepd.Config{Engine: eng})
	specs := slowSpecs(t, 6, 10)

	resp := postSweep(t, ts.URL, specs)
	defer resp.Body.Close()
	id := resp.Header.Get("Sweep-Id")
	if id == "" {
		t.Fatal("no Sweep-Id header")
	}

	// Read one result, then cancel from a second connection.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d, want 204", dresp.StatusCode)
	}

	// The stream must terminate promptly — in-flight jobs unwind within
	// one policy epoch (~10ms here), not after the full sweep.
	type tail struct {
		lines []loadgen.Line
		err   error
	}
	tc := make(chan tail, 1)
	go func() {
		var tl tail
		defer func() { tc <- tl }()
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
		for sc.Scan() {
			raw := bytes.TrimSpace(sc.Bytes())
			if len(raw) == 0 {
				continue
			}
			var ln loadgen.Line
			if err := json.Unmarshal(raw, &ln); err != nil {
				tl.err = err
				return
			}
			tl.lines = append(tl.lines, ln)
		}
		tl.err = sc.Err()
	}()
	var tl tail
	select {
	case tl = <-tc:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled stream did not terminate")
	}
	if tl.err != nil {
		t.Fatalf("canceled stream: %v", tl.err)
	}
	if len(tl.lines) == 0 || tl.lines[len(tl.lines)-1].Done == nil {
		t.Fatal("canceled stream ended without a Done marker")
	}
	done := tl.lines[len(tl.lines)-1].Done
	if !done.Canceled {
		t.Fatalf("done marker %+v, want canceled", *done)
	}
	if done.Jobs >= len(specs) {
		t.Fatalf("sweep delivered all %d jobs despite cancellation", done.Jobs)
	}
	waitIdle(t, "after DELETE")
	if st := srv.Stats(); st.SweepsCanceled != 1 {
		t.Errorf("SweepsCanceled = %d, want 1", st.SweepsCanceled)
	}

	// The id is gone once the sweep unwinds.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		d2, err := http.DefaultClient.Do(req2)
		if err != nil {
			t.Fatal(err)
		}
		d2.Body.Close()
		if d2.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("DELETE of finished sweep still %d, want 404", d2.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A rerun of the same sweep — half-served from the cache the
	// canceled pass warmed, half recomputed — is bit-identical to a
	// fresh in-process run.
	want := freshResults(t, specs)
	resp2 := postSweep(t, ts.URL, specs)
	defer resp2.Body.Close()
	lines := readStream(t, resp2.Body)
	last := lines[len(lines)-1]
	if last.Done == nil || last.Done.Jobs != len(specs) || last.Done.Errors != 0 || last.Done.Canceled {
		t.Fatalf("rerun done marker %+v", last.Done)
	}
	for _, ln := range lines[:len(lines)-1] {
		wantJSON, err := json.Marshal(want[ln.Index])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ln.Result, wantJSON) {
			t.Errorf("rerun job %d not bit-identical to fresh run", ln.Index)
		}
	}
}

// TestSweepClientDisconnect: a client that walks away mid-stream
// cancels the sweep implicitly; the engine unwinds and no runner leaks.
func TestSweepClientDisconnect(t *testing.T) {
	eng := engine.New(engine.WithParallelism(2))
	srv, ts := newServer(t, sweepd.Config{Engine: eng})
	specs := slowSpecs(t, 6, 10)

	resp := postSweep(t, ts.URL, specs)
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	resp.Body.Close() // hang up mid-stream

	waitIdle(t, "after client disconnect")
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSweeps() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sweeps still hold admission slots", srv.ActiveSweeps())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.SweepsCanceled != 1 {
		t.Errorf("SweepsCanceled = %d, want 1", st.SweepsCanceled)
	}
}

// TestAdmissionControl: every overload and malformed-input path is a
// typed JSON error with the right status — never a hang.
func TestAdmissionControl(t *testing.T) {
	eng := engine.New(engine.WithParallelism(2))
	srv, ts := newServer(t, sweepd.Config{
		Engine:              eng,
		MaxConcurrentSweeps: 1,
		MaxSpecsPerSweep:    2,
	})

	t.Run("overload 503", func(t *testing.T) {
		slow := slowSpecs(t, 2, 10)
		resp := postSweep(t, ts.URL, slow) // occupy the only slot
		defer resp.Body.Close()
		deadline := time.Now().Add(5 * time.Second)
		for srv.ActiveSweeps() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("sweep never took the admission slot")
			}
			time.Sleep(time.Millisecond)
		}

		r2 := postSweep(t, ts.URL, fastSpecs(t, 1))
		if got := r2.Header.Get("Retry-After"); got == "" {
			t.Error("503 without Retry-After")
		}
		if code := errCode(t, r2, http.StatusServiceUnavailable); code != "overloaded" {
			t.Errorf("code %q, want overloaded", code)
		}
		if st := srv.Stats(); st.Rejected == 0 {
			t.Error("rejection not counted")
		}
		io.Copy(io.Discard, resp.Body) // drain the slot-holder
		waitIdle(t, "after overload test")
	})

	t.Run("cancel unknown 404", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/nope", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if code := errCode(t, resp, http.StatusNotFound); code != "not_found" {
			t.Errorf("code %q, want not_found", code)
		}
	})

	t.Run("garbage body 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		if code := errCode(t, resp, http.StatusBadRequest); code != "invalid_spec" {
			t.Errorf("code %q, want invalid_spec", code)
		}
	})

	t.Run("empty sweep 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("[]"))
		if err != nil {
			t.Fatal(err)
		}
		if code := errCode(t, resp, http.StatusBadRequest); code != "invalid_spec" {
			t.Errorf("code %q, want invalid_spec", code)
		}
	})

	t.Run("too many specs 413", func(t *testing.T) {
		resp := postSweep(t, ts.URL, fastSpecs(t, 3)) // cap is 2
		if code := errCode(t, resp, http.StatusRequestEntityTooLarge); code != "too_large" {
			t.Errorf("code %q, want too_large", code)
		}
	})

	t.Run("oversized body 413", func(t *testing.T) {
		_, small := newServer(t, sweepd.Config{MaxBodyBytes: 64})
		resp := postSweep(t, small.URL, fastSpecs(t, 1))
		if code := errCode(t, resp, http.StatusRequestEntityTooLarge); code != "too_large" {
			t.Errorf("code %q, want too_large", code)
		}
	})
}

// TestStatsEndpoint: /v1/stats is valid JSON with both counter blocks,
// and reflects work done.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newServer(t, sweepd.Config{})
	resp := postSweep(t, ts.URL, fastSpecs(t, 2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st sweepd.StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Server.SweepsTotal != 1 || st.Server.JobsAccepted != 2 {
		t.Errorf("server stats %+v, want 1 sweep / 2 jobs", st.Server)
	}
	if st.Engine.Misses == 0 {
		t.Errorf("engine stats %+v, want nonzero misses", st.Engine)
	}
}

// TestManyConcurrentClients is the acceptance load test: 256 concurrent
// clients, 512 single-job sweeps against a deliberately small admission
// bound, zero non-injected failures (503s are absorbed by retry), and
// every streamed result bit-identical to the in-process reference.
func TestManyConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	eng := engine.New(engine.WithParallelism(4))
	_, ts := newServer(t, sweepd.Config{
		Engine:              eng,
		MaxConcurrentSweeps: 64,
		RetryAfter:          time.Second,
	})
	specs := fastSpecs(t, 8)
	want := freshResults(t, specs)
	wantJSON := make([][]byte, len(want))
	for i, res := range want {
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON[i] = b
	}

	cfg := loadgen.Config{
		BaseURL:      ts.URL,
		Specs:        specs,
		Clients:      256,
		Sweeps:       512,
		JobsPerSweep: 1,
		MaxRetries:   32,
		Collect:      true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %s", rep)
	if rep.Failures() != 0 {
		t.Fatalf("%d failures (job %d, http %d, incomplete %d, canceled %d)",
			rep.Failures(), rep.JobErrors, rep.HTTPErrors, rep.Incomplete, rep.Canceled)
	}
	if rep.Sweeps != cfg.Sweeps || rep.Jobs != cfg.Sweeps {
		t.Fatalf("sweeps %d jobs %d, want %d each", rep.Sweeps, rep.Jobs, cfg.Sweeps)
	}
	for i, lines := range rep.Outcomes {
		start, end := cfg.Chunk(i)
		if end-start != 1 {
			t.Fatalf("chunking broken: request %d spans [%d,%d)", i, start, end)
		}
		for _, ln := range lines {
			if ln.Done != nil {
				continue
			}
			if ln.Index != 0 {
				t.Fatalf("request %d: job index %d in a 1-spec sweep", i, ln.Index)
			}
			if !bytes.Equal(ln.Result, wantJSON[start]) {
				t.Fatalf("request %d (spec %d): result not bit-identical to in-process run", i, start)
			}
		}
	}
	waitIdle(t, "after load test")
}
