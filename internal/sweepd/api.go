package sweepd

import (
	"context"
	"errors"

	"sysscale/internal/engine"
	"sysscale/internal/soc"
)

// This file is the service's wire vocabulary: the JSON bodies the four
// endpoints exchange. The shapes are deliberately small and stable —
// the load generator, the CLI clients, and the CI smoke all parse them.

// StreamLine is one NDJSON line of a sweep response. Exactly one of
// Result, Error, or Done is set:
//
//   - a result line carries the job's input index and its Result;
//   - an error line carries the index and the job's in-band failure
//     (the sweep keeps streaming — jobs are independent);
//   - the final line of every stream is a Done marker (Index == -1).
//     A stream that ends without one was truncated by a transport
//     failure, and its results, though individually valid, are an
//     incomplete set.
//
// Lines arrive in completion order, not input order; Index is the
// job's position in the submitted spec array.
type StreamLine struct {
	Index  int         `json:"index"`
	Result *soc.Result `json:"result,omitempty"`
	Error  *ErrorInfo  `json:"error,omitempty"`
	Done   *DoneInfo   `json:"done,omitempty"`
}

// ErrorInfo is a typed error body: a stable machine-readable code plus
// a human-readable message. It appears both in-band (StreamLine.Error)
// and as the body of non-200 responses ({"error": {...}}).
type ErrorInfo struct {
	// Code is one of: "invalid_spec", "invalid_config", "timeout",
	// "panic", "canceled", "too_large", "overloaded", "not_found",
	// "error".
	Code    string `json:"code"`
	Message string `json:"message"`
}

// DoneInfo is the stream's completion marker. Jobs counts the result
// and error lines delivered before it; Errors counts just the error
// lines. Canceled reports that the sweep was cut short — by DELETE, by
// the client closing the connection, or by server shutdown — so
// delivered results are a prefix, not the full sweep.
type DoneInfo struct {
	Jobs     int  `json:"jobs"`
	Errors   int  `json:"errors"`
	Canceled bool `json:"canceled,omitempty"`
}

// JobResponse is the body of a successful POST /v1/jobs: the result
// plus the job's canonical fingerprint (hex; its cache identity across
// the fleet). Fingerprint is empty for uncacheable jobs.
type JobResponse struct {
	Fingerprint string     `json:"fingerprint,omitempty"`
	Result      soc.Result `json:"result"`
}

// StatsResponse is the body of GET /v1/stats: the engine's cache and
// robustness counters plus the server's own admission telemetry.
type StatsResponse struct {
	Engine engine.Stats `json:"engine"`
	Server ServerStats  `json:"server"`
}

// ServerStats is the service-level counter snapshot.
type ServerStats struct {
	// SweepsActive is the number of sweep requests currently holding an
	// admission slot (streaming or about to); SweepsTotal counts every
	// admitted sweep since start, and SweepsCanceled those cut short.
	SweepsActive   int   `json:"sweeps_active"`
	SweepsTotal    int64 `json:"sweeps_total"`
	SweepsCanceled int64 `json:"sweeps_canceled"`
	// JobsAccepted counts specs admitted across all sweeps and single
	// jobs; JobErrors counts in-band per-job failures delivered.
	JobsAccepted int64 `json:"jobs_accepted"`
	JobErrors    int64 `json:"job_errors"`
	// Rejected counts requests refused at admission (HTTP 503).
	Rejected int64 `json:"rejected"`
	// RunnersInFlight is the engine's leak gauge: pooled platforms
	// currently executing. Zero whenever the service is idle.
	RunnersInFlight int64 `json:"runners_in_flight"`
}

// errorResponse is the JSON body of every non-200 response.
type errorResponse struct {
	Error ErrorInfo `json:"error"`
}

// errInfoFor classifies err into the wire taxonomy. The order matters:
// a job's own timeout (ErrJobTimeout) is deliberately distinct from
// cancellation collateral, mirroring the engine's error classes.
func errInfoFor(err error) *ErrorInfo {
	code := "error"
	var pe *engine.PanicError
	switch {
	case errors.Is(err, engine.ErrJobTimeout):
		code = "timeout"
	case errors.Is(err, soc.ErrInvalidConfig):
		code = "invalid_config"
	case errors.As(err, &pe):
		code = "panic"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = "canceled"
	}
	return &ErrorInfo{Code: code, Message: err.Error()}
}
