package policy

import (
	"fmt"

	"sysscale/internal/soc"
)

// The governors implement soc.PolicyValidator, so a misconfigured
// policy is rejected by Config.Validate — wrapped in
// soc.ErrInvalidConfig — before a run starts, instead of silently
// clamping (StaticPoint used to fall back to the top point on an
// out-of-range index) or drifting through a sweep with nonsensical
// thresholds.

// Validate implements soc.PolicyValidator: the pinned index must be a
// plausible ladder position (the ladder itself is checked against the
// index at Decide time, where its length is known).
func (s *StaticPoint) Validate() error {
	if s.PointIndex < 0 {
		return fmt.Errorf("negative ladder point index %d", s.PointIndex)
	}
	return nil
}

// Validate implements soc.PolicyValidator: the decision thresholds
// must pass the core calibration checks and the low-point threshold
// inflation must be at least 1 (deflating it would make the governor
// oscillate between points by construction).
func (s *SysScale) Validate() error {
	if err := s.Thr.Validate(); err != nil {
		return err
	}
	if s.HighScale < 1 {
		return fmt.Errorf("high-point threshold scale %.2f below 1", s.HighScale)
	}
	return nil
}

// Validate on the ablation decorators forwards to the wrapped policy.
func (m *mrcOff) Validate() error   { return validateWrapped(m.inner) }
func (n *noRedist) Validate() error { return validateWrapped(n.inner) }

func validateWrapped(p soc.Policy) error {
	if v, ok := p.(soc.PolicyValidator); ok {
		return v.Validate()
	}
	return nil
}
