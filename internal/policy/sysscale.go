package policy

import (
	"sysscale/internal/core"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// SysScale is the paper's governor (§4): every evaluation interval it
// estimates static demand from the CSRs, applies the five-condition
// rule over the window-averaged counters, moves the IO and memory
// domains between adjacent ladder points accordingly, reloads optimized
// MRC images on every move, and re-reserves the domain budgets at the
// chosen point so the PBM can redistribute the difference to compute.
type SysScale struct {
	// Thr are the calibrated decision thresholds (offline µ+σ, §4.2).
	Thr core.Thresholds
	// HighScale inflates the thresholds when judged from a lower
	// operating point: counters measured at the low point are larger
	// for the same demand (loaded latency is higher), so the
	// stay-low/go-high comparison uses dedicated thresholds per
	// adjacent pair (§4.3 "with dedicated thresholds").
	HighScale float64

	estimator core.StaticEstimator
}

// NewSysScale builds the governor with calibrated thresholds.
func NewSysScale(thr core.Thresholds) *SysScale {
	return &SysScale{Thr: thr, HighScale: defaultHighScale}
}

// NewSysScaleDefault builds the governor with the baked default
// calibration for the Table 2 platform (see DefaultThresholds).
func NewSysScaleDefault() *SysScale {
	return NewSysScale(DefaultThresholds())
}

// defaultHighScale is the threshold inflation for decisions taken at
// the low point, matching the loaded-latency ratio between the points.
const defaultHighScale = 1.5

// Name implements soc.Policy.
func (*SysScale) Name() string { return "sysscale" }

// Reset implements soc.Policy.
func (*SysScale) Reset() {}

// Clone implements soc.Policy.
func (s *SysScale) Clone() soc.Policy {
	c := *s
	return &c
}

// calibCoreFreq is the core clock at which the default thresholds were
// calibrated. The traffic-proportional counters (occupancy, stall
// share) scale with the core clock for a given workload, so the
// firmware normalizes the thresholds by the granted P-state — without
// this a 15W part running 3.6GHz under-detects memory pressure and a
// 3.5W part running 1.7GHz over-detects it.
const calibCoreFreq vf.Hz = 2.4 * vf.GHz

// Decide implements soc.Policy.
func (s *SysScale) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	if ctx.Warmup {
		// No counter samples yet (first interval after reset): hold the
		// boot point rather than deciding on empty counters.
		return soc.PolicyDecision{
			Target:       ctx.Current,
			OptimizedMRC: true,
			IOBudget:     ctx.WorstIO(ctx.Current),
			MemBudget:    ctx.WorstMem(ctx.Current),
		}
	}
	static := s.estimator.Estimate(ctx.CSR)

	cur := ladderIndex(ctx)
	thr := s.Thr
	if ctx.CoreFreq > 0 {
		norm := float64(calibCoreFreq) / float64(ctx.CoreFreq)
		if norm < 0.55 {
			norm = 0.55
		}
		if norm > 1.7 {
			norm = 1.7
		}
		thr.OccTracer *= norm
		thr.LLCStalls *= norm
	}
	if cur > 0 {
		// Judged from a lower point: the occupancy-type counters (queue
		// occupancies, stall counts) inflate with the low point's higher
		// loaded latency, so the pair's dedicated thresholds scale them
		// up. GFX_LLC_MISSES is a rate counter and needs no scaling.
		scale := s.HighScale
		if scale <= 0 {
			scale = defaultHighScale
		}
		thr.OccTracer *= scale
		thr.LLCStalls *= scale
		thr.IORPQ *= scale
	}
	d := core.Decide(thr, static, ctx.Counters)

	// Move one step at a time between adjacent points (§4.3: "the
	// above algorithm decides between two adjacent operating points").
	next := cur
	if d.High {
		if cur > 0 {
			next = cur - 1
		}
	} else {
		if cur < len(ctx.Ladder)-1 {
			next = cur + 1
		}
	}
	target := ctx.Ladder[next]
	return soc.PolicyDecision{
		Target:       target,
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(target),
		MemBudget:    ctx.WorstMem(target),
	}
}

// ladderIndex locates the current point in the ladder (0 when not
// found, which only happens on malformed ladders).
func ladderIndex(ctx soc.PolicyContext) int {
	for i, op := range ctx.Ladder {
		if op == ctx.Current {
			return i
		}
	}
	return 0
}

// DefaultThresholds returns the baked calibration for the default
// platform. The values were derived with the offline procedure of §4.2
// (µ+σ over the below-bound population of a calibration sweep, then
// the zero-false-positive guard pass — reproducible via
// experiments.Calibrate) and then hand-adjusted against the SPEC,
// 3DMark and battery suites, the same way production firmware tunes
// fused thresholds after the statistical pass.
//
// Units: GfxMisses is a miss rate (events/s); OccTracer is a queue
// occupancy (requests); LLCStalls is a stall-cycle percentage; IORPQ
// is a queue occupancy; StaticBWThr is bytes/s.
func DefaultThresholds() core.Thresholds {
	return core.Thresholds{
		GfxMisses:   150e6,
		OccTracer:   5.5,
		LLCStalls:   18.0,
		IORPQ:       4.0,
		StaticBWThr: 6.5e9,
		DegradBound: 0.03,
	}
}
