package policy

import (
	"reflect"
	"testing"

	"sysscale/internal/perfcounters"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// cloneSequence is a context sequence that exercises every piece of
// governor state: savings credits (high/low power observations),
// CoScale's sticky demotion, and the adjacent-point walk.
func cloneSequence() []soc.PolicyContext {
	memLow := memOnlyPoint(vf.LowPoint(), vf.HighPoint())
	stalled := busyCounters()
	stalled[perfcounters.LLCStalls] = 70

	ctx1 := testCtx(vf.HighPoint(), stalled)
	ctx1.IOMemPower = 1.2
	ctx1.ComputeBudget = 2.0
	ctx1.ComputePower = 1.1

	ctx2 := testCtx(memLow, quietCounters())
	ctx2.IOMemPower = 0.7

	ctx3 := testCtx(vf.LowPoint(), quietCounters())
	ctx3.IOMemPower = 0.6

	ctx4 := testCtx(vf.HighPoint(), busyCounters())
	ctx4.IOMemPower = 1.3

	ctx5 := testCtx(memLow, quietCounters())
	ctx5.IOMemPower = 0.65
	ctx5.ComputeBudget = 2.0
	ctx5.ComputePower = 0.9

	return []soc.PolicyContext{ctx1, ctx2, ctx3, ctx4, ctx5}
}

// trace runs the policy through the sequence and records its decisions.
func trace(p soc.Policy) []soc.PolicyDecision {
	var out []soc.PolicyDecision
	for _, ctx := range cloneSequence() {
		out = append(out, p.Decide(ctx))
	}
	return out
}

// TestCloneIndependence covers every shipped policy: a clone taken
// before the original accumulates state must decide exactly like a
// fresh instance, and dirtying the original must not leak into clones
// taken either before or after.
func TestCloneIndependence(t *testing.T) {
	cases := []struct {
		name string
		mk   func() soc.Policy
	}{
		{"baseline", func() soc.Policy { return NewBaseline() }},
		{"static-point", func() soc.Policy { return NewStaticPoint(1, true) }},
		{"static-point-unopt", func() soc.Policy {
			s := NewStaticPoint(1, false)
			s.OptimizedMRC = false
			return s
		}},
		{"sysscale", func() soc.Policy { return NewSysScaleDefault() }},
		{"sysscale-custom", func() soc.Policy {
			thr := DefaultThresholds()
			thr.LLCStalls /= 2
			return NewSysScale(thr)
		}},
		{"memscale", func() soc.Policy { return NewMemScale() }},
		{"memscale-redist", func() soc.Policy { return NewMemScaleRedist() }},
		{"coscale", func() soc.Policy { return NewCoScale() }},
		{"coscale-redist", func() soc.Policy { return NewCoScaleRedist() }},
		{"no-mrc-wrapper", func() soc.Policy { return WithoutOptimizedMRC(NewSysScaleDefault()) }},
		{"no-redist-wrapper", func() soc.Policy { return WithoutRedistribution(NewCoScaleRedist()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := trace(tc.mk())

			// Clone before dirtying, then dirty the original.
			orig := tc.mk()
			before := orig.Clone()
			_ = trace(orig) // mutate the original's state

			if got := trace(before); !reflect.DeepEqual(got, want) {
				t.Error("clone taken before mutation was affected by the sibling")
			}

			// A clone of the now-dirty original must still start fresh:
			// Clone carries configuration, not accumulated state.
			after := orig.Clone()
			if got := trace(after); !reflect.DeepEqual(got, want) {
				t.Error("clone of a dirty policy inherited its state")
			}

			// Dirtying a clone must not leak back into the original.
			orig2 := tc.mk()
			c := orig2.Clone()
			_ = trace(c)
			orig2Trace := trace(orig2)
			if !reflect.DeepEqual(orig2Trace, want) {
				t.Error("mutating a clone leaked into the original")
			}

			if before.Name() != orig.Name() {
				t.Error("clone changed the policy name")
			}
		})
	}
}
