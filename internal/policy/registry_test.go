package policy

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"sysscale/internal/soc"
)

func TestRegisterRejectsDuplicateName(t *testing.T) {
	c := Codec{
		Type:         reflect.TypeOf(&testOnlyPolicy{}),
		Decode:       func([]byte) (soc.Policy, error) { return &testOnlyPolicy{}, nil },
		Encode:       func(p soc.Policy) (any, bool) { _, ok := p.(*testOnlyPolicy); return struct{}{}, ok },
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) { return append(b, '{', '}'), true },
	}
	// "sysscale" is taken by the init registration.
	if err := Register("sysscale", c); err == nil {
		t.Fatalf("Register(%q) accepted a duplicate name", "sysscale")
	}
	// A fresh name with an already-registered type must fail too.
	dup := c
	dup.Type = reflect.TypeOf(&SysScale{})
	if err := Register("sysscale-again", dup); err == nil {
		t.Fatalf("Register accepted a duplicate concrete type")
	}
}

func TestRegisterRejectsDuplicateWrapper(t *testing.T) {
	w := Wrapper{Type: reflect.TypeOf(&testOnlyPolicy{}), Wrap: func(p soc.Policy) soc.Policy { return p }}
	if err := RegisterWrapper("no-mrc", w); err == nil {
		t.Fatalf("RegisterWrapper accepted a duplicate name")
	}
	dup := Wrapper{Type: reflect.TypeOf(&mrcOff{}), Wrap: func(p soc.Policy) soc.Policy { return p }}
	if err := RegisterWrapper("no-mrc-again", dup); err == nil {
		t.Fatalf("RegisterWrapper accepted a duplicate concrete type")
	}
}

func TestRegisterRejectsIncompleteCodec(t *testing.T) {
	if err := Register("", Codec{}); err == nil {
		t.Fatalf("Register accepted an empty name")
	}
	if err := Register("incomplete", Codec{}); err == nil {
		t.Fatalf("Register accepted a codec with nil hooks")
	}
}

type testOnlyPolicy struct{}

func (*testOnlyPolicy) Name() string      { return "test-only" }
func (*testOnlyPolicy) Reset()            {}
func (*testOnlyPolicy) Clone() soc.Policy { return &testOnlyPolicy{} }
func (*testOnlyPolicy) Decide(soc.PolicyContext) soc.PolicyDecision {
	return soc.PolicyDecision{}
}

// registryPolicies covers every family and wrapper combination the
// experiments use.
func registryPolicies() []soc.Policy {
	return []soc.Policy{
		NewBaseline(),
		NewSysScaleDefault(),
		NewMemScale(),
		NewMemScaleRedist(),
		NewCoScale(),
		NewCoScaleRedist(),
		NewStaticPoint(1, true),
		&StaticPoint{PointIndex: 0, OptimizedMRC: false, Redistribute: false},
		WithoutOptimizedMRC(NewSysScaleDefault()),
		WithoutRedistribution(NewSysScaleDefault()),
		WithoutRedistribution(WithoutOptimizedMRC(NewSysScaleDefault())),
	}
}

func TestDeconstructBuildRoundTrip(t *testing.T) {
	for _, p := range registryPolicies() {
		name, params, wrap, ok := Deconstruct(p)
		if !ok {
			t.Fatalf("Deconstruct(%s): not registered", p.Name())
		}
		raw, err := json.Marshal(params)
		if err != nil {
			t.Fatalf("marshal %s params: %v", name, err)
		}
		back, err := Build(name, raw, wrap)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if got, want := back.Name(), p.Name(); got != want {
			t.Errorf("round-trip of %s: Name() = %q, want %q", name, got, want)
		}
		if !reflect.DeepEqual(back, p) {
			t.Errorf("round-trip of %s: rebuilt policy differs: %#v vs %#v", name, back, p)
		}
	}
}

func TestBuildDefaultsMatchConstructors(t *testing.T) {
	cases := []struct {
		name string
		want soc.Policy
	}{
		{"baseline", NewBaseline()},
		{"sysscale", NewSysScaleDefault()},
		{"memscale", NewMemScale()},
		{"coscale", NewCoScale()},
		{"static-point", NewStaticPoint(0, false)},
	}
	for _, tc := range cases {
		for _, params := range [][]byte{nil, []byte("null"), []byte("{}")} {
			got, err := Build(tc.name, params, nil)
			if err != nil {
				t.Fatalf("Build(%s, %q): %v", tc.name, params, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Build(%s, %q) = %#v, want constructor default %#v", tc.name, params, got, tc.want)
			}
		}
	}
}

func TestBuildRejectsUnknown(t *testing.T) {
	if _, err := Build("no-such-policy", nil, nil); err == nil {
		t.Fatalf("Build accepted an unknown policy name")
	}
	if _, err := Build("sysscale", []byte(`{"bogus_knob":1}`), nil); err == nil {
		t.Fatalf("Build accepted unknown params fields")
	}
	if _, err := Build("sysscale", nil, []string{"no-such-wrapper"}); err == nil {
		t.Fatalf("Build accepted an unknown wrapper name")
	}
	if _, err := Build("sysscale", []byte(`{} {}`), nil); err == nil {
		t.Fatalf("Build accepted trailing params data")
	}
}

// TestAppendParamsCanonical proves each codec's zero-alloc appender
// emits exactly the sorted-and-compacted json.Marshal of its Encode
// value — the equivalence the spec layer's canonical-bytes contract
// rests on.
func TestAppendParamsCanonical(t *testing.T) {
	for _, p := range registryPolicies() {
		base := p
		for {
			u, ok := base.(interface{ Unwrap() soc.Policy })
			if !ok {
				break
			}
			base = u.Unwrap()
		}
		name, c, ok := CodecFor(base)
		if !ok {
			t.Fatalf("CodecFor(%s): not registered", base.Name())
		}
		params, ok := c.Encode(base)
		if !ok {
			t.Fatalf("%s: Encode rejected its own type", name)
		}
		want, err := canonicalJSON(params)
		if err != nil {
			t.Fatalf("%s: canonicalize: %v", name, err)
		}
		got, ok := c.AppendParams(nil, base)
		if !ok {
			t.Fatalf("%s: AppendParams rejected its own type", name)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: AppendParams = %s, want %s", name, got, want)
		}
	}
}

// canonicalJSON marshals v, then re-marshals through a number-
// preserving decode so object keys come out sorted and whitespace-free
// while numeric literals stay byte-identical.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	return json.Marshal(tree)
}
