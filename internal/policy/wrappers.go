package policy

import "sysscale/internal/soc"

// This file provides ablation decorators: they wrap a governor and
// strip one design element, letting the experiments quantify each
// element's contribution (DESIGN.md §6).

type mrcOff struct{ inner soc.Policy }

// WithoutOptimizedMRC returns p with per-frequency MRC reloads
// disabled: every transition keeps the boot register image, the
// Observation 4 failure mode inside an otherwise unchanged policy.
func WithoutOptimizedMRC(p soc.Policy) soc.Policy { return &mrcOff{inner: p} }

func (m *mrcOff) Name() string       { return m.inner.Name() + "-no-mrc" }
func (m *mrcOff) Reset()             { m.inner.Reset() }
func (m *mrcOff) Clone() soc.Policy  { return &mrcOff{inner: m.inner.Clone()} }
func (m *mrcOff) Unwrap() soc.Policy { return m.inner }
func (m *mrcOff) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	d := m.inner.Decide(ctx)
	d.OptimizedMRC = false
	return d
}

type noRedist struct{ inner soc.Policy }

// WithoutRedistribution returns p with power-budget redistribution
// disabled: the IO and memory domains still scale (saving power), but
// the compute domain keeps its baseline worst-case allocation — the
// "pure power-saving" mode the ablation compares against.
func WithoutRedistribution(p soc.Policy) soc.Policy { return &noRedist{inner: p} }

func (n *noRedist) Name() string       { return n.inner.Name() + "-no-redist" }
func (n *noRedist) Reset()             { n.inner.Reset() }
func (n *noRedist) Clone() soc.Policy  { return &noRedist{inner: n.inner.Clone()} }
func (n *noRedist) Unwrap() soc.Policy { return n.inner }
func (n *noRedist) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	d := n.inner.Decide(ctx)
	top := ctx.Ladder[0]
	d.IOBudget = ctx.WorstIO(top)
	d.MemBudget = ctx.WorstMem(top)
	d.ComputeBonus = 0
	return d
}
