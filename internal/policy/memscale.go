package policy

import (
	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// MemScale reimplements the MemScale governor [16] at epoch
// granularity: memory-subsystem-only DVFS under a slack target. On this
// platform that means scaling the DRAM device, the DDRIO clock and the
// memory controller clock — but, unlike SysScale:
//
//   - the IO interconnect keeps its full clock, and since it shares
//     V_SA with the memory controller, V_SA cannot be lowered;
//   - the DDRIO-digital voltage (V_IO) is likewise untouched (§2.4:
//     prior schemes scale frequencies, with voltage reduced only for
//     the controller — impossible here because of the shared rail);
//   - configuration registers are NOT retrained per frequency
//     (Observation 4): the boot image runs detuned at the low bin.
//
// The -Redist variant adds the paper's §6 projection: the measured
// average IO+memory power saving is credited to the compute budget.
type MemScale struct {
	// Redistribute enables the -Redist projection.
	Redistribute bool
	// UtilTarget is the bandwidth utilization below which the governor
	// considers the memory subsystem over-provisioned (MemScale's
	// slack-based control translated to the epoch model).
	UtilTarget float64
	// StallThr guards latency slack: above it the governor stays high.
	StallThr float64

	credit savingsCredit
	memo   memPointMemo
}

// NewMemScale returns the plain (power-saving only) governor.
func NewMemScale() *MemScale {
	return &MemScale{UtilTarget: 0.33, StallThr: 20.0}
}

// NewMemScaleRedist returns the MemScale-Redist comparator of §6.
func NewMemScaleRedist() *MemScale {
	m := NewMemScale()
	m.Redistribute = true
	return m
}

// Name implements soc.Policy.
func (m *MemScale) Name() string {
	if m.Redistribute {
		return "memscale-redist"
	}
	return "memscale"
}

// Reset implements soc.Policy.
func (m *MemScale) Reset() { m.credit = savingsCredit{} }

// Clone implements soc.Policy: the copy keeps the tuning knobs but
// starts with an empty savings credit.
func (m *MemScale) Clone() soc.Policy {
	c := *m
	c.Reset()
	return &c
}

// Decide implements soc.Policy.
func (m *MemScale) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	top := ctx.Ladder[0]
	lowIdx := 1
	if lowIdx >= len(ctx.Ladder) {
		lowIdx = 0
	}
	memLow := m.memo.point(ctx.Ladder[lowIdx], top)

	goLow := m.wantLow(ctx, top)
	target := top
	atLow := ctx.Current.DDR < top.DDR
	if goLow {
		target = memLow
	}

	dec := soc.PolicyDecision{
		Target:       target,
		OptimizedMRC: false, // keeps the boot image (Observation 4)
		IOBudget:     ctx.WorstIO(top),
		MemBudget:    ctx.WorstMem(top),
	}
	if m.Redistribute {
		m.credit.observe(atLow, ctx.IOMemPower)
		dec.ComputeBonus = m.credit.bonus(goLow)
	}
	return dec
}

// wantLow applies MemScale's slack test using observable counters: the
// memory subsystem is over-provisioned when measured bandwidth
// utilization and latency pressure are both low.
func (m *MemScale) wantLow(ctx soc.PolicyContext, top vf.OperatingPoint) bool {
	return slackAvailable(ctx, top, m.UtilTarget, m.StallThr)
}

// slackAvailable is the shared MemScale/CoScale slack test. A naive
// "achieved bandwidth below target" rule self-traps at the low point
// (serving less convinces the governor demand is low), so the test is
// point-aware: from the top point it compares demand against the top's
// usable bandwidth; from the low point it returns to the top when
// measured traffic fills more than half of the low point's (detuned)
// usable bandwidth.
func slackAvailable(ctx soc.PolicyContext, top vf.OperatingPoint, utilTarget, stallThr float64) bool {
	if ctx.Warmup {
		return ctx.Current.DDR < top.DDR // hold the current point
	}
	bw := ctx.Counters.Get(perfcounters.MemReadBytes) + ctx.Counters.Get(perfcounters.MemWriteBytes)
	stalls := ctx.Counters.Get(perfcounters.LLCStalls)
	atLow := ctx.Current.DDR < top.DDR
	if !atLow {
		return bw < utilTarget*peakUsable(top) && stalls < stallThr
	}
	lowIdx := 1
	if lowIdx >= len(ctx.Ladder) {
		lowIdx = 0
	}
	lowUsable := peakUsable(ctx.Ladder[lowIdx]) * detunedInterfaceEff
	return bw < 0.5*lowUsable && stalls < stallThr*1.5
}

// detunedInterfaceEff mirrors the bandwidth loss of running the boot
// MRC image at the low bin (Observation 4), which these governors
// suffer by design.
const detunedInterfaceEff = 0.9

// memOnlyPoint derives MemScale's operating point: the low point's
// memory clocks with the top point's interconnect clock and voltages
// (the shared rails cannot move).
func memOnlyPoint(low, top vf.OperatingPoint) vf.OperatingPoint {
	return vf.OperatingPoint{
		Name:    "mem-" + low.Name,
		DDR:     low.DDR,
		MC:      low.MC,
		Interco: top.Interco,
		VSA:     top.VSA,
		VIO:     top.VIO,
	}
}

// memPointMemo is a one-slot cache over memOnlyPoint. Ladders are
// fixed for the life of a run, so after the first epoch every Decide
// reuses the composed point — and, critically, its allocated Name
// string: the naked concat was one heap allocation per policy epoch
// on the sweep hot path. Keyed on both inputs, so a memo copied by
// Clone (or carried across Reset) can never serve a stale point.
type memPointMemo struct {
	low, top vf.OperatingPoint
	pt       vf.OperatingPoint
	ok       bool
}

func (m *memPointMemo) point(low, top vf.OperatingPoint) vf.OperatingPoint {
	if !m.ok || m.low != low || m.top != top {
		m.low, m.top, m.pt, m.ok = low, top, memOnlyPoint(low, top), true
	}
	return m.pt
}

// savingsCredit tracks the measured IO+memory power at the high and
// low points (EWMA) and converts the difference into the §6 projection
// credit when running low.
type savingsCredit struct {
	highW, lowW    float64
	haveHi, haveLo bool
}

const creditAlpha = 0.2

func (c *savingsCredit) observe(atLow bool, ioMem power.Watt) {
	v := float64(ioMem)
	if v <= 0 {
		return
	}
	if atLow {
		if !c.haveLo {
			c.lowW = v
			c.haveLo = true
		} else {
			c.lowW += creditAlpha * (v - c.lowW)
		}
	} else {
		if !c.haveHi {
			c.highW = v
			c.haveHi = true
		} else {
			c.highW += creditAlpha * (v - c.highW)
		}
	}
}

func (c *savingsCredit) bonus(goingLow bool) power.Watt {
	if !goingLow || !c.haveHi || !c.haveLo {
		return 0
	}
	d := c.highW - c.lowW
	if d < 0 {
		return 0
	}
	return power.Watt(d)
}
