package policy

import (
	"testing"

	"sysscale/internal/ioengine"
	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// testCtx builds a policy context with canned budget tables.
func testCtx(current vf.OperatingPoint, counters perfcounters.Sample) soc.PolicyContext {
	return soc.PolicyContext{
		Counters: counters,
		Current:  current,
		Ladder:   vf.TwoPointLadder(),
		CoreFreq: 2.4 * vf.GHz,
		WorstIO: func(op vf.OperatingPoint) power.Watt {
			if op.DDR >= 1.6*vf.GHz {
				return 0.9
			}
			return 0.3
		},
		WorstMem: func(op vf.OperatingPoint) power.Watt {
			if op.DDR >= 1.6*vf.GHz {
				return 1.7
			}
			return 1.0
		},
	}
}

func quietCounters() perfcounters.Sample {
	var s perfcounters.Sample
	s[perfcounters.MemReadBytes] = 1e9
	s[perfcounters.MemWriteBytes] = 0.5e9
	return s
}

func busyCounters() perfcounters.Sample {
	var s perfcounters.Sample
	s[perfcounters.GfxLLCMisses] = 300e6
	s[perfcounters.LLCOccupancyTracer] = 12
	s[perfcounters.LLCStalls] = 45
	s[perfcounters.IORPQ] = 6
	s[perfcounters.MemReadBytes] = 12e9
	s[perfcounters.MemWriteBytes] = 5e9
	return s
}

func TestBaselineAlwaysHigh(t *testing.T) {
	p := NewBaseline()
	for _, c := range []perfcounters.Sample{quietCounters(), busyCounters()} {
		d := p.Decide(testCtx(vf.LowPoint(), c))
		if d.Target != vf.HighPoint() {
			t.Fatal("baseline left the high point")
		}
		if d.IOBudget != 0.9 || d.MemBudget != 1.7 {
			t.Fatal("baseline did not reserve worst case")
		}
	}
	if p.Name() != "baseline" {
		t.Fatal("name wrong")
	}
	p.Reset() // must not panic
}

func TestSysScaleGoesLowWhenQuiet(t *testing.T) {
	p := NewSysScaleDefault()
	d := p.Decide(testCtx(vf.HighPoint(), quietCounters()))
	if d.Target != vf.LowPoint() {
		t.Fatalf("quiet system not sent low: %v", d.Target.Name)
	}
	if !d.OptimizedMRC {
		t.Fatal("SysScale must reload optimized MRC images")
	}
	// Redistribution: low-point reservations.
	if d.IOBudget != 0.3 || d.MemBudget != 1.0 {
		t.Fatal("budgets not re-reserved at the low point")
	}
}

func TestSysScaleStaysHighWhenBusy(t *testing.T) {
	p := NewSysScaleDefault()
	d := p.Decide(testCtx(vf.HighPoint(), busyCounters()))
	if d.Target != vf.HighPoint() {
		t.Fatal("busy system sent low")
	}
}

func TestSysScaleReturnsHighFromLow(t *testing.T) {
	p := NewSysScaleDefault()
	d := p.Decide(testCtx(vf.LowPoint(), busyCounters()))
	if d.Target != vf.HighPoint() {
		t.Fatal("busy system kept low")
	}
}

func TestSysScaleStaticDemandForcesHigh(t *testing.T) {
	p := NewSysScaleDefault()
	ctx := testCtx(vf.HighPoint(), quietCounters())
	// A 4K panel's static demand alone exceeds STATIC_BW_THR.
	csr := ctx.CSR
	csr.Panels[0] = ioengine.Panel{Res: ioengine.Display4K, RefreshHz: 60}
	ctx.CSR = csr
	d := p.Decide(ctx)
	if d.Target != vf.HighPoint() {
		t.Fatal("4K display sent low despite static demand (condition 1)")
	}
}

func TestSysScaleWarmupHolds(t *testing.T) {
	p := NewSysScaleDefault()
	ctx := testCtx(vf.HighPoint(), perfcounters.Sample{})
	ctx.Warmup = true
	d := p.Decide(ctx)
	if d.Target != vf.HighPoint() {
		t.Fatal("warmup decision moved the operating point")
	}
}

func TestSysScaleFreqNormalization(t *testing.T) {
	p := NewSysScaleDefault()
	// Borderline counters that pass at the calibration clock.
	var s perfcounters.Sample
	s[perfcounters.LLCOccupancyTracer] = 5.0 // just under the 5.5 default
	ctx := testCtx(vf.HighPoint(), s)
	if d := p.Decide(ctx); d.Target != vf.LowPoint() {
		t.Fatal("borderline workload not sent low at calibration clock")
	}
	// At 3.6GHz the same counter value indicates much more pressure per
	// unit of work: thresholds normalize down and the system stays high.
	ctx.CoreFreq = 3.6 * vf.GHz
	if d := p.Decide(ctx); d.Target != vf.HighPoint() {
		t.Fatal("frequency normalization missing")
	}
}

func TestStaticPoint(t *testing.T) {
	p := NewStaticPoint(1, false)
	d := p.Decide(testCtx(vf.HighPoint(), busyCounters()))
	if d.Target != vf.LowPoint() {
		t.Fatal("static point ignored index")
	}
	// Without redistribution, budgets stay at the high reservations.
	if d.IOBudget != 0.9 || d.MemBudget != 1.7 {
		t.Fatal("non-redistributing static policy resized budgets")
	}
	pr := NewStaticPoint(1, true)
	dr := pr.Decide(testCtx(vf.HighPoint(), busyCounters()))
	if dr.IOBudget != 0.3 || dr.MemBudget != 1.0 {
		t.Fatal("redistributing static policy kept high budgets")
	}
	// Out-of-range index falls back to the top point.
	if d := NewStaticPoint(99, false).Decide(testCtx(vf.HighPoint(), quietCounters())); d.Target != vf.HighPoint() {
		t.Fatal("bad index not clamped")
	}
}

func TestMemScaleScalesMemoryOnly(t *testing.T) {
	p := NewMemScale()
	d := p.Decide(testCtx(vf.HighPoint(), quietCounters()))
	// MemScale's point keeps the interconnect clock and both shared
	// voltages at their high values (§2.4, §8).
	if d.Target.DDR != vf.LowPoint().DDR {
		t.Fatal("memory not scaled")
	}
	if d.Target.Interco != vf.HighPoint().Interco {
		t.Fatal("MemScale scaled the IO interconnect")
	}
	if d.Target.VSA != vf.HighPoint().VSA || d.Target.VIO != vf.HighPoint().VIO {
		t.Fatal("MemScale scaled a shared rail")
	}
	if d.OptimizedMRC {
		t.Fatal("MemScale must not retrain MRC (Observation 4)")
	}
}

func TestMemScaleStaysHighUnderLoad(t *testing.T) {
	p := NewMemScale()
	d := p.Decide(testCtx(vf.HighPoint(), busyCounters()))
	if d.Target.DDR != vf.HighPoint().DDR {
		t.Fatal("busy system scaled down")
	}
}

func TestMemScaleEscapesLowPointTrap(t *testing.T) {
	// At the low point, achieved bandwidth is capped by the (detuned)
	// low ceiling; the governor must still detect pressure and return
	// high rather than self-trap.
	p := NewMemScale()
	memLow := memOnlyPoint(vf.LowPoint(), vf.HighPoint())
	var s perfcounters.Sample
	s[perfcounters.MemReadBytes] = 7e9
	s[perfcounters.MemWriteBytes] = 3e9 // 10GB/s >> half the low ceiling
	d := p.Decide(testCtx(memLow, s))
	if d.Target.DDR != vf.HighPoint().DDR {
		t.Fatal("governor trapped at the low point")
	}
}

func TestMemScaleRedistCredit(t *testing.T) {
	p := NewMemScaleRedist()
	ctxHigh := testCtx(vf.HighPoint(), quietCounters())
	ctxHigh.IOMemPower = 1.0
	d := p.Decide(ctxHigh) // observes high power, decides low
	if d.ComputeBonus != 0 {
		t.Fatal("credit granted before both points observed")
	}
	memLow := memOnlyPoint(vf.LowPoint(), vf.HighPoint())
	ctxLow := testCtx(memLow, quietCounters())
	ctxLow.IOMemPower = 0.8
	d = p.Decide(ctxLow)
	if d.ComputeBonus <= 0 {
		t.Fatal("measured savings not credited")
	}
	p.Reset()
	d = p.Decide(ctxLow)
	if d.ComputeBonus != 0 {
		t.Fatal("reset did not clear the credit")
	}
}

func TestCoScaleDemotesWhenMemoryBound(t *testing.T) {
	p := NewCoScaleRedist()
	s := busyCounters()
	s[perfcounters.LLCStalls] = 70 // above MemBoundThr
	ctx := testCtx(vf.HighPoint(), s)
	d := p.Decide(ctx)
	if d.CoreFreqReq == 0 || d.CoreFreqReq >= ctx.CoreFreq {
		t.Fatal("memory-bound interval not demoted")
	}
	first := d.CoreFreqReq
	// Sticky: a second memory-bound interval must not compound the cut.
	ctx.CoreFreq = first
	d2 := p.Decide(ctx)
	if d2.CoreFreqReq != 0 && d2.CoreFreqReq < first {
		t.Fatalf("demotion compounded: %v -> %v", first, d2.CoreFreqReq)
	}
	// Clearing the pressure clears the demotion.
	d3 := p.Decide(testCtx(vf.HighPoint(), quietCounters()))
	if d3.CoreFreqReq != 0 {
		t.Fatal("demotion not cleared")
	}
}

func TestCoScaleFloor(t *testing.T) {
	p := NewCoScale()
	s := busyCounters()
	s[perfcounters.LLCStalls] = 70
	ctx := testCtx(vf.HighPoint(), s)
	ctx.CoreFreq = 1.2 * vf.GHz // already at Pn
	d := p.Decide(ctx)
	if d.CoreFreqReq != 0 {
		t.Fatal("CoScale demoted below the Pn floor (§7.2-7.3)")
	}
}

func TestWrappers(t *testing.T) {
	base := NewSysScaleDefault()
	noMRC := WithoutOptimizedMRC(base)
	d := noMRC.Decide(testCtx(vf.HighPoint(), quietCounters()))
	if d.OptimizedMRC {
		t.Fatal("wrapper did not disable MRC reload")
	}
	noRed := WithoutRedistribution(NewSysScaleDefault())
	d = noRed.Decide(testCtx(vf.HighPoint(), quietCounters()))
	if d.IOBudget != 0.9 || d.MemBudget != 1.7 {
		t.Fatal("wrapper did not pin baseline budgets")
	}
	if d.Target != vf.LowPoint() {
		t.Fatal("wrapper changed the scaling decision")
	}
	for _, p := range []soc.Policy{noMRC, noRed} {
		if p.Name() == "" {
			t.Fatal("wrapper name empty")
		}
		p.Reset()
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]soc.Policy{
		"sysscale":        NewSysScaleDefault(),
		"memscale":        NewMemScale(),
		"memscale-redist": NewMemScaleRedist(),
		"coscale":         NewCoScale(),
		"coscale-redist":  NewCoScaleRedist(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}

func TestDefaultThresholdsValid(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
}
