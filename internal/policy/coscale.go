package policy

import (
	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// CoScale reimplements the CoScale governor [14] at epoch granularity:
// coordinated CPU + memory-subsystem DVFS under a joint performance
// constraint. Relative to MemScale it adds the CPU half of the search:
// when the interval is heavily memory bound, lowering the core clock
// costs little performance, so CoScale demotes the cores and banks the
// saved compute power. Because the coordination bounds the combined
// slowdown, CoScale can also afford a looser memory slack target than
// MemScale alone.
//
// Like MemScale, CoScale does not touch the IO interconnect, cannot
// lower the shared V_SA / V_IO rails, and does not retrain the DRAM
// configuration registers per frequency (§8's drawbacks list).
//
// The -Redist variant projects both credits (memory savings and banked
// core savings) onto the compute budget, per §6.
type CoScale struct {
	Redistribute bool
	// UtilTarget mirrors MemScale's but looser (joint slack).
	UtilTarget float64
	StallThr   float64
	// MemBoundThr is the stall level above which the cores are
	// demoted.
	MemBoundThr float64
	// DemoteRatio is the core-clock reduction applied when demoting.
	DemoteRatio float64
	// FloorFreq bounds demotion (Pn: cores never go below their most
	// efficient frequency — which is why CoScale degenerates to
	// MemScale on graphics and battery workloads, §7.2-7.3).
	FloorFreq vf.Hz

	credit     savingsCredit
	coreCredit float64
	demoted    vf.Hz // sticky demotion target while memory bound
	memo       memPointMemo
}

// NewCoScale returns the plain governor.
func NewCoScale() *CoScale {
	return &CoScale{
		UtilTarget:  0.42,
		StallThr:    24.0,
		MemBoundThr: 60.0,
		DemoteRatio: 0.80,
		FloorFreq:   1.2 * vf.GHz,
	}
}

// NewCoScaleRedist returns the CoScale-Redist comparator of §6.
func NewCoScaleRedist() *CoScale {
	c := NewCoScale()
	c.Redistribute = true
	return c
}

// Name implements soc.Policy.
func (c *CoScale) Name() string {
	if c.Redistribute {
		return "coscale-redist"
	}
	return "coscale"
}

// Reset implements soc.Policy.
func (c *CoScale) Reset() {
	c.credit = savingsCredit{}
	c.coreCredit = 0
	c.demoted = 0
}

// Clone implements soc.Policy: the copy keeps the tuning knobs but
// starts with empty credits and no sticky demotion.
func (c *CoScale) Clone() soc.Policy {
	cp := *c
	cp.Reset()
	return &cp
}

// Decide implements soc.Policy.
func (c *CoScale) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	top := ctx.Ladder[0]
	lowIdx := 1
	if lowIdx >= len(ctx.Ladder) {
		lowIdx = 0
	}
	memLow := c.memo.point(ctx.Ladder[lowIdx], top)

	stalls := ctx.Counters.Get(perfcounters.LLCStalls)
	goLow := slackAvailable(ctx, top, c.UtilTarget, c.StallThr)
	atLow := ctx.Current.DDR < top.DDR
	target := top
	if goLow {
		target = memLow
	}

	dec := soc.PolicyDecision{
		Target:       target,
		OptimizedMRC: false,
		IOBudget:     ctx.WorstIO(top),
		MemBudget:    ctx.WorstMem(top),
	}

	// CPU half of the coordinated search: demote the cores during
	// memory-bound intervals and bank the unused compute budget. The
	// demotion target is sticky (one notch off the undemoted grant) so
	// consecutive memory-bound intervals do not compound the cut.
	if stalls > c.MemBoundThr && ctx.CoreFreq > 0 {
		if c.demoted == 0 {
			c.demoted = vf.Hz(float64(ctx.CoreFreq) * c.DemoteRatio)
		}
		if c.demoted < c.FloorFreq {
			c.demoted = c.FloorFreq
		}
		if c.demoted < ctx.CoreFreq {
			dec.CoreFreqReq = c.demoted
		}
	} else {
		c.demoted = 0
	}
	if c.Redistribute {
		c.credit.observe(atLow, ctx.IOMemPower)
		// Bank whatever compute budget the demoted cores left unused
		// last interval (running-average power limiting lets later
		// intervals spend it).
		unused := float64(ctx.ComputeBudget - ctx.ComputePower)
		if dec.CoreFreqReq > 0 && unused > 0 {
			c.coreCredit += creditAlpha * (unused - c.coreCredit)
		} else {
			c.coreCredit *= 1 - creditAlpha
		}
		dec.ComputeBonus = c.credit.bonus(goLow) + power.Watt(c.coreCredit)
	}
	return dec
}
