// Package policy implements the power-management governors evaluated in
// the paper: the fixed worst-case baseline, the static multi-domain
// DVFS setup of the §3 motivation experiments, SysScale itself, and the
// two prior-work comparators MemScale [16] and CoScale [14] with their
// -Redist variants (§6).
//
// All governors implement soc.Policy and observe the platform only
// through the PolicyContext — counters, CSRs and the budget table —
// never through oracle workload knowledge.
package policy

import (
	"sysscale/internal/dram"
	"sysscale/internal/memctrl"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// Baseline is the evaluation baseline: SysScale disabled. The IO and
// memory domains stay at the highest operating point with worst-case
// reservations forever (Observations 1-2).
type Baseline struct{}

// NewBaseline returns the baseline governor.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements soc.Policy.
func (*Baseline) Name() string { return "baseline" }

// Reset implements soc.Policy.
func (*Baseline) Reset() {}

// Clone implements soc.Policy.
func (*Baseline) Clone() soc.Policy { return &Baseline{} }

// Decide implements soc.Policy: always the top point, always worst-case
// reservations.
func (*Baseline) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	top := ctx.Ladder[0]
	return soc.PolicyDecision{
		Target:       top,
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(top),
		MemBudget:    ctx.WorstMem(top),
	}
}

// StaticPoint pins the IO and memory domains at a fixed ladder point —
// the crude static emulation of SysScale used for the motivation
// experiments on Broadwell (§3, §6 "Methodology for Collecting
// Motivational Data") and the Fig. 4 MRC study.
type StaticPoint struct {
	// PointIndex selects the ladder entry to pin.
	PointIndex int
	// OptimizedMRC controls whether per-frequency register images are
	// used; false reproduces the unoptimized-MRC runs of Fig. 4.
	OptimizedMRC bool
	// Redistribute resizes the domain reservations to the pinned point
	// (giving compute the freed budget). The §3 experiments first
	// measure without redistribution (power savings only), then with
	// the saved budget moved to the cores (the 1.3GHz runs).
	Redistribute bool
}

// NewStaticPoint pins the ladder point at index with optimized MRC.
func NewStaticPoint(index int, redistribute bool) *StaticPoint {
	return &StaticPoint{PointIndex: index, OptimizedMRC: true, Redistribute: redistribute}
}

// Name implements soc.Policy.
func (s *StaticPoint) Name() string {
	n := "static-point"
	if !s.OptimizedMRC {
		n += "-unopt-mrc"
	}
	if s.Redistribute {
		n += "-redist"
	}
	return n
}

// Reset implements soc.Policy.
func (*StaticPoint) Reset() {}

// Clone implements soc.Policy.
func (s *StaticPoint) Clone() soc.Policy {
	c := *s
	return &c
}

// Decide implements soc.Policy.
func (s *StaticPoint) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	idx := s.PointIndex
	if idx < 0 || idx >= len(ctx.Ladder) {
		idx = 0
	}
	target := ctx.Ladder[idx]
	budgetPoint := ctx.Ladder[0]
	if s.Redistribute {
		budgetPoint = target
	}
	return soc.PolicyDecision{
		Target:       target,
		OptimizedMRC: s.OptimizedMRC,
		IOBudget:     ctx.WorstIO(budgetPoint),
		MemBudget:    ctx.WorstMem(budgetPoint),
	}
}

// defaultStaticBWThr derives STATIC_BW_THR from the ladder: the static
// (configuration-determined) demand the low point can absorb while
// leaving headroom for dynamic traffic. Beyond ~45% of the low point's
// usable bandwidth, isochronous static streams alone make the low
// point unsafe.
func defaultStaticBWThr(ladder []vf.OperatingPoint) float64 {
	low := ladder[len(ladder)-1]
	return 0.45 * peakUsable(low)
}

// peakUsable returns the usable memory bandwidth at an operating point
// on the default platform (peak × scheduler efficiency).
func peakUsable(op vf.OperatingPoint) float64 {
	return dram.DefaultGeometry().PeakBandwidth(op.DDR) * memctrl.DefaultParams().SchedulingEff
}
