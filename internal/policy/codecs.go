package policy

import (
	"reflect"

	"sysscale/internal/core"
	"sysscale/internal/jsonenc"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
)

// This file registers the codec for every governor family the
// experiments use. Parameter structs mirror each family's exported
// tuning knobs with snake_case JSON names; fields are declared in the
// key order of the canonical encoding (alphabetical), and each
// AppendParams emits exactly the bytes of the sorted, compacted
// json.Marshal of the Encode value — codecs_test.go proves the
// equivalence.

// BaselineParams is empty: the baseline has no tuning knobs.
type BaselineParams struct{}

// SysScaleThresholds carries the §4.2 decision thresholds.
type SysScaleThresholds struct {
	DegradBound float64 `json:"degrad_bound"`
	GfxMisses   float64 `json:"gfx_misses"`
	IORPQ       float64 `json:"io_rpq"`
	LLCStalls   float64 `json:"llc_stalls"`
	OccTracer   float64 `json:"occ_tracer"`
	StaticBWThr float64 `json:"static_bw_thr"`
}

// SysScaleParams parameterizes the SysScale governor.
type SysScaleParams struct {
	HighScale  float64            `json:"high_scale"`
	Thresholds SysScaleThresholds `json:"thresholds"`
}

// MemScaleParams parameterizes the MemScale comparator; Redistribute
// selects the §6 -Redist variant.
type MemScaleParams struct {
	Redistribute bool    `json:"redistribute"`
	StallThr     float64 `json:"stall_thr"`
	UtilTarget   float64 `json:"util_target"`
}

// CoScaleParams parameterizes the CoScale comparator; Redistribute
// selects the §6 -Redist variant.
type CoScaleParams struct {
	DemoteRatio  float64 `json:"demote_ratio"`
	FloorHz      float64 `json:"floor_hz"`
	MemBoundThr  float64 `json:"mem_bound_thr"`
	Redistribute bool    `json:"redistribute"`
	StallThr     float64 `json:"stall_thr"`
	UtilTarget   float64 `json:"util_target"`
}

// StaticPointParams parameterizes the pinned-point policy of the §3
// motivation experiments.
type StaticPointParams struct {
	OptimizedMRC bool `json:"optimized_mrc"`
	PointIndex   int  `json:"point_index"`
	Redistribute bool `json:"redistribute"`
}

func init() {
	mustRegister("baseline", Codec{
		Type: reflect.TypeOf(&Baseline{}),
		Decode: func(params []byte) (soc.Policy, error) {
			var p BaselineParams
			if err := strictUnmarshal(params, &p); err != nil {
				return nil, err
			}
			return NewBaseline(), nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			if _, ok := p.(*Baseline); !ok {
				return nil, false
			}
			return BaselineParams{}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			if _, ok := p.(*Baseline); !ok {
				return b, false
			}
			return append(b, '{', '}'), true
		},
	})

	mustRegister("sysscale", Codec{
		Type: reflect.TypeOf(&SysScale{}),
		Decode: func(params []byte) (soc.Policy, error) {
			s := NewSysScaleDefault()
			p := sysScaleParamsOf(s)
			if err := strictUnmarshal(params, &p); err != nil {
				return nil, err
			}
			s.HighScale = p.HighScale
			s.Thr = core.Thresholds{
				GfxMisses:   p.Thresholds.GfxMisses,
				OccTracer:   p.Thresholds.OccTracer,
				LLCStalls:   p.Thresholds.LLCStalls,
				IORPQ:       p.Thresholds.IORPQ,
				StaticBWThr: p.Thresholds.StaticBWThr,
				DegradBound: p.Thresholds.DegradBound,
			}
			return s, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			s, ok := p.(*SysScale)
			if !ok {
				return nil, false
			}
			return sysScaleParamsOf(s), true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			s, ok := p.(*SysScale)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `{"high_scale":`, s.HighScale)
			if !ok {
				return b, false
			}
			b = append(b, `,"thresholds":`...)
			b, ok = appendFloatField(b, `{"degrad_bound":`, s.Thr.DegradBound)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"gfx_misses":`, s.Thr.GfxMisses)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"io_rpq":`, s.Thr.IORPQ)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"llc_stalls":`, s.Thr.LLCStalls)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"occ_tracer":`, s.Thr.OccTracer)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"static_bw_thr":`, s.Thr.StaticBWThr)
			if !ok {
				return b, false
			}
			return append(b, '}', '}'), true
		},
	})

	mustRegister("memscale", Codec{
		Type: reflect.TypeOf(&MemScale{}),
		Decode: func(params []byte) (soc.Policy, error) {
			m := NewMemScale()
			p := MemScaleParams{
				Redistribute: m.Redistribute,
				StallThr:     m.StallThr,
				UtilTarget:   m.UtilTarget,
			}
			if err := strictUnmarshal(params, &p); err != nil {
				return nil, err
			}
			m.Redistribute = p.Redistribute
			m.StallThr = p.StallThr
			m.UtilTarget = p.UtilTarget
			return m, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			m, ok := p.(*MemScale)
			if !ok {
				return nil, false
			}
			return MemScaleParams{
				Redistribute: m.Redistribute,
				StallThr:     m.StallThr,
				UtilTarget:   m.UtilTarget,
			}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			m, ok := p.(*MemScale)
			if !ok {
				return b, false
			}
			b = append(b, `{"redistribute":`...)
			b = jsonenc.AppendBool(b, m.Redistribute)
			b, ok = appendFloatField(b, `,"stall_thr":`, m.StallThr)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"util_target":`, m.UtilTarget)
			if !ok {
				return b, false
			}
			return append(b, '}'), true
		},
	})

	mustRegister("coscale", Codec{
		Type: reflect.TypeOf(&CoScale{}),
		Decode: func(params []byte) (soc.Policy, error) {
			c := NewCoScale()
			p := coScaleParamsOf(c)
			if err := strictUnmarshal(params, &p); err != nil {
				return nil, err
			}
			c.DemoteRatio = p.DemoteRatio
			c.FloorFreq = vf.Hz(p.FloorHz)
			c.MemBoundThr = p.MemBoundThr
			c.Redistribute = p.Redistribute
			c.StallThr = p.StallThr
			c.UtilTarget = p.UtilTarget
			return c, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			c, ok := p.(*CoScale)
			if !ok {
				return nil, false
			}
			return coScaleParamsOf(c), true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			c, ok := p.(*CoScale)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `{"demote_ratio":`, c.DemoteRatio)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"floor_hz":`, float64(c.FloorFreq))
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"mem_bound_thr":`, c.MemBoundThr)
			if !ok {
				return b, false
			}
			b = append(b, `,"redistribute":`...)
			b = jsonenc.AppendBool(b, c.Redistribute)
			b, ok = appendFloatField(b, `,"stall_thr":`, c.StallThr)
			if !ok {
				return b, false
			}
			b, ok = appendFloatField(b, `,"util_target":`, c.UtilTarget)
			if !ok {
				return b, false
			}
			return append(b, '}'), true
		},
	})

	mustRegister("static-point", Codec{
		Type: reflect.TypeOf(&StaticPoint{}),
		Decode: func(params []byte) (soc.Policy, error) {
			s := NewStaticPoint(0, false)
			p := StaticPointParams{
				OptimizedMRC: s.OptimizedMRC,
				PointIndex:   s.PointIndex,
				Redistribute: s.Redistribute,
			}
			if err := strictUnmarshal(params, &p); err != nil {
				return nil, err
			}
			s.OptimizedMRC = p.OptimizedMRC
			s.PointIndex = p.PointIndex
			s.Redistribute = p.Redistribute
			return s, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			s, ok := p.(*StaticPoint)
			if !ok {
				return nil, false
			}
			return StaticPointParams{
				OptimizedMRC: s.OptimizedMRC,
				PointIndex:   s.PointIndex,
				Redistribute: s.Redistribute,
			}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			s, ok := p.(*StaticPoint)
			if !ok {
				return b, false
			}
			b = append(b, `{"optimized_mrc":`...)
			b = jsonenc.AppendBool(b, s.OptimizedMRC)
			b = append(b, `,"point_index":`...)
			b = jsonenc.AppendInt(b, int64(s.PointIndex))
			b = append(b, `,"redistribute":`...)
			b = jsonenc.AppendBool(b, s.Redistribute)
			return append(b, '}'), true
		},
	})

	mustRegisterWrapper("no-mrc", Wrapper{
		Type: reflect.TypeOf(&mrcOff{}),
		Wrap: WithoutOptimizedMRC,
	})
	mustRegisterWrapper("no-redist", Wrapper{
		Type: reflect.TypeOf(&noRedist{}),
		Wrap: WithoutRedistribution,
	})
}

func sysScaleParamsOf(s *SysScale) SysScaleParams {
	return SysScaleParams{
		HighScale: s.HighScale,
		Thresholds: SysScaleThresholds{
			DegradBound: s.Thr.DegradBound,
			GfxMisses:   s.Thr.GfxMisses,
			IORPQ:       s.Thr.IORPQ,
			LLCStalls:   s.Thr.LLCStalls,
			OccTracer:   s.Thr.OccTracer,
			StaticBWThr: s.Thr.StaticBWThr,
		},
	}
}

func coScaleParamsOf(c *CoScale) CoScaleParams {
	return CoScaleParams{
		DemoteRatio:  c.DemoteRatio,
		FloorHz:      float64(c.FloorFreq),
		MemBoundThr:  c.MemBoundThr,
		Redistribute: c.Redistribute,
		StallThr:     c.StallThr,
		UtilTarget:   c.UtilTarget,
	}
}

// appendFloatField appends a literal prefix (the key) followed by the
// canonical rendering of f; ok is false when f has no JSON rendering.
func appendFloatField(b []byte, prefix string, f float64) ([]byte, bool) {
	b = append(b, prefix...)
	return jsonenc.AppendFloat(b, f)
}
