package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"sysscale/internal/soc"
)

// The registry maps stable, documented policy names to codecs that can
// build a governor from spec parameters and serialize a live governor
// back to them. It is what lets the job-spec layer (internal/spec)
// round-trip soc.Config.Policy through JSON, and what the engine's
// spec-derived cache key hashes instead of walking policy structs with
// reflection: an unregistered policy simply has no canonical bytes and
// its jobs are uncacheable.
//
// Names are a distinct namespace from Policy.Name(): Name() describes a
// configured instance ("memscale-redist"), while the registry names a
// family ("memscale") whose variants are parameters. Register rejects
// duplicate names outright — with spec-derived cache keys, two policies
// sharing a name would silently alias each other's cached results, the
// exact failure mode the PR 2 fingerprint work removed.

// Codec serializes one policy family.
type Codec struct {
	// Type is the concrete (pointer) type the codec handles; Encode and
	// AppendParams are dispatched on it.
	Type reflect.Type

	// Decode builds a policy from the spec's params JSON. Empty or nil
	// params mean "all defaults"; present fields overlay the family's
	// constructor defaults; unknown fields are an error.
	Decode func(params []byte) (soc.Policy, error)

	// Encode returns the fully-populated typed params value for p. ok is
	// false when p is not this codec's type.
	Encode func(p soc.Policy) (params any, ok bool)

	// AppendParams appends the canonical JSON of Encode(p) — keys
	// sorted, no whitespace — without allocating. ok is false when p is
	// not this codec's type or a parameter has no JSON rendering (NaN or
	// infinite float), which makes the config uncacheable.
	AppendParams func(b []byte, p soc.Policy) (_ []byte, ok bool)
}

// Wrapper describes an ablation decorator that can appear in a spec's
// policy "wrap" list.
type Wrapper struct {
	// Type is the concrete (pointer) type of the decorator.
	Type reflect.Type
	// Wrap applies the decorator to a policy.
	Wrap func(soc.Policy) soc.Policy
}

var registry = struct {
	mu         sync.RWMutex
	codecs     map[string]Codec
	byType     map[reflect.Type]string
	wrappers   map[string]Wrapper
	wrapByType map[reflect.Type]string
}{
	codecs:     map[string]Codec{},
	byType:     map[reflect.Type]string{},
	wrappers:   map[string]Wrapper{},
	wrapByType: map[reflect.Type]string{},
}

// Register adds a policy family codec under name. It returns an error
// if the name or the concrete type is already registered, so distinct
// families can never alias each other's spec-derived cache keys.
func Register(name string, c Codec) error {
	if name == "" {
		return fmt.Errorf("policy: register with empty name")
	}
	if c.Type == nil || c.Decode == nil || c.Encode == nil || c.AppendParams == nil {
		return fmt.Errorf("policy: register %q with incomplete codec", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.codecs[name]; dup {
		return fmt.Errorf("policy: duplicate registration of %q", name)
	}
	if prev, dup := registry.byType[c.Type]; dup {
		return fmt.Errorf("policy: type %v already registered as %q", c.Type, prev)
	}
	registry.codecs[name] = c
	registry.byType[c.Type] = name
	return nil
}

// RegisterWrapper adds an ablation decorator under name, with the same
// duplicate rejection as Register.
func RegisterWrapper(name string, w Wrapper) error {
	if name == "" {
		return fmt.Errorf("policy: register wrapper with empty name")
	}
	if w.Type == nil || w.Wrap == nil {
		return fmt.Errorf("policy: register wrapper %q with incomplete descriptor", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.wrappers[name]; dup {
		return fmt.Errorf("policy: duplicate registration of wrapper %q", name)
	}
	if prev, dup := registry.wrapByType[w.Type]; dup {
		return fmt.Errorf("policy: wrapper type %v already registered as %q", w.Type, prev)
	}
	registry.wrappers[name] = w
	registry.wrapByType[w.Type] = name
	return nil
}

func mustRegister(name string, c Codec) {
	if err := Register(name, c); err != nil {
		panic(err)
	}
}

func mustRegisterWrapper(name string, w Wrapper) {
	if err := RegisterWrapper(name, w); err != nil {
		panic(err)
	}
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	c, ok := registry.codecs[name]
	return c, ok
}

// LookupWrapper returns the wrapper registered under name.
func LookupWrapper(name string) (Wrapper, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	w, ok := registry.wrappers[name]
	return w, ok
}

// CodecFor returns the registered name and codec for a live policy
// value, dispatching on its concrete type.
func CodecFor(p soc.Policy) (string, Codec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	name, ok := registry.byType[reflect.TypeOf(p)]
	if !ok {
		return "", Codec{}, false
	}
	return name, registry.codecs[name], true
}

// WrapperNameFor returns the registered name for a live decorator.
func WrapperNameFor(p soc.Policy) (string, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	name, ok := registry.wrapByType[reflect.TypeOf(p)]
	return name, ok
}

// Names returns the registered family names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.codecs))
	for n := range registry.codecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs a policy from a registered family name, its params
// JSON, and an outermost-first wrapper name list — the decode half of
// the spec layer's policy section.
func Build(name string, params []byte, wrap []string) (soc.Policy, error) {
	c, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Names())
	}
	p, err := c.Decode(params)
	if err != nil {
		return nil, fmt.Errorf("policy: %s params: %w", name, err)
	}
	// wrap is outermost-first, so apply innermost (last) first.
	for i := len(wrap) - 1; i >= 0; i-- {
		w, ok := LookupWrapper(wrap[i])
		if !ok {
			return nil, fmt.Errorf("policy: unknown wrapper %q", wrap[i])
		}
		p = w.Wrap(p)
	}
	return p, nil
}

// Deconstruct decomposes a live policy into its registered family name,
// typed params, and outermost-first wrapper names — the encode half of
// the spec layer's policy section. ok is false when the base policy (or
// any decorator on the way down) is not registered.
func Deconstruct(p soc.Policy) (name string, params any, wrap []string, ok bool) {
	for {
		wname, isWrap := WrapperNameFor(p)
		if !isWrap {
			break
		}
		u, hasUnwrap := p.(interface{ Unwrap() soc.Policy })
		if !hasUnwrap {
			return "", nil, nil, false
		}
		wrap = append(wrap, wname)
		p = u.Unwrap()
	}
	name, c, found := CodecFor(p)
	if !found {
		return "", nil, nil, false
	}
	params, ok = c.Encode(p)
	if !ok {
		return "", nil, nil, false
	}
	return name, params, wrap, true
}

// strictUnmarshal decodes params JSON into v, rejecting unknown fields
// and trailing data. Empty input and JSON null both mean "no overlay".
func strictUnmarshal(params []byte, v any) error {
	if len(params) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after params object")
	}
	return nil
}
