// Package cliutil carries the small pieces shared by this module's
// command-line binaries: interrupt-driven context wiring and the
// conventional exit status for it.
package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupt is the conventional exit status (128+SIGINT) a binary
// reports when an interrupt cancelled its work.
const ExitInterrupt = 130

// InterruptContext derives a context from parent that is cancelled on
// SIGINT or SIGTERM. The first signal cancels the context — in-flight
// engine work unwinds within one policy epoch — and immediately
// unregisters the handler, so a second signal kills the process the
// usual way even if the run fails to unwind. The returned stop releases
// the signal registration; call it when the context is no longer
// needed.
func InterruptContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}
