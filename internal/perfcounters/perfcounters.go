// Package perfcounters implements the performance-counter file the PMU
// firmware samples, including the four counters SysScale adds (§4.2):
//
//	GFX_LLC_MISSES       — LLC misses from the graphics engines
//	                       (graphics bandwidth-boundedness indicator)
//	LLC_Occupancy_Tracer — CPU requests waiting on the memory controller
//	                       (CPU bandwidth-boundedness indicator)
//	LLC_STALLS           — stalls on a busy LLC
//	                       (memory-latency-boundedness indicator)
//	IO_RPQ               — IO read-pending-queue occupancy
//	                       (IO-boundedness indicator)
//
// Counters accumulate event counts; the PMU samples them every 1ms and
// averages samples over the 30ms evaluation interval (§4.3).
package perfcounters

import "fmt"

// ID names one hardware counter.
type ID int

// The counter file. The first four are SysScale's additions; the rest
// are pre-existing counters the models keep for telemetry.
const (
	GfxLLCMisses ID = iota
	LLCOccupancyTracer
	LLCStalls
	IORPQ
	CoreCycles
	MemReadBytes
	MemWriteBytes
	numCounters
)

// NumCounters is the size of the counter file.
const NumCounters = int(numCounters)

var idNames = [...]string{
	"GFX_LLC_MISSES",
	"LLC_Occupancy_Tracer",
	"LLC_STALLS",
	"IO_RPQ",
	"CORE_CYCLES",
	"MEM_READ_BYTES",
	"MEM_WRITE_BYTES",
}

func (id ID) String() string {
	if id < 0 || int(id) >= len(idNames) {
		return fmt.Sprintf("ID(%d)", int(id))
	}
	return idNames[id]
}

// SysScaleCounters returns the four counters the prediction algorithm
// uses, in the order the paper lists them.
func SysScaleCounters() []ID {
	return []ID{GfxLLCMisses, LLCOccupancyTracer, LLCStalls, IORPQ}
}

// Sample is one 1ms snapshot of the counter file.
type Sample [NumCounters]float64

// Get returns one counter's value.
func (s Sample) Get(id ID) float64 { return s[id] }

// File is the live counter file written by the models each tick.
type File struct {
	current Sample
	// window accumulates samples for the PMU's evaluation interval.
	windowSum   Sample
	windowCount int
}

// New returns an empty counter file.
func New() *File { return &File{} }

// Set writes one counter for the current tick.
func (f *File) Set(id ID, v float64) { f.current[id] = v }

// Current returns the live sample.
func (f *File) Current() Sample { return f.current }

// Restore overwrites the live sample wholesale, leaving the evaluation
// window untouched. The span-batched simulation core uses it to replay
// a cached span's counter-file image: the image covers every counter,
// so Restore is equivalent to the per-counter Set calls that produced
// it.
func (f *File) Restore(s Sample) { f.current = s }

// Latch pushes the current sample into the evaluation window; the PMU
// calls this at its 1ms sampling cadence. It is LatchN with n = 1 —
// delegating keeps the single-tick and batch paths identical by
// construction (x*1.0 == x in IEEE arithmetic), which the simulator's
// span-off bit-identity contract depends on.
func (f *File) Latch() { f.LatchN(1) }

// LatchN pushes the current sample into the evaluation window n times
// in one step. The span-batched simulation core uses it when the
// counter file is provably constant over a run of n ticks: the window
// sum integrates current×n by multiplication instead of n repeated
// additions.
func (f *File) LatchN(n int) {
	if n <= 0 {
		return
	}
	fn := float64(n)
	for i := range f.current {
		f.windowSum[i] += f.current[i] * fn
	}
	f.windowCount += n
}

// Reset clears the whole counter file — the live sample and the
// evaluation window — returning it to the state New() provides.
// Platform pooling uses it to recycle a counter file across runs.
func (f *File) Reset() { *f = File{} }

// WindowAverage returns the mean of latched samples and the number of
// samples averaged. The PMU consumes this once per evaluation interval.
func (f *File) WindowAverage() (Sample, int) {
	var avg Sample
	n := f.windowCount
	if n == 0 {
		return avg, 0
	}
	for i := range f.windowSum {
		avg[i] = f.windowSum[i] / float64(n)
	}
	return avg, n
}

// ResetWindow clears the evaluation window (start of a new interval).
func (f *File) ResetWindow() {
	f.windowSum = Sample{}
	f.windowCount = 0
}
