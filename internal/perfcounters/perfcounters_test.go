package perfcounters

import "testing"

func TestSysScaleCounters(t *testing.T) {
	ids := SysScaleCounters()
	if len(ids) != 4 {
		t.Fatalf("paper defines 4 new counters, got %d", len(ids))
	}
	want := []string{"GFX_LLC_MISSES", "LLC_Occupancy_Tracer", "LLC_STALLS", "IO_RPQ"}
	for i, id := range ids {
		if id.String() != want[i] {
			t.Errorf("counter %d = %s, want %s", i, id, want[i])
		}
	}
}

func TestSetAndCurrent(t *testing.T) {
	f := New()
	f.Set(LLCStalls, 12.5)
	if f.Current().Get(LLCStalls) != 12.5 {
		t.Fatal("set/get broken")
	}
}

func TestWindowAveraging(t *testing.T) {
	f := New()
	// Three 1ms samples: 10, 20, 30 -> average 20 (§4.3: "PMU samples
	// the performance counters multiple times in an evaluation interval
	// and uses the average value").
	for _, v := range []float64{10, 20, 30} {
		f.Set(IORPQ, v)
		f.Latch()
	}
	avg, n := f.WindowAverage()
	if n != 3 {
		t.Fatalf("sample count = %d", n)
	}
	if avg.Get(IORPQ) != 20 {
		t.Fatalf("window average = %v", avg.Get(IORPQ))
	}
}

func TestResetWindow(t *testing.T) {
	f := New()
	f.Set(GfxLLCMisses, 5)
	f.Latch()
	f.ResetWindow()
	if _, n := f.WindowAverage(); n != 0 {
		t.Fatal("reset did not clear the window")
	}
	// Current sample persists across window resets (free-running
	// counters).
	if f.Current().Get(GfxLLCMisses) != 5 {
		t.Fatal("current value lost on window reset")
	}
}

func TestEmptyWindow(t *testing.T) {
	f := New()
	avg, n := f.WindowAverage()
	if n != 0 || avg != (Sample{}) {
		t.Fatal("empty window not zero")
	}
}

func TestIDStringBounds(t *testing.T) {
	if ID(-1).String() == "" || ID(999).String() == "" {
		t.Fatal("out-of-range ID string empty")
	}
}
