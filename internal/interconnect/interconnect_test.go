package interconnect

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

func newFabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := New(DefaultParams(), 0.8*vf.GHz, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConstruction(t *testing.T) {
	if _, err := New(DefaultParams(), 0, 0.95); err == nil {
		t.Fatal("zero clock accepted")
	}
	bad := DefaultParams()
	bad.BytesPerCycle = 0
	if _, err := New(bad, 0.8*vf.GHz, 0.95); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestCapacity(t *testing.T) {
	f := newFabric(t)
	// 32B/clk at 0.8GHz = 25.6GB/s.
	if got := f.Capacity(); math.Abs(got-25.6e9) > 1 {
		t.Fatalf("capacity = %v", got)
	}
	if err := f.SetOperatingPoint(0.4*vf.GHz, 0.76); err != nil {
		t.Fatal(err)
	}
	if got := f.Capacity(); math.Abs(got-12.8e9) > 1 {
		t.Fatalf("capacity at low = %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	f := newFabric(t)
	ep := f.Evaluate(5e9)
	if ep.AchievedBytes != 5e9 {
		t.Fatal("under-capacity traffic dropped")
	}
	over := f.Evaluate(100e9)
	if math.Abs(over.AchievedBytes-f.Capacity()) > 1 {
		t.Fatal("over-capacity not clamped")
	}
	if f.Evaluate(-1).AchievedBytes != 0 {
		t.Fatal("negative demand served")
	}
	if f.LastEpoch().DemandBytes != 0 {
		t.Fatal("LastEpoch not updated")
	}
}

func TestLatencyMonotone(t *testing.T) {
	f := newFabric(t)
	err := quick.Check(func(a, b uint16) bool {
		d1, d2 := float64(a)*3e5, float64(b)*3e5
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return f.Evaluate(d1).Latency <= f.Evaluate(d2).Latency+1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockAndDrain(t *testing.T) {
	f := newFabric(t)
	f.Evaluate(20e9) // load the buffers
	d := f.BlockAndDrain()
	if d <= 0 || d > DefaultParams().DrainLatencyMax {
		t.Fatalf("drain latency = %v (max %v)", d, DefaultParams().DrainLatencyMax)
	}
	if !f.Blocked() {
		t.Fatal("not blocked after drain")
	}
	ep := f.Evaluate(1e9)
	if ep.AchievedBytes != 0 || !math.IsInf(ep.Latency, 1) {
		t.Fatal("blocked fabric served traffic")
	}
	f.Release()
	if f.Blocked() {
		t.Fatal("release failed")
	}
	// Idle drain is cheaper than loaded drain but not free.
	f2 := newFabric(t)
	f2.Evaluate(0)
	idleDrain := f2.BlockAndDrain()
	if idleDrain <= 0 || idleDrain >= d {
		t.Fatalf("idle drain %v not below loaded drain %v", idleDrain, d)
	}
}

func TestDrainUnderBudget(t *testing.T) {
	// §5: draining IO interconnect request buffers takes under 1us.
	f := newFabric(t)
	f.Evaluate(f.Capacity()) // fully loaded
	if d := f.BlockAndDrain(); d >= sim.Microsecond {
		t.Fatalf("worst-case drain %v exceeds 1us budget", d)
	}
}

func TestPower(t *testing.T) {
	f := newFabric(t)
	idle := f.Power(0)
	busy := f.Power(1)
	if busy <= idle {
		t.Fatal("power not monotone in utilization")
	}
	if err := f.SetOperatingPoint(0.4*vf.GHz, 0.76); err != nil {
		t.Fatal(err)
	}
	if low := f.Power(1); low >= busy {
		t.Fatal("lower operating point did not reduce power")
	}
}

func TestRPQOccupancy(t *testing.T) {
	f := newFabric(t)
	ep := f.Evaluate(6.4e9)
	want := ep.AchievedBytes / 64 * ep.Latency
	if math.Abs(ep.RPQOccupancy-want) > 1e-6 {
		t.Fatalf("occupancy = %v, want %v", ep.RPQOccupancy, want)
	}
}

func TestQoSStrings(t *testing.T) {
	if BestEffort.String() != "best-effort" || Isochronous.String() != "isochronous" || Bandwidth.String() != "bandwidth" {
		t.Fatal("QoS strings wrong")
	}
}
