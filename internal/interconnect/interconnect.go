// Package interconnect models the IO interconnect: the fabric linking
// the IO engines/controllers to the memory subsystem (Fig. 1). It runs
// on its own clock but shares the V_SA rail with the memory controller,
// which is why the paper aligns its clock with the MC's voltage level
// when scaling (§3), and it implements the block-and-drain protocol the
// DVFS transition flow depends on (§5, capability 1).
package interconnect

import (
	"fmt"
	"math"

	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// QoSClass labels traffic by its service requirement (§1: some IO
// components have strict latency QoS — isochronous traffic — and some
// have bandwidth QoS, like the display).
type QoSClass int

// Traffic classes.
const (
	BestEffort  QoSClass = iota
	Isochronous          // latency-critical (audio, camera sensor strobes)
	Bandwidth            // bandwidth-guaranteed (display refresh)
)

func (q QoSClass) String() string {
	switch q {
	case BestEffort:
		return "best-effort"
	case Isochronous:
		return "isochronous"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("QoSClass(%d)", int(q))
	}
}

// Params configure the fabric model.
type Params struct {
	// BytesPerCycle is the fabric's width: bytes moved per clock.
	BytesPerCycle float64
	// BufferEntries is the request-buffer depth (drained on block).
	BufferEntries int
	// DrainLatencyMax bounds the drain time (§5: "less than 1us").
	DrainLatencyMax sim.Time

	// Power coefficients (fabric shares V_SA).
	Cdyn      float64
	LeakAtNom float64
	NomVolt   vf.Volt
}

// DefaultParams returns the evaluated platform's fabric.
func DefaultParams() Params {
	return Params{
		BytesPerCycle:   32, // 32B/clk at 0.8GHz -> 25.6GB/s fabric ceiling
		BufferEntries:   48,
		DrainLatencyMax: 900 * sim.Nanosecond,
		Cdyn:            0.22e-9,
		LeakAtNom:       0.040,
		NomVolt:         vf.NominalVSA,
	}
}

// Epoch is the fabric's resolved state for one epoch.
type Epoch struct {
	DemandBytes   float64 // bytes/s offered by IO agents
	AchievedBytes float64
	Utilization   float64
	Latency       float64 // average fabric traversal latency (s)
	RPQOccupancy  float64 // IO read-pending-queue occupancy (the IO_RPQ counter)
}

// Fabric is the IO interconnect instance.
type Fabric struct {
	params  Params
	freq    vf.Hz
	volt    vf.Volt
	blocked bool
	last    Epoch
}

// New constructs a fabric at the given clock and voltage.
func New(params Params, freq vf.Hz, volt vf.Volt) (*Fabric, error) {
	if params.BytesPerCycle <= 0 || params.BufferEntries <= 0 {
		return nil, fmt.Errorf("interconnect: non-positive fabric parameter")
	}
	if freq <= 0 || volt <= 0 {
		return nil, fmt.Errorf("interconnect: non-positive clock or voltage")
	}
	return &Fabric{params: params, freq: freq, volt: volt}, nil
}

// Frequency returns the fabric clock.
func (f *Fabric) Frequency() vf.Hz { return f.freq }

// Voltage returns the fabric rail voltage (V_SA).
func (f *Fabric) Voltage() vf.Volt { return f.volt }

// SetOperatingPoint retargets clock and voltage.
func (f *Fabric) SetOperatingPoint(clock vf.Hz, v vf.Volt) error {
	if clock <= 0 || v <= 0 {
		return fmt.Errorf("interconnect: non-positive operating point")
	}
	f.freq = clock
	f.volt = v
	return nil
}

// Capacity returns the fabric bandwidth ceiling at the current clock.
func (f *Fabric) Capacity() float64 { return f.params.BytesPerCycle * float64(f.freq) }

// BlockAndDrain stops admission of new requests and completes all
// outstanding ones (step 3 of the Fig. 5 flow). The returned drain
// latency scales with how full the buffers were (last epoch's
// utilization) and is bounded by the parameterized maximum.
func (f *Fabric) BlockAndDrain() sim.Time {
	f.blocked = true
	frac := f.last.Utilization
	if frac < 0.1 {
		frac = 0.1 // draining an idle fabric still costs a handshake
	}
	if frac > 1 {
		frac = 1
	}
	return sim.Time(float64(f.params.DrainLatencyMax) * frac)
}

// Release resumes request admission (step 9 of the Fig. 5 flow).
func (f *Fabric) Release() { f.blocked = false }

// Blocked reports whether the fabric is blocked.
func (f *Fabric) Blocked() bool { return f.blocked }

// Evaluate resolves one epoch of IO traffic.
func (f *Fabric) Evaluate(demandBytes float64) Epoch {
	if demandBytes < 0 {
		demandBytes = 0
	}
	ep := Epoch{DemandBytes: demandBytes}
	if f.blocked {
		ep.Latency = math.Inf(1)
		f.last = ep
		return ep
	}
	cap := f.Capacity()
	ep.AchievedBytes = math.Min(demandBytes, cap)
	if cap > 0 {
		ep.Utilization = ep.AchievedBytes / cap
	}
	// Traversal latency: a few fabric clocks, inflated by contention.
	base := 12 / float64(f.freq)
	rho := ep.Utilization
	const rhoCap = 0.95
	if rho > rhoCap {
		rho = rhoCap
	}
	ep.Latency = base * (1 + rho/(1-rho))
	// IO_RPQ occupancy by Little's law over 64B granules.
	reqRate := ep.AchievedBytes / 64
	occ := reqRate * ep.Latency
	if occ > float64(f.params.BufferEntries) {
		occ = float64(f.params.BufferEntries)
	}
	ep.RPQOccupancy = occ
	f.last = ep
	return ep
}

// LastEpoch returns the most recently evaluated epoch.
func (f *Fabric) LastEpoch() Epoch { return f.last }

// RestoreEpoch reinstates ep as the rolling last-evaluated state, as
// if Evaluate had just resolved it. The simulator's steady-state tick
// memo serves repeated ticks without re-running Evaluate; the rolling
// epoch feeds the drain latency of the next DVFS transition
// (BlockAndDrain), so a memoized tick must leave it exactly as a
// per-tick evaluation would.
func (f *Fabric) RestoreEpoch(ep Epoch) { f.last = ep }

// Power returns the fabric draw at the epoch's utilization.
func (f *Fabric) Power(utilization float64) power.Watt {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	activity := 0.12 + 0.88*utilization
	dyn := power.Dynamic(f.params.Cdyn, f.volt, f.freq, activity)
	leak := power.Leakage(f.params.LeakAtNom, f.volt, f.params.NomVolt)
	return dyn + leak
}
