// Package power provides the power and energy accounting used across
// the simulator: CV²f dynamic-power helpers, leakage, per-rail energy
// meters, TDP budget bookkeeping, and efficiency metrics (EDP).
//
// The component power models themselves live with their components
// (DRAM power in internal/dram, controller power in internal/memctrl,
// and so on); this package supplies the shared arithmetic and the
// measurement plumbing that stands in for the paper's NI-DAQ rig (§6).
package power

import (
	"fmt"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Watt is a power in watts.
type Watt float64

// Joule is an energy in joules.
type Joule float64

// Dynamic returns switching power Cdyn·V²·f·activity, with Cdyn the
// effective switched capacitance in farads, V in volts, f in hertz and
// activity in [0,1].
func Dynamic(cdyn float64, v vf.Volt, f vf.Hz, activity float64) Watt {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	return Watt(cdyn * float64(v) * float64(v) * float64(f) * activity)
}

// Leakage returns a first-order leakage estimate: Ileak·V scaled
// super-linearly with voltage (leakage grows faster than linear in V;
// an exponent of 2 is a common architectural approximation).
func Leakage(ileakAtNominal float64, v, vNominal vf.Volt) Watt {
	if vNominal <= 0 {
		return 0
	}
	ratio := float64(v / vNominal)
	return Watt(ileakAtNominal * float64(vNominal) * ratio * ratio)
}

// EDP returns the energy-delay product for an energy and a delay.
// Lower is better (§2.4, footnote 2).
func EDP(e Joule, delay sim.Time) float64 {
	return float64(e) * delay.Seconds()
}

// Meter integrates power over simulated time on one rail, mirroring
// one differential channel of the paper's NI-DAQ card.
type Meter struct {
	name    string
	energy  Joule
	elapsed sim.Time
	peak    Watt
	last    Watt
}

// NewMeter returns a meter with the given channel name.
func NewMeter(name string) *Meter { return &Meter{name: name} }

// Name returns the channel name.
func (m *Meter) Name() string { return m.name }

// Accumulate records that the rail drew p watts for duration d. It is
// AccumulateN with n = 1 — delegating keeps the single-tick and batch
// paths identical by construction, which the simulator's span-off
// bit-identity contract depends on.
func (m *Meter) Accumulate(p Watt, d sim.Time) { m.AccumulateN(p, d, 1) }

// AccumulateN records that the rail drew p watts for n consecutive
// intervals of duration d each — the batch form of Accumulate used by
// the span-batched simulation core. The energy integral is computed in
// closed form (p × n·d) instead of n repeated additions; peak and last
// tracking are unchanged because the draw is constant over the span.
// AccumulateN(p, d, 1) is arithmetically identical to Accumulate(p, d).
func (m *Meter) AccumulateN(p Watt, d sim.Time, n int) {
	if d < 0 {
		panic("power: negative accumulation interval")
	}
	if n <= 0 {
		return
	}
	total := sim.Time(n) * d
	m.energy += Joule(float64(p) * total.Seconds())
	m.elapsed += total
	m.last = p
	if p > m.peak {
		m.peak = p
	}
}

// Energy returns the total integrated energy.
func (m *Meter) Energy() Joule { return m.energy }

// Elapsed returns the total integration time.
func (m *Meter) Elapsed() sim.Time { return m.elapsed }

// Average returns the mean power over the integration window.
func (m *Meter) Average() Watt {
	if m.elapsed == 0 {
		return 0
	}
	return Watt(float64(m.energy) / m.elapsed.Seconds())
}

// Peak returns the highest instantaneous sample.
func (m *Meter) Peak() Watt { return m.peak }

// Last returns the most recent sample.
func (m *Meter) Last() Watt { return m.last }

// Reset clears the meter.
func (m *Meter) Reset() { *m = Meter{name: m.name} }

func (m *Meter) String() string {
	return fmt.Sprintf("%s: avg %.3fW peak %.3fW over %v", m.name, m.Average(), m.peak, m.elapsed)
}

// MeterBank groups one meter per SoC rail plus a package-level total,
// matching the up-to-8-channel measurement setup of §6.
type MeterBank struct {
	rails [vf.NumRails]*Meter
	total *Meter
}

// NewMeterBank builds a bank with a meter per rail.
func NewMeterBank() *MeterBank {
	b := &MeterBank{total: NewMeter("PKG")}
	for i := range b.rails {
		b.rails[i] = NewMeter(vf.RailID(i).String())
	}
	return b
}

// Rail returns the meter for one rail.
func (b *MeterBank) Rail(id vf.RailID) *Meter { return b.rails[id] }

// Total returns the package meter.
func (b *MeterBank) Total() *Meter { return b.total }

// Accumulate records a tick's per-rail power draws for duration d and
// adds their sum to the package meter. It is AccumulateN with n = 1.
func (b *MeterBank) Accumulate(perRail [vf.NumRails]Watt, d sim.Time) {
	b.AccumulateN(perRail, d, 1)
}

// AccumulateN records that each rail drew its perRail power for n
// consecutive intervals of duration d — the batch form of Accumulate.
// The per-rail and package integrals are closed-form, so a span of n
// identical ticks costs one update instead of n.
func (b *MeterBank) AccumulateN(perRail [vf.NumRails]Watt, d sim.Time, n int) {
	var sum Watt
	for i, p := range perRail {
		b.rails[i].AccumulateN(p, d, n)
		sum += p
	}
	b.total.AccumulateN(sum, d, n)
}

// Reset clears every meter in the bank.
func (b *MeterBank) Reset() {
	for _, m := range b.rails {
		m.Reset()
	}
	b.total.Reset()
}
