package power

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

func TestDynamicPower(t *testing.T) {
	// P = C V^2 f a: 1nF, 1V, 1GHz, full activity = 1W.
	if p := Dynamic(1e-9, 1.0, 1*vf.GHz, 1.0); math.Abs(float64(p)-1.0) > 1e-9 {
		t.Fatalf("Dynamic = %v, want 1W", p)
	}
	// Quadratic in V.
	p1 := Dynamic(1e-9, 0.5, 1*vf.GHz, 1.0)
	if math.Abs(float64(p1)-0.25) > 1e-9 {
		t.Fatalf("V^2 scaling broken: %v", p1)
	}
	// Activity clamped.
	if Dynamic(1e-9, 1, 1*vf.GHz, 2.0) != Dynamic(1e-9, 1, 1*vf.GHz, 1.0) {
		t.Fatal("activity not clamped high")
	}
	if Dynamic(1e-9, 1, 1*vf.GHz, -1) != 0 {
		t.Fatal("activity not clamped low")
	}
}

func TestLeakage(t *testing.T) {
	nom := Leakage(0.1, 1.0, 1.0)
	if math.Abs(float64(nom)-0.1) > 1e-9 {
		t.Fatalf("leakage at nominal = %v", nom)
	}
	// Super-linear in V: at 0.8x voltage, leakage is 0.64x.
	low := Leakage(0.1, 0.8, 1.0)
	if math.Abs(float64(low)-0.064) > 1e-9 {
		t.Fatalf("leakage scaling = %v, want 0.064", low)
	}
	if Leakage(0.1, 1.0, 0) != 0 {
		t.Fatal("zero nominal must yield zero")
	}
}

func TestEDP(t *testing.T) {
	if e := EDP(2.0, sim.Second); e != 2.0 {
		t.Fatalf("EDP = %v", e)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter("test")
	m.Accumulate(2.0, 500*sim.Millisecond)
	m.Accumulate(4.0, 500*sim.Millisecond)
	if e := m.Energy(); math.Abs(float64(e)-3.0) > 1e-9 {
		t.Fatalf("energy = %v, want 3J", e)
	}
	if a := m.Average(); math.Abs(float64(a)-3.0) > 1e-9 {
		t.Fatalf("average = %v, want 3W", a)
	}
	if m.Peak() != 4.0 || m.Last() != 4.0 {
		t.Fatalf("peak/last wrong: %v/%v", m.Peak(), m.Last())
	}
	if m.Elapsed() != sim.Second {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
	m.Reset()
	if m.Energy() != 0 || m.Average() != 0 || m.Name() != "test" {
		t.Fatal("reset broken")
	}
}

func TestMeterNegativeInterval(t *testing.T) {
	m := NewMeter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Accumulate(1, -1)
}

func TestMeterBank(t *testing.T) {
	b := NewMeterBank()
	var rail [vf.NumRails]Watt
	rail[vf.RailVSA] = 1.0
	rail[vf.RailVCore] = 2.0
	b.Accumulate(rail, sim.Second)
	if got := b.Total().Average(); math.Abs(float64(got)-3.0) > 1e-9 {
		t.Fatalf("total = %v", got)
	}
	if got := b.Rail(vf.RailVCore).Average(); got != 2.0 {
		t.Fatalf("core rail = %v", got)
	}
	b.Reset()
	if b.Total().Energy() != 0 {
		t.Fatal("bank reset broken")
	}
}

func TestMeterEnergyAdditive(t *testing.T) {
	// Property: energy is additive over intervals.
	err := quick.Check(func(p1, p2 uint8, d1, d2 uint16) bool {
		m := NewMeter("q")
		m.Accumulate(Watt(p1), sim.Time(d1)*sim.Microsecond)
		m.Accumulate(Watt(p2), sim.Time(d2)*sim.Microsecond)
		want := float64(p1)*(float64(d1)*1e-6) + float64(p2)*(float64(d2)*1e-6)
		return math.Abs(float64(m.Energy())-want) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBudgetSplit(t *testing.T) {
	b, err := NewBudget(4.5, 1.0, 1.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Compute(); math.Abs(float64(got)-1.8) > 1e-9 {
		t.Fatalf("compute = %v, want 1.8", got)
	}
	if err := b.SetIOMemory(0.3, 0.9); err != nil {
		t.Fatal(err)
	}
	if got := b.Compute(); math.Abs(float64(got)-3.1) > 1e-9 {
		t.Fatalf("after redistribution compute = %v, want 3.1", got)
	}
	if len(b.History()) != 2 {
		t.Fatalf("history length = %d", len(b.History()))
	}
}

func TestBudgetRejections(t *testing.T) {
	if _, err := NewBudget(4.5, 3.0, 1.5, 0.2); err == nil {
		t.Fatal("exhausted TDP accepted")
	}
	b, _ := NewBudget(4.5, 1.0, 1.0, 0.2)
	if err := b.SetIOMemory(-1, 1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := b.SetIOMemory(4.0, 0.4); err == nil {
		t.Fatal("over-TDP split accepted")
	}
	// Failed set must not corrupt state.
	if b.IO() != 1.0 || b.Memory() != 1.0 {
		t.Fatal("failed set mutated budget")
	}
}

func TestBudgetInvariant(t *testing.T) {
	// Property: compute + io + memory + uncore == TDP for any accepted
	// split.
	b, _ := NewBudget(10, 1, 1, 0.5)
	err := quick.Check(func(ioRaw, memRaw uint8) bool {
		io := Watt(float64(ioRaw) / 255 * 4)
		mem := Watt(float64(memRaw) / 255 * 4)
		if err := b.SetIOMemory(io, mem); err != nil {
			return true // rejected splits are fine
		}
		sum := float64(b.Compute() + b.IO() + b.Memory() + b.Uncore())
		return math.Abs(sum-10) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
