package power

import "fmt"

// Budget tracks the split of the SoC thermal design power across the
// three domains (§1, §4.3). The PMU's power-budget-management algorithm
// (PBM) owns an instance: the IO and memory domains receive allocations
// sized to their operating point, and whatever remains belongs to the
// compute domain. SysScale's redistribution step is exactly a call to
// SetIOMemory with a smaller allocation, which grows Compute().
type Budget struct {
	tdp     Watt
	io      Watt
	memory  Watt
	uncore  Watt // fixed uncore/other allocation (fabric misc, PLLs)
	history []Split
}

// Split is one budget assignment, recorded for inspection.
type Split struct {
	IO, Memory, Compute Watt
}

// NewBudget creates a budget for a given TDP with an initial worst-case
// IO and memory allocation (Observation 1: current systems pin these
// at worst case) and a fixed uncore reserve.
func NewBudget(tdp, io, memory, uncore Watt) (*Budget, error) {
	b := &Budget{tdp: tdp, uncore: uncore}
	if err := b.SetIOMemory(io, memory); err != nil {
		return nil, err
	}
	return b, nil
}

// TDP returns the package thermal design power.
func (b *Budget) TDP() Watt { return b.tdp }

// IO returns the IO domain's current allocation.
func (b *Budget) IO() Watt { return b.io }

// Memory returns the memory domain's current allocation.
func (b *Budget) Memory() Watt { return b.memory }

// Uncore returns the fixed uncore reserve.
func (b *Budget) Uncore() Watt { return b.uncore }

// Compute returns the compute domain's allocation: everything the
// other domains do not hold.
func (b *Budget) Compute() Watt {
	c := b.tdp - b.io - b.memory - b.uncore
	if c < 0 {
		return 0
	}
	return c
}

// SetIOMemory reassigns the IO and memory allocations, implicitly
// resizing the compute budget. It rejects splits that leave the compute
// domain with nothing (the SoC could not retire work at all).
func (b *Budget) SetIOMemory(io, memory Watt) error {
	if io < 0 || memory < 0 {
		return fmt.Errorf("power: negative budget (io=%.3f, mem=%.3f)", io, memory)
	}
	if io+memory+b.uncore >= b.tdp {
		return fmt.Errorf("power: io+memory+uncore (%.3fW) exhausts TDP %.3fW", io+memory+b.uncore, b.tdp)
	}
	b.io, b.memory = io, memory
	b.history = append(b.history, Split{IO: io, Memory: memory, Compute: b.Compute()})
	return nil
}

// History returns every split ever assigned, oldest first.
func (b *Budget) History() []Split { return b.history }

// Reset reprograms the budget to a fresh TDP/reservation assignment,
// discarding the accumulated history but keeping its capacity. A reset
// budget is indistinguishable from NewBudget(tdp, io, memory, uncore)
// except that the history slice is recycled — which is the point:
// platform pooling stops the per-run history reallocation. The split
// is validated before anything is mutated, so a failed Reset leaves
// the budget unchanged.
func (b *Budget) Reset(tdp, io, memory, uncore Watt) error {
	if io < 0 || memory < 0 {
		return fmt.Errorf("power: negative budget (io=%.3f, mem=%.3f)", io, memory)
	}
	if io+memory+uncore >= tdp {
		return fmt.Errorf("power: io+memory+uncore (%.3fW) exhausts TDP %.3fW", io+memory+uncore, tdp)
	}
	b.tdp, b.uncore = tdp, uncore
	b.history = b.history[:0]
	return b.SetIOMemory(io, memory)
}

func (b *Budget) String() string {
	return fmt.Sprintf("TDP %.2fW = compute %.2fW + io %.2fW + mem %.2fW + uncore %.2fW",
		b.tdp, b.Compute(), b.io, b.memory, b.uncore)
}
