package compute

import (
	"fmt"

	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// GfxParams configure the graphics-engine model.
type GfxParams struct {
	BaseFreq vf.Hz // Table 2: 300MHz base
	Curve    *vf.Curve

	Cdyn      float64
	LeakAtNom float64
	NomVolt   vf.Volt
}

// DefaultGfxParams returns the evaluated platform's graphics engine.
func DefaultGfxParams() GfxParams {
	return GfxParams{
		BaseFreq:  0.3 * vf.GHz,
		Curve:     vf.GfxCurve(),
		Cdyn:      2.2e-9, // graphics slices dominate compute power on GFX workloads
		LeakAtNom: 0.090,
		NomVolt:   0.62,
	}
}

// Gfx is the graphics-engine cluster.
type Gfx struct {
	params GfxParams
	freq   vf.Hz
	volt   vf.Volt
}

// NewGfx builds the cluster at its base frequency.
func NewGfx(p GfxParams) (*Gfx, error) {
	if p.Curve == nil {
		return nil, fmt.Errorf("compute: nil graphics V/F curve")
	}
	if p.BaseFreq <= 0 {
		return nil, fmt.Errorf("compute: non-positive graphics base frequency")
	}
	g := &Gfx{params: p}
	g.setFreq(p.BaseFreq)
	return g, nil
}

func (g *Gfx) setFreq(f vf.Hz) {
	g.freq = f
	g.volt = g.params.Curve.VoltageAt(f)
}

// Reset returns the cluster to the state NewGfx builds: base frequency.
// Platform pooling uses it to recycle the cluster across runs.
func (g *Gfx) Reset() { g.setFreq(g.params.BaseFreq) }

// Params returns the configuration.
func (g *Gfx) Params() GfxParams { return g.params }

// Frequency returns the current graphics clock.
func (g *Gfx) Frequency() vf.Hz { return g.freq }

// Voltage returns the graphics rail voltage.
func (g *Gfx) Voltage() vf.Volt { return g.volt }

// SetPState programs a graphics frequency; voltage follows the curve.
func (g *Gfx) SetPState(f vf.Hz) error {
	if f <= 0 {
		return fmt.Errorf("compute: non-positive graphics frequency")
	}
	if f > g.params.Curve.Fmax() {
		f = g.params.Curve.Fmax()
	}
	g.setFreq(f)
	return nil
}

// ActivePower returns the cluster draw at the given activity.
func (g *Gfx) ActivePower(activity float64) power.Watt {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	dyn := power.Dynamic(g.params.Cdyn, g.volt, g.freq, activity)
	leak := power.Leakage(g.params.LeakAtNom, g.volt, g.params.NomVolt)
	return dyn + leak
}

// PlannedPower returns the PBM's planning estimate for the cluster at
// frequency f and the given activity.
func (g *Gfx) PlannedPower(f vf.Hz, activity float64) power.Watt {
	v := g.params.Curve.VoltageAt(f)
	dyn := power.Dynamic(g.params.Cdyn, v, f, activity)
	leak := power.Leakage(g.params.LeakAtNom, v, g.params.NomVolt)
	return dyn + leak
}

// FreqForBudget returns the highest graphics frequency whose draw at
// the given activity fits within budget (the PBM conversion for the
// graphics share of the compute budget, §7.2).
func (g *Gfx) FreqForBudget(budget power.Watt, activity float64) vf.Hz {
	lo, hi := 0.1*vf.GHz, g.params.Curve.Fmax()
	powerAt := func(f vf.Hz) power.Watt {
		v := g.params.Curve.VoltageAt(f)
		dyn := power.Dynamic(g.params.Cdyn, v, f, activity)
		leak := power.Leakage(g.params.LeakAtNom, v, g.params.NomVolt)
		return dyn + leak
	}
	if powerAt(lo) > budget {
		return lo
	}
	if powerAt(hi) <= budget {
		return hi
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if powerAt(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
