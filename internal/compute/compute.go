// Package compute models the compute domain: CPU cores (with P-states,
// C-states and hardware duty cycling) and the graphics engines. The
// domain has two rails (core+LLC, graphics; §2.1) and its own DVFS
// mechanisms — P-states driven by the OS/driver and arbitrated by the
// PMU's power-budget manager (§4.4). SysScale never drives compute
// clocks directly; it only resizes the domain's power budget, and the
// budget manager converts headroom into frequency via the V/F curve.
package compute

import (
	"fmt"

	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// CState is a package idle state (§7.3). Battery-life workloads spend
// 60-90% of their time in package idle states; DRAM stays active in C0
// and C2 but is in self-refresh from C6/C8 downward, which bounds where
// SysScale's memory DVFS can help.
type CState int

// Modeled package C-states.
const (
	C0 CState = iota // active
	C2               // shallow idle: clocks gated, DRAM active
	C6               // deep idle: power gated, DRAM self-refresh
	C8               // deepest: additional rails off, DRAM self-refresh
)

func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C2:
		return "C2"
	case C6:
		return "C6"
	case C8:
		return "C8"
	default:
		return fmt.Sprintf("CState(%d)", int(c))
	}
}

// DRAMActive reports whether DRAM is out of self-refresh in this state
// (§7.3: DRAM is active only in C0 and C2).
func (c CState) DRAMActive() bool { return c == C0 || c == C2 }

// Residency is a package C-state residency mix for an epoch. Fractions
// must sum to 1.
type Residency struct {
	C0, C2, C6, C8 float64
}

// Validate checks that the mix is a distribution.
func (r Residency) Validate() error {
	sum := r.C0 + r.C2 + r.C6 + r.C8
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("compute: residency sums to %.4f, want 1", sum)
	}
	for _, v := range []float64{r.C0, r.C2, r.C6, r.C8} {
		if v < -1e-9 {
			return fmt.Errorf("compute: negative residency fraction")
		}
	}
	return nil
}

// ActiveFrac returns the C0 fraction.
func (r Residency) ActiveFrac() float64 { return r.C0 }

// DRAMActiveFrac returns the fraction of the epoch with DRAM active.
func (r Residency) DRAMActiveFrac() float64 { return r.C0 + r.C2 }

// FullyActive is the residency of throughput workloads (SPEC, 3DMark).
func FullyActive() Residency { return Residency{C0: 1} }

// CoreParams configure the CPU core cluster model.
type CoreParams struct {
	Cores          int
	ThreadsPerCore int
	BaseFreq       vf.Hz // guaranteed base frequency (Table 2: 1.2GHz)
	Curve          *vf.Curve

	CdynPerCore float64 // effective capacitance per active core
	LeakAtNom   float64
	NomVolt     vf.Volt

	// Idle-state draws for the whole cluster.
	C2Power power.Watt
	C6Power power.Watt
	C8Power power.Watt
}

// DefaultCoreParams returns the 2-core/4-thread Skylake-M cluster of
// Table 2.
func DefaultCoreParams() CoreParams {
	return CoreParams{
		Cores:          2,
		ThreadsPerCore: 2,
		BaseFreq:       1.2 * vf.GHz,
		Curve:          vf.CoreCurve(),
		CdynPerCore:    1.05e-9, // ~0.53W/core at 0.65V, 1.2GHz full activity
		LeakAtNom:      0.110,
		NomVolt:        0.65,
		C2Power:        0.085,
		C6Power:        0.020,
		C8Power:        0.006,
	}
}

// Cores is the CPU core cluster.
type Cores struct {
	params CoreParams
	freq   vf.Hz
	volt   vf.Volt
	// dutyCycle < 1 models hardware duty cycling (HDC, §7.2 footnote
	// 10): at very low TDP the effective core frequency is reduced
	// below Pn by duty-cycling with C-states.
	dutyCycle float64
}

// NewCores builds the cluster at its base frequency.
func NewCores(p CoreParams) (*Cores, error) {
	if p.Cores <= 0 || p.ThreadsPerCore <= 0 {
		return nil, fmt.Errorf("compute: non-positive core count")
	}
	if p.Curve == nil {
		return nil, fmt.Errorf("compute: nil core V/F curve")
	}
	if p.BaseFreq <= 0 {
		return nil, fmt.Errorf("compute: non-positive base frequency")
	}
	c := &Cores{params: p, dutyCycle: 1}
	c.setFreq(p.BaseFreq)
	return c, nil
}

func (c *Cores) setFreq(f vf.Hz) {
	c.freq = f
	c.volt = c.params.Curve.VoltageAt(f)
}

// Reset returns the cluster to the state NewCores builds: base
// frequency, full duty cycle. Platform pooling uses it to recycle the
// cluster across runs.
func (c *Cores) Reset() {
	c.dutyCycle = 1
	c.setFreq(c.params.BaseFreq)
}

// Params returns the configuration.
func (c *Cores) Params() CoreParams { return c.params }

// Frequency returns the current core clock.
func (c *Cores) Frequency() vf.Hz { return c.freq }

// Voltage returns the current core rail voltage.
func (c *Cores) Voltage() vf.Volt { return c.volt }

// DutyCycle returns the HDC duty factor in (0, 1].
func (c *Cores) DutyCycle() float64 { return c.dutyCycle }

// EffectiveFrequency returns frequency × duty cycle: the throughput-
// relevant clock.
func (c *Cores) EffectiveFrequency() vf.Hz { return vf.Hz(float64(c.freq) * c.dutyCycle) }

// SetPState programs a core frequency; voltage follows the V/F curve.
func (c *Cores) SetPState(f vf.Hz) error {
	if f <= 0 {
		return fmt.Errorf("compute: non-positive core frequency")
	}
	if f > c.params.Curve.Fmax() {
		f = c.params.Curve.Fmax()
	}
	c.setFreq(f)
	return nil
}

// SetDutyCycle programs the HDC duty factor.
func (c *Cores) SetDutyCycle(d float64) error {
	if d <= 0 || d > 1 {
		return fmt.Errorf("compute: duty cycle %.3f outside (0,1]", d)
	}
	c.dutyCycle = d
	return nil
}

// ActivePower returns the cluster's C0 draw with activeCores cores
// running at the given activity factor.
func (c *Cores) ActivePower(activeCores int, activity float64) power.Watt {
	if activeCores < 0 {
		activeCores = 0
	}
	if activeCores > c.params.Cores {
		activeCores = c.params.Cores
	}
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	dyn := power.Dynamic(c.params.CdynPerCore*float64(activeCores), c.volt, c.freq, activity) * power.Watt(c.dutyCycle)
	leak := power.Leakage(c.params.LeakAtNom, c.volt, c.params.NomVolt)
	return dyn + leak
}

// IdlePower returns the cluster draw in a package idle state.
func (c *Cores) IdlePower(s CState) power.Watt {
	switch s {
	case C2:
		return c.params.C2Power
	case C6:
		return c.params.C6Power
	case C8:
		return c.params.C8Power
	default:
		return c.params.C2Power
	}
}

// PlannedPower returns the PBM's planning estimate for running
// activeCores cores at frequency f with the given activity.
func (c *Cores) PlannedPower(f vf.Hz, activeCores int, activity float64) power.Watt {
	if activeCores <= 0 {
		activeCores = 1
	}
	if activeCores > c.params.Cores {
		activeCores = c.params.Cores
	}
	v := c.params.Curve.VoltageAt(f)
	dyn := power.Dynamic(c.params.CdynPerCore*float64(activeCores), v, f, activity)
	leak := power.Leakage(c.params.LeakAtNom, v, c.params.NomVolt)
	return dyn + leak
}

// FreqForBudget inverts the power model: the highest core frequency at
// which activeCores cores at the given activity fit within budget. This
// is the PBM's conversion from redistributed watts to P-state (§4.4).
// The search respects the V/F curve, so near the Vmin floor a watt buys
// proportionally more hertz — the effect behind Fig. 10.
func (c *Cores) FreqForBudget(budget power.Watt, activeCores int, activity float64) vf.Hz {
	if activeCores <= 0 {
		activeCores = 1
	}
	if activeCores > c.params.Cores {
		activeCores = c.params.Cores
	}
	lo, hi := 0.2*vf.GHz, c.params.Curve.Fmax()
	powerAt := func(f vf.Hz) power.Watt {
		v := c.params.Curve.VoltageAt(f)
		dyn := power.Dynamic(c.params.CdynPerCore*float64(activeCores), v, f, activity)
		leak := power.Leakage(c.params.LeakAtNom, v, c.params.NomVolt)
		return dyn + leak
	}
	if powerAt(lo) > budget {
		return lo
	}
	if powerAt(hi) <= budget {
		return hi
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if powerAt(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
