package compute

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/power"
	"sysscale/internal/vf"
)

func TestCStates(t *testing.T) {
	if !C0.DRAMActive() || !C2.DRAMActive() {
		t.Fatal("DRAM must be active in C0/C2 (§7.3)")
	}
	if C6.DRAMActive() || C8.DRAMActive() {
		t.Fatal("DRAM must be in self-refresh in C6/C8")
	}
	if C0.String() != "C0" || C8.String() != "C8" {
		t.Fatal("state strings wrong")
	}
}

func TestResidencyValidation(t *testing.T) {
	good := Residency{C0: 0.1, C2: 0.05, C8: 0.85}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(good.DRAMActiveFrac()-0.15) > 1e-12 || good.ActiveFrac() != 0.1 {
		t.Fatal("residency fractions wrong")
	}
	bad := Residency{C0: 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-normalized residency accepted")
	}
	if err := FullyActive().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoresPStateFollowsCurve(t *testing.T) {
	c, err := NewCores(DefaultCoreParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.Frequency() != 1.2*vf.GHz {
		t.Fatalf("base frequency = %v, want 1.2GHz (Table 2)", c.Frequency())
	}
	if err := c.SetPState(2.5 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	want := DefaultCoreParams().Curve.VoltageAt(2.5 * vf.GHz)
	if c.Voltage() != want {
		t.Fatalf("voltage = %v, want %v", c.Voltage(), want)
	}
	// Above Fmax: clamped.
	if err := c.SetPState(99 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	if c.Frequency() != DefaultCoreParams().Curve.Fmax() {
		t.Fatal("Fmax clamp broken")
	}
	if err := c.SetPState(0); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestDutyCycle(t *testing.T) {
	c, _ := NewCores(DefaultCoreParams())
	if err := c.SetDutyCycle(0.5); err != nil {
		t.Fatal(err)
	}
	if c.EffectiveFrequency() != vf.Hz(float64(c.Frequency())*0.5) {
		t.Fatal("effective frequency ignores duty cycle")
	}
	if err := c.SetDutyCycle(0); err == nil {
		t.Fatal("zero duty accepted")
	}
	if err := c.SetDutyCycle(1.5); err == nil {
		t.Fatal("over-unity duty accepted")
	}
	// HDC halves dynamic power at 0.5 duty.
	if err := c.SetDutyCycle(1); err != nil {
		t.Fatal(err)
	}
	full := c.ActivePower(2, 0.8)
	if err := c.SetDutyCycle(0.5); err != nil {
		t.Fatal(err)
	}
	half := c.ActivePower(2, 0.8)
	if half >= full {
		t.Fatal("duty cycling did not reduce power")
	}
}

func TestActivePowerScaling(t *testing.T) {
	c, _ := NewCores(DefaultCoreParams())
	one := c.ActivePower(1, 0.8)
	two := c.ActivePower(2, 0.8)
	if two <= one {
		t.Fatal("second core free")
	}
	// Clamps.
	if c.ActivePower(5, 0.8) != two {
		t.Fatal("core count not clamped")
	}
	if c.ActivePower(1, -1) >= one {
		t.Fatal("activity not clamped low")
	}
}

func TestIdlePowersOrdered(t *testing.T) {
	c, _ := NewCores(DefaultCoreParams())
	if !(c.IdlePower(C2) > c.IdlePower(C6) && c.IdlePower(C6) > c.IdlePower(C8)) {
		t.Fatal("idle powers not ordered C2 > C6 > C8")
	}
}

func TestFreqForBudgetInverse(t *testing.T) {
	c, _ := NewCores(DefaultCoreParams())
	// Property: granted frequency's planned power fits the budget.
	err := quick.Check(func(raw uint8) bool {
		budget := power.Watt(0.3 + float64(raw)/255*5)
		f := c.FreqForBudget(budget, 1, 0.75)
		if f >= c.Params().Curve.Fmax() {
			return true // capped: power may be below budget
		}
		p := c.PlannedPower(f, 1, 0.75)
		return p <= budget*1.01
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone: more budget, no less frequency.
	f1 := c.FreqForBudget(1.5, 1, 0.75)
	f2 := c.FreqForBudget(2.5, 1, 0.75)
	if f2 < f1 {
		t.Fatal("FreqForBudget not monotone")
	}
}

func TestFreqForBudgetVminRegionLinear(t *testing.T) {
	// Near the Vmin floor, power is ~linear in f, so a watt buys many
	// MHz — the effect behind Fig. 10.
	c, _ := NewCores(DefaultCoreParams())
	fLow := c.FreqForBudget(0.45, 1, 0.75)
	fMid := c.FreqForBudget(0.9, 1, 0.75)
	if fLow >= fMid {
		t.Fatal("budget not converted to frequency")
	}
	gainPerWatt := float64(fMid-fLow) / 0.45
	fHi1 := c.FreqForBudget(2.5, 1, 0.75)
	fHi2 := c.FreqForBudget(2.95, 1, 0.75)
	gainPerWattHigh := float64(fHi2-fHi1) / 0.45
	if gainPerWattHigh >= gainPerWatt {
		t.Fatal("frequency per watt should shrink away from the Vmin floor")
	}
}

func TestGfx(t *testing.T) {
	g, err := NewGfx(DefaultGfxParams())
	if err != nil {
		t.Fatal(err)
	}
	if g.Frequency() != 0.3*vf.GHz {
		t.Fatalf("gfx base = %v, want 300MHz (Table 2)", g.Frequency())
	}
	if err := g.SetPState(0.9 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	if g.Voltage() != DefaultGfxParams().Curve.VoltageAt(0.9*vf.GHz) {
		t.Fatal("gfx voltage does not follow curve")
	}
	// Fused maximum: 1.0GHz.
	if err := g.SetPState(2 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	if g.Frequency() != 1.0*vf.GHz {
		t.Fatalf("gfx fused max broken: %v", g.Frequency())
	}
	if g.ActivePower(0.9) <= g.ActivePower(0.1) {
		t.Fatal("gfx power not monotone in activity")
	}
	f := g.FreqForBudget(1.5, 0.85)
	if p := g.PlannedPower(f, 0.85); f < g.Params().Curve.Fmax() && p > 1.52 {
		t.Fatalf("gfx FreqForBudget overshoots: %v at %v", p, f)
	}
}

func TestConstructorValidation(t *testing.T) {
	bad := DefaultCoreParams()
	bad.Cores = 0
	if _, err := NewCores(bad); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad2 := DefaultCoreParams()
	bad2.Curve = nil
	if _, err := NewCores(bad2); err == nil {
		t.Fatal("nil curve accepted")
	}
	badG := DefaultGfxParams()
	badG.BaseFreq = 0
	if _, err := NewGfx(badG); err == nil {
		t.Fatal("zero gfx base accepted")
	}
}

func TestPlannedPowerMatchesActive(t *testing.T) {
	c, _ := NewCores(DefaultCoreParams())
	if err := c.SetPState(2.0 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	planned := c.PlannedPower(2.0*vf.GHz, 2, 0.75)
	actual := c.ActivePower(2, 0.75)
	if math.Abs(float64(planned-actual)) > 1e-9 {
		t.Fatalf("planned %v != actual %v at same state", planned, actual)
	}
}
