// Package memctrl models the memory controller: its clock and voltage
// domain (the MC runs at half the DDR rate and shares the V_SA rail
// with the IO interconnect, §2.1), its request queues, and an analytic
// bandwidth/latency model used by the epoch simulator.
//
// The latency model is the source of the paper's core performance
// trade-off: lowering memory frequency lengthens data bursts, slows the
// controller and the DRAM interface, and grows queueing delay (§2.4,
// "Impact of Memory DVFS on the SoC"). Bandwidth-hungry epochs push
// interface utilization toward 1, where the queueing term explodes —
// that is what makes lbm and cactusADM lose >10% under the static
// MD-DVFS setup of §3 while perlbench barely notices.
package memctrl

import (
	"fmt"
	"math"

	"sysscale/internal/dram"
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// Params configure the controller model.
type Params struct {
	// SchedulingEff is the fraction of theoretical peak bandwidth a
	// real FR-FCFS scheduler sustains on mixed traffic (bank conflicts,
	// read/write turnarounds, refresh interference).
	SchedulingEff float64
	// PipelineCycles is the controller's internal pipeline depth in MC
	// clocks (queue lookup, scheduling, command serialization).
	PipelineCycles float64
	// QueueCapacity is the read-pending-queue capacity in requests,
	// used to cap the modeled occupancy counter.
	QueueCapacity int
	// LineBytes is the transfer granule (one LLC line).
	LineBytes int

	// Power model coefficients.
	Cdyn        float64 // effective switched capacitance (F)
	LeakAtNom   float64 // leakage current draw (A) at nominal V_SA
	NominalVolt vf.Volt
}

// DefaultParams returns the evaluated platform's controller model.
func DefaultParams() Params {
	return Params{
		SchedulingEff:  0.85,
		PipelineCycles: 8,
		QueueCapacity:  64,
		LineBytes:      64,
		Cdyn:           0.30e-9, // 0.30 nF -> ~0.22W at 0.95V, 0.8GHz, full activity
		LeakAtNom:      0.055,
		NominalVolt:    vf.NominalVSA,
	}
}

// Controller is the memory controller instance.
type Controller struct {
	params Params
	dev    *dram.Device

	freq vf.Hz   // MC clock (DDR/2)
	volt vf.Volt // V_SA

	blocked bool // traffic blocked during a DVFS transition

	// Rolling counters for the last evaluated epoch.
	lastEpoch Epoch
}

// Epoch is the controller's resolved state for one simulation epoch.
type Epoch struct {
	DemandBytes   float64 // bytes/s requested by all agents
	AchievedBytes float64 // bytes/s actually served
	Utilization   float64 // fraction of usable bandwidth consumed
	Latency       float64 // average loaded read latency (s)
	IdleLatency   float64 // unloaded latency at this operating point (s)
	RPQOccupancy  float64 // average read-pending-queue occupancy (requests)
}

// New creates a controller bound to a DRAM device.
func New(params Params, dev *dram.Device) (*Controller, error) {
	if params.SchedulingEff <= 0 || params.SchedulingEff > 1 {
		return nil, fmt.Errorf("memctrl: scheduling efficiency %.3f outside (0,1]", params.SchedulingEff)
	}
	if params.LineBytes <= 0 || params.QueueCapacity <= 0 {
		return nil, fmt.Errorf("memctrl: non-positive queue/line parameter")
	}
	if dev == nil {
		return nil, fmt.Errorf("memctrl: nil DRAM device")
	}
	return &Controller{
		params: params,
		dev:    dev,
		freq:   dev.Frequency() / 2,
		volt:   params.NominalVolt,
	}, nil
}

// Frequency returns the MC clock.
func (c *Controller) Frequency() vf.Hz { return c.freq }

// Voltage returns the controller's rail voltage (V_SA).
func (c *Controller) Voltage() vf.Volt { return c.volt }

// Device returns the attached DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// SetOperatingPoint retargets the controller clock and rail voltage.
// The DRAM device itself is reclocked separately (through its
// self-refresh flow); this call only affects the controller side.
func (c *Controller) SetOperatingPoint(mcClock vf.Hz, v vf.Volt) error {
	if mcClock <= 0 {
		return fmt.Errorf("memctrl: non-positive MC clock")
	}
	if v <= 0 {
		return fmt.Errorf("memctrl: non-positive voltage")
	}
	c.freq = mcClock
	c.volt = v
	return nil
}

// Block stops new traffic (step 3 of the Fig. 5 flow). While blocked,
// Evaluate serves nothing.
func (c *Controller) Block() { c.blocked = true }

// Release resumes traffic (step 9 of the Fig. 5 flow).
func (c *Controller) Release() { c.blocked = false }

// Blocked reports whether traffic is blocked.
func (c *Controller) Blocked() bool { return c.blocked }

// UsableBandwidth returns the bandwidth ceiling at the current
// operating point: peak × scheduler efficiency × trained interface
// efficiency. A detuned MRC image (InterfaceEff < 1) directly lowers
// the ceiling.
func (c *Controller) UsableBandwidth() float64 {
	return c.dev.PeakBandwidth() * c.params.SchedulingEff * c.dev.Timing().InterfaceEff
}

// Evaluate resolves one epoch: given the aggregate bandwidth demand
// (bytes/s) from all agents, it computes achieved bandwidth, loaded
// latency and queue occupancy. Demand beyond the usable ceiling is
// simply not served (the agents stall, which the compute model turns
// into lost performance).
func (c *Controller) Evaluate(demandBytes float64) Epoch {
	if demandBytes < 0 {
		demandBytes = 0
	}
	ep := Epoch{DemandBytes: demandBytes}
	if c.blocked || c.dev.State() != dram.Active {
		// No service; demand stalls entirely.
		ep.Latency = math.Inf(1)
		c.lastEpoch = ep
		return ep
	}

	usable := c.UsableBandwidth()
	ep.AchievedBytes = math.Min(demandBytes, usable)
	if usable > 0 {
		ep.Utilization = ep.AchievedBytes / usable
	}

	// Unloaded latency: controller pipeline + DRAM access + burst.
	pipe := c.params.PipelineCycles / float64(c.freq)
	access := c.dev.Timing().RandomAccessLatency(c.dev.Frequency())
	burst := c.burstTime()
	ep.IdleLatency = pipe + access + burst

	// Queueing delay. An FR-FCFS controller with deep queues and bank
	// parallelism degrades far more gently than M/M/1 until the
	// interface is nearly saturated; a quartic term calibrated against
	// measured loaded-latency curves captures that: negligible below
	// 50% utilization, ~20% inflation at 80%, ~40% at saturation.
	// Beyond saturation the unserved demand shows up as back-pressure
	// (lost bandwidth) rather than unbounded latency.
	rho := ep.Utilization
	const rhoCap = 0.96
	if rho > rhoCap {
		rho = rhoCap
	}
	queue := ep.IdleLatency * 0.5 * rho * rho * rho * rho
	maxQueue := float64(c.params.QueueCapacity) * burst
	if queue > maxQueue {
		queue = maxQueue
	}
	ep.Latency = ep.IdleLatency + queue

	// Little's law for the RPQ occupancy counter: requests in flight =
	// arrival rate × residence time.
	reqRate := ep.AchievedBytes / float64(c.params.LineBytes)
	occ := reqRate * ep.Latency
	if occ > float64(c.params.QueueCapacity) {
		occ = float64(c.params.QueueCapacity)
	}
	ep.RPQOccupancy = occ

	c.lastEpoch = ep
	return ep
}

// burstTime returns the time one cache-line burst occupies the
// interface at the current DRAM frequency.
func (c *Controller) burstTime() float64 {
	perChan := c.dev.PeakBandwidth() / float64(c.dev.Geometry().Channels)
	if perChan <= 0 {
		return 0
	}
	return float64(c.params.LineBytes) / perChan
}

// LastEpoch returns the most recently evaluated epoch.
func (c *Controller) LastEpoch() Epoch { return c.lastEpoch }

// RestoreEpoch reinstates ep as the rolling last-evaluated state, as
// if Evaluate had just resolved it. Used by the simulator's
// steady-state tick memo so that skipping Evaluate on a repeated tick
// leaves the controller's observable state identical to evaluating it.
func (c *Controller) RestoreEpoch(ep Epoch) { c.lastEpoch = ep }

// Power returns the controller's draw for an epoch with the given
// utilization. Dynamic power scales as V²f with activity following
// utilization (plus a scheduling floor); leakage scales with voltage —
// together the "approximately cubic" reduction of §2.4 when frequency
// and voltage drop jointly.
func (c *Controller) Power(utilization float64) power.Watt {
	activity := 0.18 + 0.82*clamp01(utilization)
	dyn := power.Dynamic(c.params.Cdyn, c.volt, c.freq, activity)
	leak := power.Leakage(c.params.LeakAtNom, c.volt, c.params.NominalVolt)
	return dyn + leak
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
