package memctrl

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/dram"
	"sysscale/internal/vf"
)

func newMC(t *testing.T, ddr vf.Hz) *Controller {
	t.Helper()
	d, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), ddr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstruction(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	if c.Frequency() != 0.8*vf.GHz {
		t.Fatalf("MC clock = %v, want DDR/2", c.Frequency())
	}
	if _, err := New(DefaultParams(), nil); err == nil {
		t.Fatal("nil device accepted")
	}
	bad := DefaultParams()
	bad.SchedulingEff = 1.5
	if _, err := New(bad, c.Device()); err == nil {
		t.Fatal("bad efficiency accepted")
	}
}

func TestEvaluateServesUpToUsable(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	usable := c.UsableBandwidth()
	if math.Abs(usable-25.6e9*DefaultParams().SchedulingEff) > 1 {
		t.Fatalf("usable = %v", usable)
	}
	ep := c.Evaluate(5e9)
	if ep.AchievedBytes != 5e9 {
		t.Fatalf("under-capacity demand not fully served: %v", ep.AchievedBytes)
	}
	over := c.Evaluate(usable * 2)
	if math.Abs(over.AchievedBytes-usable) > 1 {
		t.Fatalf("over-capacity served %v, want %v", over.AchievedBytes, usable)
	}
	if over.Utilization < 0.99 {
		t.Fatalf("saturated utilization = %v", over.Utilization)
	}
	neg := c.Evaluate(-5)
	if neg.AchievedBytes != 0 {
		t.Fatal("negative demand served")
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	err := quick.Check(func(a, b uint16) bool {
		d1 := float64(a) * 3e5 // up to ~19.7GB/s
		d2 := float64(b) * 3e5
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		l1 := c.Evaluate(d1).Latency
		l2 := c.Evaluate(d2).Latency
		return l1 <= l2+1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyGrowsAtLowerPoint(t *testing.T) {
	hi := newMC(t, 1.6*vf.GHz)
	lo := newMC(t, 1.06*vf.GHz)
	if err := lo.SetOperatingPoint(0.53*vf.GHz, 0.76); err != nil {
		t.Fatal(err)
	}
	const demand = 6e9
	lh := hi.Evaluate(demand).Latency
	ll := lo.Evaluate(demand).Latency
	if ll <= lh {
		t.Fatalf("low-point latency (%v) not above high-point (%v)", ll, lh)
	}
	// §2.4's trade-off is bounded: for a mid-range demand the loaded
	// latency grows tens of percent, not multiples.
	if ll > 1.6*lh {
		t.Fatalf("latency ratio %.2f unreasonably large", ll/lh)
	}
}

func TestBlockedServesNothing(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	c.Block()
	if !c.Blocked() {
		t.Fatal("not blocked")
	}
	ep := c.Evaluate(1e9)
	if ep.AchievedBytes != 0 || !math.IsInf(ep.Latency, 1) {
		t.Fatal("blocked controller served traffic")
	}
	c.Release()
	if c.Blocked() {
		t.Fatal("still blocked")
	}
	if c.Evaluate(1e9).AchievedBytes != 1e9 {
		t.Fatal("released controller did not serve")
	}
}

func TestSelfRefreshServesNothing(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	c.Device().EnterSelfRefresh()
	if ep := c.Evaluate(1e9); ep.AchievedBytes != 0 {
		t.Fatal("self-refresh DRAM served traffic")
	}
}

func TestRPQOccupancyLittlesLaw(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	ep := c.Evaluate(6.4e9) // 100M requests/s at 64B
	want := ep.AchievedBytes / 64 * ep.Latency
	if math.Abs(ep.RPQOccupancy-want) > 1e-6 {
		t.Fatalf("RPQ occupancy = %v, want %v", ep.RPQOccupancy, want)
	}
	// Saturated: capped at queue capacity.
	over := c.Evaluate(1e12)
	if over.RPQOccupancy > float64(DefaultParams().QueueCapacity) {
		t.Fatal("occupancy exceeds queue capacity")
	}
}

func TestDetunedInterfaceLowersUsable(t *testing.T) {
	c := newMC(t, 1.06*vf.GHz)
	opt := c.UsableBandwidth()
	if err := c.Device().LoadTiming(dram.DetunedTiming(dram.LPDDR3, 1.6*vf.GHz, 1.06*vf.GHz)); err != nil {
		t.Fatal(err)
	}
	if det := c.UsableBandwidth(); det >= opt {
		t.Fatal("detuned interface did not lower the bandwidth ceiling")
	}
}

func TestPowerScalesWithVoltageAndLoad(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	pIdle := c.Power(0)
	pBusy := c.Power(1)
	if pBusy <= pIdle {
		t.Fatal("power not monotone in utilization")
	}
	if err := c.SetOperatingPoint(0.53*vf.GHz, 0.76); err != nil {
		t.Fatal(err)
	}
	pLow := c.Power(1)
	if pLow >= pBusy {
		t.Fatal("lower V/F did not reduce power")
	}
	// Joint V+f reduction should save much more than linearly (§2.4:
	// "approximately by a cubic factor").
	ratio := float64(pLow / pBusy)
	if ratio > 0.55 {
		t.Fatalf("power ratio %.2f too high for joint V/F scaling", ratio)
	}
}

func TestSetOperatingPointValidation(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	if err := c.SetOperatingPoint(0, 0.9); err == nil {
		t.Fatal("zero clock accepted")
	}
	if err := c.SetOperatingPoint(0.8*vf.GHz, 0); err == nil {
		t.Fatal("zero voltage accepted")
	}
}

func TestLastEpoch(t *testing.T) {
	c := newMC(t, 1.6*vf.GHz)
	c.Evaluate(3e9)
	if c.LastEpoch().AchievedBytes != 3e9 {
		t.Fatal("LastEpoch not recorded")
	}
}
