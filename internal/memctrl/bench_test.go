package memctrl

import (
	"testing"

	"sysscale/internal/dram"
	"sysscale/internal/vf"
)

// BenchmarkEvaluate measures the per-epoch cost of the controller's
// bandwidth/latency resolution — the hot path of the tick loop.
func BenchmarkEvaluate(b *testing.B) {
	d, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), 1.6*vf.GHz)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(DefaultParams(), d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Evaluate(float64(i%20) * 1e9)
	}
}

// BenchmarkPower measures the controller power model.
func BenchmarkPower(b *testing.B) {
	d, _ := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), 1.6*vf.GHz)
	c, _ := New(DefaultParams(), d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Power(float64(i%100) / 100)
	}
}
