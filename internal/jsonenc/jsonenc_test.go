package jsonenc

import (
	"encoding/json"
	"math"
	"testing"
)

// TestAppendFloatMatchesEncodingJSON pins the package contract: every
// appender emits exactly the bytes encoding/json would.
func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0, 4.5, 2.4e9, 1.6e9,
		1e-6, 9.999999e-7, 1e-7, 1e20, 1e21, 1.5e21, -1e-9, 6.5e9, 150e6,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.1 + 0.2, 1.05, 0.42,
	}
	for _, f := range floats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got, ok := AppendFloat(nil, f)
		if !ok {
			t.Fatalf("AppendFloat(%v): not ok", f)
		}
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := AppendFloat(nil, f); ok {
			t.Errorf("AppendFloat(%v) should report no JSON rendering", f)
		}
	}
}

func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	strings := []string{
		"", "plain", "with space", `quote " backslash \`,
		"tab\tnewline\ncr\rbell\bformfeed\f", "nul\x00esc\x1b",
		"<script>&amp;</script>", "héllo wörld", "日本語", "emoji 🚀",
		"line\u2028sep\u2029para", "invalid\xff\xfe utf8", "\x7f del",
	}
	for _, s := range strings {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestAppendScalarsMatchEncodingJSON(t *testing.T) {
	if got := string(AppendInt(nil, -42)); got != "-42" {
		t.Errorf("AppendInt(-42) = %s", got)
	}
	if got := string(AppendUint(nil, math.MaxUint64)); got != "18446744073709551615" {
		t.Errorf("AppendUint(max) = %s", got)
	}
	if got := string(AppendBool(nil, true)); got != "true" {
		t.Errorf("AppendBool(true) = %s", got)
	}
}
