// Package jsonenc provides allocation-free appenders for the canonical
// JSON encoding used by the job-spec layer (internal/spec) and the
// policy parameter codecs (internal/policy).
//
// The canonical form is defined as: the JSON produced by encoding/json
// for the normalized spec value, with object keys sorted and all
// insignificant whitespace removed. These appenders reproduce
// encoding/json's value renderings exactly — the same float shortening
// and exponent style, the same string escaping (including HTML-unsafe
// runes, with invalid UTF-8 escaped as U+FFFD) — so canonical bytes
// built directly from a
// live soc.Config byte-match the sort-and-compact of the marshaled
// spec. That equivalence is what makes the engine's cache key
// reproducible outside the process: any JSON implementation that can
// sort keys and keep number literals verbatim derives the same bytes.
package jsonenc

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// AppendFloat appends a float64 exactly as encoding/json renders it:
// the shortest representation that round-trips, formatted 'f' except
// for very large or very small magnitudes, which use 'e' with the
// exponent's leading zero trimmed. NaN and infinities have no JSON
// rendering; ok is false for them (encoding/json refuses to marshal
// such values, so they cannot appear in a spec file either).
func AppendFloat(b []byte, f float64) (_ []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// AppendInt appends a decimal int64 (identical to encoding/json).
func AppendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// AppendUint appends a decimal uint64 (identical to encoding/json).
func AppendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// AppendBool appends true or false.
func AppendBool(b []byte, v bool) []byte { return strconv.AppendBool(b, v) }

const hexDigits = "0123456789abcdef"

// AppendString appends a quoted JSON string exactly as encoding/json
// renders it with the default (HTML-escaping) encoder: control
// characters as \uXXXX (with \t, \n, \r shorthands), quote and
// backslash escaped, '<', '>' and '&' escaped for HTML safety, the
// line separators U+2028/U+2029 escaped for JavaScript safety, and
// invalid UTF-8 bytes written as the \ufffd escape.
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if safeASCII(c) {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Other control characters, plus <, > and &.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// safeASCII reports whether the byte passes through encoding/json's
// default encoder unescaped.
func safeASCII(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}
