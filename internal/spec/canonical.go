package spec

import (
	"crypto/sha256"
	"fmt"

	"sysscale/internal/jsonenc"
	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// This file produces the canonical bytes of a job — the sorted-key,
// whitespace-free JSON of its normalized spec — directly from a live
// soc.Config, without marshaling, sorting, or allocating. The key
// order below is the alphabetical order json.Marshal-then-canonicalize
// would produce, and TestAppendConfigMatchesCanonicalJSON holds the
// two byte-for-byte equal, so the cheap path and the documented
// definition can never drift apart.

// maxWrapDepth bounds the policy wrapper walk, mirroring the engine's
// Unwrap depth bound: a pathological self-wrapping policy makes the
// config unencodable rather than hanging the encoder.
const maxWrapDepth = 24

// AppendConfig appends cfg's canonical spec bytes to b. ok is false
// when the config has no canonical form: an unregistered policy type,
// an out-of-range enum value, or a float with no JSON rendering (NaN,
// ±Inf) — such configs are uncacheable. On !ok the returned slice is
// b with partial output appended; callers must discard it.
func AppendConfig(b []byte, cfg soc.Config) (_ []byte, ok bool) {
	// knobs
	b = append(b, `{"knobs":{"disable_pbm_memo":`...)
	b = jsonenc.AppendBool(b, cfg.DisablePBMMemo)
	b = append(b, `,"disable_span_batching":`...)
	b = jsonenc.AppendBool(b, cfg.DisableSpanBatching)
	b = append(b, `,"disable_span_cache":`...)
	b = jsonenc.AppendBool(b, cfg.DisableSpanCache)
	b = append(b, `,"disable_tick_memo":`...)
	b = jsonenc.AppendBool(b, cfg.DisableTickMemo)

	// platform
	b = append(b, `},"platform":{"csr":{"camera":`...)
	if !knownCamera(cfg.CSR.Camera) {
		return b, false
	}
	b = jsonenc.AppendString(b, cfg.CSR.Camera.String())
	b = append(b, `,"panels":[`...)
	for i, p := range cfg.CSR.Panels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"refresh_hz":`...)
		if b, ok = jsonenc.AppendFloat(b, p.RefreshHz); !ok {
			return b, false
		}
		b = append(b, `,"res":`...)
		if !knownResolution(p.Res) {
			return b, false
		}
		b = jsonenc.AppendString(b, p.Res.String())
		b = append(b, '}')
	}
	b = append(b, `]},"dram":`...)
	if !knownDRAM(cfg.DRAMKind) {
		return b, false
	}
	b = jsonenc.AppendString(b, cfg.DRAMKind.String())
	b = append(b, `,"ladder":[`...)
	for i, op := range cfg.Ladder {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"ddr_hz":`...)
		if b, ok = jsonenc.AppendFloat(b, float64(op.DDR)); !ok {
			return b, false
		}
		b = append(b, `,"interco_hz":`...)
		if b, ok = jsonenc.AppendFloat(b, float64(op.Interco)); !ok {
			return b, false
		}
		b = append(b, `,"mc_hz":`...)
		if b, ok = jsonenc.AppendFloat(b, float64(op.MC)); !ok {
			return b, false
		}
		b = append(b, `,"name":`...)
		b = jsonenc.AppendString(b, op.Name)
		b = append(b, `,"vio":`...)
		if b, ok = jsonenc.AppendFloat(b, float64(op.VIO)); !ok {
			return b, false
		}
		b = append(b, `,"vsa":`...)
		if b, ok = jsonenc.AppendFloat(b, float64(op.VSA)); !ok {
			return b, false
		}
		b = append(b, '}')
	}
	b = append(b, `],"tdp_watts":`...)
	if b, ok = jsonenc.AppendFloat(b, float64(cfg.TDP)); !ok {
		return b, false
	}

	// policy
	b = append(b, `},"policy":`...)
	if b, ok = appendPolicy(b, cfg.Policy); !ok {
		return b, false
	}

	// run
	b = append(b, `,"run":{"duration_ns":`...)
	b = jsonenc.AppendInt(b, int64(cfg.Duration))
	b = append(b, `,"eval_interval_ns":`...)
	b = jsonenc.AppendInt(b, int64(cfg.EvalInterval))
	b = append(b, `,"fixed_core_hz":`...)
	if b, ok = jsonenc.AppendFloat(b, float64(cfg.FixedCoreFreq)); !ok {
		return b, false
	}
	b = append(b, `,"fixed_gfx_hz":`...)
	if b, ok = jsonenc.AppendFloat(b, float64(cfg.FixedGfxFreq)); !ok {
		return b, false
	}
	b = append(b, `,"record_events":`...)
	b = jsonenc.AppendBool(b, cfg.RecordEvents)
	b = append(b, `,"sample_interval_ns":`...)
	b = jsonenc.AppendInt(b, int64(cfg.SampleInterval))
	b = append(b, `,"seed":`...)
	b = jsonenc.AppendUint(b, cfg.Seed)
	b = append(b, `,"trace_power":`...)
	b = jsonenc.AppendBool(b, cfg.TracePower)

	// version, workload
	b = append(b, `},"version":`...)
	b = jsonenc.AppendInt(b, Version)
	b = append(b, `,"workload":{"inline":`...)
	if b, ok = appendWorkload(b, cfg.Workload); !ok {
		return b, false
	}
	return append(b, '}', '}'), true
}

// appendPolicy emits the policy object: the registered family name,
// canonical params, and the wrapper list when decorators are present.
func appendPolicy(b []byte, p soc.Policy) (_ []byte, ok bool) {
	if p == nil {
		return b, false
	}
	// Find the base policy under the decorators without materializing
	// the wrapper list ("name" sorts before "wrap").
	base := p
	wrapped := false
	for depth := 0; ; depth++ {
		if depth > maxWrapDepth {
			return b, false
		}
		if _, isWrap := policy.WrapperNameFor(base); !isWrap {
			break
		}
		u, hasUnwrap := base.(interface{ Unwrap() soc.Policy })
		if !hasUnwrap {
			return b, false
		}
		wrapped = true
		base = u.Unwrap()
	}
	name, codec, found := policy.CodecFor(base)
	if !found {
		return b, false
	}
	b = append(b, `{"name":`...)
	b = jsonenc.AppendString(b, name)
	b = append(b, `,"params":`...)
	if b, ok = codec.AppendParams(b, base); !ok {
		return b, false
	}
	if wrapped {
		b = append(b, `,"wrap":[`...)
		first := true
		for w := p; w != base; {
			wname, isWrap := policy.WrapperNameFor(w)
			if !isWrap {
				return b, false
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = jsonenc.AppendString(b, wname)
			w = w.(interface{ Unwrap() soc.Policy }).Unwrap()
		}
		b = append(b, ']')
	}
	return append(b, '}'), true
}

// appendWorkload emits the inline workload in workload's JSON wire
// format (Go field names; the structs carry no tags), keys sorted.
func appendWorkload(b []byte, w workload.Workload) (_ []byte, ok bool) {
	if !knownClass(w.Class) {
		return b, false
	}
	b = append(b, `{"Class":`...)
	b = jsonenc.AppendString(b, w.Class.String())
	b = append(b, `,"Name":`...)
	b = jsonenc.AppendString(b, w.Name)
	b = append(b, `,"Phases":`...)
	if len(w.Phases) == 0 {
		// Encode normalizes an empty phase list to nil, which marshals
		// as null; match it (such configs fail Validate anyway).
		b = append(b, `null`...)
		return append(b, '}'), true
	}
	b = append(b, '[')
	for i, p := range w.Phases {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"ActiveCores":`...)
		b = jsonenc.AppendInt(b, int64(p.ActiveCores))
		b = append(b, `,"CoreActivity":`...)
		if b, ok = jsonenc.AppendFloat(b, p.CoreActivity); !ok {
			return b, false
		}
		b = append(b, `,"CoreFrac":`...)
		if b, ok = jsonenc.AppendFloat(b, p.CoreFrac); !ok {
			return b, false
		}
		b = append(b, `,"Duration":`...)
		b = jsonenc.AppendInt(b, int64(p.Duration))
		b = append(b, `,"GfxActivity":`...)
		if b, ok = jsonenc.AppendFloat(b, p.GfxActivity); !ok {
			return b, false
		}
		b = append(b, `,"GfxFrac":`...)
		if b, ok = jsonenc.AppendFloat(b, p.GfxFrac); !ok {
			return b, false
		}
		b = append(b, `,"IOBW":`...)
		if b, ok = jsonenc.AppendFloat(b, p.IOBW); !ok {
			return b, false
		}
		b = append(b, `,"IOFrac":`...)
		if b, ok = jsonenc.AppendFloat(b, p.IOFrac); !ok {
			return b, false
		}
		b = append(b, `,"MemBW":`...)
		if b, ok = jsonenc.AppendFloat(b, p.MemBW); !ok {
			return b, false
		}
		b = append(b, `,"MemBWFrac":`...)
		if b, ok = jsonenc.AppendFloat(b, p.MemBWFrac); !ok {
			return b, false
		}
		b = append(b, `,"MemLatFrac":`...)
		if b, ok = jsonenc.AppendFloat(b, p.MemLatFrac); !ok {
			return b, false
		}
		b = append(b, `,"Residency":{"C0":`...)
		if b, ok = jsonenc.AppendFloat(b, p.Residency.C0); !ok {
			return b, false
		}
		b = append(b, `,"C2":`...)
		if b, ok = jsonenc.AppendFloat(b, p.Residency.C2); !ok {
			return b, false
		}
		b = append(b, `,"C6":`...)
		if b, ok = jsonenc.AppendFloat(b, p.Residency.C6); !ok {
			return b, false
		}
		b = append(b, `,"C8":`...)
		if b, ok = jsonenc.AppendFloat(b, p.Residency.C8); !ok {
			return b, false
		}
		b = append(b, '}', '}')
	}
	b = append(b, ']')
	return append(b, '}'), true
}

// Canonical returns the canonical bytes of a job: the sorted-key,
// compact JSON of its normalized form. Two specs that decode to the
// same runnable config have the same canonical bytes regardless of how
// they were written (builtin versus inline workload, omitted versus
// explicit defaults, key order, whitespace).
func Canonical(job Job) ([]byte, error) {
	cfg, err := Decode(job)
	if err != nil {
		return nil, err
	}
	b, ok := AppendConfig(nil, cfg)
	if !ok {
		return nil, fmt.Errorf("spec: config has no canonical form")
	}
	return b, nil
}

// Fingerprint returns sha256(Canonical(job)) — the documented job
// identity. The engine's in-memory result cache keys on this value,
// and it is the intended key for the future content-addressed on-disk
// result tier (ROADMAP item 2): stable across processes, machines and
// languages, because the canonical bytes are defined by the wire
// format, not by Go's in-memory representation.
func Fingerprint(job Job) ([sha256.Size]byte, error) {
	b, err := Canonical(job)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return sha256.Sum256(b), nil
}
