package spec

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestReadJobRejectsTrailingData: a spec file holding more than one
// JSON value (concatenated documents, a partially overwritten file)
// must fail loudly — historically ReadJob decoded the first value and
// silently ignored the rest, so a corrupted sweep input half-ran.
func TestReadJobRejectsTrailingData(t *testing.T) {
	job, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	if err := WriteJob(&one, job); err != nil {
		t.Fatal(err)
	}

	t.Run("concatenated documents", func(t *testing.T) {
		two := one.String() + one.String()
		if _, err := ReadJob(strings.NewReader(two)); err == nil {
			t.Fatalf("ReadJob accepted two concatenated job documents")
		} else if !strings.Contains(err.Error(), "trailing") {
			t.Errorf("error does not name the trailing data: %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := ReadJob(strings.NewReader(one.String() + "garbage")); err == nil {
			t.Fatalf("ReadJob accepted trailing non-JSON data")
		}
	})
	t.Run("trailing whitespace ok", func(t *testing.T) {
		if _, err := ReadJob(strings.NewReader(one.String() + " \n\t\n")); err != nil {
			t.Fatalf("ReadJob rejected trailing whitespace: %v", err)
		}
	})
}

// TestReadJobSizeBound: a document over MaxDocBytes must fail with
// ErrDocTooLarge instead of buffering unbounded input — the decoder is
// network-facing now (the sweep service feeds it request bodies). The
// oversized inputs are built from legal JSON whitespace so only the
// byte bound, not the grammar, can reject them.
func TestReadJobSizeBound(t *testing.T) {
	pad := strings.Repeat(" ", MaxDocBytes+2)

	t.Run("oversized job", func(t *testing.T) {
		// Whitespace between tokens is valid JSON, so without the bound
		// this would decode cleanly after buffering >16 MiB.
		doc := `{"version":` + pad + `1}`
		if _, err := ReadJob(strings.NewReader(doc)); !errors.Is(err, ErrDocTooLarge) {
			t.Fatalf("oversized job error = %v, want ErrDocTooLarge", err)
		}
	})
	t.Run("oversized array", func(t *testing.T) {
		doc := "[" + pad + "]"
		if _, err := ReadJobs(strings.NewReader(doc)); !errors.Is(err, ErrDocTooLarge) {
			t.Fatalf("oversized array error = %v, want ErrDocTooLarge", err)
		}
	})
	t.Run("unbounded stream stops at the limit", func(t *testing.T) {
		// An endless reader must fail after ~MaxDocBytes, not hang or
		// grow: the counting reader proves consumption stopped.
		endless := &countingReader{r: repeatReader{' '}}
		if _, err := ReadJob(endless); !errors.Is(err, ErrDocTooLarge) {
			t.Fatalf("endless input error = %v, want ErrDocTooLarge", err)
		}
		if endless.n > MaxDocBytes+1 {
			t.Fatalf("decoder consumed %d bytes, over the %d limit", endless.n, MaxDocBytes+1)
		}
	})
	t.Run("bound not charged to valid specs", func(t *testing.T) {
		job, err := Encode(baseConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		var one bytes.Buffer
		if err := WriteJob(&one, job); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJob(bytes.NewReader(one.Bytes())); err != nil {
			t.Fatalf("in-bound spec rejected: %v", err)
		}
		if _, err := ReadJobs(strings.NewReader("[" + one.String() + "," + one.String() + "]")); err != nil {
			t.Fatalf("in-bound spec array rejected: %v", err)
		}
	})
}

// repeatReader yields one byte forever.
type repeatReader struct{ b byte }

func (r repeatReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.b
	}
	return len(p), nil
}

// TestReadJobs covers the sweep-batch wire form: arrays round-trip,
// unknown fields and trailing content are rejected exactly as for
// single documents.
func TestReadJobs(t *testing.T) {
	job, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	if err := WriteJob(&one, job); err != nil {
		t.Fatal(err)
	}
	doc := "[" + one.String() + "," + one.String() + "]"

	jobs, err := ReadJobs(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("decoded %d jobs, want 2", len(jobs))
	}
	for i, got := range jobs {
		if _, err := Decode(got); err != nil {
			t.Fatalf("job %d does not decode: %v", i, err)
		}
	}

	if _, err := ReadJobs(strings.NewReader(doc + "garbage")); err == nil {
		t.Fatal("ReadJobs accepted trailing data")
	}
	if _, err := ReadJobs(strings.NewReader(`[{"version":1,"bogus":{}}]`)); err == nil {
		t.Fatal("ReadJobs accepted an unknown field")
	}
	empty, err := ReadJobs(strings.NewReader("[]"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty array = (%v, %v), want ([], nil)", empty, err)
	}
}
