package spec

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadJobRejectsTrailingData: a spec file holding more than one
// JSON value (concatenated documents, a partially overwritten file)
// must fail loudly — historically ReadJob decoded the first value and
// silently ignored the rest, so a corrupted sweep input half-ran.
func TestReadJobRejectsTrailingData(t *testing.T) {
	job, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var one bytes.Buffer
	if err := WriteJob(&one, job); err != nil {
		t.Fatal(err)
	}

	t.Run("concatenated documents", func(t *testing.T) {
		two := one.String() + one.String()
		if _, err := ReadJob(strings.NewReader(two)); err == nil {
			t.Fatalf("ReadJob accepted two concatenated job documents")
		} else if !strings.Contains(err.Error(), "trailing") {
			t.Errorf("error does not name the trailing data: %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := ReadJob(strings.NewReader(one.String() + "garbage")); err == nil {
			t.Fatalf("ReadJob accepted trailing non-JSON data")
		}
	})
	t.Run("trailing whitespace ok", func(t *testing.T) {
		if _, err := ReadJob(strings.NewReader(one.String() + " \n\t\n")); err != nil {
			t.Fatalf("ReadJob rejected trailing whitespace: %v", err)
		}
	})
}
