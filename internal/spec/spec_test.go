package spec

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"sysscale/internal/ioengine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
	"sysscale/internal/workload/gen"
)

func vfNaN() vf.Hz { return vf.Hz(math.NaN()) }

// experimentPolicies covers every policy shape internal/experiments
// constructs: all five families, the -Redist variants, and both
// ablation wrappers.
func experimentPolicies() []soc.Policy {
	thr := policy.DefaultThresholds()
	thr.LLCStalls *= 1.5
	return []soc.Policy{
		policy.NewBaseline(),
		policy.NewSysScaleDefault(),
		policy.NewSysScale(thr),
		policy.NewMemScale(),
		policy.NewMemScaleRedist(),
		policy.NewCoScale(),
		policy.NewCoScaleRedist(),
		policy.NewStaticPoint(0, false),
		policy.NewStaticPoint(1, true),
		&policy.StaticPoint{PointIndex: 1, OptimizedMRC: false, Redistribute: false},
		policy.WithoutOptimizedMRC(policy.NewSysScaleDefault()),
		policy.WithoutRedistribution(policy.NewSysScaleDefault()),
		policy.WithoutRedistribution(policy.WithoutOptimizedMRC(policy.NewSysScaleDefault())),
	}
}

// testWorkloads is a cross-class sample of the shipped suites.
func testWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	names := []string{"473.astar", "429.mcf", "3DMark06", "web-browsing", "office-productivity", "stream"}
	ws := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, err := workload.Builtin(n)
		if err != nil {
			t.Fatalf("Builtin(%s): %v", n, err)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ws := testWorkloads(t)
	for _, p := range experimentPolicies() {
		for _, w := range ws {
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Policy = p
			job, err := Encode(cfg)
			if err != nil {
				t.Fatalf("Encode(%s/%s): %v", p.Name(), w.Name, err)
			}
			back, err := Decode(job)
			if err != nil {
				t.Fatalf("Decode(%s/%s): %v", p.Name(), w.Name, err)
			}
			if !reflect.DeepEqual(back, cfg) {
				t.Errorf("%s/%s: Decode(Encode(cfg)) != cfg\n got %#v\nwant %#v", p.Name(), w.Name, back, cfg)
			}
		}
	}
}

// TestDecodeEncodeResultsIdentical is the acceptance check: running
// the round-tripped config produces a bit-identical Result for every
// experiments policy shape.
func TestDecodeEncodeResultsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	w, err := workload.Builtin("web-browsing")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range experimentPolicies() {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = p
		cfg.Duration = 300 * sim.Millisecond
		job, err := Encode(cfg)
		if err != nil {
			t.Fatalf("Encode(%s): %v", p.Name(), err)
		}
		back, err := Decode(job)
		if err != nil {
			t.Fatalf("Decode(%s): %v", p.Name(), err)
		}
		want, err := soc.Run(cfg)
		if err != nil {
			t.Fatalf("Run(original %s): %v", p.Name(), err)
		}
		got, err := soc.Run(back)
		if err != nil {
			t.Fatalf("Run(round-tripped %s): %v", p.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round-tripped config produced a different Result", p.Name())
		}
	}
}

// TestAppendConfigMatchesCanonicalJSON pins the canonical-bytes
// contract: the zero-alloc direct encoder emits exactly the
// sorted-and-compacted json.Marshal of the normalized spec.
func TestAppendConfigMatchesCanonicalJSON(t *testing.T) {
	ws := testWorkloads(t)
	for _, p := range experimentPolicies() {
		for _, w := range ws {
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Policy = p
			cfg.Seed = 42
			cfg.TracePower = true
			cfg.DisableSpanCache = true
			job, err := Encode(cfg)
			if err != nil {
				t.Fatalf("Encode(%s/%s): %v", p.Name(), w.Name, err)
			}
			raw, err := json.Marshal(job)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			want, err := canonicalizeJSON(raw)
			if err != nil {
				t.Fatalf("canonicalize: %v", err)
			}
			got, ok := AppendConfig(nil, cfg)
			if !ok {
				t.Fatalf("AppendConfig(%s/%s): no canonical form", p.Name(), w.Name)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s: AppendConfig diverges from canonicalized marshal\n got %s\nwant %s",
					p.Name(), w.Name, got, want)
			}
		}
	}
}

// canonicalizeJSON re-marshals a JSON document through a number-
// preserving tree decode: keys come out sorted and whitespace-free
// while numeric literals stay byte-identical.
func canonicalizeJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	return json.Marshal(tree)
}

// TestCanonicalNormalizesWorkloadForms: a builtin reference and the
// equivalent inline workload fingerprint identically.
func TestCanonicalNormalizesWorkloadForms(t *testing.T) {
	cfg := soc.DefaultConfig()
	cfg.Policy = policy.NewSysScaleDefault()
	var err error
	cfg.Workload, err = workload.Builtin("stream")
	if err != nil {
		t.Fatal(err)
	}
	inlineJob, err := Encode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	builtinJob := inlineJob
	builtinJob.Workload = WorkloadRef{Builtin: "stream"}

	fpInline, err := Fingerprint(inlineJob)
	if err != nil {
		t.Fatal(err)
	}
	fpBuiltin, err := Fingerprint(builtinJob)
	if err != nil {
		t.Fatal(err)
	}
	if fpInline != fpBuiltin {
		t.Errorf("builtin and inline forms of the same job fingerprint differently")
	}

	traceJob := inlineJob
	traceJob.Workload = WorkloadRef{Trace: &TraceRef{
		Index: 1,
		Trace: gen.Trace{Version: gen.TraceVersion, Workloads: []workload.Workload{workload.Stream(), cfg.Workload}},
	}}
	fpTrace, err := Fingerprint(traceJob)
	if err != nil {
		t.Fatal(err)
	}
	if fpTrace != fpInline {
		t.Errorf("trace and inline forms of the same job fingerprint differently")
	}
}

func TestDecodeRejectsBadSpecs(t *testing.T) {
	good, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Version = 2
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted an unsupported version")
	}

	bad = good
	bad.Platform.DRAM = "HBM2"
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted an unknown DRAM kind")
	}

	bad = good
	bad.Platform.CSR.Panels[0].Res = "8K"
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted an unknown panel resolution")
	}

	bad = good
	bad.Policy.Name = "no-such-policy"
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted an unknown policy")
	}

	bad = good
	bad.Policy.Params = json.RawMessage(`{"bogus":true}`)
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted unknown policy params")
	}

	bad = good
	bad.Workload = WorkloadRef{}
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted a spec with no workload")
	}

	bad = good
	bad.Workload.Builtin = "also-builtin"
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted a spec with two workload forms")
	}

	bad = good
	bad.Run.DurationNS = 0
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted a zero duration (Validate must run)")
	}

	bad = good
	bad.Workload = WorkloadRef{Trace: &TraceRef{Index: 5, Trace: gen.Trace{Version: gen.TraceVersion, Workloads: []workload.Workload{workload.Stream()}}}}
	if _, err := Decode(bad); err == nil {
		t.Errorf("Decode accepted an out-of-range trace index")
	}
}

func baseConfig(t *testing.T) soc.Config {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Policy = policy.NewSysScaleDefault()
	w, err := workload.Builtin("stream")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = w
	return cfg
}

func TestReadJobRejectsUnknownFields(t *testing.T) {
	if _, err := ReadJob(strings.NewReader(`{"version":1,"bogus_section":{}}`)); err == nil {
		t.Errorf("ReadJob accepted an unknown top-level field")
	}
}

func TestReadWriteJob(t *testing.T) {
	job, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJob(&buf, job); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := Fingerprint(job)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := Fingerprint(back)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("WriteJob/ReadJob changed the job fingerprint")
	}
}

func TestEncodeRejectsUnregisteredPolicy(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Policy = unregisteredPolicy{}
	if _, err := Encode(cfg); err == nil {
		t.Errorf("Encode accepted an unregistered policy type")
	}
	if _, ok := AppendConfig(nil, cfg); ok {
		t.Errorf("AppendConfig produced canonical bytes for an unregistered policy")
	}
}

func TestAppendConfigRejectsNaN(t *testing.T) {
	cfg := baseConfig(t)
	cfg.TDP = soc.DefaultConfig().TDP
	cfg.FixedCoreFreq = vfNaN()
	if _, ok := AppendConfig(nil, cfg); ok {
		t.Errorf("AppendConfig produced canonical bytes for a NaN field")
	}
}

func TestAppendConfigDepthBound(t *testing.T) {
	cfg := baseConfig(t)
	for i := 0; i < maxWrapDepth+2; i++ {
		cfg.Policy = policy.WithoutOptimizedMRC(cfg.Policy)
	}
	if _, ok := AppendConfig(nil, cfg); ok {
		t.Errorf("AppendConfig accepted a wrapper chain beyond the depth bound")
	}
}

type unregisteredPolicy struct{}

func (unregisteredPolicy) Name() string      { return "unregistered" }
func (unregisteredPolicy) Reset()            {}
func (unregisteredPolicy) Clone() soc.Policy { return unregisteredPolicy{} }
func (unregisteredPolicy) Decide(soc.PolicyContext) soc.PolicyDecision {
	return soc.PolicyDecision{}
}

func TestPanelCountMatchesPlatform(t *testing.T) {
	if numPanels != ioengine.MaxPanels {
		t.Fatalf("spec panel count %d != platform %d", numPanels, ioengine.MaxPanels)
	}
}
