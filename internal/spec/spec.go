// Package spec defines the versioned, serializable job specification:
// a JSON document that round-trips every runnable soc.Config. A spec
// names the platform (TDP, DRAM kind, operating-point ladder, CSR),
// the workload (a built-in by name, an inline phase list, or an entry
// of a tracegen trace), the policy (by registry name with typed
// parameters and ablation wrappers), the run parameters, and the A/B
// knobs.
//
// Specs exist so a job has an identity outside the process: files the
// CLIs can run (`sysscale -spec job.json`), the payload a future sweep
// service accepts, and — through the canonical encoding — the engine's
// cache key. Decode validates through soc.Config.Validate, so a spec
// that decodes is a spec that runs.
//
// # Canonical encoding
//
// The canonical bytes of a job are the JSON of its normalized form
// (Encode of the decoded config: workload inlined, every field
// explicit, policy parameters fully populated) with object keys sorted
// and all insignificant whitespace removed, using encoding/json's
// value renderings (shortest round-trip floats, HTML-escaped strings).
// Fingerprint is the SHA-256 of those bytes and is the documented
// cache identity for the engine's result cache and any future on-disk
// tier: any process — in any language — that can decode a spec,
// normalize it the same way, sort keys and compact can reproduce the
// key. AppendConfig produces the same bytes allocation-free straight
// from a live soc.Config, which is what keeps the engine's hot path at
// its alloc gates.
//
// # Versioning
//
// Version is 1. Decode rejects documents whose version field is
// missing or different — forward compatibility is explicit re-encoding
// by a build that understands both versions, never silent
// reinterpretation, because the canonical bytes (and so every cache
// key) are defined per version.
package spec

import (
	"encoding/json"

	"sysscale/internal/ioengine"
	"sysscale/internal/workload"
	"sysscale/internal/workload/gen"
)

// Version is the spec wire-format version this build reads and writes.
const Version = 1

// numPanels mirrors the platform's display head count.
const numPanels = ioengine.MaxPanels

// Job is one serializable simulation job.
type Job struct {
	Version  int         `json:"version"`
	Platform Platform    `json:"platform"`
	Workload WorkloadRef `json:"workload"`
	Policy   Policy      `json:"policy"`
	Run      Run         `json:"run"`
	Knobs    Knobs       `json:"knobs"`
}

// Platform describes the simulated SoC and board.
type Platform struct {
	CSR      CSR     `json:"csr"`
	DRAM     string  `json:"dram"` // dram.Kind by name: "LPDDR3", "DDR4"
	Ladder   []Point `json:"ladder"`
	TDPWatts float64 `json:"tdp_watts"`
}

// Point is one IO+memory operating point, highest first in the ladder.
type Point struct {
	DDRHz     float64 `json:"ddr_hz"`
	IntercoHz float64 `json:"interco_hz"`
	MCHz      float64 `json:"mc_hz"`
	Name      string  `json:"name"`
	VIO       float64 `json:"vio"`
	VSA       float64 `json:"vsa"`
}

// CSR is the IO peripheral configuration: the display heads and the
// camera ISP mode, by name ("off", "HD", "FHD", "QHD", "4K"; camera
// "off", "720p", "1080p", "4K").
type CSR struct {
	Camera string              `json:"camera"`
	Panels [numPanels]PanelCfg `json:"panels"`
}

// PanelCfg is one display head.
type PanelCfg struct {
	RefreshHz float64 `json:"refresh_hz"`
	Res       string  `json:"res"`
}

// WorkloadRef selects the workload: exactly one of the three fields
// must be set. Builtin and Trace are input conveniences; Encode always
// produces the Inline form (the normalized spec has no external
// references).
type WorkloadRef struct {
	// Builtin names a shipped workload (see workload.BuiltinNames).
	Builtin string `json:"builtin,omitempty"`
	// Inline embeds the workload in workload's JSON wire format.
	Inline *workload.Workload `json:"inline,omitempty"`
	// Trace selects one workload out of an embedded tracegen trace.
	Trace *TraceRef `json:"trace,omitempty"`
}

// TraceRef embeds a tracegen trace and picks one of its workloads.
type TraceRef struct {
	Index int       `json:"index"`
	Trace gen.Trace `json:"trace"`
}

// Policy selects a registered policy family with typed parameters and
// an optional outermost-first list of ablation wrappers.
type Policy struct {
	Name string `json:"name"`
	// Params overlays the family's constructor defaults; omitted or
	// null means all defaults. Unknown fields are rejected.
	Params json.RawMessage `json:"params,omitempty"`
	Wrap   []string        `json:"wrap,omitempty"`
}

// Run carries the simulation run parameters. Durations are in
// nanoseconds (sim.Time's underlying unit).
type Run struct {
	DurationNS       int64   `json:"duration_ns"`
	EvalIntervalNS   int64   `json:"eval_interval_ns"`
	FixedCoreHz      float64 `json:"fixed_core_hz"`
	FixedGfxHz       float64 `json:"fixed_gfx_hz"`
	RecordEvents     bool    `json:"record_events"`
	SampleIntervalNS int64   `json:"sample_interval_ns"`
	Seed             uint64  `json:"seed"`
	TracePower       bool    `json:"trace_power"`
}

// Knobs carries the A/B verification knobs (soc.Config's Disable*
// fields). They are part of the job identity: flipping one changes the
// executed code path, and the benchmarks that compare paths must not
// share cache entries.
type Knobs struct {
	DisablePBMMemo      bool `json:"disable_pbm_memo"`
	DisableSpanBatching bool `json:"disable_span_batching"`
	DisableSpanCache    bool `json:"disable_span_cache"`
	DisableTickMemo     bool `json:"disable_tick_memo"`
}
