package spec

import (
	"encoding/json"
	"fmt"
	"strings"

	"sysscale/internal/dram"
	"sysscale/internal/ioengine"
	"sysscale/internal/policy"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
	"sysscale/internal/workload/gen"
)

// Enum name tables. The canonical names are the types' String()
// renderings; lookups accept any capitalization.

var dramKinds = []dram.Kind{dram.LPDDR3, dram.DDR4}

var resolutions = []ioengine.Resolution{
	ioengine.DisplayOff, ioengine.DisplayHD, ioengine.DisplayFHD,
	ioengine.DisplayQHD, ioengine.Display4K,
}

var cameraModes = []ioengine.CameraMode{
	ioengine.CameraOff, ioengine.Camera720p, ioengine.Camera1080p,
	ioengine.Camera4K,
}

var classes = []workload.Class{
	workload.CPUSingleThread, workload.CPUMultiThread, workload.Graphics,
	workload.Battery, workload.Micro,
}

func parseDRAM(name string) (dram.Kind, error) {
	for _, k := range dramKinds {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown DRAM kind %q", name)
}

func parseResolution(name string) (ioengine.Resolution, error) {
	for _, r := range resolutions {
		if strings.EqualFold(r.String(), name) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown panel resolution %q", name)
}

func parseCamera(name string) (ioengine.CameraMode, error) {
	for _, m := range cameraModes {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown camera mode %q", name)
}

func knownDRAM(k dram.Kind) bool {
	for _, known := range dramKinds {
		if k == known {
			return true
		}
	}
	return false
}

func knownResolution(r ioengine.Resolution) bool {
	for _, known := range resolutions {
		if r == known {
			return true
		}
	}
	return false
}

func knownCamera(m ioengine.CameraMode) bool {
	for _, known := range cameraModes {
		if m == known {
			return true
		}
	}
	return false
}

func knownClass(c workload.Class) bool {
	for _, known := range classes {
		if c == known {
			return true
		}
	}
	return false
}

// Encode converts a runnable config into its normalized spec: the
// workload inlined, every field explicit, the policy decomposed into
// its registered family name, fully-populated parameters and wrapper
// list. It fails when the config references something the spec layer
// cannot name — an unregistered policy type or an out-of-range enum.
func Encode(cfg soc.Config) (Job, error) {
	job := Job{Version: Version}

	if !knownDRAM(cfg.DRAMKind) {
		return Job{}, fmt.Errorf("spec: unencodable DRAM kind %v", cfg.DRAMKind)
	}
	job.Platform = Platform{
		DRAM:     cfg.DRAMKind.String(),
		TDPWatts: float64(cfg.TDP),
		Ladder:   make([]Point, len(cfg.Ladder)),
	}
	for i, op := range cfg.Ladder {
		job.Platform.Ladder[i] = Point{
			DDRHz:     float64(op.DDR),
			IntercoHz: float64(op.Interco),
			MCHz:      float64(op.MC),
			Name:      op.Name,
			VIO:       float64(op.VIO),
			VSA:       float64(op.VSA),
		}
	}
	if !knownCamera(cfg.CSR.Camera) {
		return Job{}, fmt.Errorf("spec: unencodable camera mode %v", cfg.CSR.Camera)
	}
	job.Platform.CSR.Camera = cfg.CSR.Camera.String()
	for i, p := range cfg.CSR.Panels {
		if !knownResolution(p.Res) {
			return Job{}, fmt.Errorf("spec: unencodable panel resolution %v", p.Res)
		}
		job.Platform.CSR.Panels[i] = PanelCfg{RefreshHz: p.RefreshHz, Res: p.Res.String()}
	}

	if !knownClass(cfg.Workload.Class) {
		return Job{}, fmt.Errorf("spec: unencodable workload class %v", cfg.Workload.Class)
	}
	// Copy the phase slice so the job doesn't alias the config's
	// backing array; empty normalizes to nil (canonical null).
	wl := cfg.Workload
	wl.Phases = append([]workload.Phase(nil), cfg.Workload.Phases...)
	job.Workload.Inline = &wl

	if cfg.Policy == nil {
		return Job{}, fmt.Errorf("spec: nil policy")
	}
	name, params, wrap, ok := policy.Deconstruct(cfg.Policy)
	if !ok {
		return Job{}, fmt.Errorf("spec: policy type %T is not registered", cfg.Policy)
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return Job{}, fmt.Errorf("spec: marshal %s params: %w", name, err)
	}
	job.Policy = Policy{Name: name, Params: raw, Wrap: wrap}

	job.Run = Run{
		DurationNS:       int64(cfg.Duration),
		EvalIntervalNS:   int64(cfg.EvalInterval),
		FixedCoreHz:      float64(cfg.FixedCoreFreq),
		FixedGfxHz:       float64(cfg.FixedGfxFreq),
		RecordEvents:     cfg.RecordEvents,
		SampleIntervalNS: int64(cfg.SampleInterval),
		Seed:             cfg.Seed,
		TracePower:       cfg.TracePower,
	}
	job.Knobs = Knobs{
		DisablePBMMemo:      cfg.DisablePBMMemo,
		DisableSpanBatching: cfg.DisableSpanBatching,
		DisableSpanCache:    cfg.DisableSpanCache,
		DisableTickMemo:     cfg.DisableTickMemo,
	}
	return job, nil
}

// Decode converts a spec into a runnable config, resolving the
// workload reference and building the policy through the registry. The
// result is validated through soc.Config.Validate (including the
// policy's PolicyValidator), so a decoded config is a runnable one.
func Decode(job Job) (soc.Config, error) {
	if job.Version != Version {
		return soc.Config{}, fmt.Errorf("spec: unsupported version %d (this build reads version %d)", job.Version, Version)
	}

	var cfg soc.Config
	kind, err := parseDRAM(job.Platform.DRAM)
	if err != nil {
		return soc.Config{}, err
	}
	cfg.DRAMKind = kind
	cfg.TDP = power.Watt(job.Platform.TDPWatts)
	cfg.Ladder = make([]vf.OperatingPoint, len(job.Platform.Ladder))
	for i, p := range job.Platform.Ladder {
		cfg.Ladder[i] = vf.OperatingPoint{
			Name:    p.Name,
			DDR:     vf.Hz(p.DDRHz),
			MC:      vf.Hz(p.MCHz),
			Interco: vf.Hz(p.IntercoHz),
			VSA:     vf.Volt(p.VSA),
			VIO:     vf.Volt(p.VIO),
		}
	}
	camera, err := parseCamera(job.Platform.CSR.Camera)
	if err != nil {
		return soc.Config{}, err
	}
	cfg.CSR.Camera = camera
	for i, p := range job.Platform.CSR.Panels {
		res, err := parseResolution(p.Res)
		if err != nil {
			return soc.Config{}, fmt.Errorf("panel %d: %w", i, err)
		}
		cfg.CSR.Panels[i] = ioengine.Panel{Res: res, RefreshHz: p.RefreshHz}
	}

	wl, err := resolveWorkload(job.Workload)
	if err != nil {
		return soc.Config{}, err
	}
	cfg.Workload = wl

	pol, err := policy.Build(job.Policy.Name, job.Policy.Params, job.Policy.Wrap)
	if err != nil {
		return soc.Config{}, fmt.Errorf("spec: %w", err)
	}
	cfg.Policy = pol

	cfg.Duration = sim.Time(job.Run.DurationNS)
	cfg.EvalInterval = sim.Time(job.Run.EvalIntervalNS)
	cfg.SampleInterval = sim.Time(job.Run.SampleIntervalNS)
	cfg.FixedCoreFreq = vf.Hz(job.Run.FixedCoreHz)
	cfg.FixedGfxFreq = vf.Hz(job.Run.FixedGfxHz)
	cfg.Seed = job.Run.Seed
	cfg.RecordEvents = job.Run.RecordEvents
	cfg.TracePower = job.Run.TracePower

	cfg.DisablePBMMemo = job.Knobs.DisablePBMMemo
	cfg.DisableSpanBatching = job.Knobs.DisableSpanBatching
	cfg.DisableSpanCache = job.Knobs.DisableSpanCache
	cfg.DisableTickMemo = job.Knobs.DisableTickMemo

	if err := cfg.Validate(); err != nil {
		return soc.Config{}, err
	}
	return cfg, nil
}

// resolveWorkload materializes the workload reference; exactly one of
// the three forms must be present.
func resolveWorkload(ref WorkloadRef) (workload.Workload, error) {
	set := 0
	if ref.Builtin != "" {
		set++
	}
	if ref.Inline != nil {
		set++
	}
	if ref.Trace != nil {
		set++
	}
	if set != 1 {
		return workload.Workload{}, fmt.Errorf("spec: workload must set exactly one of builtin, inline, trace (got %d)", set)
	}
	switch {
	case ref.Builtin != "":
		return workload.Builtin(ref.Builtin)
	case ref.Inline != nil:
		return *ref.Inline, nil
	default:
		t := ref.Trace.Trace
		if t.Version != gen.TraceVersion {
			return workload.Workload{}, fmt.Errorf("spec: unsupported trace version %d", t.Version)
		}
		if ref.Trace.Index < 0 || ref.Trace.Index >= len(t.Workloads) {
			return workload.Workload{}, fmt.Errorf("spec: trace index %d outside [0,%d)", ref.Trace.Index, len(t.Workloads))
		}
		return t.Workloads[ref.Trace.Index], nil
	}
}
