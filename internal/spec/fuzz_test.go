package spec

import (
	"bytes"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// FuzzDecodeSpec drives ReadJob+Decode with arbitrary input: the pair
// must never panic, and any document they accept must reach a decode/
// encode/decode fixpoint — re-encoding the decoded config and decoding
// again yields the identical config and identical canonical bytes, so
// spec files can be normalized any number of times without drifting
// and a job's fingerprint does not depend on which round wrote it.
func FuzzDecodeSpec(f *testing.F) {
	// Seed the corpus with real encodings across the spec's variant
	// axes: several policy shapes, a builtin reference, and a trace.
	seeds := []soc.Policy{
		policy.NewBaseline(),
		policy.NewSysScaleDefault(),
		policy.NewCoScaleRedist(),
		policy.WithoutRedistribution(policy.WithoutOptimizedMRC(policy.NewSysScaleDefault())),
	}
	for _, p := range seeds {
		cfg := soc.DefaultConfig()
		cfg.Policy = p
		cfg.Workload = workload.Stream()
		job, err := Encode(cfg)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJob(&buf, job); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"platform":{"dram":"LPDDR3"},"workload":{"builtin":"stream"},"policy":{"name":"sysscale"}}`))
	f.Add([]byte(`{"version":1,"workload":{"trace":{"index":0,"trace":{"version":1,"workloads":[]}}}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"policy":{"name":"sysscale","params":{"high_scale":-1}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := ReadJob(bytes.NewReader(data))
		if err != nil {
			return
		}
		cfg, err := Decode(job)
		if err != nil {
			return
		}
		// Accepted spec: it must normalize to a fixpoint.
		norm, err := Encode(cfg)
		if err != nil {
			t.Fatalf("Encode of accepted config failed: %v\ninput: %q", err, data)
		}
		cfg2, err := Decode(norm)
		if err != nil {
			t.Fatalf("Decode of normalized spec failed: %v\ninput: %q", err, data)
		}
		b1, ok := AppendConfig(nil, cfg)
		if !ok {
			t.Fatalf("accepted config has no canonical form\ninput: %q", data)
		}
		b2, ok := AppendConfig(nil, cfg2)
		if !ok {
			t.Fatalf("normalized config has no canonical form\ninput: %q", data)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("decode/encode/decode not a fixpoint:\nfirst:  %s\nsecond: %s", b1, b2)
		}
	})
}
