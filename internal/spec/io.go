package spec

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadJob decodes one job spec from r. Unknown fields are rejected —
// a typo in a knob name must fail loudly, not silently run the
// default — and so is anything but whitespace after the document: a
// concatenated or half-overwritten spec file must not silently run
// only its first value. The document is not otherwise validated;
// Decode is where semantic validation happens.
func ReadJob(r io.Reader) (Job, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var job Job
	if err := dec.Decode(&job); err != nil {
		return Job{}, fmt.Errorf("spec: decode: %w", err)
	}
	// json.Decoder stops at the first complete value; probing for a
	// second token distinguishes clean EOF (trailing whitespace only)
	// from trailing content.
	if _, err := dec.Token(); err != io.EOF {
		return Job{}, fmt.Errorf("spec: decode: trailing data after job spec (one document per file)")
	}
	return job, nil
}

// WriteJob encodes a job spec (indented) to w. The output is readable
// back via ReadJob; it is not the canonical encoding (see Canonical),
// just a human-friendly rendering of the same document.
func WriteJob(w io.Writer, job Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(job)
}
