package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxDocBytes bounds the size of any single document ReadJob or
// ReadJobs will decode: 16 MiB. Specs are small — even one embedding a
// generated trace is a few hundred KiB — so the bound exists purely so
// a malformed or hostile payload (a network request body, a corrupted
// file) cannot make the decoder buffer unbounded input. Documents over
// the bound fail with an ErrDocTooLarge-classed error; test with
// errors.Is.
const MaxDocBytes = 16 << 20

// ErrDocTooLarge classes a spec document rejected for exceeding
// MaxDocBytes before a complete value was decoded.
var ErrDocTooLarge = errors.New("spec: document exceeds size limit")

// readDoc decodes one JSON document from r into v with the shared
// contract: unknown fields rejected, trailing non-whitespace rejected,
// and at most MaxDocBytes consumed. The size bound is checked against
// bytes actually drawn from r, so a document padded with valid JSON
// whitespace cannot slip under it.
func readDoc(r io.Reader, v any) error {
	cr := &countingReader{r: r}
	dec := json.NewDecoder(io.LimitReader(cr, MaxDocBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if cr.n > MaxDocBytes {
			return fmt.Errorf("%w (%d-byte limit)", ErrDocTooLarge, MaxDocBytes)
		}
		return fmt.Errorf("spec: decode: %w", err)
	}
	// json.Decoder stops at the first complete value; probing for a
	// second token distinguishes clean EOF (trailing whitespace only)
	// from trailing content.
	if _, err := dec.Token(); err != io.EOF {
		if cr.n > MaxDocBytes {
			return fmt.Errorf("%w (%d-byte limit)", ErrDocTooLarge, MaxDocBytes)
		}
		return fmt.Errorf("spec: decode: trailing data after document (one document per input)")
	}
	return nil
}

// countingReader counts the bytes drawn from the underlying reader so
// readDoc can tell "input truncated by the size limit" apart from a
// genuinely malformed document.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReadJob decodes one job spec from r. Unknown fields are rejected —
// a typo in a knob name must fail loudly, not silently run the
// default — and so is anything but whitespace after the document: a
// concatenated or half-overwritten spec file must not silently run
// only its first value. Input is bounded at MaxDocBytes (a hostile
// payload cannot OOM the decoder). The document is not otherwise
// validated; Decode is where semantic validation happens.
func ReadJob(r io.Reader) (Job, error) {
	var job Job
	if err := readDoc(r, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// ReadJobs decodes a JSON array of job specs from r — the sweep-batch
// wire form — under the same contract as ReadJob: unknown fields and
// trailing content rejected, input bounded at MaxDocBytes. An empty
// array decodes to an empty slice; semantic validation is per-job via
// Decode.
func ReadJobs(r io.Reader) ([]Job, error) {
	var jobs []Job
	if err := readDoc(r, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// WriteJob encodes a job spec (indented) to w. The output is readable
// back via ReadJob; it is not the canonical encoding (see Canonical),
// just a human-friendly rendering of the same document.
func WriteJob(w io.Writer, job Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(job)
}
