package spec

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadJob decodes one job spec from r. Unknown fields are rejected —
// a typo in a knob name must fail loudly, not silently run the
// default — but the document is not otherwise validated; Decode is
// where semantic validation happens.
func ReadJob(r io.Reader) (Job, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var job Job
	if err := dec.Decode(&job); err != nil {
		return Job{}, fmt.Errorf("spec: decode: %w", err)
	}
	return job, nil
}

// WriteJob encodes a job spec (indented) to w. The output is readable
// back via ReadJob; it is not the canonical encoding (see Canonical),
// just a human-friendly rendering of the same document.
func WriteJob(w io.Writer, job Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(job)
}
