// Package pmu models the power-management unit firmware: the DVFS
// transition flow of Fig. 5 with the latency budget of §5, and the
// power-budget manager (PBM) that converts domain budgets into compute
// P-states (§4.3-4.4).
package pmu

import (
	"fmt"

	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/mrc"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Firmware cost constants (§5). The transition flow and algorithms fit
// in ~0.6KB of Pcode; the MRC images take ~0.5KB of SRAM (enforced in
// internal/mrc).
const (
	FirmwareBytes    = 614                  // ~0.6KB of PMU firmware
	FirmwareLatency  = 800 * sim.Nanosecond // flow bookkeeping (<1us, §5)
	PLLRelockLatency = 600 * sim.Nanosecond // PLL/DLL relock to new frequencies
)

// MaxTransitionLatency is the paper's bound on the whole flow (§5:
// "the actual latency of SysScale flow is less than 10us").
const MaxTransitionLatency = 10 * sim.Microsecond

// FlowOptions tune the transition flow. The defaults reproduce the
// shipped design; the alternatives exist for the ablation studies.
type FlowOptions struct {
	// OptimizedMRC selects per-frequency register images from the SRAM
	// store (the SysScale design). When false, the flow keeps the image
	// trained at boot frequency — the MemScale/CoScale behaviour and
	// the Observation 4 failure mode.
	OptimizedMRC bool
	// BootFreq is the frequency whose image is kept when OptimizedMRC
	// is false.
	BootFreq vf.Hz
	// Overlap applies DVFS steps of independent domains concurrently
	// (the SysScale design: "performing DVFS simultaneously in all
	// domains to overlap the DVFS latencies"). When false, latencies
	// add up serially — the naive flow the ablation quantifies.
	Overlap bool
}

// DefaultFlowOptions returns the shipped configuration.
func DefaultFlowOptions(bootFreq vf.Hz) FlowOptions {
	return FlowOptions{OptimizedMRC: true, BootFreq: bootFreq, Overlap: true}
}

// Flow executes the Fig. 5 power-management flow against the hardware
// models. It owns no state beyond its wiring; each Transition call is
// one complete flow run.
type Flow struct {
	rails  *vf.Rails
	fabric *interconnect.Fabric
	mc     *memctrl.Controller
	dev    *dram.Device
	store  *mrc.Store
	log    *sim.EventLog
	opts   FlowOptions

	transitions int
	totalTime   sim.Time
	maxTime     sim.Time
}

// NewFlow wires a flow instance.
func NewFlow(rails *vf.Rails, fabric *interconnect.Fabric, mc *memctrl.Controller, dev *dram.Device, store *mrc.Store, log *sim.EventLog, opts FlowOptions) (*Flow, error) {
	if rails == nil || fabric == nil || mc == nil || dev == nil || store == nil {
		return nil, fmt.Errorf("pmu: nil flow component")
	}
	return &Flow{rails: rails, fabric: fabric, mc: mc, dev: dev, store: store, log: log, opts: opts}, nil
}

// Reconfigure replaces the flow's options in place, keeping the wiring
// and the cumulative transition statistics. The platform owns one
// persistent Flow for a whole run and retargets it before each
// transition: the MRC mode is a per-decision policy choice (§4.3), but
// the flow hardware — and its stall accounting — is the same unit.
func (f *Flow) Reconfigure(opts FlowOptions) { f.opts = opts }

// Options returns the flow's current options.
func (f *Flow) Options() FlowOptions { return f.opts }

// ResetStats clears the cumulative transition statistics, keeping the
// wiring and options. Platform pooling calls it between runs so a
// recycled flow starts counting from zero like a freshly wired one.
func (f *Flow) ResetStats() {
	f.transitions = 0
	f.totalTime = 0
	f.maxTime = 0
}

// Transitions returns the number of completed flow runs.
func (f *Flow) Transitions() int { return f.transitions }

// TotalTime returns the cumulative stall time spent in flows.
func (f *Flow) TotalTime() sim.Time { return f.totalTime }

// MaxTime returns the longest single flow run.
func (f *Flow) MaxTime() sim.Time { return f.maxTime }

// Transition moves the IO and memory domains from their current
// operating point to target, following Fig. 5:
//
//	1 demand prediction decided the target (caller)
//	2 if increasing frequency: raise voltages first
//	3 block & drain IO interconnect and LLC→MC traffic
//	4 DRAM enters self-refresh
//	5 load optimized MRC values from SRAM
//	6 relock PLLs/DLLs to the new frequencies
//	7 if decreasing frequency: lower voltages after
//	8 DRAM exits self-refresh
//	9 release IO interconnect and LLC→MC traffic
//
// It returns the total stall time charged to the SoC.
func (f *Flow) Transition(now sim.Time, target vf.OperatingPoint) (sim.Time, error) {
	if err := target.Validate(); err != nil {
		return 0, err
	}
	increasing := target.DDR > f.dev.Frequency()
	var total sim.Time

	// Voltage moves for both scaled rails; with the overlapped flow the
	// two regulators slew concurrently, so the cost is the max.
	setVoltages := func() (sim.Time, error) {
		tSA, err := f.rails.Get(vf.RailVSA).Set(target.VSA)
		if err != nil {
			return 0, err
		}
		tIO, err := f.rails.Get(vf.RailVIO).Set(target.VIO)
		if err != nil {
			return 0, err
		}
		if f.opts.Overlap {
			return maxTime(tSA, tIO), nil
		}
		return tSA + tIO, nil
	}

	if increasing {
		d, err := setVoltages()
		if err != nil {
			return 0, err
		}
		total += d
		f.logf(now, "step2: raised V_SA to %.3fV, V_IO to %.3fV (%v)", target.VSA, target.VIO, d)
	}

	// Step 3: block and drain.
	drain := f.fabric.BlockAndDrain()
	f.mc.Block()
	total += drain
	f.logf(now, "step3: blocked+drained IO interconnect and LLC traffic (%v)", drain)

	// Step 4: self-refresh entry.
	f.dev.EnterSelfRefresh()
	f.logf(now, "step4: DRAM entered self-refresh")

	// Step 5: retarget DRAM and load configuration registers.
	if err := f.dev.SetFrequency(target.DDR); err != nil {
		return 0, err
	}
	var loadLat sim.Time
	var err error
	if f.opts.OptimizedMRC {
		loadLat, err = f.store.Load(f.dev, target.DDR)
		f.logf(now, "step5: loaded optimized MRC image for %v (%v)", target.DDR, loadLat)
	} else {
		loadLat, err = f.store.LoadDetuned(f.dev, f.opts.BootFreq, target.DDR)
		f.logf(now, "step5: kept boot MRC image (%v) at %v (%v)", f.opts.BootFreq, target.DDR, loadLat)
	}
	if err != nil {
		return 0, err
	}

	// Step 6: PLL/DLL relock; overlapped with the register load in the
	// shipped flow (independent hardware).
	if f.opts.Overlap {
		total += maxTime(loadLat, PLLRelockLatency)
	} else {
		total += loadLat + PLLRelockLatency
	}
	if err := f.mc.SetOperatingPoint(target.MC, target.VSA); err != nil {
		return 0, err
	}
	if err := f.fabric.SetOperatingPoint(target.Interco, target.VSA); err != nil {
		return 0, err
	}
	f.logf(now, "step6: relocked PLLs/DLLs (MC %v, interconnect %v)", target.MC, target.Interco)

	if !increasing {
		d, err := setVoltages()
		if err != nil {
			return 0, err
		}
		total += d
		f.logf(now, "step7: reduced V_SA to %.3fV, V_IO to %.3fV (%v)", target.VSA, target.VIO, d)
	}

	// Step 8: self-refresh exit.
	total += f.dev.ExitSelfRefresh()
	f.logf(now, "step8: DRAM exited self-refresh")

	// Step 9: release traffic.
	f.fabric.Release()
	f.mc.Release()
	f.logf(now, "step9: released IO interconnect and LLC traffic")

	total += FirmwareLatency

	f.transitions++
	f.totalTime += total
	if total > f.maxTime {
		f.maxTime = total
	}
	return total, nil
}

func (f *Flow) logf(at sim.Time, format string, args ...any) {
	f.log.Record(at, "pmu.flow", format, args...)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
