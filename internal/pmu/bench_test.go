package pmu

import (
	"testing"

	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/mrc"
	"sysscale/internal/vf"
)

// BenchmarkFlowTransition measures the wall-clock cost of executing one
// Fig. 5 flow (not the simulated latency — that is fixed at <10us).
func BenchmarkFlowTransition(b *testing.B) {
	high := vf.HighPoint()
	dev, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), high.DDR)
	if err != nil {
		b.Fatal(err)
	}
	mc, _ := memctrl.New(memctrl.DefaultParams(), dev)
	fab, _ := interconnect.New(interconnect.DefaultParams(), high.Interco, high.VSA)
	rails := vf.DefaultRails()
	if _, err := rails.Get(vf.RailVSA).Set(high.VSA); err != nil {
		b.Fatal(err)
	}
	if _, err := rails.Get(vf.RailVIO).Set(high.VIO); err != nil {
		b.Fatal(err)
	}
	flow, err := NewFlow(rails, fab, mc, dev, mrc.MustTrain(dram.LPDDR3), nil, DefaultFlowOptions(high.DDR))
	if err != nil {
		b.Fatal(err)
	}
	targets := [2]vf.OperatingPoint{vf.LowPoint(), vf.HighPoint()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Transition(0, targets[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
