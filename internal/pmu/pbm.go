package pmu

import (
	"fmt"

	"sysscale/internal/compute"
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// PBM is the compute-domain power-budget manager (§4.3-4.4). It owns
// the TDP split across domains and converts the compute allocation
// into CPU and graphics P-states. DVFS requests from the OS/driver are
// honored when they fit the budget and demoted to a safe lower
// frequency otherwise ("PBM demotes the request and places the
// requestor in a safe lower frequency", §4.4).
type PBM struct {
	budget *power.Budget
	cores  *compute.Cores
	gfx    *compute.Gfx

	// Activity assumptions used for the watts→frequency conversion
	// (real PBMs use running-average power limits; a fixed planning
	// activity is the epoch-model equivalent).
	planCoreActivity float64
	planGfxActivity  float64
}

// NewPBM wires a budget manager.
func NewPBM(budget *power.Budget, cores *compute.Cores, gfx *compute.Gfx) (*PBM, error) {
	if budget == nil || cores == nil || gfx == nil {
		return nil, fmt.Errorf("pmu: nil PBM component")
	}
	return &PBM{
		budget:           budget,
		cores:            cores,
		gfx:              gfx,
		planCoreActivity: 0.75,
		planGfxActivity:  0.85,
	}, nil
}

// Budget returns the managed budget.
func (p *PBM) Budget() *power.Budget { return p.budget }

// SetIOMemoryBudget reassigns the IO and memory domain allocations.
// SysScale's redistribution is exactly this call: a low operating
// point shrinks the allocations, growing the compute share.
func (p *PBM) SetIOMemoryBudget(io, memory power.Watt) error {
	return p.budget.SetIOMemory(io, memory)
}

// Request carries the OS/driver DVFS requests for one interval.
type Request struct {
	CoreFreq    vf.Hz   // requested core P-state (0 = maximum available)
	GfxFreq     vf.Hz   // requested graphics P-state (0 = maximum available)
	ActiveCores int     // cores the workload keeps busy
	GfxShare    float64 // fraction of the compute budget for graphics
	// DutyCycle engages hardware duty cycling below Pn (footnote 10);
	// 0 means full duty.
	DutyCycle float64
	// BonusBudget is extra compute budget beyond the TDP split, granted
	// from a governor's running-average savings credit (CoScale-Redist
	// style projection).
	BonusBudget power.Watt
}

// Apply arbitrates the interval's requests within the compute budget
// and programs the P-states. It returns the granted frequencies.
//
// Explicit joint requests (both core and graphics P-states named, the
// battery-workload pattern of §7.3 where the OS requests the lowest
// usable frequencies) are granted directly when their combined planned
// power fits the budget — the PBM only demotes requests that would
// violate the budget (§4.4).
func (p *PBM) Apply(req Request) (coreF, gfxF vf.Hz, err error) {
	budget := p.budget.Compute() + req.BonusBudget
	if req.CoreFreq > 0 && req.GfxFreq > 0 {
		active := req.ActiveCores
		if active <= 0 {
			active = 1
		}
		plan := p.cores.PlannedPower(req.CoreFreq, active, 0.5) + p.gfx.PlannedPower(req.GfxFreq, 0.5)
		if plan <= budget {
			if err := p.cores.SetPState(req.CoreFreq); err != nil {
				return 0, 0, err
			}
			if err := p.gfx.SetPState(req.GfxFreq); err != nil {
				return 0, 0, err
			}
			duty := req.DutyCycle
			if duty <= 0 || duty > 1 {
				duty = 1
			}
			if err := p.cores.SetDutyCycle(duty); err != nil {
				return 0, 0, err
			}
			return p.cores.Frequency(), p.gfx.Frequency(), nil
		}
	}
	gfxShare := req.GfxShare
	if gfxShare < 0 {
		gfxShare = 0
	}
	if gfxShare > 0.95 {
		gfxShare = 0.95
	}
	gfxBudget := power.Watt(float64(budget) * gfxShare)
	coreBudget := budget - gfxBudget

	active := req.ActiveCores
	if active <= 0 {
		active = 1
	}

	coreF = p.cores.FreqForBudget(coreBudget, active, p.planCoreActivity)
	if req.CoreFreq > 0 && req.CoreFreq < coreF {
		coreF = req.CoreFreq // honor an explicit lower request
	}
	if err := p.cores.SetPState(coreF); err != nil {
		return 0, 0, err
	}
	duty := req.DutyCycle
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	if err := p.cores.SetDutyCycle(duty); err != nil {
		return 0, 0, err
	}

	if gfxShare > 0 {
		gfxF = p.gfx.FreqForBudget(gfxBudget, p.planGfxActivity)
		if req.GfxFreq > 0 && req.GfxFreq < gfxF {
			gfxF = req.GfxFreq
		}
	} else {
		gfxF = p.gfx.Params().BaseFreq
	}
	if err := p.gfx.SetPState(gfxF); err != nil {
		return 0, 0, err
	}
	return p.cores.Frequency(), p.gfx.Frequency(), nil
}
