package pmu

import (
	"testing"

	"sysscale/internal/compute"
	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/mrc"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

type flowRig struct {
	rails  *vf.Rails
	fabric *interconnect.Fabric
	mc     *memctrl.Controller
	dev    *dram.Device
	store  *mrc.Store
	log    *sim.EventLog
}

func newRig(t *testing.T) *flowRig {
	t.Helper()
	high := vf.HighPoint()
	dev, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), high.DDR)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.New(memctrl.DefaultParams(), dev)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := interconnect.New(interconnect.DefaultParams(), high.Interco, high.VSA)
	if err != nil {
		t.Fatal(err)
	}
	rails := vf.DefaultRails()
	if _, err := rails.Get(vf.RailVSA).Set(high.VSA); err != nil {
		t.Fatal(err)
	}
	if _, err := rails.Get(vf.RailVIO).Set(high.VIO); err != nil {
		t.Fatal(err)
	}
	return &flowRig{
		rails: rails, fabric: fab, mc: mc, dev: dev,
		store: mrc.MustTrain(dram.LPDDR3),
		log:   sim.NewEventLog(0),
	}
}

func (r *flowRig) flow(t *testing.T, opts FlowOptions) *Flow {
	t.Helper()
	f, err := NewFlow(r.rails, r.fabric, r.mc, r.dev, r.store, r.log, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFlowLatencyBudget(t *testing.T) {
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	down, err := f.Transition(0, vf.LowPoint())
	if err != nil {
		t.Fatal(err)
	}
	if down >= MaxTransitionLatency {
		t.Fatalf("down transition %v exceeds the 10us budget (§5)", down)
	}
	up, err := f.Transition(0, vf.HighPoint())
	if err != nil {
		t.Fatal(err)
	}
	if up >= MaxTransitionLatency {
		t.Fatalf("up transition %v exceeds the 10us budget (§5)", up)
	}
	if f.Transitions() != 2 || f.TotalTime() != down+up {
		t.Fatal("flow statistics wrong")
	}
	if f.MaxTime() < down && f.MaxTime() < up {
		t.Fatal("max time wrong")
	}
}

func TestFlowStepOrdering(t *testing.T) {
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	// Fig. 5 ordering for a frequency decrease: drain before
	// self-refresh, MRC load after self-refresh entry, voltage
	// reduction after relock, release last.
	order := []string{"step3", "step4", "step5", "step6", "step7", "step8", "step9"}
	prev := -1
	for _, step := range order {
		idx := r.log.IndexOf(step)
		if idx < 0 {
			t.Fatalf("step %s missing from flow log", step)
		}
		if idx <= prev {
			t.Fatalf("step %s out of order", step)
		}
		prev = idx
	}
	// A decrease must not raise voltages first.
	if _, ok := r.log.Find("step2"); ok {
		t.Fatal("voltage raised on a frequency decrease")
	}
}

func TestFlowVoltageOrderOnIncrease(t *testing.T) {
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	r.log.Reset()
	if _, err := f.Transition(0, vf.HighPoint()); err != nil {
		t.Fatal(err)
	}
	// Frequency increase: voltages rise BEFORE the clock change (step2
	// precedes step6) and no step7 occurs.
	i2, i6 := r.log.IndexOf("step2"), r.log.IndexOf("step6")
	if i2 < 0 || i6 < 0 || i2 >= i6 {
		t.Fatalf("step2 (%d) must precede step6 (%d) on an increase", i2, i6)
	}
	if _, ok := r.log.Find("step7"); ok {
		t.Fatal("voltage lowered on a frequency increase")
	}
}

func TestFlowLeavesSystemReleased(t *testing.T) {
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	if r.fabric.Blocked() || r.mc.Blocked() {
		t.Fatal("flow left the interconnect blocked")
	}
	if r.dev.State() != dram.Active {
		t.Fatal("flow left DRAM in self-refresh")
	}
	if r.dev.Frequency() != vf.LowPoint().DDR {
		t.Fatal("DRAM not retargeted")
	}
	if r.rails.Voltage(vf.RailVSA) != vf.LowPoint().VSA {
		t.Fatal("V_SA not programmed")
	}
	// Optimized MRC: trained image for the new bin.
	if r.dev.Timing().InterfaceEff != 1.0 || r.dev.Timing().ForFreq != vf.LowPoint().DDR {
		t.Fatal("optimized image not loaded")
	}
}

func TestFlowDetunedMode(t *testing.T) {
	r := newRig(t)
	opts := DefaultFlowOptions(1.6 * vf.GHz)
	opts.OptimizedMRC = false
	f := r.flow(t, opts)
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	if r.dev.Timing().InterfaceEff >= 1.0 {
		t.Fatal("detuned mode loaded a trained image")
	}
}

func TestFlowReconfigure(t *testing.T) {
	// The platform keeps one persistent flow per run and retargets its
	// options before each transition; cumulative statistics must
	// survive reconfiguration, and the new options must take effect.
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	if r.dev.Timing().InterfaceEff < 1.0 {
		t.Fatal("optimized mode loaded a detuned image")
	}

	opts := DefaultFlowOptions(1.6 * vf.GHz)
	opts.OptimizedMRC = false
	f.Reconfigure(opts)
	if got := f.Options(); !got.Overlap || got.OptimizedMRC {
		t.Fatalf("options not applied: %+v", got)
	}
	// Re-land on the low point: its frequency differs from the boot
	// image's, so a detuned load is observable in the timing trims.
	if _, err := f.Transition(0, vf.LowPoint()); err != nil {
		t.Fatal(err)
	}
	if r.dev.Timing().InterfaceEff >= 1.0 {
		t.Fatal("reconfigured detuned mode still loaded a trained image")
	}

	if got := f.Transitions(); got != 2 {
		t.Fatalf("statistics reset by Reconfigure: %d transitions, want 2", got)
	}
	if f.TotalTime() < f.MaxTime() || f.MaxTime() <= 0 {
		t.Fatalf("implausible cumulative stats: total %v, max %v", f.TotalTime(), f.MaxTime())
	}
}

func TestFlowSequentialSlower(t *testing.T) {
	// Ablation: the overlapped flow must be faster than the serial one.
	rOv := newRig(t)
	fOv := rOv.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	dOv, err := fOv.Transition(0, vf.LowPoint())
	if err != nil {
		t.Fatal(err)
	}
	rSeq := newRig(t)
	opts := DefaultFlowOptions(1.6 * vf.GHz)
	opts.Overlap = false
	fSeq := rSeq.flow(t, opts)
	dSeq, err := fSeq.Transition(0, vf.LowPoint())
	if err != nil {
		t.Fatal(err)
	}
	if dSeq <= dOv {
		t.Fatalf("serial flow (%v) not slower than overlapped (%v)", dSeq, dOv)
	}
}

func TestFlowRejectsBadTarget(t *testing.T) {
	r := newRig(t)
	f := r.flow(t, DefaultFlowOptions(1.6*vf.GHz))
	if _, err := f.Transition(0, vf.OperatingPoint{Name: "bad"}); err == nil {
		t.Fatal("invalid target accepted")
	}
	if _, err := NewFlow(nil, r.fabric, r.mc, r.dev, r.store, r.log, DefaultFlowOptions(1.6*vf.GHz)); err == nil {
		t.Fatal("nil component accepted")
	}
}

// --- PBM ---

func newPBM(t *testing.T, tdp power.Watt) (*PBM, *compute.Cores, *compute.Gfx) {
	t.Helper()
	budget, err := power.NewBudget(tdp, 0.9, 1.7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := compute.NewCores(compute.DefaultCoreParams())
	if err != nil {
		t.Fatal(err)
	}
	gfx, err := compute.NewGfx(compute.DefaultGfxParams())
	if err != nil {
		t.Fatal(err)
	}
	pbm, err := NewPBM(budget, cores, gfx)
	if err != nil {
		t.Fatal(err)
	}
	return pbm, cores, gfx
}

func TestPBMGrantsBudgetMax(t *testing.T) {
	pbm, cores, _ := newPBM(t, 4.5)
	coreF, _, err := pbm.Apply(Request{ActiveCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if coreF <= 1.2*vf.GHz {
		t.Fatalf("budget grant too low: %v", coreF)
	}
	if cores.Frequency() != coreF {
		t.Fatal("grant not programmed")
	}
}

func TestPBMRedistributionRaisesGrant(t *testing.T) {
	pbm, _, _ := newPBM(t, 4.5)
	f0, _, err := pbm.Apply(Request{ActiveCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SysScale's redistribution: shrink IO+memory reservations.
	if err := pbm.SetIOMemoryBudget(0.3, 0.9); err != nil {
		t.Fatal(err)
	}
	f1, _, err := pbm.Apply(Request{ActiveCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= f0 {
		t.Fatalf("redistribution did not raise the grant: %v -> %v", f0, f1)
	}
}

func TestPBMDemotesOverBudgetRequest(t *testing.T) {
	pbm, _, _ := newPBM(t, 3.0) // tight budget
	coreF, _, err := pbm.Apply(Request{ActiveCores: 2, CoreFreq: 3.6 * vf.GHz})
	if err != nil {
		t.Fatal(err)
	}
	if coreF >= 3.6*vf.GHz {
		t.Fatal("over-budget request not demoted (§4.4)")
	}
}

func TestPBMHonorsLowerRequest(t *testing.T) {
	pbm, _, _ := newPBM(t, 4.5)
	coreF, _, err := pbm.Apply(Request{ActiveCores: 1, CoreFreq: 1.3 * vf.GHz})
	if err != nil {
		t.Fatal(err)
	}
	if coreF != 1.3*vf.GHz {
		t.Fatalf("explicit low request not honored: %v", coreF)
	}
}

func TestPBMJointExplicitGrant(t *testing.T) {
	// Battery pattern: both requests explicit and low — granted
	// directly when they jointly fit.
	pbm, _, gfx := newPBM(t, 4.5)
	coreF, gfxF, err := pbm.Apply(Request{
		ActiveCores: 1, CoreFreq: 1.2 * vf.GHz, GfxFreq: 0.45 * vf.GHz, GfxShare: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coreF != 1.2*vf.GHz || gfxF != 0.45*vf.GHz {
		t.Fatalf("joint grant wrong: %v / %v", coreF, gfxF)
	}
	if gfx.Frequency() != 0.45*vf.GHz {
		t.Fatal("gfx not programmed")
	}
}

func TestPBMBonusBudget(t *testing.T) {
	pbm, _, _ := newPBM(t, 4.5)
	f0, _, err := pbm.Apply(Request{ActiveCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := pbm.Apply(Request{ActiveCores: 1, BonusBudget: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= f0 {
		t.Fatal("bonus budget ignored")
	}
}

func TestPBMGfxShare(t *testing.T) {
	pbm, _, gfx := newPBM(t, 4.5)
	_, gfxF, err := pbm.Apply(Request{ActiveCores: 1, GfxShare: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if gfxF <= gfx.Params().BaseFreq {
		t.Fatalf("graphics share not converted to frequency: %v", gfxF)
	}
	// No share: graphics parked at base.
	_, gfxF0, err := pbm.Apply(Request{ActiveCores: 1, GfxShare: 0})
	if err != nil {
		t.Fatal(err)
	}
	if gfxF0 != gfx.Params().BaseFreq {
		t.Fatalf("idle graphics not at base: %v", gfxF0)
	}
}

func TestPBMConstruction(t *testing.T) {
	if _, err := NewPBM(nil, nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}

func TestFirmwareCosts(t *testing.T) {
	// §5: ~0.6KB firmware.
	if FirmwareBytes > 700 || FirmwareBytes < 500 {
		t.Fatalf("firmware size %dB outside ~0.6KB", FirmwareBytes)
	}
}
