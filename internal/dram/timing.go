package dram

import (
	"fmt"

	"sysscale/internal/vf"
)

// Timing is the set of DRAM configuration-register values that the MRC
// trains per frequency (§2.5). Values are expressed in device clocks
// (tCK = 2/transfer-rate for a double-data-rate interface). The set
// also carries the analog interface trim (drive strength, termination,
// and DLL phase codes) abstracted as interface-efficiency and
// termination factors; when a set trained for one frequency is used at
// another, those trims are wrong, costing bandwidth and power — the
// paper's Observation 4 (Fig. 4: +22% power, −10% performance).
type Timing struct {
	ForFreq vf.Hz // the frequency this set was trained for

	// Core timing parameters (in device clock cycles).
	CL   int // CAS latency
	RCD  int // RAS-to-CAS delay
	RP   int // row precharge
	RAS  int // row active time
	WR   int // write recovery
	RFC  int // refresh cycle time
	REFI int // refresh interval

	// Interface trims (dimensionless efficiency factors in (0, 1]).
	// InterfaceEff scales achievable bandwidth; TermEff scales
	// termination power (lower is better-tuned ODT).
	InterfaceEff float64
	TermEff      float64
}

// Validate checks that the set is electrically plausible.
func (t Timing) Validate() error {
	if t.ForFreq <= 0 {
		return fmt.Errorf("dram: timing set with no frequency tag")
	}
	if t.CL <= 0 || t.RCD <= 0 || t.RP <= 0 || t.RAS <= 0 || t.WR <= 0 {
		return fmt.Errorf("dram: non-positive core timing in set for %v", t.ForFreq)
	}
	if t.RFC <= 0 || t.REFI <= 0 {
		return fmt.Errorf("dram: non-positive refresh timing in set for %v", t.ForFreq)
	}
	if t.InterfaceEff <= 0 || t.InterfaceEff > 1 {
		return fmt.Errorf("dram: interface efficiency %.3f outside (0,1]", t.InterfaceEff)
	}
	if t.TermEff <= 0 {
		return fmt.Errorf("dram: non-positive termination factor")
	}
	return nil
}

// TCK returns the device clock period in seconds at the set's frequency
// (for a DDR interface the clock runs at half the transfer rate).
func (t Timing) TCK() float64 { return 2.0 / float64(t.ForFreq) }

// RandomAccessLatency returns the nominal closed-page access latency
// (tRP + tRCD + tCL) in seconds when the set is used at transfer rate
// f. Using a set trained for a different frequency keeps the *cycle*
// counts (the registers hold cycles), so the wall-clock latency scales
// with the actual clock.
func (t Timing) RandomAccessLatency(f vf.Hz) float64 {
	tck := 2.0 / float64(f)
	return float64(t.RP+t.RCD+t.CL) * tck
}

// OptimalTiming returns the MRC-trained register set for a frequency
// bin. Cycle counts follow JEDEC-style datasheet values: the wall-clock
// analog delays (~13.75ns tRCD/tRP class timings) are fixed physics, so
// cycle counts shrink as the clock slows.
func OptimalTiming(kind Kind, f vf.Hz) Timing {
	tck := 2.0 / float64(f) // seconds per device clock
	cycles := func(ns float64) int {
		c := int(ns*1e-9/tck + 0.999999) // ceil
		if c < 1 {
			c = 1
		}
		return c
	}
	t := Timing{
		ForFreq:      f,
		CL:           cycles(13.75),
		RCD:          cycles(13.75),
		RP:           cycles(13.75),
		RAS:          cycles(35.0),
		WR:           cycles(15.0),
		RFC:          cycles(210.0),
		REFI:         cycles(7800.0),
		InterfaceEff: 1.0, // trained trims: full efficiency
		TermEff:      1.0,
	}
	if kind == DDR4 {
		// DDR4 runs slightly tighter analog timings at this class.
		t.CL = cycles(13.32)
		t.RCD = cycles(13.32)
		t.RP = cycles(13.32)
	}
	return t
}

// DetunedTiming returns the effective behaviour of running the register
// set trained for trainedAt while the device operates at actual — the
// "unoptimized MRC values" case of Observation 4. Two effects:
//
//  1. Cycle-count mismatch. Registers hold cycle counts; at a slower
//     clock the counts trained for a faster clock are overly long
//     (wasted cycles), and at a faster clock they would violate the
//     parts' analog timing, so a safe controller must fall back to
//     worst-case guard-banded counts. Either way latency suffers.
//  2. Analog trim mismatch. Drive strength, ODT and DLL phase codes are
//     frequency specific; wrong codes reduce eye margin (less usable
//     bandwidth) and waste termination power.
//
// The factors are calibrated so a peak-bandwidth microbenchmark loses
// about 10% performance and spends about 22% more power, matching
// Fig. 4.
func DetunedTiming(kind Kind, trainedAt, actual vf.Hz) Timing {
	base := OptimalTiming(kind, trainedAt)
	t := base
	t.ForFreq = actual
	if trainedAt == actual {
		return t
	}
	// Keep the trained cycle counts (that is the bug), and degrade the
	// analog trims.
	t.InterfaceEff = 0.88 // ~12% bandwidth loss from reduced eye margin
	t.TermEff = 2.6       // badly tuned ODT wastes most of the termination margin
	if trainedAt < actual {
		// Running faster than trained additionally requires guard-banded
		// core timings: pad the latency-critical counts.
		t.CL += 2
		t.RCD += 2
		t.RP += 2
	}
	return t
}
