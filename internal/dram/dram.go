// Package dram models the main-memory device of the SoC: its geometry,
// frequency bins, JEDEC-style timing parameters, power components
// (background, operation, termination — §2.3 of the paper), refresh,
// and the self-refresh state machine used by the DVFS transition flow.
//
// Commodity DRAM supports only a few discrete frequency bins (footnote
// 4: LPDDR3 supports 1.6, 1.06 and 0.8 GHz) and its array voltage
// (VDDQ) cannot be scaled (§2.4), both of which the model enforces.
package dram

import (
	"fmt"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Kind identifies a DRAM technology.
type Kind int

// Supported technologies.
const (
	LPDDR3 Kind = iota
	DDR4
)

func (k Kind) String() string {
	switch k {
	case LPDDR3:
		return "LPDDR3"
	case DDR4:
		return "DDR4"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bins returns the discrete transfer-rate bins the technology supports,
// highest first.
func (k Kind) Bins() []vf.Hz {
	switch k {
	case LPDDR3:
		// 2.13GHz is the LPDDR3E extension bin used by the paper's
		// third Fig. 6 frequency pair (2.13GHz -> 1.06GHz).
		return []vf.Hz{2.13 * vf.GHz, 1.6 * vf.GHz, 1.06 * vf.GHz, 0.8 * vf.GHz}
	case DDR4:
		return []vf.Hz{2.13 * vf.GHz, 1.86 * vf.GHz, 1.33 * vf.GHz}
	default:
		return nil
	}
}

// SupportsBin reports whether f is one of the technology's bins.
func (k Kind) SupportsBin(f vf.Hz) bool {
	for _, b := range k.Bins() {
		if b == f {
			return true
		}
	}
	return false
}

// Geometry describes the module configuration (Table 2: dual-channel,
// 8GB, non-ECC).
type Geometry struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	CapacityGB   int
	BusWidthBits int // per channel
	BurstLength  int
	ECC          bool
}

// DefaultGeometry returns the evaluated platform's module (Table 2).
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:     2,
		RanksPerChan: 1,
		BanksPerRank: 8,
		CapacityGB:   8,
		BusWidthBits: 64,
		BurstLength:  8,
		ECC:          false,
	}
}

// Validate checks the geometry for plausibility.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.RanksPerChan <= 0 || g.BanksPerRank <= 0 {
		return fmt.Errorf("dram: non-positive geometry field: %+v", g)
	}
	if g.CapacityGB <= 0 || g.BusWidthBits <= 0 || g.BurstLength <= 0 {
		return fmt.Errorf("dram: non-positive geometry field: %+v", g)
	}
	return nil
}

// PeakBandwidth returns the theoretical peak transfer bandwidth in
// bytes/second at transfer rate f: channels × width × rate. For the
// default dual-channel 64-bit module at DDR 1.6GHz this is 25.6 GB/s,
// the figure the paper uses in §3 (Fig. 3b).
func (g Geometry) PeakBandwidth(f vf.Hz) float64 {
	bytesPerTransfer := float64(g.BusWidthBits) / 8
	return float64(g.Channels) * bytesPerTransfer * float64(f)
}

// State is the DRAM power state.
type State int

// DRAM power states. Active covers normal operation (banks may be open
// or precharged — the epoch model does not track individual banks'
// open rows); SelfRefresh is the retention-only state entered during
// DVFS transitions and deep package C-states.
const (
	Active State = iota
	PowerDown
	SelfRefresh
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case PowerDown:
		return "power-down"
	case SelfRefresh:
		return "self-refresh"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Device is one DRAM subsystem instance (all channels).
type Device struct {
	kind  Kind
	geom  Geometry
	freq  vf.Hz
	state State

	timing Timing // active timing set (loaded from configuration registers)

	// Self-refresh statistics.
	srEntries  int
	srExitTime sim.Time // cumulative time spent exiting self-refresh
}

// NewDevice creates a device at the given transfer-rate bin.
func NewDevice(kind Kind, geom Geometry, freq vf.Hz) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if !kind.SupportsBin(freq) {
		return nil, fmt.Errorf("dram: %v does not support bin %v", kind, freq)
	}
	d := &Device{kind: kind, geom: geom, freq: freq, state: Active}
	d.timing = OptimalTiming(kind, freq)
	return d, nil
}

// Reset returns the device to the state NewDevice would build at the
// given bin: active, optimal timing for the bin, and cleared
// self-refresh statistics. Platform pooling uses it to recycle a device
// across runs without reallocating.
func (d *Device) Reset(freq vf.Hz) error {
	if !d.kind.SupportsBin(freq) {
		return fmt.Errorf("dram: %v does not support bin %v", d.kind, freq)
	}
	d.freq = freq
	d.state = Active
	d.timing = OptimalTiming(d.kind, freq)
	d.srEntries = 0
	d.srExitTime = 0
	return nil
}

// Kind returns the DRAM technology.
func (d *Device) Kind() Kind { return d.kind }

// Geometry returns the module configuration.
func (d *Device) Geometry() Geometry { return d.geom }

// Frequency returns the current transfer rate.
func (d *Device) Frequency() vf.Hz { return d.freq }

// State returns the present power state.
func (d *Device) State() State { return d.state }

// Timing returns the active timing set.
func (d *Device) Timing() Timing { return d.timing }

// PeakBandwidth returns the device's peak bandwidth at its current bin.
func (d *Device) PeakBandwidth() float64 { return d.geom.PeakBandwidth(d.freq) }

// EnterSelfRefresh puts the device into self-refresh. Frequency changes
// are only legal in self-refresh (step 4 of the Fig. 5 flow).
func (d *Device) EnterSelfRefresh() {
	if d.state != SelfRefresh {
		d.state = SelfRefresh
		d.srEntries++
	}
}

// ExitSelfRefresh returns the device to the active state and returns
// the exit latency (<5us with a fast relock/training process, §5).
func (d *Device) ExitSelfRefresh() sim.Time {
	if d.state != SelfRefresh {
		return 0
	}
	d.state = Active
	lat := SelfRefreshExitLatency
	d.srExitTime += lat
	return lat
}

// SetFrequency retargets the device to a new bin. The device must be in
// self-refresh: changing the interface clock while the DLLs are live
// would corrupt transfers, which is why the Fig. 5 flow drains traffic
// and enters self-refresh first. The caller must subsequently load a
// timing set for the new frequency (LoadTiming) before exiting
// self-refresh.
func (d *Device) SetFrequency(f vf.Hz) error {
	if d.state != SelfRefresh {
		return fmt.Errorf("dram: frequency change outside self-refresh (state %v)", d.state)
	}
	if !d.kind.SupportsBin(f) {
		return fmt.Errorf("dram: %v does not support bin %v", d.kind, f)
	}
	d.freq = f
	return nil
}

// LoadTiming programs a timing set into the device's configuration
// registers (step 5 of Fig. 5). The set's frequency tag must match the
// device's current bin; loading a mismatched (unoptimized) set is legal
// — it is exactly the failure mode of Observation 4 — but the set must
// at least be electrically valid for operation at the current bin.
func (d *Device) LoadTiming(t Timing) error {
	if err := t.Validate(); err != nil {
		return err
	}
	d.timing = t
	return nil
}

// SelfRefreshEntries returns how many times the device entered
// self-refresh (one per DVFS transition plus deep-idle entries).
func (d *Device) SelfRefreshEntries() int { return d.srEntries }

// SelfRefreshExitLatency is the worst-case self-refresh exit latency
// with fast relock training (§5: "less than 5us").
const SelfRefreshExitLatency = 4 * sim.Microsecond
