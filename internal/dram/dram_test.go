package dram

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/vf"
)

func TestKindBins(t *testing.T) {
	bins := LPDDR3.Bins()
	if len(bins) != 4 {
		t.Fatalf("LPDDR3 bins = %d, want 4 (incl. LPDDR3E 2.13)", len(bins))
	}
	for i := 1; i < len(bins); i++ {
		if bins[i] >= bins[i-1] {
			t.Fatal("bins not descending")
		}
	}
	if !LPDDR3.SupportsBin(1.06 * vf.GHz) {
		t.Fatal("1.06GHz missing")
	}
	if LPDDR3.SupportsBin(1.23 * vf.GHz) {
		t.Fatal("bogus bin supported")
	}
	if len(DDR4.Bins()) == 0 {
		t.Fatal("DDR4 has no bins")
	}
	if Kind(99).Bins() != nil {
		t.Fatal("unknown kind has bins")
	}
}

func TestGeometryPeakBandwidth(t *testing.T) {
	g := DefaultGeometry()
	// Dual-channel 64-bit at DDR 1.6GHz = 25.6GB/s (§3 / Fig. 3b).
	got := g.PeakBandwidth(1.6 * vf.GHz)
	if math.Abs(got-25.6e9) > 1 {
		t.Fatalf("peak = %v, want 25.6GB/s", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDeviceCreation(t *testing.T) {
	if _, err := NewDevice(LPDDR3, DefaultGeometry(), 1.23*vf.GHz); err == nil {
		t.Fatal("unsupported bin accepted")
	}
	d, err := NewDevice(LPDDR3, DefaultGeometry(), 1.6*vf.GHz)
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != Active || d.Frequency() != 1.6*vf.GHz {
		t.Fatal("fresh device state wrong")
	}
	if d.Timing().ForFreq != 1.6*vf.GHz {
		t.Fatal("device not booted with trained timing")
	}
}

func TestFrequencyChangeRequiresSelfRefresh(t *testing.T) {
	d, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.6*vf.GHz)
	if err := d.SetFrequency(1.06 * vf.GHz); err == nil {
		t.Fatal("frequency change outside self-refresh accepted")
	}
	d.EnterSelfRefresh()
	if d.State() != SelfRefresh {
		t.Fatal("not in self-refresh")
	}
	if err := d.SetFrequency(1.06 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	if err := d.SetFrequency(1.23 * vf.GHz); err == nil {
		t.Fatal("unsupported bin accepted in self-refresh")
	}
	lat := d.ExitSelfRefresh()
	if lat <= 0 || lat > SelfRefreshExitLatency {
		t.Fatalf("exit latency = %v", lat)
	}
	if d.State() != Active {
		t.Fatal("did not exit self-refresh")
	}
	if d.SelfRefreshEntries() != 1 {
		t.Fatalf("entries = %d", d.SelfRefreshEntries())
	}
	// Exiting while active is a no-op.
	if d.ExitSelfRefresh() != 0 {
		t.Fatal("double exit returned latency")
	}
}

func TestOptimalTimingScalesWithClock(t *testing.T) {
	fast := OptimalTiming(LPDDR3, 1.6*vf.GHz)
	slow := OptimalTiming(LPDDR3, 0.8*vf.GHz)
	// Cycle counts shrink with the clock (wall-clock latency constant).
	if slow.CL >= fast.CL {
		t.Fatalf("CL at 0.8GHz (%d) not below CL at 1.6GHz (%d)", slow.CL, fast.CL)
	}
	fastNs := fast.RandomAccessLatency(1.6 * vf.GHz)
	slowNs := slow.RandomAccessLatency(0.8 * vf.GHz)
	// Wall-clock access within ~25% across bins (ceil quantization).
	if slowNs < fastNs*0.8 || slowNs > fastNs*1.3 {
		t.Fatalf("access latency drifted: %.1fns vs %.1fns", slowNs*1e9, fastNs*1e9)
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimingValidate(t *testing.T) {
	bad := OptimalTiming(LPDDR3, 1.6*vf.GHz)
	bad.CL = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero CL accepted")
	}
	bad = OptimalTiming(LPDDR3, 1.6*vf.GHz)
	bad.InterfaceEff = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("interface efficiency > 1 accepted")
	}
	bad = OptimalTiming(LPDDR3, 1.6*vf.GHz)
	bad.ForFreq = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("untagged timing accepted")
	}
}

func TestDetunedTiming(t *testing.T) {
	// Same frequency: no detuning.
	same := DetunedTiming(LPDDR3, 1.6*vf.GHz, 1.6*vf.GHz)
	if same.InterfaceEff != 1.0 || same.TermEff != 1.0 {
		t.Fatal("same-frequency detuning applied penalties")
	}
	// Slower than trained: trained cycle counts are kept, so access
	// latency is longer than with a trained set; trims degraded.
	det := DetunedTiming(LPDDR3, 1.6*vf.GHz, 1.06*vf.GHz)
	opt := OptimalTiming(LPDDR3, 1.06*vf.GHz)
	if det.RandomAccessLatency(1.06*vf.GHz) <= opt.RandomAccessLatency(1.06*vf.GHz) {
		t.Fatal("detuned access latency not worse")
	}
	if det.InterfaceEff >= 1.0 {
		t.Fatal("detuned interface not derated")
	}
	if det.TermEff <= 1.0 {
		t.Fatal("detuned termination not penalized")
	}
	// Faster than trained: guard-banded counts.
	up := DetunedTiming(LPDDR3, 1.06*vf.GHz, 1.6*vf.GHz)
	trained := OptimalTiming(LPDDR3, 1.06*vf.GHz)
	if up.CL <= trained.CL {
		t.Fatal("faster-than-trained not guard-banded")
	}
}

func TestPowerStates(t *testing.T) {
	pp := DefaultPowerParams()
	d, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.6*vf.GHz)
	active := pp.Draw(d, 5e9, 0.25)
	d.EnterSelfRefresh()
	sr := pp.Draw(d, 0, 0)
	if sr != pp.SelfRefresh {
		t.Fatalf("self-refresh draw = %v", sr)
	}
	if active <= sr {
		t.Fatal("active draw not above self-refresh")
	}
}

func TestPowerComponents(t *testing.T) {
	pp := DefaultPowerParams()
	d, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.6*vf.GHz)
	idle := pp.Draw(d, 0, 0)
	busy := pp.Draw(d, 10e9, 0.5)
	if busy <= idle {
		t.Fatal("operation power missing")
	}
	// Background power drops with frequency (§2.4).
	dLow, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.06*vf.GHz)
	idleLow := pp.Draw(dLow, 0, 0)
	if idleLow >= idle {
		t.Fatalf("background power did not drop: %v vs %v", idleLow, idle)
	}
	// But per-byte IO energy grows at the lower bin, so the same heavy
	// traffic costs relatively more there (§2.4: read/write energy
	// increases as frequency drops).
	deltaHigh := float64(busy - idle)
	deltaLow := float64(pp.Draw(dLow, 10e9, 0.5*1.6/1.06) - idleLow)
	if deltaLow <= deltaHigh {
		t.Fatalf("per-access energy did not grow at the low bin: %v vs %v", deltaLow, deltaHigh)
	}
}

func TestPowerMonotoneInBandwidth(t *testing.T) {
	pp := DefaultPowerParams()
	d, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.6*vf.GHz)
	err := quick.Check(func(a, b uint16) bool {
		bw1, bw2 := float64(a)*1e6, float64(b)*1e6
		if bw1 > bw2 {
			bw1, bw2 = bw2, bw1
		}
		u1, u2 := bw1/25.6e9, bw2/25.6e9
		return pp.Draw(d, bw1, u1) <= pp.Draw(d, bw2, u2)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDetunedTerminationCostsPower(t *testing.T) {
	pp := DefaultPowerParams()
	d, _ := NewDevice(LPDDR3, DefaultGeometry(), 1.06*vf.GHz)
	opt := pp.Draw(d, 10e9, 0.8)
	if err := d.LoadTiming(DetunedTiming(LPDDR3, 1.6*vf.GHz, 1.06*vf.GHz)); err != nil {
		t.Fatal(err)
	}
	det := pp.Draw(d, 10e9, 0.8)
	if det <= opt {
		t.Fatal("detuned image did not raise termination power (Observation 4)")
	}
}

func TestStateStrings(t *testing.T) {
	if Active.String() != "active" || SelfRefresh.String() != "self-refresh" || PowerDown.String() != "power-down" {
		t.Fatal("state strings wrong")
	}
	if LPDDR3.String() != "LPDDR3" || DDR4.String() != "DDR4" {
		t.Fatal("kind strings wrong")
	}
}
