package dram

import (
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// PowerParams hold the coefficients of the DRAM power model, following
// the decomposition of §2.3: background power (maintenance + refresh),
// operation power (array, IO, register, termination), with the memory
// controller's share modeled separately in internal/memctrl.
type PowerParams struct {
	// Background.
	BackgroundBase  power.Watt // frequency-independent maintenance floor
	BackgroundPerHz power.Watt // per-hertz slope (background reduces linearly with f, §2.4)
	SelfRefresh     power.Watt // retention-only draw
	PowerDown       power.Watt // precharge power-down draw
	RefreshAvg      power.Watt // average refresh overhead while active

	// Operation.
	ArrayEnergyPerByte float64    // J/B drawn by the array core (bandwidth proportional)
	IOEnergyPerByte    float64    // J/B drawn by drivers/latches/DLL at the reference bin
	RegisterPower      power.Watt // clock/command register + PLL draw while active
	TerminationMax     power.Watt // termination draw at 100% interface utilization

	ReferenceFreq vf.Hz // bin at which IOEnergyPerByte was characterized
}

// DefaultPowerParams returns coefficients representative of a
// dual-channel LPDDR3-1600 module in a 4.5W-TDP platform. Absolute
// values are synthetic but sized so the memory domain is a realistic
// share of package power (several hundred milliwatts).
func DefaultPowerParams() PowerParams {
	return PowerParams{
		BackgroundBase:     0.060,
		BackgroundPerHz:    power.Watt(0.070 / (1.6e9)), // 70mW at 1.6GHz
		SelfRefresh:        0.012,
		PowerDown:          0.030,
		RefreshAvg:         0.018,
		ArrayEnergyPerByte: 20e-12, // 20 pJ/B
		IOEnergyPerByte:    5e-12,  // 5 pJ/B at the reference bin
		TerminationMax:     0.140,
		RegisterPower:      0.025,
		ReferenceFreq:      1.6 * vf.GHz,
	}
}

// Draw computes the device's power draw for one epoch.
//
//	bwBytes  — achieved bandwidth in bytes/second during the epoch
//	util     — interface utilization in [0, 1]
//
// The model captures the four §2.4 effects of memory DVFS:
// background power falls linearly with frequency; per-access read/write
// energy rises as frequency falls (each burst takes longer, modeled by
// the reference-frequency scaling on IO energy); termination power
// follows utilization (not frequency directly); and badly trained
// interface trims inflate termination draw via Timing.TermEff.
func (p PowerParams) Draw(d *Device, bwBytes, util float64) power.Watt {
	switch d.State() {
	case SelfRefresh:
		return p.SelfRefresh
	case PowerDown:
		return p.PowerDown
	}
	f := d.Frequency()
	bg := p.BackgroundBase + power.Watt(float64(p.BackgroundPerHz)*float64(f)) + p.RefreshAvg

	array := power.Watt(p.ArrayEnergyPerByte * bwBytes)

	// IO energy per byte grows as the clock slows: the burst occupies
	// the pins longer, so drivers and DLL stay active longer per bit.
	ioScale := 1.0
	if f > 0 {
		ioScale = float64(p.ReferenceFreq) / float64(f)
		if ioScale < 1 {
			ioScale = 1 // faster-than-reference bins do not reduce below characterized energy
		}
	}
	io := power.Watt(p.IOEnergyPerByte * bwBytes * ioScale)

	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	term := power.Watt(float64(p.TerminationMax) * util * d.Timing().TermEff)

	return bg + array + io + term + p.RegisterPower
}
