package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/power"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/workload"
)

// Fig10Row is one TDP's distribution of SPEC improvements.
type Fig10Row struct {
	TDP     power.Watt
	Summary stats.ViolinSummary
	Gains   []float64
}

// Fig10Result reproduces Fig. 10: SysScale's SPEC CPU2006 performance
// benefit versus TDP, as violin distributions (paper: 3.5W up to 33%,
// 19.1% average; benefit shrinks as TDP grows because power becomes
// ample and redistribution matters less).
type Fig10Result struct{ Rows []Fig10Row }

// Fig10TDPs are the evaluated thermal design points.
func Fig10TDPs() []power.Watt { return []power.Watt{3.5, 4.5, 7, 15} }

// Fig10 sweeps the TDPs over the full SPEC suite: all four TDPs of all
// 29 benchmarks under both policies — one sweep per TDP, the widest
// fan-out in the harness (232 runs total).
func Fig10(ctx context.Context) (Fig10Result, error) {
	var res Fig10Result
	ws := workload.SPECSuite()

	for _, tdp := range Fig10TDPs() {
		rs, err := newSweep(policy.NewBaseline(), policy.NewSysScaleDefault()).
			Workloads(ws...).
			Configure(func(c *soc.Config) { c.TDP = tdp }).
			RunContext(ctx, Engine())
		if err != nil {
			return res, err
		}
		perf := rs.PerfImprovement(0)
		gains := make([]float64, len(ws))
		for wi := range ws {
			gains[wi] = 100 * perf.Values[1][wi]
		}
		res.Rows = append(res.Rows, Fig10Row{TDP: tdp, Summary: stats.Violin(gains), Gains: gains})
	}
	return res, nil
}

func (r Fig10Result) String() string {
	tab := stats.NewTable("Fig. 10: SysScale benefit vs TDP (SPEC CPU2006, % improvement)",
		"TDP", "Min", "P25", "Median", "P75", "Max", "Mean")
	for _, row := range r.Rows {
		v := row.Summary
		tab.AddRow(fmt.Sprintf("%.1fW", float64(row.TDP)),
			fmt.Sprintf("%.1f", v.Min), fmt.Sprintf("%.1f", v.P25),
			fmt.Sprintf("%.1f", v.Median), fmt.Sprintf("%.1f", v.P75),
			fmt.Sprintf("%.1f", v.Max), fmt.Sprintf("%.1f", v.Mean))
	}
	violin := stats.NewViolinChart("Distribution per TDP (violin summary)", 50)
	for _, row := range r.Rows {
		violin.Add(fmt.Sprintf("%.1fW", float64(row.TDP)), row.Summary)
	}
	return tab.String() + violin.String() + "paper: 3.5W up to 33% (avg 19.1%); benefit decreases with TDP\n"
}
