package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/dram"
	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// DRAMSensitivityResult reproduces the §7.4 "More DRAM Frequencies"
// analysis: (1) DDR4 1.86→1.33 frees less budget than LPDDR3
// 1.6→1.06 (paper: about 7% less); (2) the 0.8GHz LPDDR3 point is not
// energy efficient because V_SA already sits at Vmin at 1.06GHz and
// the performance penalty roughly doubles.
type DRAMSensitivityResult struct {
	// Freed budget (W) when moving from the high to the low point.
	LPDDR3Freed float64
	DDR4Freed   float64
	// VSA voltages showing the Vmin floor argument.
	VSAAt106 vf.Volt
	VSAAt08  vf.Volt
	// Average SPEC degradation of the static points vs high.
	Degrade106 float64
	Degrade08  float64
}

// DRAMSensitivity computes the budget and degradation comparisons.
func DRAMSensitivity(ctx context.Context) (DRAMSensitivityResult, error) {
	var res DRAMSensitivityResult

	freed := func(kind dram.Kind, high, low vf.OperatingPoint) (float64, error) {
		cfg := soc.DefaultConfig()
		cfg.DRAMKind = kind
		cfg.Ladder = []vf.OperatingPoint{high, low}
		cfg.Policy = policy.NewBaseline()
		w, err := workload.SPEC("416.gamess")
		if err != nil {
			return 0, err
		}
		cfg.Workload = w
		p, err := soc.NewPlatform(cfg)
		if err != nil {
			return 0, err
		}
		hi := float64(p.WorstCaseIOBudget(high) + p.WorstCaseMemBudget(high))
		lo := float64(p.WorstCaseIOBudget(low) + p.WorstCaseMemBudget(low))
		return hi - lo, nil
	}

	var err error
	res.LPDDR3Freed, err = freed(dram.LPDDR3, vf.HighPoint(), vf.LowPoint())
	if err != nil {
		return res, err
	}
	res.DDR4Freed, err = freed(dram.DDR4, vf.DDR4HighPoint(), vf.DDR4LowPoint())
	if err != nil {
		return res, err
	}

	res.VSAAt106 = vf.LowPoint().VSA
	res.VSAAt08 = vf.LowestPoint().VSA

	// Average SPEC degradation at each static point relative to high,
	// cores pinned so only the memory subsystem differs. Each point's
	// suite sweep is one batch; the shared high-point runs of the
	// second call come from the engine cache.
	avgDegr := func(pointIdx int) (float64, error) {
		rs, err := newSweep(policy.NewStaticPoint(0, false), policy.NewStaticPoint(pointIdx, false)).
			Workloads(workload.SPECSuite()...).
			Configure(func(c *soc.Config) {
				c.Ladder = vf.LadderLPDDR3()
				c.FixedCoreFreq = 2.0 * vf.GHz
			}).
			RunContext(ctx, Engine())
		if err != nil {
			return 0, err
		}
		var sum float64
		for wi := range rs.Workloads {
			base, lowr := rs.Result(wi, 0), rs.Result(wi, 1)
			sum += 1 - lowr.Score/base.Score
		}
		return sum / float64(len(rs.Workloads)), nil
	}
	if res.Degrade106, err = avgDegr(1); err != nil {
		return res, err
	}
	if res.Degrade08, err = avgDegr(2); err != nil {
		return res, err
	}
	return res, nil
}

func (r DRAMSensitivityResult) String() string {
	tab := stats.NewTable("§7.4 DRAM sensitivity", "Quantity", "Value", "Paper")
	rel := 0.0
	if r.LPDDR3Freed > 0 {
		rel = 1 - r.DDR4Freed/r.LPDDR3Freed
	}
	tab.AddRow("LPDDR3 1.6->1.06 freed budget", fmt.Sprintf("%.3fW", r.LPDDR3Freed), "-")
	tab.AddRow("DDR4 1.86->1.33 freed budget", fmt.Sprintf("%.3fW (%.0f%% less)", r.DDR4Freed, 100*rel), "~7% less")
	tab.AddRow("V_SA at DDR 1.06GHz", fmt.Sprintf("%.3fV", float64(r.VSAAt106)), "Vmin")
	tab.AddRow("V_SA at DDR 0.8GHz", fmt.Sprintf("%.3fV", float64(r.VSAAt08)), "same Vmin (no benefit)")
	tab.AddRow("Avg degradation at 1.06GHz", pct(-r.Degrade106), "-")
	tab.AddRow("Avg degradation at 0.8GHz", fmt.Sprintf("%s (%.1fx)", pct(-r.Degrade08), r.Degrade08/maxf(r.Degrade106, 1e-9)), "2-3x the 1.06 penalty")
	return tab.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
