// Package experiments regenerates every table and figure of the
// paper's evaluation: the §3 motivation experiments (Fig. 2-4), the
// flow-latency budget (Fig. 5 / §5), the prediction study (Fig. 6),
// the main results (Figs. 7-9), the TDP sensitivity study (Fig. 10),
// the §7.4 DRAM sensitivity analyses, and the design-choice ablations
// called out in DESIGN.md.
//
// Each experiment is a pure function returning a typed result with a
// String() rendering; cmd/experiments and the benchmark harness are
// thin wrappers around this package. Experiments that simulate take a
// context.Context and unwind within one policy epoch once it is
// cancelled (cmd/experiments wires Ctrl-C to it).
//
// All multi-workload fan-out goes through a shared internal/engine
// instance: every figure declares its policy × workload cross-product
// as an engine.Sweep (or submits a hand-assembled batch for the few
// irregular shapes) and runs it as one batch, so the sweeps execute
// with bounded parallelism (SetParallelism) and repeated runs — the
// baselines every figure compares against, the §6 scalability probes
// — are memoized across figures.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sysscale/internal/engine"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// minRunTime keeps short workloads running long enough to cover PMU
// intervals and phase loops.
const minRunTime = 2 * sim.Second

// shared is the engine every experiment submits to. Replacing it via
// SetParallelism/SetDiskCache drops the memoized results (the on-disk
// tier, when configured, persists by design).
var (
	engMu       sync.Mutex
	parallelism int
	diskDir     string
	jobTimeout  time.Duration
	retries     int
	shared      = engine.New()
)

// rebuild replaces the shared engine with one reflecting the current
// knobs. Callers hold engMu.
func rebuild() {
	opts := []engine.Option{
		engine.WithParallelism(parallelism),
		engine.WithJobTimeout(jobTimeout),
		engine.WithRetry(retries, 100*time.Millisecond),
	}
	if diskDir != "" {
		opts = append(opts, engine.WithDiskCache(diskDir))
	}
	shared = engine.New(opts...)
}

// SetHardening rebuilds the shared engine with the fault-tolerance
// knobs: a per-job wall-time budget (0 = unbounded) and extra attempts
// for transient-classed failures. See engine.WithJobTimeout and
// engine.WithRetry for the exact contracts.
func SetHardening(timeout time.Duration, extraAttempts int) {
	engMu.Lock()
	defer engMu.Unlock()
	jobTimeout = timeout
	retries = extraAttempts
	rebuild()
}

// SetParallelism rebuilds the shared experiment engine with at most n
// simulations in flight (n <= 0 restores the GOMAXPROCS default). The
// in-memory result cache starts empty; a configured disk cache
// persists.
func SetParallelism(n int) {
	engMu.Lock()
	defer engMu.Unlock()
	parallelism = n
	rebuild()
}

// SetDiskCache rebuilds the shared engine with the persistent on-disk
// result tier rooted at dir (empty disables it), so repeated
// figure-style sweeps hit disk across process restarts. A store that
// fails to open is reported here — loudly, since the caller asked for
// persistence — and leaves the engine running without the tier.
func SetDiskCache(dir string) error {
	engMu.Lock()
	defer engMu.Unlock()
	diskDir = dir
	rebuild()
	return shared.DiskCacheError()
}

// Engine returns the shared experiment engine (for cache statistics
// and direct batch submission).
func Engine() *engine.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	return shared
}

// experimentDuration is the harness's duration rule, applied to every
// sweep cell: cover at least two full loops of the workload's phases,
// and never less than minRunTime.
func experimentDuration(cfg *soc.Config) {
	cfg.Duration = 2 * cfg.Workload.TotalDuration()
	if cfg.Duration < minRunTime {
		cfg.Duration = minRunTime
	}
}

// newSweep starts a Sweep over the Table 2 platform with the harness
// duration rule and the given policy columns.
func newSweep(ps ...soc.Policy) *engine.Sweep {
	return engine.NewSweep().Policies(ps...).Configure(experimentDuration)
}

// baseConfig returns the Table 2 platform configured for a workload,
// covering at least two full loops of its phases.
func baseConfig(w workload.Workload) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	experimentDuration(&cfg)
	return cfg
}

// configFor assembles the config for one workload under one policy.
// The policy instance is not consumed: the engine clones it per job.
func configFor(w workload.Workload, p soc.Policy, mut func(*soc.Config)) soc.Config {
	cfg := baseConfig(w)
	cfg.Policy = p
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// submit runs a batch of hand-assembled configurations through the
// shared engine, returning results in input order. Cross-product
// shapes should build an engine.Sweep instead.
func submit(ctx context.Context, cfgs []soc.Config) ([]soc.Result, error) {
	jobs := make([]engine.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = engine.Job{Config: c}
	}
	return Engine().RunBatchContext(ctx, jobs)
}

// prewarmProbes batches the §6 scalability probe runs of a suite so the
// per-row ProjectedPerfGainWith calls resolve from the engine cache.
// Rows without a usable probe (no relevant clock) are skipped.
func prewarmProbes(ctx context.Context, cfgs []soc.Config, bases []soc.Result, gfx bool) error {
	probes := make([]soc.Config, 0, len(cfgs))
	for i, cfg := range cfgs {
		if probe, ok := soc.ScalabilityProbeConfig(cfg, bases[i], gfx); ok {
			probes = append(probes, probe)
		}
	}
	_, err := submit(ctx, probes)
	return err
}

// engineRun returns a soc.RunFunc routing through the shared engine
// under ctx, for the §6 projection probes.
func engineRun(ctx context.Context) soc.RunFunc {
	return func(cfg soc.Config) (soc.Result, error) {
		return Engine().RunContext(ctx, cfg)
	}
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
