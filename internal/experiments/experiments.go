// Package experiments regenerates every table and figure of the
// paper's evaluation: the §3 motivation experiments (Fig. 2-4), the
// flow-latency budget (Fig. 5 / §5), the prediction study (Fig. 6),
// the main results (Figs. 7-9), the TDP sensitivity study (Fig. 10),
// the §7.4 DRAM sensitivity analyses, and the design-choice ablations
// called out in DESIGN.md.
//
// Each experiment is a pure function returning a typed result with a
// String() rendering; cmd/experiments and the benchmark harness are
// thin wrappers around this package.
//
// All multi-workload fan-out goes through a shared internal/engine
// instance: every figure builds its batch of configurations and
// submits it once, so the sweeps run with bounded parallelism
// (SetParallelism) and repeated runs — the baselines every figure
// compares against, the §6 scalability probes — are memoized across
// figures.
package experiments

import (
	"fmt"
	"sync"

	"sysscale/internal/engine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// minRunTime keeps short workloads running long enough to cover PMU
// intervals and phase loops.
const minRunTime = 2 * sim.Second

// shared is the engine every experiment submits to. Replacing it via
// SetParallelism drops the memoized results.
var (
	engMu  sync.Mutex
	shared = engine.New()
)

// SetParallelism rebuilds the shared experiment engine with at most n
// simulations in flight (n <= 0 restores the GOMAXPROCS default). The
// result cache starts empty.
func SetParallelism(n int) {
	engMu.Lock()
	defer engMu.Unlock()
	shared = engine.New(engine.WithParallelism(n))
}

// Engine returns the shared experiment engine (for cache statistics
// and direct batch submission).
func Engine() *engine.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	return shared
}

// baseConfig returns the Table 2 platform configured for a workload,
// covering at least two full loops of its phases.
func baseConfig(w workload.Workload) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 2 * w.TotalDuration()
	if cfg.Duration < minRunTime {
		cfg.Duration = minRunTime
	}
	return cfg
}

// configFor assembles the config for one workload under one policy.
// The policy instance is not consumed: the engine clones it per job.
func configFor(w workload.Workload, p soc.Policy, mut func(*soc.Config)) soc.Config {
	cfg := baseConfig(w)
	cfg.Policy = p
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// submit runs a batch of configurations through the shared engine,
// returning results in input order.
func submit(cfgs []soc.Config) ([]soc.Result, error) {
	jobs := make([]engine.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = engine.Job{Config: c}
	}
	return Engine().RunBatch(jobs)
}

// runPolicy executes one workload under one policy on the default
// platform (engine-backed and memoized).
func runPolicy(w workload.Workload, p soc.Policy, mut func(*soc.Config)) (soc.Result, error) {
	rs, err := submit([]soc.Config{configFor(w, p, mut)})
	if err != nil {
		return soc.Result{}, err
	}
	return rs[0], nil
}

// runMatrix batches the cross product suite × policies in one
// submission; the returned results are indexed [workload][policy].
// One policy instance per column is enough — the engine clones it for
// every job.
func runMatrix(ws []workload.Workload, ps []soc.Policy, mut func(workload.Workload, *soc.Config)) ([][]soc.Result, error) {
	cfgs := make([]soc.Config, 0, len(ws)*len(ps))
	for _, w := range ws {
		for _, p := range ps {
			cfg := baseConfig(w)
			cfg.Policy = p
			if mut != nil {
				mut(w, &cfg)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	flat, err := submit(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]soc.Result, len(ws))
	for i := range ws {
		out[i] = flat[i*len(ps) : (i+1)*len(ps)]
	}
	return out, nil
}

// pairSuite runs baseline and SysScale across a whole suite in one
// batch; base[i] and sys[i] correspond to ws[i].
func pairSuite(ws []workload.Workload, mut func(workload.Workload, *soc.Config)) (base, sys []soc.Result, err error) {
	m, err := runMatrix(ws, []soc.Policy{policy.NewBaseline(), policy.NewSysScaleDefault()}, mut)
	if err != nil {
		return nil, nil, err
	}
	base = make([]soc.Result, len(ws))
	sys = make([]soc.Result, len(ws))
	for i := range m {
		base[i], sys[i] = m[i][0], m[i][1]
	}
	return base, sys, nil
}

// prewarmProbes batches the §6 scalability probe runs of a suite so the
// per-row ProjectedPerfGainWith calls resolve from the engine cache.
// Rows without a usable probe (no relevant clock) are skipped.
func prewarmProbes(cfgs []soc.Config, bases []soc.Result, gfx bool) error {
	probes := make([]soc.Config, 0, len(cfgs))
	for i, cfg := range cfgs {
		if probe, ok := soc.ScalabilityProbeConfig(cfg, bases[i], gfx); ok {
			probes = append(probes, probe)
		}
	}
	_, err := submit(probes)
	return err
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
