// Package experiments regenerates every table and figure of the
// paper's evaluation: the §3 motivation experiments (Fig. 2-4), the
// flow-latency budget (Fig. 5 / §5), the prediction study (Fig. 6),
// the main results (Figs. 7-9), the TDP sensitivity study (Fig. 10),
// the §7.4 DRAM sensitivity analyses, and the design-choice ablations
// called out in DESIGN.md.
//
// Each experiment is a pure function returning a typed result with a
// String() rendering; cmd/experiments and the benchmark harness are
// thin wrappers around this package.
package experiments

import (
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// minRunTime keeps short workloads running long enough to cover PMU
// intervals and phase loops.
const minRunTime = 2 * sim.Second

// baseConfig returns the Table 2 platform configured for a workload,
// covering at least two full loops of its phases.
func baseConfig(w workload.Workload) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 2 * w.TotalDuration()
	if cfg.Duration < minRunTime {
		cfg.Duration = minRunTime
	}
	return cfg
}

// runPolicy executes one workload under one policy on the default
// platform.
func runPolicy(w workload.Workload, p soc.Policy, mut func(*soc.Config)) (soc.Result, error) {
	cfg := baseConfig(w)
	cfg.Policy = p
	if mut != nil {
		mut(&cfg)
	}
	return soc.Run(cfg)
}

// pair runs baseline and SysScale on the same configuration.
func pair(w workload.Workload, mut func(*soc.Config)) (base, sys soc.Result, err error) {
	base, err = runPolicy(w, policy.NewBaseline(), mut)
	if err != nil {
		return
	}
	sys, err = runPolicy(w, policy.NewSysScaleDefault(), mut)
	return
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
