package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/core"
	"sysscale/internal/engine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Fig. 6 evaluates the dynamic-demand predictor on >1600 workloads
// across nine panels: three DRAM frequency pairs (1.6→0.8, 1.6→1.06,
// 2.13→1.06 GHz) × three workload classes (CPU single-thread, CPU
// multi-thread, graphics). For each workload we measure the actual
// normalized performance at the low bin, train the four-counter linear
// predictor on half the population, and report the actual-vs-predicted
// correlation, the threshold rule's classification accuracy, and its
// false-positive count (the paper reports zero false positives).

// Fig6Pair identifies one frequency pair.
type Fig6Pair struct {
	Name      string
	High, Low vf.OperatingPoint
}

// Fig6Pairs returns the paper's three pairs.
func Fig6Pairs() []Fig6Pair {
	return []Fig6Pair{
		{Name: "1.6GHz->0.8GHz", High: vf.MakeOperatingPoint("high", 1.6*vf.GHz, 0.8*vf.GHz), Low: vf.MakeOperatingPoint("low", 0.8*vf.GHz, 0.4*vf.GHz)},
		{Name: "1.6GHz->1.06GHz", High: vf.MakeOperatingPoint("high", 1.6*vf.GHz, 0.8*vf.GHz), Low: vf.MakeOperatingPoint("low", 1.06*vf.GHz, 0.4*vf.GHz)},
		{Name: "2.13GHz->1.06GHz", High: vf.MakeOperatingPoint("high", 2.13*vf.GHz, 0.9*vf.GHz), Low: vf.MakeOperatingPoint("low", 1.06*vf.GHz, 0.4*vf.GHz)},
	}
}

// Fig6Panel is one panel's outcome.
type Fig6Panel struct {
	Pair        string
	Class       workload.Class
	Workloads   int
	Correlation float64
	Accuracy    float64
	FalsePos    int
	MeanActual  float64 // mean normalized performance at the low bin
}

// Fig6Result aggregates the nine panels.
type Fig6Result struct {
	Panels []Fig6Panel
	Total  int
}

// Fig6Options size the study. Defaults reproduce the paper's scale
// (>1600 workloads); tests use smaller counts.
type Fig6Options struct {
	PerPanel int
	Duration sim.Time
	Seed     uint64
	// Bound is the acceptable degradation for the threshold rule.
	Bound float64
	// NoiseFrac adds seeded multiplicative measurement noise to the
	// counters and measured scores, standing in for the run-to-run
	// variation of the paper's real-system measurements.
	NoiseFrac float64
}

// DefaultFig6Options returns the full-scale study.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{
		PerPanel:  180, // 9 panels x 180 = 1620 workloads
		Duration:  600 * sim.Millisecond,
		Seed:      42,
		Bound:     0.03,
		NoiseFrac: 0.012,
	}
}

// Fig6 runs the prediction study.
func Fig6(ctx context.Context, opt Fig6Options) (Fig6Result, error) {
	if opt.PerPanel <= 0 {
		opt = DefaultFig6Options()
	}
	classes := []workload.Class{workload.CPUSingleThread, workload.CPUMultiThread, workload.Graphics}
	var res Fig6Result
	rng := sim.NewRNG(opt.Seed)
	for pi, pair := range Fig6Pairs() {
		for ci, class := range classes {
			panel, err := fig6Panel(ctx, pair, class, opt, rng.Uint64()+uint64(pi*31+ci*7))
			if err != nil {
				return res, fmt.Errorf("fig6 %s/%v: %w", pair.Name, class, err)
			}
			res.Panels = append(res.Panels, panel)
			res.Total += panel.Workloads
		}
	}
	return res, nil
}

func fig6Panel(ctx context.Context, pair Fig6Pair, class workload.Class, opt Fig6Options, seed uint64) (Fig6Panel, error) {
	ws := workload.Synthetic(workload.SyntheticSpec{Class: class, Count: opt.PerPanel, Seed: seed})
	noise := sim.NewRNG(seed ^ 0xabcdef)

	samples := make([]core.TrainingSample, 0, len(ws))
	runs := make([]core.CalibrationRun, 0, len(ws))

	// Both static points of every workload as one sweep: the panel's
	// 2×N runs are independent, so the engine fans them out. Compute
	// clocks are pinned so both columns differ only in the IO+memory
	// operating point.
	base := soc.DefaultConfig()
	base.Duration = opt.Duration
	base.Ladder = []vf.OperatingPoint{pair.High, pair.Low}
	base.FixedCoreFreq = 2.0 * vf.GHz
	if class == workload.Graphics {
		base.FixedGfxFreq = 0.85 * vf.GHz
	}
	rs, err := engine.NewSweep().
		Base(base).
		Policies(policy.NewStaticPoint(0, false), policy.NewStaticPoint(1, false)).
		Workloads(ws...).
		RunContext(ctx, Engine())
	if err != nil {
		return Fig6Panel{}, err
	}

	for i := range ws {
		high, low := rs.Result(i, 0), rs.Result(i, 1)
		if high.Score <= 0 {
			continue
		}
		norm := low.Score / high.Score
		if norm > 1 {
			norm = 1
		}
		// Measurement noise on score and counters.
		norm *= 1 + noise.Norm(0, opt.NoiseFrac)
		if norm > 1 {
			norm = 1
		}
		counters := high.CounterAvg
		for i := range counters {
			// Counter noise is far smaller than score noise: counters
			// are averaged over the whole run by the PMU.
			counters[i] *= 1 + noise.Norm(0, opt.NoiseFrac/3)
			if counters[i] < 0 {
				counters[i] = 0
			}
		}
		samples = append(samples, core.TrainingSample{Counters: counters, NormPerf: norm})
		runs = append(runs, core.CalibrationRun{Counters: counters, Degradation: 1 - norm})
	}
	if len(samples) < 16 {
		return Fig6Panel{}, fmt.Errorf("too few usable samples (%d)", len(samples))
	}

	// Train on the even half, evaluate on the full population.
	var train []core.TrainingSample
	for i, s := range samples {
		if i%2 == 0 {
			train = append(train, s)
		}
	}
	var pred core.Predictor
	if err := pred.Train(train); err != nil {
		return Fig6Panel{}, err
	}
	corr := pred.EvaluatePrediction(samples)

	thr, err := core.CalibrateThresholds(runs, opt.Bound, 6.5e9)
	if err != nil {
		return Fig6Panel{}, err
	}
	thr = core.EnforceNoFalsePositives(thr, runs)

	var meanActual float64
	for _, s := range samples {
		meanActual += s.NormPerf
	}
	meanActual /= float64(len(samples))

	return Fig6Panel{
		Pair:        pair.Name,
		Class:       class,
		Workloads:   len(samples),
		Correlation: corr,
		Accuracy:    core.Accuracy(thr, runs),
		FalsePos:    core.FalsePositiveCount(thr, runs),
		MeanActual:  meanActual,
	}, nil
}

func (r Fig6Result) String() string {
	tab := stats.NewTable(fmt.Sprintf("Fig. 6: actual vs predicted performance (%d workloads)", r.Total),
		"Pair", "Class", "N", "Correlation", "Accuracy", "FalsePos", "MeanNormPerf")
	for _, p := range r.Panels {
		tab.AddRow(p.Pair, p.Class.String(), fmt.Sprintf("%d", p.Workloads),
			fmt.Sprintf("%.2f", p.Correlation), fmt.Sprintf("%.1f%%", 100*p.Accuracy),
			fmt.Sprintf("%d", p.FalsePos), fmt.Sprintf("%.3f", p.MeanActual))
	}
	return tab.String()
}
