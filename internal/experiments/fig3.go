package experiments

import (
	"fmt"

	"sysscale/internal/ioengine"
	"sysscale/internal/sim"
	"sysscale/internal/stats"
	"sysscale/internal/workload"
)

// Fig3aResult reproduces Fig. 3(a): memory-bandwidth demand over time
// for three SPEC benchmarks and the 3DMark graphics benchmark.
type Fig3aResult struct {
	Names  []string
	Series [][]float64 // GB/s, 100ms samples
}

// fig3aWorkloads returns the four traced workloads.
func fig3aWorkloads() ([]workload.Workload, error) {
	var out []workload.Workload
	for _, n := range []string{"400.perlbench", "470.lbm", "473.astar"} {
		w, err := workload.SPEC(n)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return append(out, workload.ThreeDMark06()), nil
}

// Fig3a samples the demand traces.
func Fig3a() (Fig3aResult, error) {
	ws, err := fig3aWorkloads()
	if err != nil {
		return Fig3aResult{}, err
	}
	var out Fig3aResult
	for _, w := range ws {
		samples := w.BWOverTime(100 * sim.Millisecond)
		gb := make([]float64, len(samples))
		for i, s := range samples {
			gb[i] = s / 1e9
		}
		out.Names = append(out.Names, w.Name)
		out.Series = append(out.Series, gb)
	}
	return out, nil
}

func (r Fig3aResult) String() string {
	tab := stats.NewTable("Fig. 3(a): memory BW demand over time (GB/s)",
		"Workload", "Min", "Mean", "Max")
	for i, n := range r.Names {
		tab.AddRowf(n, stats.Min(r.Series[i]), stats.Mean(r.Series[i]), stats.Max(r.Series[i]))
	}
	return tab.String()
}

// Fig3bRow is one IO/compute engine configuration's static bandwidth
// demand.
type Fig3bRow struct {
	Engine   string
	Config   string
	GBps     float64
	PeakFrac float64 // of dual-channel LPDDR3-1600 peak (25.6GB/s)
}

// Fig3bResult reproduces Fig. 3(b): average memory-bandwidth demand of
// the display engine, ISP engine and graphics engines across
// configurations. The paper's anchor points: an HD panel needs ~17% of
// peak, a single 4K panel ~70%.
type Fig3bResult struct{ Rows []Fig3bRow }

// Fig3b evaluates the static-demand tables.
func Fig3b() Fig3bResult {
	const peak = 25.6 // GB/s
	var out Fig3bResult
	add := func(engine, config string, bytesPerSec float64) {
		out.Rows = append(out.Rows, Fig3bRow{
			Engine:   engine,
			Config:   config,
			GBps:     bytesPerSec / 1e9,
			PeakFrac: bytesPerSec / (peak * 1e9),
		})
	}
	panels := []struct {
		res ioengine.Resolution
		n   int
	}{
		{ioengine.DisplayHD, 1},
		{ioengine.DisplayFHD, 1},
		{ioengine.DisplayQHD, 1},
		{ioengine.Display4K, 1},
		{ioengine.DisplayHD, 3},
	}
	for _, p := range panels {
		var csr ioengine.CSR
		for i := 0; i < p.n && i < ioengine.MaxPanels; i++ {
			csr.Panels[i] = ioengine.Panel{Res: p.res, RefreshHz: 60}
		}
		name := fmt.Sprintf("%dx %v@60", p.n, p.res)
		add("display", name, csr.DisplayBandwidth())
	}
	for _, m := range []ioengine.CameraMode{ioengine.Camera720p, ioengine.Camera1080p, ioengine.Camera4K} {
		add("ISP", m.String(), m.Bandwidth())
	}
	for _, w := range workload.GraphicsSuite() {
		add("GFX", w.Name, w.AvgMemBW())
	}
	return out
}

func (r Fig3bResult) String() string {
	tab := stats.NewTable("Fig. 3(b): static memory BW demand per engine configuration",
		"Engine", "Configuration", "GB/s", "% of peak")
	for _, row := range r.Rows {
		tab.AddRow(row.Engine, row.Config, fmt.Sprintf("%.2f", row.GBps),
			fmt.Sprintf("%.0f%%", 100*row.PeakFrac))
	}
	return tab.String()
}
