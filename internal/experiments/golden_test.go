package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden-results regression harness: the headline numbers of the
// motivation study (Fig. 2a) and the main results (Figs. 7 and 8) are
// snapshotted as JSON under testdata/golden. Every test run re-derives
// them and requires byte-for-byte equality with the committed
// snapshots, so a performance optimization (like the tick memo of the
// steady-state fast path) is checked against recorded results rather
// than only against its own A/B self-consistency — any change that
// perturbs simulation outcomes, however subtly, fails loudly here.
//
// The comparison is exact: the simulator is a pure, deterministic
// float64 computation, so on a given architecture the results are
// bit-stable. After an *intentional* model change, regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the snapshot diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite the golden result snapshots")

// goldenPath returns the snapshot location for a name.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// checkGolden marshals got (indented, deterministic) and compares it
// byte-for-byte against the committed snapshot, rewriting the snapshot
// under -update.
func checkGolden(t *testing.T, name string, got any) {
	t.Helper()
	cur, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	cur = append(cur, '\n')
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, cur, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create it): %v", path, err)
	}
	if bytes.Equal(cur, want) {
		return
	}
	// Locate the first differing line for a readable failure.
	curLines := bytes.Split(cur, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(curLines) && i < len(wantLines); i++ {
		if !bytes.Equal(curLines[i], wantLines[i]) {
			t.Fatalf("%s: results drifted from golden snapshot at line %d:\n  golden: %s\n  got:    %s\n(rerun with -update only if the change is intentional)",
				path, i+1, wantLines[i], curLines[i])
		}
	}
	t.Fatalf("%s: results drifted from golden snapshot (length %d vs %d lines)",
		path, len(wantLines), len(curLines))
}

func TestGoldenFig2a(t *testing.T) {
	r, err := Fig2a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2a", r)
}

func TestGoldenFig7(t *testing.T) {
	r, err := Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7", r)
}

func TestGoldenFig8(t *testing.T) {
	r, err := Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8", r)
}

// TestGoldenMonteCarlo locks the default small Monte Carlo sweep
// (25 workloads, seed 1): the generator stream, the engine batch
// ordering and the statistics pipeline all feed this snapshot, so a
// drift in any of them — not just the SoC model — is caught.
func TestGoldenMonteCarlo(t *testing.T) {
	opt := DefaultMonteCarloOptions()
	opt.N = 25
	r, err := MonteCarlo(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "montecarlo", r)
}
