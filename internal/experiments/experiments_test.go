package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"sysscale/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if tab.Baseline.DDR != 1.6e9 || tab.MDDVFS.DDR != 1.06e9 {
		t.Fatal("Table 1 DRAM frequencies wrong")
	}
	if math.Abs(tab.VSARatio()-0.80) > 0.01 {
		t.Fatalf("V_SA ratio %.3f, paper 0.80", tab.VSARatio())
	}
	if math.Abs(tab.VIORatio()-0.85) > 0.01 {
		t.Fatalf("V_IO ratio %.3f, paper 0.85", tab.VIORatio())
	}
	if !strings.Contains(tab.String(), "1.06GHz") {
		t.Fatal("rendering broken")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab := Table2()
	if tab.CoreBase != 1.2e9 || tab.GfxBase != 0.3e9 {
		t.Fatal("base frequencies wrong (Table 2)")
	}
	if tab.LLCBytes != 4<<20 || tab.TDP != 4.5 {
		t.Fatal("LLC/TDP wrong (Table 2)")
	}
	if tab.Cores != 2 || tab.Threads != 4 {
		t.Fatal("core/thread counts wrong (Table 2)")
	}
	if tab.Geometry.Channels != 2 || tab.Geometry.CapacityGB != 8 || tab.Geometry.ECC {
		t.Fatal("memory configuration wrong (Table 2)")
	}
}

func TestFig2aShape(t *testing.T) {
	r, err := Fig2a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("Fig 2a needs the three motivation benchmarks")
	}
	for _, row := range r.Rows {
		// Average power drops ~10-11% under MD-DVFS for all three.
		if row.PowerDelta > -0.07 || row.PowerDelta < -0.16 {
			t.Errorf("%s: power delta %.3f outside the paper's band", row.Name, row.PowerDelta)
		}
	}
	perl, cactus, lbm := r.Rows[0], r.Rows[1], r.Rows[2]
	// perlbench barely slows; cactusADM and lbm lose real performance.
	if perl.PerfDelta < -0.03 {
		t.Errorf("perlbench lost %.1f%%, want small", -100*perl.PerfDelta)
	}
	if cactus.PerfDelta > -0.04 || lbm.PerfDelta > -0.03 {
		t.Errorf("memory-bound penalties too small: cactus %.3f lbm %.3f", cactus.PerfDelta, lbm.PerfDelta)
	}
	// Redistribution at 1.3GHz helps perlbench, not the memory-bound two.
	if perl.PerfAt13GHz < 0.03 {
		t.Errorf("perlbench @1.3GHz gain %.3f, want positive", perl.PerfAt13GHz)
	}
	if cactus.PerfAt13GHz > perl.PerfAt13GHz || lbm.PerfAt13GHz > perl.PerfAt13GHz {
		t.Error("memory-bound workloads should benefit least from the core boost")
	}
}

func TestFig2bFractions(t *testing.T) {
	r, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		sum := row.MemLatency + row.MemBW + row.NonMemory
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %v", row.Name, sum)
		}
	}
	// cactusADM latency-dominant, lbm bandwidth-dominant (Fig. 2b).
	if r.Rows[1].MemLatency <= r.Rows[1].MemBW {
		t.Error("cactusADM must be latency dominant")
	}
	if r.Rows[2].MemBW <= r.Rows[2].MemLatency {
		t.Error("lbm must be bandwidth dominant")
	}
}

func TestFig2cSeries(t *testing.T) {
	r, err := Fig2c()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 || len(r.Series[0]) == 0 {
		t.Fatal("series missing")
	}
}

func TestFig3(t *testing.T) {
	a, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Names) != 4 {
		t.Fatal("Fig 3a needs four workloads")
	}
	b := Fig3b()
	var hdFrac, fourKFrac float64
	for _, row := range b.Rows {
		if row.Engine == "display" && strings.Contains(row.Config, "1x HD") {
			hdFrac = row.PeakFrac
		}
		if row.Engine == "display" && strings.Contains(row.Config, "1x 4K") {
			fourKFrac = row.PeakFrac
		}
	}
	// Fig. 3(b) anchors: HD ~17%, 4K ~70% of peak.
	if math.Abs(hdFrac-0.17) > 0.01 {
		t.Errorf("HD fraction %.3f, paper 0.17", hdFrac)
	}
	if math.Abs(fourKFrac-0.70) > 0.01 {
		t.Errorf("4K fraction %.3f, paper 0.70", fourKFrac)
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +22% power, -10% performance from unoptimized MRC. The
	// memory-rail power increase is the comparable rail-level number.
	if r.MemPowerIncrease < 0.12 || r.MemPowerIncrease > 0.35 {
		t.Errorf("memory-rail power increase %.3f outside the band", r.MemPowerIncrease)
	}
	if r.PerfDegradation < 0.05 || r.PerfDegradation > 0.15 {
		t.Errorf("perf degradation %.3f, paper ~0.10", r.PerfDegradation)
	}
	if r.PowerIncrease <= 0 {
		t.Error("package power must increase with detuned registers")
	}
}

func TestFig5Budget(t *testing.T) {
	r, err := Fig5Latency()
	if err != nil {
		t.Fatal(err)
	}
	if r.DownLatency >= r.Bound || r.UpLatency >= r.Bound {
		t.Fatalf("transition latencies %v/%v exceed the 10us budget", r.DownLatency, r.UpLatency)
	}
	if len(r.StepsDown) < 6 {
		t.Fatal("flow steps missing from the log")
	}
}

func TestFig6Reduced(t *testing.T) {
	opt := DefaultFig6Options()
	opt.PerPanel = 30
	opt.Duration = 300 * sim.Millisecond
	r, err := Fig6(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 9 {
		t.Fatalf("panels = %d, want 9", len(r.Panels))
	}
	for _, p := range r.Panels {
		if p.FalsePos != 0 {
			t.Errorf("%s/%v: %d false positives (paper: zero)", p.Pair, p.Class, p.FalsePos)
		}
		if p.Correlation < 0.6 {
			t.Errorf("%s/%v: correlation %.2f too low", p.Pair, p.Class, p.Correlation)
		}
		if p.Accuracy < 0.4 {
			t.Errorf("%s/%v: accuracy %.2f too low", p.Pair, p.Class, p.Accuracy)
		}
	}
	// The 1.6->0.8 pair degrades more than 1.6->1.06 (§7.4: 2-3x).
	var d08, d106 float64
	for _, p := range r.Panels {
		if p.Class.String() != "cpu-st" {
			continue
		}
		switch p.Pair {
		case "1.6GHz->0.8GHz":
			d08 = 1 - p.MeanActual
		case "1.6GHz->1.06GHz":
			d106 = 1 - p.MeanActual
		}
	}
	if d08 <= d106 {
		t.Errorf("0.8GHz degradation (%.3f) not above 1.06GHz (%.3f)", d08, d106)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 29 {
		t.Fatalf("rows = %d, want 29 benchmarks", len(r.Rows))
	}
	// Paper ordering: SysScale >> CoScale-R > MemScale-R.
	if !(r.AvgSysScale > r.AvgCoScaleR && r.AvgCoScaleR > r.AvgMemScaleR) {
		t.Fatalf("ordering broken: sys %.3f co %.3f mem %.3f",
			r.AvgSysScale, r.AvgCoScaleR, r.AvgMemScaleR)
	}
	// Magnitudes near the paper's 9.2 / 3.8 / 1.7.
	if r.AvgSysScale < 0.05 || r.AvgSysScale > 0.13 {
		t.Errorf("SysScale avg %.3f outside band (paper 0.092)", r.AvgSysScale)
	}
	if r.AvgMemScaleR < 0.005 || r.AvgMemScaleR > 0.03 {
		t.Errorf("MemScale-R avg %.3f outside band (paper 0.017)", r.AvgMemScaleR)
	}
	if r.AvgCoScaleR < 0.015 || r.AvgCoScaleR > 0.06 {
		t.Errorf("CoScale-R avg %.3f outside band (paper 0.038)", r.AvgCoScaleR)
	}
	if r.MaxSysScale < 0.13 || r.MaxSysScale > 0.22 {
		t.Errorf("max %.3f outside band (paper 0.16)", r.MaxSysScale)
	}
	byName := map[string]Fig7Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// Named behaviours: scalable workloads gain most, memory-bound ~0.
	if byName["416.gamess"].SysScale < 0.12 {
		t.Error("gamess gain too small")
	}
	for _, n := range []string{"410.bwaves", "433.milc", "470.lbm"} {
		if g := byName[n].SysScale; math.Abs(g) > 0.01 {
			t.Errorf("%s gain %.3f, paper ~0", n, g)
		}
	}
	if byName["473.astar"].SysScale < 0.04 {
		t.Error("astar's phased gain missing")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("three 3DMark workloads expected")
	}
	for _, row := range r.Rows {
		if row.SysScale < 0.04 || row.SysScale > 0.14 {
			t.Errorf("%s: SysScale %.3f outside band (paper 6.7-8.9%%)", row.Name, row.SysScale)
		}
		if row.SysScale < 3*row.MemScaleR {
			t.Errorf("%s: SysScale not well above the prior work (paper ~5x)", row.Name)
		}
		if row.MemScaleR != row.CoScaleR {
			t.Errorf("%s: CoScale must equal MemScale on graphics (§7.2)", row.Name)
		}
	}
	// Paper ordering: 3DMark06 > Vantage > 3DMark11.
	if !(r.Rows[0].SysScale > r.Rows[2].SysScale && r.Rows[2].SysScale > r.Rows[1].SysScale) {
		t.Errorf("3DMark ordering broken: %.3f / %.3f / %.3f",
			r.Rows[0].SysScale, r.Rows[1].SysScale, r.Rows[2].SysScale)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatal("four battery workloads expected")
	}
	byName := map[string]Fig9Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if !row.PerfMet {
			t.Errorf("%s: fixed demand not met", row.Name)
		}
		if row.SysScale < 0.05 || row.SysScale > 0.13 {
			t.Errorf("%s: saving %.3f outside the 6.4-10.7%% band", row.Name, row.SysScale)
		}
		if row.MemScaleR >= row.SysScale {
			t.Errorf("%s: prior work not below SysScale", row.Name)
		}
	}
	// Paper ordering: playback and gaming save most, web least.
	if byName["web-browsing"].SysScale >= byName["video-playback"].SysScale {
		t.Error("web browsing should save least (paper 6.4% vs 10.7%)")
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatal("four TDPs expected")
	}
	// Benefit decreases monotonically with TDP (Fig. 10).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Summary.Mean >= r.Rows[i-1].Summary.Mean {
			t.Errorf("mean gain not decreasing: %.1f at %.1fW vs %.1f at %.1fW",
				r.Rows[i].Summary.Mean, float64(r.Rows[i].TDP),
				r.Rows[i-1].Summary.Mean, float64(r.Rows[i-1].TDP))
		}
	}
	// 3.5W roughly doubles the 4.5W average and has the biggest max.
	if r.Rows[0].Summary.Mean < 1.3*r.Rows[1].Summary.Mean {
		t.Errorf("3.5W mean %.1f not well above 4.5W mean %.1f",
			r.Rows[0].Summary.Mean, r.Rows[1].Summary.Mean)
	}
	if r.Rows[0].Summary.Max < 20 {
		t.Errorf("3.5W max %.1f%%, paper up to 33%%", r.Rows[0].Summary.Max)
	}
}

func TestDRAMSensitivityShape(t *testing.T) {
	r, err := DRAMSensitivity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// §7.4: DDR4 1.86->1.33 frees less than LPDDR3 1.6->1.06 (~7%).
	if r.DDR4Freed >= r.LPDDR3Freed {
		t.Fatal("DDR4 freed budget not below LPDDR3")
	}
	rel := 1 - r.DDR4Freed/r.LPDDR3Freed
	if rel < 0.02 || rel > 0.2 {
		t.Errorf("DDR4 deficit %.2f outside band (paper ~0.07)", rel)
	}
	// §7.4: V_SA already at Vmin at 1.06GHz.
	if r.VSAAt08 != r.VSAAt106 {
		t.Fatal("V_SA must be identical at 1.06 and 0.8GHz (Vmin floor)")
	}
	// §7.4: 0.8GHz degrades 2-3x more than 1.06GHz.
	ratio := r.Degrade08 / r.Degrade106
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("0.8GHz penalty ratio %.2f outside the 2-3x band", ratio)
	}
}

func TestImplementationCost(t *testing.T) {
	r, err := ImplementationCost()
	if err != nil {
		t.Fatal(err)
	}
	if r.MRCSRAMBytes > r.SRAMBudget {
		t.Fatal("MRC images exceed the 0.5KB SRAM budget (§5)")
	}
	if r.FirmwareBytes > 700 {
		t.Fatal("firmware exceeds ~0.6KB (§5)")
	}
}

func TestAblationsShape(t *testing.T) {
	r, err := Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]AblationRow{}
	for _, row := range r.Rows {
		rows[row.Name] = row
	}
	full := rows["full"]
	if full.AvgGain <= 0 || full.AvgBatterySaving <= 0 {
		t.Fatal("full SysScale shows no benefit")
	}
	// Observation 4 inside the policy: without MRC reloads both the
	// performance gain and (especially) the battery saving collapse.
	if rows["no-mrc-reload"].AvgGain >= full.AvgGain {
		t.Error("MRC ablation did not cost performance")
	}
	if rows["no-mrc-reload"].AvgBatterySaving >= full.AvgBatterySaving-0.03 {
		t.Error("MRC ablation did not cost battery savings")
	}
	// Without redistribution the perf gain disappears (power-saving
	// only), while battery savings persist.
	if rows["no-redistribution"].AvgGain >= 0.02 {
		t.Error("redistribution ablation still gains performance")
	}
	if rows["no-redistribution"].AvgBatterySaving < full.AvgBatterySaving-0.01 {
		t.Error("redistribution ablation should not hurt battery savings")
	}
	// Stricter thresholds forfeit most of the gain.
	if rows["threshold-half"].AvgGain >= 0.6*full.AvgGain {
		t.Error("halved thresholds should forfeit most of the gain")
	}
}

func TestCalibrateReproducesZeroFP(t *testing.T) {
	r, err := Calibrate(context.Background(), 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.FalsePos != 0 {
		t.Fatalf("calibration left %d false positives", r.FalsePos)
	}
	if r.Accuracy < 0.6 {
		t.Fatalf("calibration accuracy %.2f too low", r.Accuracy)
	}
	if r.Runs < 50 {
		t.Fatalf("too few usable runs: %d", r.Runs)
	}
}

func TestMultiPointShape(t *testing.T) {
	r, err := MultiPoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxStep != 1 {
		t.Fatalf("ladder step %d; §4.3 requires adjacent-point moves only", r.MaxStep)
	}
	rows := map[string]MultiPointRow{}
	for _, row := range r.Rows {
		rows[row.Name] = row
	}
	// lbm must stay pinned high on either ladder.
	if lbm := rows["470.lbm"]; lbm.Residency[0] < 0.95 || lbm.ThreePointGain > 0.01 {
		t.Errorf("lbm not pinned high on the 3-point ladder: %+v", lbm)
	}
	// A light workload descends below the middle point.
	if g := rows["416.gamess"]; g.Residency[2] < 0.5 {
		t.Errorf("gamess did not reach the lowest point: %+v", g.Residency)
	}
	// §7.4's rationale for shipping two points: the 0.8GHz bin hurts
	// mid-memory workloads relative to the two-point ladder.
	if gcc := rows["403.gcc"]; gcc.ThreePointGain >= gcc.TwoPointGain {
		t.Errorf("gcc should lose on the 3-point ladder: %+v", gcc)
	}
}

func TestRenderings(t *testing.T) {
	// Smoke-test every String() used by cmd/experiments.
	tab1, tab2 := Table1(), Table2()
	for _, s := range []string{tab1.String(), tab2.String()} {
		if len(s) < 20 {
			t.Fatal("rendering too short")
		}
	}
}
