package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Fig7Row is one SPEC benchmark's outcome.
type Fig7Row struct {
	Name string
	// Projected comparators, following the paper's §6 methodology
	// (power-savings estimate → budget → frequency → scalability).
	MemScaleR float64
	CoScaleR  float64
	// SysScale is the measured (simulated closed-loop) improvement.
	SysScale float64
	// SimMemScaleR and SimCoScaleR are the honest closed-loop policy
	// simulations, which additionally expose the penalties (detuned
	// registers, shared rails) the projection ignores.
	SimMemScaleR float64
	SimCoScaleR  float64
	// LowResidency is SysScale's time share below the top point.
	LowResidency float64
}

// Fig7Result reproduces Fig. 7: per-benchmark and average performance
// improvement of MemScale-Redist, CoScale-Redist and SysScale on SPEC
// CPU2006 (paper averages: 1.7%, 3.8%, 9.2%; SysScale up to 16%).
type Fig7Result struct {
	Rows []Fig7Row
	// Averages across the suite.
	AvgMemScaleR, AvgCoScaleR, AvgSysScale float64
	MaxSysScale                            float64
}

// Fig7 runs the full SPEC CPU2006 suite: the four closed-loop policies
// of every benchmark as one sweep, then the §6 scalability probes as a
// second batch (they depend on the baseline results), then the
// projections — whose probe runs resolve from the engine cache.
func Fig7(ctx context.Context) (Fig7Result, error) {
	var res Fig7Result
	high, low := vf.HighPoint(), vf.LowPoint()
	ws := workload.SPECSuite()

	m, err := newSweep(
		policy.NewBaseline(),
		policy.NewSysScaleDefault(),
		policy.NewMemScaleRedist(),
		policy.NewCoScaleRedist(),
	).Workloads(ws...).RunContext(ctx, Engine())
	if err != nil {
		return res, err
	}

	baseCfgs := make([]soc.Config, len(ws))
	for i, w := range ws {
		baseCfgs[i] = configFor(w, policy.NewBaseline(), nil)
	}
	if err := prewarmProbes(ctx, baseCfgs, m.Col(0), false); err != nil {
		return res, err
	}

	run := engineRun(ctx)
	for i, w := range ws {
		base, sys, simMem, simCo := m.Result(i, 0), m.Result(i, 1), m.Result(i, 2), m.Result(i, 3)
		row := Fig7Row{
			Name:         w.Name,
			SysScale:     soc.PerfImprovement(sys, base),
			LowResidency: 1 - sys.PointResidency[0],
			SimMemScaleR: soc.PerfImprovement(simMem, base),
			SimCoScaleR:  soc.PerfImprovement(simCo, base),
		}

		memSave := soc.MemScaleProjectedSavings(base, high, low)
		row.MemScaleR, err = soc.ProjectedPerfGainWith(run, baseCfgs[i], base, memSave, false)
		if err != nil {
			return res, err
		}
		coSave := soc.CoScaleProjectedSavings(base, high, low)
		row.CoScaleR, err = soc.ProjectedPerfGainWith(run, baseCfgs[i], base, coSave, false)
		if err != nil {
			return res, err
		}

		res.Rows = append(res.Rows, row)
		res.AvgMemScaleR += row.MemScaleR
		res.AvgCoScaleR += row.CoScaleR
		res.AvgSysScale += row.SysScale
		if row.SysScale > res.MaxSysScale {
			res.MaxSysScale = row.SysScale
		}
	}
	n := float64(len(res.Rows))
	res.AvgMemScaleR /= n
	res.AvgCoScaleR /= n
	res.AvgSysScale /= n
	return res, nil
}

func (r Fig7Result) String() string {
	tab := stats.NewTable("Fig. 7: SPEC CPU2006 performance improvement",
		"Benchmark", "MemScale-R", "CoScale-R", "SysScale", "LowResid", "sim MemScale-R", "sim CoScale-R")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, pct(row.MemScaleR), pct(row.CoScaleR), pct(row.SysScale),
			fmt.Sprintf("%.0f%%", 100*row.LowResidency), pct(row.SimMemScaleR), pct(row.SimCoScaleR))
	}
	tab.AddRow("AVERAGE", pct(r.AvgMemScaleR), pct(r.AvgCoScaleR), pct(r.AvgSysScale), "",
		"", "")
	chart := stats.NewBarChart("SysScale improvement per benchmark", "%", 40)
	for _, row := range r.Rows {
		chart.Add(row.Name, 100*row.SysScale)
	}
	return tab.String() + chart.String() +
		fmt.Sprintf("paper: MemScale-R 1.7%%, CoScale-R 3.8%%, SysScale 9.2%% avg / 16%% max (measured max %s)\n", pct(r.MaxSysScale))
}
