package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/core"
	"sysscale/internal/engine"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/workload"
)

// AblationResult holds the design-choice ablations DESIGN.md calls out.
// Each entry compares full SysScale against a variant with one design
// element removed, averaged over a representative workload set.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one ablation's outcome.
type AblationRow struct {
	Name        string
	Description string
	// AvgGain is the variant's average SPEC performance improvement
	// over baseline (full SysScale's figure in the first row).
	AvgGain float64
	// AvgBatterySaving is the variant's average battery power saving.
	AvgBatterySaving float64
}

// ablationWorkloads is a representative subset (keeps the ablation
// sweep fast while covering the bottleneck spectrum).
var ablationWorkloads = []string{
	"416.gamess", "400.perlbench", "445.gobmk", "403.gcc", "436.cactusADM", "470.lbm",
}

// Ablations runs the ablation suite.
func Ablations(ctx context.Context) (AblationResult, error) {
	var res AblationResult

	type variant struct {
		name, desc string
		mk         func() soc.Policy
		mut        func(*soc.Config)
	}
	variants := []variant{
		{
			name: "full", desc: "SysScale as shipped",
			mk: func() soc.Policy { return policy.NewSysScaleDefault() },
		},
		{
			name: "no-mrc-reload", desc: "keep boot MRC image across transitions (Observation 4 inside the policy)",
			mk: func() soc.Policy {
				s := policy.NewSysScaleDefault()
				return policy.WithoutOptimizedMRC(s)
			},
		},
		{
			name: "no-redistribution", desc: "scale IO+memory domains but keep baseline compute budget",
			mk: func() soc.Policy {
				s := policy.NewSysScaleDefault()
				return policy.WithoutRedistribution(s)
			},
		},
		{
			name: "interval-5ms", desc: "evaluation interval 5ms instead of 30ms",
			mk:  func() soc.Policy { return policy.NewSysScaleDefault() },
			mut: func(c *soc.Config) { c.EvalInterval = 5 * sim.Millisecond },
		},
		{
			name: "interval-120ms", desc: "evaluation interval 120ms instead of 30ms",
			mk:  func() soc.Policy { return policy.NewSysScaleDefault() },
			mut: func(c *soc.Config) { c.EvalInterval = 120 * sim.Millisecond },
		},
		{
			name: "threshold-2x", desc: "decision thresholds doubled (laxer low-point gate)",
			mk: func() soc.Policy {
				thr := policy.DefaultThresholds()
				thr.OccTracer *= 2
				thr.LLCStalls *= 2
				thr.GfxMisses *= 2
				thr.IORPQ *= 2
				return policy.NewSysScale(thr)
			},
		},
		{
			name: "threshold-half", desc: "decision thresholds halved (stricter low-point gate)",
			mk: func() soc.Policy {
				thr := policy.DefaultThresholds()
				thr.OccTracer /= 2
				thr.LLCStalls /= 2
				thr.GfxMisses /= 2
				thr.IORPQ /= 2
				return policy.NewSysScale(thr)
			},
		},
	}

	specWs := make([]workload.Workload, 0, len(ablationWorkloads))
	for _, name := range ablationWorkloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return res, err
		}
		specWs = append(specWs, w)
	}

	// Each variant's SPEC subset and battery suite go out as sweeps;
	// the baseline columns repeat across variants with identical
	// configs, so the engine cache pays for them once.
	for _, v := range variants {
		variantSweep := func(ws []workload.Workload) (*engine.ResultSet, error) {
			s := newSweep(policy.NewBaseline(), v.mk()).Workloads(ws...)
			if v.mut != nil {
				s.Configure(v.mut)
			}
			return s.RunContext(ctx, Engine())
		}

		spec, err := variantSweep(specWs)
		if err != nil {
			return res, err
		}
		battery, err := variantSweep(workload.BatterySuite())
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: v.name, Description: v.desc,
			AvgGain:          spec.PerfImprovement(0).RowMean(1),
			AvgBatterySaving: battery.PowerReduction(0).RowMean(1),
		})
	}
	return res, nil
}

func (r AblationResult) String() string {
	tab := stats.NewTable("Ablations (subset of SPEC + battery suite)",
		"Variant", "SPEC gain", "Battery saving", "Description")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, pct(row.AvgGain), pct(row.AvgBatterySaving), row.Description)
	}
	return tab.String()
}

// CalibrationResult documents how the shipped DefaultThresholds were
// produced: the µ+σ rule over the below-bound population of a seeded
// synthetic sweep, then the zero-false-positive guard pass (§4.2).
type CalibrationResult struct {
	Thresholds core.Thresholds
	Runs       int
	Accuracy   float64
	FalsePos   int
}

// Calibrate regenerates the threshold calibration on the default
// platform.
func Calibrate(ctx context.Context, count int, seed uint64) (CalibrationResult, error) {
	if count <= 0 {
		count = 160
	}
	// The calibration population mixes the synthetic sweep with the
	// office-productivity set, mirroring the paper's representative
	// workload mix (footnote 6: SPEC, SYSmark, MobileMark, 3DMark).
	ws := workload.Synthetic(workload.SyntheticSpec{Class: workload.CPUSingleThread, Count: count, Seed: seed})
	ws = append(ws, workload.ProductivitySuite()...)

	// The whole calibration population (both static points per
	// workload) sweeps as one batch.
	base := soc.DefaultConfig()
	base.Duration = 600 * sim.Millisecond
	base.FixedCoreFreq = 2.0 * 1e9
	rs, err := engine.NewSweep().
		Base(base).
		Policies(policy.NewStaticPoint(0, false), policy.NewStaticPoint(1, false)).
		Workloads(ws...).
		RunContext(ctx, Engine())
	if err != nil {
		return CalibrationResult{}, err
	}
	var runs []core.CalibrationRun
	for i := range ws {
		high, low := rs.Result(i, 0), rs.Result(i, 1)
		if high.Score <= 0 {
			continue
		}
		runs = append(runs, core.CalibrationRun{
			Counters:    high.CounterAvg,
			Degradation: 1 - low.Score/high.Score,
		})
	}
	thr, err := core.CalibrateThresholds(runs, 0.03, 6.5e9)
	if err != nil {
		return CalibrationResult{}, err
	}
	thr = core.EnforceNoFalsePositives(thr, runs)
	return CalibrationResult{
		Thresholds: thr,
		Runs:       len(runs),
		Accuracy:   core.Accuracy(thr, runs),
		FalsePos:   core.FalsePositiveCount(thr, runs),
	}, nil
}

func (r CalibrationResult) String() string {
	return fmt.Sprintf("Calibration over %d runs: thr={occ %.2f, stalls %.2f, gfx %.3g, iorpq %.2f}, accuracy %.1f%%, false positives %d\n",
		r.Runs, r.Thresholds.OccTracer, r.Thresholds.LLCStalls, r.Thresholds.GfxMisses,
		r.Thresholds.IORPQ, 100*r.Accuracy, r.FalsePos)
}
