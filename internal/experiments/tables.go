package experiments

import (
	"fmt"

	"sysscale/internal/compute"
	"sysscale/internal/dram"
	"sysscale/internal/mrc"
	"sysscale/internal/pmu"
	"sysscale/internal/sim"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
)

// Table1Result reproduces Table 1: the two real experimental setups of
// the §3 motivation study.
type Table1Result struct {
	Baseline vf.OperatingPoint
	MDDVFS   vf.OperatingPoint
	CoreFreq vf.Hz
}

// Table1 derives both setups from the platform V/F curves and checks
// the paper's stated relationships (MD-DVFS at 0.8·V_SA and 0.85·V_IO).
func Table1() Table1Result {
	return Table1Result{
		Baseline: vf.HighPoint(),
		MDDVFS:   vf.LowPoint(),
		CoreFreq: 1.2 * vf.GHz,
	}
}

// VSARatio returns MD-DVFS V_SA as a fraction of baseline V_SA
// (paper: 0.8).
func (t Table1Result) VSARatio() float64 { return float64(t.MDDVFS.VSA / t.Baseline.VSA) }

// VIORatio returns MD-DVFS V_IO as a fraction of baseline V_IO
// (paper: 0.85).
func (t Table1Result) VIORatio() float64 { return float64(t.MDDVFS.VIO / t.Baseline.VIO) }

func (t Table1Result) String() string {
	tab := stats.NewTable("Table 1: experimental setups", "Component", "Baseline", "MD-DVFS")
	tab.AddRow("DRAM frequency", t.Baseline.DDR.String(), t.MDDVFS.DDR.String())
	tab.AddRow("IO Interconnect", t.Baseline.Interco.String(), t.MDDVFS.Interco.String())
	tab.AddRow("Shared Voltage", fmt.Sprintf("%.3fV", float64(t.Baseline.VSA)),
		fmt.Sprintf("%.3fV (%.2f x V_SA)", float64(t.MDDVFS.VSA), t.VSARatio()))
	tab.AddRow("DDRIO Digital", fmt.Sprintf("%.3fV", float64(t.Baseline.VIO)),
		fmt.Sprintf("%.3fV (%.2f x V_IO)", float64(t.MDDVFS.VIO), t.VIORatio()))
	tab.AddRow("2 Cores (4 threads)", t.CoreFreq.String(), t.CoreFreq.String())
	return tab.String()
}

// Table2Result reproduces Table 2: the SoC and memory parameters of
// the evaluated platform.
type Table2Result struct {
	CoreBase vf.Hz
	GfxBase  vf.Hz
	LLCBytes int
	TDP      float64
	Kind     dram.Kind
	Geometry dram.Geometry
	DRAMFreq vf.Hz
	Cores    int
	Threads  int
}

// Table2 collects the default platform parameters.
func Table2() Table2Result {
	cp := compute.DefaultCoreParams()
	gp := compute.DefaultGfxParams()
	return Table2Result{
		CoreBase: cp.BaseFreq,
		GfxBase:  gp.BaseFreq,
		LLCBytes: 4 << 20,
		TDP:      4.5,
		Kind:     dram.LPDDR3,
		Geometry: dram.DefaultGeometry(),
		DRAMFreq: 1.6 * vf.GHz,
		Cores:    cp.Cores,
		Threads:  cp.Cores * cp.ThreadsPerCore,
	}
}

func (t Table2Result) String() string {
	tab := stats.NewTable("Table 2: SoC and memory parameters", "Parameter", "Value")
	tab.AddRow("CPU core base frequency", t.CoreBase.String())
	tab.AddRow("Graphics engine base frequency", t.GfxBase.String())
	tab.AddRow("L3 cache (LLC)", fmt.Sprintf("%dMB", t.LLCBytes>>20))
	tab.AddRow("Thermal design point (TDP)", fmt.Sprintf("%.1fW", t.TDP))
	tab.AddRow("Cores/threads", fmt.Sprintf("%d/%d", t.Cores, t.Threads))
	tab.AddRow("Memory", fmt.Sprintf("%v-%v, %d-channel, %dGB, ECC=%v",
		t.Kind, t.DRAMFreq, t.Geometry.Channels, t.Geometry.CapacityGB, t.Geometry.ECC))
	return tab.String()
}

// ImplementationCostResult reports the §5 hardware/firmware costs.
type ImplementationCostResult struct {
	MRCSRAMBytes  int
	SRAMBudget    int
	FirmwareBytes int
	MaxFlowBound  sim.Time
}

// ImplementationCost verifies the §5 cost claims against the models.
func ImplementationCost() (ImplementationCostResult, error) {
	store, err := mrc.Train(dram.LPDDR3)
	if err != nil {
		return ImplementationCostResult{}, err
	}
	return ImplementationCostResult{
		MRCSRAMBytes:  store.UsedBytes(),
		SRAMBudget:    mrc.SRAMBudget,
		FirmwareBytes: pmu.FirmwareBytes,
		MaxFlowBound:  pmu.MaxTransitionLatency,
	}, nil
}

func (r ImplementationCostResult) String() string {
	tab := stats.NewTable("Implementation cost (§5)", "Item", "Modeled", "Paper budget")
	tab.AddRow("MRC image SRAM", fmt.Sprintf("%dB", r.MRCSRAMBytes), fmt.Sprintf("%dB (~0.5KB)", r.SRAMBudget))
	tab.AddRow("PMU firmware", fmt.Sprintf("%dB", r.FirmwareBytes), "~0.6KB")
	tab.AddRow("Transition latency bound", r.MaxFlowBound.String(), "<10us")
	return tab.String()
}
