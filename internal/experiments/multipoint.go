package experiments

import (
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// MultiPointResult evaluates the "general case" of §4.3: SysScale with
// more than two operating points, walking the ladder one adjacent step
// at a time with per-pair thresholds. The paper ships only two points
// (the 0.8GHz bin is not energy efficient on its platform, §7.4) but
// the algorithm is defined for N points; this experiment runs the
// three-point LPDDR3 ladder and checks that (a) the governor visits
// intermediate points, (b) it never jumps two points in one interval,
// and (c) three points never do worse than two on the evaluated suite
// by more than the transition overhead.
type MultiPointResult struct {
	Rows []MultiPointRow
	// MaxStep is the largest ladder step observed in any single
	// evaluation interval (must be 1).
	MaxStep int
}

// MultiPointRow compares two- and three-point ladders on one workload.
type MultiPointRow struct {
	Name           string
	TwoPointGain   float64
	ThreePointGain float64
	// Residency over the three-point ladder [high, low, lowest].
	Residency []float64
}

// stepWatcher wraps a policy and records the largest single-interval
// ladder step.
type stepWatcher struct {
	inner   soc.Policy
	maxStep int
}

func (w *stepWatcher) Name() string { return w.inner.Name() }
func (w *stepWatcher) Reset()       { w.inner.Reset() }
func (w *stepWatcher) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	d := w.inner.Decide(ctx)
	from, to := -1, -1
	for i, op := range ctx.Ladder {
		if op == ctx.Current {
			from = i
		}
		if op == d.Target {
			to = i
		}
	}
	if from >= 0 && to >= 0 {
		step := from - to
		if step < 0 {
			step = -step
		}
		if step > w.maxStep {
			w.maxStep = step
		}
	}
	return d
}

// multiPointWorkloads spans the bottleneck spectrum.
var multiPointWorkloads = []string{"416.gamess", "473.astar", "403.gcc", "470.lbm"}

// MultiPoint runs the comparison.
func MultiPoint() (MultiPointResult, error) {
	var res MultiPointResult
	for _, name := range multiPointWorkloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return res, err
		}
		base, err := runPolicy(w, policy.NewBaseline(), nil)
		if err != nil {
			return res, err
		}
		two, err := runPolicy(w, policy.NewSysScaleDefault(), nil)
		if err != nil {
			return res, err
		}
		watcher := &stepWatcher{inner: policy.NewSysScaleDefault()}
		three, err := runPolicy(w, watcher, func(c *soc.Config) {
			c.Ladder = vf.LadderLPDDR3()
		})
		if err != nil {
			return res, err
		}
		if watcher.maxStep > res.MaxStep {
			res.MaxStep = watcher.maxStep
		}
		res.Rows = append(res.Rows, MultiPointRow{
			Name:           name,
			TwoPointGain:   soc.PerfImprovement(two, base),
			ThreePointGain: soc.PerfImprovement(three, base),
			Residency:      three.PointResidency,
		})
	}
	return res, nil
}

func (r MultiPointResult) String() string {
	tab := stats.NewTable("§4.3 general case: two-point vs three-point ladder",
		"Benchmark", "2-point", "3-point", "Residency (high/low/lowest)")
	for _, row := range r.Rows {
		resid := ""
		for i, f := range row.Residency {
			if i > 0 {
				resid += "/"
			}
			resid += fmt.Sprintf("%.0f%%", 100*f)
		}
		tab.AddRow(row.Name, pct(row.TwoPointGain), pct(row.ThreePointGain), resid)
	}
	return tab.String() + fmt.Sprintf("max single-interval ladder step: %d (must be 1: adjacent points only)\n", r.MaxStep)
}
