package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// MultiPointResult evaluates the "general case" of §4.3: SysScale with
// more than two operating points, walking the ladder one adjacent step
// at a time with per-pair thresholds. The paper ships only two points
// (the 0.8GHz bin is not energy efficient on its platform, §7.4) but
// the algorithm is defined for N points; this experiment runs the
// three-point LPDDR3 ladder and checks that (a) the governor visits
// intermediate points, (b) it never jumps two points in one interval,
// and (c) three points never do worse than two on the evaluated suite
// by more than the transition overhead.
type MultiPointResult struct {
	Rows []MultiPointRow
	// MaxStep is the largest ladder step observed in any single
	// evaluation interval (must be 1).
	MaxStep int
}

// MultiPointRow compares two- and three-point ladders on one workload.
type MultiPointRow struct {
	Name           string
	TwoPointGain   float64
	ThreePointGain float64
	// Residency over the three-point ladder [high, low, lowest].
	Residency []float64
}

// stepWatcher wraps a policy and records the largest single-interval
// ladder step. Clones share the counter, so one watcher aggregates
// across every job of a concurrent batch; recording is a side effect
// of Decide, so the watcher opts out of result memoization (a cache
// hit would skip the observation).
type stepWatcher struct {
	inner   soc.Policy
	maxStep *atomic.Int64
}

func newStepWatcher(inner soc.Policy) *stepWatcher {
	return &stepWatcher{inner: inner, maxStep: new(atomic.Int64)}
}

func (w *stepWatcher) MaxStep() int { return int(w.maxStep.Load()) }
func (w *stepWatcher) Name() string { return w.inner.Name() }
func (w *stepWatcher) Reset()       { w.inner.Reset() }
func (w *stepWatcher) Uncacheable() {}
func (w *stepWatcher) Clone() soc.Policy {
	return &stepWatcher{inner: w.inner.Clone(), maxStep: w.maxStep}
}
func (w *stepWatcher) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	d := w.inner.Decide(ctx)
	from, to := -1, -1
	for i, op := range ctx.Ladder {
		if op == ctx.Current {
			from = i
		}
		if op == d.Target {
			to = i
		}
	}
	if from >= 0 && to >= 0 {
		step := int64(from - to)
		if step < 0 {
			step = -step
		}
		for {
			cur := w.maxStep.Load()
			if step <= cur || w.maxStep.CompareAndSwap(cur, step) {
				break
			}
		}
	}
	return d
}

// multiPointWorkloads spans the bottleneck spectrum.
var multiPointWorkloads = []string{"416.gamess", "473.astar", "403.gcc", "470.lbm"}

// MultiPoint runs the comparison: baseline, two-point SysScale and the
// watched three-point SysScale for every workload, as one sweep.
func MultiPoint(ctx context.Context) (MultiPointResult, error) {
	var res MultiPointResult
	ws := make([]workload.Workload, 0, len(multiPointWorkloads))
	for _, name := range multiPointWorkloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return res, err
		}
		ws = append(ws, w)
	}
	watcher := newStepWatcher(policy.NewSysScaleDefault())
	m, err := newSweep(policy.NewBaseline(), policy.NewSysScaleDefault(), watcher).
		Workloads(ws...).
		ConfigureCell(func(_ workload.Workload, pi int, c *soc.Config) {
			if pi == 2 { // the watched three-point column
				c.Ladder = vf.LadderLPDDR3()
			}
		}).
		RunContext(ctx, Engine())
	if err != nil {
		return res, err
	}
	res.MaxStep = watcher.MaxStep()
	for i, w := range ws {
		base, two, three := m.Result(i, 0), m.Result(i, 1), m.Result(i, 2)
		res.Rows = append(res.Rows, MultiPointRow{
			Name:           w.Name,
			TwoPointGain:   soc.PerfImprovement(two, base),
			ThreePointGain: soc.PerfImprovement(three, base),
			Residency:      three.PointResidency,
		})
	}
	return res, nil
}

func (r MultiPointResult) String() string {
	tab := stats.NewTable("§4.3 general case: two-point vs three-point ladder",
		"Benchmark", "2-point", "3-point", "Residency (high/low/lowest)")
	for _, row := range r.Rows {
		resid := ""
		for i, f := range row.Residency {
			if i > 0 {
				resid += "/"
			}
			resid += fmt.Sprintf("%.0f%%", 100*f)
		}
		tab.AddRow(row.Name, pct(row.TwoPointGain), pct(row.ThreePointGain), resid)
	}
	return tab.String() + fmt.Sprintf("max single-interval ladder step: %d (must be 1: adjacent points only)\n", r.MaxStep)
}
