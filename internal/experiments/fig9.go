package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/ioengine"
	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Fig9Row is one battery-life workload's outcome.
type Fig9Row struct {
	Name      string
	MemScaleR float64 // projected average power reduction (§6)
	CoScaleR  float64 // projected; equals MemScale-R (§7.3)
	SysScale  float64 // measured average power reduction
	PerfMet   bool    // the fixed performance demand was met
	BaseWatts float64
}

// Fig9Result reproduces Fig. 9: SoC average power reduction on the
// battery-life workloads with a single HD panel (paper: SysScale
// 6.4/9.5/7.6/10.7%, prior work ~1.3-2.1%).
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 runs the battery suite as one sweep. Video conferencing
// additionally raises the static demand floor through the camera CSR.
func Fig9(ctx context.Context) (Fig9Result, error) {
	var res Fig9Result
	high, low := vf.HighPoint(), vf.LowPoint()
	ws := workload.BatterySuite()
	rs, err := newSweep(policy.NewBaseline(), policy.NewSysScaleDefault()).
		Workloads(ws...).
		ConfigureCell(func(w workload.Workload, _ int, c *soc.Config) {
			if w.Name == "video-conf" {
				csr := c.CSR
				csr.Camera = ioengine.Camera720p
				c.CSR = csr
			}
		}).
		RunContext(ctx, Engine())
	if err != nil {
		return res, err
	}
	base, sys := rs.Col(0), rs.Col(1)
	power := rs.PowerReduction(0)
	for i, w := range ws {
		memSave := soc.MemScaleProjectedSavings(base[i], high, low)
		row := Fig9Row{
			Name:      w.Name,
			SysScale:  power.Values[1][i],
			MemScaleR: soc.ProjectedPowerReduction(base[i], memSave),
			PerfMet:   sys[i].PerfMet,
			BaseWatts: float64(base[i].AvgPower),
		}
		// The CPU already idles at its lowest frequency in battery
		// workloads, so CoScale saves the same power as MemScale (§7.3).
		row.CoScaleR = row.MemScaleR
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r Fig9Result) String() string {
	tab := stats.NewTable("Fig. 9: battery-life average power reduction",
		"Workload", "Base", "MemScale-R", "CoScale-R", "SysScale", "PerfMet")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, fmt.Sprintf("%.3fW", row.BaseWatts),
			pct(row.MemScaleR), pct(row.CoScaleR), pct(row.SysScale),
			fmt.Sprintf("%v", row.PerfMet))
	}
	chart := stats.NewBarChart("SysScale average power reduction", "%", 40)
	for _, row := range r.Rows {
		chart.Add(row.Name, 100*row.SysScale)
	}
	return tab.String() + chart.String() + "paper: SysScale 6.4/9.5/7.6/10.7%, prior work 1.3-2.1%\n"
}
