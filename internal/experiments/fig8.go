package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Fig8Row is one graphics benchmark's outcome.
type Fig8Row struct {
	Name      string
	MemScaleR float64 // projected (§6)
	CoScaleR  float64 // projected (§6)
	SysScale  float64 // measured
	// AvgGfxBoost is the graphics-clock increase SysScale achieved.
	AvgGfxBoost float64
}

// Fig8Result reproduces Fig. 8: FPS improvement on the 3DMark suite
// (paper: SysScale +8.9/6.7/8.1%; MemScale-R/CoScale-R ≈ 1.3-1.8%,
// roughly equal to each other because the CPU already runs at its
// lowest frequency so CoScale cannot scale it further).
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 runs the three 3DMark workloads as one sweep, then the graphics
// scalability probes, then the projections (probe runs cached).
func Fig8(ctx context.Context) (Fig8Result, error) {
	var res Fig8Result
	high, low := vf.HighPoint(), vf.LowPoint()
	ws := workload.GraphicsSuite()

	rs, err := newSweep(policy.NewBaseline(), policy.NewSysScaleDefault()).
		Workloads(ws...).
		RunContext(ctx, Engine())
	if err != nil {
		return res, err
	}
	base, sys := rs.Col(0), rs.Col(1)
	baseCfgs := make([]soc.Config, len(ws))
	for i, w := range ws {
		baseCfgs[i] = configFor(w, policy.NewBaseline(), nil)
	}
	if err := prewarmProbes(ctx, baseCfgs, base, true); err != nil {
		return res, err
	}

	run := engineRun(ctx)
	perf := rs.PerfImprovement(0)
	for i, w := range ws {
		row := Fig8Row{Name: w.Name, SysScale: perf.Values[1][i]}
		if base[i].AvgGfxFreq > 0 {
			row.AvgGfxBoost = float64(sys[i].AvgGfxFreq)/float64(base[i].AvgGfxFreq) - 1
		}
		memSave := soc.MemScaleProjectedSavings(base[i], high, low)
		row.MemScaleR, err = soc.ProjectedPerfGainWith(run, baseCfgs[i], base[i], memSave, true)
		if err != nil {
			return res, err
		}
		// On graphics workloads the cores already run at Pn, so
		// CoScale degenerates to MemScale (§7.2): same savings.
		row.CoScaleR = row.MemScaleR
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r Fig8Result) String() string {
	tab := stats.NewTable("Fig. 8: 3DMark FPS improvement",
		"Benchmark", "MemScale-R", "CoScale-R", "SysScale", "GfxClock")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, pct(row.MemScaleR), pct(row.CoScaleR), pct(row.SysScale),
			fmt.Sprintf("%+.1f%%", 100*row.AvgGfxBoost))
	}
	return tab.String() + "paper: SysScale +8.9/6.7/8.1%, prior work ~1.3-1.8%\n"
}
