package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/workload/gen"
)

// The Monte Carlo robustness suite: where the paper's figures evaluate
// the policies on ~40 hand-characterized workloads, this experiment
// fans a seeded stochastic population of generated workloads (see
// internal/workload/gen) × every policy through the run engine and
// reports per-policy outcome *distributions*. The question it answers
// is the one a static suite cannot: does SysScale's advantage hold
// across the whole scenario space, and what do the tails look like —
// how bad is the worst generated scenario for each policy?
//
// The sweep is deterministic end to end: the generator stream is fixed
// by the seed, the engine returns results in input order whatever the
// worker count, and the statistics are computed over input-ordered
// slices. Identical (seed, n) settings produce bit-identical reports
// at any parallelism level.

// MonteCarloOptions parameterizes the sweep.
type MonteCarloOptions struct {
	// N is the number of generated workloads (default 100).
	N int
	// Seed drives the workload generator (default 1).
	Seed uint64
	// Gen overrides the full generator configuration. Nil means
	// gen.DefaultConfig(Seed); when set, its Seed field wins (a zero
	// Gen.Seed falls back to Seed). The sweep's effective seed is
	// echoed in MonteCarloResult.Seed either way.
	Gen *gen.Config
	// Policies are the governors compared against the baseline
	// (default: SysScale, MemScale-Redist, CoScale-Redist).
	Policies []soc.Policy
}

// DefaultMonteCarloOptions returns the default sweep: 100 workloads,
// seed 1, the three closed-loop policies of Figs. 7-9.
func DefaultMonteCarloOptions() MonteCarloOptions {
	return MonteCarloOptions{N: 100, Seed: 1}
}

func (o MonteCarloOptions) withDefaults() MonteCarloOptions {
	if o.N <= 0 {
		o.N = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Policies == nil {
		o.Policies = []soc.Policy{
			policy.NewSysScaleDefault(),
			policy.NewMemScaleRedist(),
			policy.NewCoScaleRedist(),
		}
	}
	return o
}

// MonteCarloPolicy is one policy's outcome distribution over the
// generated population, all relative to the per-workload baseline run.
type MonteCarloPolicy struct {
	Name string
	// Perf is the distribution of performance improvement, Power of
	// average-power reduction, Energy of per-work energy reduction and
	// EDP of EDP improvement (positive = better throughout).
	Perf   stats.Summary
	Power  stats.Summary
	Energy stats.Summary
	EDP    stats.Summary
	// Regressions counts workloads where the policy lost more than 1%
	// performance versus baseline; Worst* identify the workload with
	// the largest loss (seed + index make it reproducible standalone).
	Regressions int
	WorstPerf   float64
	WorstName   string
}

// MonteCarloResult is the sweep outcome.
type MonteCarloResult struct {
	N        int
	Seed     uint64
	Policies []MonteCarloPolicy
	// PerfMetRate is the fraction of (workload, policy) runs whose
	// fixed-performance demands were met (battery-like scenarios).
	PerfMetRate float64
}

// MonteCarlo runs the robustness sweep: N generated workloads × (1 +
// len(Policies)) governors as one engine sweep.
func MonteCarlo(ctx context.Context, opt MonteCarloOptions) (MonteCarloResult, error) {
	opt = opt.withDefaults()

	gcfg := gen.DefaultConfig(opt.Seed)
	if opt.Gen != nil {
		gcfg = *opt.Gen
		if gcfg.Seed == 0 {
			gcfg.Seed = opt.Seed
		}
	}
	res := MonteCarloResult{N: opt.N, Seed: gcfg.Seed}
	if err := gcfg.Validate(); err != nil {
		return res, err
	}
	ws := gen.GenerateN(gcfg, opt.N)

	ps := append([]soc.Policy{policy.NewBaseline()}, opt.Policies...)
	m, err := newSweep(ps...).Workloads(ws...).RunContext(ctx, Engine())
	if err != nil {
		return res, err
	}

	// The four outcome matrices, each keyed [policy][workload] against
	// the baseline column.
	perfC := m.PerfImprovement(0)
	powerC := m.PowerReduction(0)
	energyC := m.Compare("energy reduction", 0, soc.EnergyReduction)
	edpC := m.EDPImprovement(0)

	var perfMet, runs int
	for pi, p := range opt.Policies {
		col := pi + 1 // column 0 is the baseline
		mp := MonteCarloPolicy{Name: p.Name()}
		perf := perfC.Values[col]
		for wi := range ws {
			pv := perf[wi]
			if pv < -0.01 {
				mp.Regressions++
			}
			if wi == 0 || pv < mp.WorstPerf {
				mp.WorstPerf = pv
				mp.WorstName = ws[wi].Name
			}
			if m.Result(wi, col).PerfMet {
				perfMet++
			}
			runs++
		}
		mp.Perf = stats.Summarize(perf)
		mp.Power = stats.Summarize(powerC.Values[col])
		mp.Energy = stats.Summarize(energyC.Values[col])
		mp.EDP = stats.Summarize(edpC.Values[col])
		res.Policies = append(res.Policies, mp)
	}
	if runs > 0 {
		res.PerfMetRate = float64(perfMet) / float64(runs)
	}
	return res, nil
}

func (r MonteCarloResult) String() string {
	tab := stats.NewTable(
		fmt.Sprintf("Monte Carlo robustness sweep: %d generated workloads (seed %d) vs baseline", r.N, r.Seed),
		"Policy", "Perf mean", "Perf p5", "Perf p50", "Perf p95", "Power mean", "Energy mean", "EDP mean", "Regr", "Worst")
	for _, p := range r.Policies {
		tab.AddRow(p.Name,
			pct(p.Perf.Mean), pct(p.Perf.P5), pct(p.Perf.P50), pct(p.Perf.P95),
			pct(p.Power.Mean), pct(p.Energy.Mean), pct(p.EDP.Mean),
			fmt.Sprintf("%d", p.Regressions),
			fmt.Sprintf("%s %s", pct(p.WorstPerf), p.WorstName))
	}
	out := tab.String()
	out += fmt.Sprintf("perf-demand met in %.0f%% of runs\n", 100*r.PerfMetRate)
	return out
}
