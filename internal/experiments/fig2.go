package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/stats"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// fig2Workloads are the three benchmarks of the §3 motivation study.
var fig2Workloads = []string{"400.perlbench", "436.cactusADM", "470.lbm"}

// Fig2aRow holds one benchmark's MD-DVFS-vs-baseline deltas.
type Fig2aRow struct {
	Name string
	// All values are fractions relative to the baseline setup
	// (negative = reduction).
	PowerDelta  float64
	EnergyDelta float64
	PerfDelta   float64
	EDPDelta    float64
	// PerfAt13GHz is the performance versus baseline when the saved
	// budget raises the cores from 1.2 to 1.3GHz under MD-DVFS.
	PerfAt13GHz float64
}

// Fig2aResult reproduces Fig. 2(a): the impact of the static MD-DVFS
// setup (Table 1) on power, energy, performance and EDP, plus the
// 1.3GHz-core redistribution variant.
type Fig2aResult struct {
	Rows []Fig2aRow
}

// Fig2a runs the motivation experiment on the emulated Broadwell
// platform: CPU cores pinned at 1.2GHz, IO and memory domains either
// at the baseline point or statically at the MD-DVFS point. The three
// setups of all three benchmarks run as one sweep: the redistribution
// column additionally moves the cores to 1.3GHz.
func Fig2a(ctx context.Context) (Fig2aResult, error) {
	var out Fig2aResult
	ws := make([]workload.Workload, 0, len(fig2Workloads))
	for _, name := range fig2Workloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return out, err
		}
		ws = append(ws, w)
	}
	rs, err := newSweep(policy.NewBaseline(), policy.NewStaticPoint(1, false), policy.NewStaticPoint(1, true)).
		Workloads(ws...).
		ConfigureCell(func(_ workload.Workload, pi int, c *soc.Config) {
			c.FixedCoreFreq = 1.2 * vf.GHz
			if pi == 2 {
				c.FixedCoreFreq = 1.3 * vf.GHz
			}
		}).
		RunContext(ctx, Engine())
	if err != nil {
		return out, err
	}
	for i, name := range fig2Workloads {
		base, md, md13 := rs.Result(i, 0), rs.Result(i, 1), rs.Result(i, 2)
		out.Rows = append(out.Rows, Fig2aRow{
			Name:        name,
			PowerDelta:  float64(md.AvgPower/base.AvgPower) - 1,
			EnergyDelta: -soc.EnergyReduction(md, base),
			PerfDelta:   soc.PerfImprovement(md, base),
			EDPDelta:    -soc.EDPImprovement(md, base),
			PerfAt13GHz: soc.PerfImprovement(md13, base),
		})
	}
	return out, nil
}

func (r Fig2aResult) String() string {
	tab := stats.NewTable("Fig. 2(a): MD-DVFS impact vs baseline (core pinned 1.2GHz)",
		"Benchmark", "AvgPower", "Energy", "Perf", "EDP", "Perf@1.3GHz")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, pct(row.PowerDelta), pct(row.EnergyDelta),
			pct(row.PerfDelta), pct(row.EDPDelta), pct(row.PerfAt13GHz))
	}
	return tab.String()
}

// Fig2bRow is one benchmark's bottleneck decomposition.
type Fig2bRow struct {
	Name       string
	MemLatency float64
	MemBW      float64
	NonMemory  float64
}

// Fig2bResult reproduces Fig. 2(b): what fraction of each workload's
// performance is bound by memory latency, memory bandwidth, or
// non-main-memory events.
type Fig2bResult struct{ Rows []Fig2bRow }

// Fig2b reports the bottleneck analysis from the workload profiles
// (the paper derives it from top-down counters on the same machine).
func Fig2b() (Fig2bResult, error) {
	var out Fig2bResult
	for _, name := range fig2Workloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return out, err
		}
		var lat, bw float64
		var tot sim.Time
		for _, ph := range w.Phases {
			lat += ph.MemLatFrac * ph.Duration.Seconds()
			bw += ph.MemBWFrac * ph.Duration.Seconds()
			tot += ph.Duration
		}
		lat /= tot.Seconds()
		bw /= tot.Seconds()
		out.Rows = append(out.Rows, Fig2bRow{
			Name:       name,
			MemLatency: lat,
			MemBW:      bw,
			NonMemory:  1 - lat - bw,
		})
	}
	return out, nil
}

func (r Fig2bResult) String() string {
	tab := stats.NewTable("Fig. 2(b): bottleneck analysis",
		"Benchmark", "MemLatency", "MemBW", "Non-memory")
	for _, row := range r.Rows {
		tab.AddRow(row.Name,
			fmt.Sprintf("%.0f%%", 100*row.MemLatency),
			fmt.Sprintf("%.0f%%", 100*row.MemBW),
			fmt.Sprintf("%.0f%%", 100*row.NonMemory))
	}
	return tab.String()
}

// Fig2cResult reproduces Fig. 2(c): memory bandwidth demand over time
// for the three motivation benchmarks.
type Fig2cResult struct {
	Names  []string
	Series [][]float64 // GB/s sampled every 100ms
}

// Fig2c samples each benchmark's demand trace.
func Fig2c() (Fig2cResult, error) {
	var out Fig2cResult
	for _, name := range fig2Workloads {
		w, err := workload.SPEC(name)
		if err != nil {
			return out, err
		}
		samples := w.BWOverTime(100 * sim.Millisecond)
		gb := make([]float64, len(samples))
		for i, s := range samples {
			gb[i] = s / 1e9
		}
		out.Names = append(out.Names, name)
		out.Series = append(out.Series, gb)
	}
	return out, nil
}

func (r Fig2cResult) String() string {
	tab := stats.NewTable("Fig. 2(c): memory BW demand over time (GB/s, 100ms samples)",
		"Benchmark", "Min", "Mean", "Max")
	for i, name := range r.Names {
		tab.AddRowf(name, stats.Min(r.Series[i]), stats.Mean(r.Series[i]), stats.Max(r.Series[i]))
	}
	return tab.String()
}
