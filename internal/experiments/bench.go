package experiments

import (
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// Helpers for the top-level benchmark harness (bench_test.go), which
// cannot import internal packages' unexported pieces directly.

// BenchWorkload returns a representative mixed workload for throughput
// benchmarking.
func BenchWorkload() (workload.Workload, error) {
	return workload.SPEC("473.astar")
}

// BenchConfig returns a 1-second SysScale run configuration.
func BenchConfig(w workload.Workload) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewSysScaleDefault()
	cfg.Duration = 1 * sim.Second
	return cfg
}

// BenchConfigMemoOff returns the same configuration with the
// steady-state tick memo disabled — the reference for measuring the
// fast path's speedup (results are bit-identical either way).
func BenchConfigMemoOff(w workload.Workload) soc.Config {
	cfg := BenchConfig(w)
	cfg.DisableTickMemo = true
	return cfg
}

// BenchRun executes one configuration.
func BenchRun(cfg soc.Config) (soc.Result, error) { return soc.Run(cfg) }
