package experiments

import (
	"context"
	"fmt"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Fig4Result reproduces Fig. 4: the impact of unoptimized MRC values
// on power and performance for a peak-bandwidth microbenchmark
// (paper: average power +22%, performance −10%).
type Fig4Result struct {
	// PowerIncrease is the package average-power increase of the
	// unoptimized configuration relative to optimized, at the same
	// (low) operating point.
	PowerIncrease float64
	// MemPowerIncrease isolates the memory-domain rails (V_SA memory
	// share aside, VDDQ + V_IO), where the termination and IO penalties
	// land.
	MemPowerIncrease float64
	// PerfDegradation is the score loss of unoptimized vs optimized.
	PerfDegradation float64
}

// Fig4 pins the platform at the low operating point with the CPU at
// 1.2GHz and runs the STREAM-like microbenchmark twice: once with the
// per-frequency trained register image, once keeping the boot (1.6GHz)
// image — the Observation 4 failure mode.
func Fig4(ctx context.Context) (Fig4Result, error) {
	unoptPolicy := policy.NewStaticPoint(1, false)
	unoptPolicy.OptimizedMRC = false
	rs, err := newSweep(policy.NewStaticPoint(1, false), unoptPolicy).
		Workloads(workload.Stream()).
		Configure(func(c *soc.Config) { c.FixedCoreFreq = 1.2 * vf.GHz }).
		RunContext(ctx, Engine())
	if err != nil {
		return Fig4Result{}, err
	}
	opt, unopt := rs.Result(0, 0), rs.Result(0, 1)

	memOpt := opt.RailAvg[vf.RailVDDQ] + opt.RailAvg[vf.RailVIO]
	memUnopt := unopt.RailAvg[vf.RailVDDQ] + unopt.RailAvg[vf.RailVIO]

	res := Fig4Result{
		PowerIncrease:   float64(unopt.AvgPower/opt.AvgPower) - 1,
		PerfDegradation: 1 - unopt.Score/opt.Score,
	}
	if memOpt > 0 {
		res.MemPowerIncrease = float64(memUnopt/memOpt) - 1
	}
	return res, nil
}

func (r Fig4Result) String() string {
	return fmt.Sprintf(
		"Fig. 4: unoptimized vs optimized MRC at the low point (STREAM-like)\n"+
			"  package avg power increase: %s (paper: +22%% on measured rails)\n"+
			"  memory-rail power increase: %s\n"+
			"  performance degradation:    %s (paper: -10%%)\n",
		pct(r.PowerIncrease), pct(r.MemPowerIncrease), pct(-r.PerfDegradation))
}
