package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/workload/gen"
)

// TestMonteCarloDeterministicAcrossParallelism is the acceptance
// property of the robustness suite: the same seeded sweep run
// sequentially and on a wide worker pool must produce identical
// results — orderings and values — so Monte Carlo findings are
// reproducible from (seed, n) alone. It extends the engine's batch
// determinism tests to the full experiment pipeline (generation →
// batch → statistics).
func TestMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	t.Cleanup(func() { SetParallelism(0) })
	opt := DefaultMonteCarloOptions()
	opt.N = 16
	opt.Seed = 123

	SetParallelism(1)
	seq, err := MonteCarlo(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 13} {
		SetParallelism(workers)
		par, err := MonteCarlo(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("sweep differs between -parallel 1 and -parallel %d:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
	// Repeat runs on one engine must also be stable (cache-served).
	again, err := MonteCarlo(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, again) {
		t.Fatal("repeat sweep on a warm cache differs")
	}
}

func TestMonteCarloShape(t *testing.T) {
	opt := MonteCarloOptions{N: 12, Seed: 5}
	r, err := MonteCarlo(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 12 || r.Seed != 5 {
		t.Fatalf("echoed options wrong: %+v", r)
	}
	if len(r.Policies) != 3 {
		t.Fatalf("default policy set: got %d, want 3", len(r.Policies))
	}
	for _, p := range r.Policies {
		if p.Name == "" || p.WorstName == "" {
			t.Fatalf("missing names: %+v", p)
		}
		if p.Perf.P5 > p.Perf.P50 || p.Perf.P50 > p.Perf.P95 {
			t.Fatalf("%s: percentiles out of order: %+v", p.Name, p.Perf)
		}
		if p.Regressions < 0 || p.Regressions > r.N {
			t.Fatalf("%s: regression count %d out of range", p.Name, p.Regressions)
		}
	}
	if r.PerfMetRate < 0 || r.PerfMetRate > 1 {
		t.Fatalf("PerfMetRate %f", r.PerfMetRate)
	}
	out := r.String()
	for _, want := range []string{"Monte Carlo", "sysscale", "memscale-redist", "coscale-redist"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestMonteCarloGeneratedWorkloadsRoundTrip locks the acceptance
// criterion that sweep inputs are persistable: the exact workload
// population a sweep simulates can be written as a trace, read back,
// and replayed bit-identically.
func TestMonteCarloRoundTripThroughTrace(t *testing.T) {
	opt := DefaultMonteCarloOptions().withDefaults()
	opt.N = 8
	tr := gen.NewTrace(gen.DefaultConfig(opt.Seed), opt.N)
	ws, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, gen.GenerateN(gen.DefaultConfig(opt.Seed), opt.N)) {
		t.Fatal("trace replay differs from the sweep's generation")
	}
}

func TestMonteCarloCustomPolicies(t *testing.T) {
	opt := MonteCarloOptions{N: 6, Seed: 2, Policies: []soc.Policy{policy.NewSysScaleDefault()}}
	r, err := MonteCarlo(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 1 || r.Policies[0].Name != "sysscale" {
		t.Fatalf("custom policy set not honored: %+v", r.Policies)
	}
}

// TestMonteCarloGenSeedWins locks the documented precedence: a
// caller-supplied Gen config's non-zero Seed overrides opt.Seed, and
// the effective seed is echoed in the result.
func TestMonteCarloGenSeedWins(t *testing.T) {
	gcfg := gen.DefaultConfig(42)
	r, err := MonteCarlo(context.Background(), MonteCarloOptions{N: 3, Gen: &gcfg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 42 {
		t.Fatalf("effective seed %d, want Gen.Seed 42", r.Seed)
	}
	direct, err := MonteCarlo(context.Background(), MonteCarloOptions{N: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, direct) {
		t.Fatal("Gen with seed 42 differs from Seed: 42")
	}
	// A zero Gen.Seed falls back to opt.Seed.
	gcfg.Seed = 0
	r, err = MonteCarlo(context.Background(), MonteCarloOptions{N: 3, Seed: 9, Gen: &gcfg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 9 {
		t.Fatalf("fallback seed %d, want opt.Seed 9", r.Seed)
	}
}

func TestMonteCarloRejectsBadGenConfig(t *testing.T) {
	bad := gen.DefaultConfig(1)
	bad.MinDwell = 2 * bad.MaxDwell
	if _, err := MonteCarlo(context.Background(), MonteCarloOptions{N: 2, Gen: &bad}); err == nil {
		t.Fatal("invalid generator config accepted")
	}
}
