package experiments

import (
	"fmt"

	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/mrc"
	"sysscale/internal/pmu"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Fig5Result characterizes the DVFS transition flow of Fig. 5 against
// the §5 latency budget: every flow run must complete in under 10us,
// and the step ordering must match the figure (drain before
// self-refresh, register load before relock, release last).
type Fig5Result struct {
	DownLatency sim.Time // high -> low transition
	UpLatency   sim.Time // low -> high transition
	Bound       sim.Time
	StepsDown   []string
	Overlapped  bool
}

// Fig5Latency executes one down and one up transition on a freshly
// assembled IO+memory subsystem and reports the measured latencies and
// recorded step ordering.
func Fig5Latency() (Fig5Result, error) {
	high, low := vf.HighPoint(), vf.LowPoint()
	dev, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), high.DDR)
	if err != nil {
		return Fig5Result{}, err
	}
	store, err := mrc.Train(dram.LPDDR3)
	if err != nil {
		return Fig5Result{}, err
	}
	mc, err := memctrl.New(memctrl.DefaultParams(), dev)
	if err != nil {
		return Fig5Result{}, err
	}
	fab, err := interconnect.New(interconnect.DefaultParams(), high.Interco, high.VSA)
	if err != nil {
		return Fig5Result{}, err
	}
	rails := vf.DefaultRails()
	if _, err := rails.Get(vf.RailVSA).Set(high.VSA); err != nil {
		return Fig5Result{}, err
	}
	if _, err := rails.Get(vf.RailVIO).Set(high.VIO); err != nil {
		return Fig5Result{}, err
	}
	log := sim.NewEventLog(0)
	flow, err := pmu.NewFlow(rails, fab, mc, dev, store, log, pmu.DefaultFlowOptions(high.DDR))
	if err != nil {
		return Fig5Result{}, err
	}

	down, err := flow.Transition(0, low)
	if err != nil {
		return Fig5Result{}, err
	}
	var steps []string
	for _, e := range log.Events() {
		steps = append(steps, e.Message)
	}
	up, err := flow.Transition(0, high)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{
		DownLatency: down,
		UpLatency:   up,
		Bound:       pmu.MaxTransitionLatency,
		StepsDown:   steps,
		Overlapped:  true,
	}, nil
}

func (r Fig5Result) String() string {
	s := fmt.Sprintf("Fig. 5 / §5: DVFS transition flow latency\n"+
		"  high->low: %v, low->high: %v (bound %v)\n  steps (down):\n",
		r.DownLatency, r.UpLatency, r.Bound)
	for _, st := range r.StepsDown {
		s += "    " + st + "\n"
	}
	return s
}
