package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeWorkload drives ReadJSON with arbitrary input: it must
// never panic, and any input it accepts must (a) satisfy Validate —
// ReadJSON is the trust boundary for workload files from disk — and
// (b) round-trip stably: re-encoding and re-decoding an accepted
// workload yields the identical value, so traces can be rewritten any
// number of times without drifting.
func FuzzDecodeWorkload(f *testing.F) {
	// Seed the corpus with the wire encodings of real workloads from
	// every suite, plus structured near-misses.
	seedWorkloads := []Workload{Stream(), WebBrowsing(), VideoPlayback()}
	if w, err := SPEC("473.astar"); err == nil {
		seedWorkloads = append(seedWorkloads, w)
	}
	seedWorkloads = append(seedWorkloads, Synthetic(SyntheticSpec{Class: Graphics, Count: 1, Seed: 9})...)
	for _, w := range seedWorkloads {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, w); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Name":"x","Class":"cpu-st","Phases":[{"Duration":-1}]}`))
	f.Add([]byte(`{"Name":"x","Class":"bogus","Phases":[]}`))
	f.Add([]byte(`{"Name":"x","Class":"battery","Phases":[{"Duration":1000,"CoreFrac":2}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid workload: %v\ninput: %q", verr, data)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, w); err != nil {
			t.Fatalf("re-encode of accepted workload failed: %v", err)
		}
		w2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted workload failed: %v\nencoded: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(w, w2) {
			t.Fatalf("round trip unstable:\nfirst:  %+v\nsecond: %+v", w, w2)
		}
	})
}
