package workload

import (
	"sysscale/internal/compute"
	"sysscale/internal/sim"
)

// Office-productivity workloads in the style of SYSmark/MobileMark —
// the representative sets the paper's calibration phase ran alongside
// SPEC and 3DMark (footnote 6). They sit between the throughput and
// battery classes: bursty interactive compute with moderate idle time
// and light-to-moderate memory traffic.

// prodPhase is a compact phase description for the suite.
type prodPhase struct {
	dur  sim.Time
	core float64
	lat  float64
	bw   float64
	io   float64
	mem  float64 // GB/s
	ioBW float64 // GB/s
	c0   float64
	act  float64
}

func prodWorkload(name string, phases []prodPhase) Workload {
	out := Workload{Name: name, Class: Battery}
	for _, p := range phases {
		idle := 1 - p.c0
		out.Phases = append(out.Phases, Phase{
			Duration:     p.dur,
			CoreFrac:     p.core,
			MemLatFrac:   p.lat,
			MemBWFrac:    p.bw,
			IOFrac:       p.io,
			MemBW:        GB(p.mem),
			IOBW:         GB(p.ioBW),
			ActiveCores:  2,
			CoreActivity: p.act,
			Residency: compute.Residency{
				C0: p.c0,
				C2: idle * 0.1,
				C6: idle * 0.45,
				C8: idle * 0.45,
			},
		})
	}
	return out
}

// OfficeProductivity models a SYSmark-style document/spreadsheet
// session: short compute bursts (recalculation, rendering) between
// think-time idles.
func OfficeProductivity() Workload {
	return prodWorkload("office-productivity", []prodPhase{
		{dur: 1500 * sim.Millisecond, core: 0.55, lat: 0.15, bw: 0.05, io: 0.06, mem: 1.4, ioBW: 0.2, c0: 0.35, act: 0.6},
		{dur: 2500 * sim.Millisecond, core: 0.45, lat: 0.12, bw: 0.04, io: 0.08, mem: 1.0, ioBW: 0.15, c0: 0.18, act: 0.5},
	})
}

// PhotoEditing models a MobileMark-style media-creation segment:
// filter passes with real bandwidth appetite alternating with idle
// inspection time.
func PhotoEditing() Workload {
	return prodWorkload("photo-editing", []prodPhase{
		{dur: 1 * sim.Second, core: 0.40, lat: 0.14, bw: 0.22, io: 0.05, mem: 4.8, ioBW: 0.3, c0: 0.40, act: 0.7},
		{dur: 2 * sim.Second, core: 0.50, lat: 0.10, bw: 0.05, io: 0.05, mem: 1.2, ioBW: 0.1, c0: 0.15, act: 0.5},
	})
}

// SpreadsheetCompute models a heavy recalculation batch: sustained
// two-core compute with latency-sensitive pointer chasing.
func SpreadsheetCompute() Workload {
	return prodWorkload("spreadsheet-compute", []prodPhase{
		{dur: 2 * sim.Second, core: 0.62, lat: 0.18, bw: 0.06, io: 0.03, mem: 2.2, ioBW: 0.1, c0: 0.38, act: 0.72},
	})
}

// ProductivitySuite returns the office-productivity set used by the
// calibration sweep.
func ProductivitySuite() []Workload {
	return []Workload{OfficeProductivity(), PhotoEditing(), SpreadsheetCompute()}
}
