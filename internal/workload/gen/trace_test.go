package gen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace(DefaultConfig(17), 6)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace round trip lost information")
	}
	// The round-tripped trace must still replay exactly: the JSON wire
	// format preserves every float bit the generator emitted.
	ws, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("replay returned %d workloads", len(ws))
	}
}

func TestTraceReplayDetectsDrift(t *testing.T) {
	tr := NewTrace(DefaultConfig(23), 3)
	tr.Workloads[1].Phases[0].MemBW *= 1.001 // simulate generator drift
	if _, err := tr.Replay(); err == nil {
		t.Fatal("tampered trace replayed without error")
	}
}

func TestTraceWithoutProvenance(t *testing.T) {
	tr := Trace{Version: TraceVersion, Workloads: GenerateN(DefaultConfig(29), 2)}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d workloads", len(ws))
	}
}

func TestTraceRejectsInvalid(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"version": 99, "workloads": []}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"version": 1, "workloads": [{"Name": "x", "Class": "cpu-st", "Phases": []}]}`)); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"version": 1, "generator": {"seed": 1, "min_dwell": 5000000, "max_dwell": 1000000}, "workloads": []}`)); err == nil {
		t.Fatal("invalid generator config accepted")
	}
}

func TestWriteTraceFillsVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Trace{Workloads: GenerateN(DefaultConfig(1), 1)}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != TraceVersion {
		t.Fatalf("version %d", back.Version)
	}
}
