package gen

import (
	"bytes"
	"reflect"
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// Property tests over the generator: every seed must yield
// Validate-clean workloads whose derived quantities (TotalDuration,
// PhaseAt, AvgMemBW) satisfy the workload-model invariants, and the
// stream must be a pure function of the seed.

// propertySeeds is the seed population the properties are checked
// over: small seeds, large seeds, and a spread in between.
func propertySeeds() []uint64 {
	seeds := []uint64{0, 1, 2, 3, 42, 1 << 20, 1<<63 - 1, ^uint64(0)}
	for s := uint64(5); s < 5000; s += 271 {
		seeds = append(seeds, s)
	}
	return seeds
}

func TestGeneratedWorkloadsValidate(t *testing.T) {
	for _, seed := range propertySeeds() {
		for _, ws := range [][]workload.Workload{
			GenerateN(DefaultConfig(seed), 5),
			GenerateN(Config{Seed: seed, Phases: 1}, 2),
			GenerateN(Config{Seed: seed, Phases: 40, MeanDwell: 50 * sim.Millisecond}, 2),
			GenerateN(Config{Seed: seed, BWScale: 3, MaxCores: 1}, 2),
		} {
			for _, w := range ws {
				if err := w.Validate(); err != nil {
					t.Fatalf("seed %d: %s: %v", seed, w.Name, err)
				}
			}
		}
	}
}

// TestDwellGridWithOffGridBounds locks the clamp/quantize interaction
// for bounds that do not sit on the 1ms grid: every emitted duration
// must respect both the configured window and the grid (the window is
// aligned inward).
func TestDwellGridWithOffGridBounds(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.MinDwell = 2*sim.Millisecond + 500*sim.Microsecond // 2.5ms
	cfg.MaxDwell = 7*sim.Millisecond + 900*sim.Microsecond // 7.9ms
	cfg.MeanDwell = 4 * sim.Millisecond
	for _, w := range GenerateN(cfg, 20) {
		for _, p := range w.Phases {
			if p.Duration < cfg.MinDwell || p.Duration > cfg.MaxDwell {
				t.Fatalf("%s: dwell %v outside [%v, %v]", w.Name, p.Duration, cfg.MinDwell, cfg.MaxDwell)
			}
			if p.Duration%sim.Millisecond != 0 {
				t.Fatalf("%s: dwell %v off the 1ms grid", w.Name, p.Duration)
			}
		}
	}
}

func TestGeneratedWorkloadInvariants(t *testing.T) {
	for _, seed := range propertySeeds() {
		cfg := DefaultConfig(seed)
		for _, w := range GenerateN(cfg, 3) {
			// TotalDuration is the sum of phase durations.
			var sum sim.Time
			minBW, maxBW := w.Phases[0].MemBW, w.Phases[0].MemBW
			for _, p := range w.Phases {
				sum += p.Duration
				if p.Duration < cfg.MinDwell || p.Duration > cfg.MaxDwell {
					t.Fatalf("seed %d: %s: dwell %v outside [%v, %v]", seed, w.Name, p.Duration, cfg.MinDwell, cfg.MaxDwell)
				}
				if p.Duration%sim.Millisecond != 0 {
					t.Fatalf("seed %d: %s: dwell %v not 1ms-quantized", seed, w.Name, p.Duration)
				}
				if p.MemBW < minBW {
					minBW = p.MemBW
				}
				if p.MemBW > maxBW {
					maxBW = p.MemBW
				}
			}
			if got := w.TotalDuration(); got != sum {
				t.Fatalf("seed %d: %s: TotalDuration %v != phase sum %v", seed, w.Name, got, sum)
			}
			// AvgMemBW is a convex combination of the phase demands.
			if avg := w.AvgMemBW(); avg < minBW-1e-6 || avg > maxBW+1e-6 {
				t.Fatalf("seed %d: %s: AvgMemBW %.3g outside phase range [%.3g, %.3g]", seed, w.Name, avg, minBW, maxBW)
			}
			// PhaseAt walks the phase list: at the cumulative start
			// offset of phase i (and just before its end) it must return
			// phase i, and it must wrap modulo the total duration.
			var off sim.Time
			for i, p := range w.Phases {
				if got := w.PhaseAt(off); got != p {
					t.Fatalf("seed %d: %s: PhaseAt(%v) != phase %d", seed, w.Name, off, i)
				}
				if got := w.PhaseAt(off + p.Duration - 1); got != p {
					t.Fatalf("seed %d: %s: PhaseAt(end of %d) wrong", seed, w.Name, i)
				}
				if got := w.PhaseAt(off + sum); got != p {
					t.Fatalf("seed %d: %s: PhaseAt does not wrap at phase %d", seed, w.Name, i)
				}
				off += p.Duration
			}
		}
	}
}

// TestGeneratorDeterminism checks the seed-reproducibility contract:
// identical configs yield byte-identical workloads (compared on the
// JSON wire encoding, the form traces are shared in), and the stream
// is stable under extension — the first k of n generated workloads do
// not depend on n.
func TestGeneratorDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99999} {
		cfg := DefaultConfig(seed)
		a, b := GenerateN(cfg, 8), GenerateN(cfg, 8)
		var ab, bb bytes.Buffer
		if err := workload.WriteJSONList(&ab, a); err != nil {
			t.Fatal(err)
		}
		if err := workload.WriteJSONList(&bb, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("seed %d: repeated generation is not byte-identical", seed)
		}
		if !reflect.DeepEqual(a[:3], GenerateN(cfg, 3)) {
			t.Fatalf("seed %d: stream not stable under extension", seed)
		}
	}
	if reflect.DeepEqual(Generate(DefaultConfig(1)), Generate(DefaultConfig(2))) {
		t.Fatal("distinct seeds produced identical workloads")
	}
}

func TestGeneratorClassMix(t *testing.T) {
	// Over a sizable population the dominant-class mapping must
	// exercise more than one evaluation category.
	counts := map[workload.Class]int{}
	for _, w := range GenerateN(DefaultConfig(11), 120) {
		counts[w.Class]++
	}
	if len(counts) < 2 {
		t.Fatalf("class mapping degenerate: %v", counts)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.MinDwell = 2 * sim.Second
	bad.MaxDwell = 1 * sim.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted dwell bounds accepted")
	}
	bad = DefaultConfig(1)
	bad.StartWeights = []float64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("short StartWeights accepted")
	}
	var m Matrix
	if err := m.Validate(); err == nil {
		t.Fatal("zero-mass matrix accepted")
	}
	m = DefaultMatrix()
	m[0][1] = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := DefaultConfig(3).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestMutatorsPreserveValidity(t *testing.T) {
	bases := GenerateN(DefaultConfig(5), 4)
	spec, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	bases = append(bases, spec, workload.WebBrowsing())
	all := Chain(
		SplitPhases(0.7),
		JitterDurations(0.4),
		ScaleBW(0.5, 2.5),
		InjectIdle(0.5, 80*sim.Millisecond),
	)
	for _, base := range bases {
		for seed := uint64(0); seed < 30; seed++ {
			v := Apply(base, seed, all)
			if err := v.Validate(); err != nil {
				t.Fatalf("%s seed %d: mutated workload invalid: %v", base.Name, seed, err)
			}
		}
		// The input must never be mutated in place.
		if err := base.Validate(); err != nil {
			t.Fatalf("%s: mutator corrupted its input: %v", base.Name, err)
		}
	}
}

func TestFamilyDeterminismAndNaming(t *testing.T) {
	base := Generate(DefaultConfig(21))
	a := Family(base, 3, 5, SplitPhases(0.5), ScaleBW(0.8, 1.2))
	b := Family(base, 3, 5, SplitPhases(0.5), ScaleBW(0.8, 1.2))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Family is not deterministic")
	}
	if a[0].Name == a[1].Name || a[0].Name == base.Name {
		t.Fatalf("family naming collision: %q vs %q", a[0].Name, a[1].Name)
	}
	if reflect.DeepEqual(a[0].Phases, a[1].Phases) {
		t.Fatal("family variants identical: forked RNGs not independent")
	}
}

func TestScaleBWScalesDemand(t *testing.T) {
	base := Generate(DefaultConfig(31))
	v := Apply(base, 1, ScaleBW(2, 2))
	for i := range base.Phases {
		if got, want := v.Phases[i].MemBW, 2*base.Phases[i].MemBW; got != want {
			t.Fatalf("phase %d: MemBW %.3g, want %.3g", i, got, want)
		}
	}
}

func TestInjectIdleAddsIdlePhases(t *testing.T) {
	base := Generate(DefaultConfig(41))
	v := Apply(base, 1, InjectIdle(1.0, 50*sim.Millisecond))
	if len(v.Phases) != 2*len(base.Phases) {
		t.Fatalf("prob-1 injection: %d phases, want %d", len(v.Phases), 2*len(base.Phases))
	}
	idle := v.Phases[1]
	if idle.Residency.C8 < 0.5 {
		t.Fatalf("injected phase not idle-dominated: %+v", idle.Residency)
	}
}

func TestSplitPreservesTotalDuration(t *testing.T) {
	base := Generate(DefaultConfig(51))
	v := Apply(base, 9, SplitPhases(1.0))
	if v.TotalDuration() != base.TotalDuration() {
		t.Fatalf("split changed total duration: %v vs %v", v.TotalDuration(), base.TotalDuration())
	}
	if len(v.Phases) <= len(base.Phases) {
		t.Fatal("prob-1 split did not split")
	}
}
