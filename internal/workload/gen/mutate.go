package gen

import (
	"fmt"

	"sysscale/internal/compute"
	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// A Mutator derives a perturbed workload from an existing one, drawing
// any randomness from the supplied RNG. Mutators never modify their
// input (phases are copied first) and must keep Validate-clean inputs
// Validate-clean, so chains of mutators can be applied blindly to any
// canonical or generated workload.
type Mutator func(rng *sim.RNG, w workload.Workload) workload.Workload

// Chain composes mutators left to right.
func Chain(ms ...Mutator) Mutator {
	return func(rng *sim.RNG, w workload.Workload) workload.Workload {
		for _, m := range ms {
			w = m(rng, w)
		}
		return w
	}
}

// Apply runs the mutators over w with a fresh RNG seeded by seed.
func Apply(w workload.Workload, seed uint64, ms ...Mutator) workload.Workload {
	return Chain(ms...)(sim.NewRNG(seed), w)
}

// Family derives n mutated variants of base — a scenario family. Each
// variant draws from an RNG forked off one seeded master stream (the
// same extension-stable scheme as GenerateN) and is named
// "<base>~f<i>".
func Family(base workload.Workload, seed uint64, n int, ms ...Mutator) []workload.Workload {
	master := sim.NewRNG(seed)
	mut := Chain(ms...)
	out := make([]workload.Workload, 0, n)
	for i := 0; i < n; i++ {
		rng := master.Fork()
		v := mut(rng, base)
		v.Name = fmt.Sprintf("%s~f%02d", base.Name, i)
		out = append(out, v)
	}
	return out
}

// clonePhases returns a workload whose phase slice is private.
func clonePhases(w workload.Workload) workload.Workload {
	w.Phases = append([]workload.Phase(nil), w.Phases...)
	return w
}

// SplitPhases splits each phase with probability prob into two
// back-to-back sub-phases at a jittered cut point (25-75% of the
// duration). The demand profile over time is unchanged; only the phase
// granularity the PMU algorithm observes gets finer.
func SplitPhases(prob float64) Mutator {
	return func(rng *sim.RNG, w workload.Workload) workload.Workload {
		out := w
		out.Phases = make([]workload.Phase, 0, len(w.Phases))
		for _, p := range w.Phases {
			if rng.Float64() >= prob || p.Duration < 2*sim.Millisecond {
				out.Phases = append(out.Phases, p)
				continue
			}
			cut := sim.Time(float64(p.Duration) * rng.Range(0.25, 0.75))
			cut = cut / sim.Millisecond * sim.Millisecond
			if cut < sim.Millisecond {
				cut = sim.Millisecond
			}
			if cut >= p.Duration {
				cut = p.Duration / 2
			}
			a, b := p, p
			a.Duration = cut
			b.Duration = p.Duration - cut
			out.Phases = append(out.Phases, a, b)
		}
		return out
	}
}

// JitterDurations scales every phase duration by an independent uniform
// factor in [1-frac, 1+frac], quantized to 1ms with a 1ms floor.
func JitterDurations(frac float64) Mutator {
	return func(rng *sim.RNG, w workload.Workload) workload.Workload {
		out := clonePhases(w)
		for i := range out.Phases {
			d := sim.Time(float64(out.Phases[i].Duration) * rng.Range(1-frac, 1+frac))
			d = d / sim.Millisecond * sim.Millisecond
			if d < sim.Millisecond {
				d = sim.Millisecond
			}
			out.Phases[i].Duration = d
		}
		return out
	}
}

// ScaleBW multiplies every phase's memory and IO bandwidth demand by
// one factor drawn uniformly from [lo, hi] — shifting a whole scenario
// toward or away from bandwidth saturation.
func ScaleBW(lo, hi float64) Mutator {
	return func(rng *sim.RNG, w workload.Workload) workload.Workload {
		s := rng.Range(lo, hi)
		out := clonePhases(w)
		for i := range out.Phases {
			out.Phases[i].MemBW *= s
			out.Phases[i].IOBW *= s
		}
		return out
	}
}

// InjectIdle inserts a deep-idle phase (duration dwell, mostly-C8
// residency, minimal demand) after each phase with probability prob —
// turning throughput scenarios into battery-like duty-cycled ones.
func InjectIdle(prob float64, dwell sim.Time) Mutator {
	if dwell < sim.Millisecond {
		dwell = sim.Millisecond
	}
	return func(rng *sim.RNG, w workload.Workload) workload.Workload {
		out := w
		out.Phases = make([]workload.Phase, 0, len(w.Phases))
		for _, p := range w.Phases {
			out.Phases = append(out.Phases, p)
			if rng.Float64() >= prob {
				continue
			}
			out.Phases = append(out.Phases, workload.Phase{
				Duration:     dwell,
				CoreFrac:     0.10,
				MemLatFrac:   0.04,
				MemBW:        rng.Range(0.05, 0.4) * 1e9,
				ActiveCores:  1,
				CoreActivity: 0.15,
				Residency:    compute.Residency{C0: 0.04, C2: 0.02, C6: 0.10, C8: 0.84},
			})
		}
		return out
	}
}
