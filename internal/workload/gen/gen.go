// Package gen is the stochastic workload generator: a deterministic,
// seed-driven source of simulation scenarios far beyond the hand-written
// suites in internal/workload.
//
// A generated workload is a realization of a Markov chain over workload
// classes (compute-bound, memory-latency-bound, memory-bandwidth-bound,
// graphics, idle-heavy, bursty-interactive). Each visit to a state
// emits one phase: the dwell time is drawn log-normally, and the
// phase's CPI-stack fractions, bandwidth demands and C-state residency
// are drawn from per-class intensity distributions. All randomness
// flows through one sim.RNG seeded from Config.Seed, so a seed fully
// determines the emitted workloads — byte-for-byte, across runs and
// GOMAXPROCS settings (the seed-reproducibility contract the Monte
// Carlo robustness suite and the property tests rely on). The
// contract is per architecture/toolchain: the integer RNG stream is
// universally stable, but Go may evaluate the float draw arithmetic
// with fused multiply-adds on some architectures, which can perturb
// low mantissa bits between, say, amd64 and arm64. Traces shared
// across architectures carry the recorded workloads for exactly this
// reason (see trace.go).
//
// Composable mutators (mutate.go) derive scenario families from
// existing workloads — canonical or generated — and the trace format
// (trace.go) persists generated scenario sets as JSON with enough
// provenance to replay and re-verify them.
package gen

import (
	"fmt"
	"math"

	"sysscale/internal/compute"
	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// Class is a generator workload class: the state space of the Markov
// phase-transition model.
type Class int

// The six generator classes. They deliberately mirror the bottleneck
// structures the paper's evaluation exercises: SPEC-like compute and
// memory bound behaviour (§7.1), 3DMark-like graphics scenes (§7.2),
// battery-workload idling (§7.3), and the spiky interactive pattern of
// astar/perlbench (Fig. 3a).
const (
	ComputeBound Class = iota
	MemLatencyBound
	MemBWBound
	GraphicsBound
	IdleHeavy
	BurstyInteractive

	NumClasses = 6
)

func (c Class) String() string {
	switch c {
	case ComputeBound:
		return "compute"
	case MemLatencyBound:
		return "mem-lat"
	case MemBWBound:
		return "mem-bw"
	case GraphicsBound:
		return "graphics"
	case IdleHeavy:
		return "idle"
	case BurstyInteractive:
		return "bursty"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Matrix is a row-stochastic transition matrix over the generator
// classes: Matrix[i][j] is the unnormalized weight of moving from class
// i to class j at a phase boundary. Rows need not sum to 1 — they are
// normalized at draw time — but every row must have positive mass.
type Matrix [NumClasses][NumClasses]float64

// DefaultMatrix returns the default phase-transition structure: strong
// self-loops (workloads dwell in a behaviour for several phases, like
// the several-second astar phases of §7.1), with the remaining mass
// spread over plausible neighbours (compute ↔ memory phases, graphics
// scenes interleaved with bursts, idle periods entered from anywhere).
func DefaultMatrix() Matrix {
	return Matrix{
		//                 comp  lat   bw    gfx   idle  burst
		ComputeBound:      {0.55, 0.15, 0.10, 0.02, 0.08, 0.10},
		MemLatencyBound:   {0.18, 0.50, 0.17, 0.02, 0.05, 0.08},
		MemBWBound:        {0.12, 0.18, 0.55, 0.03, 0.04, 0.08},
		GraphicsBound:     {0.05, 0.04, 0.06, 0.65, 0.08, 0.12},
		IdleHeavy:         {0.12, 0.06, 0.04, 0.06, 0.58, 0.14},
		BurstyInteractive: {0.16, 0.10, 0.10, 0.06, 0.18, 0.40},
	}
}

// Validate checks that every row has positive mass and no negative
// weights.
func (m Matrix) Validate() error {
	for i, row := range m {
		total := 0.0
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("gen: negative transition weight [%d][%d]", i, j)
			}
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("gen: transition row %d has zero mass", i)
		}
	}
	return nil
}

// Config parameterizes the generator. The zero value is not usable;
// start from DefaultConfig and override fields.
type Config struct {
	// Seed drives every draw. Identical configs produce byte-identical
	// workloads.
	Seed uint64 `json:"seed"`

	// NamePrefix prefixes generated workload names (default "gen").
	NamePrefix string `json:"name_prefix,omitempty"`

	// Phases is the number of phases per workload (default 8).
	Phases int `json:"phases"`

	// StartWeights is the initial-class distribution (default uniform).
	StartWeights []float64 `json:"start_weights,omitempty"`

	// Transitions is the Markov transition structure (default
	// DefaultMatrix). The pointer keeps the zero Config JSON-compact.
	Transitions *Matrix `json:"transitions,omitempty"`

	// MeanDwell is the median phase dwell time (default 500ms); the
	// log-normal sigma DwellSigma (default 0.45) sets its spread. Dwells
	// are clamped to [MinDwell, MaxDwell] (defaults 20ms, 4s) and
	// quantized to 1ms.
	MeanDwell  sim.Time `json:"mean_dwell"`
	DwellSigma float64  `json:"dwell_sigma"`
	MinDwell   sim.Time `json:"min_dwell"`
	MaxDwell   sim.Time `json:"max_dwell"`

	// BWScale scales every drawn bandwidth demand (default 1). Sweeps
	// use it to push scenario families toward or away from saturation.
	BWScale float64 `json:"bw_scale"`

	// MaxCores bounds ActiveCores for CPU phases (default 2, the
	// platform's core count).
	MaxCores int `json:"max_cores"`
}

// DefaultConfig returns the default generator parameters for a seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		NamePrefix: "gen",
		Phases:     8,
		MeanDwell:  500 * sim.Millisecond,
		DwellSigma: 0.45,
		MinDwell:   20 * sim.Millisecond,
		MaxDwell:   4 * sim.Second,
		BWScale:    1,
		MaxCores:   2,
	}
}

// withDefaults fills unset fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Seed)
	if c.NamePrefix == "" {
		c.NamePrefix = d.NamePrefix
	}
	if c.Phases <= 0 {
		c.Phases = d.Phases
	}
	if c.MeanDwell <= 0 {
		c.MeanDwell = d.MeanDwell
	}
	if c.DwellSigma <= 0 {
		c.DwellSigma = d.DwellSigma
	}
	if c.MinDwell <= 0 {
		c.MinDwell = d.MinDwell
	}
	if c.MaxDwell <= 0 {
		c.MaxDwell = d.MaxDwell
	}
	if c.BWScale <= 0 {
		c.BWScale = d.BWScale
	}
	if c.MaxCores <= 0 {
		c.MaxCores = d.MaxCores
	}
	return c
}

// Validate checks the configuration (after default filling).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MinDwell > c.MaxDwell {
		return fmt.Errorf("gen: MinDwell %v exceeds MaxDwell %v", c.MinDwell, c.MaxDwell)
	}
	if c.StartWeights != nil && len(c.StartWeights) != NumClasses {
		return fmt.Errorf("gen: StartWeights has %d entries, want %d", len(c.StartWeights), NumClasses)
	}
	if c.Transitions != nil {
		if err := c.Transitions.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Generate emits one workload from the configuration. The result is
// guaranteed Validate-clean; Generate panics only on an invalid Config
// (use Config.Validate to check first when the config is untrusted).
func Generate(cfg Config) workload.Workload {
	ws := GenerateN(cfg, 1)
	return ws[0]
}

// GenerateN emits n workloads from one configuration. Workload i is
// named "<prefix>-<seed>-<i>" and drawn from an RNG forked off the
// master stream, so generating n workloads and generating the first
// n-1 yield identical prefixes (stream stability under extension).
func GenerateN(cfg Config, n int) []workload.Workload {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	trans := cfg.Transitions
	if trans == nil {
		m := DefaultMatrix()
		trans = &m
	}
	master := sim.NewRNG(cfg.Seed)
	out := make([]workload.Workload, 0, n)
	for i := 0; i < n; i++ {
		rng := master.Fork()
		out = append(out, generateOne(cfg, *trans, rng, fmt.Sprintf("%s-%d-%04d", cfg.NamePrefix, cfg.Seed, i)))
	}
	return out
}

// generateOne realizes one Markov chain walk.
func generateOne(cfg Config, trans Matrix, rng *sim.RNG, name string) workload.Workload {
	start := cfg.StartWeights
	if start == nil {
		start = uniformWeights()
	}
	state := Class(rng.Pick(start))

	phases := make([]workload.Phase, 0, cfg.Phases)
	classTime := [NumClasses]sim.Time{}
	for i := 0; i < cfg.Phases; i++ {
		p := drawPhase(cfg, rng, state)
		phases = append(phases, p)
		classTime[state] += p.Duration
		state = Class(rng.Pick(trans[state][:]))
	}
	return workload.Workload{
		Name:   name,
		Class:  workloadClass(classTime),
		Phases: phases,
	}
}

func uniformWeights() []float64 {
	w := make([]float64, NumClasses)
	for i := range w {
		w[i] = 1
	}
	return w
}

// workloadClass maps the dominant generated class (by dwell time) onto
// the workload package's evaluation categories.
func workloadClass(classTime [NumClasses]sim.Time) workload.Class {
	dom, max := ComputeBound, sim.Time(-1)
	for c, t := range classTime {
		if t > max {
			dom, max = Class(c), t
		}
	}
	switch dom {
	case GraphicsBound:
		return workload.Graphics
	case IdleHeavy, BurstyInteractive:
		return workload.Battery
	default:
		return workload.CPUSingleThread
	}
}

// dwellBounds returns the clamp window aligned inward onto the 1ms
// grid (MinDwell rounded up, MaxDwell rounded down), so a clamped,
// quantized dwell always satisfies both the [MinDwell, MaxDwell]
// contract and the grid. A window too narrow to contain a grid point
// degenerates to its lower edge.
func dwellBounds(cfg Config) (lo, hi sim.Time) {
	lo = (cfg.MinDwell + sim.Millisecond - 1) / sim.Millisecond * sim.Millisecond
	if lo < sim.Millisecond {
		lo = sim.Millisecond
	}
	hi = cfg.MaxDwell / sim.Millisecond * sim.Millisecond
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// drawDwell draws a log-normal dwell time centred on MeanDwell,
// quantized to 1ms (so traces stay readable and the JSON round trip is
// exact) and clamped to the grid-aligned [MinDwell, MaxDwell] window.
func drawDwell(cfg Config, rng *sim.RNG) sim.Time {
	mu := math.Log(float64(cfg.MeanDwell))
	d := sim.Time(rng.LogNormal(mu, cfg.DwellSigma))
	d = d / sim.Millisecond * sim.Millisecond
	lo, hi := dwellBounds(cfg)
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

// drawPhase emits one phase of the given class. Every class keeps the
// CPI fractions summing below 1 and the residency a distribution, so
// generated workloads are Validate-clean by construction.
func drawPhase(cfg Config, rng *sim.RNG, class Class) workload.Phase {
	p := workload.Phase{
		Duration:  drawDwell(cfg, rng),
		Residency: compute.FullyActive(),
	}
	gb := func(lo, hi float64) float64 { return rng.Range(lo, hi) * 1e9 * cfg.BWScale }
	cores := func(min int) int {
		if cfg.MaxCores <= min {
			return min
		}
		return min + rng.Intn(cfg.MaxCores-min+1)
	}
	switch class {
	case ComputeBound:
		p.CoreFrac = rng.Range(0.78, 0.96)
		p.MemLatFrac = rng.Range(0.01, 0.10)
		p.MemBWFrac = rng.Range(0.005, 0.05)
		p.MemBW = gb(0.3, 2.2)
		p.ActiveCores = cores(1)
		p.CoreActivity = rng.Range(0.70, 0.90)
	case MemLatencyBound:
		p.CoreFrac = rng.Range(0.18, 0.38)
		p.MemLatFrac = rng.Range(0.40, 0.60)
		p.MemBWFrac = rng.Range(0.05, 0.15)
		p.MemBW = gb(1.5, 4.5)
		p.ActiveCores = cores(1)
		p.CoreActivity = rng.Range(0.40, 0.58)
	case MemBWBound:
		p.CoreFrac = rng.Range(0.10, 0.25)
		p.MemLatFrac = rng.Range(0.10, 0.25)
		p.MemBWFrac = rng.Range(0.45, 0.68)
		p.MemBW = gb(5.5, 11.5)
		p.ActiveCores = cores(1)
		p.CoreActivity = rng.Range(0.40, 0.52)
	case GraphicsBound:
		p.GfxFrac = rng.Range(0.50, 0.80)
		p.CoreFrac = rng.Range(0.05, 0.14)
		mem := rng.Range(0.04, 0.18)
		latShare := rng.Range(0.25, 0.40)
		p.MemLatFrac = mem * latShare
		p.MemBWFrac = mem * (1 - latShare)
		p.MemBW = gb(4, 14)
		p.ActiveCores = 1
		p.CoreActivity = rng.Range(0.25, 0.45)
		p.GfxActivity = rng.Range(0.50, 0.95)
	case IdleHeavy:
		p.CoreFrac = rng.Range(0.15, 0.45)
		p.GfxFrac = rng.Range(0.02, 0.15)
		p.MemLatFrac = rng.Range(0.08, 0.18)
		p.MemBWFrac = rng.Range(0.03, 0.12)
		p.IOFrac = rng.Range(0.04, 0.16)
		p.MemBW = gb(0.8, 5.0)
		p.IOBW = gb(0.1, 1.5)
		p.ActiveCores = cores(1)
		p.CoreActivity = rng.Range(0.25, 0.60)
		p.GfxActivity = rng.Range(0.08, 0.35)
		c0 := rng.Range(0.08, 0.38)
		c2 := rng.Range(0.01, 0.10)
		c6 := rng.Range(0.05, 0.35) * (1 - c0 - c2)
		p.Residency = compute.Residency{C0: c0, C2: c2, C6: c6, C8: 1 - c0 - c2 - c6}
	case BurstyInteractive:
		// A short, intense burst: high demand at partial residency —
		// the scroll/render pattern of the battery web workload and the
		// astar spike pattern compressed into one phase.
		p.CoreFrac = rng.Range(0.35, 0.60)
		p.GfxFrac = rng.Range(0.02, 0.12)
		p.MemLatFrac = rng.Range(0.10, 0.22)
		p.MemBWFrac = rng.Range(0.08, 0.25)
		p.IOFrac = rng.Range(0.02, 0.10)
		p.MemBW = gb(2.5, 9.0)
		p.IOBW = gb(0.05, 0.6)
		p.ActiveCores = cores(1)
		p.CoreActivity = rng.Range(0.55, 0.85)
		p.GfxActivity = rng.Range(0.10, 0.40)
		c0 := rng.Range(0.30, 0.65)
		c2 := rng.Range(0.01, 0.08)
		p.Residency = compute.Residency{C0: c0, C2: c2, C8: 1 - c0 - c2}
		// Bursts are shorter than sustained phases; re-quantize and
		// re-clamp so the emitted duration stays on the grid and in the
		// dwell window.
		p.Duration = p.Duration / 2 / sim.Millisecond * sim.Millisecond
		if lo, _ := dwellBounds(cfg); p.Duration < lo {
			p.Duration = lo
		}
	}
	capFracs(&p)
	return p
}

// fracCap is the ceiling the CPI fractions are normalized under; the
// remainder is the OtherFrac slack every real CPI stack has.
const fracCap = 0.97

// capFracs rescales the CPI fractions when independent draws land
// above the cap, keeping the phase Validate-clean (fractions must sum
// to at most 1) while preserving the drawn bottleneck ratios.
func capFracs(p *workload.Phase) {
	sum := p.CoreFrac + p.GfxFrac + p.MemLatFrac + p.MemBWFrac + p.IOFrac
	if sum <= fracCap {
		return
	}
	s := fracCap / sum
	p.CoreFrac *= s
	p.GfxFrac *= s
	p.MemLatFrac *= s
	p.MemBWFrac *= s
	p.IOFrac *= s
}
