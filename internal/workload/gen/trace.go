package gen

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"

	"sysscale/internal/workload"
)

// TraceVersion is the current trace wire-format version.
const TraceVersion = 1

// Trace is the persistable record of a generated scenario set: the
// workloads themselves (in workload's JSON wire format) plus, when the
// set came from the generator, the Config that produced them. Carrying
// both makes a trace self-verifying: Replay regenerates from the
// recorded Config and checks the result against the recorded
// workloads, catching any drift in the generator's stream (an RNG
// change, a distribution tweak) before it silently invalidates shared
// scenario files.
type Trace struct {
	Version   int                 `json:"version"`
	Generator *Config             `json:"generator,omitempty"`
	Workloads []workload.Workload `json:"workloads"`
}

// NewTrace records n workloads generated from cfg, with provenance.
func NewTrace(cfg Config, n int) Trace {
	cfg = cfg.withDefaults()
	return Trace{
		Version:   TraceVersion,
		Generator: &cfg,
		Workloads: GenerateN(cfg, n),
	}
}

// WriteTrace encodes a trace (indented) to w.
func WriteTrace(w io.Writer, t Trace) error {
	if t.Version == 0 {
		t.Version = TraceVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace decodes and validates one trace from r. Every recorded
// workload must be Validate-clean and the generator config (when
// present) well-formed; replay verification is separate (Replay) so
// readers that only want the recorded workloads don't pay for
// regeneration.
func ReadTrace(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("gen: decode trace: %w", err)
	}
	if t.Version != TraceVersion {
		return Trace{}, fmt.Errorf("gen: unsupported trace version %d", t.Version)
	}
	for i, w := range t.Workloads {
		if err := w.Validate(); err != nil {
			return Trace{}, fmt.Errorf("gen: trace workload %d: %w", i, err)
		}
	}
	if t.Generator != nil {
		if err := t.Generator.Validate(); err != nil {
			return Trace{}, err
		}
	}
	return t, nil
}

// Replay returns the trace's workloads. When the trace carries
// generator provenance, the workloads are regenerated from the
// recorded Config and verified against the recorded set; a mismatch
// means the generator's stream has drifted since the trace was
// written, and the recorded workloads can no longer be reproduced from
// their seed. Regeneration is bit-exact on the architecture/toolchain
// that wrote the trace; when replaying on a different architecture a
// mismatch can also reflect float-evaluation differences (FMA
// contraction) rather than true drift — the recorded workloads
// themselves remain the authoritative scenario set either way.
func (t Trace) Replay() ([]workload.Workload, error) {
	if t.Generator == nil {
		return t.Workloads, nil
	}
	regen := GenerateN(*t.Generator, len(t.Workloads))
	for i := range regen {
		if !reflect.DeepEqual(regen[i], t.Workloads[i]) {
			return nil, fmt.Errorf("gen: replay mismatch at workload %d (%s): generator stream drifted from recorded trace",
				i, t.Workloads[i].Name)
		}
	}
	return t.Workloads, nil
}
