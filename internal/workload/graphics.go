package workload

import "sysscale/internal/sim"

// The 3DMark workloads of §7.2. Graphics benchmarks are dominated by
// the graphics engines; the CPU cores contribute driver and physics
// work but run near their most-efficient frequency (the paper notes
// PBM gives the cores only 10-20% of the compute budget here). Memory
// bandwidth demand varies over the scenes (Fig. 3a shows the 3DMark
// trace oscillating between roughly 5 and 14 GB/s), so SysScale
// switches operating points scene by scene — phases below the GFX
// bandwidth threshold run at the low point with the freed budget
// boosting graphics frequency, which is where the 6.7-8.9% FPS gains
// come from.

// gfxScene is one rendered scene's profile.
type gfxScene struct {
	dur  sim.Time
	gfx  float64 // gfx-engine-bound fraction
	core float64
	lat  float64
	bw   float64
	mem  float64 // GB/s
}

func gfxWorkload(name string, scenes []gfxScene) Workload {
	phases := make([]Phase, len(scenes))
	for i, s := range scenes {
		phases[i] = Phase{
			Duration:     s.dur,
			GfxFrac:      s.gfx,
			CoreFrac:     s.core,
			MemLatFrac:   s.lat,
			MemBWFrac:    s.bw,
			MemBW:        GB(s.mem),
			ActiveCores:  1,
			CoreActivity: 0.35,
			GfxActivity:  0.85,
			Residency:    fullActive(),
		}
	}
	return Workload{Name: name, Class: Graphics, Phases: phases}
}

// ThreeDMark06 models 3DMark06: older API, lighter bandwidth, mostly
// gfx-engine bound — the largest SysScale gain of the three (8.9%).
func ThreeDMark06() Workload {
	return gfxWorkload("3DMark06", []gfxScene{
		{dur: 2 * sim.Second, gfx: 0.74, core: 0.10, lat: 0.05, bw: 0.06, mem: 5.5},
		{dur: 2 * sim.Second, gfx: 0.70, core: 0.10, lat: 0.06, bw: 0.09, mem: 7.5},
		{dur: 1 * sim.Second, gfx: 0.55, core: 0.08, lat: 0.08, bw: 0.24, mem: 12.5},
		{dur: 2 * sim.Second, gfx: 0.72, core: 0.11, lat: 0.05, bw: 0.07, mem: 6.0},
	})
}

// ThreeDMark11 models 3DMark11: heavier shaders and post-processing,
// more bandwidth-hungry scenes, so SysScale spends more time at the
// high point and gains less (6.7%).
func ThreeDMark11() Workload {
	return gfxWorkload("3DMark11", []gfxScene{
		{dur: 2 * sim.Second, gfx: 0.62, core: 0.08, lat: 0.07, bw: 0.18, mem: 10.5},
		{dur: 2 * sim.Second, gfx: 0.68, core: 0.09, lat: 0.06, bw: 0.12, mem: 8.5},
		{dur: 2 * sim.Second, gfx: 0.52, core: 0.07, lat: 0.09, bw: 0.27, mem: 13.5},
		{dur: 1 * sim.Second, gfx: 0.70, core: 0.10, lat: 0.05, bw: 0.08, mem: 6.5},
	})
}

// ThreeDMarkVantage models 3DMark Vantage, between the other two
// (8.1%).
func ThreeDMarkVantage() Workload {
	return gfxWorkload("3DMarkVantage", []gfxScene{
		{dur: 2 * sim.Second, gfx: 0.70, core: 0.09, lat: 0.06, bw: 0.09, mem: 7.0},
		{dur: 2 * sim.Second, gfx: 0.66, core: 0.09, lat: 0.07, bw: 0.13, mem: 9.5},
		{dur: 1 * sim.Second, gfx: 0.54, core: 0.08, lat: 0.08, bw: 0.25, mem: 13.0},
		{dur: 2 * sim.Second, gfx: 0.72, core: 0.10, lat: 0.05, bw: 0.07, mem: 5.5},
	})
}

// GraphicsSuite returns the three 3DMark workloads of Fig. 8.
func GraphicsSuite() []Workload {
	return []Workload{ThreeDMark06(), ThreeDMark11(), ThreeDMarkVantage()}
}
