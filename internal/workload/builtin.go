package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Builtin resolves a built-in workload by name, matched
// case-insensitively against every shipped suite: SPEC CPU2006, the
// 3DMark graphics suite, the battery-life suite, the productivity
// suite, and the STREAM microbenchmark ("stream" or "stream-peak-bw").
// This is the lookup behind spec files' {"workload":{"builtin":...}}
// and the CLIs' -workload flags.
func Builtin(name string) (Workload, error) {
	lower := strings.ToLower(name)
	// SPEC lookup is by canonical name (some are mixed-case, e.g.
	// 436.cactusADM); resolve the query against the canonical list.
	for _, n := range SPECNames() {
		if strings.ToLower(n) == lower {
			return SPEC(n)
		}
	}
	for _, suite := range [][]Workload{GraphicsSuite(), BatterySuite(), ProductivitySuite()} {
		for _, w := range suite {
			if strings.ToLower(w.Name) == lower {
				return w, nil
			}
		}
	}
	if lower == "stream" || lower == "stream-peak-bw" {
		return Stream(), nil
	}
	return Workload{}, fmt.Errorf("workload: unknown built-in %q", name)
}

// BuiltinNames returns every name Builtin accepts (canonical
// capitalization, sorted).
func BuiltinNames() []string {
	names := append([]string(nil), SPECNames()...)
	for _, suite := range [][]Workload{GraphicsSuite(), BatterySuite(), ProductivitySuite()} {
		for _, w := range suite {
			names = append(names, w.Name)
		}
	}
	names = append(names, Stream().Name)
	sort.Strings(names)
	return names
}
