package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Class != orig.Class || len(back.Phases) != len(orig.Phases) {
		t.Fatal("round trip lost structure")
	}
	for i := range orig.Phases {
		if back.Phases[i] != orig.Phases[i] {
			t.Fatalf("phase %d differs: %+v vs %+v", i, back.Phases[i], orig.Phases[i])
		}
	}
}

func TestJSONClassNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Stream()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"micro"`) {
		t.Fatalf("class not encoded by name: %s", buf.String())
	}
}

func TestJSONListRoundTrip(t *testing.T) {
	ws := Synthetic(SyntheticSpec{Class: CPUSingleThread, Count: 3, Seed: 4})
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, w := range ws {
		if i > 0 {
			buf.WriteByte(',')
		}
		if err := WriteJSON(&buf, w); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteByte(']')
	back, err := ReadJSONList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("list length = %d", len(back))
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Class":"cpu-st","Phases":[]}`)); err == nil {
		t.Fatal("phaseless workload accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Class":"bogus"}`)); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONList(strings.NewReader(`[{"Name":"","Class":"cpu-st"}]`)); err == nil {
		t.Fatal("invalid list element accepted")
	}
}
