package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization for workload traces: cmd/tracegen dumps suites to
// disk, and users can define custom workloads as JSON and replay them
// through the simulator. The wire format spells durations in
// nanoseconds (sim.Time's underlying unit) and classes by name.

// MarshalJSON encodes the class by name.
func (c Class) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a class name.
func (c *Class) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "cpu-st":
		*c = CPUSingleThread
	case "cpu-mt":
		*c = CPUMultiThread
	case "graphics":
		*c = Graphics
	case "battery":
		*c = Battery
	case "micro":
		*c = Micro
	default:
		return fmt.Errorf("workload: unknown class %q", s)
	}
	return nil
}

// WriteJSON encodes a workload (indented) to w.
func WriteJSON(w io.Writer, wl Workload) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wl)
}

// ReadJSON decodes and validates one workload from r.
func ReadJSON(r io.Reader) (Workload, error) {
	var wl Workload
	if err := json.NewDecoder(r).Decode(&wl); err != nil {
		return Workload{}, fmt.Errorf("workload: decode: %w", err)
	}
	if err := wl.Validate(); err != nil {
		return Workload{}, err
	}
	return wl, nil
}

// WriteJSONList encodes a workload slice (indented) to w; the output
// is readable back via ReadJSONList.
func WriteJSONList(w io.Writer, wls []Workload) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wls)
}

// ReadJSONList decodes and validates a JSON array of workloads.
func ReadJSONList(r io.Reader) ([]Workload, error) {
	var wls []Workload
	if err := json.NewDecoder(r).Decode(&wls); err != nil {
		return nil, fmt.Errorf("workload: decode list: %w", err)
	}
	for i, wl := range wls {
		if err := wl.Validate(); err != nil {
			return nil, fmt.Errorf("workload %d: %w", i, err)
		}
	}
	return wls, nil
}
