package workload

import (
	"fmt"

	"sysscale/internal/sim"
)

// specProfile characterizes one SPEC CPU2006 benchmark. Fractions are
// defined at the reference conditions (see package comment). The
// decompositions follow the paper's own characterization where given —
// perlbench core-bound with bandwidth spikes, cactusADM heavily
// latency-bound, lbm constant high-bandwidth (Figs. 2b/2c), astar
// alternating between ~1GB/s and ~10GB/s phases of several seconds
// (§7.1, Fig. 3a), gamess/namd highly scalable, bwaves/milc memory
// bound with almost no gain (§7.1) — and public SPEC characterization
// studies for the rest.
type specProfile struct {
	name    string
	core    float64 // core-bound fraction
	lat     float64 // memory-latency-bound fraction
	bw      float64 // memory-bandwidth-bound fraction
	memBW   float64 // GB/s average demand at reference progress
	act     float64 // core switching activity
	spiky   bool    // bandwidth demand alternates between lo and hi
	spikeBW float64 // GB/s during spikes (if spiky)
}

var specProfiles = []specProfile{
	{name: "400.perlbench", core: 0.84, lat: 0.06, bw: 0.04, memBW: 1.2, act: 0.80, spiky: true, spikeBW: 5.0},
	{name: "401.bzip2", core: 0.72, lat: 0.12, bw: 0.08, memBW: 2.2, act: 0.72},
	{name: "403.gcc", core: 0.64, lat: 0.15, bw: 0.08, memBW: 2.4, act: 0.70},
	{name: "410.bwaves", core: 0.14, lat: 0.20, bw: 0.60, memBW: 7.5, act: 0.46},
	{name: "416.gamess", core: 0.95, lat: 0.02, bw: 0.01, memBW: 0.4, act: 0.86},
	{name: "429.mcf", core: 0.24, lat: 0.58, bw: 0.10, memBW: 2.6, act: 0.42},
	{name: "433.milc", core: 0.18, lat: 0.26, bw: 0.50, memBW: 6.8, act: 0.46},
	{name: "434.zeusmp", core: 0.56, lat: 0.16, bw: 0.20, memBW: 3.0, act: 0.64},
	{name: "435.gromacs", core: 0.85, lat: 0.08, bw: 0.04, memBW: 1.1, act: 0.82},
	{name: "436.cactusADM", core: 0.34, lat: 0.45, bw: 0.14, memBW: 4.2, act: 0.52},
	{name: "437.leslie3d", core: 0.34, lat: 0.20, bw: 0.40, memBW: 4.4, act: 0.54},
	{name: "444.namd", core: 0.95, lat: 0.02, bw: 0.01, memBW: 0.3, act: 0.86},
	{name: "445.gobmk", core: 0.80, lat: 0.13, bw: 0.03, memBW: 0.9, act: 0.74},
	{name: "447.dealII", core: 0.78, lat: 0.12, bw: 0.05, memBW: 1.5, act: 0.76},
	{name: "450.soplex", core: 0.34, lat: 0.36, bw: 0.24, memBW: 3.4, act: 0.52},
	{name: "453.povray", core: 0.96, lat: 0.02, bw: 0.01, memBW: 0.25, act: 0.88},
	{name: "454.calculix", core: 0.80, lat: 0.11, bw: 0.06, memBW: 1.6, act: 0.80},
	{name: "456.hmmer", core: 0.86, lat: 0.08, bw: 0.03, memBW: 1.1, act: 0.84},
	{name: "458.sjeng", core: 0.80, lat: 0.15, bw: 0.02, memBW: 0.6, act: 0.74},
	{name: "459.GemsFDTD", core: 0.30, lat: 0.26, bw: 0.38, memBW: 5.2, act: 0.50},
	{name: "462.libquantum", core: 0.18, lat: 0.16, bw: 0.60, memBW: 7.2, act: 0.44},
	{name: "464.h264ref", core: 0.80, lat: 0.10, bw: 0.06, memBW: 2.0, act: 0.82},
	{name: "465.tonto", core: 0.80, lat: 0.11, bw: 0.05, memBW: 1.4, act: 0.78},
	{name: "470.lbm", core: 0.14, lat: 0.16, bw: 0.64, memBW: 10.0, act: 0.46},
	{name: "471.omnetpp", core: 0.34, lat: 0.50, bw: 0.10, memBW: 1.8, act: 0.48},
	{name: "473.astar", core: 0.75, lat: 0.12, bw: 0.05, memBW: 0.8, act: 0.60, spiky: true, spikeBW: 7.0},
	{name: "481.wrf", core: 0.62, lat: 0.14, bw: 0.14, memBW: 2.6, act: 0.66},
	{name: "482.sphinx3", core: 0.58, lat: 0.16, bw: 0.16, memBW: 2.8, act: 0.62},
	{name: "483.xalancbmk", core: 0.44, lat: 0.42, bw: 0.10, memBW: 2.0, act: 0.54},
}

// SPECNames returns the benchmark names in suite order.
func SPECNames() []string {
	out := make([]string, len(specProfiles))
	for i, p := range specProfiles {
		out[i] = p.name
	}
	return out
}

// phaseDuration is the default length of one homogeneous phase; spiky
// benchmarks alternate phases of several seconds, matching the
// several-second phases the paper reports for astar (§7.1).
const phaseDuration = 3 * sim.Second

// SPEC returns the single-threaded workload for a SPEC CPU2006
// benchmark name.
func SPEC(name string) (Workload, error) {
	for _, p := range specProfiles {
		if p.name == name {
			return specWorkload(p, false), nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown SPEC benchmark %q", name)
}

// SPECSuite returns all 29 single-threaded SPEC CPU2006 workloads.
func SPECSuite() []Workload {
	out := make([]Workload, len(specProfiles))
	for i, p := range specProfiles {
		out[i] = specWorkload(p, false)
	}
	return out
}

// SPECSuiteMT returns multi-threaded (rate-style, both cores busy)
// variants: demand scales with the second core, fractions stay, and
// the shared memory subsystem sees nearly doubled traffic.
func SPECSuiteMT() []Workload {
	out := make([]Workload, len(specProfiles))
	for i, p := range specProfiles {
		out[i] = specWorkload(p, true)
	}
	return out
}

func specWorkload(p specProfile, mt bool) Workload {
	cores := 1
	bwScale := 1.0
	class := CPUSingleThread
	name := p.name
	if mt {
		cores = 2
		bwScale = 1.85 // two copies share the LLC; slightly sublinear
		class = CPUMultiThread
		name += ".rate"
	}
	base := Phase{
		CoreFrac:     p.core,
		MemLatFrac:   p.lat,
		MemBWFrac:    p.bw,
		MemBW:        GB(p.memBW * bwScale),
		ActiveCores:  cores,
		CoreActivity: p.act,
	}
	if !p.spiky {
		return uniform(name, class, phaseDuration, base)
	}
	// Spiky benchmarks alternate a calm phase with a bandwidth spike:
	// during the spike the bandwidth-bound fraction grows at the
	// expense of the core-bound fraction.
	calm := base
	calm.Duration = phaseDuration
	calm.Residency = fullActive()
	spike := base
	spike.Duration = phaseDuration / 2
	spike.MemBW = GB(p.spikeBW * bwScale)
	shift := 0.25
	if shift > spike.CoreFrac {
		shift = spike.CoreFrac / 2
	}
	spike.CoreFrac -= shift
	spike.MemBWFrac += shift * 0.7
	spike.MemLatFrac += shift * 0.3
	spike.Residency = fullActive()
	return Workload{Name: name, Class: class, Phases: []Phase{calm, spike}}
}
