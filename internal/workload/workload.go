// Package workload defines the workload model and the workload suites
// used in the paper's evaluation: SPEC CPU2006 (§7.1), 3DMark graphics
// (§7.2), battery-life workloads (§7.3), a STREAM-like peak-bandwidth
// microbenchmark (§3, Fig. 4), and the synthetic sweep generator behind
// the >1600-run prediction study of Fig. 6.
//
// A workload is a sequence of phases. Each phase carries a CPI-stack
// decomposition — what fraction of its time is bound by the CPU cores,
// the graphics engines, main-memory latency, main-memory bandwidth, and
// IO — plus its absolute memory/IO bandwidth demands. Fractions are
// defined at the *reference conditions* below; the SoC model translates
// them into progress rates at any operating point. This demand-centric
// description is exactly the level at which SysScale's PMU algorithm
// observes workloads (through counters), which is what matters for
// reproducing the paper's results.
package workload

import (
	"fmt"

	"sysscale/internal/compute"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Reference conditions at which phase fractions are defined: the
// typical operating point of the evaluated 4.5W platform (cores near
// their budget-limited turbo, graphics near its budget point, memory at
// the high operating point).
const (
	RefCoreFreq vf.Hz = 2.6 * vf.GHz
	RefGfxFreq  vf.Hz = 0.9 * vf.GHz
)

// Class labels a workload with its evaluation category.
type Class int

// Workload classes, matching the paper's three evaluation sections and
// the Fig. 6 panels.
const (
	CPUSingleThread Class = iota
	CPUMultiThread
	Graphics
	Battery
	Micro
)

func (c Class) String() string {
	switch c {
	case CPUSingleThread:
		return "cpu-st"
	case CPUMultiThread:
		return "cpu-mt"
	case Graphics:
		return "graphics"
	case Battery:
		return "battery"
	case Micro:
		return "micro"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Phase is one execution phase of a workload.
type Phase struct {
	Duration sim.Time

	// CPI-stack fractions at the reference conditions. They must be
	// non-negative and sum to at most 1; the remainder is time bound by
	// neither compute nor the memory/IO subsystems (fixed-latency
	// uncore events, dependency stalls).
	CoreFrac   float64 // bound by CPU core throughput
	GfxFrac    float64 // bound by graphics engine throughput
	MemLatFrac float64 // bound by main-memory latency
	MemBWFrac  float64 // bound by main-memory bandwidth
	IOFrac     float64 // bound by IO subsystem

	// Demands at reference progress (scale with actual progress rate).
	MemBW float64 // bytes/s of main-memory traffic
	IOBW  float64 // bytes/s of IO traffic

	// Execution shape.
	ActiveCores  int     // CPU cores busy during C0
	CoreActivity float64 // core switching activity in [0,1]
	GfxActivity  float64 // graphics switching activity in [0,1]

	// Package C-state residency during the phase (battery workloads
	// idle most of the time; throughput workloads are all-C0).
	Residency compute.Residency
}

// OtherFrac returns the CPI fraction bound by none of the modeled
// resources.
func (p Phase) OtherFrac() float64 {
	o := 1 - p.CoreFrac - p.GfxFrac - p.MemLatFrac - p.MemBWFrac - p.IOFrac
	if o < 0 {
		return 0
	}
	return o
}

// Validate checks the phase for model consistency.
func (p Phase) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("workload: non-positive phase duration")
	}
	fr := []float64{p.CoreFrac, p.GfxFrac, p.MemLatFrac, p.MemBWFrac, p.IOFrac}
	sum := 0.0
	for _, f := range fr {
		if f < 0 {
			return fmt.Errorf("workload: negative CPI fraction")
		}
		sum += f
	}
	if sum > 1.0001 {
		return fmt.Errorf("workload: CPI fractions sum to %.4f > 1", sum)
	}
	if p.MemBW < 0 || p.IOBW < 0 {
		return fmt.Errorf("workload: negative bandwidth demand")
	}
	if p.ActiveCores < 0 {
		return fmt.Errorf("workload: negative core count")
	}
	if p.CoreActivity < 0 || p.CoreActivity > 1 || p.GfxActivity < 0 || p.GfxActivity > 1 {
		return fmt.Errorf("workload: activity outside [0,1]")
	}
	if err := p.Residency.Validate(); err != nil {
		return err
	}
	return nil
}

// MemoryBound returns the combined memory-bound fraction.
func (p Phase) MemoryBound() float64 { return p.MemLatFrac + p.MemBWFrac }

// Workload is a named sequence of phases.
type Workload struct {
	Name   string
	Class  Class
	Phases []Phase
}

// Validate checks the workload and all phases.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", w.Name)
	}
	for i, p := range w.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %s phase %d: %w", w.Name, i, err)
		}
	}
	return nil
}

// TotalDuration returns the sum of phase durations (one iteration).
func (w Workload) TotalDuration() sim.Time {
	var d sim.Time
	for _, p := range w.Phases {
		d += p.Duration
	}
	return d
}

// PhaseAt returns the phase active at simulated time t. Workloads loop:
// time wraps modulo the total duration, matching how benchmarks are
// run repeatedly during power measurements.
func (w Workload) PhaseAt(t sim.Time) Phase {
	total := w.TotalDuration()
	if total <= 0 {
		return w.Phases[0]
	}
	t %= total
	for _, p := range w.Phases {
		if t < p.Duration {
			return p
		}
		t -= p.Duration
	}
	return w.Phases[len(w.Phases)-1]
}

// AvgMemBW returns the duration-weighted mean memory bandwidth demand.
func (w Workload) AvgMemBW() float64 {
	var sum float64
	var tot sim.Time
	for _, p := range w.Phases {
		sum += p.MemBW * p.Duration.Seconds()
		tot += p.Duration
	}
	if tot == 0 {
		return 0
	}
	return sum / tot.Seconds()
}

// AvgCoreFrac returns the duration-weighted mean core-bound fraction —
// the first-order "performance scalability" of the workload with CPU
// frequency (§7.1, footnote 8).
func (w Workload) AvgCoreFrac() float64 {
	var sum float64
	var tot sim.Time
	for _, p := range w.Phases {
		sum += p.CoreFrac * p.Duration.Seconds()
		tot += p.Duration
	}
	if tot == 0 {
		return 0
	}
	return sum / tot.Seconds()
}

// BWOverTime samples the reference memory-bandwidth demand at the given
// interval over one loop iteration — the data behind Figs. 2(c)/3(a).
func (w Workload) BWOverTime(step sim.Time) []float64 {
	var out []float64
	total := w.TotalDuration()
	for t := sim.Time(0); t < total; t += step {
		out = append(out, w.PhaseAt(t).MemBW)
	}
	return out
}

// uniform builds a single-phase, fully-active workload; a helper for
// the suite constructors.
func uniform(name string, class Class, d sim.Time, p Phase) Workload {
	p.Duration = d
	if p.Residency == (compute.Residency{}) {
		p.Residency = compute.FullyActive()
	}
	return Workload{Name: name, Class: class, Phases: []Phase{p}}
}

// GB is a bandwidth helper: n gigabytes/second in bytes/second.
func GB(n float64) float64 { return n * 1e9 }

// fullActive is shorthand for the all-C0 residency.
func fullActive() compute.Residency { return compute.FullyActive() }
