package workload

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/sim"
)

func TestAllSuitesValidate(t *testing.T) {
	var all []Workload
	all = append(all, SPECSuite()...)
	all = append(all, SPECSuiteMT()...)
	all = append(all, GraphicsSuite()...)
	all = append(all, BatterySuite()...)
	all = append(all, Stream())
	for _, w := range all {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestSPECSuiteComplete(t *testing.T) {
	names := SPECNames()
	if len(names) != 29 {
		t.Fatalf("SPEC CPU2006 has 29 benchmarks, table has %d", len(names))
	}
	for _, n := range names {
		w, err := SPEC(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Class != CPUSingleThread {
			t.Fatalf("%s: wrong class %v", n, w.Class)
		}
	}
	if _, err := SPEC("999.nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSPECCharacterization(t *testing.T) {
	// The paper's named behaviours must hold in the table.
	get := func(n string) Workload {
		w, err := SPEC(n)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	// gamess/namd/povray: highly scalable (core bound).
	for _, n := range []string{"416.gamess", "444.namd", "453.povray"} {
		if f := get(n).AvgCoreFrac(); f < 0.9 {
			t.Errorf("%s core fraction %v, want >0.9", n, f)
		}
	}
	// bwaves/milc/lbm: heavily memory bound.
	for _, n := range []string{"410.bwaves", "433.milc", "470.lbm"} {
		w := get(n)
		if f := w.AvgCoreFrac(); f > 0.3 {
			t.Errorf("%s core fraction %v, want <0.3", n, f)
		}
	}
	// cactusADM: latency dominated (Fig. 2b).
	cactus := get("436.cactusADM")
	if cactus.Phases[0].MemLatFrac <= cactus.Phases[0].MemBWFrac {
		t.Error("cactusADM must be latency dominated")
	}
	// astar: phased between ~1GB/s and much higher (Fig. 3a).
	astar := get("473.astar")
	if len(astar.Phases) < 2 {
		t.Fatal("astar must be phased")
	}
	lo, hi := astar.Phases[0].MemBW, astar.Phases[1].MemBW
	if hi < 5*lo {
		t.Errorf("astar phases not contrasting: %v vs %v", lo, hi)
	}
}

func TestSPECMTScalesDemand(t *testing.T) {
	st := SPECSuite()
	mt := SPECSuiteMT()
	for i := range st {
		if mt[i].Class != CPUMultiThread {
			t.Fatal("MT class wrong")
		}
		if mt[i].AvgMemBW() <= st[i].AvgMemBW() {
			t.Fatalf("%s: MT demand not above ST", mt[i].Name)
		}
		if mt[i].Phases[0].ActiveCores != 2 {
			t.Fatal("MT must use both cores")
		}
	}
}

func TestPhaseAtLoops(t *testing.T) {
	w, _ := SPEC("473.astar") // 3s calm + 1.5s spike
	total := w.TotalDuration()
	if total != 4500*sim.Millisecond {
		t.Fatalf("astar loop = %v", total)
	}
	if w.PhaseAt(0).MemBW != w.Phases[0].MemBW {
		t.Fatal("PhaseAt(0) wrong")
	}
	spikeT := 3100 * sim.Millisecond
	if w.PhaseAt(spikeT).MemBW != w.Phases[1].MemBW {
		t.Fatal("PhaseAt(spike) wrong")
	}
	// Wraps modulo total.
	if w.PhaseAt(total+spikeT).MemBW != w.Phases[1].MemBW {
		t.Fatal("PhaseAt does not wrap")
	}
}

func TestBWOverTime(t *testing.T) {
	w, _ := SPEC("470.lbm")
	series := w.BWOverTime(500 * sim.Millisecond)
	if len(series) != 6 { // 3s phase / 0.5s
		t.Fatalf("series length = %d", len(series))
	}
	for _, s := range series {
		if s != w.Phases[0].MemBW {
			t.Fatal("constant workload series not constant")
		}
	}
}

func TestOtherFrac(t *testing.T) {
	p := Phase{CoreFrac: 0.5, MemLatFrac: 0.2, MemBWFrac: 0.1}
	if math.Abs(p.OtherFrac()-0.2) > 1e-12 {
		t.Fatalf("OtherFrac = %v", p.OtherFrac())
	}
	if math.Abs(p.MemoryBound()-0.3) > 1e-12 {
		t.Fatalf("MemoryBound = %v", p.MemoryBound())
	}
	over := Phase{CoreFrac: 1.2}
	if over.OtherFrac() != 0 {
		t.Fatal("OtherFrac must clamp at zero")
	}
}

func TestPhaseValidation(t *testing.T) {
	base := Phase{Duration: sim.Second, CoreFrac: 0.5, ActiveCores: 1, Residency: fullActive()}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Phase{
		{Duration: 0, CoreFrac: 0.5},
		{Duration: sim.Second, CoreFrac: -0.1},
		{Duration: sim.Second, CoreFrac: 0.7, MemLatFrac: 0.5},
		{Duration: sim.Second, MemBW: -1},
		{Duration: sim.Second, CoreActivity: 1.5},
		{Duration: sim.Second, ActiveCores: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid phase accepted", i)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if err := (Workload{}).Validate(); err == nil {
		t.Fatal("empty workload accepted")
	}
	if err := (Workload{Name: "x"}).Validate(); err == nil {
		t.Fatal("phaseless workload accepted")
	}
}

func TestSyntheticAlwaysValid(t *testing.T) {
	// Property: every generated workload passes validation, for any
	// seed and class.
	err := quick.Check(func(seed uint64, classRaw uint8) bool {
		class := Class(int(classRaw) % 3)
		ws := Synthetic(SyntheticSpec{Class: class, Count: 10, Seed: seed})
		if len(ws) != 10 {
			return false
		}
		for _, w := range ws {
			if w.Validate() != nil {
				return false
			}
			if w.Class != class {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticSpec{Class: CPUSingleThread, Count: 5, Seed: 9})
	b := Synthetic(SyntheticSpec{Class: CPUSingleThread, Count: 5, Seed: 9})
	for i := range a {
		if a[i].Phases[0] != b[i].Phases[0] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestStreamSaturates(t *testing.T) {
	s := Stream()
	if s.Phases[0].MemBW < 25.6e9 {
		t.Fatal("STREAM must demand beyond peak bandwidth")
	}
	if s.Phases[0].MemBWFrac < 0.8 {
		t.Fatal("STREAM must be bandwidth bound")
	}
}

func TestBatteryResidencies(t *testing.T) {
	// §7.3: active residency between 10% and 40%; video playback at
	// C0 10%, C8-dominated.
	for _, w := range BatterySuite() {
		for _, ph := range w.Phases {
			c0 := ph.Residency.C0
			if c0 < 0.09 || c0 > 0.41 {
				t.Errorf("%s: C0 residency %v outside 10-40%%", w.Name, c0)
			}
		}
	}
	vp := VideoPlayback()
	if vp.Phases[0].Residency.C8 < 0.8 {
		t.Fatal("video playback must be C8 dominated")
	}
}

func TestGraphicsScenesVary(t *testing.T) {
	for _, w := range GraphicsSuite() {
		if len(w.Phases) < 3 {
			t.Fatalf("%s: too few scenes", w.Name)
		}
		min, max := math.Inf(1), 0.0
		for _, ph := range w.Phases {
			if ph.GfxFrac < 0.4 {
				t.Errorf("%s: scene not graphics bound", w.Name)
			}
			min = math.Min(min, ph.MemBW)
			max = math.Max(max, ph.MemBW)
		}
		if max < 1.5*min {
			t.Errorf("%s: scene bandwidth does not vary (Fig. 3a)", w.Name)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if CPUSingleThread.String() != "cpu-st" || Graphics.String() != "graphics" || Battery.String() != "battery" {
		t.Fatal("class strings wrong")
	}
}

func TestProductivitySuite(t *testing.T) {
	suite := ProductivitySuite()
	if len(suite) != 3 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for _, w := range suite {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Class != Battery {
			t.Errorf("%s: productivity workloads are interactive (battery class)", w.Name)
		}
		for _, ph := range w.Phases {
			if ph.ActiveCores != 2 {
				t.Errorf("%s: office workloads use both cores", w.Name)
			}
			if ph.Residency.C0 <= 0 || ph.Residency.C0 > 0.5 {
				t.Errorf("%s: implausible active residency %v", w.Name, ph.Residency.C0)
			}
		}
	}
}
