package workload

import (
	"sysscale/internal/compute"
	"sysscale/internal/sim"
)

// The battery-life workloads of §7.3: web browsing, light gaming,
// video conferencing and video playback, run with a single HD laptop
// panel. Two properties distinguish them from throughput workloads:
// fixed performance demands (a 60fps video needs each frame inside
// 16.67ms — faster buys nothing) and long idle phases. Measured active
// (C0) residencies are 10-40%; DRAM is active only in C0 and C2, so
// SysScale's memory DVFS can only help during those states. Video
// playback's documented residency is C0 10% / C2 5% / C8 85%.

// WebBrowsing models scroll/render bursts between long idles. Its
// render bursts are short and cache-friendly, so it has the smallest
// DRAM-active share of the set and the smallest SysScale saving (§7.3:
// 6.4%).
func WebBrowsing() Workload {
	return Workload{Name: "web-browsing", Class: Battery, Phases: []Phase{
		{
			Duration: 1 * sim.Second,
			CoreFrac: 0.50, GfxFrac: 0.05, MemLatFrac: 0.18, MemBWFrac: 0.06, IOFrac: 0.08,
			MemBW: GB(1.2), IOBW: GB(0.2),
			ActiveCores: 2, CoreActivity: 0.70, GfxActivity: 0.15,
			Residency: compute.Residency{C0: 0.22, C2: 0.02, C6: 0.30, C8: 0.46},
		},
		{
			Duration: 2 * sim.Second,
			CoreFrac: 0.40, GfxFrac: 0.05, MemLatFrac: 0.14, MemBWFrac: 0.04, IOFrac: 0.10,
			MemBW: GB(0.9), IOBW: GB(0.15),
			ActiveCores: 2, CoreActivity: 0.60, GfxActivity: 0.12,
			Residency: compute.Residency{C0: 0.12, C2: 0.02, C6: 0.36, C8: 0.50},
		},
	}}
}

// LightGaming models a casual game: steady moderate GPU work at a
// capped frame rate, the highest active residency of the set.
func LightGaming() Workload {
	return uniform("light-gaming", Battery, 2*sim.Second, Phase{
		CoreFrac: 0.20, GfxFrac: 0.40, MemLatFrac: 0.10, MemBWFrac: 0.10, IOFrac: 0.05,
		MemBW: GB(3.2), IOBW: GB(0.3),
		ActiveCores: 1, CoreActivity: 0.35, GfxActivity: 0.55,
		Residency: compute.Residency{C0: 0.40, C2: 0.10, C6: 0.22, C8: 0.28},
	})
}

// VideoConferencing models camera capture + encode + decode: the ISP
// stream keeps the IO domain busy and the camera CSR raises the static
// demand floor.
func VideoConferencing() Workload {
	return uniform("video-conf", Battery, 2*sim.Second, Phase{
		CoreFrac: 0.32, GfxFrac: 0.12, MemLatFrac: 0.12, MemBWFrac: 0.07, IOFrac: 0.16,
		MemBW: GB(1.9), IOBW: GB(1.0),
		ActiveCores: 2, CoreActivity: 0.55,
		GfxActivity: 0.25,
		Residency:   compute.Residency{C0: 0.30, C2: 0.03, C6: 0.34, C8: 0.33},
	})
}

// VideoPlayback models 60fps playback through the fixed-function
// decoder: tiny compute bursts per frame, then deep idle; the §7.3
// residencies (C0 10%, C2 5%, C8 85%). The frame traffic (decode
// reference frames + composition) makes its DRAM-active power almost
// entirely memory-subsystem power, which is why it shows the largest
// relative SysScale saving (10.7%).
func VideoPlayback() Workload {
	return uniform("video-playback", Battery, 2*sim.Second, Phase{
		CoreFrac: 0.16, GfxFrac: 0.18, MemLatFrac: 0.12, MemBWFrac: 0.12, IOFrac: 0.14,
		MemBW: GB(5.5), IOBW: GB(2.2),
		ActiveCores: 1, CoreActivity: 0.28, GfxActivity: 0.30,
		Residency: compute.Residency{C0: 0.10, C2: 0.08, C8: 0.82},
	})
}

// BatterySuite returns the four battery-life workloads of Fig. 9.
func BatterySuite() []Workload {
	return []Workload{WebBrowsing(), LightGaming(), VideoConferencing(), VideoPlayback()}
}
