package workload

import (
	"fmt"

	"sysscale/internal/sim"
)

// Stream returns the STREAM-like microbenchmark of §3 and Fig. 4: a
// loop engineered to exercise the peak memory bandwidth of DRAM, which
// isolates the memory interface from core effects. Nearly all its time
// is bandwidth-bound and its demand exceeds any operating point's
// usable bandwidth, so achieved performance tracks the interface
// directly — including MRC-detuning losses.
func Stream() Workload {
	return uniform("stream-peak-bw", Micro, sim.Second, Phase{
		CoreFrac:    0.06,
		MemLatFrac:  0.04,
		MemBWFrac:   0.88,
		MemBW:       GB(30), // beyond peak: always saturating
		ActiveCores: 2, CoreActivity: 0.50,
	})
}

// Synthetic sweep generation for the Fig. 6 prediction study. The paper
// runs >1600 workloads spanning SPEC06, SYSmark, MobileMark and 3DMark
// (footnote 6); those internal trace sets are not available, so we
// generate parameterized workloads per class whose bottleneck structure
// sweeps the same space: from fully core/gfx-bound to fully memory
// bound, with demands from near zero to saturation.

// SyntheticSpec controls the sweep generator.
type SyntheticSpec struct {
	Class Class
	Count int
	Seed  uint64
}

// Synthetic generates spec.Count workloads of spec.Class. Workloads are
// single phase (the Fig. 6 study measures steady-state degradation per
// trace) with fractions and demands drawn from seeded distributions.
func Synthetic(spec SyntheticSpec) []Workload {
	rng := newSweepRNG(spec.Seed)
	out := make([]Workload, 0, spec.Count)
	for i := 0; i < spec.Count; i++ {
		name := fmt.Sprintf("syn-%s-%04d", spec.Class, i)
		var p Phase
		switch spec.Class {
		case Graphics:
			gfx := rng.rangef(0.30, 0.82)
			corePart := rng.rangef(0.03, 0.12)
			mem := rng.rangef(0, 1-gfx-corePart-0.03)
			lat := mem * rng.rangef(0.26, 0.34)
			bw := mem - lat
			p = Phase{
				GfxFrac: gfx, CoreFrac: corePart,
				MemLatFrac: lat, MemBWFrac: bw,
				MemBW:       GB(rng.rangef(1, 15)),
				ActiveCores: 1, CoreActivity: 0.35, GfxActivity: rng.rangef(0.5, 0.95),
			}
		case CPUMultiThread:
			core := rng.rangef(0.10, 0.92)
			mem := (1 - core) * rng.rangef(0.4, 0.95)
			lat := mem * rng.rangef(0.25, 0.75)
			p = Phase{
				CoreFrac: core, MemLatFrac: lat, MemBWFrac: mem - lat,
				MemBW:       GB(rng.rangef(0.5, 14) * 1.8),
				ActiveCores: 2, CoreActivity: rng.rangef(0.4, 0.9),
			}
		default: // CPUSingleThread and any other class
			core := rng.rangef(0.10, 0.95)
			mem := (1 - core) * rng.rangef(0.4, 0.95)
			lat := mem * rng.rangef(0.25, 0.75)
			p = Phase{
				CoreFrac: core, MemLatFrac: lat, MemBWFrac: mem - lat,
				MemBW:       GB(rng.rangef(0.3, 13)),
				ActiveCores: 1, CoreActivity: rng.rangef(0.4, 0.9),
			}
		}
		out = append(out, uniform(name, spec.Class, sim.Second, p))
	}
	return out
}

// sweepRNG is a tiny local SplitMix64 so this package does not import
// internal/sim's RNG (keeping workload usable standalone) while staying
// deterministic.
type sweepRNG struct{ s uint64 }

func newSweepRNG(seed uint64) *sweepRNG { return &sweepRNG{s: seed} }

func (r *sweepRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *sweepRNG) rangef(lo, hi float64) float64 {
	f := float64(r.next()>>11) / float64(1<<53)
	return lo + (hi-lo)*f
}
