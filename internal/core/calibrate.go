package core

import (
	"fmt"

	"sysscale/internal/perfcounters"
	"sysscale/internal/stats"
)

// CalibrationRun is one observation of the offline calibration phase
// (§4.2): a workload's counter values at the high operating point and
// the performance degradation it actually suffered at the low point.
type CalibrationRun struct {
	Counters    perfcounters.Sample
	Degradation float64 // 1 - perfLow/perfHigh, in [0, 1)
}

// CalibrateThresholds implements the paper's threshold selection: mark
// all runs whose degradation is below the bound, and for each counter
// set Threshold = µ + σ over that population ([81] in the paper). The
// static bandwidth threshold is supplied by the platform description
// (it is a property of the operating point's usable bandwidth, not of
// the calibration set).
func CalibrateThresholds(runs []CalibrationRun, bound, staticBWThr float64) (Thresholds, error) {
	if len(runs) == 0 {
		return Thresholds{}, fmt.Errorf("core: no calibration runs")
	}
	if bound <= 0 || bound >= 1 {
		return Thresholds{}, fmt.Errorf("core: degradation bound %.3f outside (0,1)", bound)
	}
	var safe []CalibrationRun
	for _, r := range runs {
		if r.Degradation < bound {
			safe = append(safe, r)
		}
	}
	if len(safe) == 0 {
		return Thresholds{}, fmt.Errorf("core: no run below the %.1f%% bound; cannot calibrate", bound*100)
	}
	muSigma := func(id perfcounters.ID) float64 {
		vals := make([]float64, len(safe))
		for i, r := range safe {
			vals[i] = r.Counters.Get(id)
		}
		m, s := stats.MeanStd(vals)
		return m + s
	}
	t := Thresholds{
		GfxMisses:   muSigma(perfcounters.GfxLLCMisses),
		OccTracer:   muSigma(perfcounters.LLCOccupancyTracer),
		LLCStalls:   muSigma(perfcounters.LLCStalls),
		IORPQ:       muSigma(perfcounters.IORPQ),
		StaticBWThr: staticBWThr,
		DegradBound: bound,
	}
	return t, t.Validate()
}

// EnforceNoFalsePositives tightens thresholds until no calibration run
// above the bound would be sent to the low point. The paper reports
// the shipped algorithm has zero false positives (§4.2: "there are no
// predictions where the algorithm decides to move the SoC to a lower
// DVFS operating point while the actual performance degradation is
// more than the bound"); µ+σ alone does not guarantee that on every
// population, so the production firmware applies exactly this kind of
// guard pass over the calibration set.
//
// For each unsafe run that no condition catches, the pass lowers the
// threshold of the counter whose reduction misclassifies the fewest
// safe runs (ties broken by the largest relative excess) — a greedy
// minimum-collateral cover of the unsafe population.
func EnforceNoFalsePositives(t Thresholds, runs []CalibrationRun) Thresholds {
	ids := perfcounters.SysScaleCounters()
	for _, r := range runs {
		if r.Degradation < t.DegradBound {
			continue
		}
		if Decide(t, StaticDemand{}, r.Counters).High {
			continue
		}
		// Candidate: lower counter id's threshold to just below this
		// run's value. Collateral: safe runs that currently pass all
		// conditions but would trip the lowered one.
		best := ids[0]
		bestCollateral := int(^uint(0) >> 1)
		bestRatio := -1.0
		for _, id := range ids {
			newThr := r.Counters.Get(id) * 0.999
			if newThr <= 0 {
				continue
			}
			collateral := 0
			for _, s := range runs {
				if s.Degradation >= t.DegradBound {
					continue
				}
				if !Decide(t, StaticDemand{}, s.Counters).High && s.Counters.Get(id) > newThr {
					collateral++
				}
			}
			ratio := 0.0
			if thr := t.counter(id); thr > 0 {
				ratio = r.Counters.Get(id) / thr
			}
			if collateral < bestCollateral || (collateral == bestCollateral && ratio > bestRatio) {
				best = id
				bestCollateral = collateral
				bestRatio = ratio
			}
		}
		t.setCounter(best, r.Counters.Get(best)*0.999)
	}
	return t
}

func (t Thresholds) counter(id perfcounters.ID) float64 {
	switch id {
	case perfcounters.GfxLLCMisses:
		return t.GfxMisses
	case perfcounters.LLCOccupancyTracer:
		return t.OccTracer
	case perfcounters.LLCStalls:
		return t.LLCStalls
	case perfcounters.IORPQ:
		return t.IORPQ
	}
	return 0
}

func (t *Thresholds) setCounter(id perfcounters.ID, v float64) {
	switch id {
	case perfcounters.GfxLLCMisses:
		t.GfxMisses = v
	case perfcounters.LLCOccupancyTracer:
		t.OccTracer = v
	case perfcounters.LLCStalls:
		t.LLCStalls = v
	case perfcounters.IORPQ:
		t.IORPQ = v
	}
}

// FalsePositiveCount returns how many runs in the set would be sent to
// the low operating point despite a true degradation at or above the
// bound. Used by tests and the Fig. 6 experiment to verify the
// zero-false-positive property.
func FalsePositiveCount(t Thresholds, runs []CalibrationRun) int {
	n := 0
	for _, r := range runs {
		if r.Degradation >= t.DegradBound {
			if !Decide(t, StaticDemand{}, r.Counters).High {
				n++
			}
		}
	}
	return n
}

// Accuracy returns the fraction of runs the threshold rule classifies
// correctly: high-point runs are those with degradation >= bound.
func Accuracy(t Thresholds, runs []CalibrationRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	ok := 0
	for _, r := range runs {
		wantHigh := r.Degradation >= t.DegradBound
		gotHigh := Decide(t, StaticDemand{}, r.Counters).High
		if wantHigh == gotHigh {
			ok++
		}
	}
	return float64(ok) / float64(len(runs))
}
