package core

import (
	"fmt"

	"sysscale/internal/perfcounters"
	"sysscale/internal/stats"
)

// Predictor is the dynamic-demand performance predictor behind Fig. 6:
// a linear model over the four SysScale counters that predicts the
// normalized performance a workload would retain after reducing the
// DRAM frequency from one bin to a lower one. One model is trained per
// (high bin, low bin) frequency pair, exactly as the paper evaluates
// three pairs (1.6→0.8, 1.6→1.06, 2.13→1.06 GHz).
type Predictor struct {
	model   stats.LinearModel
	trained bool
}

// features extracts the model inputs from a counter sample.
func features(c perfcounters.Sample) []float64 {
	return []float64{
		c.Get(perfcounters.GfxLLCMisses),
		c.Get(perfcounters.LLCOccupancyTracer),
		c.Get(perfcounters.LLCStalls),
		c.Get(perfcounters.IORPQ),
	}
}

// TrainingSample pairs the counters observed at the high bin with the
// measured normalized performance at the low bin (1.0 = no loss).
type TrainingSample struct {
	Counters perfcounters.Sample
	NormPerf float64
}

// Train fits the predictor on calibration samples.
func (p *Predictor) Train(samples []TrainingSample) error {
	if len(samples) < 8 {
		return fmt.Errorf("core: need at least 8 training samples, have %d", len(samples))
	}
	rows := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = features(s.Counters)
		ys[i] = s.NormPerf
	}
	m, err := stats.FitLinear(rows, ys)
	if err != nil {
		return fmt.Errorf("core: predictor fit: %w", err)
	}
	p.model = m
	p.trained = true
	return nil
}

// Trained reports whether Train has succeeded.
func (p *Predictor) Trained() bool { return p.trained }

// Predict returns the predicted normalized performance (clamped to
// [0, 1]) for a workload with the given high-bin counters.
func (p *Predictor) Predict(c perfcounters.Sample) float64 {
	if !p.trained {
		return 1
	}
	y := p.model.Predict(features(c))
	if y > 1 {
		y = 1
	}
	if y < 0 {
		y = 0
	}
	return y
}

// Model exposes the fitted coefficients (for reporting).
func (p *Predictor) Model() stats.LinearModel { return p.model }

// EvaluatePrediction scores the predictor on a labeled set, returning
// the Pearson correlation between actual and predicted normalized
// performance (the per-panel statistic of Fig. 6).
func (p *Predictor) EvaluatePrediction(samples []TrainingSample) float64 {
	actual := make([]float64, len(samples))
	pred := make([]float64, len(samples))
	for i, s := range samples {
		actual[i] = s.NormPerf
		pred[i] = p.Predict(s.Counters)
	}
	return stats.Correlation(actual, pred)
}
