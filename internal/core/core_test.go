package core

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/ioengine"
	"sysscale/internal/perfcounters"
	"sysscale/internal/sim"
)

func testThresholds() Thresholds {
	return Thresholds{
		GfxMisses:   100e6,
		OccTracer:   5,
		LLCStalls:   15,
		IORPQ:       3,
		StaticBWThr: 6e9,
		DegradBound: 0.03,
	}
}

func sample(gfx, occ, stalls, iorpq float64) perfcounters.Sample {
	var s perfcounters.Sample
	s[perfcounters.GfxLLCMisses] = gfx
	s[perfcounters.LLCOccupancyTracer] = occ
	s[perfcounters.LLCStalls] = stalls
	s[perfcounters.IORPQ] = iorpq
	return s
}

func TestDecideFiveConditions(t *testing.T) {
	thr := testThresholds()
	// All quiet: low point.
	d := Decide(thr, StaticDemand{}, sample(0, 0, 0, 0))
	if d.High || len(d.Reasons) != 0 {
		t.Fatal("quiet system sent high")
	}
	// Each condition individually (paper's five conditions, §4.3).
	cases := []struct {
		static StaticDemand
		s      perfcounters.Sample
		want   Condition
	}{
		{StaticDemand{DisplayBW: 7e9}, sample(0, 0, 0, 0), CondStaticBW},
		{StaticDemand{}, sample(150e6, 0, 0, 0), CondGfxBandwidth},
		{StaticDemand{}, sample(0, 6, 0, 0), CondCoreBandwidth},
		{StaticDemand{}, sample(0, 0, 20, 0), CondMemLatency},
		{StaticDemand{}, sample(0, 0, 0, 4), CondIOLatency},
	}
	for _, c := range cases {
		d := Decide(thr, c.static, c.s)
		if !d.High || len(d.Reasons) != 1 || d.Reasons[0] != c.want {
			t.Errorf("condition %v: got %+v", c.want, d)
		}
	}
	// Multiple conditions accumulate.
	d = Decide(thr, StaticDemand{DisplayBW: 7e9}, sample(150e6, 6, 20, 4))
	if len(d.Reasons) != 5 {
		t.Fatalf("want all 5 reasons, got %d", len(d.Reasons))
	}
}

func TestConditionStrings(t *testing.T) {
	for c := CondStaticBW; c <= CondIOLatency; c++ {
		if c.String() == "" {
			t.Fatal("empty condition string")
		}
	}
}

func TestStaticEstimator(t *testing.T) {
	var est StaticEstimator
	csr := ioengine.SingleHDLaptop()
	d := est.Estimate(csr)
	if d.DisplayBW != csr.DisplayBandwidth() || d.CameraBW != 0 {
		t.Fatal("estimate does not match CSR")
	}
	csr.Camera = ioengine.Camera1080p
	d = est.Estimate(csr)
	if d.CameraBW != ioengine.Camera1080p.Bandwidth() {
		t.Fatal("camera demand missing")
	}
	if d.Total() != d.DisplayBW+d.CameraBW {
		t.Fatal("total wrong")
	}
}

func TestThresholdValidate(t *testing.T) {
	if err := testThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testThresholds()
	bad.DegradBound = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bound accepted")
	}
	bad = testThresholds()
	bad.OccTracer = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative threshold accepted")
	}
	bad = testThresholds()
	bad.StaticBWThr = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero static threshold accepted")
	}
}

// makeRuns builds a calibration population where degradation is a
// monotone function of the occupancy counter plus noise.
func makeRuns(n int, seed uint64) []CalibrationRun {
	rng := sim.NewRNG(seed)
	runs := make([]CalibrationRun, n)
	for i := range runs {
		occ := rng.Range(0, 12)
		degr := occ/12*0.10 + rng.Range(0, 0.005)
		runs[i] = CalibrationRun{
			Counters:    sample(0, occ, occ*2.2, rng.Range(0, 2)),
			Degradation: degr,
		}
	}
	return runs
}

func TestCalibrateThresholdsMuSigma(t *testing.T) {
	runs := makeRuns(200, 3)
	thr, err := CalibrateThresholds(runs, 0.03, 6e9)
	if err != nil {
		t.Fatal(err)
	}
	// µ+σ over the below-bound population (§4.2 / [81]).
	var safeOcc []float64
	for _, r := range runs {
		if r.Degradation < 0.03 {
			safeOcc = append(safeOcc, r.Counters.Get(perfcounters.LLCOccupancyTracer))
		}
	}
	var mean float64
	for _, v := range safeOcc {
		mean += v
	}
	mean /= float64(len(safeOcc))
	var varr float64
	for _, v := range safeOcc {
		varr += (v - mean) * (v - mean)
	}
	sigma := math.Sqrt(varr / float64(len(safeOcc)))
	if math.Abs(thr.OccTracer-(mean+sigma)) > 1e-9 {
		t.Fatalf("threshold = %v, want mu+sigma = %v", thr.OccTracer, mean+sigma)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := CalibrateThresholds(nil, 0.03, 6e9); err == nil {
		t.Fatal("empty calibration accepted")
	}
	if _, err := CalibrateThresholds(makeRuns(10, 1), 2.0, 6e9); err == nil {
		t.Fatal("bound >= 1 accepted")
	}
	// All runs above the bound: cannot calibrate.
	runs := []CalibrationRun{{Degradation: 0.5}, {Degradation: 0.6}}
	if _, err := CalibrateThresholds(runs, 0.03, 6e9); err == nil {
		t.Fatal("unsafe-only population accepted")
	}
}

func TestEnforceNoFalsePositives(t *testing.T) {
	runs := makeRuns(300, 7)
	thr, err := CalibrateThresholds(runs, 0.03, 6e9)
	if err != nil {
		t.Fatal(err)
	}
	thr = EnforceNoFalsePositives(thr, runs)
	if fp := FalsePositiveCount(thr, runs); fp != 0 {
		t.Fatalf("false positives remain: %d (paper: zero, §4.2)", fp)
	}
}

func TestNoFalsePositivesProperty(t *testing.T) {
	// Property: for any seeded population, the guard pass leaves zero
	// false positives on that population.
	err := quick.Check(func(seed uint64) bool {
		runs := makeRuns(120, seed)
		thr, err := CalibrateThresholds(runs, 0.03, 6e9)
		if err != nil {
			return true // degenerate population
		}
		thr = EnforceNoFalsePositives(thr, runs)
		return FalsePositiveCount(thr, runs) == 0
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	runs := makeRuns(300, 11)
	thr, _ := CalibrateThresholds(runs, 0.03, 6e9)
	thr = EnforceNoFalsePositives(thr, runs)
	acc := Accuracy(thr, runs)
	if acc < 0.85 {
		t.Fatalf("accuracy %.2f too low on a cleanly separable population", acc)
	}
	if Accuracy(thr, nil) != 0 {
		t.Fatal("empty accuracy not zero")
	}
}

func TestPredictor(t *testing.T) {
	rng := sim.NewRNG(5)
	var train []TrainingSample
	for i := 0; i < 120; i++ {
		occ := rng.Range(0, 12)
		stalls := occ * 2.2
		norm := 1 - occ/12*0.12
		train = append(train, TrainingSample{
			Counters: sample(0, occ, stalls, 0),
			NormPerf: norm,
		})
	}
	var p Predictor
	if p.Trained() {
		t.Fatal("untrained predictor claims trained")
	}
	if p.Predict(sample(0, 6, 13, 0)) != 1 {
		t.Fatal("untrained predictor must return 1")
	}
	if err := p.Train(train); err != nil {
		t.Fatal(err)
	}
	if !p.Trained() {
		t.Fatal("trained predictor not marked")
	}
	// Prediction tracks the generating function.
	got := p.Predict(sample(0, 6, 13.2, 0))
	want := 1 - 6.0/12*0.12
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("predict = %v, want ~%v", got, want)
	}
	// Clamped to [0, 1].
	if p.Predict(sample(0, 1e6, 1e6, 1e6)) < 0 {
		t.Fatal("prediction below zero")
	}
	corr := p.EvaluatePrediction(train)
	if corr < 0.99 {
		t.Fatalf("self-correlation = %v", corr)
	}
}

func TestPredictorNeedsSamples(t *testing.T) {
	var p Predictor
	if err := p.Train(make([]TrainingSample, 3)); err == nil {
		t.Fatal("tiny training set accepted")
	}
}
