// Package core implements SysScale's primary contribution: the demand
// prediction mechanism and the holistic power-management decision
// algorithm (§4.2-4.3 of the paper).
//
// Prediction is split the way the paper splits it:
//
//   - Static demand derives deterministically from peripheral
//     configuration registers (number of active displays, resolution,
//     refresh rate, camera streams). A firmware table maps every
//     configuration to its bandwidth demand.
//   - Dynamic demand derives from four performance counters
//     (GFX_LLC_MISSES, LLC_Occupancy_Tracer, LLC_STALLS, IO_RPQ),
//     compared against thresholds calibrated offline as µ+σ of the
//     counter values observed on runs whose degradation stayed below
//     the bound.
//
// The decision algorithm moves the SoC to the high operating point if
// any of the five conditions of §4.3 holds, and to the low point
// otherwise. By construction (thresholds chosen from the safe
// population) the algorithm has no false positives: it never picks the
// low point when the true degradation exceeds the bound — a property
// the Fig. 6 experiment checks explicitly.
package core

import (
	"fmt"

	"sysscale/internal/ioengine"
	"sysscale/internal/perfcounters"
)

// StaticDemand is the configuration-derived demand estimate.
type StaticDemand struct {
	DisplayBW float64 // bytes/s for all active panels
	CameraBW  float64 // bytes/s for the ISP stream
}

// Total returns the aggregate static bandwidth demand.
func (d StaticDemand) Total() float64 { return d.DisplayBW + d.CameraBW }

// StaticEstimator is the firmware table mapping peripheral
// configuration to demand (§4.2: "SysScale maintains a table inside
// the firmware of the PMU that maps every possible configuration of
// peripherals ... to IO and memory bandwidth/latency demand values").
// The table is keyed by the CSR contents the estimator reads.
type StaticEstimator struct{}

// Estimate reads the IO CSRs and returns the static demand. The
// estimate is exact because a peripheral configuration's demand is
// deterministic (a 60Hz 4K panel always scans the same bytes).
func (StaticEstimator) Estimate(csr ioengine.CSR) StaticDemand {
	return StaticDemand{
		DisplayBW: csr.DisplayBandwidth(),
		CameraBW:  csr.Camera.Bandwidth(),
	}
}

// Thresholds holds the per-counter decision thresholds, in the counter
// order of perfcounters.SysScaleCounters.
type Thresholds struct {
	GfxMisses   float64 // GFX_THR
	OccTracer   float64 // Core_THR
	LLCStalls   float64 // LAT_THR
	IORPQ       float64 // IO_THR
	StaticBWThr float64 // STATIC_BW_THR (bytes/s)
	DegradBound float64 // acceptable degradation bound (e.g. 0.01)
}

// Validate checks the thresholds are usable.
func (t Thresholds) Validate() error {
	if t.DegradBound <= 0 || t.DegradBound >= 1 {
		return fmt.Errorf("core: degradation bound %.3f outside (0,1)", t.DegradBound)
	}
	if t.StaticBWThr <= 0 {
		return fmt.Errorf("core: non-positive static bandwidth threshold")
	}
	for _, v := range []float64{t.GfxMisses, t.OccTracer, t.LLCStalls, t.IORPQ} {
		if v < 0 {
			return fmt.Errorf("core: negative counter threshold")
		}
	}
	return nil
}

// Decision is the algorithm's output for one evaluation interval.
type Decision struct {
	// High is true when the SoC must (stay at / move to) the
	// high-performance operating point.
	High bool
	// Reasons records which of the five conditions fired, for
	// explainability and tests. Empty when High is false.
	Reasons []Condition
}

// Condition identifies one of the five §4.3 conditions.
type Condition int

// The five conditions, in the paper's order.
const (
	CondStaticBW Condition = iota + 1
	CondGfxBandwidth
	CondCoreBandwidth
	CondMemLatency
	CondIOLatency
)

func (c Condition) String() string {
	switch c {
	case CondStaticBW:
		return "static-demand>STATIC_BW_THR"
	case CondGfxBandwidth:
		return "GFX_LLC_Misses>GFX_THR"
	case CondCoreBandwidth:
		return "LLC_Occupancy_Tracer>Core_THR"
	case CondMemLatency:
		return "LLC_STALLS>LAT_THR"
	case CondIOLatency:
		return "IO_RPQ>IO_THR"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Decide applies the five-condition rule to one interval's averaged
// counters and static demand.
func Decide(t Thresholds, static StaticDemand, counters perfcounters.Sample) Decision {
	var d Decision
	if static.Total() > t.StaticBWThr {
		d.Reasons = append(d.Reasons, CondStaticBW)
	}
	if counters.Get(perfcounters.GfxLLCMisses) > t.GfxMisses {
		d.Reasons = append(d.Reasons, CondGfxBandwidth)
	}
	if counters.Get(perfcounters.LLCOccupancyTracer) > t.OccTracer {
		d.Reasons = append(d.Reasons, CondCoreBandwidth)
	}
	if counters.Get(perfcounters.LLCStalls) > t.LLCStalls {
		d.Reasons = append(d.Reasons, CondMemLatency)
	}
	if counters.Get(perfcounters.IORPQ) > t.IORPQ {
		d.Reasons = append(d.Reasons, CondIOLatency)
	}
	d.High = len(d.Reasons) > 0
	return d
}
