package engine

import (
	"crypto/sha256"
	"testing"

	"sysscale/internal/engine/fptest/pkga"
	"sysscale/internal/engine/fptest/pkgb"
	"sysscale/internal/policy"
	"sysscale/internal/soc"
	"sysscale/internal/spec"
	"sysscale/internal/workload"
)

// fpConfig builds one valid config around the given policy.
func fpConfig(t *testing.T, p soc.Policy) soc.Config {
	t.Helper()
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = p
	return cfg
}

// TestFingerprintDistinguishesSameNamedTypes: two policy types with
// identical Go names, labels and field values — registered under
// distinct spec names — must map to different cache keys, or the
// engine would return one policy's cached Results for the other. (The
// registry's duplicate rejection is the other half of this guarantee:
// the two fixtures cannot register under one name in the first place.)
func TestFingerprintDistinguishesSameNamedTypes(t *testing.T) {
	ka, oka := fingerprint(fpConfig(t, &pkga.Pinned{Index: 1}))
	kb, okb := fingerprint(fpConfig(t, &pkgb.Pinned{Index: 1}))
	if !oka || !okb {
		t.Fatalf("fixture policies should be cacheable (got %t, %t)", oka, okb)
	}
	if ka == kb {
		t.Fatalf("same-named policies registered under distinct names share a cache key %x", ka)
	}
}

// TestFingerprintStableForEqualConfigs guards the opposite direction:
// equal configs (same type, same values) still collide onto one key.
func TestFingerprintStableForEqualConfigs(t *testing.T) {
	k1, ok1 := fingerprint(fpConfig(t, &pkga.Pinned{Index: 2}))
	k2, ok2 := fingerprint(fpConfig(t, &pkga.Pinned{Index: 2}))
	if !ok1 || !ok2 {
		t.Fatal("configs should be cacheable")
	}
	if k1 != k2 {
		t.Fatalf("equal configs produced distinct keys %x vs %x", k1, k2)
	}
	k3, _ := fingerprint(fpConfig(t, &pkga.Pinned{Index: 3}))
	if k1 == k3 {
		t.Fatal("distinct policy configurations share a cache key")
	}
}

// TestFingerprintUnregisteredUncacheable: a policy type outside the
// registry has no canonical identity and must never be cached.
func TestFingerprintUnregisteredUncacheable(t *testing.T) {
	if _, cacheable := fingerprint(fpConfig(t, &anonymousPolicy{})); cacheable {
		t.Fatal("unregistered policy type was cacheable")
	}
}

type anonymousPolicy struct{}

func (*anonymousPolicy) Name() string      { return "anonymous" }
func (*anonymousPolicy) Reset()            {}
func (*anonymousPolicy) Clone() soc.Policy { return &anonymousPolicy{} }
func (*anonymousPolicy) Decide(soc.PolicyContext) soc.PolicyDecision {
	return soc.PolicyDecision{}
}

// TestFingerprintMatchesSpecFingerprint is the key-equivalence
// guarantee: for every config the engine caches, the in-process key
// equals sha256 of the canonical bytes of the config's encoded spec —
// the identity spec.Fingerprint documents. Configs the old
// reflect-based fingerprint considered equal are value-equal configs,
// and value-equal configs encode to identical specs, so they keep
// colliding onto one key here (TestFingerprintStableForEqualConfigs
// pins that directly).
func TestFingerprintMatchesSpecFingerprint(t *testing.T) {
	policies := []soc.Policy{
		&pkga.Pinned{Index: 1},
		&pkgb.Pinned{Index: 1},
		policy.NewSysScaleDefault(),
		policy.NewCoScaleRedist(),
		policy.WithoutRedistribution(policy.NewSysScaleDefault()),
	}
	for _, p := range policies {
		cfg := fpConfig(t, p)
		key, cacheable := fingerprint(cfg)
		if !cacheable {
			t.Fatalf("%s: should be cacheable", p.Name())
		}
		job, err := spec.Encode(cfg)
		if err != nil {
			t.Fatalf("%s: Encode: %v", p.Name(), err)
		}
		want, err := spec.Fingerprint(job)
		if err != nil {
			t.Fatalf("%s: Fingerprint: %v", p.Name(), err)
		}
		if key != want {
			t.Errorf("%s: engine key %x != spec fingerprint %x", p.Name(), key, want)
		}
		canon, err := spec.Canonical(job)
		if err != nil {
			t.Fatalf("%s: Canonical: %v", p.Name(), err)
		}
		if key != sha256.Sum256(canon) {
			t.Errorf("%s: engine key is not sha256 of the canonical spec bytes", p.Name())
		}
	}
}

// BenchmarkFingerprint tracks the per-job keying cost on the sweep hot
// path; the pooled canonical encode must stay allocation-free.
func BenchmarkFingerprint(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewSysScaleDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fingerprint(cfg); !ok {
			b.Fatal("uncacheable")
		}
	}
}
