package engine

import (
	"testing"

	"sysscale/internal/engine/fptest/pkga"
	"sysscale/internal/engine/fptest/pkgb"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// fpConfig builds one valid config around the given policy.
func fpConfig(t *testing.T, p soc.Policy) soc.Config {
	t.Helper()
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = p
	return cfg
}

// TestFingerprintQualifiesPackagePath: two same-named policy types
// from different packages, with identical field values, must map to
// different cache keys — otherwise the engine would return one
// policy's cached Results for the other.
func TestFingerprintQualifiesPackagePath(t *testing.T) {
	ka, oka := fingerprint(fpConfig(t, &pkga.Pinned{Index: 1}))
	kb, okb := fingerprint(fpConfig(t, &pkgb.Pinned{Index: 1}))
	if !oka || !okb {
		t.Fatalf("fixture policies should be cacheable (got %t, %t)", oka, okb)
	}
	if ka == kb {
		t.Fatalf("same-named policies from different packages share a cache key %s", ka)
	}
}

// TestFingerprintStableForEqualConfigs guards the opposite direction:
// equal configs (same type, same values) still collide onto one key.
func TestFingerprintStableForEqualConfigs(t *testing.T) {
	k1, ok1 := fingerprint(fpConfig(t, &pkga.Pinned{Index: 2}))
	k2, ok2 := fingerprint(fpConfig(t, &pkga.Pinned{Index: 2}))
	if !ok1 || !ok2 {
		t.Fatal("configs should be cacheable")
	}
	if k1 != k2 {
		t.Fatalf("equal configs produced distinct keys %s vs %s", k1, k2)
	}
	k3, _ := fingerprint(fpConfig(t, &pkga.Pinned{Index: 3}))
	if k1 == k3 {
		t.Fatal("distinct policy configurations share a cache key")
	}
}
