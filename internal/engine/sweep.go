package engine

import (
	"context"
	"fmt"

	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// Sweep declaratively builds the policy × workload cross-product every
// figure of the paper's evaluation is shaped like, replacing the
// hand-rolled double loops the experiment harness used to repeat. A
// sweep starts from a base config template, crosses the configured
// workloads with the configured policies (workload-major, so cache
// locality and result ordering match the historical runMatrix layout),
// applies the Configure hooks to every cell, and runs the whole
// product as one engine batch:
//
//	rs, err := engine.NewSweep().
//		Policies(policy.NewBaseline(), policy.NewSysScaleDefault()).
//		Workloads(workload.SPECSuite()...).
//		Configure(func(c *soc.Config) { c.TDP = 3.5 }).
//		RunContext(ctx, eng)
//
// The builder mutates and returns the same *Sweep for chaining; it is
// not safe for concurrent mutation, but the produced configs are
// independent values.
type Sweep struct {
	base      soc.Config
	baseSet   bool
	workloads []workload.Workload
	policies  []soc.Policy
	configure []func(*soc.Config)
	cell      []func(w workload.Workload, pi int, cfg *soc.Config)
}

// NewSweep returns an empty sweep over the default platform
// (soc.DefaultConfig).
func NewSweep() *Sweep { return &Sweep{} }

// Base replaces the config template every cell starts from (default
// soc.DefaultConfig()). The template's Workload and Policy fields are
// overwritten per cell.
func (s *Sweep) Base(cfg soc.Config) *Sweep {
	s.base, s.baseSet = cfg, true
	return s
}

// Workloads appends the sweep's workload axis.
func (s *Sweep) Workloads(ws ...workload.Workload) *Sweep {
	s.workloads = append(s.workloads, ws...)
	return s
}

// Policies appends the sweep's policy axis. One instance per column is
// enough — the engine clones it for every job.
func (s *Sweep) Policies(ps ...soc.Policy) *Sweep {
	s.policies = append(s.policies, ps...)
	return s
}

// Configure appends hooks applied to every cell's config (after the
// workload and policy are set), in order.
func (s *Sweep) Configure(fs ...func(*soc.Config)) *Sweep {
	s.configure = append(s.configure, fs...)
	return s
}

// ConfigureCell appends a hook that additionally sees the cell's
// workload and policy index, for per-row or per-column adjustments
// (for example pinning a different core frequency per policy column).
// Cell hooks run after the Configure hooks.
func (s *Sweep) ConfigureCell(f func(w workload.Workload, pi int, cfg *soc.Config)) *Sweep {
	s.cell = append(s.cell, f)
	return s
}

// Configs materializes the cross-product, workload-major: the config
// for (workload wi, policy pi) is at index wi*len(policies)+pi.
func (s *Sweep) Configs() []soc.Config {
	base := s.base
	if !s.baseSet {
		base = soc.DefaultConfig()
	}
	cfgs := make([]soc.Config, 0, len(s.workloads)*len(s.policies))
	for _, w := range s.workloads {
		for pi, p := range s.policies {
			cfg := base
			cfg.Workload = w
			cfg.Policy = p
			for _, f := range s.configure {
				f(&cfg)
			}
			for _, f := range s.cell {
				f(w, pi, &cfg)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// Run executes the sweep on the engine and returns the ResultSet.
func (s *Sweep) Run(e *Engine) (*ResultSet, error) {
	return s.RunContext(context.Background(), e)
}

// RunContext is Run with cancellation, inheriting the engine batch
// semantics: fail-fast with a *JobError on the first failed cell,
// ctx.Err() pass-through on cancellation.
func (s *Sweep) RunContext(ctx context.Context, e *Engine) (*ResultSet, error) {
	if len(s.workloads) == 0 || len(s.policies) == 0 {
		return nil, fmt.Errorf("%w: sweep needs at least one workload and one policy", soc.ErrInvalidConfig)
	}
	cfgs := s.Configs()
	jobs := make([]Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = Job{Config: c}
	}
	flat, err := e.RunBatchContext(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Workloads: s.workloads, Policies: s.policies}
	rs.results = make([][]soc.Result, len(s.workloads))
	for wi := range s.workloads {
		rs.results[wi] = flat[wi*len(s.policies) : (wi+1)*len(s.policies)]
	}
	return rs, nil
}

// ResultSet is a completed sweep: the policy × workload result matrix
// plus the cross-product comparison helpers the evaluation figures are
// built from.
type ResultSet struct {
	// Workloads and Policies are the sweep axes, in sweep order.
	Workloads []workload.Workload
	Policies  []soc.Policy

	results [][]soc.Result // [workload][policy]
}

// Result returns the cell for (workload wi, policy pi).
func (rs *ResultSet) Result(wi, pi int) soc.Result { return rs.results[wi][pi] }

// Row returns workload wi's results across every policy column.
func (rs *ResultSet) Row(wi int) []soc.Result { return rs.results[wi] }

// Col returns policy pi's results across every workload, in workload
// order.
func (rs *ResultSet) Col(pi int) []soc.Result {
	out := make([]soc.Result, len(rs.results))
	for wi := range rs.results {
		out[wi] = rs.results[wi][pi]
	}
	return out
}

// Comparison is a cross-product comparison matrix: one metric value
// per (policy, workload) cell, each policy compared against the same
// baseline column. Values is indexed [policy][workload] in sweep
// order; Value looks cells up by name.
type Comparison struct {
	// Metric names the compared quantity (for rendering).
	Metric string
	// Policies and Workloads name the axes, in sweep order.
	Policies  []string
	Workloads []string
	// Values[pi][wi] compares policy pi to the baseline column on
	// workload wi (the baseline's own row is identically zero).
	Values [][]float64
}

// Value returns the cell for the named policy and workload. Lookup is
// by Name(), so sweeps whose policy columns share a name (two pinned
// static points, say) should index Values directly instead.
func (c Comparison) Value(policy, workload string) (float64, bool) {
	for pi, pn := range c.Policies {
		if pn != policy {
			continue
		}
		for wi, wn := range c.Workloads {
			if wn == workload {
				return c.Values[pi][wi], true
			}
		}
	}
	return 0, false
}

// RowMean averages policy pi's comparison across the workloads, in
// workload order (the arithmetic the figures report as "average").
func (c Comparison) RowMean(pi int) float64 {
	if len(c.Values[pi]) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.Values[pi] {
		sum += v
	}
	return sum / float64(len(c.Values[pi]))
}

// Compare builds a comparison matrix with a caller-supplied metric:
// f(r, base) for every cell, against baseline policy column basePi.
func (rs *ResultSet) Compare(metric string, basePi int, f func(r, base soc.Result) float64) Comparison {
	c := Comparison{
		Metric:    metric,
		Policies:  make([]string, len(rs.Policies)),
		Workloads: make([]string, len(rs.Workloads)),
		Values:    make([][]float64, len(rs.Policies)),
	}
	for pi, p := range rs.Policies {
		c.Policies[pi] = p.Name()
		c.Values[pi] = make([]float64, len(rs.Workloads))
		for wi := range rs.Workloads {
			c.Values[pi][wi] = f(rs.results[wi][pi], rs.results[wi][basePi])
		}
	}
	for wi, w := range rs.Workloads {
		c.Workloads[wi] = w.Name
	}
	return c
}

// PerfImprovement returns the performance-improvement matrix against
// baseline column basePi.
func (rs *ResultSet) PerfImprovement(basePi int) Comparison {
	return rs.Compare("perf improvement", basePi, soc.PerfImprovement)
}

// PowerReduction returns the average-power-reduction matrix against
// baseline column basePi.
func (rs *ResultSet) PowerReduction(basePi int) Comparison {
	return rs.Compare("power reduction", basePi, soc.PowerReduction)
}

// EDPImprovement returns the energy-delay-product-improvement matrix
// against baseline column basePi.
func (rs *ResultSet) EDPImprovement(basePi int) Comparison {
	return rs.Compare("EDP improvement", basePi, soc.EDPImprovement)
}
