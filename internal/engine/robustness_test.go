package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"sysscale/internal/diskcache"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// panicPolicy panics on its nth Decide — the misbehaving-governor case
// the engine's panic isolation exists for.
type panicPolicy struct {
	inner soc.Policy
	at    int
	n     int
}

func newPanicPolicy(at int) *panicPolicy {
	return &panicPolicy{inner: policy.NewBaseline(), at: at}
}

func (p *panicPolicy) Name() string { return "panic-test" }
func (p *panicPolicy) Reset()       { p.n = 0; p.inner.Reset() }
func (p *panicPolicy) Clone() soc.Policy {
	return &panicPolicy{inner: p.inner.Clone(), at: p.at}
}
func (p *panicPolicy) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	d := p.inner.Decide(ctx)
	if p.n == p.at {
		panic("panicPolicy: injected panic")
	}
	p.n++
	return d
}

// slowPolicy sleeps on every Decide, so a run's wall time dwarfs its
// simulated time — the shape per-job deadlines exist for.
type slowPolicy struct {
	inner soc.Policy
	sleep time.Duration
}

func (p *slowPolicy) Name() string { return "slow-test" }
func (p *slowPolicy) Reset()       { p.inner.Reset() }
func (p *slowPolicy) Clone() soc.Policy {
	return &slowPolicy{inner: p.inner.Clone(), sleep: p.sleep}
}
func (p *slowPolicy) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	time.Sleep(p.sleep)
	return p.inner.Decide(ctx)
}

func robustnessConfig(t *testing.T, name string) soc.Config {
	t.Helper()
	w, err := workload.SPEC(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewBaseline()
	cfg.Duration = 300 * sim.Millisecond
	return cfg
}

// TestPanicIsolation is the satellite regression: a panicking policy in
// a concurrent batch must surface as a *JobError wrapping *PanicError
// on that job alone — no process crash, no leaked Runner, and the
// engine (whose pool just discarded a platform) stays fully usable.
func TestPanicIsolation(t *testing.T) {
	jobs := []Job{
		{Config: robustnessConfig(t, "416.gamess")},
		{Config: robustnessConfig(t, "470.lbm")},
		{Config: robustnessConfig(t, "473.astar")},
	}
	bad := robustnessConfig(t, "470.lbm")
	bad.Policy = newPanicPolicy(1)
	jobs = append(jobs, Job{Config: bad})

	e := New(WithParallelism(4))
	_, err := e.RunBatch(jobs)
	if err == nil {
		t.Fatalf("batch with a panicking policy returned nil error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Index != 3 {
		t.Fatalf("err = %v, want *JobError for job 3", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want chain to include *PanicError", err)
	}
	if pe.Value != "panicPolicy: injected panic" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Errorf("PanicError.Stack is empty")
	}
	if got := RunnersInFlight(); got != 0 {
		t.Fatalf("runnersInFlight = %d after panic, want 0 (Runner leaked)", got)
	}
	if st := e.CacheStats(); st.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", st.Panics)
	}

	// The engine survives: a clean batch on the same engine succeeds.
	rs, err := e.RunBatch(jobs[:3])
	if err != nil {
		t.Fatalf("clean batch after a panic failed: %v", err)
	}
	for i, r := range rs {
		if r.Score <= 0 {
			t.Errorf("job %d: zero score after panic recovery", i)
		}
	}
}

// TestStreamDeliversPanicInBand: Stream must deliver a panicking job's
// *PanicError as that job's JobResult while every sibling still
// completes.
func TestStreamDeliversPanicInBand(t *testing.T) {
	jobs := []Job{
		{Config: robustnessConfig(t, "416.gamess")},
		{Config: robustnessConfig(t, "470.lbm")},
	}
	bad := robustnessConfig(t, "473.astar")
	bad.Policy = newPanicPolicy(0)
	jobs = append(jobs, Job{Config: bad})

	e := New(WithParallelism(2))
	seen := make(map[int]error)
	for jr := range e.Stream(context.Background(), jobs) {
		seen[jr.Index] = jr.Err
	}
	if len(seen) != len(jobs) {
		t.Fatalf("stream delivered %d of %d jobs", len(seen), len(jobs))
	}
	var pe *PanicError
	if !errors.As(seen[2], &pe) {
		t.Errorf("panicking job delivered err %v, want *PanicError", seen[2])
	}
	if seen[0] != nil || seen[1] != nil {
		t.Errorf("sibling jobs failed: %v, %v", seen[0], seen[1])
	}
	if got := RunnersInFlight(); got != 0 {
		t.Fatalf("runnersInFlight = %d, want 0", got)
	}
}

// TestJobTimeout: a job over its deadline fails with ErrJobTimeout — a
// genuine, reported failure, distinct from context.DeadlineExceeded —
// through both the per-job and the engine-wide knobs, and fail-fast
// RunBatch reports it rather than eating it as collateral.
func TestJobTimeout(t *testing.T) {
	slow := robustnessConfig(t, "470.lbm")
	slow.Policy = &slowPolicy{inner: policy.NewBaseline(), sleep: 30 * time.Millisecond}

	t.Run("per-job", func(t *testing.T) {
		e := New()
		rs := e.RunBatchPartial(context.Background(), []Job{{Config: slow, Timeout: 20 * time.Millisecond}})
		err := rs[0].Err
		if !errors.Is(err, ErrJobTimeout) {
			t.Fatalf("err = %v, want ErrJobTimeout", err)
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			t.Fatalf("ErrJobTimeout matches context sentinels — collateral filters would drop real timeouts")
		}
	})

	t.Run("engine-wide", func(t *testing.T) {
		e := New(WithJobTimeout(20 * time.Millisecond))
		_, err := e.RunBatch([]Job{{Config: slow}})
		var je *JobError
		if !errors.As(err, &je) || !errors.Is(err, ErrJobTimeout) {
			t.Fatalf("fail-fast batch err = %v, want *JobError wrapping ErrJobTimeout", err)
		}
	})

	t.Run("fast-jobs-unaffected", func(t *testing.T) {
		e := New(WithJobTimeout(10 * time.Second))
		if _, err := e.RunBatch([]Job{{Config: robustnessConfig(t, "416.gamess")}}); err != nil {
			t.Fatalf("generous timeout failed a fast job: %v", err)
		}
	})

	if got := RunnersInFlight(); got != 0 {
		t.Fatalf("runnersInFlight = %d, want 0", got)
	}
}

// TestRunBatchPartial: every job gets a JobResult — results for the
// healthy, typed errors for the sick — and the batch never fails as a
// whole.
func TestRunBatchPartial(t *testing.T) {
	good := robustnessConfig(t, "416.gamess")
	invalid := robustnessConfig(t, "470.lbm")
	invalid.Duration = -1 * sim.Second
	panicking := robustnessConfig(t, "473.astar")
	panicking.Policy = newPanicPolicy(0)

	jobs := []Job{
		{Config: good},
		{Config: invalid},
		{Config: soc.Config{}}, // nil policy
		{Config: panicking},
		{Config: robustnessConfig(t, "470.lbm")},
	}
	e := New(WithParallelism(4))
	rs := e.RunBatchPartial(context.Background(), jobs)
	if len(rs) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(rs), len(jobs))
	}
	for i, jr := range rs {
		if jr.Index != i {
			t.Errorf("result %d carries index %d", i, jr.Index)
		}
	}
	if rs[0].Err != nil || rs[0].Result.Score <= 0 {
		t.Errorf("good job: err %v", rs[0].Err)
	}
	if !errors.Is(rs[1].Err, soc.ErrInvalidConfig) {
		t.Errorf("invalid job err = %v, want ErrInvalidConfig", rs[1].Err)
	}
	if !errors.Is(rs[2].Err, soc.ErrInvalidConfig) {
		t.Errorf("nil-policy job err = %v, want ErrInvalidConfig", rs[2].Err)
	}
	var pe *PanicError
	if !errors.As(rs[3].Err, &pe) {
		t.Errorf("panic job err = %v, want *PanicError", rs[3].Err)
	}
	if rs[4].Err != nil {
		t.Errorf("trailing good job failed: %v", rs[4].Err)
	}

	// A pre-cancelled context: every job reports cancellation
	// collateral, identifiable as such, and the slice is still full
	// length.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs = e.RunBatchPartial(ctx, jobs)
	if len(rs) != len(jobs) {
		t.Fatalf("cancelled partial batch returned %d results", len(rs))
	}
	for i, jr := range rs {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled collateral", i, jr.Err)
		}
	}
}

// enospcTier models a full disk: reads miss cleanly, every write fails
// with an ErrIO-classed error — the ENOSPC shape.
type enospcTier struct {
	gets, puts atomic.Int64
}

func (f *enospcTier) Get(diskcache.Key) (soc.Result, bool, error) {
	f.gets.Add(1)
	return soc.Result{}, false, nil
}
func (f *enospcTier) Put(diskcache.Key, soc.Result) error {
	f.puts.Add(1)
	return fmt.Errorf("%w: no space left on device", diskcache.ErrIO)
}
func (f *enospcTier) Stats() diskcache.Stats {
	return diskcache.Stats{Misses: int(f.gets.Load()), Errors: int(f.puts.Load())}
}

// TestDiskFullKeepsMemoryTierIdentical is the ENOSPC satellite: a warm
// engine whose every disk write fails must produce results, memory-tier
// stats, and cache behaviour byte-identical to an engine with no disk
// tier at all — the failing tier costs error counts, nothing else.
func TestDiskFullKeepsMemoryTierIdentical(t *testing.T) {
	jobs := []Job{
		{Config: robustnessConfig(t, "416.gamess")},
		{Config: robustnessConfig(t, "470.lbm")},
		{Config: robustnessConfig(t, "473.astar")},
	}

	noDisk := New(WithParallelism(2))
	want, err := noDisk.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := noDisk.RunBatch(jobs) // warm pass: all memory hits
	if err != nil {
		t.Fatal(err)
	}

	full := &enospcTier{}
	// Breaker off: every write must individually hit the full disk so
	// the stats comparison is exact.
	eFull := New(WithParallelism(2), WithDiskTier(full), WithDiskBreaker(0, 0))
	got, err := eFull.RunBatch(jobs)
	if err != nil {
		t.Fatalf("full-disk batch failed: %v (ENOSPC must never fail jobs)", err)
	}
	got2, err := eFull.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(got2, want2) {
		t.Errorf("full-disk results differ from no-disk results")
	}
	sa, sb := noDisk.CacheStats(), eFull.CacheStats()
	if sa.Hits != sb.Hits || sa.Misses != sb.Misses || sa.Entries != sb.Entries || sa.Evictions != sb.Evictions {
		t.Errorf("memory-tier stats diverge: no-disk %+v, full-disk %+v", sa, sb)
	}
	if sb.DiskErrors != int(full.puts.Load()) || full.puts.Load() != int64(len(jobs)) {
		t.Errorf("DiskErrors = %d with %d failed puts, want %d", sb.DiskErrors, full.puts.Load(), len(jobs))
	}
}
