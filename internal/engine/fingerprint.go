package engine

import (
	"crypto/sha256"
	"reflect"
	"strconv"
	"sync"

	"sysscale/internal/soc"
)

// fingerprint derives the canonical cache key of a configuration: a
// sha256 digest over a deterministic deep rendering of every Config
// field, including the concrete policy's type and configuration.
// Pointers are dereferenced (never printed as addresses — addresses
// are reused by the allocator and would alias distinct configs), so
// two configs with equal contents always collide onto one key.
//
// cacheable is false when the config cannot be keyed soundly: the
// policy opted out via Uncacheable, or the walk met a value whose
// semantics a hash cannot capture (func, chan, map, unsafe pointer) or
// exceeded the depth bound (cyclic structures). Such jobs always
// simulate.
//
// The walk is allocation-free in steady state: it renders into a
// pooled byte buffer with strconv appenders (no fmt), reads struct
// metadata through a per-type cache (reflect.Type.Field allocates on
// every call; the names never change), and digests with the one-shot
// sha256.Sum256, which keeps the state on the stack.
func fingerprint(cfg soc.Config) (key cacheKey, cacheable bool) {
	// Walk the wrapper chain (decorators expose Unwrap, like errors):
	// a wrapped uncacheable policy is still uncacheable. The walk is
	// depth-bounded like the value walk below, so a (buggy) cyclic
	// Unwrap chain degrades to "uncacheable" instead of hanging.
	p, depth := cfg.Policy, maxWalkDepth
	for p != nil {
		if _, ok := p.(Uncacheable); ok {
			return cacheKey{}, false
		}
		u, ok := p.(interface{ Unwrap() soc.Policy })
		if !ok {
			break
		}
		if depth--; depth <= 0 {
			return cacheKey{}, false
		}
		p = u.Unwrap()
	}
	w := fpPool.Get().(*fpWalker)
	w.buf = w.buf[:0]
	ok := w.writeValue(reflect.ValueOf(&cfg).Elem(), maxWalkDepth)
	if ok {
		key = sha256.Sum256(w.buf)
	}
	fpPool.Put(w)
	return key, ok
}

// maxWalkDepth bounds the deep walk; configs are shallow (the deepest
// path is Config → Workload → Phases → Residency), so hitting the
// bound means a cyclic custom policy.
const maxWalkDepth = 24

// fpWalker renders values into a reusable buffer. Pooled: fingerprint
// runs once per job on the sweep hot path.
type fpWalker struct {
	buf []byte
}

var fpPool = sync.Pool{New: func() any { return &fpWalker{buf: make([]byte, 0, 1024)} }}

// typeInfo caches the identity strings the walk needs for a type:
// its qualified name and (for structs) its field names. Reading these
// through reflect.Type allocates on every call; they are immutable,
// so one lookup per type for the life of the process suffices.
type typeInfo struct {
	name   string
	fields []string
}

var typeInfos sync.Map // reflect.Type → *typeInfo

func typeInfoFor(t reflect.Type) *typeInfo {
	if ti, ok := typeInfos.Load(t); ok {
		return ti.(*typeInfo)
	}
	ti := &typeInfo{name: qualifiedTypeName(t)}
	if t.Kind() == reflect.Struct {
		ti.fields = make([]string, t.NumField())
		for i := range ti.fields {
			ti.fields[i] = t.Field(i).Name
		}
	}
	actual, _ := typeInfos.LoadOrStore(t, ti)
	return actual.(*typeInfo)
}

// qualifiedTypeName renders a type's identity with its full import
// path (e.g. "sysscale/internal/policy.SysScale" rather than
// "policy.SysScale"). Pointer types are unwrapped recursively; types
// without a package path (unnamed composites, builtins) keep their
// structural String rendering, which is unambiguous for them.
func qualifiedTypeName(t reflect.Type) string {
	if t.Kind() == reflect.Ptr {
		return "*" + qualifiedTypeName(t.Elem())
	}
	if pp := t.PkgPath(); pp != "" {
		return pp + "." + t.Name()
	}
	return t.String()
}

// writeValue renders v canonically into the walker's buffer, returning
// false when the value cannot be rendered soundly. Unexported fields
// are read through the kind-specific accessors, which reflect permits
// without Interface().
func (w *fpWalker) writeValue(v reflect.Value, depth int) bool {
	if depth <= 0 {
		return false
	}
	if !v.IsValid() {
		w.buf = append(w.buf, "<zero>"...)
		return true
	}
	switch v.Kind() {
	case reflect.Bool:
		w.buf = strconv.AppendBool(w.buf, v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		w.buf = strconv.AppendInt(w.buf, v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		w.buf = strconv.AppendUint(w.buf, v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		// 'b' is exact (binary mantissa/exponent): no two distinct
		// floats share a rendering.
		w.buf = strconv.AppendFloat(w.buf, v.Float(), 'b', -1, 64)
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		w.buf = strconv.AppendFloat(w.buf, real(c), 'b', -1, 64)
		w.buf = append(w.buf, '/')
		w.buf = strconv.AppendFloat(w.buf, imag(c), 'b', -1, 64)
	case reflect.String:
		w.buf = strconv.AppendQuote(w.buf, v.String())
	case reflect.Ptr:
		if v.IsNil() {
			w.buf = append(w.buf, "nil"...)
			return true
		}
		w.buf = append(w.buf, '&')
		return w.writeValue(v.Elem(), depth-1)
	case reflect.Interface:
		if v.IsNil() {
			w.buf = append(w.buf, "nil"...)
			return true
		}
		// The dynamic type is part of the identity: two policies with
		// identical fields but different types behave differently. The
		// name must be package-path-qualified: reflect.Type.String uses
		// the unqualified package name, so two same-named types from
		// different packages would alias onto one cache key and return
		// each other's cached Results.
		w.buf = append(w.buf, typeInfoFor(v.Elem().Type()).name...)
		w.buf = append(w.buf, '(')
		if !w.writeValue(v.Elem(), depth-1) {
			return false
		}
		w.buf = append(w.buf, ')')
	case reflect.Struct:
		ti := typeInfoFor(v.Type())
		w.buf = append(w.buf, ti.name...)
		w.buf = append(w.buf, '{')
		for i, name := range ti.fields {
			w.buf = append(w.buf, name...)
			w.buf = append(w.buf, ':')
			if !w.writeValue(v.Field(i), depth-1) {
				return false
			}
			w.buf = append(w.buf, ',')
		}
		w.buf = append(w.buf, '}')
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			w.buf = append(w.buf, "nil"...)
			return true
		}
		w.buf = append(w.buf, '[')
		w.buf = strconv.AppendInt(w.buf, int64(v.Len()), 10)
		w.buf = append(w.buf, ':')
		for i := 0; i < v.Len(); i++ {
			if !w.writeValue(v.Index(i), depth-1) {
				return false
			}
			w.buf = append(w.buf, ',')
		}
		w.buf = append(w.buf, ']')
	default:
		// Map (nondeterministic iteration), Func, Chan, UnsafePointer:
		// no sound canonical rendering.
		return false
	}
	return true
}
