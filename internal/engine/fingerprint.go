package engine

import (
	"crypto/sha256"
	"sync"

	"sysscale/internal/soc"
	"sysscale/internal/spec"
)

// fingerprint derives the canonical cache key of a configuration:
// sha256 over the config's canonical spec bytes (spec.AppendConfig) —
// the same identity spec.Fingerprint documents for serialized jobs, so
// a key computed here matches one computed from the job's JSON in
// another process (or another language). That shared identity is what
// the future content-addressed on-disk result tier keys on.
//
// cacheable is false when the config cannot be keyed soundly: the
// policy opted out via Uncacheable, or the config has no canonical
// form — an unregistered policy type (the registry names are the
// identity; an unknown type has none), an out-of-range enum value, or
// a float with no JSON rendering. Such jobs always simulate.
//
// The encode is allocation-free in steady state: spec.AppendConfig
// renders into a pooled byte buffer with strconv-style appenders (no
// reflection, no fmt), and the digest is the one-shot sha256.Sum256,
// which keeps the hash state on the stack.
func fingerprint(cfg soc.Config) (key cacheKey, cacheable bool) {
	// Walk the wrapper chain (decorators expose Unwrap, like errors):
	// a wrapped uncacheable policy is still uncacheable. The walk is
	// depth-bounded, so a (buggy) cyclic Unwrap chain degrades to
	// "uncacheable" instead of hanging.
	p, depth := cfg.Policy, maxWalkDepth
	for p != nil {
		if _, ok := p.(Uncacheable); ok {
			return cacheKey{}, false
		}
		u, ok := p.(interface{ Unwrap() soc.Policy })
		if !ok {
			break
		}
		if depth--; depth <= 0 {
			return cacheKey{}, false
		}
		p = u.Unwrap()
	}
	w := fpPool.Get().(*fpBuf)
	b, ok := spec.AppendConfig(w.buf[:0], cfg)
	if ok {
		key = sha256.Sum256(b)
	}
	w.buf = b
	fpPool.Put(w)
	return key, ok
}

// maxWalkDepth bounds the Unwrap walk; real decorator stacks are one
// or two deep, so hitting the bound means a cyclic custom policy.
const maxWalkDepth = 24

// fpBuf is a pooled render buffer: fingerprint runs once per job on
// the sweep hot path, and a typical canonical encoding is ~1.5KB.
type fpBuf struct {
	buf []byte
}

var fpPool = sync.Pool{New: func() any { return &fpBuf{buf: make([]byte, 0, 2048)} }}
