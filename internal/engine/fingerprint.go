package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"

	"sysscale/internal/soc"
)

// fingerprint derives the canonical cache key of a configuration: a
// hash over a deterministic deep rendering of every Config field,
// including the concrete policy's type and configuration. Pointers are
// dereferenced (never printed as addresses — addresses are reused by
// the allocator and would alias distinct configs), so two configs with
// equal contents always collide onto one key.
//
// cacheable is false when the config cannot be keyed soundly: the
// policy opted out via Uncacheable, or the walk met a value whose
// semantics a hash cannot capture (func, chan, map, unsafe pointer) or
// exceeded the depth bound (cyclic structures). Such jobs always
// simulate.
func fingerprint(cfg soc.Config) (key string, cacheable bool) {
	// Walk the wrapper chain (decorators expose Unwrap, like errors):
	// a wrapped uncacheable policy is still uncacheable. The walk is
	// depth-bounded like the value walk below, so a (buggy) cyclic
	// Unwrap chain degrades to "uncacheable" instead of hanging.
	p, depth := cfg.Policy, maxWalkDepth
	for p != nil {
		if _, ok := p.(Uncacheable); ok {
			return "", false
		}
		u, ok := p.(interface{ Unwrap() soc.Policy })
		if !ok {
			break
		}
		if depth--; depth <= 0 {
			return "", false
		}
		p = u.Unwrap()
	}
	h := sha256.New()
	if !writeValue(h, reflect.ValueOf(cfg), maxWalkDepth) {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// maxWalkDepth bounds the deep walk; configs are shallow (the deepest
// path is Config → Workload → Phases → Residency), so hitting the
// bound means a cyclic custom policy.
const maxWalkDepth = 24

// qualifiedTypeName renders a type's identity with its full import
// path (e.g. "sysscale/internal/policy.SysScale" rather than
// "policy.SysScale"). Pointer types are unwrapped recursively; types
// without a package path (unnamed composites, builtins) keep their
// structural String rendering, which is unambiguous for them.
func qualifiedTypeName(t reflect.Type) string {
	if t.Kind() == reflect.Ptr {
		return "*" + qualifiedTypeName(t.Elem())
	}
	if pp := t.PkgPath(); pp != "" {
		return pp + "." + t.Name()
	}
	return t.String()
}

// writeValue renders v canonically into w, returning false when the
// value cannot be rendered soundly. Unexported fields are read through
// the kind-specific accessors, which reflect permits without
// Interface().
func writeValue(w io.Writer, v reflect.Value, depth int) bool {
	if depth <= 0 {
		return false
	}
	if !v.IsValid() {
		io.WriteString(w, "<zero>")
		return true
	}
	switch v.Kind() {
	case reflect.Bool:
		fmt.Fprintf(w, "%t", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(w, "%d", v.Uint())
	case reflect.Float32, reflect.Float64:
		// %b is exact (binary mantissa/exponent): no two distinct
		// floats share a rendering.
		fmt.Fprintf(w, "%b", v.Float())
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		fmt.Fprintf(w, "%b/%b", real(c), imag(c))
	case reflect.String:
		fmt.Fprintf(w, "%q", v.String())
	case reflect.Ptr:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return true
		}
		io.WriteString(w, "&")
		return writeValue(w, v.Elem(), depth-1)
	case reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return true
		}
		// The dynamic type is part of the identity: two policies with
		// identical fields but different types behave differently. The
		// name must be package-path-qualified: reflect.Type.String uses
		// the unqualified package name, so two same-named types from
		// different packages would alias onto one cache key and return
		// each other's cached Results.
		fmt.Fprintf(w, "%s(", qualifiedTypeName(v.Elem().Type()))
		if !writeValue(w, v.Elem(), depth-1) {
			return false
		}
		io.WriteString(w, ")")
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(w, "%s{", qualifiedTypeName(t))
		for i := 0; i < v.NumField(); i++ {
			fmt.Fprintf(w, "%s:", t.Field(i).Name)
			if !writeValue(w, v.Field(i), depth-1) {
				return false
			}
			io.WriteString(w, ",")
		}
		io.WriteString(w, "}")
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			io.WriteString(w, "nil")
			return true
		}
		fmt.Fprintf(w, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			if !writeValue(w, v.Index(i), depth-1) {
				return false
			}
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	default:
		// Map (nondeterministic iteration), Func, Chan, UnsafePointer:
		// no sound canonical rendering.
		return false
	}
	return true
}
