package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// diskJobs is a small all-cacheable batch of distinct jobs.
func diskJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, n := range []string{"416.gamess", "470.lbm"} {
		w, err := workload.SPEC(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []soc.Policy{policy.NewBaseline(), policy.NewSysScaleDefault()} {
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Policy = p
			cfg.Duration = 300 * sim.Millisecond
			jobs = append(jobs, Job{Config: cfg})
		}
	}
	return jobs
}

// TestDiskCacheFreshEngineServesFromDisk is the cross-process identity
// contract, approximated in-process: a result computed and persisted
// by one engine is returned bit-identically by a brand-new engine
// (empty memory cache, fresh disk store over the same directory) —
// DiskHits == jobs, zero simulations. CI's disk-cache smoke runs the
// same contract across two real processes.
func TestDiskCacheFreshEngineServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	jobs := diskJobs(t)

	first := New(WithDiskCache(dir))
	if err := first.DiskCacheError(); err != nil {
		t.Fatal(err)
	}
	want, err := first.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	fs := first.CacheStats()
	if fs.DiskHits != 0 || fs.DiskMisses != len(jobs) || fs.Misses != len(jobs) {
		t.Errorf("first run stats = %+v, want 0 disk hits / %d disk misses", fs, len(jobs))
	}
	if fs.DiskBytes <= 0 {
		t.Errorf("first run persisted no bytes: %+v", fs)
	}

	second := New(WithDiskCache(dir))
	got, err := second.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk-served results not bit-identical to computed results")
	}
	ss := second.CacheStats()
	if ss.DiskHits != len(jobs) {
		t.Errorf("second engine DiskHits = %d, want %d (every job from disk)", ss.DiskHits, len(jobs))
	}
	if ss.Misses != 0 {
		t.Errorf("second engine simulated %d jobs despite a warm disk tier", ss.Misses)
	}

	// A third batch on the same engine is served from the promoted
	// in-memory entries — no further disk traffic.
	if _, err := second.RunBatch(jobs); err != nil {
		t.Fatal(err)
	}
	ts := second.CacheStats()
	if ts.DiskHits != ss.DiskHits || ts.DiskMisses != ss.DiskMisses {
		t.Errorf("warm-memory batch touched disk: %+v -> %+v", ss, ts)
	}
	if ts.Hits != len(jobs) {
		t.Errorf("warm-memory batch Hits = %d, want %d", ts.Hits, len(jobs))
	}
}

// TestDiskCacheCorruptEntryDegradesToMiss: a rotted entry re-simulates
// (correct result), counts a DiskErrors, and is pruned — a corrupt
// cache never produces a wrong result or aborts the batch.
func TestDiskCacheCorruptEntryDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	jobs := diskJobs(t)

	first := New(WithDiskCache(dir))
	want, err := first.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-flip every persisted entry.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			continue
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		flipped++
	}
	if flipped != len(jobs) {
		t.Fatalf("flipped %d entries, want %d", flipped, len(jobs))
	}

	second := New(WithDiskCache(dir))
	got, err := second.RunBatch(jobs)
	if err != nil {
		t.Fatalf("corrupt disk tier aborted the batch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("corruption produced different results")
	}
	st := second.CacheStats()
	if st.DiskErrors != len(jobs) {
		t.Errorf("DiskErrors = %d, want %d", st.DiskErrors, len(jobs))
	}
	if st.Misses != len(jobs) {
		t.Errorf("Misses = %d, want %d (every corrupt entry re-simulated)", st.Misses, len(jobs))
	}

	// The re-simulations were written back: a third engine hits disk.
	third := New(WithDiskCache(dir))
	if _, err := third.RunBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if st := third.CacheStats(); st.DiskHits != len(jobs) {
		t.Errorf("repaired tier DiskHits = %d, want %d", st.DiskHits, len(jobs))
	}
}

// TestDiskCacheUncacheableBypasses: jobs whose policy opts out of
// memoization never touch the disk tier — no lookups, no entries.
func TestDiskCacheUncacheableBypasses(t *testing.T) {
	dir := t.TempDir()
	e := New(WithDiskCache(dir))

	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = &countingPolicy{inner: policy.NewSysScaleDefault(), n: new(atomic.Int64)}
	cfg.Duration = 300 * sim.Millisecond
	if _, err := e.RunBatch([]Job{{Config: cfg}, {Config: cfg}}); err != nil {
		t.Fatal(err)
	}

	st := e.CacheStats()
	if st.DiskHits != 0 || st.DiskMisses != 0 || st.DiskBytes != 0 {
		t.Errorf("uncacheable jobs touched the disk tier: %+v", st)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("uncacheable jobs persisted %d files", len(ents))
	}
}

// TestDiskCacheOpenFailure: an unopenable cache dir disables the tier,
// is reported by DiskCacheError, and leaves the engine fully working.
func TestDiskCacheOpenFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(WithDiskCache(file))
	if e.DiskCacheError() == nil {
		t.Errorf("DiskCacheError nil for a cache dir that is a file")
	}
	jobs := diskJobs(t)[:1]
	if _, err := e.RunBatch(jobs); err != nil {
		t.Fatalf("engine without disk tier failed: %v", err)
	}
	if st := e.CacheStats(); st.DiskHits != 0 || st.DiskMisses != 0 {
		t.Errorf("disabled tier reported traffic: %+v", st)
	}
}
