package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload/gen"
)

// generatedJobs builds n distinct short jobs from the stochastic
// workload generator — the unbounded-sweep shape Stream exists for.
func generatedJobs(t *testing.T, n int) []Job {
	t.Helper()
	ws := gen.GenerateN(gen.DefaultConfig(7), n)
	jobs := make([]Job, n)
	for i, w := range ws {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = policy.NewSysScaleDefault()
		cfg.Duration = 120 * sim.Millisecond
		jobs[i] = Job{Config: cfg}
	}
	return jobs
}

// TestStreamDeliversEveryJobOnce is the streaming contract: one
// JobResult per job, correct indices, values identical to the batch
// path — whatever the parallelism, and across cache hits, in-batch
// coalescing and plain execution.
func TestStreamDeliversEveryJobOnce(t *testing.T) {
	jobs := mixedJobs(t)
	// Duplicate a few jobs so coalescing paths stream too.
	jobs = append(jobs, jobs[0], jobs[3], jobs[3])

	want, err := New(WithParallelism(1)).RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		e := New(WithParallelism(workers))
		// Warm part of the cache so some deliveries are cache hits.
		if _, err := e.RunBatch(jobs[:4]); err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, len(jobs))
		n := 0
		for jr := range e.Stream(context.Background(), jobs) {
			if jr.Err != nil {
				t.Fatalf("workers=%d: job %d failed: %v", workers, jr.Index, jr.Err)
			}
			if jr.Index < 0 || jr.Index >= len(jobs) {
				t.Fatalf("workers=%d: out-of-range index %d", workers, jr.Index)
			}
			if seen[jr.Index] {
				t.Fatalf("workers=%d: job %d delivered twice", workers, jr.Index)
			}
			seen[jr.Index] = true
			if !reflect.DeepEqual(jr.Result, want[jr.Index]) {
				t.Fatalf("workers=%d: job %d streamed result differs from batch result", workers, jr.Index)
			}
			n++
		}
		if n != len(jobs) {
			t.Fatalf("workers=%d: %d results delivered, want %d", workers, n, len(jobs))
		}
	}
}

// TestStreamMidBatchCancel cancels a stream partway through at several
// parallelism levels (run under -race in CI): the channel must close,
// no index may be delivered twice, no Runner may stay checked out of
// the pool, and — the pool-consistency proof — the same engine must
// afterwards reproduce a fresh engine's results bit-identically on the
// very platforms that were abandoned mid-run.
func TestStreamMidBatchCancel(t *testing.T) {
	jobs := mixedJobs(t)
	reference, err := New(WithParallelism(1), WithCache(false)).RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		e := New(WithParallelism(workers), WithCache(false))
		ctx, cancel := context.WithCancel(context.Background())
		delivered := 0
		seen := make([]bool, len(jobs))
		for jr := range e.Stream(ctx, jobs) {
			if jr.Err != nil {
				// Cancellation collateral is dropped, never delivered:
				// an error on the channel is always a real job failure.
				t.Fatalf("workers=%d: unexpected error: %v", workers, jr.Err)
			}
			if seen[jr.Index] {
				t.Fatalf("workers=%d: job %d delivered twice", workers, jr.Index)
			}
			seen[jr.Index] = true
			delivered++
			if delivered == 2 {
				cancel()
			}
		}
		cancel()
		if delivered >= len(jobs) {
			t.Fatalf("workers=%d: cancellation delivered all %d jobs", workers, delivered)
		}
		if n := runnersInFlight.Load(); n != 0 {
			t.Fatalf("workers=%d: %d Runners leaked from the pool after cancellation", workers, n)
		}

		// The abandoned platforms went back to the pool mid-run; the
		// next batch must reset them bit-identically to fresh assembly.
		got, err := e.RunBatch(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("workers=%d: batch after cancellation diverged from fresh-engine results", workers)
		}
	}
}

// TestRunBatchContextCancelled pins the context pass-through contract:
// a cancelled batch reports ctx.Err() — errors.Is(err,
// context.Canceled) — with no partial results, whether the context
// dies before or during the batch.
func TestRunBatchContextCancelled(t *testing.T) {
	jobs := mixedJobs(t)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(WithCache(false))
	if rs, err := e.RunBatchContext(pre, jobs); !errors.Is(err, context.Canceled) || rs != nil {
		t.Fatalf("pre-cancelled batch returned (%v, %v), want (nil, context.Canceled)", rs, err)
	}

	// Cancel from inside a run: a policy that trips the cancel during
	// its 3rd decision of the first job.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg := jobs[0].Config
	cfg.Policy = &cancelPolicy{inner: policy.NewBaseline(), cancel: cancel2, after: 3}
	cfg.Duration = 2 * sim.Second
	all := append([]Job{{Config: cfg}}, jobs...)
	if rs, err := New(WithParallelism(1), WithCache(false)).RunBatchContext(ctx, all); !errors.Is(err, context.Canceled) || rs != nil {
		t.Fatalf("mid-run cancelled batch returned (%v, %v), want (nil, context.Canceled)", rs, err)
	}
	if n := runnersInFlight.Load(); n != 0 {
		t.Fatalf("%d Runners leaked from the pool after cancelled batch", n)
	}
}

// cancelPolicy cancels a context on its nth Decide. Clones share the
// trigger, which is fine: only the first job runs it here.
type cancelPolicy struct {
	inner  soc.Policy
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancelPolicy) Name() string { return "cancel-trigger" }
func (p *cancelPolicy) Reset()       { p.inner.Reset() }
func (p *cancelPolicy) Clone() soc.Policy {
	return &cancelPolicy{inner: p.inner.Clone(), cancel: p.cancel, after: p.after}
}
func (p *cancelPolicy) Uncacheable() {}
func (p *cancelPolicy) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	p.calls++
	if p.calls == p.after {
		p.cancel()
	}
	return p.inner.Decide(ctx)
}

// TestBatchErrorIsTyped pins the error taxonomy on the batch path: the
// fail-fast error is a *JobError carrying the failed job's index and
// config, and its chain exposes soc.ErrInvalidConfig.
func TestBatchErrorIsTyped(t *testing.T) {
	jobs := mixedJobs(t)[:3]
	bad := jobs[1]
	bad.Config.Duration = -1 * sim.Second
	jobs[1] = bad

	_, err := New(WithParallelism(2)).RunBatch(jobs)
	if err == nil {
		t.Fatal("batch with invalid job returned no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("batch error %T does not unwrap to *JobError", err)
	}
	if je.Index != 1 {
		t.Fatalf("JobError.Index = %d, want 1", je.Index)
	}
	if je.Config.Workload.Name != bad.Config.Workload.Name {
		t.Fatalf("JobError.Config names workload %q, want %q", je.Config.Workload.Name, bad.Config.Workload.Name)
	}
	if !errors.Is(err, soc.ErrInvalidConfig) {
		t.Fatalf("invalid-config job error %v does not wrap soc.ErrInvalidConfig", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("validation failure must not read as cancellation")
	}
}

// TestStreamPerJobErrors pins the streaming error contract: a failed
// job arrives as a JobResult with a *JobError and the remaining jobs
// still run to completion.
func TestStreamPerJobErrors(t *testing.T) {
	jobs := mixedJobs(t)[:4]
	bad := jobs[2]
	bad.Config.Duration = -1 * sim.Second
	jobs[2] = bad
	jobs = append(jobs, Job{}) // nil policy

	var failed, ok int
	for jr := range New(WithParallelism(2)).Stream(context.Background(), jobs) {
		if jr.Err == nil {
			ok++
			continue
		}
		failed++
		var je *JobError
		if !errors.As(jr.Err, &je) || je.Index != jr.Index {
			t.Fatalf("job %d error %v is not a matching *JobError", jr.Index, jr.Err)
		}
		if !errors.Is(jr.Err, soc.ErrInvalidConfig) {
			t.Fatalf("job %d error %v does not wrap soc.ErrInvalidConfig", jr.Index, jr.Err)
		}
	}
	if failed != 2 || ok != len(jobs)-2 {
		t.Fatalf("stream with 2 bad jobs delivered %d failures / %d successes, want 2 / %d", failed, ok, len(jobs)-2)
	}
}

// TestStreamBoundedResultMemory runs a kilojob generated-workload
// sweep through Stream with a tiny worker pool and verifies every job
// arrives exactly once — the acceptance-criteria shape (the O(
// parallelism) memory claim is structural: Stream holds no result
// slice, and with the cache off nothing else accumulates; this test
// pins the delivery contract at that scale). Skipped in -short runs.
func TestStreamBoundedResultMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("kilojob sweep")
	}
	jobs := generatedJobs(t, 1000)
	e := New(WithParallelism(4), WithCache(false))
	seen := make([]bool, len(jobs))
	n := 0
	for jr := range e.Stream(context.Background(), jobs) {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", jr.Index, jr.Err)
		}
		if seen[jr.Index] {
			t.Fatalf("job %d delivered twice", jr.Index)
		}
		seen[jr.Index] = true
		n++
	}
	if n != len(jobs) {
		t.Fatalf("delivered %d of %d jobs", n, len(jobs))
	}
	if in := runnersInFlight.Load(); in != 0 {
		t.Fatalf("%d Runners still checked out", in)
	}
}
