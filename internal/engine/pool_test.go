package engine

import (
	"reflect"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// poolJobs builds a heterogeneous batch that forces recycled platforms
// to absorb every kind of config change: workload class, TDP, sample
// interval, fast-path knobs, power tracing, and (via RecordEvents) the
// fresh-assembly fallback.
func poolJobs(t *testing.T) []Job {
	t.Helper()
	mk := func(wl workload.Workload, p soc.Policy, mut func(*soc.Config)) Job {
		cfg := soc.DefaultConfig()
		cfg.Workload = wl
		cfg.Policy = p
		cfg.Duration = 150 * sim.Millisecond
		if mut != nil {
			mut(&cfg)
		}
		return Job{Config: cfg}
	}
	spec := func(name string) workload.Workload {
		w, err := workload.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return []Job{
		mk(spec("473.astar"), policy.NewSysScaleDefault(), nil),
		mk(spec("470.lbm"), policy.NewBaseline(), func(c *soc.Config) { c.TDP = 3.5 }),
		mk(workload.GraphicsSuite()[0], policy.NewSysScaleDefault(), nil),
		mk(workload.BatterySuite()[0], policy.NewCoScaleRedist(), func(c *soc.Config) {
			c.SampleInterval = 500 * sim.Microsecond
		}),
		mk(workload.Stream(), policy.NewBaseline(), func(c *soc.Config) { c.DisableTickMemo = true }),
		mk(spec("403.gcc"), policy.NewSysScaleDefault(), func(c *soc.Config) { c.DisableSpanBatching = true }),
		mk(spec("400.perlbench"), policy.NewMemScaleRedist(), func(c *soc.Config) { c.TracePower = true }),
		mk(spec("429.mcf"), policy.NewSysScaleDefault(), func(c *soc.Config) { c.RecordEvents = true }),
	}
}

// TestPooledPlatformReuseBitIdentical proves the engine's platform
// pooling contract: with caching off (every job simulates), repeated
// batches at several parallelism levels — which maximize runner churn
// and reuse — return results bit-identical to bare soc.Run. Run under
// -race (as CI does) this also proves the pool is race-clean.
func TestPooledPlatformReuseBitIdentical(t *testing.T) {
	jobs := poolJobs(t)

	want := make([]soc.Result, len(jobs))
	for i, j := range jobs {
		cfg := j.Config
		cfg.Policy = cfg.Policy.Clone()
		r, err := soc.Run(cfg)
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		want[i] = r
	}

	for _, par := range []int{1, 4, 16} {
		e := New(WithParallelism(par), WithCache(false))
		for round := 0; round < 3; round++ {
			got, err := e.RunBatch(jobs)
			if err != nil {
				t.Fatalf("parallel=%d round=%d: %v", par, round, err)
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("parallel=%d round=%d job %d (%s/%s): pooled engine result diverges from soc.Run",
						par, round, i, jobs[i].Config.Workload.Name, jobs[i].Config.Policy.Name())
				}
			}
		}
	}
}
