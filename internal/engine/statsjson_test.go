package engine

import (
	"encoding/json"
	"sync"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// TestStatsJSONStable pins the machine-readable form of the stats
// snapshot: snake_case keys, every counter present. The sweep
// service's /v1/stats endpoint and the CLIs' -stats-json lines are
// parsed by scripts (the CI smoke greps exact fields), so a renamed or
// dropped key is a wire-format break, not a refactor.
func TestStatsJSONStable(t *testing.T) {
	b, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"entries", "hits", "misses", "evictions",
		"span_hits", "span_misses", "span_entries", "span_dropped",
		"disk_hits", "disk_misses", "disk_errors", "disk_bytes", "disk_degraded",
		"retries", "panics",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("stats JSON missing key %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("stats JSON has %d keys, want %d: %s", len(m), len(want), b)
	}
}

// TestStatsSnapshotRaceClean hammers CacheStats (and its JSON
// rendering) while batches mutate every counter group — result LRU,
// span cache, retries — under -race. CacheStats is the documented
// race-safe snapshot accessor for concurrent servers; this is the test
// that keeps it honest.
func TestStatsSnapshotRaceClean(t *testing.T) {
	e := New(WithParallelism(4))
	cfg := soc.DefaultConfig()
	cfg.Policy = policy.NewSysScaleDefault()
	cfg.Duration = 50 * sim.Millisecond

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := e.CacheStats()
			if _, err := json.Marshal(st); err != nil {
				t.Errorf("marshal stats: %v", err)
				return
			}
		}
	}()

	suite := workload.SPECSuite()
	for round := 0; round < 3; round++ {
		var jobs []Job
		for _, w := range suite {
			c := cfg
			c.Workload = w
			jobs = append(jobs, Job{Config: c})
		}
		if _, err := e.RunBatch(jobs); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	st := e.CacheStats()
	if st.Misses == 0 {
		t.Fatal("batches ran but Misses == 0; snapshot not observing the engine")
	}
}
