package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

func sweepFixture(t *testing.T) *Sweep {
	t.Helper()
	return NewSweep().
		Policies(policy.NewBaseline(), policy.NewSysScaleDefault()).
		Workloads(mixedSuite(t)...).
		Configure(func(c *soc.Config) { c.Duration = 300 * sim.Millisecond })
}

// TestSweepConfigsLayout pins the cross-product contract: workload-
// major order, base template preserved per cell, Configure before
// ConfigureCell.
func TestSweepConfigsLayout(t *testing.T) {
	ws := mixedSuite(t)
	base := soc.DefaultConfig()
	base.TDP = 7
	s := NewSweep().
		Base(base).
		Policies(policy.NewBaseline(), policy.NewSysScaleDefault()).
		Workloads(ws...).
		Configure(func(c *soc.Config) { c.Duration = 300 * sim.Millisecond }).
		ConfigureCell(func(_ workload.Workload, pi int, c *soc.Config) {
			if pi == 1 {
				c.FixedCoreFreq = 1.2 * vf.GHz
			}
		})
	cfgs := s.Configs()
	if len(cfgs) != 2*len(ws) {
		t.Fatalf("cross product has %d configs, want %d", len(cfgs), 2*len(ws))
	}
	for wi, w := range ws {
		for pi := 0; pi < 2; pi++ {
			c := cfgs[wi*2+pi]
			if c.Workload.Name != w.Name {
				t.Fatalf("cell (%d,%d) carries workload %q, want %q", wi, pi, c.Workload.Name, w.Name)
			}
			if c.TDP != 7 {
				t.Fatalf("cell (%d,%d) lost the base template TDP", wi, pi)
			}
			if c.Duration != 300*sim.Millisecond {
				t.Fatalf("cell (%d,%d) missed the Configure hook", wi, pi)
			}
			if pin := c.FixedCoreFreq; (pi == 1) != (pin != 0) {
				t.Fatalf("cell (%d,%d) has FixedCoreFreq %v: ConfigureCell misapplied", wi, pi, pin)
			}
		}
	}
}

// TestSweepMatchesRunBatch proves the sweep is sugar, not semantics:
// its ResultSet holds exactly the results of batching its own Configs.
func TestSweepMatchesRunBatch(t *testing.T) {
	s := sweepFixture(t)
	e := New(WithParallelism(4))
	rs, err := s.Run(e)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := s.Configs()
	jobs := make([]Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = Job{Config: c}
	}
	flat, err := New(WithParallelism(1)).RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for wi := range rs.Workloads {
		for pi := range rs.Policies {
			if !reflect.DeepEqual(rs.Result(wi, pi), flat[wi*len(rs.Policies)+pi]) {
				t.Fatalf("sweep cell (%d,%d) differs from the equivalent batch", wi, pi)
			}
		}
	}
	if !reflect.DeepEqual(rs.Col(1)[2], rs.Result(2, 1)) || !reflect.DeepEqual(rs.Row(2)[1], rs.Result(2, 1)) {
		t.Fatal("Row/Col accessors disagree with Result")
	}
}

// TestSweepComparisons pins the comparison-matrix helpers against the
// scalar helpers they wrap.
func TestSweepComparisons(t *testing.T) {
	rs, err := sweepFixture(t).Run(New())
	if err != nil {
		t.Fatal(err)
	}
	perf := rs.PerfImprovement(0)
	power := rs.PowerReduction(0)
	edp := rs.EDPImprovement(0)
	for wi := range rs.Workloads {
		base, sys := rs.Result(wi, 0), rs.Result(wi, 1)
		if perf.Values[1][wi] != soc.PerfImprovement(sys, base) ||
			power.Values[1][wi] != soc.PowerReduction(sys, base) ||
			edp.Values[1][wi] != soc.EDPImprovement(sys, base) {
			t.Fatalf("comparison matrices disagree with scalar helpers at workload %d", wi)
		}
		if perf.Values[0][wi] != 0 {
			t.Fatalf("baseline-vs-baseline perf improvement is %v, want 0", perf.Values[0][wi])
		}
	}

	wName := rs.Workloads[1].Name
	got, ok := perf.Value("sysscale", wName)
	if !ok || got != perf.Values[1][1] {
		t.Fatalf("Value(sysscale, %s) = (%v, %v), want (%v, true)", wName, got, ok, perf.Values[1][1])
	}
	if _, ok := perf.Value("sysscale", "no-such-workload"); ok {
		t.Fatal("Value resolved a nonexistent workload")
	}

	var mean float64
	for _, v := range perf.Values[1] {
		mean += v
	}
	mean /= float64(len(perf.Values[1]))
	if rm := perf.RowMean(1); rm != mean {
		t.Fatalf("RowMean = %v, want %v", rm, mean)
	}
}

// TestSweepEmptyAxesRejected pins the typed error on a degenerate
// sweep.
func TestSweepEmptyAxesRejected(t *testing.T) {
	if _, err := NewSweep().Policies(policy.NewBaseline()).Run(New()); !errors.Is(err, soc.ErrInvalidConfig) {
		t.Fatalf("workload-less sweep returned %v, want ErrInvalidConfig", err)
	}
	if _, err := NewSweep().Workloads(mixedSuite(t)...).Run(New()); !errors.Is(err, soc.ErrInvalidConfig) {
		t.Fatalf("policy-less sweep returned %v, want ErrInvalidConfig", err)
	}
}

// TestSweepCancellation: a sweep on a cancelled context reports
// context.Canceled like any batch.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sweepFixture(t).RunContext(ctx, New()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}
