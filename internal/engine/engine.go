// Package engine is the concurrent simulation run service: it executes
// batches of independent soc.Run jobs on a bounded worker pool and
// memoizes results behind a canonical config fingerprint.
//
// Every simulation in this repository is a pure function of its
// soc.Config, so batches parallelize trivially — except that policies
// are stateful (soc.Run resets and then mutates them), which makes
// sharing one Policy value across goroutines a data race. The engine
// therefore clones the configured policy once per job via
// soc.Policy.Clone and leaves the caller's instance untouched.
//
// The primitive execution surface is the streaming core (runJobs):
// jobs go out to the worker pool and one JobResult per job is
// delivered as each simulation completes. Stream exposes it on a
// channel, so an unbounded sweep runs in O(parallelism) result
// memory; RunBatch/RunBatchContext are thin collectors over the same
// core that deliver straight into the ordered results slice (no
// channel handoff on the batch hot path) and restore fail-fast
// semantics. All entry points accept a context: cancellation stops
// feeding queued work, unwinds in-flight simulations within one
// policy epoch, and returns every pooled platform cleanly.
//
// Results come back in input order (batch paths) or tagged with their
// input index (Stream) regardless of worker count, and a batch that
// contains the same configuration several times simulates it once. The
// cache persists across batches, so an experiment harness that re-runs
// the same baselines for several figures pays for them once.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sysscale/internal/diskcache"
	"sysscale/internal/soc"
	"sysscale/internal/spec"
)

// Job is one unit of batch work: a fully-specified simulation run.
type Job struct {
	Config soc.Config
	// Timeout, when positive, bounds this job's simulation wall time,
	// overriding the engine-wide WithJobTimeout. A job that exceeds it
	// fails with an ErrJobTimeout-classed *JobError (never confused
	// with batch-cancellation collateral). Jobs coalesced onto an
	// identical in-batch sibling run under the first sibling's timeout.
	Timeout time.Duration
}

// FromSpec builds a Job from a serialized job spec, resolving the
// workload reference and the policy registry name and validating the
// result (spec.Decode). The job's cache identity is the spec's
// fingerprint: running a decoded spec and re-running the same file hit
// the same cache entry.
func FromSpec(job spec.Job) (Job, error) {
	cfg, err := spec.Decode(job)
	if err != nil {
		return Job{}, err
	}
	return Job{Config: cfg}, nil
}

// JobResult is one job's outcome as delivered by Stream: the input
// index it belongs to, and either the Result or a non-nil Err (a
// *JobError, whose chain includes soc.ErrInvalidConfig for rejected
// configs and ctx.Err() for cancelled runs).
type JobResult struct {
	Index  int
	Result soc.Result
	Err    error
}

// JobError reports which batch job failed and why. It wraps the
// underlying cause, so errors.Is/As see through it:
//
//	errors.Is(err, soc.ErrInvalidConfig) // bad configuration
//	errors.Is(err, context.Canceled)     // job unwound by cancellation
//	var je *engine.JobError
//	errors.As(err, &je)                  // je.Index, je.Config
type JobError struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Config is the failed job's configuration.
	Config soc.Config
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *JobError) Error() string {
	pol := "<nil>"
	if e.Config.Policy != nil {
		pol = e.Config.Policy.Name()
	}
	return fmt.Sprintf("engine: job %d (%s under %s): %v", e.Index, e.Config.Workload.Name, pol, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// ErrJobTimeout classes a job that exceeded its own deadline
// (WithJobTimeout or Job.Timeout). It is deliberately a plain sentinel
// — NOT context.DeadlineExceeded — so the batch paths' cancellation-
// collateral filters can never mistake a job's own timeout for the
// batch being cancelled: a timed-out job is a genuine, reported
// failure. Test with errors.Is(err, ErrJobTimeout).
var ErrJobTimeout = errors.New("engine: job deadline exceeded")

// ErrDiskDegraded reports the disk tier's circuit breaker standing
// open: the tier is being skipped (no I/O issued) until a probe
// succeeds. Surfaced by DiskCacheError while degraded.
var ErrDiskDegraded = errors.New("engine: disk cache degraded (circuit breaker open)")

// PanicError is a worker panic captured by the engine's panic
// isolation: the policy (or simulator) panicked mid-run, the panic was
// recovered on the worker, the possibly-corrupt platform was discarded
// instead of pooled, and the panic reads as this error on the job that
// caused it — the batch, the process, and every other job survive.
// Retrieve it with errors.As; it is never retried (a panicking policy
// is a bug, not weather).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery
	// (runtime/debug.Stack).
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: worker panic: %v", p.Value)
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism bounds the number of simulations in flight. n <= 0
// selects GOMAXPROCS, the default.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithCache enables or disables result memoization and in-batch
// coalescing (enabled by default). Disable it to measure raw
// simulation throughput in benchmarks. The span cache is governed
// separately (it accelerates simulations rather than skipping them);
// disable it per-run with soc.Config.DisableSpanCache.
func WithCache(enabled bool) Option {
	return func(e *Engine) { e.cacheOn = enabled }
}

// DefaultCacheSize is the result cache's default entry bound.
const DefaultCacheSize = 8192

// WithCacheSize bounds the result cache to n entries, evicted least-
// recently-used (n <= 0 selects DefaultCacheSize). The cache is always
// bounded: an unbounded sweep of distinct configs cycles the cache
// instead of growing it, so long-lived sweep services no longer need
// ClearCache discipline to bound memory.
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheSize = n }
}

// WithDiskCache layers the persistent on-disk result tier (see
// internal/diskcache) under the in-memory LRU, rooted at dir. Results
// computed by any engine — in this process or another — with the same
// canonical config fingerprint are served from disk across process
// restarts, bit-identically (the entry payload is an exact binary
// encoding of the soc.Result). Corrupt or truncated entries read as
// misses, are pruned, and count in Stats.DiskErrors; they never poison
// a result or abort a batch. Uncacheable jobs bypass the tier like
// they bypass the LRU.
//
// The store is opened by New; an open failure (unwritable dir) leaves
// the engine fully functional without the disk tier and is reported by
// DiskCacheError — callers wiring a user-supplied directory should
// check it and fail loudly.
func WithDiskCache(dir string) Option {
	return func(e *Engine) { e.diskDir = dir }
}

// WithDiskTier installs tier directly as the persistent result tier,
// bypassing WithDiskCache's store construction. It exists for fault
// injection (internal/faultinject wraps a real store with a
// deterministic fault plan) and for tests that need a scripted tier;
// production callers want WithDiskCache. The tier is still wrapped by
// the circuit breaker unless WithDiskBreaker disables it.
func WithDiskTier(tier diskcache.Tier) Option {
	return func(e *Engine) { e.diskTier = tier }
}

// WithDiskBreaker configures the disk tier's circuit breaker, which is
// on by default (diskcache.DefaultBreakerThreshold consecutive I/O
// failures trip the tier open; diskcache.DefaultProbeInterval between
// heal probes). threshold == 0 disables the breaker entirely — every
// job then pays the tier's I/O errors individually, which is what
// exact-accounting fault-injection tests want. threshold < 0 or
// probe <= 0 select the defaults for that parameter.
func WithDiskBreaker(threshold int, probe time.Duration) Option {
	return func(e *Engine) {
		e.breakerThreshold = threshold
		e.breakerProbe = probe
	}
}

// WithJobTimeout bounds every job's simulation wall time (overridable
// per job via Job.Timeout; d <= 0 means no engine-wide bound, the
// default). A job over its deadline unwinds within one policy epoch,
// returns its pooled platform, and fails with an ErrJobTimeout-classed
// *JobError — a genuine per-job failure, distinct from batch
// cancellation (fail-fast RunBatch reports it; Stream delivers it;
// RunBatchPartial records it).
func WithJobTimeout(d time.Duration) Option {
	return func(e *Engine) { e.jobTimeout = d }
}

// WithRetry re-runs a failed job up to n extra attempts with
// exponential backoff starting at backoff (doubling per attempt;
// backoff <= 0 retries immediately). Only transient-classed failures
// are retried: errors exposing Transient() bool true (the injected
// I/O taxonomy), plus timeouts when WithRetryTimeouts opts in.
// Configuration errors, panics, cancellation, and timeouts (by
// default) are never retried — deterministic failures would only fail
// identically n more times. Retries are counted in Stats.Retries.
func WithRetry(n int, backoff time.Duration) Option {
	return func(e *Engine) {
		e.retries = n
		e.backoff = backoff
	}
}

// WithRetryTimeouts opts ErrJobTimeout failures into retry
// classification (off by default: the simulator is deterministic, so a
// timeout usually recurs — opt in when timeouts come from environmental
// load, e.g. a shared CI host).
func WithRetryTimeouts(enabled bool) Option {
	return func(e *Engine) { e.retryTimeouts = enabled }
}

// TransientError is the classification interface the retry layer
// consults: a failure whose Transient() reports true (reached via
// errors.As, so wrapping preserves it) is eligible for WithRetry
// re-runs. The PR 5 error taxonomy stays authoritative for everything
// else — config errors, panics, cancellation and timeouts have fixed,
// non-retryable classes.
type TransientError interface {
	error
	Transient() bool
}

// Uncacheable is an optional interface a policy implements to opt out
// of memoization and coalescing. Policies whose Decide has observable
// side effects beyond the returned decision (telemetry recorders such
// as the experiment harness's step watcher) must implement it —
// serving their run from cache would silently skip the observation.
// Wrapper policies should expose `Unwrap() soc.Policy` so the engine
// can see through them to a wrapped uncacheable policy.
type Uncacheable interface {
	Uncacheable()
}

// Stats is a snapshot of the engine's cache behaviour. It is plain
// data, safe to retain and JSON-serializable (snake_case field names)
// — CacheStats is the race-safe snapshot accessor, and its value is
// what the sweep service's /v1/stats endpoint and the CLIs' stats
// lines emit.
type Stats struct {
	// Entries is the number of memoized results.
	Entries int `json:"entries"`
	// Hits counts jobs served from cache (including jobs coalesced
	// onto an identical in-batch sibling).
	Hits int `json:"hits"`
	// Misses counts jobs that executed a simulation.
	Misses int `json:"misses"`
	// Evictions counts results dropped by the LRU bound.
	Evictions int `json:"evictions"`

	// SpanHits/SpanMisses/SpanEntries snapshot the engine's cross-job
	// span cache: spans applied as cached deltas versus integrated in
	// full, and distinct spans resident. One job contributes many
	// spans, so these counters run far ahead of the result-level ones.
	SpanHits    int `json:"span_hits"`
	SpanMisses  int `json:"span_misses"`
	SpanEntries int `json:"span_entries"`
	// SpanDropped counts span integrations not inserted because the
	// span cache was full — the saturation signal. A steadily rising
	// SpanDropped means the sweep's working set of distinct spans
	// exceeds the cache bound and cross-job reuse is degrading
	// silently; raise soc.NewSpanCache's bound (or accept the miss
	// traffic) rather than ignoring it.
	SpanDropped int `json:"span_dropped"`

	// DiskHits/DiskMisses/DiskErrors/DiskBytes snapshot the persistent
	// on-disk result tier (WithDiskCache): results served from disk
	// into the LRU, lookups that found no entry, corrupt or unreadable
	// entries degraded to misses (and pruned) plus failed writes, and
	// the store's current entry footprint. All zero when no disk tier
	// is configured.
	DiskHits   int   `json:"disk_hits"`
	DiskMisses int   `json:"disk_misses"`
	DiskErrors int   `json:"disk_errors"`
	DiskBytes  int64 `json:"disk_bytes"`
	// DiskDegraded reports the disk tier's circuit breaker standing
	// open: consecutive I/O failures tripped the tier, jobs are
	// skipping it entirely (skipped lookups count as DiskMisses), and
	// it stays skipped until a probe succeeds. See WithDiskBreaker.
	DiskDegraded bool `json:"disk_degraded"`

	// Retries counts extra attempts spent re-running transient-classed
	// failures (WithRetry); Panics counts worker panics recovered into
	// PanicError by the engine's panic isolation.
	Retries int `json:"retries"`
	Panics  int `json:"panics"`
}

// cacheKey is a config fingerprint (fingerprint.go): a sha256 digest,
// comparable and heap-free.
type cacheKey = [32]byte

// cacheEntry is one LRU-resident result.
type cacheEntry struct {
	key cacheKey
	res soc.Result
}

// Engine executes batches of independent simulations on a bounded
// worker pool with a memoizing result cache. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use.
type Engine struct {
	parallelism int
	cacheOn     bool
	cacheSize   int

	// spans is the engine's cross-job span cache, threaded into every
	// pooled Runner the engine checks out: spans integrated by one job
	// are applied as O(1) deltas by every later job whose programming
	// matches (see soc.SpanCache).
	spans *soc.SpanCache

	// disk is the persistent second result tier (nil without
	// WithDiskCache/WithDiskTier): consulted under the in-memory LRU on
	// a miss, written through on every cacheable simulation, and
	// normally wrapped by the circuit breaker (breaker non-nil) so a
	// dying disk degrades the tier instead of grinding an error into
	// every job. diskErr records a failed store open; the engine then
	// runs without the tier.
	disk     diskcache.Tier
	breaker  *diskcache.Breaker
	diskTier diskcache.Tier
	diskDir  string
	diskErr  error

	breakerThreshold int
	breakerProbe     time.Duration

	jobTimeout    time.Duration
	retries       int
	backoff       time.Duration
	retryTimeouts bool

	mu sync.Mutex
	// cache + order form the size-capped LRU over results: cache maps
	// fingerprints to their list elements; order is most-recently-used
	// first.
	cache map[cacheKey]*list.Element
	order *list.List
	stats Stats
}

// New returns an engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{cacheOn: true, breakerThreshold: -1, breakerProbe: -1}
	for _, o := range opts {
		o(e)
	}
	if e.cacheSize <= 0 {
		e.cacheSize = DefaultCacheSize
	}
	e.cache = make(map[cacheKey]*list.Element)
	e.order = list.New()
	e.spans = soc.NewSpanCache(0)

	tier := e.diskTier
	if tier == nil && e.diskDir != "" {
		store, err := diskcache.Open(e.diskDir)
		if err != nil {
			e.diskErr = err
		} else {
			tier = store
		}
	}
	if tier != nil && e.breakerThreshold != 0 {
		// Breaker on by default (threshold -1 = "unset" selects the
		// diskcache defaults); WithDiskBreaker(0, _) runs the tier bare.
		e.breaker = diskcache.NewBreaker(tier, e.breakerThreshold, e.breakerProbe)
		tier = e.breaker
	}
	e.disk = tier
	return e
}

// DiskCacheError reports the disk tier's health: non-nil when
// WithDiskCache failed to open its store, or when the tier's circuit
// breaker is currently open (errors.Is(err, ErrDiskDegraded)) because
// consecutive I/O failures tripped it. Nil otherwise, including when no
// disk tier was requested. The engine stays fully functional in every
// case — results come from memory and simulation — but callers wiring a
// user-supplied cache directory should surface this loudly instead of
// letting every run silently re-simulate.
func (e *Engine) DiskCacheError() error {
	if e.diskErr != nil {
		return e.diskErr
	}
	if e.breaker != nil && e.breaker.Degraded() {
		return fmt.Errorf("%w after %d trip(s)", ErrDiskDegraded, e.breaker.Trips())
	}
	return nil
}

// cacheGet looks key up in the LRU, refreshing its recency on a hit.
// Callers hold e.mu.
func (e *Engine) cacheGet(key cacheKey) (soc.Result, bool) {
	el, ok := e.cache[key]
	if !ok {
		return soc.Result{}, false
	}
	e.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// cachePut inserts (or refreshes) a result, evicting the least
// recently used entry beyond the size bound. Callers hold e.mu.
func (e *Engine) cachePut(key cacheKey, res soc.Result) {
	if el, ok := e.cache[key]; ok {
		el.Value.(*cacheEntry).res = res
		e.order.MoveToFront(el)
		return
	}
	e.cache[key] = e.order.PushFront(&cacheEntry{key: key, res: res})
	for len(e.cache) > e.cacheSize {
		back := e.order.Back()
		e.order.Remove(back)
		delete(e.cache, back.Value.(*cacheEntry).key)
		e.stats.Evictions++
	}
}

// Parallelism returns the effective worker bound.
func (e *Engine) Parallelism() int {
	if e.parallelism > 0 {
		return e.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// CacheStats returns a snapshot of the cache counters — the result
// LRU's and the cross-job span cache's.
func (e *Engine) CacheStats() Stats {
	e.mu.Lock()
	s := e.stats
	s.Entries = len(e.cache)
	e.mu.Unlock()
	sc := e.spans.Stats()
	s.SpanHits = sc.Hits
	s.SpanMisses = sc.Misses
	s.SpanEntries = sc.Entries
	s.SpanDropped = sc.Dropped
	if e.disk != nil {
		ds := e.disk.Stats()
		s.DiskHits = ds.Hits
		s.DiskMisses = ds.Misses
		s.DiskErrors = ds.Errors
		s.DiskBytes = ds.Bytes
		s.DiskDegraded = ds.Degraded
	}
	return s
}

// ClearCache drops every memoized result and every cached span delta
// (the hit/miss counters are kept). Both caches are bounded, so this
// is about reclaiming memory promptly, not about preventing growth.
// The on-disk tier is untouched: persistence across processes is its
// point; delete the cache directory to reclaim it.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	e.cache = make(map[cacheKey]*list.Element)
	e.order = list.New()
	e.mu.Unlock()
	e.spans.Clear()
}

// Run simulates one configuration through the engine (memoized). It is
// the engine-backed replacement for soc.Run and can be passed anywhere
// a soc.RunFunc is expected.
func (e *Engine) Run(cfg soc.Config) (soc.Result, error) {
	return e.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: a cancelled run unwinds within
// one policy epoch and returns ctx.Err().
func (e *Engine) RunContext(ctx context.Context, cfg soc.Config) (soc.Result, error) {
	rs, err := e.RunBatchContext(ctx, []Job{{Config: cfg}})
	if err != nil {
		return soc.Result{}, err
	}
	return rs[0], nil
}

// task is one deduplicated simulation: a cache key (valid only when
// cacheable) plus every input index awaiting its result.
type task struct {
	key       cacheKey
	cacheable bool
	indices   []int
}

// RunBatch executes the jobs with bounded parallelism and returns their
// results in input order. The batch is deterministic: the returned
// slice is identical to running each job sequentially through soc.Run,
// whatever the worker count. On the first failure the engine stops
// feeding work, cancels in-flight simulations, and returns a *JobError
// identifying the lowest-indexed failed job; no partial results are
// returned.
func (e *Engine) RunBatch(jobs []Job) ([]soc.Result, error) {
	return e.RunBatchContext(context.Background(), jobs)
}

// RunBatchContext is RunBatch with cancellation: once ctx is done the
// engine stops feeding queued jobs, in-flight simulations unwind
// within one policy epoch, every pooled platform is returned, and the
// call reports ctx.Err() (so errors.Is(err, context.Canceled) holds
// for a cancelled batch).
func (e *Engine) RunBatchContext(ctx context.Context, jobs []Job) ([]soc.Result, error) {
	// Nil-policy jobs are rejected up front — before any simulation
	// runs — preserving the historical RunBatch contract.
	for i, j := range jobs {
		if j.Config.Policy == nil {
			return nil, &JobError{Index: i, Config: j.Config, Err: fmt.Errorf("%w: nil policy", soc.ErrInvalidConfig)}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Collect the streaming core with fail-fast, delivering straight
	// into the results slice (each index is written by exactly one
	// goroutine, so the direct writes need no lock — and no channel
	// handoff, keeping the batch path as fast as it was before the
	// streaming layer existed). The first real job failure cancels the
	// batch context, which stops the feed and unwinds in-flight runs;
	// those unwound siblings report context.Canceled — collateral of
	// the fail-fast, not root causes — so they never displace the
	// genuine error. Among genuine failures the lowest-indexed
	// delivered job wins.
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]soc.Result, len(jobs))
	var (
		errMu    sync.Mutex
		firstErr *JobError
	)
	e.runJobs(bctx, jobs, func(jr JobResult) bool {
		switch {
		case jr.Err == nil:
			results[jr.Index] = jr.Result
		case errors.Is(jr.Err, context.Canceled) || errors.Is(jr.Err, context.DeadlineExceeded):
			// Unwound by cancellation (ours or the caller's).
		default:
			var je *JobError
			if !errors.As(jr.Err, &je) {
				je = &JobError{Index: jr.Index, Config: jobs[jr.Index].Config, Err: jr.Err}
			}
			errMu.Lock()
			if firstErr == nil || je.Index < firstErr.Index {
				firstErr = je
			}
			errMu.Unlock()
			cancel()
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Stream executes the jobs with bounded parallelism and delivers one
// JobResult per job on the returned channel as each completes
// (completion order, not input order — JobResult.Index identifies the
// job). Results are not accumulated anywhere: a sweep of any size runs
// in O(parallelism) result memory, modulo the engine cache — itself
// bounded (WithCacheSize), so even an unbounded config space cycles
// cache memory instead of growing it.
//
// A failed job delivers a JobResult with a *JobError instead of
// killing the stream; jobs are independent and the remaining jobs
// still run. The channel is closed once every job has been delivered,
// or — when ctx is cancelled — once queued jobs have been abandoned
// and in-flight simulations have unwound (within one policy epoch) and
// returned their pooled platforms. Jobs overtaken by the cancellation
// are dropped, never delivered: an error on the channel is always a
// genuine job failure, not cancellation collateral.
//
// The consumer contract: either drain the channel to its close, or
// cancel ctx (after which the channel closes on its own, so further
// draining is optional). Breaking out of the receive loop without
// cancelling ctx leaks the stream's worker goroutines for the life of
// the process — they block delivering into a channel nobody reads.
func (e *Engine) Stream(ctx context.Context, jobs []Job) <-chan JobResult {
	// The channel carries a small buffer — one slot per worker — to
	// soften the producer/consumer handoff; memory stays
	// O(parallelism).
	out := make(chan JobResult, e.Parallelism())
	go func() {
		defer close(out)
		e.runJobs(ctx, jobs, func(jr JobResult) bool {
			if jr.Err != nil && (errors.Is(jr.Err, context.Canceled) || errors.Is(jr.Err, context.DeadlineExceeded)) {
				// Cancellation collateral: an in-flight job unwound by
				// ctx. Drop it deterministically — without this check
				// the select below delivers or drops at random while
				// both cases are ready — and stop delivering (the only
				// source of such errors is ctx itself being done).
				return false
			}
			select {
			case out <- jr:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return out
}

// RunBatchPartial executes the jobs with bounded parallelism and
// returns one JobResult per job, in input order, never failing the
// batch: each job independently carries its Result or its *JobError.
// This is the sweep-service shape — one bad job (invalid config,
// panic, timeout) must not void a 10k-job sweep — where RunBatch's
// fail-fast contract is for callers who treat any failure as fatal.
//
// Cancellation still stops the batch: jobs overtaken by ctx — never
// started, or unwound in flight — report ctx's error (cancellation
// collateral, identifiable with errors.Is(err, context.Canceled) /
// context.DeadlineExceeded), while jobs that genuinely failed keep
// their own errors. The slice always has len(jobs) entries.
func (e *Engine) RunBatchPartial(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	delivered := make([]bool, len(jobs))
	// Each index is delivered (and therefore written) by exactly one
	// goroutine, so the direct writes need no lock; runJobs returning
	// is the happens-before edge that publishes them.
	e.runJobs(ctx, jobs, func(jr JobResult) bool {
		out[jr.Index] = jr
		delivered[jr.Index] = true
		return true
	})
	for i := range out {
		if !delivered[i] {
			// Never delivered: the batch was cancelled before this job
			// completed. Report the collateral explicitly.
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			out[i] = JobResult{Err: &JobError{Index: i, Config: jobs[i].Config, Err: err}}
		}
		out[i].Index = i
	}
	return out
}

// runJobs is the shared streaming core behind Stream, RunBatchContext
// and RunBatchPartial: resolve cache hits, coalesce in-batch duplicates,
// fan the remaining tasks out over the worker pool, and hand every
// job's JobResult to deliver as it completes. deliver is called
// concurrently from the workers (and from the resolve loop for cache
// hits); it returns false to stop deliveries early. runJobs returns
// once every worker has finished — on cancellation that means queued
// tasks were abandoned, in-flight simulations unwound within one
// policy epoch, and every pooled Runner is back in the pool.
func (e *Engine) runJobs(ctx context.Context, jobs []Job, deliver func(JobResult) bool) {
	// Resolve cache hits (delivered immediately) and coalesce in-batch
	// duplicates so each unique configuration simulates once.
	tasks := make([]*task, 0, len(jobs))
	byKey := make(map[cacheKey]*task)
	for i, j := range jobs {
		if ctx.Err() != nil {
			return
		}
		if j.Config.Policy == nil {
			err := &JobError{Index: i, Config: j.Config, Err: fmt.Errorf("%w: nil policy", soc.ErrInvalidConfig)}
			if !deliver(JobResult{Index: i, Err: err}) {
				return
			}
			continue
		}
		if !e.cacheOn {
			tasks = append(tasks, &task{indices: []int{i}})
			continue
		}
		key, cacheable := fingerprint(j.Config)
		if !cacheable {
			tasks = append(tasks, &task{indices: []int{i}})
			continue
		}
		e.mu.Lock()
		r, hit := e.cacheGet(key)
		if hit {
			e.stats.Hits++
		}
		e.mu.Unlock()
		if hit {
			if !deliver(JobResult{Index: i, Result: cloneResult(r)}) {
				return
			}
			continue
		}
		if t, ok := byKey[key]; ok {
			t.indices = append(t.indices, i)
			e.mu.Lock()
			e.stats.Hits++
			e.mu.Unlock()
			continue
		}
		// Memory miss, first sighting in this batch: consult the
		// persistent tier. A disk hit is promoted into the LRU so the
		// rest of the sweep pays memory prices; it counts as DiskHits,
		// not Hits (the tiers are reported separately).
		if e.disk != nil {
			// The error is diagnostic only (the tier counts it, and the
			// breaker watches it); found is authoritative and every
			// failure degrades to a miss here.
			if r, ok, _ := e.disk.Get(key); ok {
				e.mu.Lock()
				e.cachePut(key, r)
				e.mu.Unlock()
				if !deliver(JobResult{Index: i, Result: cloneResult(r)}) {
					return
				}
				continue
			}
		}
		t := &task{key: key, cacheable: true, indices: []int{i}}
		byKey[key] = t
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return
	}

	workers := e.Parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var wg sync.WaitGroup
	work := make(chan *task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				e.execute(ctx, jobs, t, deliver)
			}
		}()
	}
	// Feed in input order; stop feeding once ctx is done (in-flight
	// simulations observe ctx themselves and unwind within one epoch).
feed:
	for _, t := range tasks {
		select {
		case work <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
}

// runnerPool recycles assembled platforms across jobs and batches:
// each worker checks a soc.Runner out for the duration of one
// simulation, so steady-state RunBatch traffic stops paying for MRC
// retraining, component assembly, and per-run slice/map allocations.
// Runners are goroutine-exclusive while checked out, and a recycled
// platform is reset to a state bit-identical with fresh assembly, so
// pooling changes neither determinism nor results. A cancelled run
// returns its Runner like any other — Reset restores a platform
// abandoned mid-run exactly as it restores a completed one.
var runnerPool = sync.Pool{New: func() any { return soc.NewRunner() }}

// runnersInFlight gauges Runners currently checked out of runnerPool.
// It must read zero whenever no simulation is executing — the tests
// use it to prove neither cancellation nor a worker panic can leak a
// pooled Runner.
var runnersInFlight atomic.Int64

// RunnersInFlight reports how many pooled Runners are currently checked
// out for executing simulations, process-wide. It is the engine's leak
// gauge: it must read zero whenever no batch is executing, whatever
// mix of completions, cancellations, timeouts, and panics preceded —
// the fault-injection torture tests assert exactly that.
func RunnersInFlight() int64 { return runnersInFlight.Load() }

// execute runs one task — through the retry layer — and delivers its
// result (or error) to every awaiting input index.
func (e *Engine) execute(ctx context.Context, jobs []Job, t *task, deliver func(JobResult) bool) {
	idx := t.indices[0]
	res, err := e.runJob(ctx, jobs[idx])
	if err != nil {
		for _, i := range t.indices {
			if !deliver(JobResult{Index: i, Err: &JobError{Index: i, Config: jobs[i].Config, Err: err}}) {
				return
			}
		}
		return
	}
	e.mu.Lock()
	e.stats.Misses++
	if t.cacheable {
		e.cachePut(t.key, cloneResult(res))
	}
	e.mu.Unlock()
	if t.cacheable && e.disk != nil {
		// Write-through to the persistent tier (atomic on disk; a
		// failed write counts a DiskError, feeds the breaker, and costs
		// nothing else).
		e.disk.Put(t.key, res)
	}
	for _, i := range t.indices {
		if !deliver(JobResult{Index: i, Result: cloneResult(res)}) {
			return
		}
	}
}

// runJob is the retry layer over runOnce: transient-classed failures
// (see WithRetry) are re-attempted with exponential backoff; every
// other failure — and every failure once attempts are exhausted —
// propagates unchanged.
func (e *Engine) runJob(ctx context.Context, job Job) (soc.Result, error) {
	backoff := e.backoff
	for attempt := 0; ; attempt++ {
		res, err := e.runOnce(ctx, job)
		if err == nil {
			return res, nil
		}
		if attempt >= e.retries || !e.retryable(err) || ctx.Err() != nil {
			return soc.Result{}, err
		}
		e.mu.Lock()
		e.stats.Retries++
		e.mu.Unlock()
		if backoff > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return soc.Result{}, err
			}
			backoff *= 2
		}
	}
}

// retryable classifies one failure for the retry layer: cancellation,
// panics, and configuration errors are never retried; timeouts only
// when WithRetryTimeouts opted in; everything else only when it exposes
// Transient() bool true (TransientError).
func (e *Engine) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrJobTimeout) {
		return e.retryTimeouts
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, soc.ErrInvalidConfig) {
		return false
	}
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// runOnce executes one simulation attempt under the job's deadline with
// full panic isolation. The single deferred block owns the Runner's
// whole lifecycle — gauge decrement, pool return, panic recovery — so
// no return path, early or panicking, can leak a checked-out Runner or
// leave the gauge skewed. A recovered panic discards the Runner (its
// platform may be mid-epoch, mid-mutation — Reset guarantees hold for
// runs that unwound through RunContext, not for arbitrary interrupt
// points) and surfaces as *PanicError; a soc.RunAbort panic is the
// policy-layer error escape hatch and surfaces as its carried error.
func (e *Engine) runOnce(ctx context.Context, job Job) (res soc.Result, err error) {
	cfg := job.Config
	cfg.Policy = cfg.Policy.Clone()
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	if timeout > 0 {
		// The cause brands the deadline as this job's own: soc returns
		// context.Cause at its per-epoch check, so the job fails with
		// ErrJobTimeout while batch cancellation still reads as
		// context.Canceled collateral.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout, ErrJobTimeout)
		defer cancel()
	}

	runner := runnerPool.Get().(*soc.Runner)
	// The pool is shared across Engine instances, so the span cache must
	// be (re-)attached on every checkout — a Runner last driven by a
	// different engine carries that engine's cache.
	runner.SetSpanCache(e.spans)
	runnersInFlight.Add(1)
	defer func() {
		if r := recover(); r != nil {
			// The panic unwound the simulation at an arbitrary point;
			// the platform state is suspect, so the Runner is discarded
			// — the pool assembles a replacement on demand.
			res = soc.Result{}
			if abort, ok := r.(soc.RunAbort); ok {
				err = abort.Err
			} else {
				err = &PanicError{Value: r, Stack: debug.Stack()}
				e.mu.Lock()
				e.stats.Panics++
				e.mu.Unlock()
			}
		} else {
			runnerPool.Put(runner)
		}
		runnersInFlight.Add(-1)
	}()
	return runner.RunContext(ctx, cfg)
}

// cloneResult deep-copies the result's slice fields so cached entries
// and coalesced siblings never alias caller-visible memory.
func cloneResult(r soc.Result) soc.Result {
	c := r
	if r.PointResidency != nil {
		c.PointResidency = append([]float64(nil), r.PointResidency...)
	}
	if r.PowerTrace != nil {
		c.PowerTrace = append([]float64(nil), r.PowerTrace...)
	}
	return c
}
