// Package engine is the concurrent simulation run service: it executes
// batches of independent soc.Run jobs on a bounded worker pool and
// memoizes results behind a canonical config fingerprint.
//
// Every simulation in this repository is a pure function of its
// soc.Config, so batches parallelize trivially — except that policies
// are stateful (soc.Run resets and then mutates them), which makes
// sharing one Policy value across goroutines a data race. The engine
// therefore clones the configured policy once per job via
// soc.Policy.Clone and leaves the caller's instance untouched.
//
// Results come back in input order regardless of worker count, and a
// batch that contains the same configuration several times simulates it
// once. The cache persists across batches, so an experiment harness
// that re-runs the same baselines for several figures pays for them
// once.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"sysscale/internal/soc"
)

// Job is one unit of batch work: a fully-specified simulation run.
type Job struct {
	Config soc.Config
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism bounds the number of simulations in flight. n <= 0
// selects GOMAXPROCS, the default.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithCache enables or disables result memoization and in-batch
// coalescing (enabled by default). Disable it to measure raw
// simulation throughput in benchmarks.
func WithCache(enabled bool) Option {
	return func(e *Engine) { e.cacheOn = enabled }
}

// Uncacheable is an optional interface a policy implements to opt out
// of memoization and coalescing. Policies whose Decide has observable
// side effects beyond the returned decision (telemetry recorders such
// as the experiment harness's step watcher) must implement it —
// serving their run from cache would silently skip the observation.
// Wrapper policies should expose `Unwrap() soc.Policy` so the engine
// can see through them to a wrapped uncacheable policy.
type Uncacheable interface {
	Uncacheable()
}

// Stats is a snapshot of the engine's cache behaviour.
type Stats struct {
	// Entries is the number of memoized results.
	Entries int
	// Hits counts jobs served from cache (including jobs coalesced
	// onto an identical in-batch sibling).
	Hits int
	// Misses counts jobs that executed a simulation.
	Misses int
}

// Engine executes batches of independent simulations on a bounded
// worker pool with a memoizing result cache. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use.
type Engine struct {
	parallelism int
	cacheOn     bool

	mu    sync.Mutex
	cache map[string]soc.Result
	stats Stats
}

// New returns an engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{cacheOn: true, cache: make(map[string]soc.Result)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Parallelism returns the effective worker bound.
func (e *Engine) Parallelism() int {
	if e.parallelism > 0 {
		return e.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Entries = len(e.cache)
	return s
}

// ClearCache drops every memoized result (the hit/miss counters are
// kept). Long-lived processes sweeping unbounded config spaces call
// this between sweeps to bound memory.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[string]soc.Result)
}

// Run simulates one configuration through the engine (memoized). It is
// the engine-backed replacement for soc.Run and can be passed anywhere
// a soc.RunFunc is expected.
func (e *Engine) Run(cfg soc.Config) (soc.Result, error) {
	rs, err := e.RunBatch([]Job{{Config: cfg}})
	if err != nil {
		return soc.Result{}, err
	}
	return rs[0], nil
}

// task is one deduplicated simulation: a cache key (empty when the job
// is uncacheable) plus every input index awaiting its result.
type task struct {
	key     string
	indices []int
}

// RunBatch executes the jobs with bounded parallelism and returns their
// results in input order. The batch is deterministic: the returned
// slice is identical to running each job sequentially through soc.Run,
// whatever the worker count. On the first failure the engine stops
// feeding work (in-flight simulations finish) and returns the error of
// the lowest-indexed failed job; no partial results are returned.
func (e *Engine) RunBatch(jobs []Job) ([]soc.Result, error) {
	results := make([]soc.Result, len(jobs))

	// Resolve cache hits and coalesce in-batch duplicates so each
	// unique configuration simulates once.
	tasks := make([]*task, 0, len(jobs))
	byKey := make(map[string]*task)
	for i, j := range jobs {
		if j.Config.Policy == nil {
			return nil, fmt.Errorf("engine: job %d has nil policy", i)
		}
		if !e.cacheOn {
			tasks = append(tasks, &task{indices: []int{i}})
			continue
		}
		key, cacheable := fingerprint(j.Config)
		if !cacheable {
			tasks = append(tasks, &task{indices: []int{i}})
			continue
		}
		e.mu.Lock()
		r, hit := e.cache[key]
		if hit {
			e.stats.Hits++
		}
		e.mu.Unlock()
		if hit {
			results[i] = cloneResult(r)
			continue
		}
		if t, ok := byKey[key]; ok {
			t.indices = append(t.indices, i)
			e.mu.Lock()
			e.stats.Hits++
			e.mu.Unlock()
			continue
		}
		t := &task{key: key, indices: []int{i}}
		byKey[key] = t
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return results, nil
	}

	workers := e.Parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		wg       sync.WaitGroup
		work     = make(chan *task)
		stop     = make(chan struct{})
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	fail := func(idx int, err error) {
		errMu.Lock()
		if firstErr == nil || idx < firstIdx {
			firstErr, firstIdx = err, idx
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				e.execute(jobs, t, results, fail)
			}
		}()
	}
	// Feed in input order; stop on the first failure (fail fast).
feed:
	for _, t := range tasks {
		select {
		case work <- t:
		case <-stop:
			break feed
		}
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runnerPool recycles assembled platforms across jobs and batches:
// each worker checks a soc.Runner out for the duration of one
// simulation, so steady-state RunBatch traffic stops paying for MRC
// retraining, component assembly, and per-run slice/map allocations.
// Runners are goroutine-exclusive while checked out, and a recycled
// platform is reset to a state bit-identical with fresh assembly, so
// pooling changes neither determinism nor results.
var runnerPool = sync.Pool{New: func() any { return soc.NewRunner() }}

// execute runs one task and distributes its result to every awaiting
// input index.
func (e *Engine) execute(jobs []Job, t *task, results []soc.Result, fail func(int, error)) {
	idx := t.indices[0]
	cfg := jobs[idx].Config
	cfg.Policy = cfg.Policy.Clone()
	runner := runnerPool.Get().(*soc.Runner)
	res, err := runner.Run(cfg)
	runnerPool.Put(runner)
	if err != nil {
		fail(idx, fmt.Errorf("engine: job %d (%s under %s): %w",
			idx, cfg.Workload.Name, cfg.Policy.Name(), err))
		return
	}
	e.mu.Lock()
	e.stats.Misses++
	if t.key != "" {
		e.cache[t.key] = cloneResult(res)
	}
	e.mu.Unlock()
	for _, i := range t.indices {
		results[i] = cloneResult(res)
	}
}

// cloneResult deep-copies the result's slice fields so cached entries
// and coalesced siblings never alias caller-visible memory.
func cloneResult(r soc.Result) soc.Result {
	c := r
	if r.PointResidency != nil {
		c.PointResidency = append([]float64(nil), r.PointResidency...)
	}
	if r.PowerTrace != nil {
		c.PowerTrace = append([]float64(nil), r.PowerTrace...)
	}
	return c
}
