package engine

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// mixedSuite returns a small cross-class suite (SPEC + graphics +
// battery) for determinism checks.
func mixedSuite(t *testing.T) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, n := range []string{"416.gamess", "470.lbm", "473.astar"} {
		w, err := workload.SPEC(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	ws = append(ws, workload.GraphicsSuite()[0])
	ws = append(ws, workload.BatterySuite()[3])
	return ws
}

// mixedJobs pairs every suite workload with several policies.
func mixedJobs(t *testing.T) []Job {
	t.Helper()
	policies := []soc.Policy{
		policy.NewBaseline(),
		policy.NewSysScaleDefault(),
		policy.NewMemScaleRedist(),
		policy.NewCoScaleRedist(),
		policy.NewStaticPoint(1, true),
	}
	var jobs []Job
	for _, w := range mixedSuite(t) {
		for _, p := range policies {
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Policy = p
			cfg.Duration = 300 * sim.Millisecond
			jobs = append(jobs, Job{Config: cfg})
		}
	}
	return jobs
}

// TestParallelMatchesSequential is the engine's core guarantee: a
// parallel batch returns results identical to running every job
// sequentially through soc.Run, in input order.
func TestParallelMatchesSequential(t *testing.T) {
	jobs := mixedJobs(t)

	want := make([]soc.Result, len(jobs))
	for i, j := range jobs {
		cfg := j.Config
		cfg.Policy = cfg.Policy.Clone()
		r, err := soc.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	for _, workers := range []int{1, 2, 8} {
		e := New(WithParallelism(workers))
		got, err := e.RunBatch(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: job %d (%s/%s) diverges from sequential run",
					workers, i, jobs[i].Config.Workload.Name, jobs[i].Config.Policy.Name())
			}
		}
	}
}

// TestSharedPolicyInstanceAcrossBatch submits one policy VALUE for
// every job of a concurrent batch: the engine must clone per job (this
// is the data race the Clone API exists to prevent; run under -race).
func TestSharedPolicyInstanceAcrossBatch(t *testing.T) {
	shared := policy.NewCoScaleRedist() // stateful: credits + sticky demotion
	var jobs []Job
	for _, w := range mixedSuite(t) {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Policy = shared
		cfg.Duration = 300 * sim.Millisecond
		jobs = append(jobs, Job{Config: cfg})
	}
	e := New(WithParallelism(4))
	rs, err := e.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Score <= 0 {
			t.Errorf("job %d: zero score", i)
		}
	}
}

func TestCacheMemoizesAcrossBatches(t *testing.T) {
	w, err := workload.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewSysScaleDefault()
	cfg.Duration = 300 * sim.Millisecond

	e := New()
	first, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs from computed result")
	}
	st := e.CacheStats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}
}

func TestBatchCoalescesDuplicates(t *testing.T) {
	w, err := workload.SPEC("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewBaseline()
	cfg.Duration = 300 * sim.Millisecond

	e := New(WithParallelism(2))
	rs, err := e.RunBatch([]Job{{Config: cfg}, {Config: cfg}, {Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs[0], rs[1]) || !reflect.DeepEqual(rs[1], rs[2]) {
		t.Fatal("coalesced duplicates disagree")
	}
	if st := e.CacheStats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits", st)
	}
	// The copies must not alias: mutating one result's slice must not
	// leak into its siblings or the cache.
	rs[0].PointResidency[0] = -1
	if rs[1].PointResidency[0] == -1 {
		t.Fatal("results alias one another")
	}
}

func TestDistinctConfigsDistinctKeys(t *testing.T) {
	w, err := workload.SPEC("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 300 * sim.Millisecond

	a := cfg
	a.Policy = policy.NewStaticPoint(0, false)
	b := cfg
	// Same Name() as a, different behaviour: the fingerprint must not
	// key on the name.
	b.Policy = policy.NewStaticPoint(1, false)

	ka, oka := fingerprint(a)
	kb, okb := fingerprint(b)
	if !oka || !okb {
		t.Fatal("static-point configs must be cacheable")
	}
	if ka == kb {
		t.Fatal("distinct policies collide onto one fingerprint")
	}

	// And equal configs built independently must collide.
	c := cfg
	c.Policy = policy.NewStaticPoint(1, false)
	kc, _ := fingerprint(c)
	if kb != kc {
		t.Fatal("equal configs produced different fingerprints")
	}
}

// countingPolicy wraps Baseline and counts Decide invocations — a side
// effect, so it must opt out of caching.
type countingPolicy struct {
	inner soc.Policy
	n     *atomic.Int64
}

func (c *countingPolicy) Name() string { return "counting" }
func (c *countingPolicy) Reset()       { c.inner.Reset() }
func (c *countingPolicy) Uncacheable() {}
func (c *countingPolicy) Clone() soc.Policy {
	return &countingPolicy{inner: c.inner.Clone(), n: c.n}
}
func (c *countingPolicy) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	c.n.Add(1)
	return c.inner.Decide(ctx)
}

func TestUncacheablePolicyAlwaysRuns(t *testing.T) {
	w, err := workload.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPolicy{inner: policy.NewBaseline(), n: new(atomic.Int64)}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = p
	cfg.Duration = 300 * sim.Millisecond

	e := New()
	if _, err := e.RunBatch([]Job{{Config: cfg}, {Config: cfg}}); err != nil {
		t.Fatal(err)
	}
	first := p.n.Load()
	if first == 0 {
		t.Fatal("policy never ran")
	}
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if p.n.Load() != first+first/2 {
		t.Fatalf("uncacheable policy served from cache: %d decides after batch, %d after rerun",
			first, p.n.Load())
	}
	if st := e.CacheStats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("uncacheable runs leaked into the cache: %+v", st)
	}
}

// TestWrappedUncacheableStaysUncacheable: decorating an uncacheable
// policy (here with the ablation wrapper) must not silently re-enable
// caching — the engine sees through Unwrap chains.
func TestWrappedUncacheableStaysUncacheable(t *testing.T) {
	w, err := workload.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPolicy{inner: policy.NewBaseline(), n: new(atomic.Int64)}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.WithoutOptimizedMRC(p)
	cfg.Duration = 300 * sim.Millisecond

	e := New()
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	first := p.n.Load()
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if p.n.Load() != 2*first {
		t.Fatalf("wrapped uncacheable policy served from cache: %d then %d decides",
			first, p.n.Load())
	}
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("wrapped uncacheable run leaked into the cache: %+v", st)
	}
}

func TestClearCache(t *testing.T) {
	w, err := workload.SPEC("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewBaseline()
	cfg.Duration = 300 * sim.Millisecond

	e := New()
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	e.ClearCache()
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("entries = %d after ClearCache, want 0", st.Entries)
	}
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (cleared entry recomputed)", st.Misses)
	}
}

func TestFailFast(t *testing.T) {
	good, err := workload.SPEC("416.gamess")
	if err != nil {
		t.Fatal(err)
	}
	okCfg := soc.DefaultConfig()
	okCfg.Workload = good
	okCfg.Policy = policy.NewBaseline()
	okCfg.Duration = 300 * sim.Millisecond

	badCfg := okCfg
	badCfg.Duration = -1 * sim.Second // fails Validate inside soc.Run

	e := New(WithParallelism(2))
	rs, err := e.RunBatch([]Job{{Config: okCfg}, {Config: badCfg}, {Config: okCfg}})
	if err == nil {
		t.Fatal("batch with invalid job returned no error")
	}
	if rs != nil {
		t.Fatal("failed batch returned partial results")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error does not identify the failing job: %v", err)
	}
}

func TestNilPolicyRejected(t *testing.T) {
	cfg := soc.DefaultConfig()
	e := New()
	if _, err := e.RunBatch([]Job{{Config: cfg}}); err == nil {
		t.Fatal("nil-policy job accepted")
	}
}

// TestSpanDroppedSurfaced: a saturated span cache degrades visibly —
// SpanCacheStats.Dropped is plumbed through to Stats.SpanDropped so a
// sweep whose distinct-span working set exceeds the cache bound can be
// diagnosed from CacheStats instead of failing silently.
func TestSpanDroppedSurfaced(t *testing.T) {
	e := New()
	// A one-entry span cache saturates on the first span of any real
	// run; every later distinct span is integrated but not inserted.
	e.spans = soc.NewSpanCache(1)

	jobs := mixedJobs(t)[:4]
	if _, err := e.RunBatch(jobs); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.SpanDropped == 0 {
		t.Fatalf("one-entry span cache reported zero SpanDropped: %+v", st)
	}
	if st.SpanDropped != e.spans.Stats().Dropped {
		t.Errorf("SpanDropped %d != span cache Dropped %d", st.SpanDropped, e.spans.Stats().Dropped)
	}
}
