package engine

import (
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// lruConfig returns a distinct config per duration step (duration is
// part of the fingerprint, so each d is its own cache entry).
func lruConfig(t *testing.T, d sim.Time) soc.Config {
	t.Helper()
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Policy = policy.NewBaseline()
	cfg.Duration = d
	return cfg
}

// TestCacheLRUEviction pins the result cache's bound and recency
// order: with a 2-entry cache, a third distinct config evicts the
// least recently *used* entry — not the oldest inserted — and evicted
// configs re-simulate.
func TestCacheLRUEviction(t *testing.T) {
	e := New(WithCacheSize(2))
	a := lruConfig(t, 100*sim.Millisecond)
	b := lruConfig(t, 110*sim.Millisecond)
	c := lruConfig(t, 120*sim.Millisecond)

	run := func(cfg soc.Config) {
		t.Helper()
		if _, err := e.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	misses := func() int { return e.CacheStats().Misses }

	run(a) // miss: cache {a}
	run(b) // miss: cache {b, a}
	run(a) // hit, refreshes a's recency: cache {a, b}
	m := misses()
	run(c) // miss, evicts b (LRU), not a: cache {c, a}

	st := e.CacheStats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (bound)", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if misses() != m+1 {
		t.Fatalf("c was not a miss")
	}

	run(a) // still resident: its hit above must have outranked b
	if misses() != m+1 {
		t.Error("a was evicted despite being more recently used than b")
	}
	run(b) // evicted: must re-simulate
	if misses() != m+2 {
		t.Error("b was served from cache after its eviction")
	}
}

// TestCacheSizeDefaulted pins the always-bounded contract: an engine
// built without WithCacheSize still carries the default bound.
func TestCacheSizeDefaulted(t *testing.T) {
	if e := New(); e.cacheSize != DefaultCacheSize {
		t.Fatalf("default cacheSize = %d, want %d", e.cacheSize, DefaultCacheSize)
	}
	if e := New(WithCacheSize(-3)); e.cacheSize != DefaultCacheSize {
		t.Fatalf("negative WithCacheSize = %d, want default %d", e.cacheSize, DefaultCacheSize)
	}
	if e := New(WithCacheSize(7)); e.cacheSize != 7 {
		t.Fatalf("WithCacheSize(7) = %d", e.cacheSize)
	}
}

// TestSpanCacheStatsSurfaced checks the engine threads its span cache
// into pooled runners and surfaces its counters: with the result cache
// off, a repeated simulation still gets faster the second time —
// through span hits, which CacheStats must report.
func TestSpanCacheStatsSurfaced(t *testing.T) {
	e := New(WithCache(false))
	cfg := lruConfig(t, 100*sim.Millisecond)

	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	cold := e.CacheStats()
	if cold.SpanMisses == 0 || cold.SpanEntries == 0 {
		t.Fatalf("first run populated no spans: %+v", cold)
	}
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	warm := e.CacheStats()
	if warm.SpanHits == 0 {
		t.Fatalf("second run scored no span hits: %+v", warm)
	}

	// ClearCache drops the spans too.
	e.ClearCache()
	if st := e.CacheStats(); st.SpanEntries != 0 {
		t.Fatalf("ClearCache left %d spans resident", st.SpanEntries)
	}
}

// TestDisableSpanCacheKnob proves the A/B contract end to end at the
// engine layer: the same batch with DisableSpanCache set returns
// results identical to the default (cached) batch.
func TestDisableSpanCacheKnob(t *testing.T) {
	jobs := mixedJobs(t)
	off := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Config.DisableSpanCache = true
		j.Config.Policy = j.Config.Policy.Clone()
		off[i] = j
	}

	on, err := New().RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := New().RunBatch(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range on {
		// The knob is fingerprinted, so the off-batch simulated fresh;
		// the results must nonetheless match bit for bit.
		if on[i].Score != offRes[i].Score || on[i].Energy != offRes[i].Energy ||
			on[i].AvgPower != offRes[i].AvgPower || on[i].EDP != offRes[i].EDP {
			t.Errorf("job %d (%s/%s): span-cached result != cache-disabled result",
				i, jobs[i].Config.Workload.Name, jobs[i].Config.Policy.Name())
		}
	}
}
