// Package pkgb is the counterpart of pkga: a same-named, same-shaped
// policy type in a different package. See pkga's doc comment.
package pkgb

import "sysscale/internal/soc"

// Pinned mirrors pkga.Pinned field for field.
type Pinned struct {
	Index int
}

// Name matches pkga.Pinned's label on purpose.
func (p *Pinned) Name() string { return "pinned" }

// Decide holds the platform at its current point.
func (p *Pinned) Decide(soc.PolicyContext) soc.PolicyDecision { return soc.PolicyDecision{} }

// Reset is a no-op.
func (p *Pinned) Reset() {}

// Clone returns an independent copy.
func (p *Pinned) Clone() soc.Policy {
	c := *p
	return &c
}
