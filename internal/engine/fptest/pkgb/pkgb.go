// Package pkgb is the counterpart of pkga: a same-named, same-shaped
// policy type in a different package, registered under its own name.
// See pkga's doc comment.
package pkgb

import (
	"encoding/json"
	"reflect"
	"strconv"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
)

// Pinned mirrors pkga.Pinned field for field.
type Pinned struct {
	Index int
}

// Name matches pkga.Pinned's label on purpose.
func (p *Pinned) Name() string { return "pinned" }

// Decide holds the platform at its current point.
func (p *Pinned) Decide(soc.PolicyContext) soc.PolicyDecision { return soc.PolicyDecision{} }

// Reset is a no-op.
func (p *Pinned) Reset() {}

// Clone returns an independent copy.
func (p *Pinned) Clone() soc.Policy {
	c := *p
	return &c
}

type params struct {
	Index int `json:"index"`
}

func init() {
	codec := policy.Codec{
		Type: reflect.TypeOf(&Pinned{}),
		Decode: func(raw []byte) (soc.Policy, error) {
			var p params
			if len(raw) > 0 {
				if err := json.Unmarshal(raw, &p); err != nil {
					return nil, err
				}
			}
			return &Pinned{Index: p.Index}, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			pp, ok := p.(*Pinned)
			if !ok {
				return nil, false
			}
			return params{Index: pp.Index}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			pp, ok := p.(*Pinned)
			if !ok {
				return b, false
			}
			b = append(b, `{"index":`...)
			b = strconv.AppendInt(b, int64(pp.Index), 10)
			return append(b, '}'), true
		},
	}
	if err := policy.Register("fptest-pinned-b", codec); err != nil {
		panic(err)
	}
}
