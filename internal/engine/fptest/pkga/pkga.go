// Package pkga is a test fixture for the engine's cache-key
// fingerprinting: it declares a policy type whose unqualified name
// deliberately collides with pkgb's. The fingerprint must keep the two
// apart by their package paths, or the engine would serve one policy's
// cached Results for the other.
package pkga

import "sysscale/internal/soc"

// Pinned is a minimal no-op policy. Its name and field layout match
// pkgb.Pinned exactly.
type Pinned struct {
	Index int
}

// Name reports the same label as pkgb.Pinned on purpose: nothing but
// the type identity distinguishes the two.
func (p *Pinned) Name() string { return "pinned" }

// Decide holds the platform at its current point.
func (p *Pinned) Decide(soc.PolicyContext) soc.PolicyDecision { return soc.PolicyDecision{} }

// Reset is a no-op.
func (p *Pinned) Reset() {}

// Clone returns an independent copy.
func (p *Pinned) Clone() soc.Policy {
	c := *p
	return &c
}
