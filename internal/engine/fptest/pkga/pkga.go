// Package pkga is a test fixture for the engine's cache-key
// fingerprinting: it declares a policy type whose unqualified Go name
// deliberately collides with pkgb's. Under the registry-derived keys
// the two stay apart because each registers under its own spec name —
// and the registry's duplicate rejection turns an accidental name
// collision into a startup panic instead of a silent cache-aliasing
// bug (the pre-PR-2 failure mode).
package pkga

import (
	"encoding/json"
	"reflect"
	"strconv"

	"sysscale/internal/policy"
	"sysscale/internal/soc"
)

// Pinned is a minimal no-op policy. Its Go name and field layout match
// pkgb.Pinned exactly; only the registered name distinguishes them.
type Pinned struct {
	Index int
}

// Name reports the same label as pkgb.Pinned on purpose.
func (p *Pinned) Name() string { return "pinned" }

// Decide holds the platform at its current point.
func (p *Pinned) Decide(soc.PolicyContext) soc.PolicyDecision { return soc.PolicyDecision{} }

// Reset is a no-op.
func (p *Pinned) Reset() {}

// Clone returns an independent copy.
func (p *Pinned) Clone() soc.Policy {
	c := *p
	return &c
}

type params struct {
	Index int `json:"index"`
}

func init() {
	codec := policy.Codec{
		Type: reflect.TypeOf(&Pinned{}),
		Decode: func(raw []byte) (soc.Policy, error) {
			var p params
			if len(raw) > 0 {
				if err := json.Unmarshal(raw, &p); err != nil {
					return nil, err
				}
			}
			return &Pinned{Index: p.Index}, nil
		},
		Encode: func(p soc.Policy) (any, bool) {
			pp, ok := p.(*Pinned)
			if !ok {
				return nil, false
			}
			return params{Index: pp.Index}, true
		},
		AppendParams: func(b []byte, p soc.Policy) ([]byte, bool) {
			pp, ok := p.(*Pinned)
			if !ok {
				return b, false
			}
			b = append(b, `{"index":`...)
			b = strconv.AppendInt(b, int64(pp.Index), 10)
			return append(b, '}'), true
		},
	}
	if err := policy.Register("fptest-pinned-a", codec); err != nil {
		panic(err)
	}
}
