package sim

import (
	"fmt"
	"strings"
)

// Event is one timestamped record in the simulation event log. The log
// is used by tests to assert flow ordering (for example, that the DVFS
// transition of Fig. 5 drains the interconnect before entering DRAM
// self-refresh) and by the CLI's verbose mode.
type Event struct {
	At      Time
	Source  string
	Message string
}

func (e Event) String() string {
	return fmt.Sprintf("[%s] %s: %s", e.At, e.Source, e.Message)
}

// EventLog accumulates events in order of emission. The zero value is
// ready to use and disabled; call Enable to start recording.
type EventLog struct {
	enabled bool
	events  []Event
	limit   int
}

// NewEventLog returns an enabled log that keeps at most limit events
// (0 means unlimited).
func NewEventLog(limit int) *EventLog {
	return &EventLog{enabled: true, limit: limit}
}

// Enable turns recording on.
func (l *EventLog) Enable() { l.enabled = true }

// Disable turns recording off; Record becomes a no-op.
func (l *EventLog) Disable() { l.enabled = false }

// Enabled reports whether the log records events.
func (l *EventLog) Enabled() bool { return l != nil && l.enabled }

// Record appends an event if the log is enabled. A nil log is safe to
// record into (no-op), which lets models hold an optional log without
// nil checks at every call site.
func (l *EventLog) Record(at Time, source, format string, args ...any) {
	if l == nil || !l.enabled {
		return
	}
	if l.limit > 0 && len(l.events) >= l.limit {
		return
	}
	l.events = append(l.events, Event{At: at, Source: source, Message: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events in emission order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Reset discards all recorded events.
func (l *EventLog) Reset() {
	if l != nil {
		l.events = l.events[:0]
	}
}

// Find returns the first event whose message contains substr, and
// whether one was found.
func (l *EventLog) Find(substr string) (Event, bool) {
	for _, e := range l.Events() {
		if strings.Contains(e.Message, substr) {
			return e, true
		}
	}
	return Event{}, false
}

// IndexOf returns the index of the first event whose message contains
// substr, or -1.
func (l *EventLog) IndexOf(substr string) int {
	for i, e := range l.Events() {
		if strings.Contains(e.Message, substr) {
			return i
		}
	}
	return -1
}

// String renders the log, one event per line.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
