package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("time unit ratios broken")
	}
	if got := Second.Seconds(); got != 1.0 {
		t.Fatalf("Second.Seconds() = %v", got)
	}
	if got := (30 * Millisecond).Millis(); got != 30 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (10 * Microsecond).Micros(); got != 10 {
		t.Fatalf("Micros = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{30 * Millisecond, "30.000ms"},
		{10 * Microsecond, "10.000us"},
		{123 * Nanosecond, "123ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(Millisecond)
	if c.Now() != 0 {
		t.Fatal("clock must start at zero")
	}
	for i := 1; i <= 5; i++ {
		if got := c.Advance(); got != Time(i)*Millisecond {
			t.Fatalf("advance %d: got %v", i, got)
		}
	}
	c.AdvanceBy(500 * Microsecond)
	if c.Now() != 5*Millisecond+500*Microsecond {
		t.Fatalf("AdvanceBy: got %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockPanics(t *testing.T) {
	mustPanic(t, func() { NewClock(0) })
	mustPanic(t, func() { NewClock(-1) })
	c := NewClock(Millisecond)
	mustPanic(t, func() { c.AdvanceBy(-1) })
}

func TestClockTick(t *testing.T) {
	c := NewClock(30 * Millisecond)
	if c.Tick() != 30*Millisecond {
		t.Fatalf("Tick = %v", c.Tick())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a2 := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincide too often: %d", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
	mustPanic(t, func() { r.Range(2, 1) })
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of bounds: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) never produced all values: %v", seen)
	}
	mustPanic(t, func() { r.Intn(0) })
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(4)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Norm variance = %v, want ~4", variance)
	}
}

func TestRNGLogNormal(t *testing.T) {
	r := NewRNG(6)
	n := 20000
	var sumLog float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(2, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
		sumLog += math.Log(v)
	}
	if mu := sumLog / float64(n); mu < 1.9 || mu > 2.1 {
		t.Fatalf("LogNormal log-mean = %v, want ~2", mu)
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(7)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); mean < 2.85 || mean > 3.15 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(8)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("Pick ignored weights: %v", counts)
	}
	for i := 0; i < 1000; i++ {
		if got := r.Pick([]float64{0, 0, 5, 0}); got != 2 {
			t.Fatalf("Pick chose zero-weight index %d", got)
		}
	}
	for _, bad := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Pick(%v) did not panic", bad)
				}
			}()
			r.Pick(bad)
		}()
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("fork should not mirror the parent stream")
	}
}

func TestEventLogRecordAndFind(t *testing.T) {
	l := NewEventLog(0)
	l.Record(1*Millisecond, "a", "first %d", 1)
	l.Record(2*Millisecond, "b", "second")
	l.Record(3*Millisecond, "c", "third")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if e, ok := l.Find("second"); !ok || e.Source != "b" {
		t.Fatalf("Find failed: %+v %v", e, ok)
	}
	if idx := l.IndexOf("third"); idx != 2 {
		t.Fatalf("IndexOf = %d", idx)
	}
	if idx := l.IndexOf("absent"); idx != -1 {
		t.Fatalf("IndexOf(absent) = %d", idx)
	}
	if !strings.Contains(l.String(), "first 1") {
		t.Fatalf("String missing event: %q", l.String())
	}
}

func TestEventLogDisabledAndNil(t *testing.T) {
	var nilLog *EventLog
	nilLog.Record(0, "x", "ignored") // must not panic
	if nilLog.Len() != 0 || nilLog.Enabled() {
		t.Fatal("nil log misbehaves")
	}
	l := NewEventLog(0)
	l.Disable()
	l.Record(0, "x", "dropped")
	if l.Len() != 0 {
		t.Fatal("disabled log recorded")
	}
	l.Enable()
	l.Record(0, "x", "kept")
	if l.Len() != 1 {
		t.Fatal("enabled log did not record")
	}
}

func TestEventLogLimit(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 5; i++ {
		l.Record(0, "x", "e%d", i)
	}
	if l.Len() != 2 {
		t.Fatalf("limit not enforced: %d", l.Len())
	}
}

func TestEventLogReset(t *testing.T) {
	l := NewEventLog(0)
	l.Record(0, "x", "e")
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
