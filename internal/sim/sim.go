// Package sim provides the deterministic simulation kernel shared by all
// SysScale models: a tick-based clock, simulated-time types, and a
// reproducible random number generator.
//
// The simulator is epoch based. Time advances in fixed ticks (the PMU
// sample period, 1ms by default). All models are evaluated once per tick;
// sub-tick events (such as DVFS transitions, which complete in under ten
// microseconds) are charged as stall time within the tick that issues them.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds from the
// start of the simulation. A dedicated type (rather than time.Duration)
// keeps simulated time from being confused with wall-clock time.
type Time int64

// Common simulated-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration for formatting convenience.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Clock is the simulation clock. It advances in fixed ticks.
type Clock struct {
	now  Time
	tick Time
}

// NewClock returns a clock that advances by tick on each Advance call.
// It panics if tick is not positive, since a zero tick would stall the
// simulation loop forever.
func NewClock(tick Time) *Clock {
	if tick <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock tick %d", tick))
	}
	return &Clock{tick: tick}
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Tick returns the clock granularity.
func (c *Clock) Tick() Time { return c.tick }

// Advance moves the clock forward by one tick and returns the new time.
func (c *Clock) Advance() Time {
	c.now += c.tick
	return c.now
}

// AdvanceBy moves the clock forward by an arbitrary amount (used by
// tests and by flows that consume partial ticks).
func (c *Clock) AdvanceBy(d Time) Time {
	if d < 0 {
		panic("sim: clock cannot move backwards")
	}
	c.now += d
	return c.now
}

// AdvanceTicks moves the clock forward by n whole ticks in one step —
// the bulk-advance used by the span-batched simulation core, which
// collapses runs of identical ticks into a single accounting update.
// Advancing by n ticks is exactly n Advance calls (tick counts are
// integral, so there is no accumulation-order concern).
func (c *Clock) AdvanceTicks(n int) Time {
	if n < 0 {
		panic("sim: clock cannot move backwards")
	}
	c.now += Time(n) * c.tick
	return c.now
}

// Reset rewinds the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }

// Restart rewinds the clock to time zero and reprograms its tick,
// putting the clock in the state NewClock(tick) would return. Platform
// pooling uses it to recycle a clock across runs with different sample
// intervals. It panics if tick is not positive, like NewClock.
func (c *Clock) Restart(tick Time) {
	if tick <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock tick %d", tick))
	}
	c.now, c.tick = 0, tick
}
