package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64). Every stochastic element of the simulator draws from an
// RNG seeded from the run configuration, so simulations are exactly
// reproducible. We implement the generator ourselves rather than using
// math/rand so that the stream is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 bits of mantissa.
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("sim: invalid RNG range")
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value: exp(N(mu, sigma)).
// Dwell times and demand intensities are drawn log-normally — strictly
// positive, right-skewed, with occasional long tails — which matches
// measured workload phase-length distributions far better than a
// uniform or normal draw.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// Guard against log(0).
	return -mean * math.Log(1-r.Float64())
}

// Pick returns an index drawn from the discrete distribution given by
// weights (non-negative, not all zero). It panics on an invalid
// distribution: generators validate their transition matrices up front.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: zero-mass weight vector")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	// Float round-off can leave x at ~0 after the last subtraction;
	// attribute it to the last positive-weight entry.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent generator from the current stream. Models
// that need a private stream fork the run RNG at construction so that
// adding draws to one model does not perturb another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
