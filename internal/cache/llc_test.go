package cache

import (
	"math"
	"testing"
)

func TestConstruction(t *testing.T) {
	if _, err := New(DefaultParams()); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.CapacityBytes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCounters(t *testing.T) {
	l, _ := New(DefaultParams())
	ep := l.Evaluate(Traffic{
		CoreMissBytes: 6.4e9, // 100M misses/s at 64B lines
		GfxMissBytes:  3.2e9, // 50M misses/s
		LatStallFrac:  0.35,
	}, 80e-9)
	if math.Abs(ep.GfxMisses-50e6) > 1 {
		t.Fatalf("GfxMisses = %v, want 50M/s", ep.GfxMisses)
	}
	wantOcc := 100e6 * 80e-9
	if math.Abs(ep.OccupancyTracer-wantOcc) > 1e-9 {
		t.Fatalf("OccupancyTracer = %v, want %v", ep.OccupancyTracer, wantOcc)
	}
	if math.Abs(ep.Stalls-35) > 1e-9 {
		t.Fatalf("Stalls = %v, want 35%%", ep.Stalls)
	}
	if ep.DemandBytes != 9.6e9 {
		t.Fatalf("DemandBytes = %v", ep.DemandBytes)
	}
	if l.LastEpoch().Stalls != ep.Stalls {
		t.Fatal("LastEpoch not stored")
	}
}

func TestStallClamping(t *testing.T) {
	l, _ := New(DefaultParams())
	if ep := l.Evaluate(Traffic{LatStallFrac: 1.7}, 80e-9); ep.Stalls != 100 {
		t.Fatalf("stall not clamped high: %v", ep.Stalls)
	}
	if ep := l.Evaluate(Traffic{LatStallFrac: -0.2}, 80e-9); ep.Stalls != 0 {
		t.Fatalf("stall not clamped low: %v", ep.Stalls)
	}
}

func TestInfiniteLatencyZeroesOccupancy(t *testing.T) {
	l, _ := New(DefaultParams())
	ep := l.Evaluate(Traffic{CoreMissBytes: 6.4e9}, math.Inf(1))
	if ep.OccupancyTracer != 0 {
		t.Fatal("occupancy computed from infinite latency")
	}
}

func TestPower(t *testing.T) {
	l, _ := New(DefaultParams())
	idle := l.Power(0.65, 1.2e9, 0)
	busy := l.Power(0.65, 1.2e9, 30e9)
	if busy <= idle {
		t.Fatal("LLC power not monotone in throughput")
	}
	// Activity saturates.
	max1 := l.Power(0.65, 1.2e9, 40e9)
	max2 := l.Power(0.65, 1.2e9, 400e9)
	if max2 != max1 {
		t.Fatal("activity not clamped")
	}
}

func TestParamsAccessor(t *testing.T) {
	l, _ := New(DefaultParams())
	if l.Params().CapacityBytes != 4<<20 {
		t.Fatal("Table 2 LLC capacity wrong")
	}
}
