// Package cache models the last-level cache (LLC) shared by the CPU
// cores and graphics engines (Table 2: 4MB). At epoch granularity the
// LLC's job in this simulator is threefold: translate agent traffic
// into DRAM demand, maintain the counters SysScale's predictor samples
// (LLC_STALLS, LLC_Occupancy_Tracer, GFX_LLC_MISSES — §4.2), and
// contribute its share of compute-rail power.
package cache

import (
	"fmt"

	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// Params configure the LLC model.
type Params struct {
	CapacityBytes int
	Ways          int
	LineBytes     int

	// Power coefficients (LLC shares the core rail).
	Cdyn      float64
	LeakAtNom float64
	NomVolt   vf.Volt
}

// DefaultParams returns the evaluated platform's LLC (Table 2: 4MB).
func DefaultParams() Params {
	return Params{
		CapacityBytes: 4 << 20,
		Ways:          16,
		LineBytes:     64,
		Cdyn:          0.12e-9,
		LeakAtNom:     0.060,
		NomVolt:       0.65,
	}
}

// Traffic is the per-epoch LLC activity presented by the agents.
type Traffic struct {
	CoreMissBytes float64 // bytes/s of core-side misses (DRAM demand)
	GfxMissBytes  float64 // bytes/s of graphics-side misses
	CoreHitBytes  float64 // bytes/s served by the LLC (for activity/power)
	// LatStallFrac is the fraction of agent time actually spent stalled
	// on LLC-miss round trips during the epoch (serialized, dependent
	// misses — the quantity a cycle counter gated on "waiting for a
	// busy LLC" measures on real hardware).
	LatStallFrac float64
}

// Epoch is the LLC's resolved state for one epoch.
type Epoch struct {
	// DemandBytes is the total DRAM bandwidth demand emitted downstream.
	DemandBytes float64
	// GfxMisses is the GFX_LLC_MISSES counter rate (misses/s).
	GfxMisses float64
	// Stalls is the LLC_STALLS counter: the percentage of cycles the
	// CPU agents spent stalled waiting on a busy LLC — the paper's
	// memory-latency-bound indicator. It grows with loaded memory
	// latency because each dependent miss stalls for the full round
	// trip.
	Stalls float64
	// OccupancyTracer is the LLC_Occupancy_Tracer counter value: the
	// average number of CPU requests waiting for data to return from
	// the memory controller (a bandwidth-boundedness indicator).
	OccupancyTracer float64
}

// LLC is the last-level cache model.
type LLC struct {
	params Params
	last   Epoch
}

// New constructs an LLC.
func New(params Params) (*LLC, error) {
	if params.CapacityBytes <= 0 || params.LineBytes <= 0 || params.Ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive LLC geometry")
	}
	return &LLC{params: params}, nil
}

// Params returns the configuration.
func (l *LLC) Params() Params { return l.params }

// Evaluate resolves one epoch. memLatency is the loaded DRAM latency
// (seconds) reported by the memory controller for the epoch; it drives
// the stall and occupancy counters via Little's law: requests
// outstanding = miss rate × latency.
func (l *LLC) Evaluate(t Traffic, memLatency float64) Epoch {
	ep := Epoch{DemandBytes: t.CoreMissBytes + t.GfxMissBytes}
	line := float64(l.params.LineBytes)
	coreMissRate := t.CoreMissBytes / line
	gfxMissRate := t.GfxMissBytes / line
	ep.GfxMisses = gfxMissRate

	if memLatency > 0 && !isInf(memLatency) {
		ep.OccupancyTracer = coreMissRate * memLatency
	}
	stall := t.LatStallFrac
	if stall < 0 {
		stall = 0
	}
	if stall > 1 {
		stall = 1
	}
	ep.Stalls = 100 * stall
	l.last = ep
	return ep
}

// LastEpoch returns the most recently evaluated epoch.
func (l *LLC) LastEpoch() Epoch { return l.last }

// RestoreEpoch reinstates ep as the rolling last-evaluated state, as
// if Evaluate had just resolved it. Used by the simulator's
// steady-state tick memo so that skipping Evaluate on a repeated tick
// leaves the cache's observable state identical to evaluating it.
func (l *LLC) RestoreEpoch(ep Epoch) { l.last = ep }

// Power returns the LLC draw given the core-rail voltage and clock and
// the epoch's hit+miss activity (bytes/s through the cache).
func (l *LLC) Power(v vf.Volt, f vf.Hz, throughBytes float64) power.Watt {
	// Activity follows throughput; 40GB/s through a 4MB LLC is high.
	activity := throughBytes / 40e9
	if activity > 1 {
		activity = 1
	}
	dyn := power.Dynamic(l.params.Cdyn, v, f, activity)
	leak := power.Leakage(l.params.LeakAtNom, v, l.params.NomVolt)
	return dyn + leak
}

func isInf(x float64) bool { return x > 1e300 }
