package stats

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	c := NewBarChart("Gains", "%", 20)
	c.Add("alpha", 10)
	c.Add("beta", 5)
	c.Add("gamma", -2.5)
	out := c.String()
	if !strings.Contains(out, "Gains") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Largest value gets the full width.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	// Half value gets about half the bar.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) || strings.Contains(lines[2], strings.Repeat("#", 12)) {
		t.Fatalf("proportionality broken: %q", lines[2])
	}
	// Negative values carry the minus marker.
	if !strings.Contains(lines[3], "|-") {
		t.Fatalf("negative bar unmarked: %q", lines[3])
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := NewBarChart("x", "", 10).String(); !strings.Contains(out, "empty") {
		t.Fatal("empty chart not flagged")
	}
	c := NewBarChart("z", "", 10)
	c.Add("a", 0)
	if out := c.String(); !strings.Contains(out, "a") {
		t.Fatal("zero-valued chart broken")
	}
}

func TestViolinChart(t *testing.T) {
	c := NewViolinChart("TDP", 40)
	c.Add("3.5W", ViolinSummary{Min: 0, P25: 5, Median: 12, P75: 18, Max: 24, Mean: 11})
	c.Add("15W", ViolinSummary{Min: -2, P25: 0, Median: 0, P75: 1, Max: 2, Mean: 0})
	out := c.String()
	if !strings.Contains(out, "TDP") || !strings.Contains(out, "M") {
		t.Fatalf("violin missing markers: %q", out)
	}
	if !strings.Contains(out, "med 12.0") {
		t.Fatal("median annotation missing")
	}
	// Axis line shows global bounds.
	if !strings.Contains(out, "-2.0") || !strings.Contains(out, "24.0") {
		t.Fatalf("axis bounds missing: %q", out)
	}
}

func TestViolinChartEmpty(t *testing.T) {
	if out := NewViolinChart("x", 10).String(); !strings.Contains(out, "empty") {
		t.Fatal("empty violin not flagged")
	}
}
