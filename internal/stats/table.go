package stats

import (
	"fmt"
	"strings"
)

// Table is a minimal plain-text table renderer used by the experiment
// harness to print paper-style rows.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with 3 significant digits.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3g", v)
		case float32:
			out[i] = fmt.Sprintf("%.3g", v)
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(out...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
