// Package stats provides the statistics used by SysScale's calibration
// and by the experiment harness: moments, Pearson correlation,
// least-squares linear regression (the Fig. 6 predictor), percentile /
// violin summaries (Fig. 10), and a plain-text table renderer.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both moments in one pass-friendly call.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Correlation returns the Pearson correlation coefficient of paired
// samples. It panics on length mismatch and returns 0 when either
// series is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: correlation length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted is Percentile over an already-ascending s, so
// multi-percentile digests (Summarize, Violin) sort the sample once
// and read every order statistic from the same sorted copy.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary is the robustness-suite distribution digest: central
// tendency (mean, median) plus both tails (p5, p95), the quantities
// the Monte Carlo sweep reports per policy.
type Summary struct {
	Mean, P5, P50, P95 float64
}

// Summarize computes a Summary of xs, sorting the sample once and
// reading every percentile from the same sorted copy (Percentile sorts
// per call, which multiplied up on every Monte Carlo digest).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		Mean: Mean(xs),
		P5:   percentileSorted(s, 5),
		P50:  percentileSorted(s, 50),
		P95:  percentileSorted(s, 95),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("mean %.3f / p5 %.3f / p50 %.3f / p95 %.3f", s.Mean, s.P5, s.P50, s.P95)
}

// ViolinSummary is the distribution summary the Fig. 10 violin plots
// convey: extremes, quartiles, median and mean.
type ViolinSummary struct {
	Min, P25, Median, P75, Max, Mean float64
}

// Violin computes a ViolinSummary of xs with one sort: the extremes
// are the sorted ends, the quartiles and median interpolated order
// statistics of the same copy.
func Violin(xs []float64) ViolinSummary {
	if len(xs) == 0 {
		return ViolinSummary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return ViolinSummary{
		Min:    s[0],
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		Max:    s[len(s)-1],
		Mean:   Mean(xs),
	}
}

func (v ViolinSummary) String() string {
	return fmt.Sprintf("min %.2f / p25 %.2f / med %.2f / p75 %.2f / max %.2f (mean %.2f)",
		v.Min, v.P25, v.Median, v.P75, v.Max, v.Mean)
}
