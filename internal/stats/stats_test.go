package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("stddev = %v", s)
	}
	m, s := MeanStd(xs)
	if m != 5 || s != 2 {
		t.Fatal("MeanStd mismatch")
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max not zero")
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlation(x, y); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yNeg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if Correlation(x, flat) != 0 {
		t.Fatal("constant series correlation not zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	Correlation(x, []float64{1})
}

func TestCorrelationSymmetric(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		x, y := raw[:n], raw[n:2*n]
		for _, v := range raw {
			// Bound the magnitude: squaring near-max float64 values
			// overflows the covariance sums to Inf, which is not the
			// property under test.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
		}
		a, b := Correlation(x, y), Correlation(y, x)
		return math.Abs(a-b) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Median(xs); p != 5.5 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 25); math.Abs(p-3.25) > 1e-12 {
		t.Fatalf("p25 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not zero")
	}
}

func TestViolin(t *testing.T) {
	xs := []float64{0, 5, 10, 15, 20}
	v := Violin(xs)
	if v.Min != 0 || v.Max != 20 || v.Median != 10 || v.Mean != 10 {
		t.Fatalf("violin = %+v", v)
	}
	if !strings.Contains(v.String(), "med 10.00") {
		t.Fatalf("violin string = %q", v.String())
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{0, 5, 10, 15, 20}
	s := Summarize(xs)
	if s.Mean != 10 || s.P50 != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P5 > s.P50 || s.P50 > s.P95 {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	if s.P5 < 0 || s.P95 > 20 {
		t.Fatalf("tails outside data range: %+v", s)
	}
	if !strings.Contains(s.String(), "p95") {
		t.Fatalf("summary string = %q", s.String())
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestFitLinearRecovers(t *testing.T) {
	// y = 3 + 2a - b must be recovered exactly from exact data.
	var rows [][]float64
	var ys []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			rows = append(rows, []float64{a, b})
			ys = append(ys, 3+2*a-b)
		}
	}
	m, err := FitLinear(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-6 || math.Abs(m.Coeffs[0]-2) > 1e-6 || math.Abs(m.Coeffs[1]+1) > 1e-6 {
		t.Fatalf("model = %+v", m)
	}
	if r2 := m.R2(rows, ys); r2 < 0.999999 {
		t.Fatalf("R2 = %v", r2)
	}
	if p := m.Predict([]float64{1, 1}); math.Abs(p-4) > 1e-6 {
		t.Fatalf("predict = %v", p)
	}
}

func TestFitLinearDegenerateColumn(t *testing.T) {
	// A constant (all-zero) feature must not make the fit fail — the
	// GFX counter is identically zero on CPU-only panels.
	rows := [][]float64{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	ys := []float64{2, 4, 6, 8}
	m, err := FitLinear(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{0, 5})-10) > 1e-3 {
		t.Fatalf("degenerate fit predicts %v", m.Predict([]float64{0, 5}))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitLinear([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFitLinearPropertyResidualOrthogonal(t *testing.T) {
	// Property: OLS residuals are uncorrelated with each feature.
	err := quick.Check(func(seed uint8) bool {
		rows := make([][]float64, 40)
		ys := make([]float64, 40)
		s := float64(seed) + 1
		for i := range rows {
			a := math.Sin(s * float64(i+1))
			b := math.Cos(s * float64(i+2) * 1.3)
			rows[i] = []float64{a, b}
			ys[i] = 1 + 0.5*a - 2*b + 0.1*math.Sin(float64(i)*7)
		}
		m, err := FitLinear(rows, ys)
		if err != nil {
			return false
		}
		var dot0, dot1 float64
		for i, r := range rows {
			res := ys[i] - m.Predict(r)
			dot0 += res * r[0]
			dot1 += res * r[1]
		}
		// The tiny ridge term trades exact orthogonality for
		// robustness; allow a proportionally tiny residual projection.
		return math.Abs(dot0) < 1e-3 && math.Abs(dot1) < 1e-3
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "BB")
	tab.AddRow("x", "y")
	tab.AddRowf("long-cell", 3.14159)
	out := tab.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "long-cell") || !strings.Contains(out, "3.14") {
		t.Fatalf("table = %q", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Extra cells dropped, missing cells empty.
	tab.AddRow("a", "b", "c", "d")
	tab.AddRow("only")
	if !strings.Contains(tab.String(), "only") {
		t.Fatal("short row lost")
	}
}

// TestSummaryDigestsMatchPerPercentileCalls pins the single-sort
// Summarize/Violin rewrite to the per-call Percentile/Min/Max/Median
// implementations: identical outputs (bitwise — same interpolation on
// the same sorted data), including duplicates, negatives, and the
// empty and single-element edges.
func TestSummaryDigestsMatchPerPercentileCalls(t *testing.T) {
	samples := [][]float64{
		nil,
		{},
		{3.25},
		{1, 2},
		{5, -3, 5, 0.5, 5, -3, 2.125},
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	}
	// A deterministic pseudo-random sample, unsorted on purpose.
	big := make([]float64, 997)
	x := uint64(42)
	for i := range big {
		x = x*6364136223846793005 + 1442695040888963407
		big[i] = float64(int64(x>>20))/1e12 - 4
	}
	samples = append(samples, big)

	for i, xs := range samples {
		orig := append([]float64(nil), xs...)
		s := Summarize(xs)
		want := Summary{Mean: Mean(xs), P5: Percentile(xs, 5), P50: Median(xs), P95: Percentile(xs, 95)}
		if s != want {
			t.Errorf("sample %d: Summarize = %+v, per-percentile calls = %+v", i, s, want)
		}
		v := Violin(xs)
		wantV := ViolinSummary{Min: Min(xs), P25: Percentile(xs, 25), Median: Median(xs),
			P75: Percentile(xs, 75), Max: Max(xs), Mean: Mean(xs)}
		if v != wantV {
			t.Errorf("sample %d: Violin = %+v, per-percentile calls = %+v", i, v, wantV)
		}
		if len(xs) > 0 && !reflect.DeepEqual(xs, orig) {
			t.Errorf("sample %d: digest mutated its input", i)
		}
	}
}
