package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart — the experiment
// harness uses it to draw the paper's bar figures (Figs. 7-9) directly
// in the terminal.
type BarChart struct {
	title string
	unit  string
	width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart creates a chart; width is the maximum bar length in
// characters (default 40 if <= 0).
func NewBarChart(title, unit string, width int) *BarChart {
	if width <= 0 {
		width = 40
	}
	return &BarChart{title: title, unit: unit, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.rows = append(c.rows, barRow{label: label, value: value})
}

// String renders the chart. Bars scale to the largest absolute value;
// negative values render with a leading minus block.
func (c *BarChart) String() string {
	if len(c.rows) == 0 {
		return c.title + " (empty)\n"
	}
	maxAbs := 0.0
	labelW := 0
	for _, r := range c.rows {
		if a := math.Abs(r.value); a > maxAbs {
			maxAbs = a
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	for _, r := range c.rows {
		n := int(math.Round(math.Abs(r.value) / maxAbs * float64(c.width)))
		bar := strings.Repeat("#", n)
		if r.value < 0 {
			bar = "-" + bar
		}
		fmt.Fprintf(&b, "  %-*s %7.2f%s |%s\n", labelW, r.label, r.value, c.unit, bar)
	}
	return b.String()
}

// ViolinChart renders per-group distribution summaries as ASCII
// box-plots (the Fig. 10 violins).
type ViolinChart struct {
	title string
	width int
	rows  []violinRow
}

type violinRow struct {
	label string
	v     ViolinSummary
}

// NewViolinChart creates the chart; width is the plot span in
// characters.
func NewViolinChart(title string, width int) *ViolinChart {
	if width <= 0 {
		width = 50
	}
	return &ViolinChart{title: title, width: width}
}

// Add appends one group's distribution.
func (c *ViolinChart) Add(label string, v ViolinSummary) {
	c.rows = append(c.rows, violinRow{label: label, v: v})
}

// String renders each group as   |----[==M==]----|  between the global
// min and max, with M at the median.
func (c *ViolinChart) String() string {
	if len(c.rows) == 0 {
		return c.title + " (empty)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range c.rows {
		lo = math.Min(lo, r.v.Min)
		hi = math.Max(hi, r.v.Max)
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(x float64) int {
		p := int(math.Round((x - lo) / (hi - lo) * float64(c.width-1)))
		if p < 0 {
			p = 0
		}
		if p >= c.width {
			p = c.width - 1
		}
		return p
	}
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	for _, r := range c.rows {
		line := make([]byte, c.width)
		for i := range line {
			line[i] = ' '
		}
		for i := pos(r.v.Min); i <= pos(r.v.Max); i++ {
			line[i] = '-'
		}
		for i := pos(r.v.P25); i <= pos(r.v.P75); i++ {
			line[i] = '='
		}
		line[pos(r.v.Min)] = '|'
		line[pos(r.v.Max)] = '|'
		line[pos(r.v.Median)] = 'M'
		fmt.Fprintf(&b, "  %-*s %s  (med %.1f, mean %.1f)\n", labelW, r.label, string(line), r.v.Median, r.v.Mean)
	}
	fmt.Fprintf(&b, "  %-*s %-*.1f%*.1f\n", labelW, "", c.width/2, lo, c.width-c.width/2, hi)
	return b.String()
}
