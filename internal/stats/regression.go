package stats

import (
	"fmt"
	"math"
)

// LinearModel is a multivariate linear model y = b0 + Σ bi·xi, fit by
// ordinary least squares. SysScale's dynamic-demand predictor (Fig. 6)
// is such a model over the four performance counters, trained offline
// on a calibration sweep (§4.2).
type LinearModel struct {
	Intercept float64
	Coeffs    []float64
}

// FitLinear fits y ≈ b0 + Σ bi·xi by solving the normal equations with
// Gaussian elimination. rows[i] is one observation's feature vector.
// It returns an error if the inputs are empty, ragged, or the system is
// singular (features linearly dependent).
func FitLinear(rows [][]float64, ys []float64) (LinearModel, error) {
	n := len(rows)
	if n == 0 || n != len(ys) {
		return LinearModel{}, fmt.Errorf("stats: need matching non-empty rows and ys (%d, %d)", n, len(ys))
	}
	k := len(rows[0])
	for i, r := range rows {
		if len(r) != k {
			return LinearModel{}, fmt.Errorf("stats: ragged row %d (%d features, want %d)", i, len(r), k)
		}
	}
	d := k + 1 // intercept column
	// Build normal equations A·b = c where A = XᵀX, c = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < d; i++ {
			fi := feat(rows[r], i)
			for j := 0; j < d; j++ {
				a[i][j] += fi * feat(rows[r], j)
			}
			a[i][d] += fi * ys[r]
		}
	}
	// Tiny ridge term on the non-intercept diagonal: keeps the system
	// solvable when a feature is constant in the training set (for
	// example GFX_LLC_MISSES on CPU-only workloads) by driving that
	// feature's coefficient to zero instead of failing.
	for i := 1; i < d; i++ {
		a[i][i] += 1e-8 * (1 + a[i][i])
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return LinearModel{}, fmt.Errorf("stats: singular design matrix at column %d", col)
		}
		inv := 1 / a[col][col]
		for j := col; j <= d; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < d; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= d; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	m := LinearModel{Intercept: a[0][d], Coeffs: make([]float64, k)}
	for i := 0; i < k; i++ {
		m.Coeffs[i] = a[i+1][d]
	}
	return m, nil
}

// Predict evaluates the model on one feature vector.
func (m LinearModel) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coeffs {
		if i < len(x) {
			y += c * x[i]
		}
	}
	return y
}

// R2 returns the coefficient of determination of the model over a
// dataset.
func (m LinearModel) R2(rows [][]float64, ys []float64) float64 {
	if len(rows) == 0 || len(rows) != len(ys) {
		return 0
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i, r := range rows {
		d := ys[i] - m.Predict(r)
		ssRes += d * d
		t := ys[i] - my
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
