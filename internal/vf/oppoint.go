package vf

import "fmt"

// OperatingPoint is one joint IO+memory DVFS operating point — the unit
// SysScale switches between (§4.3). It fixes the DDR transfer rate, the
// memory controller clock (half the DDR rate on this platform), the IO
// interconnect clock, and the V_SA / V_IO rail voltages that those
// clocks require.
type OperatingPoint struct {
	Name    string
	DDR     Hz // DRAM transfer rate (e.g. 1.6GHz)
	MC      Hz // memory controller clock, DDR/2
	Interco Hz // IO interconnect clock
	VSA     Volt
	VIO     Volt
}

// String implements fmt.Stringer.
func (op OperatingPoint) String() string {
	return fmt.Sprintf("%s{DDR %v, MC %v, IO %v, V_SA %.3fV, V_IO %.3fV}",
		op.Name, op.DDR, op.MC, op.Interco, op.VSA, op.VIO)
}

// Validate checks internal consistency of the point.
func (op OperatingPoint) Validate() error {
	if op.DDR <= 0 || op.MC <= 0 || op.Interco <= 0 {
		return fmt.Errorf("vf: operating point %q has non-positive clock", op.Name)
	}
	if op.VSA <= 0 || op.VIO <= 0 {
		return fmt.Errorf("vf: operating point %q has non-positive voltage", op.Name)
	}
	return nil
}

// MakeOperatingPoint derives a consistent operating point from a DDR
// rate and interconnect clock using the platform curves: MC = DDR/2,
// V_SA from the SA curve at the interconnect clock (the MC is voltage-
// aligned to the interconnect, §3), and V_IO from the IO curve at the
// DDRIO digital clock (DDR/2).
func MakeOperatingPoint(name string, ddr, interco Hz) OperatingPoint {
	return OperatingPoint{
		Name:    name,
		DDR:     ddr,
		MC:      ddr / 2,
		Interco: interco,
		VSA:     SACurve().VoltageAt(interco),
		VIO:     IOCurve().VoltageAt(ddr / 2),
	}
}

// Canonical operating points of the evaluated platform (Table 1, §7.4).
// The paper implements exactly two points in the real system: the high
// point (DDR 1.6GHz) and the low point (DDR 1.06GHz); the 0.8GHz point
// exists in LPDDR3 but is not energy-efficient because V_SA is already
// at Vmin at 1.06GHz.
func HighPoint() OperatingPoint { return MakeOperatingPoint("high", 1.6*GHz, 0.8*GHz) }
func LowPoint() OperatingPoint  { return MakeOperatingPoint("low", 1.06*GHz, 0.4*GHz) }

// LowestPoint is the DDR 0.8GHz point evaluated (and rejected) in §7.4.
func LowestPoint() OperatingPoint { return MakeOperatingPoint("lowest", 0.8*GHz, 0.4*GHz) }

// DDR4 points for the §7.4 DRAM-type sensitivity study.
func DDR4HighPoint() OperatingPoint { return MakeOperatingPoint("ddr4-high", 1.86*GHz, 0.8*GHz) }
func DDR4LowPoint() OperatingPoint  { return MakeOperatingPoint("ddr4-low", 1.33*GHz, 0.5*GHz) }

// LadderLPDDR3 returns the LPDDR3 operating-point ladder from highest
// to lowest. Policies that support more than two points (the "general
// case" of §4.3) walk this ladder with per-step thresholds.
func LadderLPDDR3() []OperatingPoint {
	return []OperatingPoint{HighPoint(), LowPoint(), LowestPoint()}
}

// TwoPointLadder returns the ladder the paper actually ships: high and
// low only.
func TwoPointLadder() []OperatingPoint {
	return []OperatingPoint{HighPoint(), LowPoint()}
}
