package vf

import (
	"math"
	"testing"
	"testing/quick"

	"sysscale/internal/sim"
)

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve("empty"); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := NewCurve("dup", CurvePoint{1 * GHz, 0.7}, CurvePoint{1 * GHz, 0.8}); err == nil {
		t.Fatal("duplicate frequency accepted")
	}
	if _, err := NewCurve("nonmono", CurvePoint{1 * GHz, 0.9}, CurvePoint{2 * GHz, 0.7}); err == nil {
		t.Fatal("non-monotonic voltage accepted")
	}
	if _, err := NewCurve("neg", CurvePoint{-1 * GHz, 0.7}); err == nil {
		t.Fatal("negative frequency accepted")
	}
}

func TestCurveVminFloor(t *testing.T) {
	c := MustCurve("t", CurvePoint{1 * GHz, 0.6}, CurvePoint{2 * GHz, 0.9})
	if v := c.VoltageAt(0.2 * GHz); v != 0.6 {
		t.Fatalf("below floor: %v, want Vmin 0.6", v)
	}
	if c.Vmin() != 0.6 || c.VminFreq() != 1*GHz || c.Fmax() != 2*GHz {
		t.Fatal("curve bounds wrong")
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := MustCurve("t", CurvePoint{1 * GHz, 0.6}, CurvePoint{2 * GHz, 0.9})
	if v := c.VoltageAt(1.5 * GHz); math.Abs(float64(v)-0.75) > 1e-9 {
		t.Fatalf("midpoint = %v, want 0.75", v)
	}
	// Extrapolation above Fmax continues the last slope.
	if v := c.VoltageAt(2.5 * GHz); math.Abs(float64(v)-1.05) > 1e-9 {
		t.Fatalf("extrapolated = %v, want 1.05", v)
	}
}

func TestCurveFreqAtInverse(t *testing.T) {
	c := CoreCurve()
	err := quick.Check(func(raw uint16) bool {
		f := c.VminFreq() + Hz(raw)*(c.Fmax()-c.VminFreq())/Hz(math.MaxUint16)
		v := c.VoltageAt(f)
		back := c.FreqAt(v)
		// FreqAt returns the highest frequency at v; in the floor region
		// many frequencies share Vmin, so back >= f there.
		return back >= f-1 || math.Abs(float64(back-f)) < 1e6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FreqAt(c.Vmin() - 0.01); got != 0 {
		t.Fatalf("below Vmin must be unreachable, got %v", got)
	}
}

func TestCurveMonotonicVoltage(t *testing.T) {
	for _, c := range []*Curve{SACurve(), IOCurve(), CoreCurve(), GfxCurve()} {
		prev := Volt(0)
		for f := 0.1 * GHz; f <= c.Fmax(); f += 0.05 * GHz {
			v := c.VoltageAt(f)
			if v < prev {
				t.Fatalf("%s: voltage decreased at %v", c.Name(), f)
			}
			prev = v
		}
	}
}

func TestRegulatorTransitionTime(t *testing.T) {
	r, err := NewRegulator(RailVSA, 0.95, 0.050, 0.6, 1.1, true)
	if err != nil {
		t.Fatal(err)
	}
	// 100mV at 50mV/us = 2us (§5); allow 1ns of float rounding.
	d := r.TransitionTime(0.85)
	if d < 2*sim.Microsecond-2 || d > 2*sim.Microsecond+2 {
		t.Fatalf("transition time = %v, want ~2us", d)
	}
	if _, err := r.Set(0.85); err != nil {
		t.Fatal(err)
	}
	if r.Voltage() != 0.85 {
		t.Fatalf("voltage = %v", r.Voltage())
	}
}

func TestRegulatorBounds(t *testing.T) {
	r, err := NewRegulator(RailVIO, 1.0, 0.05, 0.6, 1.15, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Set(1.3); err == nil {
		t.Fatal("out-of-range voltage accepted")
	}
	if _, err := NewRegulator(RailVIO, 2.0, 0.05, 0.6, 1.15, true); err == nil {
		t.Fatal("initial out of range accepted")
	}
	if _, err := NewRegulator(RailVIO, 1.0, 0, 0.6, 1.15, true); err == nil {
		t.Fatal("zero slew accepted")
	}
}

func TestRegulatorNonScalable(t *testing.T) {
	r, err := NewRegulator(RailVDDQ, 1.2, 0.05, 1.2, 1.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Set(1.2); err != nil {
		t.Fatal("same-voltage set on fixed rail must succeed")
	}
	if r.Scalable() {
		t.Fatal("rail reports scalable")
	}
}

func TestRailsAssembly(t *testing.T) {
	rails := DefaultRails()
	for i := 0; i < NumRails; i++ {
		if rails.Get(RailID(i)) == nil {
			t.Fatalf("missing regulator %v", RailID(i))
		}
	}
	if rails.Voltage(RailVSA) != NominalVSA {
		t.Fatalf("V_SA = %v", rails.Voltage(RailVSA))
	}
	// VDDQ is not scalable on commodity DRAM (§2.4).
	if rails.Get(RailVDDQ).Scalable() {
		t.Fatal("VDDQ must not be scalable")
	}
}

func TestRailsErrors(t *testing.T) {
	if _, err := NewRails(nil); err == nil {
		t.Fatal("nil regulator accepted")
	}
	r1, _ := NewRegulator(RailVSA, 0.95, 0.05, 0.6, 1.1, true)
	if _, err := NewRails(r1); err == nil {
		t.Fatal("incomplete rail set accepted")
	}
	r2, _ := NewRegulator(RailVSA, 0.95, 0.05, 0.6, 1.1, true)
	if _, err := NewRails(r1, r2); err == nil {
		t.Fatal("duplicate rail accepted")
	}
}

func TestOperatingPointsMatchTable1(t *testing.T) {
	high, low := HighPoint(), LowPoint()
	if high.DDR != 1.6*GHz || low.DDR != 1.06*GHz {
		t.Fatalf("DDR points wrong: %v / %v", high.DDR, low.DDR)
	}
	if high.Interco != 0.8*GHz || low.Interco != 0.4*GHz {
		t.Fatalf("interconnect points wrong: %v / %v", high.Interco, low.Interco)
	}
	if high.MC != high.DDR/2 || low.MC != low.DDR/2 {
		t.Fatal("MC must run at half the DDR rate")
	}
	// Table 1: MD-DVFS at 0.8 x V_SA and 0.85 x V_IO.
	vsaRatio := float64(low.VSA / high.VSA)
	if math.Abs(vsaRatio-0.80) > 0.01 {
		t.Fatalf("V_SA ratio = %.3f, want 0.80", vsaRatio)
	}
	vioRatio := float64(low.VIO / high.VIO)
	if math.Abs(vioRatio-0.85) > 0.01 {
		t.Fatalf("V_IO ratio = %.3f, want 0.85", vioRatio)
	}
}

func TestLowestPointVminFloor(t *testing.T) {
	// §7.4: V_SA is already at Vmin at DDR 1.06GHz, so 0.8GHz saves no
	// further voltage.
	if LowestPoint().VSA != LowPoint().VSA {
		t.Fatalf("V_SA at 0.8GHz (%v) differs from 1.06GHz (%v)",
			LowestPoint().VSA, LowPoint().VSA)
	}
}

func TestLadders(t *testing.T) {
	two := TwoPointLadder()
	if len(two) != 2 || two[0].DDR <= two[1].DDR {
		t.Fatal("two-point ladder malformed")
	}
	three := LadderLPDDR3()
	if len(three) != 3 {
		t.Fatal("LPDDR3 ladder malformed")
	}
	for i := 1; i < len(three); i++ {
		if three[i].DDR >= three[i-1].DDR {
			t.Fatal("ladder not descending")
		}
	}
	for _, op := range three {
		if err := op.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOperatingPointValidate(t *testing.T) {
	bad := OperatingPoint{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero point accepted")
	}
}

func TestHzString(t *testing.T) {
	if s := (1.6 * GHz).String(); s != "1.6GHz" {
		t.Fatalf("Hz string = %q", s)
	}
	if s := (300 * MHz).String(); s != "300MHz" {
		t.Fatalf("Hz string = %q", s)
	}
}
