package vf

// This file defines the canonical V/F curves of the modeled
// Skylake-class mobile platform. Absolute values are representative
// (real Shmoo data is not public) but are chosen to reproduce the
// relationships the paper reports:
//
//   - V_SA reaches its Vmin floor at the voltage needed for a 0.53GHz
//     memory controller clock (DDR 1.06GHz), so scaling DDR below
//     1.06GHz yields no further V_SA reduction (§7.4).
//   - The MD-DVFS setup of Table 1 lands at 0.8·V_SA and 0.85·V_IO.
//   - The CPU core curve is flat (Vmin) up to ~1.5GHz: at the paper's
//     4.5W TDP and 1.2GHz base frequency the cores sit on the floor,
//     making compute power roughly linear in frequency, which is what
//     lets a few hundred redistributed milliwatts buy up to 16% more
//     frequency (Fig. 7) and far more at 3.5W (Fig. 10).

// Nominal rail voltages of the modeled platform.
const (
	NominalVSA  Volt = 0.95
	NominalVIO  Volt = 1.00
	NominalVDDQ Volt = 1.20
	// Core/graphics nominal voltages are curve-derived at runtime.
)

// SlewRateVPerUs is the regulator slew rate used throughout (§5:
// 50mV/us, so ±100mV in about 2us).
const SlewRateVPerUs Volt = 0.050

// SACurve returns the V/F curve of the system-agent rail (V_SA),
// indexed by the IO interconnect clock (the memory controller clock is
// aligned to the same voltage level, per §3). The 0.4GHz point is the
// Vmin floor: scaling the interconnect (and with it the MC) below
// 0.4GHz cannot lower V_SA further.
func SACurve() *Curve {
	return MustCurve("V_SA",
		CurvePoint{F: 0.4 * GHz, V: 0.76}, // Vmin floor = 0.8 * 0.95
		CurvePoint{F: 0.8 * GHz, V: 0.95}, // nominal at full interconnect clock
		CurvePoint{F: 1.0 * GHz, V: 1.05},
	)
}

// IOCurve returns the V/F curve of the V_IO rail, indexed by the DDRIO
// digital clock (half the DDR transfer rate). At DDR 1.06GHz the rail
// runs at 0.85 of nominal, matching Table 1.
func IOCurve() *Curve {
	return MustCurve("V_IO",
		CurvePoint{F: 0.53 * GHz, V: 0.85}, // MD-DVFS point: 0.85 * 1.00
		CurvePoint{F: 0.80 * GHz, V: 1.00}, // nominal at DDR 1.6GHz
		CurvePoint{F: 1.07 * GHz, V: 1.10},
	)
}

// CoreCurve returns the V/F curve of the CPU core + LLC rail. The flat
// region below 1.5GHz is the Vmin floor discussed above. Above it, the
// curve steepens the way production parts do, so at generous TDPs
// (7-15W) extra budget buys little frequency and SysScale's benefit
// shrinks (Fig. 10).
func CoreCurve() *Curve {
	return MustCurve("V_CORE",
		CurvePoint{F: 1.5 * GHz, V: 0.65}, // Vmin floor up to 1.5GHz
		CurvePoint{F: 2.0 * GHz, V: 0.78},
		CurvePoint{F: 2.5 * GHz, V: 0.93},
		CurvePoint{F: 3.0 * GHz, V: 1.12},
		CurvePoint{F: 3.6 * GHz, V: 1.35},
	)
}

// GfxCurve returns the V/F curve of the graphics rail. The base
// frequency (300MHz, Table 2) is deep in the floor; the fused maximum
// dynamic frequency of this part is 1.0GHz (the M-6Y75's graphics
// turbo ceiling), which bounds how much of a redistributed budget the
// graphics engines can convert into clocks (Fig. 8's 6.7-8.9% FPS
// gains versus the larger CPU-side gains).
func GfxCurve() *Curve {
	return MustCurve("V_GFX",
		CurvePoint{F: 0.45 * GHz, V: 0.62}, // floor up to 450MHz
		CurvePoint{F: 0.70 * GHz, V: 0.75},
		CurvePoint{F: 1.00 * GHz, V: 0.95}, // fused maximum
	)
}

// DefaultRails builds the regulator set at nominal settings.
func DefaultRails() *Rails {
	mk := func(id RailID, v Volt, min, max Volt, scalable bool) *Regulator {
		r, err := NewRegulator(id, v, SlewRateVPerUs, min, max, scalable)
		if err != nil {
			panic(err)
		}
		return r
	}
	rails, err := NewRails(
		mk(RailVSA, NominalVSA, 0.60, 1.10, true),
		mk(RailVIO, NominalVIO, 0.60, 1.15, true),
		mk(RailVDDQ, NominalVDDQ, NominalVDDQ, NominalVDDQ, false),
		mk(RailVCore, CoreCurve().Vmin(), 0.55, 1.40, true),
		mk(RailVGfx, GfxCurve().Vmin(), 0.55, 1.15, true),
	)
	if err != nil {
		panic(err)
	}
	return rails
}
