// Package vf models voltage/frequency curves and the voltage-regulator
// topology of a Skylake-class mobile SoC (Fig. 1 of the SysScale paper).
//
// Each SoC clock domain carries a V/F curve: the minimum voltage at
// which the domain's logic meets timing at a given frequency. Curves
// have a Vmin floor — below some frequency the voltage cannot drop
// further because the transistors need a minimum functional voltage.
// The floor is central to two results in the paper: (1) the 0.8GHz
// memory operating point saves little because V_SA already sits at Vmin
// at 1.06GHz (§7.4), and (2) a TDP-constrained compute domain near Vmin
// gains frequency roughly linearly per watt, which is why redistributing
// a few hundred milliwatts buys large speedups at 3.5-4.5W TDP (Fig. 10).
package vf

import (
	"fmt"
	"sort"
)

// Hz is a frequency in hertz.
type Hz float64

// Common frequency units.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// GHzVal returns the frequency in gigahertz.
func (f Hz) GHzVal() float64 { return float64(f) / 1e9 }

func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.3gGHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.3gMHz", float64(f)/1e6)
	default:
		return fmt.Sprintf("%.3gHz", float64(f))
	}
}

// Volt is an electric potential in volts.
type Volt float64

// CurvePoint is one (frequency, minimum voltage) pair on a V/F curve.
type CurvePoint struct {
	F Hz
	V Volt
}

// Curve is a piecewise-linear V/F curve. Between points the required
// voltage is interpolated linearly; below the first point the curve is
// flat at the Vmin floor; above the last point the curve extrapolates
// along the final segment (a conservative model of the steep top of a
// real Shmoo plot).
type Curve struct {
	name   string
	points []CurvePoint
}

// NewCurve builds a curve from points, which must be non-empty, sorted
// by ascending frequency after normalization, and have non-decreasing
// voltage. NewCurve sorts the points and validates monotonicity.
func NewCurve(name string, points ...CurvePoint) (*Curve, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("vf: curve %q needs at least one point", name)
	}
	ps := make([]CurvePoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].F < ps[j].F })
	for i := 1; i < len(ps); i++ {
		if ps[i].F == ps[i-1].F {
			return nil, fmt.Errorf("vf: curve %q has duplicate frequency %v", name, ps[i].F)
		}
		if ps[i].V < ps[i-1].V {
			return nil, fmt.Errorf("vf: curve %q voltage not monotonic at %v", name, ps[i].F)
		}
	}
	for _, p := range ps {
		if p.F <= 0 || p.V <= 0 {
			return nil, fmt.Errorf("vf: curve %q has non-positive point %+v", name, p)
		}
	}
	return &Curve{name: name, points: ps}, nil
}

// MustCurve is NewCurve that panics on error; it is intended for the
// package-level platform definitions, which are validated by tests.
func MustCurve(name string, points ...CurvePoint) *Curve {
	c, err := NewCurve(name, points...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the curve's name.
func (c *Curve) Name() string { return c.name }

// Vmin returns the voltage floor (the voltage of the lowest-frequency
// point).
func (c *Curve) Vmin() Volt { return c.points[0].V }

// VminFreq returns the highest frequency attainable at the Vmin floor.
func (c *Curve) VminFreq() Hz { return c.points[0].F }

// Fmax returns the highest characterized frequency.
func (c *Curve) Fmax() Hz { return c.points[len(c.points)-1].F }

// VoltageAt returns the minimum functional voltage for frequency f.
func (c *Curve) VoltageAt(f Hz) Volt {
	ps := c.points
	if f <= ps[0].F {
		return ps[0].V // Vmin floor
	}
	for i := 1; i < len(ps); i++ {
		if f <= ps[i].F {
			return interp(ps[i-1], ps[i], f)
		}
	}
	// Extrapolate along the last segment.
	if len(ps) == 1 {
		return ps[0].V
	}
	return interp(ps[len(ps)-2], ps[len(ps)-1], f)
}

// FreqAt returns the highest frequency sustainable at voltage v.
// If v is below Vmin the domain cannot run at all and FreqAt returns 0.
func (c *Curve) FreqAt(v Volt) Hz {
	ps := c.points
	if v < ps[0].V {
		return 0
	}
	if v == ps[0].V {
		return ps[0].F
	}
	for i := 1; i < len(ps); i++ {
		if v <= ps[i].V {
			// Inverse interpolation over segment i-1 .. i.
			a, b := ps[i-1], ps[i]
			if b.V == a.V {
				return b.F
			}
			frac := float64((v - a.V) / (b.V - a.V))
			return a.F + Hz(frac)*(b.F-a.F)
		}
	}
	// Extrapolate along the last segment.
	if len(ps) == 1 {
		return ps[0].F
	}
	a, b := ps[len(ps)-2], ps[len(ps)-1]
	if b.V == a.V {
		return b.F
	}
	frac := float64((v - a.V) / (b.V - a.V))
	return a.F + Hz(frac)*(b.F-a.F)
}

// Points returns a copy of the curve's points.
func (c *Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}

func interp(a, b CurvePoint, f Hz) Volt {
	if b.F == a.F {
		return b.V
	}
	frac := float64((f - a.F) / (b.F - a.F))
	return a.V + Volt(frac)*(b.V-a.V)
}
