package vf

import (
	"fmt"

	"sysscale/internal/sim"
)

// RailID identifies one voltage rail of the SoC. The topology follows
// Fig. 1 of the paper: the IO engines/controllers, IO interconnect and
// memory controller share V_SA; DRAM and the DDRIO analog front end
// share VDDQ; DDRIO digital shares V_IO with the IO interfaces; the
// compute domain has separate core and graphics rails.
type RailID int

// The five rails of the modeled SoC.
const (
	RailVSA   RailID = iota // system agent: MC + IO interconnect + IO controllers
	RailVIO                 // DDRIO digital + IO interfaces
	RailVDDQ                // DRAM device + DDRIO analog (not scalable on commodity DRAM)
	RailVCore               // CPU cores + LLC
	RailVGfx                // graphics engines
	railCount
)

// NumRails is the number of modeled rails.
const NumRails = int(railCount)

var railNames = [...]string{"V_SA", "V_IO", "VDDQ", "V_CORE", "V_GFX"}

func (r RailID) String() string {
	if r < 0 || int(r) >= len(railNames) {
		return fmt.Sprintf("RailID(%d)", int(r))
	}
	return railNames[r]
}

// Regulator models one voltage regulator: its current setting and the
// slew-rate limit that determines transition latency. The paper uses a
// 50mV/us slew rate, so a ±100mV swing takes about 2us (§5).
type Regulator struct {
	id       RailID
	voltage  Volt
	slewRate Volt // volts per microsecond
	min, max Volt
	scalable bool // VDDQ is not scalable on commodity DRAM (§2.4)
}

// NewRegulator constructs a regulator with the given initial setting
// and limits. slewRate is in volts per microsecond.
func NewRegulator(id RailID, initial Volt, slewRate Volt, min, max Volt, scalable bool) (*Regulator, error) {
	if initial < min || initial > max {
		return nil, fmt.Errorf("vf: %v initial voltage %.3f outside [%.3f, %.3f]", id, initial, min, max)
	}
	if slewRate <= 0 {
		return nil, fmt.Errorf("vf: %v non-positive slew rate", id)
	}
	return &Regulator{id: id, voltage: initial, slewRate: slewRate, min: min, max: max, scalable: scalable}, nil
}

// ID returns the rail this regulator drives.
func (r *Regulator) ID() RailID { return r.id }

// Voltage returns the current output voltage.
func (r *Regulator) Voltage() Volt { return r.voltage }

// Scalable reports whether the rail supports DVFS.
func (r *Regulator) Scalable() bool { return r.scalable }

// Bounds returns the regulator's programmable range.
func (r *Regulator) Bounds() (min, max Volt) { return r.min, r.max }

// TransitionTime returns the time needed to slew from the current
// voltage to target, given the regulator's slew rate.
func (r *Regulator) TransitionTime(target Volt) sim.Time {
	delta := target - r.voltage
	if delta < 0 {
		delta = -delta
	}
	us := float64(delta) / float64(r.slewRate)
	return sim.Time(us * float64(sim.Microsecond))
}

// Set programs the regulator to target and returns the transition time.
// Setting a non-scalable rail to a different voltage is an error.
func (r *Regulator) Set(target Volt) (sim.Time, error) {
	if target < r.min || target > r.max {
		return 0, fmt.Errorf("vf: %v target %.3fV outside [%.3f, %.3f]", r.id, target, r.min, r.max)
	}
	if !r.scalable && target != r.voltage {
		return 0, fmt.Errorf("vf: rail %v is not scalable", r.id)
	}
	t := r.TransitionTime(target)
	r.voltage = target
	return t, nil
}

// Rails is the set of regulators of one SoC instance.
type Rails struct {
	regs [NumRails]*Regulator
}

// NewRails assembles a rail set. All five rails must be provided.
func NewRails(regs ...*Regulator) (*Rails, error) {
	rs := &Rails{}
	for _, r := range regs {
		if r == nil {
			return nil, fmt.Errorf("vf: nil regulator")
		}
		if rs.regs[r.id] != nil {
			return nil, fmt.Errorf("vf: duplicate regulator for %v", r.id)
		}
		rs.regs[r.id] = r
	}
	for i, r := range rs.regs {
		if r == nil {
			return nil, fmt.Errorf("vf: missing regulator for %v", RailID(i))
		}
	}
	return rs, nil
}

// Get returns the regulator for a rail.
func (rs *Rails) Get(id RailID) *Regulator { return rs.regs[id] }

// Voltage returns the present voltage on a rail.
func (rs *Rails) Voltage(id RailID) Volt { return rs.regs[id].Voltage() }
