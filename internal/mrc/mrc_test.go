package mrc

import (
	"testing"

	"sysscale/internal/dram"
	"sysscale/internal/vf"
)

func TestTrainFitsSRAMBudget(t *testing.T) {
	for _, kind := range []dram.Kind{dram.LPDDR3, dram.DDR4} {
		s, err := Train(kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.UsedBytes() > SRAMBudget {
			t.Fatalf("%v: %dB exceeds %dB SRAM budget (§5)", kind, s.UsedBytes(), SRAMBudget)
		}
		if s.Kind() != kind {
			t.Fatal("kind mismatch")
		}
		if len(s.Bins()) != len(kind.Bins()) {
			t.Fatalf("%v: trained %d bins, want %d", kind, len(s.Bins()), len(kind.Bins()))
		}
	}
}

func TestImagePerBin(t *testing.T) {
	s := MustTrain(dram.LPDDR3)
	for _, f := range dram.LPDDR3.Bins() {
		img, err := s.Image(f)
		if err != nil {
			t.Fatal(err)
		}
		if img.Timing.ForFreq != f {
			t.Fatalf("image for %v tagged %v", f, img.Timing.ForFreq)
		}
		if img.Timing.InterfaceEff != 1.0 {
			t.Fatal("trained image not at full interface efficiency")
		}
	}
	if _, err := s.Image(1.23 * vf.GHz); err == nil {
		t.Fatal("bogus bin served")
	}
}

func TestLoadProgramsDevice(t *testing.T) {
	s := MustTrain(dram.LPDDR3)
	d, err := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), 1.6*vf.GHz)
	if err != nil {
		t.Fatal(err)
	}
	d.EnterSelfRefresh()
	if err := d.SetFrequency(1.06 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	lat, err := s.Load(d, 1.06*vf.GHz)
	if err != nil {
		t.Fatal(err)
	}
	if lat != LoadLatency {
		t.Fatalf("load latency = %v", lat)
	}
	if d.Timing().ForFreq != 1.06*vf.GHz || d.Timing().InterfaceEff != 1.0 {
		t.Fatal("device not programmed with trained image")
	}
}

func TestLoadDetuned(t *testing.T) {
	s := MustTrain(dram.LPDDR3)
	d, _ := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), 1.6*vf.GHz)
	d.EnterSelfRefresh()
	if err := d.SetFrequency(1.06 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDetuned(d, 1.6*vf.GHz, 1.06*vf.GHz); err != nil {
		t.Fatal(err)
	}
	if d.Timing().InterfaceEff >= 1.0 {
		t.Fatal("detuned load did not derate the interface")
	}
	if _, err := s.LoadDetuned(d, 1.23*vf.GHz, 1.06*vf.GHz); err == nil {
		t.Fatal("detuned load from untrained bin accepted")
	}
}

func TestLoadUnknownBin(t *testing.T) {
	s := MustTrain(dram.LPDDR3)
	d, _ := dram.NewDevice(dram.LPDDR3, dram.DefaultGeometry(), 1.6*vf.GHz)
	if _, err := s.Load(d, 1.23*vf.GHz); err == nil {
		t.Fatal("unknown bin load accepted")
	}
}
