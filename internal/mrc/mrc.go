// Package mrc models the Memory Reference Code: the BIOS component that
// trains the DRAM interface and produces the per-frequency configuration
// register sets (§2.5). SysScale extends the stock flow by training
// *every* supported frequency bin at reset and parking the resulting
// register images in a small on-chip SRAM (~0.5KB, §5) so the DVFS flow
// can reload them in under a microsecond (step 5 of Fig. 5).
package mrc

import (
	"fmt"

	"sysscale/internal/dram"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// RegisterImage is one trained register set destined for the memory
// controller, DDRIO and DIMM configuration registers, together with its
// size in the SRAM store.
type RegisterImage struct {
	Freq   vf.Hz
	Timing dram.Timing
	Bytes  int // serialized image size
}

// imageBytes is the serialized size of one register image. A real
// image holds roughly thirty 32-bit MC registers, the DDRIO per-lane
// trim codes and the DIMM mode registers; 120 bytes is representative
// and keeps all four LPDDR3/LPDDR3E bins within the paper's 0.5KB SRAM
// budget.
const imageBytes = 120

// SRAMBudget is the SRAM capacity SysScale dedicates to MRC images
// (§5: "approximately 0.5KB").
const SRAMBudget = 512

// LoadLatency is the time to move one image from SRAM into the live
// configuration registers (§5: "less than 1us").
const LoadLatency = 800 * sim.Nanosecond

// Store is the on-chip SRAM holding one trained image per supported
// frequency bin.
type Store struct {
	kind   dram.Kind
	images map[vf.Hz]RegisterImage
	used   int
}

// Train runs MRC training for every frequency bin of the technology and
// returns the populated store. It fails if the images exceed the SRAM
// budget — the hardware cost claim of §5 is enforced, not assumed.
func Train(kind dram.Kind) (*Store, error) {
	s := &Store{kind: kind, images: make(map[vf.Hz]RegisterImage)}
	for _, f := range kind.Bins() {
		img := RegisterImage{Freq: f, Timing: dram.OptimalTiming(kind, f), Bytes: imageBytes}
		if s.used+img.Bytes > SRAMBudget {
			return nil, fmt.Errorf("mrc: images exceed %dB SRAM budget at bin %v", SRAMBudget, f)
		}
		s.images[f] = img
		s.used += img.Bytes
	}
	return s, nil
}

// MustTrain is Train that panics on error (used by platform assembly,
// which is validated by tests).
func MustTrain(kind dram.Kind) *Store {
	s, err := Train(kind)
	if err != nil {
		panic(err)
	}
	return s
}

// Kind returns the DRAM technology the store was trained for.
func (s *Store) Kind() dram.Kind { return s.kind }

// UsedBytes returns the occupied SRAM.
func (s *Store) UsedBytes() int { return s.used }

// Bins returns the bins with a trained image, in the technology's
// native (highest-first) order.
func (s *Store) Bins() []vf.Hz {
	var out []vf.Hz
	for _, f := range s.kind.Bins() {
		if _, ok := s.images[f]; ok {
			out = append(out, f)
		}
	}
	return out
}

// Image returns the trained image for a bin.
func (s *Store) Image(f vf.Hz) (RegisterImage, error) {
	img, ok := s.images[f]
	if !ok {
		return RegisterImage{}, fmt.Errorf("mrc: no trained image for %v", f)
	}
	return img, nil
}

// Load retrieves the image for f and programs it into the device,
// returning the load latency. This is step 5 of the Fig. 5 flow.
func (s *Store) Load(d *dram.Device, f vf.Hz) (sim.Time, error) {
	img, err := s.Image(f)
	if err != nil {
		return 0, err
	}
	if err := d.LoadTiming(img.Timing); err != nil {
		return 0, err
	}
	return LoadLatency, nil
}

// LoadDetuned programs the device with the image trained for trainedAt
// while the device runs at actual — the "unoptimized MRC values"
// scenario of Observation 4 and the behaviour of DVFS schemes that do
// not retrain per frequency (MemScale, CoScale; §8). The same load
// latency applies.
func (s *Store) LoadDetuned(d *dram.Device, trainedAt, actual vf.Hz) (sim.Time, error) {
	if _, err := s.Image(trainedAt); err != nil {
		return 0, err
	}
	if err := d.LoadTiming(dram.DetunedTiming(s.kind, trainedAt, actual)); err != nil {
		return 0, err
	}
	return LoadLatency, nil
}
