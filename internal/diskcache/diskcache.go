// Package diskcache is the persistent, content-addressed on-disk
// result tier: a directory of simulation results keyed by the engine's
// canonical config fingerprint (sha256 of the canonical spec bytes —
// spec.Fingerprint), shared across processes and machines by
// construction because the key is reproducible from a job's JSON
// anywhere.
//
// The store is built corruption-safe from day one:
//
//   - Writes are atomic: entries are rendered to a temp file in the
//     cache directory, synced, and renamed into place, so a reader —
//     in this process or another — only ever sees absent or complete
//     files, never a torn write.
//   - Every entry carries a versioned header and a sha256 checksum
//     over a deterministic binary encoding of the soc.Result
//     (soc.AppendResult, exact float64 round-trip). A read that fails
//     the magic, version, length, checksum, or decode is treated as a
//     miss, the bad entry is deleted, and Stats.Errors increments —
//     corruption never poisons a result and never aborts a sweep.
//   - The store is size-bounded: once the entry bytes exceed the cap,
//     the oldest entries (by modification time; hits refresh it) are
//     reclaimed first. Concurrent processes may share one directory —
//     renames are atomic, and an entry evicted under a concurrent
//     reader degrades to a miss.
//
// Layout: flat files named <64-hex-fingerprint>.ssr in the cache
// directory; in-flight writes are dot-prefixed temp files, cleaned up
// on Open if a crash left them behind.
package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sysscale/internal/soc"
)

// Key is a content-addressed entry key: the engine's canonical config
// fingerprint.
type Key = [sha256.Size]byte

// The two failure classes every store error wraps. The distinction
// drives the circuit breaker (Breaker): corruption is self-healing —
// the entry is pruned and the same key cannot fail the same way twice —
// while an I/O failure is environmental (dying disk, revoked mount,
// ENOSPC) and tends to repeat on every operation, so only ErrIO-classed
// failures count toward tripping the tier open.
var (
	// ErrIO classes operating-system I/O failures: unreadable files,
	// failed temp writes, failed renames.
	ErrIO = errors.New("diskcache: I/O failure")
	// ErrCorrupt classes invalid entries: bad magic, wrong version,
	// truncation, checksum or decode failure. The entry is pruned.
	ErrCorrupt = errors.New("diskcache: corrupt entry")
)

// Tier is the disk-tier interface the engine consumes — implemented by
// *Store, by *Breaker (which wraps any Tier), and by fault-injection
// wrappers (internal/faultinject). Get reports a hit via found; err is
// diagnostic (ErrIO- or ErrCorrupt-classed) and never implies a wrong
// result — every failure degrades to a miss. Put's error likewise
// reports a skipped insert, nothing else.
type Tier interface {
	Get(key Key) (res soc.Result, found bool, err error)
	Put(key Key, res soc.Result) error
	Stats() Stats
}

// Version is the entry wire-format version. Any change to the header
// layout or to soc.AppendResult's encoding must bump it; entries
// carrying any other version read as misses and are pruned.
const Version = 1

// magic brands every entry file ("SysScale Result Cache").
const magic = "SSRC"

// headerSize is magic + version(u32) + payload length(u32) + sha256.
const headerSize = 4 + 4 + 4 + sha256.Size

// entrySuffix names complete entries; tmpPrefix marks in-flight writes
// (dot-prefixed so the eviction scan's suffix match can't see them
// before the glob-style prefix check does).
const (
	entrySuffix = ".ssr"
	tmpPrefix   = ".tmp-"
)

// DefaultMaxBytes bounds a default-constructed store: 1 GiB of
// entries, roughly a million sweep results at the typical ~1KB entry.
const DefaultMaxBytes = 1 << 30

// Option configures Open.
type Option func(*Store)

// WithMaxBytes bounds the store to n bytes of entries, oldest evicted
// first (n <= 0 selects DefaultMaxBytes).
func WithMaxBytes(n int64) Option {
	return func(s *Store) { s.maxBytes = n }
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts Gets served from disk; Misses counts Gets that found
	// no entry.
	Hits, Misses int
	// Errors counts corruption and I/O failures: entries pruned for a
	// bad header, checksum, or decode, unreadable files, and failed
	// writes. Errors never propagate to results — every one degrades
	// to a miss (or a skipped insert).
	Errors int
	// Bytes is the store's current entry footprint; Entries the entry
	// count (both as tracked since Open — concurrent processes sharing
	// the directory are observed lazily).
	Bytes   int64
	Entries int
	// Degraded reports a tripped circuit breaker: the tier is being
	// skipped entirely (no I/O issued) until a probe succeeds. Always
	// false on a bare *Store; set by Breaker.
	Degraded bool
}

// Store is an on-disk result store rooted at one directory. It is safe
// for concurrent use within a process, and safe (with miss-degraded
// races) across processes sharing the directory.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	hits    int
	misses  int
	errors  int
	bytes   int64
	entries int
}

// Open returns a store rooted at dir, creating the directory if
// needed, deleting stale temp files from crashed writers, and sizing
// the existing entries against the byte cap.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir}
	for _, o := range opts {
		o(s)
	}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // crashed writer's leavings
			continue
		}
		if !isEntryName(name) {
			continue
		}
		if info, err := e.Info(); err == nil {
			s.bytes += info.Size()
			s.entries++
		}
	}
	s.evict()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Hits: s.hits, Misses: s.misses, Errors: s.errors, Bytes: s.bytes, Entries: s.entries}
}

// Get returns the stored result for key. Absent entries are misses;
// present-but-invalid entries (truncated, bit-flipped, wrong version,
// undecodable) are pruned, counted in Errors, and reported as misses —
// a corrupt cache can cost time, never correctness. The returned error
// is diagnostic only (ErrIO for unreadable files, ErrCorrupt for
// pruned entries); found is authoritative.
func (s *Store) Get(key Key) (soc.Result, bool, error) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.misses++
		if os.IsNotExist(err) {
			s.mu.Unlock()
			return soc.Result{}, false, nil
		}
		s.errors++
		s.mu.Unlock()
		return soc.Result{}, false, fmt.Errorf("%w: %w", ErrIO, err)
	}
	res, err := decodeEntry(data)
	if err != nil {
		s.prune(path, int64(len(data)))
		return soc.Result{}, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	// Refresh the entry's age so oldest-first eviction approximates
	// LRU; best-effort, a failure only ages the entry.
	now := time.Now()
	os.Chtimes(path, now, now)
	return res, true, nil
}

// Put stores res under key, atomically (temp file + rename) and
// write-behind-safe: a failed write counts an error, removes its temp
// file, and leaves the store exactly as it was. Put then reclaims
// oldest entries if the byte cap is exceeded. The returned error
// (ErrIO-classed) reports a skipped insert, nothing else.
func (s *Store) Put(key Key, res soc.Result) error {
	payload := soc.AppendResult(make([]byte, 0, 1024), res)
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, headerSize+len(payload))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	path := s.path(key)
	var replaced int64 // size of an entry this Put overwrites
	hadOld := false
	if info, err := os.Stat(path); err == nil {
		replaced, hadOld = info.Size(), true
	}
	if err := writeAtomic(s.dir, path, buf); err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrIO, err)
	}
	s.mu.Lock()
	s.bytes += int64(len(buf))
	s.entries++
	if hadOld {
		s.bytes -= replaced
		s.entries--
	}
	s.mu.Unlock()
	s.evict()
	return nil
}

// osRename is the rename syscall behind the atomic commit, a variable
// so tests can inject a failing rename and prove the temp file is
// removed on that path too.
var osRename = os.Rename

// writeAtomic writes data to path via a synced temp file in dir and an
// atomic rename, so concurrent readers (any process) see either the
// old entry, no entry, or the complete new entry. The temp file is
// removed on every failure path — the deferred cleanup is structural,
// not per-branch, so no future error return can leak one (the Open
// stale-temp sweep remains a crash backstop only).
func writeAtomic(dir, path string, data []byte) (err error) {
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	committed := false
	defer func() {
		if !committed {
			os.Remove(tmp)
		}
	}()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := osRename(tmp, path); err != nil {
		return err
	}
	committed = true
	return nil
}

// prune deletes a corrupt entry and counts it: an error plus a miss
// (the caller reports a miss to the engine).
func (s *Store) prune(path string, size int64) {
	err := os.Remove(path)
	s.mu.Lock()
	s.errors++
	s.misses++
	if err == nil {
		s.bytes -= size
		s.entries--
	}
	s.mu.Unlock()
}

// evict reclaims oldest-first until the entry bytes fit the cap. The
// scan recomputes the footprint from the directory, so drift from
// concurrent processes (or from pruned unreadable files) self-heals
// here.
func (s *Store) evict() {
	s.mu.Lock()
	over := s.bytes > s.maxBytes
	s.mu.Unlock()
	if !over {
		return
	}

	type entry struct {
		name string
		size int64
		mod  time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return
	}
	var all []entry
	var total int64
	for _, e := range ents {
		if !isEntryName(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		all = append(all, entry{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mod.Equal(all[j].mod) {
			return all[i].mod.Before(all[j].mod)
		}
		return all[i].name < all[j].name // deterministic tie-break
	})
	kept := len(all)
	for _, e := range all {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(filepath.Join(s.dir, e.name)) == nil {
			total -= e.size
			kept--
		}
	}
	s.mu.Lock()
	s.bytes = total
	s.entries = kept
	s.mu.Unlock()
}

func (s *Store) path(key Key) string { return EntryPath(s.dir, key) }

// EntryPath returns the entry file a key maps to under dir — the
// store's on-disk naming contract, exported so fault-injection
// harnesses can corrupt specific entries (torn-write simulation)
// without reimplementing the layout.
func EntryPath(dir string, key Key) string {
	return filepath.Join(dir, hex.EncodeToString(key[:])+entrySuffix)
}

// isEntryName reports whether name is a complete entry file:
// 64 hex digits + suffix.
func isEntryName(name string) bool {
	if !strings.HasSuffix(name, entrySuffix) {
		return false
	}
	stem := strings.TrimSuffix(name, entrySuffix)
	if len(stem) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(stem)
	return err == nil
}

// decodeEntry validates one entry file end to end: magic, version,
// exact length, checksum, then the result decode.
func decodeEntry(data []byte) (soc.Result, error) {
	if len(data) < headerSize {
		return soc.Result{}, fmt.Errorf("diskcache: entry shorter than header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return soc.Result{}, fmt.Errorf("diskcache: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return soc.Result{}, fmt.Errorf("diskcache: entry version %d, want %d", v, Version)
	}
	plen := binary.LittleEndian.Uint32(data[8:])
	if int64(len(data)) != int64(headerSize)+int64(plen) {
		return soc.Result{}, fmt.Errorf("diskcache: entry length %d, header says %d", len(data), int64(headerSize)+int64(plen))
	}
	payload := data[headerSize:]
	var want [sha256.Size]byte
	copy(want[:], data[12:12+sha256.Size])
	if sha256.Sum256(payload) != want {
		return soc.Result{}, fmt.Errorf("diskcache: checksum mismatch")
	}
	return soc.DecodeResult(payload)
}
