package diskcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sysscale/internal/soc"
)

// fakeTier is a scriptable Tier: each Get/Put consults the current
// fail mode and counts how many operations actually reached it.
type fakeTier struct {
	mu     sync.Mutex
	gets   int
	puts   int
	getErr error
	putErr error
}

func (f *fakeTier) Get(key Key) (soc.Result, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.getErr != nil {
		return soc.Result{}, false, f.getErr
	}
	return soc.Result{}, false, nil
}

func (f *fakeTier) Put(key Key, res soc.Result) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	return f.putErr
}

func (f *fakeTier) Stats() Stats { return Stats{} }

func (f *fakeTier) fail(err error) {
	f.mu.Lock()
	f.getErr, f.putErr = err, err
	f.mu.Unlock()
}

func (f *fakeTier) ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets + f.puts
}

func ioErr() error { return fmt.Errorf("%w: injected", ErrIO) }

func TestBreakerTripsAndSkips(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 3, time.Hour)
	inner.fail(ioErr())

	for i := 0; i < 3; i++ {
		if b.Degraded() {
			t.Fatalf("breaker open after only %d failures (threshold 3)", i)
		}
		b.Get(keyOf(1))
	}
	if !b.Degraded() {
		t.Fatalf("breaker not open after 3 consecutive I/O failures")
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}

	// While open (and inside the probe interval) no operation reaches
	// the tier: Gets answer as misses, Puts drop, zero I/O.
	before := inner.ops()
	for i := 0; i < 10; i++ {
		if _, found, err := b.Get(keyOf(2)); found || err != nil {
			t.Fatalf("open-breaker Get = (found %v, err %v), want silent miss", found, err)
		}
		if err := b.Put(keyOf(2), soc.Result{}); err != nil {
			t.Fatalf("open-breaker Put err = %v, want nil", err)
		}
	}
	if got := inner.ops(); got != before {
		t.Errorf("open breaker let %d operations through", got-before)
	}
	st := b.Stats()
	if !st.Degraded {
		t.Errorf("Stats.Degraded = false on an open breaker")
	}
	if st.Misses != 10 {
		t.Errorf("Stats.Misses = %d, want 10 (skipped Gets count as misses)", st.Misses)
	}
}

func TestBreakerProbeClosesOnRecovery(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 2, 10*time.Millisecond)
	inner.fail(ioErr())
	b.Get(keyOf(1))
	b.Get(keyOf(1))
	if !b.Degraded() {
		t.Fatalf("breaker did not trip")
	}

	inner.fail(nil) // tier healed
	deadline := time.Now().Add(2 * time.Second)
	for b.Degraded() && time.Now().Before(deadline) {
		b.Get(keyOf(1)) // admitted as the probe once the interval elapses
		time.Sleep(time.Millisecond)
	}
	if b.Degraded() {
		t.Fatalf("breaker still open after a successful probe window")
	}
	// Closed again: traffic flows.
	before := inner.ops()
	b.Get(keyOf(2))
	b.Put(keyOf(2), soc.Result{})
	if inner.ops() != before+2 {
		t.Errorf("closed breaker withheld traffic")
	}
}

func TestBreakerFailedProbeStaysOpen(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 2, 5*time.Millisecond)
	inner.fail(ioErr())
	b.Get(keyOf(1))
	b.Get(keyOf(1))
	if !b.Degraded() {
		t.Fatalf("breaker did not trip")
	}
	time.Sleep(10 * time.Millisecond)
	b.Get(keyOf(1)) // probe, still failing
	if !b.Degraded() {
		t.Fatalf("failed probe closed the breaker")
	}
	// The failed probe re-arms the interval: the very next op is skipped.
	before := inner.ops()
	b.Get(keyOf(1))
	if inner.ops() != before {
		t.Errorf("operation admitted immediately after a failed probe")
	}
}

func TestBreakerCorruptionDoesNotTrip(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 2, time.Hour)
	inner.fail(fmt.Errorf("%w: bad checksum", ErrCorrupt))
	for i := 0; i < 20; i++ {
		b.Get(keyOf(1))
	}
	if b.Degraded() {
		t.Fatalf("corrupt entries tripped the breaker (self-healing failures must not count)")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 3, time.Hour)
	for i := 0; i < 5; i++ {
		inner.fail(ioErr())
		b.Get(keyOf(1))
		b.Get(keyOf(1))
		inner.fail(nil)
		b.Get(keyOf(1)) // streak broken at 2 of 3
	}
	if b.Degraded() {
		t.Fatalf("interleaved successes failed to reset the failure streak")
	}
}

func TestBreakerPutFailuresCount(t *testing.T) {
	inner := &fakeTier{}
	b := NewBreaker(inner, 3, time.Hour)
	inner.fail(ioErr())
	b.Put(keyOf(1), soc.Result{})
	b.Get(keyOf(1))
	b.Put(keyOf(1), soc.Result{})
	if !b.Degraded() {
		t.Fatalf("mixed Get/Put I/O failures did not trip the breaker")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(&fakeTier{}, 0, 0)
	if b.threshold != DefaultBreakerThreshold || b.probe != DefaultProbeInterval {
		t.Errorf("NewBreaker(0,0) = threshold %d probe %v, want defaults %d / %v",
			b.threshold, b.probe, DefaultBreakerThreshold, DefaultProbeInterval)
	}
	if errors.Is(ErrIO, ErrCorrupt) {
		t.Fatalf("error classes must be distinct")
	}
}
