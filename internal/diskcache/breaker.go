package diskcache

import (
	"errors"
	"sync"
	"time"

	"sysscale/internal/soc"
)

// DefaultBreakerThreshold is the consecutive-I/O-failure count that
// trips a default-constructed breaker open.
const DefaultBreakerThreshold = 8

// DefaultProbeInterval is how long a tripped breaker waits before
// letting one probe operation through to test whether the tier healed.
const DefaultProbeInterval = 5 * time.Second

// Breaker is the disk tier's circuit breaker: it wraps any Tier and
// watches operation outcomes. After threshold consecutive ErrIO-classed
// failures it trips open — subsequent Gets report silent misses and
// Puts are skipped, with zero I/O issued, so a dying disk degrades a
// sweep to memory-tier speed instead of grinding an I/O error (and its
// syscall latency, possibly seconds on a hung mount) into every job.
// While open, one operation per probe interval is admitted as a probe;
// a probe that succeeds closes the breaker and normal traffic resumes.
//
// Only ErrIO failures count toward the trip: corrupt entries are pruned
// by the store and cannot repeat, so they reset the failure streak like
// any other completed operation. The zero value is not usable;
// construct with NewBreaker. A Breaker is safe for concurrent use.
type Breaker struct {
	inner     Tier
	threshold int
	probe     time.Duration

	mu          sync.Mutex
	consec      int       // current streak of ErrIO-classed failures
	open        bool      // tripped: tier is being skipped
	lastProbe   time.Time // when the breaker tripped or last probed
	skippedGets int       // Gets answered as misses without I/O
	skippedPuts int       // Puts dropped without I/O
	trips       int       // times the breaker has tripped open
}

// NewBreaker wraps inner with a circuit breaker tripping after
// threshold consecutive I/O failures (<= 0 selects
// DefaultBreakerThreshold) and probing every probe interval
// (<= 0 selects DefaultProbeInterval).
func NewBreaker(inner Tier, threshold int, probe time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if probe <= 0 {
		probe = DefaultProbeInterval
	}
	return &Breaker{inner: inner, threshold: threshold, probe: probe}
}

// Get serves key through the wrapped tier, or as an I/O-free miss while
// the breaker is open (outside probe windows).
func (b *Breaker) Get(key Key) (soc.Result, bool, error) {
	if !b.admit(false) {
		return soc.Result{}, false, nil
	}
	res, found, err := b.inner.Get(key)
	b.record(err)
	return res, found, err
}

// Put stores through the wrapped tier, or drops the insert silently
// while the breaker is open (outside probe windows).
func (b *Breaker) Put(key Key, res soc.Result) error {
	if !b.admit(true) {
		return nil
	}
	err := b.inner.Put(key, res)
	b.record(err)
	return err
}

// admit reports whether the next operation may reach the tier. While
// open, only one operation per probe interval is admitted (as the
// probe); everything else is counted skipped.
func (b *Breaker) admit(put bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if now := time.Now(); now.Sub(b.lastProbe) >= b.probe {
		b.lastProbe = now
		return true
	}
	if put {
		b.skippedPuts++
	} else {
		b.skippedGets++
	}
	return false
}

// record feeds one admitted operation's outcome into the breaker
// state: I/O failures extend the streak (tripping at the threshold and
// re-arming the probe timer while open); any other outcome — success,
// miss, or a pruned corrupt entry — resets the streak and closes an
// open breaker (the probe succeeded).
func (b *Breaker) record(err error) {
	ioFailure := err != nil && errors.Is(err, ErrIO)
	b.mu.Lock()
	defer b.mu.Unlock()
	if ioFailure {
		b.consec++
		if b.open {
			b.lastProbe = time.Now() // failed probe: wait a full interval again
		} else if b.consec >= b.threshold {
			b.open = true
			b.trips++
			b.lastProbe = time.Now()
		}
		return
	}
	b.consec = 0
	b.open = false
}

// Degraded reports whether the breaker is currently open.
func (b *Breaker) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Stats returns the wrapped tier's counters overlaid with the breaker's
// view: skipped Gets count as misses (the engine re-simulated them),
// and Degraded reflects the breaker state.
func (b *Breaker) Stats() Stats {
	st := b.inner.Stats()
	b.mu.Lock()
	st.Misses += b.skippedGets
	st.Degraded = b.open
	b.mu.Unlock()
	return st
}
