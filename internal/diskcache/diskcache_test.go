package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

func testResult(name string) soc.Result {
	r := soc.Result{
		Workload:       name,
		Policy:         "sysscale",
		Duration:       1e9,
		Score:          0.987654321,
		ActiveScore:    1.125,
		PerfMet:        true,
		AvgPower:       4.5,
		Energy:         18.0,
		EDP:            0.0421,
		Transitions:    7,
		TransitionTime: 3500,
		MaxTransition:  900,
		PointResidency: []float64{0.6, 0.4},
		AvgCoreFreq:    1.9e9,
		AvgGfxFreq:     3.5e8,
	}
	for i := range r.CounterAvg {
		r.CounterAvg[i] = float64(i) * 0.017
	}
	_ = workload.CPUSingleThread
	return r
}

func keyOf(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	want := testResult("470.lbm")
	s.Put(keyOf(1), want)
	got, ok, _ := s.Get(keyOf(1))
	if !ok {
		t.Fatalf("Get missed a just-put entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk round trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	if _, ok, _ := s.Get(keyOf(2)); ok {
		t.Errorf("Get hit an absent key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 0 errors / 1 entry", st)
	}
}

// TestStoreSurvivesReopen is the in-process stand-in for the
// cross-process contract (CI runs the real two-process smoke): a
// result written by one Store is returned bit-identically by a fresh
// Store over the same directory.
func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	want := testResult("482.sphinx3")
	mustOpen(t, dir).Put(keyOf(9), want)

	fresh := mustOpen(t, dir)
	got, ok, _ := fresh.Get(keyOf(9))
	if !ok {
		t.Fatalf("fresh store missed the persisted entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("persisted result not bit-identical:\n got %+v\nwant %+v", got, want)
	}
	if st := fresh.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("reopen did not size existing entries: %+v", st)
	}
}

// TestCorruptionTorture: every way an entry can rot reads as a counted
// miss and is pruned from the directory — never a wrong result, never
// a panic.
func TestCorruptionTorture(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(data []byte) []byte // nil result = zero-length file
	}{
		{"zero-length", func(data []byte) []byte { return nil }},
		{"truncated header", func(data []byte) []byte { return data[:headerSize/2] }},
		{"truncated payload", func(data []byte) []byte { return data[:len(data)-5] }},
		{"bad magic", func(data []byte) []byte { data[0] ^= 0xff; return data }},
		{"wrong version", func(data []byte) []byte {
			binary.LittleEndian.PutUint32(data[4:], Version+1)
			return data
		}},
		{"bit-flipped checksum", func(data []byte) []byte { data[12] ^= 0x01; return data }},
		{"bit-flipped payload", func(data []byte) []byte { data[len(data)-1] ^= 0x80; return data }},
		{"payload with trailing garbage", func(data []byte) []byte {
			// Extend the payload and fix length + checksum so only the
			// result decode itself can catch it.
			payload := append(append([]byte(nil), data[headerSize:]...), 0xAA)
			sum := sha256.Sum256(payload)
			out := append([]byte(nil), data[:headerSize]...)
			binary.LittleEndian.PutUint32(out[8:], uint32(len(payload)))
			copy(out[12:], sum[:])
			return append(out, payload...)
		}},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir)
			s.Put(keyOf(3), testResult("433.milc"))
			path := filepath.Join(dir, pathBase(t, dir))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read entry: %v", err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatalf("corrupt entry: %v", err)
			}

			before := s.Stats()
			if _, ok, _ := s.Get(keyOf(3)); ok {
				t.Fatalf("corrupt entry served as a hit")
			}
			after := s.Stats()
			if after.Errors != before.Errors+1 {
				t.Errorf("Errors %d -> %d, want +1", before.Errors, after.Errors)
			}
			if after.Misses != before.Misses+1 {
				t.Errorf("Misses %d -> %d, want +1 (corruption degrades to a miss)", before.Misses, after.Misses)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not pruned (stat err %v)", err)
			}
			// The slot is usable again: a rewrite serves hits.
			s.Put(keyOf(3), testResult("433.milc"))
			if _, ok, _ := s.Get(keyOf(3)); !ok {
				t.Errorf("rewrite after prune missed")
			}
		})
	}
}

// pathBase returns the single entry file's name in dir.
func pathBase(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if isEntryName(e.Name()) {
			return e.Name()
		}
	}
	t.Fatalf("no entry file in %s", dir)
	return ""
}

func TestEvictionOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Put(keyOf(1), testResult("a"))
	entrySize := s.Stats().Bytes
	if entrySize <= 0 {
		t.Fatalf("no bytes after Put")
	}

	// Cap at ~3 entries, write 5 with strictly increasing mtimes.
	s = mustOpen(t, dir, WithMaxBytes(3*entrySize+entrySize/2))
	base := time.Now().Add(-time.Hour)
	for i := byte(1); i <= 5; i++ {
		s.Put(keyOf(i), testResult("a"))
		// Pin distinct mtimes: filesystem timestamp granularity would
		// otherwise make "oldest" ambiguous.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, pathFor(s, keyOf(i))), mt, mt); err != nil {
			t.Fatalf("Chtimes: %v", err)
		}
	}
	s.Put(keyOf(6), testResult("a")) // now as mtime: newest; triggers eviction

	for i := byte(1); i <= 3; i++ {
		if _, ok, _ := s.Get(keyOf(i)); ok {
			t.Errorf("oldest entry %d survived eviction", i)
		}
	}
	for i := byte(4); i <= 6; i++ {
		if _, ok, _ := s.Get(keyOf(i)); !ok {
			t.Errorf("newest entry %d was evicted", i)
		}
	}
	if st := s.Stats(); st.Bytes > 3*entrySize+entrySize/2 {
		t.Errorf("bytes %d still over cap", st.Bytes)
	}
}

func pathFor(s *Store, k Key) string { return filepath.Base(s.path(k)) }

func TestOpenCleansStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("temp file counted as an entry: %+v", st)
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("foreign file counted as an entry: %+v", st)
	}
	if !isEntryName(strings.Repeat("ab", sha256.Size)+entrySuffix) ||
		isEntryName("README.txt") || isEntryName("zz"+entrySuffix) {
		t.Errorf("isEntryName misclassifies")
	}
}

// TestPutFailedRenameRemovesTemp: a failing rename (the last step of
// the atomic commit) must count an error, leave no entry, and remove
// its temp file — Put cleans up every error path itself rather than
// relying on the stale-temp sweep at the next Open.
func TestPutFailedRenameRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	osRename = func(string, string) error { return errors.New("injected rename failure") }
	defer func() { osRename = os.Rename }()

	err := s.Put(keyOf(7), testResult("456.hmmer"))
	if !errors.Is(err, ErrIO) {
		t.Fatalf("Put error = %v, want ErrIO-classed", err)
	}
	if st := s.Stats(); st.Errors != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after failed Put = %+v, want 1 error, 0 entries, 0 bytes", st)
	}
	ents, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range ents {
		t.Errorf("failed Put left %q behind", e.Name())
	}

	osRename = os.Rename
	if err := s.Put(keyOf(7), testResult("456.hmmer")); err != nil {
		t.Fatalf("Put after rename recovery: %v", err)
	}
	if _, ok, _ := s.Get(keyOf(7)); !ok {
		t.Errorf("store unusable after a failed rename")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := keyOf(byte(i % 8))
				if i%2 == g%2 {
					s.Put(k, testResult("a"))
				} else {
					s.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	// All entries readable and intact afterwards.
	for i := byte(0); i < 8; i++ {
		if res, ok, _ := s.Get(keyOf(i)); ok && !reflect.DeepEqual(res, testResult("a")) {
			t.Errorf("concurrent traffic corrupted entry %d", i)
		}
	}
}
