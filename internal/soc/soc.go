// Package soc assembles the full mobile SoC model — compute, IO and
// memory domains, rails, PMU flow, counters, meters — and runs the
// epoch simulation that stands in for the paper's real Skylake system.
//
// The package defines the Policy interface that power-management
// governors implement (SysScale and the baselines live in
// internal/policy) and exposes Run, the simulation entry point.
package soc

import (
	"fmt"

	"sysscale/internal/cache"
	"sysscale/internal/compute"
	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/ioengine"
	"sysscale/internal/memctrl"
	"sysscale/internal/mrc"
	"sysscale/internal/perfcounters"
	"sysscale/internal/pmu"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// PolicyContext is the information a governor sees at each evaluation
// interval: exactly what the PMU firmware can observe — averaged
// counters, peripheral CSRs, the operating-point ladder, and the
// worst-case budget table. No oracle workload knowledge is exposed.
type PolicyContext struct {
	Now      sim.Time
	Interval sim.Time
	// Counters is the window-averaged sample (1ms samples averaged
	// over the evaluation interval, §4.3).
	Counters perfcounters.Sample
	// CSR is the IO peripheral configuration register file.
	CSR ioengine.CSR
	// Current is the active IO+memory operating point.
	Current vf.OperatingPoint
	// Ladder is the supported operating points, highest first.
	Ladder []vf.OperatingPoint
	// WorstIO and WorstMem return the worst-case power budget the
	// domain needs at an operating point (the PBM reservation table).
	WorstIO  func(vf.OperatingPoint) power.Watt
	WorstMem func(vf.OperatingPoint) power.Watt
	// ComputeBudget and ComputePower report last interval's compute
	// allocation and measured draw (used by running-average governors
	// such as CoScale's credit mechanism).
	ComputeBudget power.Watt
	ComputePower  power.Watt
	// IOMemPower is the measured IO+memory domain draw averaged over
	// the last interval — the quantity the MemScale/CoScale projection
	// turns into a redistribution credit (§6).
	IOMemPower power.Watt
	// CoreFreq is the core P-state granted in the last interval.
	CoreFreq vf.Hz
	// Warmup is true on the first evaluation after reset, before any
	// counter samples exist.
	Warmup bool
	// GfxBusy hints that the driver has an active graphics context
	// (drivers know this; it selects the PBM split).
	GfxBusy bool
}

// PolicyDecision is a governor's output for the next interval.
type PolicyDecision struct {
	// Target operating point for the IO and memory domains.
	Target vf.OperatingPoint
	// OptimizedMRC selects per-frequency register images (SysScale);
	// false keeps the boot image (MemScale/CoScale, Observation 4).
	OptimizedMRC bool
	// IOBudget and MemBudget are the domain reservations to program
	// into the PBM.
	IOBudget, MemBudget power.Watt
	// CoreFreqReq and GfxFreqReq cap the compute P-states (0 = let the
	// PBM grant the budget maximum). CoScale uses CoreFreqReq.
	CoreFreqReq, GfxFreqReq vf.Hz
	// ComputeBonus is extra compute budget granted this interval from
	// a governor-managed running-average credit (CoScale-Redist).
	ComputeBonus power.Watt
}

// Policy is a power-management governor. Implementations must be
// deterministic functions of the context (plus their own state).
type Policy interface {
	// Name identifies the governor in results.
	Name() string
	// Decide returns the governor's decision for the next interval.
	Decide(ctx PolicyContext) PolicyDecision
	// Reset clears internal state before a run.
	Reset()
	// Clone returns an independent copy of the policy carrying the same
	// configuration but none of the accumulated decision state. Run
	// mutates policy state (governors are stateful and Reset at run
	// start), so sharing one Policy value across concurrent simulations
	// is a data race; the run engine clones the configured policy once
	// per job instead. Clone must be safe to call from any goroutine.
	Clone() Policy
}

// Config describes one simulation run.
type Config struct {
	TDP      power.Watt
	DRAMKind dram.Kind
	Ladder   []vf.OperatingPoint // highest first; index 0 is the boot point
	CSR      ioengine.CSR
	Workload workload.Workload
	Policy   Policy
	Duration sim.Time

	// EvalInterval is the PMU algorithm period (§4.3: 30ms default);
	// SampleInterval is the counter sampling period (1ms default).
	EvalInterval   sim.Time
	SampleInterval sim.Time

	// FixedCoreFreq pins the CPU cores (used by the §3 motivation
	// experiments, which fix 1.2 or 1.3GHz). 0 = PBM-managed.
	FixedCoreFreq vf.Hz
	// FixedGfxFreq pins the graphics engines. 0 = PBM-managed.
	FixedGfxFreq vf.Hz

	// Seed drives any stochastic model elements.
	Seed uint64

	// RecordEvents enables the event log (flow tracing).
	RecordEvents bool
	// TracePower records a per-tick package power trace in the result.
	TracePower bool

	// DisableTickMemo turns off the steady-state tick memo and resolves
	// the progress-rate fixpoint on every tick. Results are bit-identical
	// either way (the memo is keyed by every input that feeds the
	// evaluation); the knob exists for A/B verification and benchmarks.
	DisableTickMemo bool

	// DisableSpanBatching turns off the span-batched core and walks the
	// run one tick at a time. Between policy decisions and phase edges
	// the platform programming is frozen, so the batched core integrates
	// whole spans of identical ticks in closed form — O(phases +
	// decisions) per run instead of O(duration/SampleInterval). The two
	// paths differ only in floating-point summation order (closed-form
	// multiplication versus repeated addition); across the shipped
	// workload and policy suites the Results agree to ≤1e-9 relative on
	// every field (enforced by TestSpanBatchingEquivalence; measured
	// ≤3e-11). This is an empirical bound, not a structural guarantee:
	// an ulp-level difference in a window-averaged counter could in
	// principle flip a custom governor sitting exactly on a decision
	// threshold. The knob exists for A/B verification and benchmarks.
	DisableSpanBatching bool

	// DisablePBMMemo turns off the PBM grant memo and re-runs the
	// budget→P-state arbitration on every applyPBM call. The memo is
	// exact — it only fires when the request, the compute budget, and
	// the programmed compute state all match the previous outcome, so
	// results are bit-identical either way; the knob keeps that claim
	// falsifiable by A/B tests, like the other two fast paths.
	DisablePBMMemo bool

	// DisableSpanCache turns off the cross-job span cache for this run:
	// every span integrates in full even when the executing engine has
	// a warm SpanCache holding an identical span from an earlier job.
	// The cache is exact — spans are keyed by value on every input that
	// feeds their integration, and cached deltas store the pre-
	// multiplied increments the full integration would have produced —
	// so results are bit-identical either way; the knob keeps that
	// claim falsifiable by A/B tests, like the other fast paths. Runs
	// outside an engine (soc.Run, a bare Runner) have no cache and
	// ignore the knob.
	DisableSpanCache bool
}

// DefaultConfig returns the Table 2 platform: 4.5W TDP, LPDDR3-1600,
// the two-point ladder, one HD panel, 30ms evaluation interval.
func DefaultConfig() Config {
	return Config{
		TDP:            4.5,
		DRAMKind:       dram.LPDDR3,
		Ladder:         vf.TwoPointLadder(),
		CSR:            ioengine.SingleHDLaptop(),
		Duration:       2 * sim.Second,
		EvalInterval:   30 * sim.Millisecond,
		SampleInterval: 1 * sim.Millisecond,
		Seed:           1,
	}
}

// Validate checks the configuration. Every rejection wraps
// ErrInvalidConfig, so callers can classify failures with errors.Is.
func (c Config) Validate() error {
	if c.TDP <= 0 {
		return fmt.Errorf("%w: non-positive TDP", ErrInvalidConfig)
	}
	if len(c.Ladder) == 0 {
		return fmt.Errorf("%w: empty operating-point ladder", ErrInvalidConfig)
	}
	for _, op := range c.Ladder {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
		if !c.DRAMKind.SupportsBin(op.DDR) {
			return fmt.Errorf("%w: ladder point %s uses unsupported bin %v", ErrInvalidConfig, op.Name, op.DDR)
		}
	}
	if c.Policy == nil {
		return fmt.Errorf("%w: nil policy", ErrInvalidConfig)
	}
	if v, ok := c.Policy.(PolicyValidator); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("%w: policy %s: %w", ErrInvalidConfig, c.Policy.Name(), err)
		}
	}
	if err := c.Workload.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: non-positive duration", ErrInvalidConfig)
	}
	if c.EvalInterval <= 0 || c.SampleInterval <= 0 {
		return fmt.Errorf("%w: non-positive interval", ErrInvalidConfig)
	}
	if c.SampleInterval > c.EvalInterval {
		return fmt.Errorf("%w: sample interval exceeds evaluation interval", ErrInvalidConfig)
	}
	return nil
}

// Platform is one assembled SoC instance.
type Platform struct {
	cfg Config

	clock    *sim.Clock
	rails    *vf.Rails
	dev      *dram.Device
	store    *mrc.Store
	mc       *memctrl.Controller
	llc      *cache.LLC
	fabric   *interconnect.Fabric
	ioeng    *ioengine.Engines
	cores    *compute.Cores
	gfx      *compute.Gfx
	ddrio    *ddrio
	counters *perfcounters.File
	meters   *power.MeterBank
	budget   *power.Budget
	pbm      *pmu.PBM
	flow     *pmu.Flow
	log      *sim.EventLog
	dramPow  dram.PowerParams

	// reference memory model for phase-relative latency.
	refMC *memctrl.Controller

	current vf.OperatingPoint
	// currentIdx caches the ladder index of current, so the hot loop's
	// residency accounting does not rescan the ladder every tick;
	// ladderIdx is the precomputed OperatingPoint→index map that backs
	// it (transitions look the new point up in O(1) instead of scanning
	// the ladder).
	currentIdx int
	ladderIdx  map[vf.OperatingPoint]int
	bonus      power.Watt

	// refLats caches each phase's reference loaded latency (computed at
	// the boot/high point, constant for the whole run).
	refLats map[int]float64

	// Steady-state tick memo (run.go): one resolved tickEval per phase,
	// valid while tickProg — the programmable state feeding evalTick —
	// is unchanged. memoReady marks the per-phase slices as sized for
	// the current workload (pooled platforms recycle their backing
	// arrays across runs). evalCalls counts full fixpoint evaluations.
	tickProg  tickProg
	tickMemo  []tickEval
	tickValid []bool
	memoReady bool
	evalCalls int

	// pbm grant memo (run.go): skips the budget→P-state search when the
	// request, the compute budget, and the currently programmed compute
	// state all match the previous applyPBM outcome.
	pbmMemo pbmMemo

	// spanCache is the engine-owned cross-job span cache (spancache.go),
	// threaded in through Runner.SetSpanCache; nil for bare runs.
	spanCache *SpanCache

	// worstIOFn/worstMemFn are the worst-case budget tables as method
	// values, bound once at assembly so the policy-epoch context
	// carries them without allocating two closures per decision.
	worstIOFn  func(vf.OperatingPoint) power.Watt
	worstMemFn func(vf.OperatingPoint) power.Watt
}

// NewPlatform assembles an SoC without running it, for callers that
// need the budget tables or component models (the experiment harness).
func NewPlatform(cfg Config) (*Platform, error) { return newPlatform(cfg) }

// newPlatform assembles the SoC at the boot operating point (ladder[0])
// with the MRC trained for every bin.
func newPlatform(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	boot := cfg.Ladder[0]

	p := &Platform{cfg: cfg, current: boot, refLats: make(map[int]float64)}
	p.worstIOFn = p.WorstCaseIOBudget
	p.worstMemFn = p.WorstCaseMemBudget
	p.ladderIdx = make(map[vf.OperatingPoint]int, len(cfg.Ladder))
	p.fillLadderIndex()
	p.clock = sim.NewClock(cfg.SampleInterval)
	p.rails = vf.DefaultRails()
	if cfg.RecordEvents {
		p.log = sim.NewEventLog(0)
	}

	var err error
	p.dev, err = dram.NewDevice(cfg.DRAMKind, dram.DefaultGeometry(), boot.DDR)
	if err != nil {
		return nil, err
	}
	p.store, err = mrc.Train(cfg.DRAMKind)
	if err != nil {
		return nil, err
	}
	p.mc, err = memctrl.New(memctrl.DefaultParams(), p.dev)
	if err != nil {
		return nil, err
	}
	if err := p.mc.SetOperatingPoint(boot.MC, boot.VSA); err != nil {
		return nil, err
	}
	p.llc, err = cache.New(cache.DefaultParams())
	if err != nil {
		return nil, err
	}
	p.fabric, err = interconnect.New(interconnect.DefaultParams(), boot.Interco, boot.VSA)
	if err != nil {
		return nil, err
	}
	p.ioeng = ioengine.NewEngines()
	p.ioeng.Configure(cfg.CSR)
	p.cores, err = compute.NewCores(compute.DefaultCoreParams())
	if err != nil {
		return nil, err
	}
	p.gfx, err = compute.NewGfx(compute.DefaultGfxParams())
	if err != nil {
		return nil, err
	}
	p.ddrio = newDDRIO()
	p.counters = perfcounters.New()
	p.meters = power.NewMeterBank()
	p.dramPow = dram.DefaultPowerParams()

	// Program rails to the boot point.
	if _, err := p.rails.Get(vf.RailVSA).Set(boot.VSA); err != nil {
		return nil, err
	}
	if _, err := p.rails.Get(vf.RailVIO).Set(boot.VIO); err != nil {
		return nil, err
	}

	// Budget: boot reservations are the worst case at the boot point.
	io, mem := p.clampReservations(p.WorstCaseIOBudget(boot), p.WorstCaseMemBudget(boot))
	p.budget, err = power.NewBudget(cfg.TDP, io, mem, uncoreBudget)
	if err != nil {
		return nil, err
	}
	p.pbm, err = pmu.NewPBM(p.budget, p.cores, p.gfx)
	if err != nil {
		return nil, err
	}
	p.flow, err = pmu.NewFlow(p.rails, p.fabric, p.mc, p.dev, p.store, p.log, pmu.DefaultFlowOptions(boot.DDR))
	if err != nil {
		return nil, err
	}

	// Reference memory model: a scratch controller pinned at the
	// highest point with trained timing, used to define each phase's
	// reference latency.
	refDev, err := dram.NewDevice(cfg.DRAMKind, dram.DefaultGeometry(), boot.DDR)
	if err != nil {
		return nil, err
	}
	p.refMC, err = memctrl.New(memctrl.DefaultParams(), refDev)
	if err != nil {
		return nil, err
	}
	if err := p.refMC.SetOperatingPoint(boot.MC, boot.VSA); err != nil {
		return nil, err
	}
	return p, nil
}

// EventLog returns the run's event log (nil unless RecordEvents).
func (p *Platform) EventLog() *sim.EventLog { return p.log }

// uncoreBudget is the fixed reservation for miscellaneous uncore logic.
const uncoreBudget power.Watt = 0.20

// uncorePower is the actual uncore draw while the package is active.
const uncorePower power.Watt = 0.10
