package soc

import (
	"encoding/binary"
	"fmt"
	"math"

	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Result binary codec: the deterministic, exact encoding the on-disk
// result tier (internal/diskcache) checksums and stores. Every float64
// is written as its IEEE-754 bit pattern, so a decoded Result is
// bit-identical to the encoded one — including negative zero, and NaN
// payloads should one ever appear. Strings are length-prefixed raw
// bytes; fixed-size arrays carry their length so a build whose rail or
// counter topology differs rejects the entry (a decode error, which
// the disk tier treats as a miss) instead of misinterpreting it.
//
// The layout is versioned by the disk tier's entry header, not here:
// any change to this encoding MUST bump diskcache's entry version so
// old entries read as misses rather than as garbage.

// nilSlice is the count sentinel distinguishing a nil slice from an
// empty one, preserving Result equality across a round trip.
const nilSlice = ^uint32(0)

// AppendResult appends the deterministic binary encoding of r to b and
// returns the extended slice. Encoding is total: every Result value
// encodes.
func AppendResult(b []byte, r Result) []byte {
	b = appendResultString(b, r.Workload)
	b = appendResultString(b, r.Policy)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Duration))
	b = appendResultFloat(b, r.Score)
	b = appendResultFloat(b, r.ActiveScore)
	if r.PerfMet {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendResultFloat(b, float64(r.AvgPower))
	b = appendResultFloat(b, float64(r.Energy))
	b = appendResultFloat(b, r.EDP)
	b = binary.LittleEndian.AppendUint32(b, uint32(vf.NumRails))
	for _, w := range r.RailAvg {
		b = appendResultFloat(b, float64(w))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Transitions))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.TransitionTime))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.MaxTransition))
	b = appendResultFloats(b, r.PointResidency)
	b = appendResultFloat(b, float64(r.AvgCoreFreq))
	b = appendResultFloat(b, float64(r.AvgGfxFreq))
	b = binary.LittleEndian.AppendUint32(b, uint32(perfcounters.NumCounters))
	for _, v := range r.CounterAvg {
		b = appendResultFloat(b, v)
	}
	b = appendResultFloats(b, r.PowerTrace)
	return b
}

// DecodeResult decodes one AppendResult encoding. It fails on any
// truncation, length mismatch, topology mismatch (rail/counter count
// differs from this build), or trailing bytes — a malformed input
// never yields a partially-filled Result.
func DecodeResult(b []byte) (Result, error) {
	d := resultDecoder{buf: b}
	var r Result
	r.Workload = d.string()
	r.Policy = d.string()
	r.Duration = sim.Time(d.u64())
	r.Score = d.float()
	r.ActiveScore = d.float()
	r.PerfMet = d.bool()
	r.AvgPower = power.Watt(d.float())
	r.Energy = power.Joule(d.float())
	r.EDP = d.float()
	if n := d.u32(); d.err == nil && n != uint32(vf.NumRails) {
		return Result{}, fmt.Errorf("soc: result codec: %d rails, this build has %d", n, vf.NumRails)
	}
	for i := range r.RailAvg {
		r.RailAvg[i] = power.Watt(d.float())
	}
	r.Transitions = int(d.u64())
	r.TransitionTime = sim.Time(d.u64())
	r.MaxTransition = sim.Time(d.u64())
	r.PointResidency = d.floats()
	r.AvgCoreFreq = vf.Hz(d.float())
	r.AvgGfxFreq = vf.Hz(d.float())
	if n := d.u32(); d.err == nil && n != uint32(perfcounters.NumCounters) {
		return Result{}, fmt.Errorf("soc: result codec: %d counters, this build has %d", n, perfcounters.NumCounters)
	}
	for i := range r.CounterAvg {
		r.CounterAvg[i] = d.float()
	}
	r.PowerTrace = d.floats()
	if d.err != nil {
		return Result{}, d.err
	}
	if d.off != len(d.buf) {
		return Result{}, fmt.Errorf("soc: result codec: %d trailing bytes", len(d.buf)-d.off)
	}
	return r, nil
}

func appendResultString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendResultFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendResultFloats(b []byte, fs []float64) []byte {
	if fs == nil {
		return binary.LittleEndian.AppendUint32(b, nilSlice)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fs)))
	for _, f := range fs {
		b = appendResultFloat(b, f)
	}
	return b
}

// resultDecoder is an error-latching cursor over one encoding: after
// the first failure every read returns zero and the error survives.
type resultDecoder struct {
	buf []byte
	off int
	err error
}

func (d *resultDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("soc: result codec: truncated at byte %d", d.off)
	}
}

func (d *resultDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *resultDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *resultDecoder) float() float64 { return math.Float64frombits(d.u64()) }

func (d *resultDecoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off+1 > len(d.buf) {
		d.fail()
		return false
	}
	v := d.buf[d.off]
	d.off++
	if v > 1 {
		d.err = fmt.Errorf("soc: result codec: bad bool byte %d at %d", v, d.off-1)
		return false
	}
	return v == 1
}

func (d *resultDecoder) string() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if int(n) > len(d.buf)-d.off {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *resultDecoder) floats() []float64 {
	n := d.u32()
	if d.err != nil || n == nilSlice {
		return nil
	}
	if int(n) > (len(d.buf)-d.off)/8 {
		d.fail()
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = d.float()
	}
	return fs
}
