package soc

import (
	"sysscale/internal/compute"
	"sysscale/internal/dram"
	"sysscale/internal/memctrl"
	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// This file implements the paper's §6 comparison methodology for
// MemScale-Redist and CoScale-Redist. No real system implements either
// technique, so the paper *projects* their performance: (1) estimate
// each technique's average power savings from per-component
// measurements, (2) map a compute-budget increase to a frequency
// increase through a performance/power model, and (3) scale by the
// workload's measured performance scalability. We reproduce that
// projection here, feeding it with the baseline run's measured
// utilizations — alongside the honest closed-loop policy simulations in
// internal/policy, which additionally expose the penalties (detuned
// registers, shared-rail limits) the projection ignores.

// MemScaleProjectedSavings estimates the average power MemScale would
// save on the workload of a baseline run: the frequency-only savings of
// the components it scales (memory controller clock, DRAM background,
// DDRIO clock), at the baseline's measured utilization, over the
// DRAM-active share of time. Voltage terms are excluded because the
// V_SA and V_IO rails are shared with unscaled components (§2.1), and
// register-detuning penalties are excluded because the projection—like
// the paper's—is generous to the prior work.
func MemScaleProjectedSavings(base Result, high, low vf.OperatingPoint) power.Watt {
	bw := base.CounterAvg.Get(perfcounters.MemReadBytes) + base.CounterAvg.Get(perfcounters.MemWriteBytes)
	geom := dram.DefaultGeometry()
	mcp := memctrl.DefaultParams()
	usableHigh := geom.PeakBandwidth(high.DDR) * mcp.SchedulingEff
	util := 0.0
	if usableHigh > 0 {
		util = bw / usableHigh
	}
	if util > 1 {
		util = 1
	}
	activity := 0.18 + 0.82*util

	// Memory controller: clock scales, V_SA cannot.
	mcHigh := power.Dynamic(mcp.Cdyn, high.VSA, high.MC, activity)
	mcLow := power.Dynamic(mcp.Cdyn, high.VSA, low.MC, activity)

	// DRAM background power scales linearly with the transfer rate.
	pp := dram.DefaultPowerParams()
	bgHigh := power.Watt(float64(pp.BackgroundPerHz) * float64(high.DDR))
	bgLow := power.Watt(float64(pp.BackgroundPerHz) * float64(low.DDR))

	// DDRIO digital: clock scales, V_IO cannot.
	dd := newDDRIO()
	ddHigh := power.Dynamic(dd.cdyn, high.VIO, high.DDR/2, 0.25+0.75*util)
	ddLow := power.Dynamic(dd.cdyn, high.VIO, low.DDR/2, 0.25+0.75*util)

	save := (mcHigh - mcLow) + (bgHigh - bgLow) + (ddHigh - ddLow)
	if save < 0 {
		save = 0
	}
	return power.Watt(float64(save) * dramActiveShare(base))
}

// CoScaleProjectedSavings adds CoScale's CPU half: during the fraction
// of time the workload stalls on memory, the coordinated search runs
// the cores one notch lower, saving a share of core dynamic power.
func CoScaleProjectedSavings(base Result, high, low vf.OperatingPoint) power.Watt {
	mem := MemScaleProjectedSavings(base, high, low)
	stallFrac := base.CounterAvg.Get(perfcounters.LLCStalls) / 100
	if stallFrac > 1 {
		stallFrac = 1
	}
	// One demotion notch (~20% clock) near-cubically reduces core power
	// on the sloped part of the V/F curve; 45% is the per-notch saving
	// CoScale's gradient search typically realizes.
	coreSave := float64(base.RailAvg[vf.RailVCore]) * stallFrac * 0.45
	return mem + power.Watt(coreSave)
}

// dramActiveShare estimates the share of run time with DRAM out of
// self-refresh from the result's counter telemetry: battery workloads
// only expose savings during C0/C2 (§7.3).
func dramActiveShare(base Result) float64 {
	// CoreCycles counts only active time; its ratio to the granted
	// frequency recovers the C0 share. Memory stays active in C2 as
	// well; the display's C2 traffic is a small addition, so the C0
	// share is a slightly conservative proxy.
	if base.AvgCoreFreq <= 0 {
		return 1
	}
	share := base.CounterAvg.Get(perfcounters.CoreCycles) / float64(base.AvgCoreFreq)
	if share > 1 {
		share = 1
	}
	if share < 0 {
		share = 0
	}
	return share
}

// ProjectedPerfGain runs the paper's projection steps 2 and 3: convert
// the savings into a compute-budget increase, the budget into a
// frequency increase (through the same V/F machinery the PBM uses),
// and the frequency increase into performance using the workload's
// measured scalability.
//
// gfx selects the graphics projection (Fig. 8) instead of the CPU one.
func ProjectedPerfGain(cfg Config, base Result, savings power.Watt, gfx bool) (float64, error) {
	return ProjectedPerfGainWith(Run, cfg, base, savings, gfx)
}

// ProjectedPerfGainWith is ProjectedPerfGain with the scalability probe
// executed through run, letting batch callers reuse an engine's
// memoized probe result.
func ProjectedPerfGainWith(run RunFunc, cfg Config, base Result, savings power.Watt, gfx bool) (float64, error) {
	if savings <= 0 {
		return 0, nil
	}
	scal, err := MeasureScalabilityWith(run, cfg, base, gfx)
	if err != nil {
		return 0, err
	}
	if gfx {
		g, err := compute.NewGfx(compute.DefaultGfxParams())
		if err != nil {
			return 0, err
		}
		// The graphics engines hold ~85% of the compute budget on
		// graphics workloads (§7.2).
		f0 := float64(base.AvgGfxFreq)
		budget0 := g.PlannedPower(vf.Hz(f0), 0.85)
		f1 := float64(g.FreqForBudget(budget0+savings, 0.85))
		if f0 <= 0 {
			return 0, nil
		}
		return scal * (f1/f0 - 1), nil
	}
	c, err := compute.NewCores(compute.DefaultCoreParams())
	if err != nil {
		return 0, err
	}
	f0 := float64(base.AvgCoreFreq)
	active := 1
	budget0 := c.PlannedPower(vf.Hz(f0), active, 0.75)
	f1 := float64(c.FreqForBudget(budget0+savings, active, 0.75))
	if f0 <= 0 {
		return 0, nil
	}
	return scal * (f1/f0 - 1), nil
}

// MeasureScalability measures the workload's performance scalability
// with compute frequency (footnote 8): rerun the baseline with the
// relevant clock raised 10% and take the relative score change per
// relative frequency change.
func MeasureScalability(cfg Config, base Result, gfx bool) (float64, error) {
	return MeasureScalabilityWith(Run, cfg, base, gfx)
}

// scalabilityBump is the relative clock raise of the probe run.
const scalabilityBump = 1.10

// ScalabilityProbeConfig returns the probe configuration the
// scalability measurement executes. ok is false when the base run
// exposes no relevant clock (the scalability is then defined as 0).
// Batch callers pre-run the probes of a whole suite through the engine
// so the subsequent MeasureScalabilityWith calls hit its cache.
func ScalabilityProbeConfig(cfg Config, base Result, gfx bool) (probe Config, ok bool) {
	probe = cfg
	if gfx {
		if base.AvgGfxFreq <= 0 {
			return probe, false
		}
		probe.FixedGfxFreq = vf.Hz(float64(base.AvgGfxFreq) * scalabilityBump)
		probe.FixedCoreFreq = base.AvgCoreFreq
	} else {
		if base.AvgCoreFreq <= 0 {
			return probe, false
		}
		probe.FixedCoreFreq = vf.Hz(float64(base.AvgCoreFreq) * scalabilityBump)
	}
	return probe, true
}

// MeasureScalabilityWith is MeasureScalability with the probe executed
// through run.
func MeasureScalabilityWith(run RunFunc, cfg Config, base Result, gfx bool) (float64, error) {
	const bump = scalabilityBump
	probe, ok := ScalabilityProbeConfig(cfg, base, gfx)
	if !ok {
		return 0, nil
	}
	r, err := run(probe)
	if err != nil {
		return 0, err
	}
	if base.Score <= 0 {
		return 0, nil
	}
	scal := (r.Score/base.Score - 1) / (bump - 1)
	if scal < 0 {
		scal = 0
	}
	if scal > 1 {
		scal = 1
	}
	return scal, nil
}

// ProjectedPowerReduction is the battery-life analogue (Fig. 9): the
// technique's projected savings as a fraction of the baseline's
// average power.
func ProjectedPowerReduction(base Result, savings power.Watt) float64 {
	if base.AvgPower <= 0 {
		return 0
	}
	frac := float64(savings / base.AvgPower)
	if frac < 0 {
		frac = 0
	}
	return frac
}
