package soc

import (
	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// The power-budget-management reservation table (Observation 1 / §4.3).
// A domain's reservation at an operating point is the worst-case power
// the domain can draw at that point — every component at full
// utilization — inflated by a guard band. The baseline keeps the IO and
// memory domains reserved at the *highest* point forever; SysScale
// re-reserves per operating point, and the difference is the budget it
// redistributes to the compute domain.

// budgetGuardband is the PBM's margin over modeled worst-case draw
// (regulator tolerance, temperature, aging).
const budgetGuardband = 1.25

// reservationTDPCap bounds the joint IO+memory reservation to a
// fraction of TDP: on severely TDP-constrained parts the PBM cannot
// hand three quarters of the package budget to the uncore domains or
// the cores could not run at all. Reservations above the cap are
// scaled down proportionally (see Platform.clampReservations).
const reservationTDPCap = 0.65

// WorstCaseIOBudget returns the IO-domain reservation at op: the IO
// interconnect plus all IO engines/controllers at full tilt.
func (p *Platform) WorstCaseIOBudget(op vf.OperatingPoint) power.Watt {
	fabric := interconnect.DefaultParams()
	dyn := power.Dynamic(fabric.Cdyn, op.VSA, op.Interco, 1)
	leak := power.Leakage(fabric.LeakAtNom, op.VSA, fabric.NomVolt)
	fabricW := dyn + leak

	// IO engines/controllers (display, ISP, USB, storage, PCIe...)
	// at worst-case streaming.
	engW := power.Dynamic(ioControllersCdyn, op.VSA, op.Interco, 1) +
		power.Leakage(ioControllersLeak, op.VSA, vf.NominalVSA)

	return power.Watt(float64(fabricW+engW) * budgetGuardband)
}

// ioControllersCdyn/Leak cover the full IO controller complex (display,
// ISP, USB, storage, PCIe root), which is larger than the display+ISP
// engines the activity model tracks.
const (
	ioControllersCdyn = 0.70e-9
	ioControllersLeak = 0.050
)

// clampReservations applies the TDP-proportional cap to a requested
// IO/memory reservation pair.
func (p *Platform) clampReservations(io, mem power.Watt) (power.Watt, power.Watt) {
	cap := power.Watt(reservationTDPCap * float64(p.cfg.TDP))
	sum := io + mem
	if sum <= cap || sum <= 0 {
		return io, mem
	}
	scale := float64(cap) / float64(sum)
	return power.Watt(float64(io) * scale), power.Watt(float64(mem) * scale)
}

// WorstCaseMemBudget returns the memory-domain reservation at op: the
// memory controller, the DRAM device at the point's peak achievable
// bandwidth, and the DDRIO digital interface, all at full utilization.
// A detuned interface (MemScale-style operation) actually *raises* the
// worst case through termination waste; the reservation accounts for
// the trained interface, which is what the shipped SysScale reserves.
func (p *Platform) WorstCaseMemBudget(op vf.OperatingPoint) power.Watt {
	mcp := memctrl.DefaultParams()
	mcW := power.Dynamic(mcp.Cdyn, op.VSA, op.MC, 1) +
		power.Leakage(mcp.LeakAtNom, op.VSA, mcp.NominalVolt)

	geom := dram.DefaultGeometry()
	peakUsable := geom.PeakBandwidth(op.DDR) * mcp.SchedulingEff
	// Worst-case DRAM draw at this bin: full-rate traffic with trained
	// timing. Build the estimate from the power parameters directly.
	pp := p.dramPow
	bg := pp.BackgroundBase + power.Watt(float64(pp.BackgroundPerHz)*float64(op.DDR)) + pp.RefreshAvg
	array := power.Watt(pp.ArrayEnergyPerByte * peakUsable)
	ioScale := 1.0
	if op.DDR > 0 && op.DDR < pp.ReferenceFreq {
		ioScale = float64(pp.ReferenceFreq) / float64(op.DDR)
	}
	ioW := power.Watt(pp.IOEnergyPerByte * peakUsable * ioScale)
	dramW := bg + array + ioW + pp.TerminationMax + pp.RegisterPower

	ddrioW := p.ddrio.Power(op.VIO, op.DDR, 1)

	return power.Watt(float64(mcW+dramW+ddrioW) * budgetGuardband)
}
