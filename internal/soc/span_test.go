package soc

import (
	"reflect"
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
	"sysscale/internal/workload/gen"
)

// TestSpanTicksProperty drives the real span computation over generated
// multi-phase workloads and checks, against a per-tick reference walk,
// the invariants the span-batched core relies on:
//
//  1. spans partition [0, nTicks) exactly (no gap, no overlap);
//  2. no span interior contains a policy-eval epoch (a multiple of
//     evalEvery) — epochs always start a span;
//  3. the active phase is constant across every tick of a span.
func TestSpanTicksProperty(t *testing.T) {
	var wls []workload.Workload
	for seed := uint64(1); seed <= 8; seed++ {
		wls = append(wls, gen.Generate(gen.DefaultConfig(seed)))
	}
	// Degenerate shapes: single short phase, phases shorter than a tick,
	// phase edges landing off the tick grid.
	wls = append(wls,
		workload.Workload{Name: "sub-tick", Class: workload.Micro, Phases: []workload.Phase{
			{Duration: 300 * sim.Microsecond}, {Duration: 250 * sim.Microsecond},
		}},
		workload.Workload{Name: "off-grid", Class: workload.Micro, Phases: []workload.Phase{
			{Duration: 3300 * sim.Microsecond}, {Duration: 1700 * sim.Microsecond}, {Duration: 900 * sim.Microsecond},
		}},
	)

	for _, w := range wls {
		for _, tick := range []sim.Time{1 * sim.Millisecond, 250 * sim.Microsecond, 700 * sim.Microsecond} {
			for _, evalEvery := range []int{1, 7, 30} {
				nTicks := 2000
				cursor := newPhaseCursor(w)
				ref := newPhaseCursor(w)
				for i := 0; i < nTicks; {
					n := spanTicks(i, nTicks, evalEvery, &cursor, tick)
					if n < 1 || i+n > nTicks {
						t.Fatalf("%s tick=%v eval=%d: span [%d,%d) outside run of %d ticks",
							w.Name, tick, evalEvery, i, i+n, nTicks)
					}
					for k := 0; k < n; k++ {
						if k > 0 && (i+k)%evalEvery == 0 {
							t.Fatalf("%s tick=%v eval=%d: span starting at %d skips epoch at %d",
								w.Name, tick, evalEvery, i, i+k)
						}
						if ref.index() != cursor.index() {
							t.Fatalf("%s tick=%v eval=%d: span starting at %d covers tick %d in phase %d, span phase %d",
								w.Name, tick, evalEvery, i, i+k, ref.index(), cursor.index())
						}
						ref.advance(tick)
					}
					cursor.advance(sim.Time(n) * tick)
					i += n
				}
				if cursor.index() != ref.index() {
					t.Fatalf("%s: bulk-advanced cursor desynced from per-tick reference", w.Name)
				}
			}
		}
	}
}

// poolConfigs is a heterogeneous config sequence that forces Reset to
// absorb every kind of change: workload class (including battery
// race-to-sleep), ladder, TDP, sample/eval interval, policy, fast-path
// knobs, and power tracing.
func poolConfigs(t *testing.T) []Config {
	t.Helper()
	spec := func(name string) workload.Workload {
		w, err := workload.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Duration = 200 * sim.Millisecond
		return cfg
	}

	var cfgs []Config

	c := base()
	c.Workload = spec("473.astar")
	c.Policy = highPin()
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = spec("470.lbm")
	c.Policy = lowPin(true)
	c.TDP = 3.5
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = workload.GraphicsSuite()[0]
	c.Policy = lowPin(false)
	c.Ladder = vf.LadderLPDDR3()
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = workload.BatterySuite()[0]
	c.Policy = lowPin(true)
	c.SampleInterval = 500 * sim.Microsecond
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = workload.Stream()
	c.Policy = highPin()
	c.DisableTickMemo = true
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = spec("400.perlbench")
	c.Policy = highPin()
	c.DisableSpanBatching = true
	cfgs = append(cfgs, c)

	c = base()
	c.Workload = spec("403.gcc")
	c.Policy = lowPin(true)
	c.TracePower = true
	cfgs = append(cfgs, c)

	return cfgs
}

// TestRunnerReuseBitIdentical proves the pooling contract: a platform
// recycled through Reset produces Results bit-identical to a freshly
// assembled one, across back-to-back runs of heterogeneous configs in
// both orders.
func TestRunnerReuseBitIdentical(t *testing.T) {
	cfgs := poolConfigs(t)

	fresh := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Policy = cfg.Policy.Clone()
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
		fresh[i] = r
	}

	runner := NewRunner()
	for round := 0; round < 2; round++ {
		order := make([]int, len(cfgs))
		for i := range order {
			if round%2 == 0 {
				order[i] = i
			} else {
				order[i] = len(cfgs) - 1 - i
			}
		}
		for _, i := range order {
			cfg := cfgs[i]
			cfg.Policy = cfg.Policy.Clone()
			r, err := runner.Run(cfg)
			if err != nil {
				t.Fatalf("round %d pooled run %d: %v", round, i, err)
			}
			if !reflect.DeepEqual(r, fresh[i]) {
				t.Errorf("round %d config %d (%s/%s): pooled result diverges from fresh assembly\npooled: %+v\nfresh:  %+v",
					round, i, cfg.Workload.Name, cfg.Policy.Name(), r, fresh[i])
			}
		}
	}
}

// TestRunnerIncompatibleFallback checks that configs the reset path
// cannot absorb (event recording) still run correctly through a
// Runner, and that the runner recovers afterwards.
func TestRunnerIncompatibleFallback(t *testing.T) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultConfig()
	plain.Workload = w
	plain.Policy = highPin()
	plain.Duration = 100 * sim.Millisecond

	traced := plain
	traced.Policy = highPin()
	traced.RecordEvents = true

	runner := NewRunner()
	if _, err := runner.Run(plain); err != nil {
		t.Fatal(err)
	}
	got, err := runner.Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("event-recording run through a warm runner diverges from a fresh run")
	}
	// The runner now holds a log-wired platform, which is never pooled:
	// the next plain run must fall back to fresh assembly and match.
	got, err = runner.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	want, err = Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("plain run after an event-recording run diverges")
	}
}
