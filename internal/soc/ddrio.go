package soc

import (
	"sysscale/internal/power"
	"sysscale/internal/vf"
)

// ddrio models the digital part of the DRAM interface (DDRIO-digital,
// element 4 of Fig. 1). It clocks at half the DDR transfer rate and
// sits on the V_IO rail — which is why SysScale adds a scalable supply
// for it and scales it together with the memory subsystem (§2.4: "we
// also concurrently apply DVFS to DDRIO-digital and the IO
// interconnect"). The analog front end (drivers, on VDDQ) is accounted
// in the DRAM device's IO power.
type ddrio struct {
	cdyn      float64
	leakAtNom float64
	nomVolt   vf.Volt
}

func newDDRIO() *ddrio {
	return &ddrio{
		cdyn:      0.24e-9,
		leakAtNom: 0.028,
		nomVolt:   vf.NominalVIO,
	}
}

// Power returns the DDRIO-digital draw at rail voltage v, DDR transfer
// rate ddr and interface utilization.
func (d *ddrio) Power(v vf.Volt, ddr vf.Hz, utilization float64) power.Watt {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	activity := 0.25 + 0.75*utilization
	dyn := power.Dynamic(d.cdyn, v, ddr/2, activity)
	leak := power.Leakage(d.leakAtNom, v, d.nomVolt)
	return dyn + leak
}
