package soc

import (
	"context"
	"fmt"

	"sysscale/internal/cache"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/pmu"
	"sysscale/internal/vf"
)

// fillLadderIndex rebuilds the OperatingPoint→index map from the
// configured ladder. The fill runs highest index first so that, should
// a ladder list the same point twice, the lowest index wins — matching
// the semantics of the linear scan the map replaces.
func (p *Platform) fillLadderIndex() {
	clear(p.ladderIdx)
	for i := len(p.cfg.Ladder) - 1; i >= 0; i-- {
		p.ladderIdx[p.cfg.Ladder[i]] = i
	}
}

// Reset reprograms an assembled platform for a new run of cfg without
// reallocating its components. Every piece of mutable state — clocks,
// rail voltages, DRAM timing image and self-refresh statistics,
// controller/fabric/LLC rolling epochs, compute P-states, counters,
// meters, budget, flow statistics, the reference-latency cache, and
// the tick memo — is restored to exactly what newPlatform(cfg) would
// build, so a recycled platform produces bit-identical Results.
//
// Structural changes a reset cannot absorb (a different DRAM
// technology, which needs retrained MRC images, or event recording,
// which needs a log wired through the flow) return an error and the
// caller assembles fresh.
//
// Reset is not failure-atomic: on any error the platform may be left
// half-reprogrammed and must be discarded, not reused. (Runner does
// exactly that, falling back to fresh assembly.)
func (p *Platform) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.DRAMKind != p.cfg.DRAMKind || cfg.RecordEvents || p.log != nil {
		return fmt.Errorf("soc: platform cannot be recycled for this configuration")
	}
	boot := cfg.Ladder[0]
	p.cfg = cfg

	p.clock.Restart(cfg.SampleInterval)
	if _, err := p.rails.Get(vf.RailVSA).Set(boot.VSA); err != nil {
		return err
	}
	if _, err := p.rails.Get(vf.RailVIO).Set(boot.VIO); err != nil {
		return err
	}
	if err := p.dev.Reset(boot.DDR); err != nil {
		return err
	}
	if err := p.mc.SetOperatingPoint(boot.MC, boot.VSA); err != nil {
		return err
	}
	p.mc.Release()
	p.mc.RestoreEpoch(memctrl.Epoch{})
	p.llc.RestoreEpoch(cache.Epoch{})
	if err := p.fabric.SetOperatingPoint(boot.Interco, boot.VSA); err != nil {
		return err
	}
	p.fabric.Release()
	p.fabric.RestoreEpoch(interconnect.Epoch{})
	p.ioeng.Configure(cfg.CSR)
	p.cores.Reset()
	p.gfx.Reset()
	p.counters.Reset()
	p.meters.Reset()

	io, mem := p.clampReservations(p.WorstCaseIOBudget(boot), p.WorstCaseMemBudget(boot))
	if err := p.budget.Reset(cfg.TDP, io, mem, uncoreBudget); err != nil {
		return err
	}
	p.flow.ResetStats()
	p.flow.Reconfigure(pmu.DefaultFlowOptions(boot.DDR))

	if err := p.refMC.Device().Reset(boot.DDR); err != nil {
		return err
	}
	if err := p.refMC.SetOperatingPoint(boot.MC, boot.VSA); err != nil {
		return err
	}
	p.refMC.RestoreEpoch(memctrl.Epoch{})

	p.current = boot
	p.currentIdx = 0
	p.spanCache = nil // the Runner re-attaches its cache per run
	p.fillLadderIndex()
	p.bonus = 0
	clear(p.refLats)
	p.tickProg = tickProg{}
	p.memoReady = false
	p.evalCalls = 0
	p.pbmMemo = pbmMemo{}
	return nil
}

// Runner executes simulations on one reusable Platform. The first Run
// assembles a platform; subsequent Runs recycle it through Reset,
// skipping MRC retraining, component construction, and the per-run
// slice/map allocations. A Runner is not safe for concurrent use —
// the run engine keeps a sync.Pool of them, one per in-flight job.
type Runner struct {
	p *Platform
	// spanCache, when set, is threaded into every run's platform so
	// spans can be served from (and inserted into) the engine's shared
	// cross-job cache.
	spanCache *SpanCache
}

// NewRunner returns an empty runner; its platform is assembled lazily
// on first use.
func NewRunner() *Runner { return &Runner{} }

// SetSpanCache attaches (or, with nil, detaches) the cross-job span
// cache subsequent runs integrate through. The run engine calls it on
// every checkout, so a pooled Runner always carries the cache of the
// engine currently driving it.
func (r *Runner) SetSpanCache(c *SpanCache) { r.spanCache = c }

// Run simulates cfg, recycling the held platform when possible. It is
// result-equivalent to Run(cfg): a reset platform is bit-identical to
// a fresh one, and any configuration the reset path cannot absorb is
// simulated on a freshly assembled platform instead.
func (r *Runner) Run(cfg Config) (Result, error) {
	return r.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation (see RunContext at package
// level). A run cancelled mid-flight leaves the held platform in a
// consistent, fully resettable state: the next RunContext reprograms
// it bit-identically to fresh assembly, so cancellation never poisons
// a pooled Runner.
func (r *Runner) RunContext(ctx context.Context, cfg Config) (Result, error) {
	if r.p != nil {
		if err := r.p.Reset(cfg); err == nil {
			r.p.spanCache = r.spanCache
			return r.p.run(ctx)
		}
		// Any Reset failure — structural incompatibility or a config
		// error — leaves the platform unusable: discard and assemble
		// fresh, which re-reports genuine configuration errors
		// identically to Run.
		r.p = nil
	}
	p, err := newPlatform(cfg)
	if err != nil {
		return Result{}, err
	}
	r.p = p
	p.spanCache = r.spanCache
	return p.run(ctx)
}
