package soc

import (
	"context"
	"math"
	"testing"

	"sysscale/internal/dram"
	"sysscale/internal/ioengine"
	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// testPolicy pins the ladder point like policy.StaticPoint but lives
// here to keep the soc package free of a policy dependency cycle.
type testPolicy struct {
	index        int
	redistribute bool
	optimizedMRC bool
}

func (p *testPolicy) Name() string { return "test-static" }
func (p *testPolicy) Reset()       {}
func (p *testPolicy) Clone() Policy {
	c := *p
	return &c
}
func (p *testPolicy) Decide(ctx PolicyContext) PolicyDecision {
	idx := p.index
	if idx < 0 || idx >= len(ctx.Ladder) {
		idx = 0
	}
	target := ctx.Ladder[idx]
	budget := ctx.Ladder[0]
	if p.redistribute {
		budget = target
	}
	return PolicyDecision{
		Target:       target,
		OptimizedMRC: p.optimizedMRC,
		IOBudget:     ctx.WorstIO(budget),
		MemBudget:    ctx.WorstMem(budget),
	}
}

func highPin() *testPolicy { return &testPolicy{index: 0, optimizedMRC: true} }
func lowPin(redist bool) *testPolicy {
	return &testPolicy{index: 1, redistribute: redist, optimizedMRC: true}
}

func testConfig(t *testing.T, wlName string) Config {
	t.Helper()
	w, err := workload.SPEC(wlName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPin()
	cfg.Duration = 1 * sim.Second
	return cfg
}

func TestRunBasicSanity(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 || res.Score > 1.5 {
		t.Fatalf("score = %v", res.Score)
	}
	if res.AvgPower <= 0 || res.AvgPower > cfg.TDP {
		t.Fatalf("avg power = %v outside (0, TDP]", res.AvgPower)
	}
	var railSum power.Watt
	for _, w := range res.RailAvg {
		if w < 0 {
			t.Fatal("negative rail power")
		}
		railSum += w
	}
	if math.Abs(float64(railSum-res.AvgPower)) > 1e-6 {
		t.Fatalf("rails (%v) do not sum to package (%v)", railSum, res.AvgPower)
	}
	wantEnergy := float64(res.AvgPower) * cfg.Duration.Seconds()
	if math.Abs(float64(res.Energy)-wantEnergy) > 1e-6 {
		t.Fatal("energy != avg power x time")
	}
	if res.EDP <= 0 {
		t.Fatal("EDP missing")
	}
	if res.Workload != "416.gamess" || res.Policy != "test-static" {
		t.Fatal("result labels wrong")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(t, "403.gcc")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.AvgPower != b.AvgPower || a.Energy != b.Energy {
		t.Fatal("identical configs produced different results")
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, "416.gamess")
	bad := good
	bad.TDP = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero TDP accepted")
	}
	bad = good
	bad.Policy = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad = good
	bad.Ladder = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("empty ladder accepted")
	}
	bad = good
	bad.Duration = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad = good
	bad.SampleInterval = bad.EvalInterval * 2
	if _, err := Run(bad); err == nil {
		t.Fatal("sample > eval interval accepted")
	}
	bad = good
	bad.Ladder = []vf.OperatingPoint{vf.MakeOperatingPoint("x", 1.23*vf.GHz, 0.8*vf.GHz)}
	if _, err := Run(bad); err == nil {
		t.Fatal("unsupported DRAM bin accepted")
	}
}

func TestLowPointSavesPowerOnLightWorkload(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	cfg.FixedCoreFreq = 1.2 * vf.GHz
	base := MustRun(cfg)
	cfg.Policy = lowPin(false)
	low := MustRun(cfg)
	if low.AvgPower >= base.AvgPower {
		t.Fatalf("low point did not save power: %v vs %v", low.AvgPower, base.AvgPower)
	}
	// A compute-bound workload barely slows down.
	if drop := 1 - low.Score/base.Score; drop > 0.02 {
		t.Fatalf("gamess lost %.1f%% at the low point", drop*100)
	}
}

func TestLowPointHurtsMemoryBoundWorkload(t *testing.T) {
	cfg := testConfig(t, "470.lbm")
	cfg.FixedCoreFreq = 1.2 * vf.GHz
	base := MustRun(cfg)
	cfg.Policy = lowPin(false)
	low := MustRun(cfg)
	if drop := 1 - low.Score/base.Score; drop < 0.03 {
		t.Fatalf("lbm lost only %.1f%% at the low point; expected a real penalty", drop*100)
	}
}

func TestRedistributionRaisesCoreFrequency(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	base := MustRun(cfg)
	cfg.Policy = lowPin(true)
	red := MustRun(cfg)
	if red.AvgCoreFreq <= base.AvgCoreFreq {
		t.Fatalf("redistribution did not raise the cores: %v vs %v", red.AvgCoreFreq, base.AvgCoreFreq)
	}
	if red.Score <= base.Score {
		t.Fatal("redistribution did not improve performance")
	}
}

func TestTransitionsAreCountedAndBounded(t *testing.T) {
	// Alternate pin: force transitions each interval.
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 300 * sim.Millisecond
	cfg.Policy = &alternatingPolicy{}
	res := MustRun(cfg)
	if res.Transitions < 5 {
		t.Fatalf("transitions = %d, want several", res.Transitions)
	}
	if res.MaxTransition >= 10*sim.Microsecond {
		t.Fatalf("a transition exceeded the 10us bound: %v", res.MaxTransition)
	}
}

type alternatingPolicy struct{ flip bool }

func (p *alternatingPolicy) Name() string  { return "alternating" }
func (p *alternatingPolicy) Reset()        { p.flip = false }
func (p *alternatingPolicy) Clone() Policy { return &alternatingPolicy{} }
func (p *alternatingPolicy) Decide(ctx PolicyContext) PolicyDecision {
	p.flip = !p.flip
	idx := 0
	if p.flip {
		idx = 1
	}
	target := ctx.Ladder[idx]
	return PolicyDecision{
		Target:       target,
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(target),
		MemBudget:    ctx.WorstMem(target),
	}
}

func TestBatteryWorkloadMeetsDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = workload.VideoPlayback()
	cfg.Policy = lowPin(true)
	cfg.Duration = 1 * sim.Second
	res := MustRun(cfg)
	if !res.PerfMet {
		t.Fatal("video playback missed its fixed demand at the low point")
	}
	// Fixed-demand workloads hold their score (work per second) as long
	// as the demand is met.
	base := cfg
	base.Policy = highPin()
	b := MustRun(base)
	if math.Abs(res.Score-b.Score) > 0.02*b.Score {
		t.Fatalf("fixed demand score drifted: %v vs %v", res.Score, b.Score)
	}
}

func TestCountersScaleWithResidency(t *testing.T) {
	// A battery workload's counters are diluted by idle time.
	cfg := DefaultConfig()
	cfg.Policy = highPin()
	cfg.Duration = 500 * sim.Millisecond
	cfg.Workload = workload.LightGaming()
	gaming := MustRun(cfg)
	w, _ := workload.SPEC("434.zeusmp")
	cfg.Workload = w
	busy := MustRun(cfg)
	if gaming.CounterAvg.Get(perfcounters.LLCStalls) >= busy.CounterAvg.Get(perfcounters.LLCStalls) {
		t.Fatal("idle-heavy workload's stall counter not diluted")
	}
}

func TestWorstCaseBudgetsOrdered(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	high, low := vf.HighPoint(), vf.LowPoint()
	if p.WorstCaseIOBudget(low) >= p.WorstCaseIOBudget(high) {
		t.Fatal("low-point IO reservation not below high")
	}
	if p.WorstCaseMemBudget(low) >= p.WorstCaseMemBudget(high) {
		t.Fatal("low-point memory reservation not below high")
	}
	// The freed budget is the headline redistribution quantity: it must
	// be a substantial fraction of a 4.5W TDP.
	freed := (p.WorstCaseIOBudget(high) + p.WorstCaseMemBudget(high)) -
		(p.WorstCaseIOBudget(low) + p.WorstCaseMemBudget(low))
	if freed < 0.5 || freed > 2.0 {
		t.Fatalf("freed budget %vW implausible", freed)
	}
}

func TestReservationClamp(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	cfg.TDP = 3.5
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	io, mem := p.clampReservations(2.0, 2.0)
	if float64(io+mem) > 0.65*3.5+1e-9 {
		t.Fatalf("clamp failed: %v", io+mem)
	}
	// Proportional scaling.
	if math.Abs(float64(io/mem)-1.0) > 1e-9 {
		t.Fatal("clamp not proportional")
	}
	// No clamping below the cap.
	io2, mem2 := p.clampReservations(0.5, 0.5)
	if io2 != 0.5 || mem2 != 0.5 {
		t.Fatal("unnecessary clamp")
	}
}

func TestEventLogRecordsFlow(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	cfg.Policy = lowPin(false)
	cfg.RecordEvents = true
	cfg.Duration = 200 * sim.Millisecond
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.EventLog().Find("self-refresh"); !ok {
		t.Fatal("flow events not recorded")
	}
}

func TestPowerTrace(t *testing.T) {
	cfg := testConfig(t, "416.gamess")
	cfg.TracePower = true
	cfg.Duration = 100 * sim.Millisecond
	res := MustRun(cfg)
	if len(res.PowerTrace) != 100 {
		t.Fatalf("trace length = %d, want 100 ticks", len(res.PowerTrace))
	}
	for _, p := range res.PowerTrace {
		if p <= 0 {
			t.Fatal("non-positive trace sample")
		}
	}
}

func TestDDR4Platform(t *testing.T) {
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.DRAMKind = dram.DDR4
	cfg.Ladder = []vf.OperatingPoint{vf.DDR4HighPoint(), vf.DDR4LowPoint()}
	cfg.Policy = highPin()
	cfg.Duration = 200 * sim.Millisecond
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestResultHelpers(t *testing.T) {
	a := Result{Score: 1.1, AvgPower: 2.0, EDP: 1.653}
	b := Result{Score: 1.0, AvgPower: 2.2, EDP: 2.2}
	if math.Abs(PerfImprovement(a, b)-0.1) > 1e-9 {
		t.Fatal("PerfImprovement wrong")
	}
	if math.Abs(PowerReduction(a, b)-(1-2.0/2.2)) > 1e-9 {
		t.Fatal("PowerReduction wrong")
	}
	if EDPImprovement(a, b) <= 0 {
		t.Fatal("EDPImprovement wrong")
	}
	if PerfImprovement(a, Result{}) != 0 || PowerReduction(a, Result{}) != 0 {
		t.Fatal("zero-base helpers must return 0")
	}
	if EnergyReduction(a, b) == 0 {
		t.Fatal("EnergyReduction wrong")
	}
	if a.Summary() == "" || a.String() == "" {
		t.Fatal("renderers empty")
	}
}

func TestProjectionSanity(t *testing.T) {
	cfg := testConfig(t, "445.gobmk")
	base := MustRun(cfg)
	high, low := vf.HighPoint(), vf.LowPoint()
	mem := MemScaleProjectedSavings(base, high, low)
	if mem <= 0 || mem > 0.5 {
		t.Fatalf("MemScale projected savings %vW implausible", mem)
	}
	co := CoScaleProjectedSavings(base, high, low)
	if co < mem {
		t.Fatal("CoScale projection below MemScale")
	}
	gain, err := ProjectedPerfGain(cfg, base, mem, false)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 || gain > 0.10 {
		t.Fatalf("projected gain %v implausible", gain)
	}
	if g, _ := ProjectedPerfGain(cfg, base, 0, false); g != 0 {
		t.Fatal("zero savings projected nonzero gain")
	}
}

func TestMeasureScalability(t *testing.T) {
	// gamess is nearly fully scalable; lbm nearly flat.
	cfgG := testConfig(t, "416.gamess")
	baseG := MustRun(cfgG)
	scalG, err := MeasureScalability(cfgG, baseG, false)
	if err != nil {
		t.Fatal(err)
	}
	cfgL := testConfig(t, "470.lbm")
	baseL := MustRun(cfgL)
	scalL, err := MeasureScalability(cfgL, baseL, false)
	if err != nil {
		t.Fatal(err)
	}
	if scalG < 0.7 {
		t.Fatalf("gamess scalability %v, want high", scalG)
	}
	if scalL > 0.4 {
		t.Fatalf("lbm scalability %v, want low", scalL)
	}
	if scalG <= scalL {
		t.Fatal("scalability ordering wrong")
	}
}

func TestGfxWorkloadCorePinnedNearPn(t *testing.T) {
	// §7.2: during graphics workloads the cores run near Pn while the
	// graphics engines take most of the compute budget.
	cfg := DefaultConfig()
	cfg.Workload = workload.ThreeDMark06()
	cfg.Policy = highPin()
	cfg.Duration = 500 * sim.Millisecond
	res := MustRun(cfg)
	if res.AvgCoreFreq > 1.4*vf.GHz {
		t.Fatalf("cores at %v during graphics; expected near Pn (1.2GHz)", res.AvgCoreFreq)
	}
	if res.AvgGfxFreq < 0.6*vf.GHz {
		t.Fatalf("graphics engines at %v; expected budget-boosted", res.AvgGfxFreq)
	}
}

func TestCameraRaisesStaticDemand(t *testing.T) {
	// Condition 1 (§4.3): a camera stream raises the configuration-
	// derived static demand and with it the IO domain's traffic.
	cfg := DefaultConfig()
	cfg.Workload = workload.VideoConferencing()
	cfg.Policy = highPin()
	cfg.Duration = 300 * sim.Millisecond
	noCam := MustRun(cfg)
	csr := cfg.CSR
	csr.Camera = ioengine.Camera4K
	cfg.CSR = csr
	cam := MustRun(cfg)
	if cam.AvgPower <= noCam.AvgPower {
		t.Fatal("4K camera stream did not raise IO/memory power")
	}
}

func TestTDPScalesBaselinePerformance(t *testing.T) {
	// More TDP, more compute budget, higher baseline score.
	w, _ := workload.SPEC("416.gamess")
	prev := 0.0
	for _, tdp := range []power.Watt{3.5, 4.5, 7} {
		cfg := DefaultConfig()
		cfg.Workload = w
		cfg.Policy = highPin()
		cfg.TDP = tdp
		cfg.Duration = 300 * sim.Millisecond
		res := MustRun(cfg)
		if res.Score <= prev {
			t.Fatalf("score did not grow with TDP at %vW", tdp)
		}
		prev = res.Score
	}
}

func TestEvalIntervalRespected(t *testing.T) {
	// A 30ms interval on a 300ms run gives the policy ~10 decisions;
	// the alternating policy therefore transitions ~10 times, not 300.
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 300 * sim.Millisecond
	cfg.Policy = &alternatingPolicy{}
	res := MustRun(cfg)
	if res.Transitions < 8 || res.Transitions > 12 {
		t.Fatalf("transitions = %d, want ~10 at a 30ms interval", res.Transitions)
	}
}
