package soc

import (
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// BenchmarkTickLoop measures the simulator's core loop: ticks per
// second on a phased workload with an active governor.
func BenchmarkTickLoop(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

func highPinBench() Policy { return &testPolicy{index: 0, optimizedMRC: true} }

// benchSteadyState runs a steady-state workload (single-phase SPEC,
// stable governor decisions) with the fast-path knobs set as given;
// the ticks/s ratios between the variants are the fast paths' speedups.
func benchSteadyState(b *testing.B, disableSpan, disableMemo bool) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	cfg.DisableSpanBatching = disableSpan
	cfg.DisableTickMemo = disableMemo
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkTickLoopSteadyState measures the shipped fast path: span
// batching over the memoized fixpoint.
func BenchmarkTickLoopSteadyState(b *testing.B) { benchSteadyState(b, false, false) }

// BenchmarkTickLoopSpanOff walks tick by tick with the memo on — the
// PR-2 memo-only behaviour, kept as the span path's speedup reference.
func BenchmarkTickLoopSpanOff(b *testing.B) { benchSteadyState(b, true, false) }

// BenchmarkTickLoopMemoOff resolves the fixpoint every tick — the
// pre-memo behaviour, kept as the cumulative speedup reference.
func BenchmarkTickLoopMemoOff(b *testing.B) { benchSteadyState(b, true, true) }

// BenchmarkRunnerPooled measures a pooled steady-state run: the
// platform is recycled through Reset instead of reassembled, which is
// what engine workers do per job. allocs/op versus
// BenchmarkTickLoopSteadyState is the pooling win.
func BenchmarkRunnerPooled(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	r := NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkRunnerPooledWarmSpanCache measures the cross-job fast path:
// a pooled run whose every cacheable span is served from a warm shared
// SpanCache — the steady state of an engine sweep re-visiting a
// workload. The ns/op delta against BenchmarkRunnerPooled is the span
// cache's per-run win; allocs/op must match it (the cache adds no heap
// traffic on hits).
func BenchmarkRunnerPooledWarmSpanCache(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	r := NewRunner()
	r.SetSpanCache(NewSpanCache(0))
	if _, err := r.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkPlatformAssembly measures cold-start cost (MRC training,
// component wiring) — relevant for sweep-style experiments that build
// thousands of platforms.
func BenchmarkPlatformAssembly(b *testing.B) {
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlatform(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
