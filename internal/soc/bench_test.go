package soc

import (
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// BenchmarkTickLoop measures the simulator's core loop: ticks per
// second on a phased workload with an active governor.
func BenchmarkTickLoop(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

func highPinBench() Policy { return &testPolicy{index: 0, optimizedMRC: true} }

// BenchmarkPlatformAssembly measures cold-start cost (MRC training,
// component wiring) — relevant for sweep-style experiments that build
// thousands of platforms.
func BenchmarkPlatformAssembly(b *testing.B) {
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlatform(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
