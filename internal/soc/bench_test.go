package soc

import (
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// BenchmarkTickLoop measures the simulator's core loop: ticks per
// second on a phased workload with an active governor.
func BenchmarkTickLoop(b *testing.B) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

func highPinBench() Policy { return &testPolicy{index: 0, optimizedMRC: true} }

// benchSteadyState runs a steady-state workload (single-phase SPEC,
// stable governor decisions) with the tick memo on or off; the ticks/s
// ratio between the two is the fast path's speedup.
func benchSteadyState(b *testing.B, disableMemo bool) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	cfg.Duration = 500 * sim.Millisecond
	cfg.DisableTickMemo = disableMemo
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	ticks := float64(cfg.Duration/cfg.SampleInterval) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkTickLoopSteadyState measures the memoized fast path.
func BenchmarkTickLoopSteadyState(b *testing.B) { benchSteadyState(b, false) }

// BenchmarkTickLoopMemoOff resolves the fixpoint every tick — the
// pre-memo behaviour, kept as the speedup reference.
func BenchmarkTickLoopMemoOff(b *testing.B) { benchSteadyState(b, true) }

// BenchmarkPlatformAssembly measures cold-start cost (MRC training,
// component wiring) — relevant for sweep-style experiments that build
// thousands of platforms.
func BenchmarkPlatformAssembly(b *testing.B) {
	w, _ := workload.SPEC("416.gamess")
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPinBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlatform(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
