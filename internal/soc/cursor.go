package soc

import (
	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// phaseCursor tracks which workload phase the clock is in. Workloads
// loop (time wraps modulo the total duration, like benchmarks rerun
// during power measurements), and the tick loop advances time by one
// fixed sample interval per iteration — so the active phase can be
// maintained incrementally in amortized O(1) per tick instead of
// re-deriving it with a modulo and a scan over all phases.
//
// The cursor reproduces the reference mapping exactly: after advancing
// to time t, index() equals the first i such that t mod total falls
// inside phase i (a sample landing on a boundary belongs to the next
// phase).
type phaseCursor struct {
	phases []workload.Phase
	total  sim.Time
	idx    int      // active phase index
	into   sim.Time // time elapsed inside the active phase, < its duration
}

func newPhaseCursor(w workload.Workload) phaseCursor {
	return phaseCursor{phases: w.Phases, total: w.TotalDuration()}
}

// index returns the active phase index.
func (c *phaseCursor) index() int { return c.idx }

// phase returns the active phase.
func (c *phaseCursor) phase() workload.Phase { return c.phases[c.idx] }

// nextBoundary returns the time remaining until the cursor leaves the
// active phase — the span-batched core's phase-edge bound. It is always
// positive (the cursor's invariant is into < the active duration), and
// a sample taken exactly nextBoundary() from now belongs to the next
// phase (boundary samples map to the following phase, matching
// advance's wrap rule).
func (c *phaseCursor) nextBoundary() sim.Time {
	return c.phases[c.idx].Duration - c.into
}

// advance moves the cursor forward by dt.
func (c *phaseCursor) advance(dt sim.Time) {
	if c.total <= 0 || dt <= 0 {
		return
	}
	// Positions are modular: collapse whole loop iterations up front so
	// a dt exceeding the loop length (short workloads) stays cheap.
	c.into += dt % c.total
	for c.into >= c.phases[c.idx].Duration {
		c.into -= c.phases[c.idx].Duration
		c.idx++
		if c.idx == len(c.phases) {
			c.idx = 0
		}
	}
}
