package soc

import (
	"math"
	"reflect"
	"testing"

	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// codecResult builds a Result exercising every field, including
// awkward float values the codec must carry bit-exactly.
func codecResult() Result {
	r := Result{
		Workload:       "470.lbm",
		Policy:         "sysscale",
		Duration:       4 * sim.Second,
		Score:          0.9731,
		ActiveScore:    1.204,
		PerfMet:        true,
		AvgPower:       4.125,
		Energy:         16.5,
		EDP:            math.Copysign(0, -1), // negative zero survives
		Transitions:    42,
		TransitionTime: 17 * sim.Millisecond,
		MaxTransition:  3 * sim.Millisecond,
		PointResidency: []float64{0.75, 0.25},
		AvgCoreFreq:    1.8e9,
		AvgGfxFreq:     0.3e9,
		PowerTrace:     nil,
	}
	for i := range r.RailAvg {
		r.RailAvg[i] = power.Watt(0.1 * float64(i+1))
	}
	for i := range r.CounterAvg {
		r.CounterAvg[i] = 1e-3 * float64(i) / 3.0
	}
	return r
}

func TestResultCodecRoundTrip(t *testing.T) {
	want := codecResult()
	got, err := DecodeResult(AppendResult(nil, want))
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	if got.PowerTrace != nil {
		t.Errorf("nil PowerTrace decoded non-nil")
	}

	// Empty (but non-nil) and populated slices round-trip distinctly
	// from nil — cache identity must not invent or drop slices.
	want.PowerTrace = []float64{}
	want.PointResidency = nil
	got, err = DecodeResult(AppendResult(nil, want))
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if got.PowerTrace == nil || len(got.PowerTrace) != 0 {
		t.Errorf("empty PowerTrace decoded as %#v", got.PowerTrace)
	}
	if got.PointResidency != nil {
		t.Errorf("nil PointResidency decoded as %#v", got.PointResidency)
	}
}

func TestResultCodecExactBits(t *testing.T) {
	r := codecResult()
	r.Score = math.NaN()
	r.EDP = math.Inf(1)
	r.ActiveScore = math.Nextafter(1, 2) // 1 + one ulp
	got, err := DecodeResult(AppendResult(nil, r))
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if math.Float64bits(got.Score) != math.Float64bits(r.Score) {
		t.Errorf("NaN bits changed: %x != %x", math.Float64bits(got.Score), math.Float64bits(r.Score))
	}
	if !math.IsInf(got.EDP, 1) {
		t.Errorf("+Inf EDP decoded as %v", got.EDP)
	}
	if got.ActiveScore != r.ActiveScore {
		t.Errorf("one-ulp value changed: %v != %v", got.ActiveScore, r.ActiveScore)
	}
}

func TestResultCodecRejectsMalformed(t *testing.T) {
	enc := AppendResult(nil, codecResult())

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, 3, len(enc) / 2, len(enc) - 1} {
			if _, err := DecodeResult(enc[:n]); err == nil {
				t.Errorf("decoded a %d-byte prefix of a %d-byte encoding", n, len(enc))
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		if _, err := DecodeResult(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Errorf("decoded an encoding with a trailing byte")
		}
	})
	t.Run("rail count mismatch", func(t *testing.T) {
		// The rail count sits right after two strings, three u64/floats
		// ×2... locate it by re-encoding with a poisoned count instead:
		// flip the count field by encoding then patching the bytes at
		// its known offset.
		off := 4 + len("470.lbm") + 4 + len("sysscale") + 8 + 8 + 8 + 1 + 8 + 8 + 8
		bad := append([]byte(nil), enc...)
		bad[off]++ // rails+1
		if _, err := DecodeResult(bad); err == nil {
			t.Errorf("decoded an entry with %d rails against a %d-rail build", vf.NumRails+1, vf.NumRails)
		}
	})
	t.Run("huge slice count", func(t *testing.T) {
		// A corrupted count must not cause a giant allocation or a
		// partial decode; nilSlice-1 elements can never fit.
		bad := append([]byte(nil), enc...)
		// PointResidency count offset: after rails array.
		off := 4 + len("470.lbm") + 4 + len("sysscale") + 8 + 8 + 8 + 1 + 8 + 8 + 8 + 4 + 8*vf.NumRails + 8 + 8 + 8
		bad[off], bad[off+1], bad[off+2], bad[off+3] = 0xfe, 0xff, 0xff, 0xff
		if _, err := DecodeResult(bad); err == nil {
			t.Errorf("decoded an entry with an impossible slice count")
		}
	})
}

// TestResultCodecCoversResult pins the codec to the Result struct
// shape: adding a field to Result without teaching the codec about it
// would silently drop it from the disk tier. NumField is a tripwire —
// update the codec, then this count.
func TestResultCodecCoversResult(t *testing.T) {
	const wantFields = 18
	if n := reflect.TypeOf(Result{}).NumField(); n != wantFields {
		t.Errorf("Result has %d fields, codec written for %d: update AppendResult/DecodeResult and this test", n, wantFields)
	}
	_ = perfcounters.NumCounters // codec also depends on the counter topology
}
