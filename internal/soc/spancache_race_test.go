// Concurrency hammer for the shared span cache: many Runners, one
// cache, real governors. Run under -race (CI does) this doubles as the
// data-race proof; in any mode it proves results never depend on cache
// timing — every concurrent cached run is bit-identical to its
// cache-disabled reference, whatever interleaving of lookups and
// inserts the scheduler produces.
package soc_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

func TestSpanCacheConcurrentIdentity(t *testing.T) {
	policies := []func() soc.Policy{
		func() soc.Policy { return policy.NewSysScaleDefault() },
		func() soc.Policy { return policy.NewBaseline() },
		func() soc.Policy { return policy.NewCoScaleRedist() },
	}
	var workloads []workload.Workload
	for _, name := range []string{"473.astar", "470.lbm"} {
		w, err := workload.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, w)
	}
	workloads = append(workloads, workload.GraphicsSuite()[0])

	type job struct {
		w  workload.Workload
		mk func() soc.Policy
	}
	var jobs []job
	for _, w := range workloads {
		for _, mk := range policies {
			jobs = append(jobs, job{w, mk})
		}
	}

	mkConfig := func(j job, disable bool) soc.Config {
		cfg := soc.DefaultConfig()
		cfg.Workload = j.w
		cfg.Policy = j.mk()
		cfg.Duration = 100 * sim.Millisecond
		cfg.DisableSpanCache = disable
		return cfg
	}

	// Cache-disabled references, computed once.
	refs := make([]soc.Result, len(jobs))
	for i, j := range jobs {
		r, err := soc.Run(mkConfig(j, true))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}

	// The same jobs repeated: repetitions guarantee warm traffic, so
	// the hammer exercises concurrent hits against concurrent inserts,
	// not just a cold fill.
	const reps = 3
	for _, par := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			cache := soc.NewSpanCache(0)
			work := make(chan int, len(jobs)*reps)
			for rep := 0; rep < reps; rep++ {
				for i := range jobs {
					work <- i
				}
			}
			close(work)

			var wg sync.WaitGroup
			errs := make(chan string, len(jobs)*reps)
			for g := 0; g < par; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := soc.NewRunner()
					r.SetSpanCache(cache)
					for i := range work {
						got, err := r.Run(mkConfig(jobs[i], false))
						if err != nil {
							errs <- fmt.Sprintf("%s/%s: %v", jobs[i].w.Name, jobs[i].mk().Name(), err)
							continue
						}
						if !reflect.DeepEqual(got, refs[i]) {
							errs <- fmt.Sprintf("%s/%s: cached run != cache-disabled run", jobs[i].w.Name, jobs[i].mk().Name())
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}
			if s := cache.Stats(); s.Hits == 0 {
				t.Errorf("hammer scored no span hits: %+v", s)
			}
		})
	}
}
