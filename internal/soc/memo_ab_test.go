// Bit-identity check for the steady-state tick memo: this file lives
// in the external test package so it can drive the real governors
// (internal/policy imports soc, so the internal test package cannot).
package soc_test

import (
	"reflect"
	"testing"

	"sysscale/internal/compute"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// delayedSwitch holds the current point until its nth decision, then
// transitions to the other ladder point, alternating afterwards. It
// forces DVFS transitions to fire at decision ticks that fall mid-way
// through a phase pattern, which is where stale component state (e.g.
// the fabric's rolling epoch feeding the drain latency) would make a
// memoized run diverge from a plain one.
type delayedSwitch struct{ n, decisions, at int }

func (p *delayedSwitch) Name() string { return "delayed-switch" }
func (p *delayedSwitch) Reset()       { p.decisions, p.at = 0, 0 }
func (p *delayedSwitch) Clone() soc.Policy {
	c := *p
	return &c
}
func (p *delayedSwitch) Decide(ctx soc.PolicyContext) soc.PolicyDecision {
	p.decisions++
	dec := soc.PolicyDecision{
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(ctx.Ladder[0]),
		MemBudget:    ctx.WorstMem(ctx.Ladder[0]),
	}
	if p.decisions >= p.n && (p.decisions-p.n)%2 == 0 {
		p.at = 1 - p.at
	}
	dec.Target = ctx.Ladder[p.at]
	return dec
}

// TestTickMemoTransitionDrainBitIdentical pins the interaction the
// broad suite test cannot reach: phases with very different IO
// utilization, and transitions decided only after several intervals of
// memoized steady-state ticks. The drain step of the Fig. 5 flow
// scales with the fabric's last-evaluated utilization, so the memoized
// run must leave the components' rolling epochs exactly as a per-tick
// evaluation would.
func TestTickMemoTransitionDrainBitIdentical(t *testing.T) {
	allC0 := compute.Residency{C0: 1}
	w := workload.Workload{
		Name:  "io-phased",
		Class: workload.CPUSingleThread,
		// Durations are chosen against the 30ms evaluation interval so
		// that, between two transitions, the phase preceding the next
		// decision tick differs from the phase whose evaluation last
		// refreshed the memo — the exact interleaving where stale
		// rolling state would surface in the drain latency.
		Phases: []workload.Phase{
			{Duration: 5 * sim.Millisecond, CoreFrac: 0.8, ActiveCores: 1,
				CoreActivity: 0.5, Residency: allC0},
			{Duration: 6 * sim.Millisecond, CoreFrac: 0.3, IOFrac: 0.4,
				IOBW: 2e9, MemBW: 1e9, MemBWFrac: 0.2, ActiveCores: 1,
				CoreActivity: 0.5, Residency: allC0},
		},
	}
	cfg := soc.DefaultConfig()
	cfg.Workload = w
	cfg.Duration = 400 * sim.Millisecond
	cfg.Policy = &delayedSwitch{n: 3}

	memoed, err := soc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = &delayedSwitch{n: 3}
	cfg.DisableTickMemo = true
	plain, err := soc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if memoed.Transitions == 0 {
		t.Fatal("scenario produced no transitions; the test is vacuous")
	}
	if !reflect.DeepEqual(memoed, plain) {
		t.Errorf("transition-heavy phased run diverges with the tick memo\nmemo on:  %+v\nmemo off: %+v",
			memoed, plain)
	}
}

// TestTickMemoResultsBitIdentical proves the memo is an optimization,
// not a model change: full-run Results — scores, power, energy,
// counters, residency, transition telemetry — must be bit-for-bit
// identical with the memo enabled and disabled, across all three
// evaluation suites and both transitioning and static governors.
func TestTickMemoResultsBitIdentical(t *testing.T) {
	var wls []workload.Workload
	for _, name := range []string{"473.astar", "470.lbm", "400.perlbench"} {
		w, err := workload.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	wls = append(wls, workload.GraphicsSuite()...)
	wls = append(wls, workload.BatterySuite()...)
	wls = append(wls, workload.Stream())

	policies := []func() soc.Policy{
		func() soc.Policy { return policy.NewSysScaleDefault() },
		func() soc.Policy { return policy.NewBaseline() },
		func() soc.Policy { return policy.NewCoScaleRedist() },
	}

	for _, w := range wls {
		for _, mk := range policies {
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Duration = 300 * sim.Millisecond
			cfg.Policy = mk()

			memoed, err := soc.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s memo on: %v", w.Name, cfg.Policy.Name(), err)
			}
			cfg.Policy = mk()
			cfg.DisableTickMemo = true
			plain, err := soc.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s memo off: %v", w.Name, cfg.Policy.Name(), err)
			}
			if !reflect.DeepEqual(memoed, plain) {
				t.Errorf("%s/%s: results diverge with the tick memo\nmemo on:  %+v\nmemo off: %+v",
					w.Name, plain.Policy, memoed, plain)
			}
		}
	}
}
