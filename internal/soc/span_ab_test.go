// A/B equivalence for the span-batched core: the span path must agree
// with the per-tick walk to ≤1e-9 relative on every Result field, for
// every workload class and with the tick memo in either state. Lives in
// the external test package to drive the real governors.
package soc_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"sysscale/internal/compute"
	"sysscale/internal/policy"
	"sysscale/internal/sim"
	"sysscale/internal/soc"
	"sysscale/internal/workload"
)

// spanRelTol is the contract: span-batched and per-tick runs differ
// only in floating-point summation order (closed-form multiplication
// versus repeated addition), which stays far inside 1e-9 relative.
const spanRelTol = 1e-9

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= spanRelTol*scale
}

// compareResults checks every Result field: exact equality for
// integral/telemetry fields (transitions and their timings are tick-
// aligned and must not move), relative tolerance for accumulated
// floating-point fields.
func compareResults(t *testing.T, label string, span, tickwise soc.Result) {
	t.Helper()
	fail := func(field string, a, b any) {
		t.Errorf("%s: %s diverges beyond %g relative\nspan: %v\ntick: %v", label, field, spanRelTol, a, b)
	}
	if span.Workload != tickwise.Workload || span.Policy != tickwise.Policy || span.Duration != tickwise.Duration {
		fail("identity fields", span, tickwise)
	}
	if span.PerfMet != tickwise.PerfMet {
		fail("PerfMet", span.PerfMet, tickwise.PerfMet)
	}
	if span.Transitions != tickwise.Transitions {
		fail("Transitions", span.Transitions, tickwise.Transitions)
	}
	if span.TransitionTime != tickwise.TransitionTime || span.MaxTransition != tickwise.MaxTransition {
		fail("transition times", span.TransitionTime, tickwise.TransitionTime)
	}
	floats := []struct {
		name string
		a, b float64
	}{
		{"Score", span.Score, tickwise.Score},
		{"ActiveScore", span.ActiveScore, tickwise.ActiveScore},
		{"AvgPower", float64(span.AvgPower), float64(tickwise.AvgPower)},
		{"Energy", float64(span.Energy), float64(tickwise.Energy)},
		{"EDP", span.EDP, tickwise.EDP},
		{"AvgCoreFreq", float64(span.AvgCoreFreq), float64(tickwise.AvgCoreFreq)},
		{"AvgGfxFreq", float64(span.AvgGfxFreq), float64(tickwise.AvgGfxFreq)},
	}
	for i := range span.RailAvg {
		floats = append(floats, struct {
			name string
			a, b float64
		}{fmt.Sprintf("RailAvg[%d]", i), float64(span.RailAvg[i]), float64(tickwise.RailAvg[i])})
	}
	for i := range span.CounterAvg {
		floats = append(floats, struct {
			name string
			a, b float64
		}{fmt.Sprintf("CounterAvg[%d]", i), span.CounterAvg[i], tickwise.CounterAvg[i]})
	}
	if len(span.PointResidency) != len(tickwise.PointResidency) {
		fail("PointResidency length", len(span.PointResidency), len(tickwise.PointResidency))
	} else {
		for i := range span.PointResidency {
			floats = append(floats, struct {
				name string
				a, b float64
			}{fmt.Sprintf("PointResidency[%d]", i), span.PointResidency[i], tickwise.PointResidency[i]})
		}
	}
	for _, f := range floats {
		if !relClose(f.a, f.b) {
			fail(f.name, f.a, f.b)
		}
	}
}

// abWorkloads spans every workload class: CPU single/multi thread,
// graphics, battery (race-to-sleep residency stretching), and the
// STREAM microbenchmark, plus a phased workload whose edges fall
// off the epoch grid.
func abWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	var wls []workload.Workload
	for _, name := range []string{"473.astar", "470.lbm"} {
		w, err := workload.SPEC(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	mt := workload.SPECSuiteMT()
	wls = append(wls, mt[0])
	wls = append(wls, workload.GraphicsSuite()...)
	wls = append(wls, workload.BatterySuite()...)
	wls = append(wls, workload.Stream())

	allC0 := compute.Residency{C0: 1}
	wls = append(wls, workload.Workload{
		Name:  "off-grid-phased",
		Class: workload.CPUSingleThread,
		Phases: []workload.Phase{
			{Duration: 7 * sim.Millisecond, CoreFrac: 0.7, ActiveCores: 2, CoreActivity: 0.6, Residency: allC0},
			{Duration: 11 * sim.Millisecond, CoreFrac: 0.2, MemBW: 6e9, MemBWFrac: 0.4, MemLatFrac: 0.2,
				ActiveCores: 2, CoreActivity: 0.5, Residency: allC0},
			{Duration: 3 * sim.Millisecond, IOFrac: 0.5, IOBW: 2e9, ActiveCores: 1, CoreActivity: 0.3, Residency: allC0},
		},
	})
	return wls
}

// TestSpanBatchingEquivalence runs the full 4-way knob matrix (span
// on/off × memo on/off) for every workload class under transitioning
// and static governors, asserting:
//
//   - memo on/off stays bit-identical within either span setting (the
//     memo is exact, spans or not);
//   - span on/off agree to ≤1e-9 relative on every Result field.
func TestSpanBatchingEquivalence(t *testing.T) {
	policies := []func() soc.Policy{
		func() soc.Policy { return policy.NewSysScaleDefault() },
		func() soc.Policy { return policy.NewBaseline() },
		func() soc.Policy { return policy.NewCoScaleRedist() },
		func() soc.Policy { return &delayedSwitch{n: 3} },
	}

	for _, w := range abWorkloads(t) {
		for _, mk := range policies {
			label := fmt.Sprintf("%s/%s", w.Name, mk().Name())
			run := func(disableSpan, disableMemo bool) soc.Result {
				cfg := soc.DefaultConfig()
				cfg.Workload = w
				cfg.Duration = 300 * sim.Millisecond
				cfg.Policy = mk()
				cfg.DisableSpanBatching = disableSpan
				cfg.DisableTickMemo = disableMemo
				r, err := soc.Run(cfg)
				if err != nil {
					t.Fatalf("%s span=%v memo=%v: %v", label, !disableSpan, !disableMemo, err)
				}
				return r
			}
			spanMemo := run(false, false)
			spanNoMemo := run(false, true)
			tickMemo := run(true, false)
			tickNoMemo := run(true, true)

			if !reflect.DeepEqual(spanMemo, spanNoMemo) {
				t.Errorf("%s: span-batched results diverge with the tick memo on/off", label)
			}
			if !reflect.DeepEqual(tickMemo, tickNoMemo) {
				t.Errorf("%s: per-tick results diverge with the tick memo on/off", label)
			}
			compareResults(t, label, spanMemo, tickMemo)

			// The PBM grant memo claims exactness, not tolerance: the
			// defaults must be bit-identical with it disabled.
			cfg := soc.DefaultConfig()
			cfg.Workload = w
			cfg.Duration = 300 * sim.Millisecond
			cfg.Policy = mk()
			cfg.DisablePBMMemo = true
			pbmOff, err := soc.Run(cfg)
			if err != nil {
				t.Fatalf("%s pbm memo off: %v", label, err)
			}
			if !reflect.DeepEqual(spanMemo, pbmOff) {
				t.Errorf("%s: results diverge with the PBM grant memo on/off", label)
			}
		}
	}
}

// TestSpanBatchingPowerTraceExact pins the fallback contract: a
// TracePower run always walks tick by tick, so the span knob must not
// change a traced run at all.
func TestSpanBatchingPowerTraceExact(t *testing.T) {
	w, err := workload.SPEC("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	run := func(disableSpan bool) soc.Result {
		cfg := soc.DefaultConfig()
		cfg.Workload = w
		cfg.Duration = 150 * sim.Millisecond
		cfg.Policy = policy.NewSysScaleDefault()
		cfg.TracePower = true
		cfg.DisableSpanBatching = disableSpan
		r, err := soc.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	spanOn, spanOff := run(false), run(true)
	if len(spanOn.PowerTrace) != int(150*sim.Millisecond/sim.Millisecond) {
		t.Fatalf("power trace has %d samples, want one per tick", len(spanOn.PowerTrace))
	}
	if !reflect.DeepEqual(spanOn, spanOff) {
		t.Error("TracePower run changed under the span knob; tick-granularity fallback broken")
	}
}
