package soc

import (
	"context"
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// memoTestPlatform assembles a platform over a two-phase workload so
// the memo's per-phase keying is exercised.
func memoTestPlatform(t *testing.T) *Platform {
	t.Helper()
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	ph2 := w.Phases[0]
	ph2.MemBW *= 2
	ph2.MemBWFrac, ph2.CoreFrac = ph2.CoreFrac, ph2.MemBWFrac
	w.Phases = append(w.Phases, ph2)
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPin()
	p, err := newPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// expectEvals asserts the cumulative count of full fixpoint
// evaluations after a step of the scenario.
func expectEvals(t *testing.T, p *Platform, want int, step string) {
	t.Helper()
	if p.evalCalls != want {
		t.Fatalf("%s: evalTick ran %d times, want %d", step, p.evalCalls, want)
	}
}

func TestTickMemoSteadyStateHits(t *testing.T) {
	p := memoTestPlatform(t)
	phases := p.cfg.Workload.Phases
	p.refreshTickMemo()

	ev := p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 1, "first tick")
	if got := p.tickEvalFor(0, phases[0]); got != ev {
		t.Fatal("memoized evaluation differs from the fresh one")
	}
	expectEvals(t, p, 1, "steady-state tick")

	// A different phase owns its own entry; revisiting either stays hot.
	p.tickEvalFor(1, phases[1])
	expectEvals(t, p, 2, "second phase")
	p.tickEvalFor(0, phases[0])
	p.tickEvalFor(1, phases[1])
	expectEvals(t, p, 2, "revisits")

	// Reprogramming identical values must not invalidate.
	p.setBonus(0)
	if err := p.executeDecision(PolicyDecision{}); err != nil {
		t.Fatal(err)
	}
	p.refreshTickMemo()
	p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 2, "identical reprogramming")
}

func TestTickMemoInvalidation(t *testing.T) {
	p := memoTestPlatform(t)
	phases := p.cfg.Workload.Phases
	p.refreshTickMemo()
	evHigh := p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 1, "baseline")

	// A core frequency change forces re-evaluation.
	if err := p.cores.SetPState(1.4 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	p.refreshTickMemo()
	p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 2, "core frequency change")

	// A graphics frequency change forces re-evaluation.
	if err := p.gfx.SetPState(0.7 * vf.GHz); err != nil {
		t.Fatal(err)
	}
	p.refreshTickMemo()
	p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 3, "gfx frequency change")

	// A budget reprogramming forces re-evaluation.
	if err := p.pbm.SetIOMemoryBudget(p.budget.IO()/2, p.budget.Memory()); err != nil {
		t.Fatal(err)
	}
	p.refreshTickMemo()
	p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 4, "budget change")

	// A bonus grant forces re-evaluation.
	p.setBonus(0.25)
	p.refreshTickMemo()
	p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 5, "bonus change")

	// A DVFS transition forces re-evaluation and changes the result.
	stall, err := p.maybeTransition(0, PolicyDecision{Target: p.cfg.Ladder[1], OptimizedMRC: true})
	if err != nil {
		t.Fatal(err)
	}
	if stall <= 0 {
		t.Fatal("transition reported no stall")
	}
	if p.currentIdx != 1 {
		t.Fatalf("currentIdx = %d after transition to ladder[1]", p.currentIdx)
	}
	p.refreshTickMemo()
	evLow := p.tickEvalFor(0, phases[0])
	expectEvals(t, p, 6, "operating-point transition")
	if evLow == evHigh {
		t.Fatal("evaluation unchanged across an operating-point transition")
	}
}

// TestTickMemoRunSkipsSteadyTicks runs the full loop and checks the
// fast path actually engages: a steady-state run resolves the fixpoint
// orders of magnitude fewer times than it ticks, while the memo-off
// run resolves it on every tick.
func TestTickMemoRunSkipsSteadyTicks(t *testing.T) {
	w, err := workload.SPEC("473.astar")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = highPin()
	cfg.Duration = 500 * sim.Millisecond
	nTicks := int(cfg.Duration / cfg.SampleInterval)

	p, err := newPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.evalCalls*10 > nTicks {
		t.Fatalf("memoized run evaluated %d of %d ticks; fast path not engaging", p.evalCalls, nTicks)
	}

	// With the memo off but span batching on, the fixpoint resolves once
	// per span — still far fewer than once per tick.
	cfg.DisableTickMemo = true
	s, err := newPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.evalCalls*10 > nTicks {
		t.Fatalf("memo-off span run evaluated %d of %d ticks; span batching not engaging", s.evalCalls, nTicks)
	}

	// With both fast paths off, the loop is the historical per-tick
	// walk: one full evaluation per tick.
	cfg.DisableSpanBatching = true
	q, err := newPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q.evalCalls != nTicks {
		t.Fatalf("memo-off run evaluated %d times, want one per tick (%d)", q.evalCalls, nTicks)
	}
}

// TestPersistentFlowStats checks the platform accumulates transition
// statistics on its one persistent flow across MRC-mode changes.
func TestPersistentFlowStats(t *testing.T) {
	p := memoTestPlatform(t)
	low, high := p.cfg.Ladder[1], p.cfg.Ladder[0]
	if _, err := p.maybeTransition(0, PolicyDecision{Target: low, OptimizedMRC: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.maybeTransition(0, PolicyDecision{Target: high, OptimizedMRC: false}); err != nil {
		t.Fatal(err)
	}
	// Same-point decision is a no-op, not a transition.
	if _, err := p.maybeTransition(0, PolicyDecision{Target: high, OptimizedMRC: true}); err != nil {
		t.Fatal(err)
	}
	if got := p.flow.Transitions(); got != 2 {
		t.Fatalf("flow counted %d transitions, want 2", got)
	}
	if p.flow.TotalTime() <= 0 || p.flow.MaxTime() <= 0 {
		t.Fatal("flow accumulated no stall time")
	}
	if p.flow.MaxTime() > p.flow.TotalTime() {
		t.Fatal("max single transition exceeds the cumulative total")
	}
}

// refPhaseIndex is the pre-cursor reference mapping: modulo the loop
// length, then scan the phases.
func refPhaseIndex(w workload.Workload, t sim.Time) int {
	total := w.TotalDuration()
	if total <= 0 {
		return 0
	}
	t %= total
	for i, ph := range w.Phases {
		if t < ph.Duration {
			return i
		}
		t -= ph.Duration
	}
	return len(w.Phases) - 1
}

func TestPhaseCursorMatchesReference(t *testing.T) {
	w := workload.Workload{
		Name:  "cursor-test",
		Class: workload.Micro,
		Phases: []workload.Phase{
			{Duration: 3 * sim.Millisecond},
			{Duration: 7 * sim.Millisecond},
			{Duration: 2 * sim.Millisecond},
			{Duration: 1 * sim.Millisecond},
		},
	}
	for _, dt := range []sim.Time{
		1 * sim.Millisecond,  // the tick-loop case
		5 * sim.Millisecond,  // skips whole phases
		13 * sim.Millisecond, // equals the loop length
		31 * sim.Millisecond, // exceeds the loop length
		250 * sim.Microsecond,
	} {
		c := newPhaseCursor(w)
		now := sim.Time(0)
		for step := 0; step < 4000; step++ {
			if got, want := c.index(), refPhaseIndex(w, now); got != want {
				t.Fatalf("dt=%v step=%d t=%v: cursor phase %d, reference %d", dt, step, now, got, want)
			}
			now += dt
			c.advance(dt)
		}
	}
}
