package soc

import (
	"math"
	"sync"

	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// SpanCache memoizes closed-form span integrations *across* runs.
//
// A figure-style sweep re-simulates the same workloads under many
// policy/config variants, so most of a batch's spans are literally
// identical across jobs: the same phase, under the same platform
// programming, for the same number of ticks, integrates to the same
// deltas every time. The cache keys each policy-epoch span by
// (platform signature, phase, programming snapshot, span length) and
// stores the span's self-contained integration outcome (spanDelta), so
// a later run whose span matches applies an O(1) delta instead of
// re-deriving the fixpoint and the per-rail power sums.
//
// The key is exact, not heuristic: the phase and the programming
// snapshot are compared by value (they are comparable structs), and
// the platform signature folds every remaining Config input that feeds
// span integration — TDP, DRAM kind, ladder, CSR, sample interval,
// fixed-frequency pins, workload class. Two spans with equal keys are
// therefore integrated from bit-identical inputs, and applying a
// cached delta reproduces the uncached accumulator updates bit for
// bit (enforced by TestSpanCacheIdentity and the engine's A/B race
// test; Config.DisableSpanCache keeps the claim falsifiable).
//
// A SpanCache is safe for concurrent use; the run engine owns one per
// Engine and threads it into every pooled Runner. Spans carrying a
// DVFS stall charge are never cached (the stall perturbs the first
// tick's progress), and runs with TracePower or DisableSpanBatching
// bypass the cache entirely.
type SpanCache struct {
	mu sync.RWMutex
	m  map[spanKey]spanDelta
	// max bounds the entry count: once full, new spans simulate
	// without being inserted (sweeps re-visit their hot spans long
	// before a realistically sized cache fills).
	max int

	hits, misses, dropped int64
}

// DefaultSpanCacheEntries bounds a default-constructed span cache.
// Entries are ~1KB (key + delta); the default caps resident cache
// memory at roughly 64MB while holding several thousand sweep jobs'
// worth of distinct spans.
const DefaultSpanCacheEntries = 1 << 16

// NewSpanCache returns a cache bounded to maxEntries spans
// (maxEntries <= 0 selects DefaultSpanCacheEntries).
func NewSpanCache(maxEntries int) *SpanCache {
	if maxEntries <= 0 {
		maxEntries = DefaultSpanCacheEntries
	}
	return &SpanCache{m: make(map[spanKey]spanDelta), max: maxEntries}
}

// SpanCacheStats is a snapshot of the cache counters.
type SpanCacheStats struct {
	// Entries is the number of cached span integrations.
	Entries int
	// Hits counts spans applied as cached deltas; Misses counts spans
	// integrated in full (whether or not they were then inserted).
	Hits, Misses int
	// Dropped counts integrations not inserted because the cache was
	// full.
	Dropped int
}

// Stats returns a snapshot of the cache counters.
func (c *SpanCache) Stats() SpanCacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return SpanCacheStats{
		Entries: len(c.m),
		Hits:    int(c.hits),
		Misses:  int(c.misses),
		Dropped: int(c.dropped),
	}
}

// Clear drops every cached span (the counters are kept).
func (c *SpanCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[spanKey]spanDelta)
}

// lookup returns the cached delta for key, if present.
func (c *SpanCache) lookup(key spanKey) (spanDelta, bool) {
	c.mu.RLock()
	d, ok := c.m[key]
	c.mu.RUnlock()
	return d, ok
}

// insert stores a freshly integrated span unless the cache is full.
// It returns false when the delta was dropped.
func (c *SpanCache) insert(key spanKey, d spanDelta) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.max {
		if _, ok := c.m[key]; !ok {
			c.dropped++
			return false
		}
		return true
	}
	c.m[key] = d
	return true
}

// addStats folds one run's locally accumulated hit/miss counters into
// the shared counters. Runs count locally and flush once, so the hot
// loop never touches shared state beyond the map lookups themselves.
func (c *SpanCache) addStats(hits, misses int) {
	if hits == 0 && misses == 0 {
		return
	}
	c.mu.Lock()
	c.hits += int64(hits)
	c.misses += int64(misses)
	c.mu.Unlock()
}

// spanKey identifies one cacheable span across runs. Every input that
// feeds span integration is either present by value (phase, platform
// programming, span length) or folded into the platform signature
// (see platformSig). The struct is comparable, so lookups are plain
// map reads with no hashing allocations.
type spanKey struct {
	// plat is the platform-class signature: a fold over the Config
	// inputs outside the programming snapshot (TDP, DRAM kind, ladder,
	// CSR, sample interval, fixed pins, workload class).
	plat uint64
	// phase is the active workload phase, by value.
	phase workload.Phase
	// prog is the live platform-programming snapshot (operating point,
	// DRAM register image, compute clocks, budgets).
	prog tickProg
	// coreF and duty pin the raw core P-state and HDC duty cycle:
	// tickProg folds them into one effective frequency, which the
	// progress fixpoint depends on, but the power model sees them
	// separately (leakage follows the P-state voltage, switching the
	// duty cycle), so distinct (P-state, duty) pairs with equal
	// products must not alias.
	coreF vf.Hz
	duty  float64
	// n is the span length in ticks.
	n int
}

// spanDelta is one span's self-contained integration outcome: every
// accumulator increment and every piece of platform state the uncached
// span path would have produced. Increments are stored pre-multiplied
// (rate × residency × tickSec × n), so applying a delta adds the very
// float64 values the uncached path would have added — bit-identical
// results by construction.
type spanDelta struct {
	// ev carries the resolved tick evaluation; its component epochs
	// are restored on apply (they feed the next DVFS transition's
	// drain latency), exactly as a tick-memo hit restores them.
	ev tickEval
	// sample is the counter-file image the span latches n times.
	sample perfcounters.Sample
	// rails is the constant per-rail draw metered over the span.
	rails [vf.NumRails]power.Watt
	// computeW and dIOMem feed the governor's power telemetry
	// (dIOMem is pre-multiplied by n).
	computeW power.Watt
	dIOMem   float64
	// dWork/dActive/dResid/dCoreFreq/dGfxFreq are the pre-multiplied
	// accumulator increments.
	dWork, dActive float64
	dResid         float64
	dCoreFreq      float64
	dGfxFreq       float64
	// perfOK is false when a fixed-demand workload missed its
	// performance demand during the span.
	perfOK bool
}

// platformSig folds the span-relevant Config inputs that are not part
// of the programming snapshot into a 64-bit FNV-1a signature. It
// allocates nothing (the fold is field-by-field, no hashing buffer),
// so computing it per run keeps the pooled path allocation-free.
//
// The signature is the only inexact component of the span key — the
// phase and programming snapshot compare by value — so a collision
// needs two *platform classes* (not spans) agreeing on 64 bits while
// also matching phase, programming, and span length. Sweeps hold a
// handful of platform classes, putting the collision probability at
// the 2^-64 floor; the DisableSpanCache A/B suites would surface one.
func platformSig(cfg *Config) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	foldF := func(f float64) { fold(math.Float64bits(f)) }
	foldS := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		fold(uint64(len(s)))
	}

	foldF(float64(cfg.TDP))
	fold(uint64(cfg.DRAMKind))
	fold(uint64(cfg.SampleInterval))
	foldF(float64(cfg.FixedCoreFreq))
	foldF(float64(cfg.FixedGfxFreq))
	fold(uint64(cfg.Workload.Class))
	fold(uint64(len(cfg.Ladder)))
	for i := range cfg.Ladder {
		op := &cfg.Ladder[i]
		foldS(op.Name)
		foldF(float64(op.DDR))
		foldF(float64(op.MC))
		foldF(float64(op.Interco))
		foldF(float64(op.VSA))
		foldF(float64(op.VIO))
	}
	for i := range cfg.CSR.Panels {
		p := &cfg.CSR.Panels[i]
		fold(uint64(p.Res))
		foldF(p.RefreshHz)
	}
	fold(uint64(cfg.CSR.Camera))
	return h
}
