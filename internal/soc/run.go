package soc

import (
	"context"
	"fmt"
	"math"

	"sysscale/internal/cache"
	"sysscale/internal/compute"
	"sysscale/internal/dram"
	"sysscale/internal/interconnect"
	"sysscale/internal/memctrl"
	"sysscale/internal/perfcounters"
	"sysscale/internal/pmu"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
	"sysscale/internal/workload"
)

// Run simulates one workload under one policy and returns the Result.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the simulation checks ctx at
// every policy-evaluation boundary (spans never cross an epoch, so the
// check also bounds the span-batched core) and unwinds within one
// policy epoch of wall-progress once ctx is done, returning the
// context's cancel cause (context.Cause) — ctx.Err() when no distinct
// cause was set.
// The platform state is left consistent — a cancelled pooled platform
// resets bit-identically for its next run.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	p, err := newPlatform(cfg)
	if err != nil {
		return Result{}, err
	}
	return p.run(ctx)
}

// RunFunc is the signature of Run. Call sites that execute auxiliary
// simulations (the §6 scalability probes) accept a RunFunc so callers
// can route those runs through a caching engine instead of the bare
// simulator.
type RunFunc func(Config) (Result, error)

// MustRun is Run that panics on error, for benchmarks and examples
// whose configs are statically known-good.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// tickEval is the resolved state of one simulation tick.
type tickEval struct {
	r      float64 // progress rate relative to reference (C0)
	mcEp   memctrl.Epoch
	fabEp  interconnect.Epoch
	llcEp  cache.Epoch
	c2Util float64 // memory utilization during C2 (static traffic only)
	c2IO   float64 // fabric utilization during C2
	c2BW   float64 // achieved memory bytes during C2
}

func (p *Platform) run(ctx context.Context) (Result, error) {
	cfg := p.cfg
	cfg.Policy.Reset()

	res := Result{
		Workload:       cfg.Workload.Name,
		Policy:         cfg.Policy.Name(),
		Duration:       cfg.Duration,
		PerfMet:        true,
		PointResidency: make([]float64, len(cfg.Ladder)),
	}

	tick := cfg.SampleInterval
	tickSec := tick.Seconds()
	evalEvery := int(cfg.EvalInterval / tick)
	if evalEvery < 1 {
		evalEvery = 1
	}

	var (
		work, activeTime   float64
		counterSum         perfcounters.Sample
		counterTicks       int
		coreFreqSum        float64
		gfxFreqSum         float64
		lastComputePower   power.Watt
		ioMemPowerInterval float64
		intervalTicks      int
		pendingStall       sim.Time
	)

	cursor := newPhaseCursor(cfg.Workload)

	nTicks := int(cfg.Duration / tick)
	if nTicks < 1 {
		return Result{}, fmt.Errorf("soc: duration %v shorter than one tick", cfg.Duration)
	}

	if cfg.TracePower {
		res.PowerTrace = make([]float64, 0, nTicks)
	}

	// Program the initial compute P-states from the boot budgets.
	firstPhase := cfg.Workload.PhaseAt(0)
	if _, _, err := p.applyPBM(firstPhase, 0, 0); err != nil {
		return Result{}, err
	}
	p.refreshTickMemo()

	// The loop advances in spans: runs of consecutive ticks over which
	// the platform programming, the phase, and the stall charge are all
	// provably constant, so every per-tick quantity is identical and
	// the span integrates in O(1) by closed-form multiplication. Span
	// length is bounded by the next policy-eval epoch, the next phase
	// boundary, and the end of the run; DVFS stall charges and power
	// tracing fall back to single-tick spans. With DisableSpanBatching
	// every span is one tick, which reproduces the per-tick walk
	// bit-for-bit (all batch accumulators are exact identities at n=1).
	batch := !cfg.DisableSpanBatching && !cfg.TracePower

	// Cross-job span cache: when the engine threaded a SpanCache into
	// this platform, stall-free spans are keyed by (platform signature,
	// phase, programming, length) and served as cached deltas — the
	// redundancy across a sweep's jobs, not just within one run. Hits
	// and misses accumulate locally and flush once at run end, so the
	// hot loop shares nothing but the cache map itself.
	useCache := p.spanCache != nil && batch && !cfg.DisableSpanCache
	var plat uint64
	var cacheHits, cacheMisses int
	if useCache {
		plat = platformSig(&cfg)
	}

	for i := 0; i < nTicks; {
		idx := cursor.index()
		ph := cursor.phase()

		// Policy evaluation at interval boundaries. Spans never cross an
		// epoch boundary, so every multiple of evalEvery starts a span.
		if i%evalEvery == 0 {
			// Cancellation is observed here, once per policy epoch: a
			// cancelled run unwinds within one epoch of wall-progress and
			// costs the hot loop nothing between decisions. The cancel
			// cause is surfaced when one was set (context.WithTimeoutCause
			// is how the engine brands per-job deadlines), so callers can
			// tell a job's own timeout from batch-cancellation collateral.
			if err := ctx.Err(); err != nil {
				if cause := context.Cause(ctx); cause != nil {
					err = cause
				}
				return Result{}, err
			}
			now := p.clock.Now()
			avg, n := p.counters.WindowAverage()
			if n == 0 {
				avg = p.counters.Current()
			}
			ioMemAvg := power.Watt(0)
			if intervalTicks > 0 {
				ioMemAvg = power.Watt(ioMemPowerInterval / float64(intervalTicks))
			}
			ctx := PolicyContext{
				Now:      now,
				Interval: cfg.EvalInterval,
				Counters: avg,
				CSR:      p.ioeng.CSR(),
				Current:  p.current,
				Ladder:   cfg.Ladder,
				// The worst-case tables go in as the method values bound
				// once at assembly: binding them here would allocate two
				// closures per policy epoch (they were the pooled run
				// path's dominant allocation).
				WorstIO:       p.worstIOFn,
				WorstMem:      p.worstMemFn,
				ComputeBudget: p.budget.Compute(),
				ComputePower:  lastComputePower,
				IOMemPower:    ioMemAvg,
				CoreFreq:      p.cores.Frequency(),
				Warmup:        i == 0,
				GfxBusy:       ph.GfxFrac > 0.02 || ph.GfxActivity > 0,
			}
			dec := cfg.Policy.Decide(ctx)
			if err := p.executeDecision(dec); err != nil {
				return Result{}, err
			}
			stall, err := p.maybeTransition(now, dec)
			if err != nil {
				return Result{}, err
			}
			pendingStall += stall
			p.setBonus(dec.ComputeBonus)
			if _, _, err := p.applyPBM(ph, dec.CoreFreqReq, dec.GfxFreqReq); err != nil {
				return Result{}, err
			}
			p.counters.ResetWindow()
			ioMemPowerInterval = 0
			intervalTicks = 0
			p.refreshTickMemo()
		}

		// Span length: how many ticks from i share this exact evaluation.
		n := 1
		if batch && pendingStall == 0 {
			n = spanTicks(i, nTicks, evalEvery, &cursor, tick)
		}
		fn := float64(n)

		// Charge DVFS stall time against this tick's progress. A span
		// with a pending stall is a single tick (n == 1 above), so the
		// charge lands on exactly the tick that issued the transition.
		stallFrac := 0.0
		if pendingStall > 0 {
			stallFrac = float64(pendingStall) / float64(tick)
			if stallFrac > 1 {
				stallFrac = 1
			}
			pendingStall = 0
		}

		// Resolve the span's integration outcome: from the cross-job
		// cache when an identical span was integrated before (any run,
		// any job), in full otherwise. Stall-charged spans are never
		// cached — the charge perturbs this span's progress rate but
		// not the key.
		var d spanDelta
		hit := false
		var key spanKey
		cacheable := useCache && stallFrac == 0
		if cacheable {
			key = spanKey{
				plat:  plat,
				phase: ph,
				prog:  p.programming(),
				coreF: p.cores.Frequency(),
				duty:  p.cores.DutyCycle(),
				n:     n,
			}
			if d, hit = p.spanCache.lookup(key); hit {
				cacheHits++
				// A cache hit must leave the platform exactly as the
				// full integration would: restore the components'
				// rolling epochs (the fabric's feeds the next DVFS
				// transition's drain latency), as a tick-memo hit does.
				p.mc.RestoreEpoch(d.ev.mcEp)
				p.fabric.RestoreEpoch(d.ev.fabEp)
				p.llc.RestoreEpoch(d.ev.llcEp)
			}
		}
		if !hit {
			d = p.integrateSpan(idx, ph, stallFrac, tickSec, fn)
			if cacheable {
				cacheMisses++
				p.spanCache.insert(key, d)
			}
		}

		// Apply the delta. Every increment below is the pre-multiplied
		// float64 the uncached path computed (integrateSpan stores the
		// products, not the factors), so cached and uncached runs
		// accumulate bit-identical values.
		work += d.dWork
		activeTime += d.dActive

		// Counters reflect each tick's average activity, constant over
		// the span: latch the same sample n times in one step.
		p.counters.Restore(d.sample)
		p.counters.LatchN(n)
		counterSum = addSampleN(counterSum, d.sample, fn)
		counterTicks += n

		// Power: the per-rail draws are constant over the span, so the
		// meters integrate n ticks in closed form.
		p.meters.AccumulateN(d.rails, tick, n)
		lastComputePower = d.computeW
		ioMemPowerInterval += d.dIOMem
		intervalTicks += n

		if cfg.TracePower {
			var tot power.Watt
			for _, w := range d.rails {
				tot += w
			}
			res.PowerTrace = append(res.PowerTrace, float64(tot))
		}

		if !d.perfOK {
			res.PerfMet = false
		}
		res.PointResidency[p.currentIdx] += d.dResid
		coreFreqSum += d.dCoreFreq
		gfxFreqSum += d.dGfxFreq

		p.clock.AdvanceTicks(n)
		cursor.advance(sim.Time(n) * tick)
		i += n
	}

	// Flush the run's locally counted cache traffic once. (Runs that
	// unwind early — cancellation, decision errors — skip the flush;
	// the counters are telemetry, not accounting.)
	if useCache {
		p.spanCache.addStats(cacheHits, cacheMisses)
	}

	elapsed := cfg.Duration.Seconds()
	res.Score = work / elapsed
	if activeTime > 0 {
		res.ActiveScore = work / activeTime
	}
	res.AvgPower = p.meters.Total().Average()
	res.Energy = p.meters.Total().Energy()
	if res.Score > 0 {
		res.EDP = float64(res.AvgPower) / (res.Score * res.Score)
	}
	for i := 0; i < vf.NumRails; i++ {
		res.RailAvg[i] = p.meters.Rail(vf.RailID(i)).Average()
	}
	res.Transitions = p.flow.Transitions()
	res.TransitionTime = p.flow.TotalTime()
	res.MaxTransition = p.flow.MaxTime()
	for i := range res.PointResidency {
		res.PointResidency[i] /= elapsed
	}
	res.AvgCoreFreq = vf.Hz(coreFreqSum / float64(nTicks))
	res.AvgGfxFreq = vf.Hz(gfxFreqSum / float64(nTicks))
	if counterTicks > 0 {
		for i := range counterSum {
			counterSum[i] /= float64(counterTicks)
		}
		res.CounterAvg = counterSum
	}
	return res, nil
}

// integrateSpan resolves one span in full: the tick evaluation (via
// the steady-state memo), the residency split, and every accumulator
// increment, pre-multiplied by the span length. The result is a
// self-contained spanDelta — applying it (plus restoring the component
// epochs it carries) reproduces the historical per-span mutations bit
// for bit, which is what makes the delta sound to replay from the
// cross-job cache.
func (p *Platform) integrateSpan(idx int, ph workload.Phase, stallFrac, tickSec, fn float64) spanDelta {
	ev := p.tickEvalFor(idx, ph)
	effRate := ev.r * (1 - stallFrac)

	// C-state residency; fixed-demand workloads stretch or shrink
	// their active window to hold work constant (race-to-sleep).
	resid := ph.Residency
	c0 := resid.C0
	perfOK := true
	if p.cfg.Workload.Class == workload.Battery && effRate > 0 {
		c0 = resid.C0 / effRate
		if c0 > 1 {
			c0 = 1
			perfOK = false
		}
	}
	idleScale := 1.0
	if rem := resid.C2 + resid.C6 + resid.C8; rem > 0 {
		idleScale = (1 - c0) / rem
		if idleScale < 0 {
			idleScale = 0
		}
	}
	c2 := resid.C2 * idleScale
	deep := (resid.C6 + resid.C8) * idleScale

	d := spanDelta{
		ev:      ev,
		sample:  p.sampleFor(ev, c0, c2),
		dWork:   effRate * c0 * tickSec * fn,
		dActive: c0 * tickSec * fn,
		dResid:  tickSec * fn,
		perfOK:  perfOK,
	}
	var ioMemW power.Watt
	d.rails, d.computeW, ioMemW = p.tickPower(ph, ev, c0, c2, deep, resid)
	d.dIOMem = float64(ioMemW) * fn
	d.dCoreFreq = float64(p.cores.Frequency()) * fn
	d.dGfxFreq = float64(p.gfx.Frequency()) * fn
	return d
}

// spanTicks returns how many consecutive ticks, starting at tick index
// i, the platform evaluation is provably constant for: the span ends at
// the earliest of the next policy-eval epoch (the next multiple of
// evalEvery), the cursor's next phase boundary, and the end of the run.
// The result is always ≥ 1 (i itself is inside the run, inside the
// active phase, and past its own epoch boundary).
func spanTicks(i, nTicks, evalEvery int, c *phaseCursor, tick sim.Time) int {
	n := nTicks - i
	if untilEval := evalEvery - i%evalEvery; untilEval < n {
		n = untilEval
	}
	if untilPhase := int((c.nextBoundary() + tick - 1) / tick); untilPhase < n {
		n = untilPhase
	}
	return n
}

// --- policy execution helpers ---

// bonus budget granted by the active decision, applied on PBM calls.
func (p *Platform) setBonus(b power.Watt) {
	if b < 0 {
		b = 0
	}
	p.bonus = b
}

// executeDecision programs the budget reservations (clamped by the
// TDP-proportional reservation cap).
func (p *Platform) executeDecision(dec PolicyDecision) error {
	io, mem := dec.IOBudget, dec.MemBudget
	if io <= 0 {
		io = p.WorstCaseIOBudget(p.cfg.Ladder[0])
	}
	if mem <= 0 {
		mem = p.WorstCaseMemBudget(p.cfg.Ladder[0])
	}
	io, mem = p.clampReservations(io, mem)
	return p.pbm.SetIOMemoryBudget(io, mem)
}

// maybeTransition runs the Fig. 5 flow when the target point differs
// from the current one, honoring the decision's MRC mode. The platform
// owns one persistent flow, allocated at assembly and reconfigured per
// decision, so cumulative transition statistics accrue natively on it
// and the hot loop allocates nothing per transition.
func (p *Platform) maybeTransition(now sim.Time, dec PolicyDecision) (sim.Time, error) {
	if dec.Target.Name == "" || dec.Target == p.current {
		return 0, nil
	}
	opts := pmu.DefaultFlowOptions(p.cfg.Ladder[0].DDR)
	opts.OptimizedMRC = dec.OptimizedMRC
	p.flow.Reconfigure(opts)
	stall, err := p.flow.Transition(now, dec.Target)
	if err != nil {
		return 0, err
	}
	p.current = dec.Target
	p.currentIdx = p.ladderIdx[p.current]
	return stall, nil
}

// pbmMemo caches the last applyPBM outcome. PBM.Apply is a pure
// function of the request and the compute budget that programs the
// core/graphics P-states and duty cycle; when the same request meets
// the same budget AND the programmed compute state still equals what
// the last Apply left behind (nothing else touched the clocks), the
// arbitration — including the budget→frequency search — is skipped.
// In steady state this turns every policy epoch's PBM call into a few
// comparisons.
type pbmMemo struct {
	valid  bool
	req    pmu.Request
	budget power.Watt
	// granted frequencies returned to the caller.
	coreF, gfxF vf.Hz
	// compute state Apply (plus fixed-frequency overrides) programmed;
	// a mismatch means someone reprogrammed the clocks and the memo is
	// unsound.
	coreState, gfxState vf.Hz
	duty                float64
}

// applyPBM converts the current budgets into compute P-states for the
// phase, honoring fixed-frequency overrides and policy caps.
func (p *Platform) applyPBM(ph workload.Phase, coreCap, gfxCap vf.Hz) (vf.Hz, vf.Hz, error) {
	req := pmu.Request{
		ActiveCores: ph.ActiveCores,
		GfxShare:    gfxShareFor(ph),
		BonusBudget: p.bonus,
	}
	// Class-level OS requests: battery workloads request the lowest
	// usable P-states (§7.3); during graphics workloads the cores run
	// at the most energy-efficient frequency Pn while the graphics
	// engines take the rest of the budget (§7.2); throughput CPU
	// workloads request maximum.
	if p.cfg.Workload.Class == workload.Battery {
		req.CoreFreq = 1.2 * vf.GHz
		req.GfxFreq = 0.45 * vf.GHz
	} else if req.GfxShare >= 0.75 {
		req.CoreFreq = 1.2 * vf.GHz
	}
	if coreCap > 0 && (req.CoreFreq == 0 || coreCap < req.CoreFreq) {
		req.CoreFreq = coreCap
	}
	if gfxCap > 0 && (req.GfxFreq == 0 || gfxCap < req.GfxFreq) {
		req.GfxFreq = gfxCap
	}
	if m := &p.pbmMemo; !p.cfg.DisablePBMMemo && m.valid && req == m.req && p.budget.Compute() == m.budget &&
		p.cores.Frequency() == m.coreState && p.gfx.Frequency() == m.gfxState &&
		p.cores.DutyCycle() == m.duty {
		return m.coreF, m.gfxF, nil
	}
	coreF, gfxF, err := p.pbm.Apply(req)
	if err != nil {
		return 0, 0, err
	}
	// Fixed-frequency overrides pin the clocks exactly: the §3
	// motivation experiments and the §6 scalability probes bypass
	// budget arbitration by design.
	if p.cfg.FixedCoreFreq > 0 {
		if err := p.cores.SetPState(p.cfg.FixedCoreFreq); err != nil {
			return 0, 0, err
		}
		coreF = p.cores.Frequency()
	}
	if p.cfg.FixedGfxFreq > 0 {
		if err := p.gfx.SetPState(p.cfg.FixedGfxFreq); err != nil {
			return 0, 0, err
		}
		gfxF = p.gfx.Frequency()
	}
	p.pbmMemo = pbmMemo{
		valid: true, req: req, budget: p.budget.Compute(),
		coreF: coreF, gfxF: gfxF,
		coreState: p.cores.Frequency(), gfxState: p.gfx.Frequency(),
		duty: p.cores.DutyCycle(),
	}
	return coreF, gfxF, nil
}

// gfxShareFor is the PBM's compute-budget split: graphics workloads
// hand 80-90% of the compute budget to the graphics engines (§7.2).
func gfxShareFor(ph workload.Phase) float64 {
	switch {
	case ph.GfxFrac > 0.25:
		return 0.75
	case ph.GfxFrac > 0.03 || ph.GfxActivity > 0.05:
		return 0.35
	default:
		return 0
	}
}

// --- per-tick evaluation ---

// tickProg captures every piece of programmable platform state that
// feeds evalTick. Between policy decisions nothing in it changes, so
// the fixpoint resolves to an identical tickEval for a given phase —
// that is what makes the steady-state tick memo sound. The struct is
// comparable; equality of two snapshots means evalTick is a pure
// function of the phase index alone.
type tickProg struct {
	// point determines the MC/fabric/DRAM clocks and rail voltages.
	point vf.OperatingPoint
	// timing is the live DRAM register image: an optimized image and a
	// detuned boot image at the same point evaluate differently
	// (Observation 4), so the image itself is part of the key.
	timing dram.Timing
	// coreEff and gfxF are the compute clocks the fixpoint slows
	// against (effective frequency folds in the HDC duty cycle).
	coreEff vf.Hz
	gfxF    vf.Hz
	// bonus and the domain budget programming feed evalTick only
	// through the granted P-states above, but are included so any
	// executeDecision/applyPBM reprogramming conservatively
	// invalidates.
	bonus power.Watt
	ioB   power.Watt
	memB  power.Watt
}

// programming snapshots the current tick-evaluation inputs.
func (p *Platform) programming() tickProg {
	return tickProg{
		point:   p.current,
		timing:  p.dev.Timing(),
		coreEff: p.cores.EffectiveFrequency(),
		gfxF:    p.gfx.Frequency(),
		bonus:   p.bonus,
		ioB:     p.budget.IO(),
		memB:    p.budget.Memory(),
	}
}

// refreshTickMemo re-snapshots the programming state after the
// decision path (executeDecision, maybeTransition, applyPBM) ran, and
// invalidates the per-phase memo if anything actually changed.
// Reprogramming identical values keeps the memo warm — the steady
// state — so between decisions, and across decisions that do not move
// the platform, each phase's fixpoint is resolved exactly once.
func (p *Platform) refreshTickMemo() {
	prog := p.programming()
	if p.memoReady && prog == p.tickProg {
		return
	}
	p.tickProg = prog
	if !p.memoReady {
		n := len(p.cfg.Workload.Phases)
		if cap(p.tickMemo) >= n && cap(p.tickValid) >= n {
			// Pooled platform: recycle the per-phase backing arrays.
			p.tickMemo = p.tickMemo[:n]
			p.tickValid = p.tickValid[:n]
			for i := range p.tickValid {
				p.tickValid[i] = false
			}
		} else {
			p.tickMemo = make([]tickEval, n)
			p.tickValid = make([]bool, n)
		}
		p.memoReady = true
		return
	}
	for i := range p.tickValid {
		p.tickValid[i] = false
	}
}

// tickEvalFor returns the tick evaluation for phase idx, serving it
// from the memo when the programming snapshot is unchanged.
//
// A memo hit must leave the platform in the same state a fresh
// evalTick would: evalTick's only side effects are the components'
// rolling last-evaluated epochs, and the fabric's feeds the drain
// latency of the next DVFS transition. Restore all three so memoized
// and per-tick runs stay bit-identical.
func (p *Platform) tickEvalFor(idx int, ph workload.Phase) tickEval {
	if !p.cfg.DisableTickMemo && p.tickValid[idx] {
		ev := p.tickMemo[idx]
		p.mc.RestoreEpoch(ev.mcEp)
		p.fabric.RestoreEpoch(ev.fabEp)
		p.llc.RestoreEpoch(ev.llcEp)
		return ev
	}
	p.evalCalls++
	ev := p.evalTick(ph, p.refLatOf(idx, ph))
	if !p.cfg.DisableTickMemo {
		p.tickMemo[idx] = ev
		p.tickValid[idx] = true
	}
	return ev
}

// refLatOf returns phase idx's reference loaded latency (computed once
// at the boot/high point and cached for the whole run).
func (p *Platform) refLatOf(idx int, ph workload.Phase) float64 {
	if l, ok := p.refLats[idx]; ok {
		return l
	}
	static := p.ioeng.CSR().StaticBandwidth()
	ep := p.refMC.Evaluate(static + ph.MemBW)
	p.refLats[idx] = ep.Latency
	return ep.Latency
}

// evalTick resolves the tick's progress-rate fixpoint and component
// epochs for the active (C0) scenario, plus the C2 (static-only)
// utilizations used for idle-state power.
func (p *Platform) evalTick(ph workload.Phase, refLat float64) tickEval {
	static := p.ioeng.CSR().StaticBandwidth()

	// C2 scenario: only static isochronous traffic flows.
	c2Mem := p.mc.Evaluate(static)
	c2Fab := p.fabric.Evaluate(static)
	ev := tickEval{c2Util: c2Mem.Utilization, c2IO: c2Fab.Utilization, c2BW: c2Mem.AchievedBytes}

	coreEff := float64(p.cores.EffectiveFrequency())
	gfxF := float64(p.gfx.Frequency())
	coreSlow := float64(workload.RefCoreFreq) / math.Max(coreEff, 1)
	gfxSlow := float64(workload.RefGfxFreq) / math.Max(gfxF, 1)

	r := 1.0
	var mcEp memctrl.Epoch
	var fabEp interconnect.Epoch
	for it := 0; it < 16; it++ {
		memDemand := static + r*ph.MemBW
		mcEp = p.mc.Evaluate(memDemand)
		fabEp = p.fabric.Evaluate(static + r*ph.IOBW)

		usable := p.mc.UsableBandwidth()
		avail := usable - static
		if avail < 1e6 {
			avail = 1e6
		}
		bwSlow := 1.0
		if ph.MemBW > 0 {
			served := math.Min(r*ph.MemBW, avail)
			if served < 1e6 {
				served = 1e6
			}
			bwSlow = (r * ph.MemBW) / served
			if bwSlow < 1 {
				bwSlow = 1
			}
		}
		latSlow := 1.0
		if refLat > 0 && !math.IsInf(mcEp.Latency, 1) {
			latSlow = mcEp.Latency / refLat
		}
		ioSlow := 1.0
		if ph.IOBW > 0 {
			availIO := p.fabric.Capacity() - static
			if availIO < 1e6 {
				availIO = 1e6
			}
			served := math.Min(r*ph.IOBW, availIO)
			if served < 1e6 {
				served = 1e6
			}
			ioSlow = (r * ph.IOBW) / served
			if ioSlow < 1 {
				ioSlow = 1
			}
		}

		t := ph.CoreFrac*coreSlow + ph.GfxFrac*gfxSlow +
			ph.MemLatFrac*latSlow + ph.MemBWFrac*bwSlow +
			ph.IOFrac*ioSlow + ph.OtherFrac()
		if t < 1e-9 {
			t = 1e-9
		}
		rNew := 1 / t
		r = 0.5*r + 0.5*rNew
	}
	ev.r = r
	ev.mcEp = mcEp
	ev.fabEp = fabEp

	// LLC epoch for counters: split workload traffic between core and
	// graphics agents by their compute-boundedness ratio.
	gfxTraffic := 0.0
	if d := ph.GfxFrac + ph.CoreFrac; d > 0 {
		gfxTraffic = ph.GfxFrac / d
	}
	wlBytes := r * ph.MemBW
	// Fraction of wall-clock time the agents spend stalled on memory
	// latency at the achieved progress rate: the latency-bound share of
	// the CPI stack scaled by the loaded-vs-reference latency ratio.
	finalLatSlow := 1.0
	if refLat > 0 && !math.IsInf(mcEp.Latency, 1) {
		finalLatSlow = mcEp.Latency / refLat
	}
	stallFrac := ph.MemLatFrac * finalLatSlow * r
	ev.llcEp = p.llc.Evaluate(cache.Traffic{
		CoreMissBytes: wlBytes * (1 - gfxTraffic),
		GfxMissBytes:  wlBytes * gfxTraffic,
		CoreHitBytes:  wlBytes * 2.5, // typical LLC hit:miss byte ratio
		LatStallFrac:  stallFrac,
	}, mcEp.Latency)
	return ev
}

// sampleFor computes the tick's counter-file image, weighting
// active-only events by residency (the counters are free-running; idle
// time simply contributes no events). The image covers the whole file,
// so restoring it into the counter file is equivalent to the
// historical per-counter writes.
func (p *Platform) sampleFor(ev tickEval, c0, c2 float64) perfcounters.Sample {
	var s perfcounters.Sample
	s[perfcounters.GfxLLCMisses] = ev.llcEp.GfxMisses * c0
	s[perfcounters.LLCOccupancyTracer] = ev.llcEp.OccupancyTracer * c0
	s[perfcounters.LLCStalls] = ev.llcEp.Stalls * c0
	s[perfcounters.IORPQ] = ev.fabEp.RPQOccupancy * c0
	s[perfcounters.CoreCycles] = float64(p.cores.EffectiveFrequency()) * c0
	s[perfcounters.MemReadBytes] = ev.mcEp.AchievedBytes*c0*0.7 + ev.c2BW*c2*0.7
	s[perfcounters.MemWriteBytes] = ev.mcEp.AchievedBytes*c0*0.3 + ev.c2BW*c2*0.3
	return s
}

// tickPower computes the tick's per-rail power, returning also the
// compute-domain and IO+memory-domain sums used by governors.
func (p *Platform) tickPower(ph workload.Phase, ev tickEval, c0, c2, deep float64, orig compute.Residency) ([vf.NumRails]power.Watt, power.Watt, power.Watt) {
	var rails [vf.NumRails]power.Watt

	// Split the deep fraction between C6 and C8 in their original
	// proportions.
	c6, c8 := 0.0, 0.0
	if d := orig.C6 + orig.C8; d > 0 {
		c6 = deep * orig.C6 / d
		c8 = deep * orig.C8 / d
	}

	// Compute domain.
	coreActive := p.cores.ActivePower(ph.ActiveCores, ph.CoreActivity)
	llcW := p.llc.Power(p.cores.Voltage(), p.cores.Frequency(), ev.mcEp.AchievedBytes*3.5)
	coreW := power.Watt(c0)*(coreActive+llcW) +
		power.Watt(c2)*p.cores.IdlePower(compute.C2) +
		power.Watt(c6)*p.cores.IdlePower(compute.C6) +
		power.Watt(c8)*p.cores.IdlePower(compute.C8)
	rails[vf.RailVCore] = coreW

	var gfxW power.Watt
	if ph.GfxActivity > 0 {
		gfxW = power.Watt(c0) * p.gfx.ActivePower(ph.GfxActivity)
	} else {
		gfxW = power.Watt(c0) * gfxGatedPower
	}
	gfxW += power.Watt(c2+c6)*gfxGatedPower + power.Watt(c8)*gfxOffPower
	rails[vf.RailVGfx] = gfxW

	// IO + memory domains: active and C2 run with their respective
	// utilizations; deep states are gated to residuals.
	mcW := power.Watt(c0)*p.mc.Power(ev.mcEp.Utilization) + power.Watt(c2)*p.mc.Power(ev.c2Util)
	fabW := power.Watt(c0)*p.fabric.Power(ev.fabEp.Utilization) + power.Watt(c2)*p.fabric.Power(ev.c2IO)
	engW := power.Watt(c0+c2) * p.ioeng.Power(p.rails.Voltage(vf.RailVSA), p.fabric.Frequency())
	saGated := power.Watt(c6+c8) * saResidualPower
	uncore := power.Watt(c0+c2)*uncorePower + power.Watt(c6+c8)*uncoreIdlePower
	rails[vf.RailVSA] = mcW + fabW + engW + saGated + uncore

	dramActiveW := p.dramPow.Draw(p.dev, ev.mcEp.AchievedBytes, ev.mcEp.Utilization)
	dramC2W := p.dramPow.Draw(p.dev, ev.c2BW, ev.c2Util)
	rails[vf.RailVDDQ] = power.Watt(c0)*dramActiveW + power.Watt(c2)*dramC2W +
		power.Watt(c6+c8)*p.dramPow.SelfRefresh

	vio := p.rails.Voltage(vf.RailVIO)
	rails[vf.RailVIO] = power.Watt(c0)*p.ddrio.Power(vio, p.dev.Frequency(), ev.mcEp.Utilization) +
		power.Watt(c2)*p.ddrio.Power(vio, p.dev.Frequency(), ev.c2Util) +
		power.Watt(c6+c8)*ddrioOffPower

	computeW := rails[vf.RailVCore] + rails[vf.RailVGfx]
	ioMemW := rails[vf.RailVSA] + rails[vf.RailVDDQ] + rails[vf.RailVIO]
	return rails, computeW, ioMemW
}

// Idle/gated residual draws.
const (
	gfxGatedPower   power.Watt = 0.012
	gfxOffPower     power.Watt = 0.002
	saResidualPower power.Watt = 0.010
	uncoreIdlePower power.Watt = 0.005
	ddrioOffPower   power.Watt = 0.004
)

// addSampleN accumulates n copies of b into a in closed form. n == 1
// is an exact identity with per-tick addition (x*1.0 == x in IEEE
// arithmetic), which keeps the span-off path bit-identical to the
// historical per-tick walk.
func addSampleN(a, b perfcounters.Sample, n float64) perfcounters.Sample {
	for i := range a {
		a[i] += b[i] * n
	}
	return a
}
