package soc

import (
	"fmt"
	"strings"

	"sysscale/internal/perfcounters"
	"sysscale/internal/power"
	"sysscale/internal/sim"
	"sysscale/internal/vf"
)

// Result is the outcome of one simulation run — the quantities the
// paper reports per workload: performance, average power, energy, EDP,
// plus the model-internal telemetry the experiments and tests need.
type Result struct {
	Workload string
	Policy   string
	Duration sim.Time

	// Score is work completed per second (1.0 = the workload's
	// reference progress rate sustained continuously in C0). For
	// throughput workloads, relative Scores are the paper's
	// performance ratios; for battery workloads Score stays at the
	// fixed demand as long as the demand is met.
	Score float64
	// ActiveScore is progress per active (C0) second — the
	// instantaneous performance level during active phases.
	ActiveScore float64
	// PerfMet reports whether a fixed-demand (battery) workload met
	// its performance demand throughout.
	PerfMet bool

	AvgPower power.Watt
	Energy   power.Joule
	// EDP is energy × delay per unit of work (J·s per work unit²),
	// the §2.4 efficiency metric: lower is better.
	EDP float64

	RailAvg [vf.NumRails]power.Watt

	// DVFS telemetry.
	Transitions    int
	TransitionTime sim.Time
	MaxTransition  sim.Time
	// PointResidency[i] is the fraction of run time spent at
	// ladder point i.
	PointResidency []float64

	// Compute telemetry.
	AvgCoreFreq vf.Hz
	AvgGfxFreq  vf.Hz

	// CounterAvg is the run-average counter sample.
	CounterAvg perfcounters.Sample

	// PowerTrace is the per-tick package power (present when
	// Config.TracePower is set).
	PowerTrace []float64
}

// EDPOf computes energy×delay for a given amount of work at this run's
// rates; used for cross-run comparisons.
func (r Result) EDPOf() float64 { return r.EDP }

// Summary renders a one-line digest.
func (r Result) Summary() string {
	return fmt.Sprintf("%s/%s: score %.4f, avg %.3fW, EDP %.4g, low-point %.0f%%, %d transitions",
		r.Workload, r.Policy, r.Score, r.AvgPower, r.EDP, r.lowResidency()*100, r.Transitions)
}

func (r Result) lowResidency() float64 {
	if len(r.PointResidency) < 2 {
		return 0
	}
	var f float64
	for _, v := range r.PointResidency[1:] {
		f += v
	}
	return f
}

// String renders a multi-line report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload  %s\npolicy    %s\nduration  %v\n", r.Workload, r.Policy, r.Duration)
	fmt.Fprintf(&b, "score     %.4f (active %.4f, perf-met %v)\n", r.Score, r.ActiveScore, r.PerfMet)
	fmt.Fprintf(&b, "avg power %.3fW  energy %.3fJ  EDP %.4g\n", r.AvgPower, r.Energy, r.EDP)
	for i, w := range r.RailAvg {
		fmt.Fprintf(&b, "  %-7s %.3fW\n", vf.RailID(i), w)
	}
	fmt.Fprintf(&b, "core freq %v  gfx freq %v\n", r.AvgCoreFreq, r.AvgGfxFreq)
	fmt.Fprintf(&b, "transitions %d (total %v, max %v)\n", r.Transitions, r.TransitionTime, r.MaxTransition)
	for i, res := range r.PointResidency {
		fmt.Fprintf(&b, "  point[%d] residency %.1f%%\n", i, res*100)
	}
	return b.String()
}

// PerfImprovement returns (r/base - 1) of the Scores: the paper's
// performance-improvement metric.
func PerfImprovement(r, base Result) float64 {
	if base.Score == 0 {
		return 0
	}
	return r.Score/base.Score - 1
}

// PowerReduction returns (1 - r/base) of the average powers: the
// paper's battery-life metric.
func PowerReduction(r, base Result) float64 {
	if base.AvgPower == 0 {
		return 0
	}
	return 1 - float64(r.AvgPower/base.AvgPower)
}

// EnergyReduction returns (1 - r/base) of the per-work energies.
func EnergyReduction(r, base Result) float64 {
	if base.Score == 0 || r.Score == 0 || base.AvgPower == 0 {
		return 0
	}
	ePerWork := float64(r.AvgPower) / r.Score
	basePerWork := float64(base.AvgPower) / base.Score
	return 1 - ePerWork/basePerWork
}

// EDPImprovement returns (1 - r/base) of EDP (positive = better).
func EDPImprovement(r, base Result) float64 {
	if base.EDP == 0 {
		return 0
	}
	return 1 - r.EDP/base.EDP
}
