package soc

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// cancelAfterPolicy behaves like testPolicy but cancels a context on
// its nth Decide call, so the test can pin cancellation to an exact
// policy epoch.
type cancelAfterPolicy struct {
	testPolicy
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancelAfterPolicy) Decide(ctx PolicyContext) PolicyDecision {
	p.calls++
	if p.calls == p.after {
		p.cancel()
	}
	return p.testPolicy.Decide(ctx)
}

func (p *cancelAfterPolicy) Clone() Policy {
	c := *p
	return &c
}

// TestRunContextCancelsWithinOneEpoch proves the cancellation
// granularity contract: a run whose context is cancelled during the
// nth policy decision returns context.Canceled before the (n+1)th —
// one epoch of wall-progress, not one tick and not the rest of the
// run.
func TestRunContextCancelsWithinOneEpoch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := testConfig(t, "470.lbm")
	cfg.Duration = 100 * cfg.EvalInterval // far more epochs than the cancel point
	pol := &cancelAfterPolicy{testPolicy: *highPin(), cancel: cancel, after: 3}
	cfg.Policy = pol

	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if pol.calls != pol.after {
		t.Fatalf("policy decided %d times after cancellation at decision %d: run did not stop within one epoch",
			pol.calls, pol.after)
	}
}

// TestRunContextBackgroundIdentical proves the ctx plumbing is free:
// RunContext with a background context is bit-identical to Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	cfg := testConfig(t, "470.lbm")
	cfg.Policy = lowPin(true)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = lowPin(true)
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunContext(Background) diverged from Run")
	}
}

// TestRunnerRecoversFromCancelledRun proves a pooled platform
// abandoned mid-run by cancellation resets bit-identically: the same
// Runner that was cancelled produces fresh-platform results on its
// next, uncancelled run.
func TestRunnerRecoversFromCancelledRun(t *testing.T) {
	cfg := testConfig(t, "470.lbm")
	cfg.Duration = 100 * cfg.EvalInterval
	want, err := Run(withPolicy(cfg, lowPin(true)))
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	pol := &cancelAfterPolicy{testPolicy: *highPin(), cancel: cancel, after: 2}
	if _, err := r.RunContext(ctx, withPolicy(cfg, pol)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled runner run returned %v, want context.Canceled", err)
	}
	cancel()

	got, err := r.Run(withPolicy(cfg, lowPin(true)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("runner recycled after a cancelled run diverged from a fresh platform")
	}
}

// TestValidateWrapsErrInvalidConfig pins the typed-error contract on
// the validation path.
func TestValidateWrapsErrInvalidConfig(t *testing.T) {
	cfg := testConfig(t, "470.lbm")
	cfg.Policy = highPin()
	cfg.Duration = -1
	if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid duration returned %v, want ErrInvalidConfig in the chain", err)
	}

	cfg = testConfig(t, "470.lbm")
	cfg.Policy = nil
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil policy returned %v, want ErrInvalidConfig in the chain", err)
	}
}

func withPolicy(cfg Config, p Policy) Config {
	cfg.Policy = p
	return cfg
}
