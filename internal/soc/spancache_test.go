package soc

import (
	"reflect"
	"testing"

	"sysscale/internal/sim"
	"sysscale/internal/workload"
)

// flipPolicy alternates between two ladder indices every period
// decisions — it drives real DVFS transitions, so spans run under
// changing programming and the runs carry stall-charged (uncacheable)
// spans alongside cacheable ones.
type flipPolicy struct {
	period int
	a, b   int
	calls  int
}

func (p *flipPolicy) Name() string { return "test-flip" }
func (p *flipPolicy) Reset()       { p.calls = 0 }
func (p *flipPolicy) Clone() Policy {
	c := *p
	c.Reset()
	return &c
}
func (p *flipPolicy) Decide(ctx PolicyContext) PolicyDecision {
	idx := p.a
	if (p.calls/p.period)%2 == 1 {
		idx = p.b
	}
	p.calls++
	if idx >= len(ctx.Ladder) {
		idx = len(ctx.Ladder) - 1
	}
	top := ctx.Ladder[0]
	return PolicyDecision{
		Target:       ctx.Ladder[idx],
		OptimizedMRC: true,
		IOBudget:     ctx.WorstIO(top),
		MemBudget:    ctx.WorstMem(top),
	}
}

func spanCacheTestConfig(t *testing.T, wlName string, pol Policy) Config {
	t.Helper()
	w, err := workload.SPEC(wlName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = w
	cfg.Policy = pol
	cfg.Duration = 200 * sim.Millisecond
	return cfg
}

// TestSpanCacheIdentity pins the cache's core contract: a run served
// from the span cache — cold (all misses, inserting), warm (hits), or
// warm through a different pooled Runner — is bit-identical to the
// same run with the cache disabled. Deltas store pre-multiplied
// increments, so the apply path adds the very float64 values the
// uncached path adds; DeepEqual, not tolerance, is the assertion.
func TestSpanCacheIdentity(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return highPin() },
		func() Policy { return lowPin(true) },
		func() Policy { return &flipPolicy{period: 2, a: 0, b: 1} },
	}
	for _, wl := range []string{"473.astar", "470.lbm"} {
		for _, mk := range policies {
			label := wl + "/" + mk().Name()

			ref, err := Run(spanCacheTestConfig(t, wl, mk()))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			cache := NewSpanCache(0)
			r := NewRunner()
			r.SetSpanCache(cache)

			// Cache attached but disabled by the A/B knob.
			off := spanCacheTestConfig(t, wl, mk())
			off.DisableSpanCache = true
			got, err := r.Run(off)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: DisableSpanCache run != plain run", label)
			}
			if s := cache.Stats(); s.Hits+s.Misses+s.Entries != 0 {
				t.Errorf("%s: disabled cache was touched: %+v", label, s)
			}

			// Cold: every cacheable span misses and inserts.
			got, err = r.Run(spanCacheTestConfig(t, wl, mk()))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: cold cached run != uncached run", label)
			}
			cold := cache.Stats()
			if cold.Misses == 0 || cold.Entries == 0 {
				t.Fatalf("%s: cold run populated nothing: %+v", label, cold)
			}

			// Warm: the same spans come back as cached deltas.
			got, err = r.Run(spanCacheTestConfig(t, wl, mk()))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: warm cached run != uncached run", label)
			}
			warm := cache.Stats()
			if warm.Hits == cold.Hits {
				t.Errorf("%s: warm run scored no span hits: %+v", label, warm)
			}

			// Cross-runner: a different pooled Runner sharing the cache
			// reuses the first runner's spans — the cross-job scenario.
			r2 := NewRunner()
			r2.SetSpanCache(cache)
			got, err = r2.Run(spanCacheTestConfig(t, wl, mk()))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: cross-runner cached run != uncached run", label)
			}
			if s := cache.Stats(); s.Hits <= warm.Hits {
				t.Errorf("%s: second runner scored no span hits: %+v", label, s)
			}
		}
	}
}

// TestSpanCacheBound pins the full-cache behaviour: a cache bounded to
// one entry stops inserting (counting drops) instead of growing, and
// results stay identical to the unbounded run.
func TestSpanCacheBound(t *testing.T) {
	ref, err := Run(spanCacheTestConfig(t, "473.astar", &flipPolicy{period: 2, a: 0, b: 1}))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSpanCache(1)
	r := NewRunner()
	r.SetSpanCache(cache)
	got, err := r.Run(spanCacheTestConfig(t, "473.astar", &flipPolicy{period: 2, a: 0, b: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("full-cache run != uncached run")
	}
	s := cache.Stats()
	if s.Entries > 1 {
		t.Errorf("cache bound ignored: %d entries resident", s.Entries)
	}
	if s.Dropped == 0 {
		t.Errorf("full cache dropped nothing: %+v", s)
	}
}

// allocsConfig is the steady-state config the allocation pins run:
// single-phase SPEC under a static governor, the engine worker's
// recycled-platform scenario.
func allocsConfig(t *testing.T) Config {
	t.Helper()
	return spanCacheTestConfig(t, "473.astar", highPin())
}

// TestRunnerPooledAllocs pins the warm pooled run at exactly 1
// allocation: the Result's PointResidency slice, which escapes to the
// caller and cannot be pooled. Everything else — closures, counter
// samples, span bookkeeping — must stay off the heap. A regression
// here is a hot-path regression for every engine worker; fix the
// allocation, don't bump the pin.
func TestRunnerPooledAllocs(t *testing.T) {
	cfg := allocsConfig(t)
	r := NewRunner()
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 1 {
		t.Errorf("warm pooled run: %v allocs/op, want exactly 1 (PointResidency)", allocs)
	}
}

// TestRunnerWarmSpanCacheAllocs pins the warm span-cache path at the
// same single allocation: serving spans as cached deltas must not add
// heap traffic (the key is a comparable struct — no hashing buffers —
// and hit/miss counters accumulate in locals).
func TestRunnerWarmSpanCacheAllocs(t *testing.T) {
	cfg := allocsConfig(t)
	cache := NewSpanCache(0)
	r := NewRunner()
	r.SetSpanCache(cache)
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 1 {
		t.Errorf("warm span-cache run: %v allocs/op, want exactly 1 (PointResidency)", allocs)
	}
	if after := cache.Stats(); after.Hits <= before.Hits {
		t.Fatalf("warm runs scored no span hits — the pin measured the wrong path: %+v", after)
	}
}
