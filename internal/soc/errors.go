package soc

import "errors"

// ErrInvalidConfig is the sentinel every configuration-validation
// failure wraps: a Config rejected by Validate (and therefore by Run,
// RunContext and the engine batch paths) satisfies
// errors.Is(err, ErrInvalidConfig). Runtime failures — a cancelled
// context, a mid-run model error — do not wrap it, so callers can
// separate "this job could never run" from "this job was interrupted".
var ErrInvalidConfig = errors.New("soc: invalid config")

// PolicyValidator is an optional interface a Policy implements to have
// its own configuration checked by Config.Validate before a run.
// Returned errors are wrapped in ErrInvalidConfig.
type PolicyValidator interface {
	// Validate reports whether the policy's configuration is usable.
	Validate() error
}
