package soc

import "errors"

// ErrInvalidConfig is the sentinel every configuration-validation
// failure wraps: a Config rejected by Validate (and therefore by Run,
// RunContext and the engine batch paths) satisfies
// errors.Is(err, ErrInvalidConfig). Runtime failures — a cancelled
// context, a mid-run model error — do not wrap it, so callers can
// separate "this job could never run" from "this job was interrupted".
var ErrInvalidConfig = errors.New("soc: invalid config")

// RunAbort is the panic-value protocol for aborting a simulation with
// an error: Policy.Decide returns no error by design (real governors
// cannot fail), so a policy wrapper that must surface a failure —
// fault injection being the canonical case — panics with
// RunAbort{Err}. The engine's panic isolation recognises the type and
// converts it back into the carried error instead of a PanicError, so
// injected failures flow through the ordinary error path (and through
// retry classification) rather than reading as policy crashes.
// Panicking with RunAbort outside an engine-supervised run is a plain
// panic.
type RunAbort struct {
	// Err is the failure the aborting policy wants surfaced.
	Err error
}

// PolicyValidator is an optional interface a Policy implements to have
// its own configuration checked by Config.Validate before a run.
// Returned errors are wrapped in ErrInvalidConfig.
type PolicyValidator interface {
	// Validate reports whether the policy's configuration is usable.
	Validate() error
}
