package sysscale_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (go test -bench=. -benchmem). Each benchmark runs
// the corresponding experiment once per iteration and reports the
// headline quantities as custom metrics, so a single -bench run prints
// the paper-versus-measured comparison alongside timing:
//
//	BenchmarkFig7SPEC     sysscale_avg_pct   ...  (paper: 9.2)
//
// Absolute numbers are simulator-relative; the shape (who wins, by what
// factor, where crossovers fall) is the reproduction target. See
// EXPERIMENTS.md for the per-figure comparison.

import (
	"context"
	"runtime"
	"testing"

	"sysscale"
	"sysscale/internal/experiments"
	"sysscale/internal/sim"
)

// BenchmarkTable1Setups regenerates Table 1 (the two experimental
// setups) and reports the voltage ratios.
func BenchmarkTable1Setups(b *testing.B) {
	var vsa, vio float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		vsa, vio = t.VSARatio(), t.VIORatio()
	}
	b.ReportMetric(vsa, "vsa_ratio")
	b.ReportMetric(vio, "vio_ratio")
}

// BenchmarkFig2aMotivation regenerates the §3 motivation experiment
// (MD-DVFS vs baseline on perlbench/cactusADM/lbm).
func BenchmarkFig2aMotivation(b *testing.B) {
	var power float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2a(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		power = 0
		for _, row := range r.Rows {
			power += -100 * row.PowerDelta
		}
		power /= float64(len(r.Rows))
	}
	b.ReportMetric(power, "avg_power_saving_pct") // paper: 10-11
}

// BenchmarkFig3bStaticDemand regenerates the static-demand table.
func BenchmarkFig3bStaticDemand(b *testing.B) {
	var hd float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3b()
		for _, row := range r.Rows {
			if row.Engine == "display" && row.Config == "1x HD@60" {
				hd = 100 * row.PeakFrac
			}
		}
	}
	b.ReportMetric(hd, "hd_peak_pct") // paper: ~17
}

// BenchmarkFig4MRC regenerates the unoptimized-MRC study.
func BenchmarkFig4MRC(b *testing.B) {
	var powerInc, perfDeg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		powerInc, perfDeg = 100*r.MemPowerIncrease, 100*r.PerfDegradation
	}
	b.ReportMetric(powerInc, "mem_power_increase_pct") // paper: 22
	b.ReportMetric(perfDeg, "perf_degradation_pct")    // paper: 10
}

// BenchmarkFig5Flow measures the DVFS transition flow latency.
func BenchmarkFig5Flow(b *testing.B) {
	var down float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Latency()
		if err != nil {
			b.Fatal(err)
		}
		down = r.DownLatency.Micros()
	}
	b.ReportMetric(down, "flow_latency_us") // paper: <10
}

// BenchmarkFig6Prediction runs a reduced prediction study (the full
// 1620-workload sweep runs via cmd/experiments).
func BenchmarkFig6Prediction(b *testing.B) {
	var corr float64
	var fp int
	for i := 0; i < b.N; i++ {
		opt := experiments.DefaultFig6Options()
		opt.PerPanel = 40
		opt.Duration = 300 * sim.Millisecond
		r, err := experiments.Fig6(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		corr, fp = 0, 0
		for _, p := range r.Panels {
			corr += p.Correlation
			fp += p.FalsePos
		}
		corr /= float64(len(r.Panels))
	}
	b.ReportMetric(corr, "mean_correlation")       // paper: 0.84-0.96
	b.ReportMetric(float64(fp), "false_positives") // paper: 0
}

// BenchmarkFig7SPEC regenerates the headline SPEC CPU2006 comparison.
func BenchmarkFig7SPEC(b *testing.B) {
	var sys, co, mem, max float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		sys, co, mem, max = 100*r.AvgSysScale, 100*r.AvgCoScaleR, 100*r.AvgMemScaleR, 100*r.MaxSysScale
	}
	b.ReportMetric(sys, "sysscale_avg_pct")   // paper: 9.2
	b.ReportMetric(co, "coscale_r_avg_pct")   // paper: 3.8
	b.ReportMetric(mem, "memscale_r_avg_pct") // paper: 1.7
	b.ReportMetric(max, "sysscale_max_pct")   // paper: 16
}

// BenchmarkFig8Graphics regenerates the 3DMark comparison.
func BenchmarkFig8Graphics(b *testing.B) {
	var g06, g11, gv float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		g06, g11, gv = 100*r.Rows[0].SysScale, 100*r.Rows[1].SysScale, 100*r.Rows[2].SysScale
	}
	b.ReportMetric(g06, "3dmark06_pct")     // paper: 8.9
	b.ReportMetric(g11, "3dmark11_pct")     // paper: 6.7
	b.ReportMetric(gv, "3dmarkvantage_pct") // paper: 8.1
}

// BenchmarkFig9Battery regenerates the battery-life comparison.
func BenchmarkFig9Battery(b *testing.B) {
	var web, game, conf, video float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		web, game = 100*r.Rows[0].SysScale, 100*r.Rows[1].SysScale
		conf, video = 100*r.Rows[2].SysScale, 100*r.Rows[3].SysScale
	}
	b.ReportMetric(web, "web_saving_pct")     // paper: 6.4
	b.ReportMetric(game, "gaming_saving_pct") // paper: 9.5
	b.ReportMetric(conf, "conf_saving_pct")   // paper: 7.6
	b.ReportMetric(video, "video_saving_pct") // paper: 10.7
}

// BenchmarkFig10TDP regenerates the TDP sensitivity sweep.
func BenchmarkFig10TDP(b *testing.B) {
	var m35, m45, m7, m15 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		m35, m45 = r.Rows[0].Summary.Mean, r.Rows[1].Summary.Mean
		m7, m15 = r.Rows[2].Summary.Mean, r.Rows[3].Summary.Mean
	}
	b.ReportMetric(m35, "mean_3p5w_pct") // paper: 19.1
	b.ReportMetric(m45, "mean_4p5w_pct") // paper: 9.2
	b.ReportMetric(m7, "mean_7w_pct")
	b.ReportMetric(m15, "mean_15w_pct")
}

// BenchmarkDRAMSensitivity regenerates the §7.4 analysis.
func BenchmarkDRAMSensitivity(b *testing.B) {
	var deficit, ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.DRAMSensitivity(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		deficit = 100 * (1 - r.DDR4Freed/r.LPDDR3Freed)
		ratio = r.Degrade08 / r.Degrade106
	}
	b.ReportMetric(deficit, "ddr4_deficit_pct")   // paper: ~7
	b.ReportMetric(ratio, "penalty_ratio_08_106") // paper: 2-3
}

// BenchmarkAblations runs the design-choice ablation sweep.
func BenchmarkAblations(b *testing.B) {
	var full, noMRC, noRedist float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Name {
			case "full":
				full = 100 * row.AvgGain
			case "no-mrc-reload":
				noMRC = 100 * row.AvgGain
			case "no-redistribution":
				noRedist = 100 * row.AvgGain
			}
		}
	}
	b.ReportMetric(full, "full_gain_pct")
	b.ReportMetric(noMRC, "no_mrc_gain_pct")
	b.ReportMetric(noRedist, "no_redist_gain_pct")
}

// engineSweepConfigs builds a Fig. 7-style suite sweep: every SPEC
// CPU2006 workload under baseline and SysScale.
func engineSweepConfigs(b *testing.B) []sysscale.Config {
	b.Helper()
	var cfgs []sysscale.Config
	for _, w := range sysscale.SPECSuite() {
		for _, p := range []sysscale.Policy{sysscale.NewBaseline(), sysscale.NewSysScale()} {
			cfg := sysscale.DefaultConfig()
			cfg.Workload = w
			cfg.Policy = p
			cfg.Duration = 300 * sysscale.Millisecond
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// benchEngineSweep runs the sweep with the given worker bound, caching
// disabled so every iteration measures real simulation work (including
// the pooled-platform reuse path: allocs/op here is the per-batch
// allocation bill the pool is meant to shrink).
func benchEngineSweep(b *testing.B, workers int) {
	cfgs := engineSweepConfigs(b)
	jobs := make([]sysscale.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = sysscale.Job{Config: c}
	}
	eng := sysscale.NewEngine(sysscale.WithParallelism(workers), sysscale.WithCache(false))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunBatch(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkEngineSequential is the single-worker reference for the
// suite sweep.
func BenchmarkEngineSequential(b *testing.B) { benchEngineSweep(b, 1) }

// BenchmarkEngineParallel runs the same sweep with one worker per
// core; the runs/s ratio to BenchmarkEngineSequential is the engine's
// speedup (≈ core count on a multi-core machine).
func BenchmarkEngineParallel(b *testing.B) { benchEngineSweep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkEngineStream runs the BenchmarkEngineParallel sweep through
// Engine.Stream instead of RunBatch: same jobs, same worker bound,
// results consumed (and dropped) as they complete. The gate pins this
// next to the batch path so the streaming delivery layer — channel
// sends, per-job clones — can never silently regress relative to it.
func BenchmarkEngineStream(b *testing.B) {
	cfgs := engineSweepConfigs(b)
	jobs := make([]sysscale.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = sysscale.Job{Config: c}
	}
	eng := sysscale.NewEngine(sysscale.WithParallelism(runtime.GOMAXPROCS(0)), sysscale.WithCache(false))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for jr := range eng.Stream(ctx, jobs) {
			if jr.Err != nil {
				b.Fatal(jr.Err)
			}
			n++
		}
		if n != len(jobs) {
			b.Fatalf("stream delivered %d of %d jobs", n, len(jobs))
		}
	}
	b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkMonteCarlo runs a reduced Monte Carlo robustness sweep (25
// generated workloads × 4 policies as one engine batch) — the
// fleet-style load the span-batched core and platform pooling target,
// and one of the three benchmark-regression-gate trajectories.
func BenchmarkMonteCarlo(b *testing.B) {
	var regress int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := experiments.DefaultMonteCarloOptions()
		opt.N = 25
		r, err := experiments.MonteCarlo(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		regress = 0
		for _, p := range r.Policies {
			regress += p.Regressions
		}
	}
	b.ReportMetric(float64(regress), "regressions")
}

// BenchmarkSimulatorTick measures raw simulator throughput: simulated
// milliseconds per wall-clock second on a single workload/policy pair.
func BenchmarkSimulatorTick(b *testing.B) {
	w, err := experiments.BenchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.BenchConfig(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BenchRun(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cfg.Duration.Millis()*float64(b.N)/b.Elapsed().Seconds(), "sim_ms/s")
}

// BenchmarkSimulatorTickMemoOff is the same run with the steady-state
// tick memo disabled: the fixpoint resolves on every tick, as before
// the fast path. The sim_ms/s ratio to BenchmarkSimulatorTick is the
// fast path's end-to-end speedup.
func BenchmarkSimulatorTickMemoOff(b *testing.B) {
	w, err := experiments.BenchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.BenchConfigMemoOff(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BenchRun(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cfg.Duration.Millis()*float64(b.N)/b.Elapsed().Seconds(), "sim_ms/s")
}
